package compress

import (
	"math"
	"sort"
	"testing"

	"julienne/internal/graph"
)

// Fuzz targets for the byte-coded adjacency representation: the varint
// primitives, the per-vertex delta codec, and the whole CSR → compressed
// round trip including in-place packing. `go test` runs the seed corpus
// (empty list, single edge, max-degree vertex); `go test
// -fuzz=FuzzDecode ./internal/compress` explores. The codec is in this
// package, so the targets drive encodeAdjacency/decodeList directly.

func FuzzVarint(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(uint64(127))
	f.Add(uint64(128))
	f.Add(uint64(math.MaxInt64))
	f.Add(uint64(math.MaxUint64))
	f.Fuzz(func(t *testing.T, x uint64) {
		buf := make([]byte, 10)
		end := putVarint(buf, 0, x)
		if int(end) != varintLen(x) {
			t.Fatalf("putVarint wrote %d bytes, varintLen says %d", end, varintLen(x))
		}
		got, pos := getVarint(buf, 0)
		if got != x || pos != end {
			t.Fatalf("varint round trip: wrote %d (%d bytes), read %d (%d bytes)", x, end, got, pos)
		}
		s := int64(x)
		if back := unzigzag(zigzag(s)); back != s {
			t.Fatalf("zigzag round trip: %d -> %d", s, back)
		}
	})
}

// adjacencyFromBytes derives a deterministic adjacency structure from
// raw fuzz bytes: consecutive byte pairs become (vertex, neighbor)
// entries mod n, and each list is sorted as the encoder requires.
// Duplicates and self-loops are kept — the codec must round-trip them
// (gap 0 and a zero/negative first delta respectively).
func adjacencyFromBytes(raw []byte, n int) [][]graph.Vertex {
	adj := make([][]graph.Vertex, n)
	for i := 0; i+1 < len(raw); i += 2 {
		v := int(raw[i]) % n
		adj[v] = append(adj[v], graph.Vertex(int(raw[i+1])%n))
	}
	for v := range adj {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
	}
	return adj
}

func FuzzDecode(f *testing.F) {
	f.Add([]byte{}, uint16(1), false)    // empty graph, empty list
	f.Add([]byte{0, 1}, uint16(2), true) // single weighted edge
	maxDeg := make([]byte, 0, 2*200)     // one vertex adjacent to everything
	for u := 0; u < 200; u++ {
		maxDeg = append(maxDeg, 0, byte(u))
	}
	f.Add(maxDeg, uint16(200), false)
	f.Fuzz(func(t *testing.T, raw []byte, n16 uint16, weighted bool) {
		n := int(n16)%512 + 1
		adj := adjacencyFromBytes(raw, n)
		weight := func(v int, i int) graph.Weight {
			return graph.Weight((v + i*7) % 251)
		}
		offs, data, degs := encodeAdjacency(n, weighted,
			func(v graph.Vertex) ([]graph.Vertex, []graph.Weight) {
				nbrs := adj[v]
				if !weighted {
					return nbrs, nil
				}
				wgts := make([]graph.Weight, len(nbrs))
				for i := range wgts {
					wgts[i] = weight(int(v), i)
				}
				return nbrs, wgts
			})
		for v := 0; v < n; v++ {
			if int(degs[v]) != len(adj[v]) {
				t.Fatalf("vertex %d: encoded degree %d, want %d", v, degs[v], len(adj[v]))
			}
			i := 0
			decodeList(data, offs[v], degs[v], graph.Vertex(v), weighted,
				func(u graph.Vertex, w graph.Weight) bool {
					if u != adj[v][i] {
						t.Fatalf("vertex %d neighbor %d: decoded %d, want %d", v, i, u, adj[v][i])
					}
					if weighted && w != weight(v, i) {
						t.Fatalf("vertex %d neighbor %d: decoded weight %d, want %d", v, i, w, weight(v, i))
					}
					i++
					return true
				})
			if i != len(adj[v]) {
				t.Fatalf("vertex %d: decoded %d neighbors, want %d", v, i, len(adj[v]))
			}
		}
	})
}

func FuzzRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint16(1), false)
	f.Add([]byte{0, 1, 1, 0}, uint16(2), true)
	star := make([]byte, 0, 2*64)
	for u := 1; u < 64; u++ {
		star = append(star, 0, byte(u))
	}
	f.Add(star, uint16(64), true)
	f.Fuzz(func(t *testing.T, raw []byte, n16 uint16, weighted bool) {
		n := int(n16)%256 + 1
		var edges []graph.Edge
		for i := 0; i+1 < len(raw); i += 2 {
			u := graph.Vertex(int(raw[i]) % n)
			v := graph.Vertex(int(raw[i+1]) % n)
			edges = append(edges, graph.Edge{U: u, V: v, W: graph.Weight(int(raw[i]) % 97)})
		}
		opt := graph.BuildOptions{Weighted: weighted, Dedup: true, DropSelfLoops: false}
		g := graph.FromEdges(n, edges, opt)
		c := FromCSR(g)
		if c.NumVertices() != g.NumVertices() || c.NumEdges() != g.NumEdges() {
			t.Fatalf("sizes: compressed (%d, %d), CSR (%d, %d)",
				c.NumVertices(), c.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for v := 0; v < n; v++ {
			vv := graph.Vertex(v)
			if c.OutDegree(vv) != g.OutDegree(vv) {
				t.Fatalf("vertex %d: degree %d, want %d", v, c.OutDegree(vv), g.OutDegree(vv))
			}
			want := g.OutEdges(vv)
			wgts := g.OutWeights(vv)
			i := 0
			c.OutNeighbors(vv, func(u graph.Vertex, w graph.Weight) bool {
				if u != want[i] {
					t.Fatalf("vertex %d neighbor %d: got %d, want %d", v, i, u, want[i])
				}
				if weighted && w != wgts[i] {
					t.Fatalf("vertex %d neighbor %d: weight %d, want %d", v, i, w, wgts[i])
				}
				i++
				return true
			})
			if i != len(want) {
				t.Fatalf("vertex %d: visited %d neighbors, want %d", v, i, len(want))
			}
		}
		// PackOut must behave exactly like filtering the CSR list.
		packed := c.Clone()
		keep := func(u graph.Vertex) bool { return u%2 == 0 }
		for v := 0; v < n; v++ {
			vv := graph.Vertex(v)
			var want []graph.Vertex
			for _, u := range g.OutEdges(vv) {
				if keep(u) {
					want = append(want, u)
				}
			}
			if got := packed.PackOut(vv, keep); got != len(want) {
				t.Fatalf("vertex %d: PackOut kept %d, want %d", v, got, len(want))
			}
			i := 0
			packed.OutNeighbors(vv, func(u graph.Vertex, w graph.Weight) bool {
				if u != want[i] {
					t.Fatalf("vertex %d packed neighbor %d: got %d, want %d", v, i, u, want[i])
				}
				i++
				return true
			})
		}
	})
}
