// Package compress provides a byte-compressed graph representation in
// the style of Ligra+ [55], which Julienne inherits: adjacency lists
// are difference-encoded and packed with variable-length byte codes,
// and decoded on the fly during traversal. The paper's largest input
// (Hyperlink2012, 225B edges) only fits in memory compressed (§1);
// this package lets every algorithm in the repository run over
// compressed graphs through the same graph.Graph interface, and the
// ablation benchmark measures the traversal cost of decoding.
//
// Encoding: each vertex's sorted neighbor list is stored as a varint
// of (first neighbor XOR-folded signed delta from the vertex id)
// followed by varints of the strictly positive gaps between
// consecutive neighbors. Weighted graphs interleave a varint weight
// after each neighbor code. This is the byte variant of Ligra+ (their
// fastest decode).
package compress

import (
	"sync"
	"sync/atomic"

	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// Graph is a byte-compressed graph implementing graph.Graph and
// graph.Packer. PackOut re-encodes the filtered adjacency list in
// place; removing neighbors never grows the encoding (merging two gaps
// g1, g2 into g1+g2 costs at most max(len(g1), len(g2)) + 1 ≤
// len(g1)+len(g2) varint bytes, and the same bound holds for the
// signed first-neighbor code), and the decoder reads exactly `degree`
// entries so trailing stale bytes are unreachable.
type Graph struct {
	m         int64 // live edge count (atomic under PackOut); first field so it stays 8-aligned on 32-bit
	n         int
	offs      []uint64 // byte offset of each vertex's encoded list
	data      []byte
	degs      []uint32 // live degree per vertex
	weighted  bool
	symmetric bool

	// in* hold the compressed transpose for directed graphs (aliases
	// the out-encoding when symmetric).
	inOffs []uint64
	inData []byte
	inDegs []uint32
	inOnce sync.Once

	packed atomic.Bool // set once PackOut has run (invalidates transpose)
}

var (
	_ graph.Graph  = (*Graph)(nil)
	_ graph.Packer = (*Graph)(nil)
)

// FromCSR compresses a CSR graph. The CSR's adjacency lists must be
// sorted (graph.FromEdges and every generator produce sorted lists).
func FromCSR(g *graph.CSR) *Graph {
	n := g.NumVertices()
	c := &Graph{
		n:         n,
		m:         g.NumEdges(),
		weighted:  g.Weighted(),
		symmetric: g.Symmetric(),
	}
	c.offs, c.data, c.degs = encodeAdjacency(n, c.weighted,
		func(v graph.Vertex) ([]graph.Vertex, []graph.Weight) {
			return g.OutEdges(v), g.OutWeights(v)
		})
	if c.symmetric {
		c.inOffs, c.inData, c.inDegs = c.offs, c.data, c.degs
	}
	return c
}

// encodeAdjacency builds the offset/data arrays for one direction.
func encodeAdjacency(n int, weighted bool,
	lists func(v graph.Vertex) ([]graph.Vertex, []graph.Weight)) ([]uint64, []byte, []uint32) {

	// Two passes: size each vertex's encoding, scan for offsets, then
	// encode in parallel.
	sizes := make([]uint64, n+1)
	degs := make([]uint32, n)
	parallel.For(n, 64, func(vi int) {
		v := graph.Vertex(vi)
		nbrs, wgts := lists(v)
		degs[vi] = uint32(len(nbrs))
		var sz int
		prev := v
		for i, u := range nbrs {
			if i == 0 {
				sz += varintLen(zigzag(int64(u) - int64(v)))
			} else {
				sz += varintLen(uint64(u - prev))
			}
			prev = u
			if weighted {
				sz += varintLen(uint64(wgts[i]))
			}
		}
		sizes[vi] = uint64(sz)
	})
	offs := make([]uint64, n+1)
	total := parallel.Scan(offs, sizes)
	data := make([]byte, total)
	parallel.For(n, 64, func(vi int) {
		v := graph.Vertex(vi)
		nbrs, wgts := lists(v)
		pos := offs[vi]
		prev := v
		for i, u := range nbrs {
			if i == 0 {
				pos = putVarint(data, pos, zigzag(int64(u)-int64(v)))
			} else {
				pos = putVarint(data, pos, uint64(u-prev))
			}
			prev = u
			if weighted {
				pos = putVarint(data, pos, uint64(wgts[i]))
			}
		}
	})
	offs[n] = total
	return offs, data, degs
}

// NumVertices implements graph.Graph.
func (c *Graph) NumVertices() int { return c.n }

// NumEdges implements graph.Graph (live count under PackOut).
func (c *Graph) NumEdges() int64 { return atomic.LoadInt64(&c.m) }

// Symmetric implements graph.Graph.
func (c *Graph) Symmetric() bool { return c.symmetric }

// Weighted implements graph.Graph.
func (c *Graph) Weighted() bool { return c.weighted }

// OutDegree implements graph.Graph.
func (c *Graph) OutDegree(v graph.Vertex) int { return int(c.degs[v]) }

// InDegree implements graph.Graph.
func (c *Graph) InDegree(v graph.Vertex) int {
	c.ensureIn()
	return int(c.inDegs[v])
}

// SizeBytes returns the compressed adjacency footprint, used by the
// compression-ratio experiment.
func (c *Graph) SizeBytes() int64 { return int64(len(c.data)) }

// OutNeighbors implements graph.Graph, decoding on the fly.
func (c *Graph) OutNeighbors(v graph.Vertex, f func(u graph.Vertex, w graph.Weight) bool) {
	decodeList(c.data, c.offs[v], c.degs[v], v, c.weighted, f)
}

// InNeighbors implements graph.Graph.
func (c *Graph) InNeighbors(v graph.Vertex, f func(u graph.Vertex, w graph.Weight) bool) {
	c.ensureIn()
	decodeList(c.inData, c.inOffs[v], c.inDegs[v], v, c.weighted, f)
}

// ensureIn materializes the compressed transpose for directed graphs.
// Safe under concurrent traversals (see graph.CSR.ensureIn).
func (c *Graph) ensureIn() {
	c.inOnce.Do(c.buildIn)
}

func (c *Graph) buildIn() {
	if c.inOffs != nil {
		return // symmetric: aliased at construction
	}
	if c.packed.Load() {
		panic("compress: InNeighbors after PackOut on a directed graph")
	}
	// Build the transposed lists (sorted by construction of the
	// counting pass) and encode them.
	type rec struct {
		nbrs []graph.Vertex
		wgts []graph.Weight
	}
	in := make([]rec, c.n)
	for vi := 0; vi < c.n; vi++ {
		v := graph.Vertex(vi)
		c.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
			in[u].nbrs = append(in[u].nbrs, v)
			if c.weighted {
				in[u].wgts = append(in[u].wgts, w)
			}
			return true
		})
	}
	c.inOffs, c.inData, c.inDegs = encodeAdjacency(c.n, c.weighted,
		func(v graph.Vertex) ([]graph.Vertex, []graph.Weight) {
			return in[v].nbrs, in[v].wgts
		})
}

// decodeList walks one encoded adjacency list.
func decodeList(data []byte, pos uint64, deg uint32, v graph.Vertex,
	weighted bool, f func(u graph.Vertex, w graph.Weight) bool) {

	if deg == 0 {
		return
	}
	var u graph.Vertex
	for i := uint32(0); i < deg; i++ {
		var raw uint64
		raw, pos = getVarint(data, pos)
		if i == 0 {
			u = graph.Vertex(int64(v) + unzigzag(raw))
		} else {
			u += graph.Vertex(raw)
		}
		var w graph.Weight
		if weighted {
			var wr uint64
			wr, pos = getVarint(data, pos)
			w = graph.Weight(wr)
		}
		if !f(u, w) {
			return
		}
	}
}

// PackOut implements graph.Packer: it decodes v's live neighbors,
// keeps those satisfying keep, and re-encodes them in place at the
// start of v's byte region. The filtered encoding never exceeds the
// original (see the type comment), so the region always fits; the
// live degree shrinks and the decoder never reads the stale tail.
// PackOut for distinct vertices may run concurrently.
func (c *Graph) PackOut(v graph.Vertex, keep func(u graph.Vertex) bool) int {
	if !c.packed.Load() {
		c.packed.Store(true)
	}
	// Decode-filter into small stacks; adjacency lists are re-encoded
	// immediately so the buffers are transient.
	var nbrs []graph.Vertex
	var wgts []graph.Weight
	c.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
		if keep(u) {
			nbrs = append(nbrs, u)
			if c.weighted {
				wgts = append(wgts, w)
			}
		}
		return true
	})
	removed := int(c.degs[v]) - len(nbrs)
	pos := c.offs[v]
	prev := v
	for i, u := range nbrs {
		if i == 0 {
			pos = putVarint(c.data, pos, zigzag(int64(u)-int64(v)))
		} else {
			pos = putVarint(c.data, pos, uint64(u-prev))
		}
		prev = u
		if c.weighted {
			pos = putVarint(c.data, pos, uint64(wgts[i]))
		}
	}
	if pos > c.offs[v+1] {
		panic("compress: packed encoding exceeded its region")
	}
	c.degs[v] = uint32(len(nbrs))
	if removed > 0 {
		atomic.AddInt64(&c.m, -int64(removed))
	}
	return len(nbrs)
}

// Clone returns a deep copy (used by algorithms that pack edges).
func (c *Graph) Clone() *Graph {
	n := &Graph{
		n: c.n, m: c.NumEdges(),
		offs:      c.offs, // offsets are immutable region bounds: shared
		data:      append([]byte(nil), c.data...),
		degs:      append([]uint32(nil), c.degs...),
		weighted:  c.weighted,
		symmetric: c.symmetric,
	}
	n.packed.Store(c.packed.Load())
	if c.symmetric {
		n.inOffs, n.inData, n.inDegs = n.offs, n.data, n.degs
	}
	return n
}

// --- varint / zigzag primitives -------------------------------------------

// zigzag maps a signed delta to an unsigned code (LSB = sign).
func zigzag(x int64) uint64 { return uint64((x << 1) ^ (x >> 63)) }

// unzigzag inverts zigzag.
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// varintLen returns the encoded length of x in bytes.
func varintLen(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// putVarint writes x at data[pos:] and returns the new position.
func putVarint(data []byte, pos, x uint64) uint64 {
	for x >= 0x80 {
		data[pos] = byte(x) | 0x80
		x >>= 7
		pos++
	}
	data[pos] = byte(x)
	return pos + 1
}

// getVarint reads a varint at data[pos:].
func getVarint(data []byte, pos uint64) (uint64, uint64) {
	var x uint64
	var shift uint
	for {
		b := data[pos]
		pos++
		x |= uint64(b&0x7f) << shift
		if b < 0x80 {
			return x, pos
		}
		shift += 7
	}
}
