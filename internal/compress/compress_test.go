package compress

import (
	"testing"
	"testing/quick"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// neighborsOf collects (neighbor, weight) pairs via the interface.
func neighborsOf(g graph.Graph, v graph.Vertex, in bool) ([]graph.Vertex, []graph.Weight) {
	var ns []graph.Vertex
	var ws []graph.Weight
	visit := func(u graph.Vertex, w graph.Weight) bool {
		ns = append(ns, u)
		ws = append(ws, w)
		return true
	}
	if in {
		g.InNeighbors(v, visit)
	} else {
		g.OutNeighbors(v, visit)
	}
	return ns, ws
}

func assertSameGraph(t *testing.T, name string, want, got graph.Graph) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: shape mismatch (%d,%d) vs (%d,%d)", name,
			want.NumVertices(), want.NumEdges(), got.NumVertices(), got.NumEdges())
	}
	if want.Weighted() != got.Weighted() || want.Symmetric() != got.Symmetric() {
		t.Fatalf("%s: flags mismatch", name)
	}
	for v := 0; v < want.NumVertices(); v++ {
		vv := graph.Vertex(v)
		if want.OutDegree(vv) != got.OutDegree(vv) {
			t.Fatalf("%s: degree(%d) %d vs %d", name, v, want.OutDegree(vv), got.OutDegree(vv))
		}
		wn, ww := neighborsOf(want, vv, false)
		gn, gw := neighborsOf(got, vv, false)
		if len(wn) != len(gn) {
			t.Fatalf("%s: neighbor count of %d differs", name, v)
		}
		for i := range wn {
			if wn[i] != gn[i] || ww[i] != gw[i] {
				t.Fatalf("%s: neighbor %d of %d: (%d,%d) vs (%d,%d)",
					name, i, v, wn[i], ww[i], gn[i], gw[i])
			}
		}
	}
}

func TestRoundTripFamilies(t *testing.T) {
	cases := map[string]*graph.CSR{
		"rmat":      gen.RMAT(1<<10, 8000, true, 1),
		"grid":      gen.Grid2D(17, 23),
		"er-dir":    gen.ErdosRenyi(400, 2500, false, 2),
		"weighted":  gen.HeavyWeights(gen.RMAT(1<<9, 4000, true, 3), 3),
		"wtd-log":   gen.LogWeights(gen.Grid2D(12, 12), 4),
		"star":      gen.Star(100),
		"singleton": gen.Complete(2),
	}
	for name, g := range cases {
		assertSameGraph(t, name, g, FromCSR(g))
	}
}

func TestEmptyAndIsolated(t *testing.T) {
	g := graph.FromEdges(10, []graph.Edge{{U: 0, V: 9}}, graph.DefaultBuild)
	c := FromCSR(g)
	if c.OutDegree(5) != 0 {
		t.Fatal("isolated vertex has neighbors")
	}
	empty := FromCSR(graph.FromEdges(0, nil, graph.DefaultBuild))
	if empty.NumVertices() != 0 || empty.NumEdges() != 0 {
		t.Fatal("empty graph")
	}
}

func TestInNeighborsDirected(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 3}, {U: 1, V: 3}, {U: 4, V: 3}},
		graph.DefaultBuild)
	c := FromCSR(g)
	ns, _ := neighborsOf(c, 3, true)
	if len(ns) != 3 {
		t.Fatalf("in-neighbors %v", ns)
	}
	if c.InDegree(3) != 3 || c.InDegree(0) != 0 {
		t.Fatal("in-degrees wrong")
	}
}

func TestEarlyStop(t *testing.T) {
	c := FromCSR(gen.Star(50))
	visits := 0
	c.OutNeighbors(0, func(u graph.Vertex, w graph.Weight) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Fatalf("early stop visited %d", visits)
	}
}

func TestCompressionShrinksBigGraphs(t *testing.T) {
	g := gen.RMAT(1<<12, 120000, true, 9)
	c := FromCSR(g)
	raw := g.NumEdges() * 4 // uint32 per edge endpoint
	if c.SizeBytes() >= raw {
		t.Fatalf("compression did not shrink: %d bytes vs raw %d", c.SizeBytes(), raw)
	}
}

func TestVarintRoundTrip(t *testing.T) {
	f := func(x uint64) bool {
		buf := make([]byte, 10)
		end := putVarint(buf, 0, x)
		if int(end) != varintLen(x) {
			return false
		}
		got, pos := getVarint(buf, 0)
		return got == x && pos == end
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, x := range []uint64{0, 1, 127, 128, 1<<14 - 1, 1 << 14, 1<<63 - 1, ^uint64(0)} {
		buf := make([]byte, 10)
		end := putVarint(buf, 0, x)
		got, _ := getVarint(buf, 0)
		if got != x {
			t.Fatalf("varint(%d) -> %d (len %d)", x, got, end)
		}
	}
}

func TestZigzagRoundTrip(t *testing.T) {
	f := func(x int64) bool { return unzigzag(zigzag(x)) == x }
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	for _, x := range []int64{0, -1, 1, -(1 << 62), 1 << 62} {
		if unzigzag(zigzag(x)) != x {
			t.Fatalf("zigzag(%d)", x)
		}
	}
}
