package compress

import (
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/rng"
)

func TestPackOutBasic(t *testing.T) {
	c := FromCSR(gen.Star(8))
	d := c.PackOut(0, func(u graph.Vertex) bool { return u%2 == 1 })
	if d != 4 { // leaves 1,3,5,7
		t.Fatalf("packed degree %d want 4", d)
	}
	if c.OutDegree(0) != 4 {
		t.Fatal("degree not updated")
	}
	c.OutNeighbors(0, func(u graph.Vertex, w graph.Weight) bool {
		if u%2 != 1 {
			t.Fatalf("removed neighbor %d visible", u)
		}
		return true
	})
	if c.NumEdges() != int64(14-3) {
		t.Fatalf("live m=%d", c.NumEdges())
	}
}

func TestPackOutWeighted(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 10}, {U: 0, V: 2, W: 20}, {U: 0, V: 3, W: 30}},
		graph.BuildOptions{Weighted: true, DropSelfLoops: true, Dedup: true})
	c := FromCSR(g)
	c.PackOut(0, func(u graph.Vertex) bool { return u != 2 })
	got := map[graph.Vertex]graph.Weight{}
	c.OutNeighbors(0, func(u graph.Vertex, w graph.Weight) bool {
		got[u] = w
		return true
	})
	if len(got) != 2 || got[1] != 10 || got[3] != 30 {
		t.Fatalf("weights after pack: %v", got)
	}
}

// TestPackOutNeverOverflows drives random packs over random graphs —
// the in-place re-encode must always fit its byte region (the varint
// merge bound).
func TestPackOutNeverOverflows(t *testing.T) {
	for _, weighted := range []bool{false, true} {
		g := gen.RMAT(1<<11, 30000, true, 5)
		if weighted {
			g = gen.HeavyWeights(g, 5)
		}
		c := FromCSR(g)
		r := rng.New(9)
		// Repeatedly pack random subsets until empty; compare against
		// a mirrored CSR pack.
		mirror := g.Clone()
		for round := 0; round < 6; round++ {
			for v := 0; v < c.NumVertices(); v++ {
				if c.OutDegree(graph.Vertex(v)) == 0 {
					continue
				}
				threshold := uint32(r.IntN(c.NumVertices()))
				keep := func(u graph.Vertex) bool { return u < threshold }
				cd := c.PackOut(graph.Vertex(v), keep)
				md := mirror.PackOut(graph.Vertex(v), keep)
				if cd != md {
					t.Fatalf("round %d v=%d: degrees %d vs %d", round, v, cd, md)
				}
			}
		}
		// Remaining adjacency must agree exactly.
		for v := 0; v < c.NumVertices(); v++ {
			var cn, mn []graph.Vertex
			c.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
				cn = append(cn, u)
				return true
			})
			mirror.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
				mn = append(mn, u)
				return true
			})
			if len(cn) != len(mn) {
				t.Fatalf("v=%d: %d vs %d neighbors", v, len(cn), len(mn))
			}
			for i := range cn {
				if cn[i] != mn[i] {
					t.Fatalf("v=%d neighbor %d: %d vs %d", v, i, cn[i], mn[i])
				}
			}
		}
		if c.NumEdges() != mirror.NumEdges() {
			t.Fatalf("live m %d vs %d", c.NumEdges(), mirror.NumEdges())
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	c := FromCSR(gen.Star(6))
	cl := c.Clone()
	cl.PackOut(0, func(graph.Vertex) bool { return false })
	if c.OutDegree(0) != 5 {
		t.Fatal("clone mutation leaked")
	}
	if cl.OutDegree(0) != 0 {
		t.Fatal("clone pack lost")
	}
}

func TestPackThenTransposePanics(t *testing.T) {
	c := FromCSR(graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild))
	c.PackOut(0, func(graph.Vertex) bool { return true })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on transpose after pack")
		}
	}()
	c.InNeighbors(1, func(graph.Vertex, graph.Weight) bool { return true })
}
