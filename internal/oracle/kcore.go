package oracle

import (
	"fmt"

	"julienne/internal/graph"
)

// Coreness is the textbook Matula–Beck peeling algorithm in its most
// literal form: repeatedly remove a vertex of minimum residual degree
// (found by a linear scan), recording the running maximum of the
// removal degrees as the coreness. O(n^2 + m) — obviously correct, and
// structurally unrelated to both the bucketed parallel algorithm and
// the optimized Batagelj–Zaversnik baseline it arbitrates between.
//
// The graph must be undirected. Self-loops and duplicate edges, if
// present, contribute to degrees exactly as OutDegree/OutNeighbors
// report them, matching the semantics of the implementations under
// test.
func Coreness(g graph.Graph) []uint32 {
	if !g.Symmetric() {
		panic("oracle: Coreness requires an undirected graph")
	}
	n := g.NumVertices()
	deg := make([]int64, n)
	alive := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = int64(g.OutDegree(graph.Vertex(v)))
		alive[v] = true
	}
	core := make([]uint32, n)
	k := int64(0)
	for removed := 0; removed < n; removed++ {
		// Linear scan for a minimum-residual-degree live vertex.
		min := graph.NilVertex
		for v := 0; v < n; v++ {
			if alive[v] && (min == graph.NilVertex || deg[v] < deg[min]) {
				min = graph.Vertex(v)
			}
		}
		if deg[min] > k {
			k = deg[min]
		}
		core[min] = uint32(k)
		alive[min] = false
		g.OutNeighbors(min, func(u graph.Vertex, w graph.Weight) bool {
			if alive[u] {
				deg[u]--
			}
			return true
		})
	}
	return core
}

// VerifyCoreness checks a coreness vector against the Matula–Beck
// oracle, returning the first mismatch.
func VerifyCoreness(g graph.Graph, got []uint32) error {
	if len(got) != g.NumVertices() {
		return fmt.Errorf("coreness: length %d, want %d", len(got), g.NumVertices())
	}
	return DiffUint32("coreness", got, Coreness(g))
}
