package oracle

import (
	"fmt"

	"julienne/internal/graph"
)

// Unreached mirrors bfs.Unreached.
const Unreached int32 = -1

// BFSLevels is the textbook serial queue BFS, returning hop distances
// from src (Unreached for vertices the search does not reach).
func BFSLevels(g graph.Graph, src graph.Vertex) []int32 {
	n := g.NumVertices()
	if int(src) >= n {
		panic(fmt.Sprintf("oracle: source %d out of range for n=%d", src, n))
	}
	level := make([]int32, n)
	for v := range level {
		level[v] = Unreached
	}
	level[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
			if level[u] == Unreached {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return level
}

// VerifyBFS checks a parallel BFS result against the serial oracle:
// levels must match exactly, and the parent array must describe a
// valid BFS tree (the parallel search may pick any of several valid
// parents, so parents are checked structurally rather than diffed).
func VerifyBFS(g graph.Graph, src graph.Vertex, level []int32, parent []graph.Vertex) error {
	n := g.NumVertices()
	if len(level) != n {
		return fmt.Errorf("bfs: level length %d, want %d", len(level), n)
	}
	if err := DiffInt32("bfs levels", level, BFSLevels(g, src)); err != nil {
		return err
	}
	if parent == nil {
		return nil
	}
	if len(parent) != n {
		return fmt.Errorf("bfs: parent length %d, want %d", len(parent), n)
	}
	for v := 0; v < n; v++ {
		p := parent[v]
		if graph.Vertex(v) == src || level[v] == Unreached {
			if p != graph.NilVertex {
				return fmt.Errorf("bfs: vertex %d (src or unreached) has parent %d", v, p)
			}
			continue
		}
		if p == graph.NilVertex {
			return fmt.Errorf("bfs: reached vertex %d has no parent", v)
		}
		if int(p) >= n {
			return fmt.Errorf("bfs: vertex %d has out-of-range parent %d", v, p)
		}
		if level[p]+1 != level[v] {
			return fmt.Errorf("bfs: vertex %d at level %d has parent %d at level %d",
				v, level[v], p, level[p])
		}
		edge := false
		g.OutNeighbors(p, func(u graph.Vertex, w graph.Weight) bool {
			if u == graph.Vertex(v) {
				edge = true
				return false
			}
			return true
		})
		if !edge {
			return fmt.Errorf("bfs: parent edge (%d,%d) does not exist", p, v)
		}
	}
	return nil
}
