package oracle

import (
	"fmt"
	"math"

	"julienne/internal/graph"
)

// Unreachable mirrors sssp.Unreachable: the distance reported for
// vertices not connected to the source.
const Unreachable int64 = -1

// Dijkstra is the textbook array-based Dijkstra algorithm: n rounds,
// each selecting the unvisited vertex of minimum tentative distance by
// a linear scan and relaxing its out-edges. O(n^2 + m), no heap, no
// bucket queue, no distance/flag bit packing — deliberately nothing in
// common with the implementations it checks. Weights must be
// non-negative (the graph package enforces this at construction).
func Dijkstra(g graph.Graph, src graph.Vertex) []int64 {
	n := g.NumVertices()
	if int(src) >= n {
		panic(fmt.Sprintf("oracle: source %d out of range for n=%d", src, n))
	}
	const inf = math.MaxInt64
	dist := make([]int64, n)
	done := make([]bool, n)
	for v := range dist {
		dist[v] = inf
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		min := graph.NilVertex
		for v := 0; v < n; v++ {
			if !done[v] && dist[v] < inf && (min == graph.NilVertex || dist[v] < dist[min]) {
				min = graph.Vertex(v)
			}
		}
		if min == graph.NilVertex {
			break // every remaining vertex is unreachable
		}
		done[min] = true
		g.OutNeighbors(min, func(u Vertex, w graph.Weight) bool {
			if nd := dist[min] + int64(w); nd < dist[u] {
				dist[u] = nd
			}
			return true
		})
	}
	for v := range dist {
		if dist[v] == inf {
			dist[v] = Unreachable
		}
	}
	return dist
}

// Vertex aliases graph.Vertex for the callback signatures above.
type Vertex = graph.Vertex

// VerifyDistances checks an SSSP distance vector against the Dijkstra
// oracle, returning the first mismatch.
func VerifyDistances(g graph.Graph, src graph.Vertex, got []int64) error {
	if len(got) != g.NumVertices() {
		return fmt.Errorf("sssp: length %d, want %d", len(got), g.NumVertices())
	}
	return DiffInt64("sssp", got, Dijkstra(g, src))
}
