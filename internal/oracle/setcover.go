package oracle

import (
	"fmt"

	"julienne/internal/graph"
)

// GreedySetCover is the exact sequential greedy algorithm in its most
// literal form: every iteration rescans all sets, counts each set's
// uncovered elements, and picks the maximum (ties broken toward the
// lowest set id). H_n-approximate (Johnson). O(rounds · M) — far
// slower than the bucket-queue Greedy in internal/algo/setcover, and
// sharing no machinery with it, which is the point.
//
// The instance convention matches the rest of the repository: vertices
// [0, numSets) are sets, the rest are elements, and directed edges run
// from a set to each element it covers.
func GreedySetCover(g graph.Graph, numSets int) []bool {
	n := g.NumVertices()
	covered := make([]bool, n)
	chosen := make([]bool, numSets)
	for {
		best, bestCount := -1, int64(0)
		for s := 0; s < numSets; s++ {
			if chosen[s] {
				continue
			}
			var count int64
			g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
				if !covered[e] {
					count++
				}
				return true
			})
			if count > bestCount {
				best, bestCount = s, count
			}
		}
		if best < 0 {
			return chosen
		}
		chosen[best] = true
		g.OutNeighbors(graph.Vertex(best), func(e graph.Vertex, w graph.Weight) bool {
			covered[e] = true
			return true
		})
	}
}

// Harmonic returns H_k = 1 + 1/2 + ... + 1/k (H_0 = 0).
func Harmonic(k int) float64 {
	h := 0.0
	for i := 1; i <= k; i++ {
		h += 1.0 / float64(i)
	}
	return h
}

// CoverSize counts chosen sets.
func CoverSize(inCover []bool) int {
	size := 0
	for _, c := range inCover {
		if c {
			size++
		}
	}
	return size
}

// VerifyCover checks a set-cover solution against the greedy oracle.
// Approximation algorithms do not match the oracle set-for-set, so the
// check is (a) validity — every coverable element is covered — and (b)
// the approximation bound: with OPT the (unknown) optimum,
// greedy ≤ H_d·OPT and the bucketed algorithm ≤ (1+ε)·H_d·OPT where d
// is the largest set size, and OPT is at most either cover's size, so
// the two sizes must agree within a (1+ε)·H_d factor in both
// directions. eps is the ε the solution was computed with.
func VerifyCover(g graph.Graph, numSets int, inCover []bool, eps float64) error {
	n := g.NumVertices()
	if len(inCover) != numSets {
		return fmt.Errorf("setcover: flag slice has length %d, want %d", len(inCover), numSets)
	}
	// Validity, from scratch: mark what the chosen sets cover and
	// compare against what any set could cover.
	covered := make([]bool, n)
	maxSet := 0
	for s := 0; s < numSets; s++ {
		deg := g.OutDegree(graph.Vertex(s))
		if deg > maxSet {
			maxSet = deg
		}
		if !inCover[s] {
			continue
		}
		g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
			covered[e] = true
			return true
		})
	}
	for s := 0; s < numSets; s++ {
		var missing error
		g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
			if !covered[e] {
				missing = fmt.Errorf("setcover: element %d (coverable via set %d) is uncovered", e, s)
				return false
			}
			return true
		})
		if missing != nil {
			return missing
		}
	}

	got := CoverSize(inCover)
	want := CoverSize(GreedySetCover(g, numSets))
	if (got == 0) != (want == 0) {
		return fmt.Errorf("setcover: cover size %d but greedy oracle size %d", got, want)
	}
	factor := (1 + eps) * Harmonic(maxSet)
	if factor < 1 {
		factor = 1
	}
	slack := factor + 1e-9
	if float64(got) > slack*float64(want) {
		return fmt.Errorf("setcover: cover size %d exceeds (1+ε)·H_%d·greedy = %.2f·%d",
			got, maxSet, factor, want)
	}
	if float64(want) > slack*float64(got) {
		return fmt.Errorf("setcover: greedy size %d exceeds (1+ε)·H_%d·cover = %.2f·%d",
			want, maxSet, factor, got)
	}
	return nil
}
