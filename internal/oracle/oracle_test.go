package oracle

import (
	"testing"

	"julienne/internal/graph"
)

func sym(n int, pairs ...[2]graph.Vertex) *graph.CSR {
	edges := make([]graph.Edge, 0, len(pairs))
	for _, p := range pairs {
		edges = append(edges, graph.Edge{U: p[0], V: p[1]})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(n, edges, opt)
}

// A triangle with a pendant vertex: the triangle is a 2-core, the
// pendant has coreness 1, and an isolated vertex has coreness 0.
func TestCorenessHand(t *testing.T) {
	g := sym(5, [2]graph.Vertex{0, 1}, [2]graph.Vertex{1, 2}, [2]graph.Vertex{0, 2},
		[2]graph.Vertex{2, 3})
	got := Coreness(g)
	want := []uint32{2, 2, 2, 1, 0}
	if err := DiffUint32("coreness", got, want); err != nil {
		t.Fatal(err)
	}
}

func TestDijkstraHand(t *testing.T) {
	// 0 -> 1 (w 5), 0 -> 2 (w 1), 2 -> 1 (w 2): shortest 0->1 is 3.
	// Vertex 3 is unreachable.
	edges := []graph.Edge{
		{U: 0, V: 1, W: 5},
		{U: 0, V: 2, W: 1},
		{U: 2, V: 1, W: 2},
	}
	opt := graph.DefaultBuild
	opt.Weighted = true
	g := graph.FromEdges(4, edges, opt)
	got := Dijkstra(g, 0)
	want := []int64{0, 3, 1, Unreachable}
	if err := DiffInt64("dijkstra", got, want); err != nil {
		t.Fatal(err)
	}
}

func TestBFSAndComponentsHand(t *testing.T) {
	// Path 0-1-2 plus edge 3-4: two components.
	g := sym(5, [2]graph.Vertex{0, 1}, [2]graph.Vertex{1, 2}, [2]graph.Vertex{3, 4})
	lvl := BFSLevels(g, 0)
	wantLvl := []int32{0, 1, 2, Unreached, Unreached}
	if err := DiffInt32("bfs", lvl, wantLvl); err != nil {
		t.Fatal(err)
	}
	labels := Components(g)
	wantLab := []graph.Vertex{0, 0, 0, 3, 3}
	if err := DiffVertices("cc", labels, wantLab); err != nil {
		t.Fatal(err)
	}
	// VerifyBFS must accept a valid parent tree and reject a broken one.
	parent := []graph.Vertex{graph.NilVertex, 0, 1, graph.NilVertex, graph.NilVertex}
	if err := VerifyBFS(g, 0, lvl, parent); err != nil {
		t.Fatalf("valid tree rejected: %v", err)
	}
	parent[2] = 0 // 0 is not adjacent to 2
	if err := VerifyBFS(g, 0, lvl, parent); err == nil {
		t.Fatal("invalid parent accepted")
	}
}

func TestGreedySetCoverHand(t *testing.T) {
	// Sets 0..2 over elements 3..6. Set 0 covers {3,4,5}, set 1 covers
	// {5,6}, set 2 covers {3}. Greedy picks 0 then 1.
	edges := []graph.Edge{
		{U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 5}, {U: 1, V: 6},
		{U: 2, V: 3},
	}
	g := graph.FromEdges(7, edges, graph.DefaultBuild)
	chosen := GreedySetCover(g, 3)
	want := []bool{true, true, false}
	for s, c := range chosen {
		if c != want[s] {
			t.Fatalf("set %d: chosen=%v, want %v", s, c, want[s])
		}
	}
	if err := VerifyCover(g, 3, chosen, 0.01); err != nil {
		t.Fatalf("oracle cover rejected: %v", err)
	}
	// An invalid cover (only set 2) must be rejected.
	if err := VerifyCover(g, 3, []bool{false, false, true}, 0.01); err == nil {
		t.Fatal("invalid cover accepted")
	}
}

func TestDegenerateOracles(t *testing.T) {
	empty := graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	if got := Coreness(empty); len(got) != 0 {
		t.Fatalf("coreness of empty graph has length %d", len(got))
	}
	if got := Components(empty); len(got) != 0 {
		t.Fatalf("components of empty graph has length %d", len(got))
	}
	one := sym(1)
	if got := Coreness(one); got[0] != 0 {
		t.Fatalf("singleton coreness = %d, want 0", got[0])
	}
	if got := BFSLevels(one, 0); got[0] != 0 {
		t.Fatalf("singleton BFS level = %d, want 0", got[0])
	}
}
