// Package oracle holds small, obviously-correct sequential reference
// implementations of every algorithm family in this repository. They
// are the ground truth the differential property tests in
// internal/proptest compare the parallel, work-efficient
// implementations against, following the methodology of GBBS
// ("Theoretically Efficient Parallel Graph Algorithms Can Be Fast and
// Scalable", SPAA'18): each parallel benchmark is validated against a
// simple serial baseline whose correctness is evident by inspection.
//
// The implementations here deliberately trade efficiency for
// simplicity — linear scans instead of heaps, repeated passes instead
// of bucket queues — so that they share no code, no data-structure
// tricks, and no failure modes with the implementations under test
// (the sequential baselines in internal/algo, such as CorenessBZ and
// DijkstraHeap, are optimized enough to harbor the same class of bug
// they would be checking for). Costs are O(n^2 + m)-ish, which is fine
// for the property tests' graph sizes.
//
// Everything operates through the graph.Graph read interface, so the
// oracles run unchanged over plain CSR and compressed graphs.
package oracle

import (
	"fmt"

	"julienne/internal/graph"
)

// DiffUint32 compares two uint32-valued per-vertex results and reports
// the first mismatching vertex, for small, readable failure messages.
func DiffUint32(name string, got, want []uint32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("%s: vertex %d: got %d, want %d", name, v, got[v], want[v])
		}
	}
	return nil
}

// DiffInt64 is DiffUint32 for int64-valued results (SSSP distances).
func DiffInt64(name string, got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("%s: vertex %d: got %d, want %d", name, v, got[v], want[v])
		}
	}
	return nil
}

// DiffInt32 is DiffUint32 for int32-valued results (BFS levels).
func DiffInt32(name string, got, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("%s: vertex %d: got %d, want %d", name, v, got[v], want[v])
		}
	}
	return nil
}

// DiffVertices is DiffUint32 for Vertex-valued results (CC labels, BFS
// parents).
func DiffVertices(name string, got, want []graph.Vertex) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d, want %d", name, len(got), len(want))
	}
	for v := range want {
		if got[v] != want[v] {
			return fmt.Errorf("%s: vertex %d: got %d, want %d", name, v, got[v], want[v])
		}
	}
	return nil
}
