package oracle

import (
	"julienne/internal/graph"
)

// Components labels every vertex with the smallest vertex id in its
// connected component, computed by the textbook method: one serial
// depth-first flood per unvisited vertex in increasing id order, so
// the flood root is automatically the component minimum. The graph
// must be undirected. Matches the canonical labeling of cc.Components.
func Components(g graph.Graph) []graph.Vertex {
	if !g.Symmetric() {
		panic("oracle: Components requires an undirected graph")
	}
	n := g.NumVertices()
	label := make([]graph.Vertex, n)
	for v := range label {
		label[v] = graph.NilVertex
	}
	var stack []graph.Vertex
	for v := 0; v < n; v++ {
		if label[v] != graph.NilVertex {
			continue
		}
		root := graph.Vertex(v)
		label[v] = root
		stack = append(stack[:0], root)
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.OutNeighbors(u, func(w graph.Vertex, wt graph.Weight) bool {
				if label[w] == graph.NilVertex {
					label[w] = root
					stack = append(stack, w)
				}
				return true
			})
		}
	}
	return label
}

// VerifyComponents checks canonical component labels against the
// serial flood-fill oracle.
func VerifyComponents(g graph.Graph, got []graph.Vertex) error {
	return DiffVertices("components", got, Components(g))
}
