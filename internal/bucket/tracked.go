package bucket

import (
	"sync/atomic"

	"julienne/internal/parallel"
)

// Tracked wraps the parallel bucket structure with an internal
// identifier→bucket_id map so callers supply only the destination
// bucket, not the source. This is the alternative design §3.3
// describes and rejects: "we found that the cost of maintaining this
// array of size O(n) was significant (about 30% more expensive) ...
// due to the cost of an extra random-access read and write per
// identifier in updateBuckets". It exists so the ablation benchmark
// can measure that trade-off; applications use Par directly.
type Tracked struct {
	par  *Par
	prev []ID
}

// NewTracked mirrors New but hides GetBucket behind the internal map.
// A telemetry recorder supplied via opt.Recorder is inherited by the
// wrapped structure, so Tracked reports the same obs.CtrBucket*
// counters as Par.
func NewTracked(n int, d func(uint32) ID, order Order, opt Options) *Tracked {
	t := &Tracked{prev: make([]ID, n)}
	parallel.For(n, parallel.DefaultGrain, func(i int) {
		t.prev[i] = d(uint32(i))
	})
	t.par = New(n, d, order, opt)
	return t
}

// NextBucket forwards to the wrapped structure.
func (t *Tracked) NextBucket() (ID, []uint32) { return t.par.NextBucket() }

// NextBucketFused forwards to the wrapped structure; the internal map
// needs no adjustment because fused extraction, like NextBucket, only
// consumes stored copies (lazy insertions flow through
// UpdateBucketsTo like any other update).
func (t *Tracked) NextBucketFused(maxFrontier, maxSpan int) (ID, ID, []uint32) {
	return t.par.NextBucketFused(maxFrontier, maxSpan)
}

// DrainLazy forwards to the wrapped structure.
func (t *Tracked) DrainLazy() []uint32 { return t.par.DrainLazy() }

// Stats forwards to the wrapped structure.
func (t *Tracked) Stats() Stats { return t.par.Stats() }

// UpdateBucketsTo applies k updates where f supplies only (identifier,
// next bucket_id); the previous bucket is read from — and the new one
// written to — the internal map. The extra random read and write per
// update is exactly the overhead the paper measured. f must be pure
// with respect to j but is called once per index here (destinations
// are materialized before the forwarded update).
func (t *Tracked) UpdateBucketsTo(k int, f func(j int) (uint32, ID)) {
	ids := make([]uint32, k)
	dests := make([]Dest, k)
	parallel.For(k, parallel.DefaultGrain, func(j int) {
		id, next := f(j)
		ids[j] = id
		// The extra random read and write per update, fused into one
		// atomic swap so concurrent updates to the same identifier
		// stay well-defined (last write wins; stale copies are
		// dropped by compaction as usual).
		old := atomic.SwapUint32(&t.prev[id], next)
		dests[j] = t.par.GetBucket(old, next)
	})
	t.par.UpdateBuckets(k, func(j int) (uint32, Dest) { return ids[j], dests[j] })
}
