package bucket

import (
	"sync/atomic"

	"julienne/internal/obs"
)

// Seq is the sequential bucketing implementation of §3.2: buckets are
// represented exactly (one dynamic array per logical bucket id), updates
// are lazy insertions, and NextBucket compacts the current bucket by
// dropping identifiers whose D no longer matches. Dest values for Seq
// are simply the destination bucket id ("bucket_dest and bucket_id
// types are identical... getBucket just returns next").
//
// Seq is the oracle for differential tests and the honest
// single-threaded baseline for the benchmarks.
type Seq struct {
	d     func(uint32) ID
	order Order
	bkts  [][]uint32 // bkts[b] holds (possibly stale) copies for bucket b
	cur   int64      // logical id of the current bucket (may be -1 done)
	stats Stats
	rec   *obs.Recorder

	// dbg holds invariant-assertion state; zero-sized unless the build
	// is tagged julienne_debug (see debug_on.go / debug_off.go).
	dbg debugState
}

var _ Structure = (*Seq)(nil)

// NewSeq creates the sequential structure over identifiers [0, n) with
// initial buckets given by d (Nil means "not bucketed") traversed in
// the given order. d is retained and re-evaluated lazily, so it must
// reflect the algorithm's current identifier-to-bucket mapping.
func NewSeq(n int, d func(uint32) ID, order Order) *Seq {
	s := &Seq{d: d, order: order}
	// Initial bucket count = 1 + max initial id (§3.2: "computing the
	// initial number of buckets by iterating over D").
	maxB := ID(0)
	any := false
	for i := 0; i < n; i++ {
		if b := d(uint32(i)); b != Nil {
			any = true
			if b > maxB {
				maxB = b
			}
		}
	}
	total := 0
	if any {
		total = int(maxB) + 1
	}
	s.bkts = make([][]uint32, total)
	for i := 0; i < n; i++ {
		if b := d(uint32(i)); b != Nil {
			s.bkts[b] = append(s.bkts[b], uint32(i))
		}
	}
	if order == Increasing {
		s.cur = 0
	} else {
		s.cur = int64(total) - 1
	}
	return s
}

// NextBucket implements Structure.
func (s *Seq) NextBucket() (ID, []uint32) {
	step := int64(1)
	if s.order == Decreasing {
		step = -1
	}
	for s.cur >= 0 && s.cur < int64(len(s.bkts)) {
		b := s.bkts[s.cur]
		if len(b) == 0 {
			s.cur += step
			continue
		}
		// Compact: keep live identifiers (D(i) == cur), drop stale
		// copies left behind by lazy moves.
		live := b[:0]
		for _, id := range b {
			if s.d(id) == ID(s.cur) {
				live = append(live, id)
			}
		}
		cur := ID(s.cur)
		s.bkts[s.cur] = nil
		if len(live) == 0 {
			s.cur += step
			continue
		}
		atomic.AddInt64(&s.stats.Extracted, int64(len(live)))
		atomic.AddInt64(&s.stats.BucketsReturned, 1)
		s.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
		s.rec.Inc(obs.CtrBucketReturned)
		s.debugCheckExtract(cur, live)
		return cur, live
	}
	return Nil, nil
}

// GetBucket implements Structure. For the exact representation the
// destination is the target bucket id itself; None filters the cases
// no physical move is needed.
func (s *Seq) GetBucket(prev, next ID) Dest {
	if next == Nil || next == prev {
		return None
	}
	if s.order == Increasing {
		if s.cur >= 0 && next < ID(s.cur) {
			return None // strictly behind the traversal: dead on arrival
		}
	} else {
		if s.cur >= 0 && s.cur < int64(len(s.bkts)) && next > ID(s.cur) {
			return None
		}
	}
	return Dest(next)
}

// UpdateBuckets implements Structure, inserting each identifier into
// its destination bucket and opening new buckets as needed (§3.2:
// "opening new buckets if next is outside the current range").
func (s *Seq) UpdateBuckets(k int, f func(j int) (uint32, Dest)) {
	var moved, skipped int64
	for j := 0; j < k; j++ {
		id, dest := f(j)
		if dest == None {
			skipped++
			continue
		}
		b := int(dest)
		for b >= len(s.bkts) {
			s.bkts = append(s.bkts, nil)
		}
		s.bkts[b] = append(s.bkts[b], id)
		moved++
	}
	atomic.AddInt64(&s.stats.Moved, moved)
	atomic.AddInt64(&s.stats.Skipped, skipped)
	s.rec.Add(obs.CtrBucketMoved, moved)
	s.rec.Add(obs.CtrBucketSkipped, skipped)
	s.debugCheckUpdateTotals(k, moved, skipped)
}

// Stats implements Structure. The snapshot uses atomic loads so it is
// safe to call concurrently with NextBucket/UpdateBuckets.
func (s *Seq) Stats() Stats { return s.stats.load() }

// Observe attaches a telemetry recorder receiving obs.CtrBucket*
// counters (NewSeq takes no Options, so the recorder is attached
// separately). It returns s for chaining.
func (s *Seq) Observe(rec *obs.Recorder) *Seq {
	s.rec = rec
	return s
}
