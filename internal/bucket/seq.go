package bucket

import (
	"sync/atomic"

	"julienne/internal/obs"
)

// Seq is the sequential bucketing implementation of §3.2: buckets are
// represented exactly (one dynamic array per logical bucket id), updates
// are lazy insertions, and NextBucket compacts the current bucket by
// dropping identifiers whose D no longer matches. Dest values for Seq
// are simply the destination bucket id ("bucket_dest and bucket_id
// types are identical... getBucket just returns next").
//
// Seq is the oracle for differential tests and the honest
// single-threaded baseline for the benchmarks.
type Seq struct {
	d     func(uint32) ID
	order Order
	bkts  [][]uint32 // bkts[b] holds (possibly stale) copies for bucket b
	cur   int64      // logical id of the current bucket (may be -1 done)
	stats Stats
	rec   *obs.Recorder

	// span mirrors Par's fused span: while active, UpdateBuckets
	// routes destinations inside it to the lazy buffer instead of
	// bucket storage (Seq's Dest is the bucket id itself, so no
	// dedicated lazy Dest value is needed — membership is checked at
	// insertion time).
	span fusedSpan
	// lazy receives in-span insertions; lazyOut is the separate drain
	// buffer handed to callers, so insertions during the caller's round
	// cannot stomp the slice DrainLazy returned.
	lazy    []uint32
	lazyOut []uint32

	// dbg holds invariant-assertion state; zero-sized unless the build
	// is tagged julienne_debug (see debug_on.go / debug_off.go).
	dbg debugState
}

var (
	_ Structure = (*Seq)(nil)
	_ Fused     = (*Seq)(nil)
)

// NewSeq creates the sequential structure over identifiers [0, n) with
// initial buckets given by d (Nil means "not bucketed") traversed in
// the given order. d is retained and re-evaluated lazily, so it must
// reflect the algorithm's current identifier-to-bucket mapping.
func NewSeq(n int, d func(uint32) ID, order Order) *Seq {
	s := &Seq{d: d, order: order}
	// Initial bucket count = 1 + max initial id (§3.2: "computing the
	// initial number of buckets by iterating over D").
	maxB := ID(0)
	any := false
	for i := 0; i < n; i++ {
		if b := d(uint32(i)); b != Nil {
			any = true
			if b > maxB {
				maxB = b
			}
		}
	}
	total := 0
	if any {
		total = int(maxB) + 1
	}
	s.bkts = make([][]uint32, total)
	for i := 0; i < n; i++ {
		if b := d(uint32(i)); b != Nil {
			s.bkts[b] = append(s.bkts[b], uint32(i))
		}
	}
	if order == Increasing {
		s.cur = 0
	} else {
		s.cur = int64(total) - 1
	}
	return s
}

// NextBucket implements Structure.
func (s *Seq) NextBucket() (ID, []uint32) {
	s.closeSpan()
	step := int64(1)
	if s.order == Decreasing {
		step = -1
	}
	for s.cur >= 0 && s.cur < int64(len(s.bkts)) {
		live, ok := s.compact()
		if !ok {
			s.cur += step
			continue
		}
		cur := ID(s.cur)
		atomic.AddInt64(&s.stats.Extracted, int64(len(live)))
		atomic.AddInt64(&s.stats.BucketsReturned, 1)
		s.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
		s.rec.Inc(obs.CtrBucketReturned)
		s.debugCheckExtract(cur, live)
		return cur, live
	}
	return Nil, nil
}

// compact drops stale copies (D(i) != cur) from the current bucket in
// place and empties it, returning the live identifiers; ok is false if
// none were live.
func (s *Seq) compact() ([]uint32, bool) {
	b := s.bkts[s.cur]
	if len(b) == 0 {
		return nil, false
	}
	live := b[:0]
	for _, id := range b {
		if s.d(id) == ID(s.cur) {
			live = append(live, id)
		}
	}
	s.bkts[s.cur] = nil
	if len(live) == 0 {
		return nil, false
	}
	return live, true
}

// NextBucketFused implements the Fused interface with the exact fusion
// rule Par uses (the differential suite compares the two in lockstep):
// the first non-empty bucket is always included whole; each subsequent
// non-empty bucket joins the run iff the combined frontier stays
// within maxFrontier and the covered span stays within maxSpan. A
// rejected bucket's compacted survivors are written back and revisited
// by the next extraction.
func (s *Seq) NextBucketFused(maxFrontier, maxSpan int) (ID, ID, []uint32) {
	s.closeSpan()
	if maxFrontier < 1 {
		maxFrontier = 1
	}
	step := int64(1)
	if s.order == Decreasing {
		step = -1
	}
	first, last := Nil, Nil
	run := 0
	var out []uint32
	for s.cur >= 0 && s.cur < int64(len(s.bkts)) {
		live, ok := s.compact()
		if !ok {
			s.cur += step
			continue
		}
		if first == Nil {
			first, last = ID(s.cur), ID(s.cur)
			run = 1
			out = append(out, live...)
			s.cur += step
			continue
		}
		width := int(s.cur-int64(first)) + 1
		if s.order == Decreasing {
			width = int(int64(first)-s.cur) + 1
		}
		if len(out)+len(live) > maxFrontier || (maxSpan >= 1 && width > maxSpan) {
			// Rejected: put the compacted survivors back for the next
			// extraction, which starts here.
			s.bkts[s.cur] = live
			break
		}
		last = ID(s.cur)
		run++
		out = append(out, live...)
		s.cur += step
	}
	if first == Nil {
		return Nil, Nil, nil
	}
	// The walk passed over empty buckets (probed, or the stretch up to
	// a rejected candidate) that this round's insertions may yet land
	// in. Rewind the cursor to just after the last fused bucket so they
	// stay ahead of the traversal instead of being dropped as behind it.
	s.cur = int64(last) + step
	atomic.AddInt64(&s.stats.Extracted, int64(len(out)))
	atomic.AddInt64(&s.stats.BucketsReturned, 1)
	s.rec.Add(obs.CtrBucketExtracted, int64(len(out)))
	s.rec.Inc(obs.CtrBucketReturned)
	s.rec.Add(obs.CtrBucketRoundsSaved, int64(run-1))
	s.rec.Observe(obs.HistFusedRunLen, int64(run))
	if s.order == Increasing {
		s.span = fusedSpan{lo: first, hi: last, active: true}
	} else {
		s.span = fusedSpan{lo: last, hi: first, active: true}
	}
	s.debugCheckFused(first, last, out)
	return first, last, out
}

// DrainLazy implements the Fused interface: it returns the live
// identifiers lazily inserted into the active span and empties the
// lazy buffer. The returned slice is valid until the next DrainLazy
// call.
func (s *Seq) DrainLazy() []uint32 {
	if !s.span.active || len(s.lazy) == 0 {
		return nil
	}
	out := s.lazyOut[:0]
	for _, id := range s.lazy {
		if s.span.contains(s.d(id)) {
			out = append(out, id)
		}
	}
	s.lazyOut = out
	s.lazy = s.lazy[:0]
	if len(out) == 0 {
		return nil
	}
	atomic.AddInt64(&s.stats.Extracted, int64(len(out)))
	s.rec.Add(obs.CtrBucketExtracted, int64(len(out)))
	s.rec.Add(obs.CtrBucketLazyDrained, int64(len(out)))
	s.debugCheckLazyDrain(out)
	return out
}

// closeSpan mirrors Par.closeSpan: pending lazy identifiers at the
// next extraction are a caller bug (julienne_debug panics) and are
// dropped in release builds.
func (s *Seq) closeSpan() {
	if !s.span.active {
		return
	}
	s.debugCheckSpanClosed(len(s.lazy))
	s.lazy = s.lazy[:0]
	s.span = fusedSpan{}
}

// GetBucket implements Structure. For the exact representation the
// destination is the target bucket id itself; None filters the cases
// no physical move is needed.
func (s *Seq) GetBucket(prev, next ID) Dest {
	if next == Nil {
		return None
	}
	// Destinations inside the active fused span stay physical updates
	// even when next == prev or next is behind the traversal cursor:
	// the span's storage was consumed by the fused extraction, so the
	// identifier needs a fresh (lazy) copy to be processed this round.
	// UpdateBuckets routes in-span destinations to the lazy buffer.
	if s.span.contains(next) {
		return Dest(next)
	}
	if next == prev {
		return None
	}
	if s.order == Increasing {
		if s.cur >= 0 && next < ID(s.cur) {
			return None // strictly behind the traversal: dead on arrival
		}
	} else {
		if s.cur >= 0 && s.cur < int64(len(s.bkts)) && next > ID(s.cur) {
			return None
		}
	}
	return Dest(next)
}

// UpdateBuckets implements Structure, inserting each identifier into
// its destination bucket and opening new buckets as needed (§3.2:
// "opening new buckets if next is outside the current range").
func (s *Seq) UpdateBuckets(k int, f func(j int) (uint32, Dest)) {
	var moved, skipped int64
	for j := 0; j < k; j++ {
		id, dest := f(j)
		if dest == None {
			skipped++
			continue
		}
		// Lazy insertion: while a fused span is active, destinations
		// inside it bypass bucket storage (which the fused extraction
		// already consumed) and queue for DrainLazy instead.
		if s.span.contains(ID(dest)) {
			s.lazy = append(s.lazy, id)
			moved++
			continue
		}
		b := int(dest)
		for b >= len(s.bkts) {
			s.bkts = append(s.bkts, nil)
		}
		s.bkts[b] = append(s.bkts[b], id)
		moved++
	}
	atomic.AddInt64(&s.stats.Moved, moved)
	atomic.AddInt64(&s.stats.Skipped, skipped)
	s.rec.Add(obs.CtrBucketMoved, moved)
	s.rec.Add(obs.CtrBucketSkipped, skipped)
	s.debugCheckUpdateTotals(k, moved, skipped)
}

// Stats implements Structure. The snapshot uses atomic loads so it is
// safe to call concurrently with NextBucket/UpdateBuckets.
func (s *Seq) Stats() Stats { return s.stats.load() }

// Observe attaches a telemetry recorder receiving obs.CtrBucket*
// counters (NewSeq takes no Options, so the recorder is attached
// separately). It returns s for chaining.
func (s *Seq) Observe(rec *obs.Recorder) *Seq {
	s.rec = rec
	return s
}
