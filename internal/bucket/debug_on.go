//go:build julienne_debug

package bucket

import "fmt"

// This file is the julienne_debug half of the assertion pair declared
// in debug_off.go: building with `-tags julienne_debug` compiles the
// bucket structure's internal contract into every operation, so the
// property tests in internal/proptest exercise the §3 invariants
// directly rather than only end-to-end algorithm outputs. The checks
// are deliberately O(work) per operation — debug builds are for tests,
// not benchmarks.
//
// Invariants asserted:
//
//   - extraction liveness: every identifier returned by NextBucket has
//     D(i) equal to the returned bucket id, is unique within the
//     returned slice, and is a valid identifier;
//   - traversal monotonicity: bucket ids returned by NextBucket are
//     non-decreasing under Increasing order (non-increasing under
//     Decreasing) — non-strict, because algorithms legally reinsert
//     into the current bucket;
//   - update destinations: every non-None Dest passed to UpdateBuckets
//     addresses a real physical slot (open range or overflow);
//   - bookkeeping: each UpdateBuckets call moves + skips exactly its k
//     requests, and the cumulative Stats counters agree with shadow
//     counts maintained here;
//   - single live copy: across the whole structure, each identifier
//     has at most one live copy (a stored copy whose slot matches its
//     current D value) — stale copies from lazy deletion may be
//     plentiful, live ones may not;
//   - fused extraction (DESIGN.md §11): the fused range is contiguous
//     and non-empty with both endpoints witnessed by a live
//     identifier, every returned identifier's D falls inside the
//     range, lazy-slot destinations only occur while a span is
//     active, every lazily drained identifier's D falls inside the
//     active span, and a span may not close with undrained lazy
//     identifiers.

// DebugEnabled reports whether invariant assertions are compiled in.
const DebugEnabled = true

// debugState is the shadow bookkeeping behind the assertions.
type debugState struct {
	last      ID
	hasLast   bool
	extracted int64
	returned  int64
	moved     int64
	skipped   int64
}

func (d *debugState) checkExtract(order Order, cur ID, live []uint32, n int, dfn func(uint32) ID, s Stats) {
	if d.hasLast {
		if order == Increasing && cur < d.last {
			panic(fmt.Sprintf("bucket debug: NextBucket returned %d after %d under Increasing order", cur, d.last))
		}
		if order == Decreasing && cur > d.last {
			panic(fmt.Sprintf("bucket debug: NextBucket returned %d after %d under Decreasing order", cur, d.last))
		}
	}
	d.last, d.hasLast = cur, true
	seen := make(map[uint32]struct{}, len(live))
	for _, id := range live {
		if n >= 0 && int(id) >= n {
			panic(fmt.Sprintf("bucket debug: extracted identifier %d out of range [0,%d)", id, n))
		}
		if got := dfn(id); got != cur {
			panic(fmt.Sprintf("bucket debug: extracted identifier %d from bucket %d but D(i)=%d", id, cur, got))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("bucket debug: identifier %d extracted twice from bucket %d", id, cur))
		}
		seen[id] = struct{}{}
	}
	d.extracted += int64(len(live))
	d.returned++
	if s.Extracted != d.extracted || s.BucketsReturned != d.returned {
		panic(fmt.Sprintf("bucket debug: Stats extraction bookkeeping (Extracted=%d BucketsReturned=%d) diverged from shadow (%d, %d)",
			s.Extracted, s.BucketsReturned, d.extracted, d.returned))
	}
}

// checkFused asserts the fused-extraction contract: contiguous
// non-empty range in traversal order with witnessed endpoints,
// monotonicity against the previous round, and per-identifier
// liveness/uniqueness, then folds the frontier into the extraction
// shadow counters (one fused call is one BucketsReturned).
func (d *debugState) checkFused(order Order, first, last ID, live []uint32, n int, dfn func(uint32) ID, span fusedSpan, s Stats) {
	if (order == Increasing && first > last) || (order == Decreasing && first < last) {
		panic(fmt.Sprintf("bucket debug: fused range [%d, %d] is not contiguous in traversal order", first, last))
	}
	if len(live) == 0 {
		panic(fmt.Sprintf("bucket debug: fused range [%d, %d] returned an empty frontier", first, last))
	}
	if d.hasLast {
		if order == Increasing && first < d.last {
			panic(fmt.Sprintf("bucket debug: fused run starts at %d after %d under Increasing order", first, d.last))
		}
		if order == Decreasing && first > d.last {
			panic(fmt.Sprintf("bucket debug: fused run starts at %d after %d under Decreasing order", first, d.last))
		}
	}
	d.last, d.hasLast = last, true
	seen := make(map[uint32]struct{}, len(live))
	firstSeen, lastSeen := false, false
	for _, id := range live {
		if n >= 0 && int(id) >= n {
			panic(fmt.Sprintf("bucket debug: fused extraction returned identifier %d out of range [0,%d)", id, n))
		}
		got := dfn(id)
		if !span.contains(got) {
			panic(fmt.Sprintf("bucket debug: fused range [%d, %d] returned identifier %d with D(i)=%d outside it", first, last, id, got))
		}
		if got == first {
			firstSeen = true
		}
		if got == last {
			lastSeen = true
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("bucket debug: identifier %d extracted twice from fused range [%d, %d]", id, first, last))
		}
		seen[id] = struct{}{}
	}
	if !firstSeen || !lastSeen {
		panic(fmt.Sprintf("bucket debug: fused range [%d, %d] endpoints not both witnessed by a live identifier (first=%v last=%v)", first, last, firstSeen, lastSeen))
	}
	d.extracted += int64(len(live))
	d.returned++
	if s.Extracted != d.extracted || s.BucketsReturned != d.returned {
		panic(fmt.Sprintf("bucket debug: Stats fused-extraction bookkeeping (Extracted=%d BucketsReturned=%d) diverged from shadow (%d, %d)",
			s.Extracted, s.BucketsReturned, d.extracted, d.returned))
	}
}

// checkLazyDrain asserts that every lazily drained identifier is
// unique and still maps into the active span, then folds the drain
// into the extraction shadow (a drain is extraction work but not a
// returned bucket).
func (d *debugState) checkLazyDrain(live []uint32, n int, dfn func(uint32) ID, span fusedSpan, s Stats) {
	if !span.active {
		panic("bucket debug: DrainLazy returned identifiers without an active fused span")
	}
	seen := make(map[uint32]struct{}, len(live))
	for _, id := range live {
		if n >= 0 && int(id) >= n {
			panic(fmt.Sprintf("bucket debug: lazy drain returned identifier %d out of range [0,%d)", id, n))
		}
		if got := dfn(id); !span.contains(got) {
			panic(fmt.Sprintf("bucket debug: lazy drain returned identifier %d with D(i)=%d outside the fused span [%d, %d]", id, got, span.lo, span.hi))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("bucket debug: identifier %d drained twice from the fused span [%d, %d]", id, span.lo, span.hi))
		}
		seen[id] = struct{}{}
	}
	d.extracted += int64(len(live))
	if s.Extracted != d.extracted {
		panic(fmt.Sprintf("bucket debug: Stats lazy-drain bookkeeping (Extracted=%d) diverged from shadow (%d)", s.Extracted, d.extracted))
	}
}

// checkSpanClosed asserts a fused span is not abandoned with pending
// lazy identifiers: a conforming caller drains until empty before the
// next extraction call.
func (d *debugState) checkSpanClosed(pending int) {
	if pending > 0 {
		panic(fmt.Sprintf("bucket debug: fused span closed with %d undrained lazy identifiers", pending))
	}
}

func (d *debugState) checkUpdateTotals(k int, moved, skipped int64, s Stats) {
	if moved+skipped != int64(k) {
		panic(fmt.Sprintf("bucket debug: UpdateBuckets(k=%d) accounted for moved=%d + skipped=%d requests", k, moved, skipped))
	}
	d.moved += moved
	d.skipped += skipped
	if s.Moved != d.moved || s.Skipped != d.skipped {
		panic(fmt.Sprintf("bucket debug: Stats update bookkeeping (Moved=%d Skipped=%d) diverged from shadow (%d, %d)",
			s.Moved, s.Skipped, d.moved, d.skipped))
	}
}

func (b *Par) debugReset() { b.dbg = debugState{} }

func (b *Par) debugCheckExtract(cur ID, live []uint32) {
	b.dbg.checkExtract(b.order, cur, live, b.n, b.d, b.Stats())
}

func (b *Par) debugCheckUpdate(k int, f func(int) (uint32, Dest)) {
	for j := 0; j < k; j++ {
		id, dest := f(j)
		if dest == None {
			continue
		}
		if int(id) >= b.n {
			panic(fmt.Sprintf("bucket debug: update %d targets identifier %d out of range [0,%d)", j, id, b.n))
		}
		if int(dest) == b.nB+1 {
			// The lazy slot is only addressable while a fused span is
			// active; GetBucket never produces it otherwise.
			if !b.span.active {
				panic(fmt.Sprintf("bucket debug: update %d targets the lazy slot without an active fused span", j))
			}
			continue
		}
		if int(dest) > b.nB {
			panic(fmt.Sprintf("bucket debug: update %d has destination slot %d beyond overflow slot %d", j, dest, b.nB))
		}
	}
}

func (b *Par) debugCheckFused(first, last ID, live []uint32) {
	b.dbg.checkFused(b.order, first, last, live, b.n, b.d, b.span, b.Stats())
}

func (b *Par) debugCheckLazyDrain(live []uint32) {
	b.dbg.checkLazyDrain(live, b.n, b.d, b.span, b.Stats())
}

func (b *Par) debugCheckSpanClosed(pending int) {
	b.dbg.checkSpanClosed(pending)
}

func (b *Par) debugCheckUpdateTotals(k int, moved, skipped int64) {
	b.dbg.checkUpdateTotals(k, moved, skipped, b.Stats())
}

// debugCheckStructure walks every physical slot and asserts the single
// live copy invariant: an identifier may have stale copies anywhere,
// but at most one copy whose location matches its current D value
// (open slot with matching logical id, or the overflow slot while D is
// beyond the open range). Two live copies of one identifier would make
// NextBucket extract it twice.
func (b *Par) debugCheckStructure() {
	if b.done {
		return
	}
	live := make(map[uint32]int)
	check := func(slot int, ids []uint32, overflow, lazy bool) {
		for _, id := range ids {
			if int(id) >= b.n {
				panic(fmt.Sprintf("bucket debug: slot %d stores identifier %d out of range [0,%d)", slot, id, b.n))
			}
			d := b.d(id)
			isLive := false
			switch {
			case lazy:
				isLive = b.span.contains(d)
			case overflow:
				isLive = b.beyond(d)
			default:
				isLive = d == b.logical(slot)
			}
			if isLive {
				live[id]++
				if live[id] > 1 {
					panic(fmt.Sprintf("bucket debug: identifier %d has %d live copies (D=%d)", id, live[id], d))
				}
			}
		}
	}
	for slot := 0; slot <= b.nB+1; slot++ {
		bk := &b.bkts[slot]
		if slot == b.nB+1 && !b.span.active && bk.n != 0 {
			panic(fmt.Sprintf("bucket debug: lazy slot holds %d identifiers without an active fused span", bk.n))
		}
		n := 0
		for _, chunk := range bk.chunks {
			check(slot, chunk, slot == b.nB, slot == b.nB+1)
			n += len(chunk)
		}
		if n != bk.n {
			panic(fmt.Sprintf("bucket debug: slot %d chunks hold %d identifiers but n is %d", slot, n, bk.n))
		}
	}
}

func (s *Seq) debugCheckExtract(cur ID, live []uint32) {
	s.dbg.checkExtract(s.order, cur, live, -1, s.d, s.Stats())
}

func (s *Seq) debugCheckUpdateTotals(k int, moved, skipped int64) {
	s.dbg.checkUpdateTotals(k, moved, skipped, s.Stats())
}

func (s *Seq) debugCheckFused(first, last ID, live []uint32) {
	s.dbg.checkFused(s.order, first, last, live, -1, s.d, s.span, s.Stats())
}

func (s *Seq) debugCheckLazyDrain(live []uint32) {
	s.dbg.checkLazyDrain(live, -1, s.d, s.span, s.Stats())
}

func (s *Seq) debugCheckSpanClosed(pending int) {
	s.dbg.checkSpanClosed(pending)
}
