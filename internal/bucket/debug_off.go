//go:build !julienne_debug

package bucket

// This file is the default (release) half of the julienne_debug pair:
// every assertion hook is an empty, inlinable no-op, so the invariant
// checks in debug_on.go cost nothing unless the build is tagged
// `julienne_debug`. See debug_on.go for the invariants themselves.

// DebugEnabled reports whether invariant assertions are compiled in.
const DebugEnabled = false

// debugState carries the shadow bookkeeping the assertions need; it is
// empty in release builds so the structs pay no memory cost.
type debugState struct{}

func (b *Par) debugReset()                                        {}
func (b *Par) debugCheckExtract(cur ID, live []uint32)            {}
func (b *Par) debugCheckUpdate(k int, f func(int) (uint32, Dest)) {}
func (b *Par) debugCheckUpdateTotals(k int, moved, skipped int64) {}
func (b *Par) debugCheckStructure()                               {}
func (b *Par) debugCheckFused(first, last ID, live []uint32)      {}
func (b *Par) debugCheckLazyDrain(live []uint32)                  {}
func (b *Par) debugCheckSpanClosed(pending int)                   {}

func (s *Seq) debugCheckExtract(cur ID, live []uint32)            {}
func (s *Seq) debugCheckUpdateTotals(k int, moved, skipped int64) {}
func (s *Seq) debugCheckFused(first, last ID, live []uint32)      {}
func (s *Seq) debugCheckLazyDrain(live []uint32)                  {}
func (s *Seq) debugCheckSpanClosed(pending int)                   {}
