package bucket

import (
	"sort"
	"testing"

	"julienne/internal/rng"
)

// --- basic semantics, both implementations -------------------------------

// makeBoth builds a Seq and a Par structure over the same D array.
func makeBoth(d []ID, order Order, opt Options) (*Seq, *Par) {
	get := func(i uint32) ID { return d[i] }
	return NewSeq(len(d), get, order), New(len(d), get, order, opt)
}

func asSet(ids []uint32) map[uint32]bool {
	m := make(map[uint32]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func drainAll(t *testing.T, s Structure) map[uint32]ID {
	t.Helper()
	got := map[uint32]ID{}
	prev := ID(0)
	first := true
	for {
		b, ids := s.NextBucket()
		if b == Nil {
			if ids != nil {
				t.Fatal("Nil bucket with identifiers")
			}
			return got
		}
		if len(ids) == 0 {
			t.Fatal("empty bucket returned")
		}
		if !first && b < prev {
			// callers of drainAll only use Increasing order
			t.Fatalf("buckets not monotone: %d after %d", b, prev)
		}
		prev, first = b, false
		for _, id := range ids {
			if _, dup := got[id]; dup {
				t.Fatalf("identifier %d extracted twice", id)
			}
			got[id] = b
		}
	}
}

func TestStaticExtractionIncreasing(t *testing.T) {
	// Static workload: no updates; each identifier must come out of its
	// initial bucket exactly once, in increasing bucket order.
	d := []ID{5, 3, 3, Nil, 0, 7, 3, 1000}
	for _, opt := range []Options{{}, {OpenBuckets: 2}, {Semisort: true}, {OpenBuckets: 1}} {
		seq, par := makeBoth(d, Increasing, opt)
		for name, s := range map[string]Structure{"seq": seq, "par": par} {
			got := drainAll(t, s)
			if len(got) != 7 {
				t.Fatalf("%s opt=%+v: extracted %d ids, want 7", name, opt, len(got))
			}
			for id, b := range got {
				if d[id] != b {
					t.Fatalf("%s: id %d extracted from bucket %d, want %d", name, id, b, d[id])
				}
			}
		}
	}
}

func TestStaticExtractionDecreasing(t *testing.T) {
	d := []ID{5, 3, 3, Nil, 0, 7, 3}
	for _, opt := range []Options{{}, {OpenBuckets: 2}, {Semisort: true}} {
		seq, par := makeBoth(d, Decreasing, opt)
		for name, s := range map[string]Structure{"seq": seq, "par": par} {
			var order []ID
			seen := map[uint32]bool{}
			for {
				b, ids := s.NextBucket()
				if b == Nil {
					break
				}
				order = append(order, b)
				for _, id := range ids {
					if seen[id] {
						t.Fatalf("%s: dup extraction of %d", name, id)
					}
					seen[id] = true
					if d[id] != b {
						t.Fatalf("%s: id %d from bucket %d want %d", name, id, b, d[id])
					}
				}
			}
			if len(seen) != 6 {
				t.Fatalf("%s opt=%+v: extracted %d ids, want 6", name, opt, len(seen))
			}
			if !sort.SliceIsSorted(order, func(i, j int) bool { return order[i] > order[j] }) {
				t.Fatalf("%s: buckets not decreasing: %v", name, order)
			}
		}
	}
}

func TestEmptyStructure(t *testing.T) {
	d := []ID{Nil, Nil, Nil}
	seq, par := makeBoth(d, Increasing, Options{})
	for name, s := range map[string]Structure{"seq": seq, "par": par} {
		if b, ids := s.NextBucket(); b != Nil || ids != nil {
			t.Fatalf("%s: expected exhausted structure", name)
		}
	}
}

func TestZeroIdentifiers(t *testing.T) {
	get := func(i uint32) ID { return 0 }
	for _, s := range []Structure{NewSeq(0, get, Increasing), New(0, get, Increasing, Options{})} {
		if b, _ := s.NextBucket(); b != Nil {
			t.Fatal("empty structure returned a bucket")
		}
	}
}

func TestGetBucketNoneCases(t *testing.T) {
	d := []ID{0, 1, 2, 3}
	seq, par := makeBoth(d, Increasing, Options{})
	for name, s := range map[string]Structure{"seq": seq, "par": par} {
		b, _ := s.NextBucket() // positions traversal at bucket 0
		if b != 0 {
			t.Fatalf("%s: first bucket %d", name, b)
		}
		if dst := s.GetBucket(2, Nil); dst != None {
			t.Fatalf("%s: GetBucket(next=Nil) = %d, want None", name, dst)
		}
		if dst := s.GetBucket(2, 2); dst != None {
			t.Fatalf("%s: GetBucket(prev==next) = %d, want None", name, dst)
		}
	}
}

func TestCurrentBucketReinsertion(t *testing.T) {
	// k-core's signature behaviour: identifiers inserted back into the
	// current bucket must be returned by a subsequent NextBucket call
	// with the same bucket id (§3.1: "the cur bucket can potentially be
	// returned more than once").
	d := []ID{0, 5, 5}
	for _, opt := range []Options{{}, {Semisort: true}, {OpenBuckets: 2}} {
		seq, par := makeBoth(d, Increasing, opt)
		for name, s := range map[string]Structure{"seq": seq, "par": par} {
			b, ids := s.NextBucket()
			if b != 0 || len(ids) != 1 {
				t.Fatalf("%s: first extraction (%d,%v)", name, b, ids)
			}
			// Move identifier 1 into the current bucket.
			d[1] = 0
			dst := s.GetBucket(5, 0)
			if dst == None {
				t.Fatalf("%s: move into current bucket returned None", name)
			}
			s.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, dst })
			b2, ids2 := s.NextBucket()
			if b2 != 0 || len(ids2) != 1 || ids2[0] != 1 {
				t.Fatalf("%s: reinsertion not returned: (%d,%v)", name, b2, ids2)
			}
			b3, ids3 := s.NextBucket()
			if b3 != 5 || len(ids3) != 1 || ids3[0] != 2 {
				t.Fatalf("%s: final bucket (%d,%v)", name, b3, ids3)
			}
			d[1] = 5 // restore for the next implementation under test
		}
	}
}

func TestLazyDeletionDropsStaleCopies(t *testing.T) {
	// Move an identifier forward twice before its bucket is visited:
	// only the final copy may surface.
	d := []ID{0, 1}
	seq, par := makeBoth(d, Increasing, Options{})
	for name, s := range map[string]Structure{"seq": seq, "par": par} {
		d[1] = 1
		// Move id 1 from bucket 1 to 3, then from 3 to 2.
		d[1] = 3
		s.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, s.GetBucket(1, 3) })
		d[1] = 2
		s.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, s.GetBucket(3, 2) })
		got := drainAll(t, s)
		if got[1] != 2 {
			t.Fatalf("%s: id 1 extracted from %d, want 2", name, got[1])
		}
		if got[0] != 0 {
			t.Fatalf("%s: id 0 extracted from %d, want 0", name, got[0])
		}
	}
}

func TestMoveToNilNeverReturned(t *testing.T) {
	d := []ID{0, 4}
	seq, par := makeBoth(d, Increasing, Options{})
	for name, s := range map[string]Structure{"seq": seq, "par": par} {
		d[1] = 4
		prev := d[1]
		d[1] = Nil
		s.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, s.GetBucket(prev, Nil) })
		got := drainAll(t, s)
		if _, ok := got[1]; ok {
			t.Fatalf("%s: identifier moved to Nil was extracted", name)
		}
		d[1] = 4
	}
}

// --- overflow / open-range behaviour (§3.3) ------------------------------

func TestOverflowRangeAdvance(t *testing.T) {
	// With nB = 4 and buckets spread over [0, 100], identifiers beyond
	// the open range must sit in overflow and surface correctly after
	// range advances.
	n := 500
	d := make([]ID, n)
	r := rng.New(1)
	for i := range d {
		d[i] = ID(r.IntN(101))
	}
	get := func(i uint32) ID { return d[i] }
	par := New(n, get, Increasing, Options{OpenBuckets: 4})
	if _, _, overflow := par.CurrentRange(); overflow == 0 {
		t.Fatal("expected identifiers in overflow with nB=4")
	}
	got := drainAll(t, par)
	if len(got) != n {
		t.Fatalf("extracted %d ids, want %d", len(got), n)
	}
	for id, b := range got {
		if d[id] != b {
			t.Fatalf("id %d from bucket %d want %d", id, b, d[id])
		}
	}
	if par.Stats().RangeAdvances == 0 {
		t.Fatal("expected at least one range advance")
	}
}

func TestRangeAdvanceSkipsEmptyRanges(t *testing.T) {
	// Buckets 0 and 1<<20 only: the traversal must jump directly, not
	// walk ~8000 empty ranges.
	d := []ID{0, 1 << 20}
	get := func(i uint32) ID { return d[i] }
	par := New(2, get, Increasing, Options{OpenBuckets: 128})
	got := drainAll(t, par)
	if got[0] != 0 || got[1] != 1<<20 {
		t.Fatalf("got %v", got)
	}
	if adv := par.Stats().RangeAdvances; adv != 1 {
		t.Fatalf("RangeAdvances=%d, want 1 (direct jump)", adv)
	}
}

func TestMovesWithinOverflowAreFree(t *testing.T) {
	// An identifier logically moving between two out-of-range buckets
	// must not be physically moved (§3.3).
	d := []ID{0, 1000}
	get := func(i uint32) ID { return d[i] }
	par := New(2, get, Increasing, Options{OpenBuckets: 8})
	d[1] = 900
	if dst := par.GetBucket(1000, 900); dst != None {
		t.Fatalf("overflow->overflow move got dest %d, want None", dst)
	}
	moved := par.Stats().Moved
	par.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, par.GetBucket(1000, 900) })
	if par.Stats().Moved != moved {
		t.Fatal("overflow->overflow move incremented Moved")
	}
	got := drainAll(t, par)
	if got[1] != 900 {
		t.Fatalf("id 1 extracted from %d, want 900", got[1])
	}
}

func TestDecreasingOverflow(t *testing.T) {
	n := 300
	d := make([]ID, n)
	r := rng.New(3)
	for i := range d {
		d[i] = ID(r.IntN(64))
	}
	get := func(i uint32) ID { return d[i] }
	par := New(n, get, Decreasing, Options{OpenBuckets: 4})
	seen := map[uint32]ID{}
	last := ID(1 << 30)
	for {
		b, ids := par.NextBucket()
		if b == Nil {
			break
		}
		if b > last {
			t.Fatalf("buckets not decreasing: %d after %d", b, last)
		}
		last = b
		for _, id := range ids {
			if _, dup := seen[id]; dup {
				t.Fatalf("dup extraction %d", id)
			}
			seen[id] = b
		}
	}
	if len(seen) != n {
		t.Fatalf("extracted %d want %d", len(seen), n)
	}
	for id, b := range seen {
		if d[id] != b {
			t.Fatalf("id %d from %d want %d", id, b, d[id])
		}
	}
}

// --- stats ----------------------------------------------------------------

func TestStatsCounting(t *testing.T) {
	d := []ID{0, 0, 1}
	_, par := makeBoth(d, Increasing, Options{})
	b, ids := par.NextBucket()
	if b != 0 || len(ids) != 2 {
		t.Fatalf("unexpected first bucket (%d, %v)", b, ids)
	}
	st := par.Stats()
	if st.Extracted != 2 || st.BucketsReturned != 1 {
		t.Fatalf("stats after extract: %+v", st)
	}
	// One real move, one skipped.
	d[2] = 5
	dests := []Dest{par.GetBucket(1, 5), None}
	idsArr := []uint32{2, 0}
	par.UpdateBuckets(2, func(j int) (uint32, Dest) { return idsArr[j], dests[j] })
	st = par.Stats()
	if st.Moved != 1 {
		t.Fatalf("Moved=%d want 1", st.Moved)
	}
	if st.Skipped != 1 {
		t.Fatalf("Skipped=%d want 1", st.Skipped)
	}
	if st.Throughput() != 3 {
		t.Fatalf("Throughput=%d want 3", st.Throughput())
	}
}

// --- differential test: Par vs Seq under a dynamic workload ---------------

// runDifferential drives both implementations through an identical
// microbenchmark-style dynamic workload (§3.4): each round extracts a
// bucket, then each extracted identifier updates up to `fanout`
// pseudo-random other identifiers to bucket max(cur, D(v)/2), or Nil if
// D(v) <= cur. Extracted identifiers are retired by setting D to Nil.
func runDifferential(t *testing.T, n, fanout int, order Order, opt Options, seed uint64) {
	t.Helper()
	d := make([]ID, n)
	initial := make([]ID, n)
	for i := range d {
		d[i] = ID(rng.UintNAt(seed, uint64(i), 1000))
		initial[i] = d[i]
	}
	get := func(i uint32) ID { return d[i] }
	seq := NewSeq(n, get, order)
	par := New(n, get, order, opt)

	extracted := map[uint32]bool{}
	round := 0
	for {
		round++
		if round > 100000 {
			t.Fatal("differential run did not terminate")
		}
		sb, sids := seq.NextBucket()
		pb, pids := par.NextBucket()
		if sb != pb {
			t.Fatalf("round %d: bucket mismatch seq=%d par=%d", round, sb, pb)
		}
		if sb == Nil {
			break
		}
		ss, ps := asSet(sids), asSet(pids)
		if len(ss) != len(ps) {
			t.Fatalf("round %d bucket %d: sizes %d vs %d", round, sb, len(ss), len(ps))
		}
		for id := range ss {
			if !ps[id] {
				t.Fatalf("round %d bucket %d: id %d missing from par", round, sb, id)
			}
		}
		cur := sb
		// Retire extracted identifiers.
		for _, id := range sids {
			if extracted[id] {
				t.Fatalf("id %d extracted twice", id)
			}
			extracted[id] = true
			d[id] = Nil
		}
		// Compute updates against the shared logical state.
		type upd struct {
			id   uint32
			prev ID
			next ID
		}
		var updates []upd
		for _, id := range sids {
			for j := 0; j < fanout; j++ {
				v := uint32(rng.UintNAt(seed^0xbeef, uint64(round)<<20|uint64(id)<<4|uint64(j), uint64(n)))
				if d[v] == Nil {
					continue
				}
				prev := d[v]
				var next ID
				moreExtreme := prev > cur
				if order == Decreasing {
					moreExtreme = prev < cur
				}
				if moreExtreme {
					next = max(cur, prev/2)
					if order == Decreasing {
						next = min(cur, prev+(prev/2)+1)
						if next > cur {
							next = cur
						}
					}
				} else {
					next = Nil
				}
				if next == Nil {
					d[v] = Nil
				} else {
					d[v] = next
				}
				updates = append(updates, upd{v, prev, next})
			}
		}
		// Apply to each structure with its own GetBucket.
		sDests := make([]Dest, len(updates))
		pDests := make([]Dest, len(updates))
		for i, u := range updates {
			sDests[i] = seq.GetBucket(u.prev, u.next)
			pDests[i] = par.GetBucket(u.prev, u.next)
		}
		seq.UpdateBuckets(len(updates), func(j int) (uint32, Dest) { return updates[j].id, sDests[j] })
		par.UpdateBuckets(len(updates), func(j int) (uint32, Dest) { return updates[j].id, pDests[j] })
	}
	// Every initially-bucketed identifier must either have been
	// extracted or retired via a Nil move.
	for i := range d {
		if initial[i] != Nil && !extracted[uint32(i)] && d[i] != Nil {
			t.Fatalf("id %d lost: D=%d", i, d[i])
		}
	}
}

func TestDifferentialIncreasing(t *testing.T) {
	for _, opt := range []Options{{}, {OpenBuckets: 3}, {OpenBuckets: 16}, {Semisort: true}} {
		runDifferential(t, 2000, 4, Increasing, opt, 11)
	}
}

func TestDifferentialDecreasing(t *testing.T) {
	for _, opt := range []Options{{}, {OpenBuckets: 3}, {Semisort: true}} {
		runDifferential(t, 2000, 4, Decreasing, opt, 13)
	}
}

func TestDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	runDifferential(t, 20000, 8, Increasing, Options{OpenBuckets: 128}, 17)
}

// --- parallel update stress -----------------------------------------------

func TestLargeBulkUpdate(t *testing.T) {
	// Exceed several update blocks (M = 2048) in a single call.
	n := 100000
	d := make([]ID, n)
	for i := range d {
		d[i] = ID(i % 513)
	}
	get := func(i uint32) ID { return d[i] }
	for _, opt := range []Options{{}, {Semisort: true}, {OpenBuckets: 1024}} {
		par := New(n, get, Increasing, opt)
		got := drainAll(t, par)
		if len(got) != n {
			t.Fatalf("opt=%+v extracted %d want %d", opt, len(got), n)
		}
	}
}

func TestChunkAllocRecycles(t *testing.T) {
	b := &Par{}
	s := b.chunkAlloc(8)
	if len(s) != 8 {
		t.Fatalf("len=%d", len(s))
	}
	// A spent chunk is recycled: the next request it can satisfy must be
	// served from the free list, not the allocator.
	b.freePut(s)
	s2 := b.chunkAlloc(5)
	if len(s2) != 5 || cap(s2) != 8 || &s2[0] != &s[0] {
		t.Fatalf("chunk not recycled: len=%d cap=%d", len(s2), cap(s2))
	}
	// Best fit: the smallest adequate array wins.
	big := b.chunkAlloc(64)
	small := b.chunkAlloc(16)
	b.freePut(big)
	b.freePut(small)
	got := b.chunkAlloc(10)
	if &got[0] != &small[0] {
		t.Fatal("best-fit freeGet should pick the 16-cap array over the 64-cap one")
	}
}

func TestHugeBucketIDsNearCeiling(t *testing.T) {
	// Bucket ids adjacent to the Nil sentinel must work: setRange's
	// saturating arithmetic keeps rangeHi < Nil.
	d := []ID{Nil - 2, Nil - 1, 5}
	get := func(i uint32) ID { return d[i] }
	par := New(3, get, Increasing, Options{OpenBuckets: 8})
	got := drainAll(t, par)
	if got[2] != 5 || got[0] != Nil-2 || got[1] != Nil-1 {
		t.Fatalf("got %v", got)
	}
}

func TestDecreasingNearZero(t *testing.T) {
	d := []ID{0, 1, 2}
	get := func(i uint32) ID { return d[i] }
	par := New(3, get, Decreasing, Options{OpenBuckets: 8})
	seen := 0
	last := ID(1 << 30)
	for {
		b, ids := par.NextBucket()
		if b == Nil {
			break
		}
		if b > last {
			t.Fatalf("order violation")
		}
		last = b
		seen += len(ids)
	}
	if seen != 3 {
		t.Fatalf("extracted %d", seen)
	}
}

func TestUpdateAfterDoneIsNoop(t *testing.T) {
	d := []ID{0}
	get := func(i uint32) ID { return d[i] }
	par := New(1, get, Increasing, Options{})
	drainAll(t, par)
	// Structure exhausted: further updates must be ignored safely.
	par.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, Dest(0) })
	if b, _ := par.NextBucket(); b != Nil {
		t.Fatal("update after done resurrected the structure")
	}
	if par.GetBucket(0, 3) != None {
		t.Fatal("GetBucket after done should be None")
	}
}

func TestSeqStatsAndThroughput(t *testing.T) {
	d := []ID{0, 0}
	seq := NewSeq(2, func(i uint32) ID { return d[i] }, Increasing)
	seq.NextBucket()
	st := seq.Stats()
	if st.Extracted != 2 || st.Throughput() != 2 {
		t.Fatalf("stats %+v", st)
	}
}
