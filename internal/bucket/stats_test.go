package bucket

import (
	"sync"
	"testing"

	"julienne/internal/obs"
)

func TestStatsSub(t *testing.T) {
	cur := Stats{Extracted: 10, Moved: 8, Skipped: 6, BucketsReturned: 4, RangeAdvances: 2}
	prev := Stats{Extracted: 7, Moved: 3, Skipped: 6, BucketsReturned: 1, RangeAdvances: 0}
	d := cur.Sub(prev)
	want := Stats{Extracted: 3, Moved: 5, Skipped: 0, BucketsReturned: 3, RangeAdvances: 2}
	if d != want {
		t.Fatalf("Sub=%+v, want %+v", d, want)
	}
	if z := cur.Sub(cur); z != (Stats{}) {
		t.Fatalf("x.Sub(x)=%+v, want zero", z)
	}
}

// drain peels a simple structure where identifier i starts in bucket
// i%buckets and every extracted identifier is moved once to bucket+1
// before going to Nil.
func drain(b Structure, d []ID) {
	for {
		cur, ids := b.NextBucket()
		if cur == Nil {
			return
		}
		type upd struct {
			id   uint32
			dest Dest
		}
		var ups []upd
		for _, id := range ids {
			prev := d[id]
			next := Nil
			if prev == cur && cur < 4 {
				next = cur + 1
			}
			d[id] = next
			if dest := b.GetBucket(prev, next); dest != None {
				ups = append(ups, upd{id, dest})
			}
		}
		b.UpdateBuckets(len(ups), func(j int) (uint32, Dest) { return ups[j].id, ups[j].dest })
	}
}

// TestStatsConcurrentReaders runs structure operations while another
// goroutine polls Stats(). Meaningful under -race: it fails there if
// Stats() reads non-atomically against the implementations' writes.
func TestStatsConcurrentReaders(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func(d []ID) Structure
	}{
		{"par", func(d []ID) Structure {
			return New(len(d), func(i uint32) ID { return d[i] }, Increasing, Options{})
		}},
		{"seq", func(d []ID) Structure {
			return NewSeq(len(d), func(i uint32) ID { return d[i] }, Increasing)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			const n = 4096
			d := make([]ID, n)
			for i := range d {
				d[i] = ID(i % 8)
			}
			b := tc.mk(d)
			done := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				var last Stats
				for {
					select {
					case <-done:
						return
					default:
					}
					st := b.Stats()
					if st.Extracted < last.Extracted || st.Moved < last.Moved {
						t.Error("cumulative stats went backwards")
						return
					}
					last = st
				}
			}()
			drain(b, d)
			close(done)
			wg.Wait()
			st := b.Stats()
			if st.Extracted == 0 || st.BucketsReturned == 0 {
				t.Fatalf("no traffic recorded: %+v", st)
			}
		})
	}
}

// TestRecorderMirrorsStats checks that the obs counters a structure
// reports agree with its own cumulative Stats.
func TestRecorderMirrorsStats(t *testing.T) {
	const n = 2048
	mkD := func() []ID {
		d := make([]ID, n)
		for i := range d {
			d[i] = ID(i % 8)
		}
		return d
	}

	t.Run("par", func(t *testing.T) {
		rec := obs.NewRecorder()
		d := mkD()
		b := New(n, func(i uint32) ID { return d[i] }, Increasing, Options{Recorder: rec})
		drain(b, d)
		checkMirror(t, b.Stats(), rec)
	})
	t.Run("par-semisort", func(t *testing.T) {
		rec := obs.NewRecorder()
		d := mkD()
		b := New(n, func(i uint32) ID { return d[i] }, Increasing,
			Options{Recorder: rec, Semisort: true})
		drain(b, d)
		checkMirror(t, b.Stats(), rec)
	})
	t.Run("seq", func(t *testing.T) {
		rec := obs.NewRecorder()
		d := mkD()
		b := NewSeq(n, func(i uint32) ID { return d[i] }, Increasing).Observe(rec)
		drain(b, d)
		checkMirror(t, b.Stats(), rec)
	})
}

func checkMirror(t *testing.T, st Stats, rec *obs.Recorder) {
	t.Helper()
	if st.Extracted == 0 || st.Moved == 0 {
		t.Fatalf("workload produced no traffic: %+v", st)
	}
	pairs := []struct {
		ctr  string
		want int64
	}{
		{obs.CtrBucketExtracted, st.Extracted},
		{obs.CtrBucketMoved, st.Moved},
		{obs.CtrBucketSkipped, st.Skipped},
		{obs.CtrBucketReturned, st.BucketsReturned},
		{obs.CtrBucketRangeAdvances, st.RangeAdvances},
	}
	for _, p := range pairs {
		if got := rec.Counter(p.ctr); got != p.want {
			t.Errorf("%s=%d, stats say %d", p.ctr, got, p.want)
		}
	}
}
