package bucket

import (
	"math"
	"strings"
	"testing"

	"julienne/internal/parallel"
)

// TestUpdateBucketsOverflowGuard pins the uint32 histogram-offset guard:
// a batch of 2^32 or more updates must panic loudly instead of silently
// wrapping the scatter offsets. The guard fires before f is evaluated,
// so a synthetic f that would be far too slow to actually run suffices.
func TestUpdateBucketsOverflowGuard(t *testing.T) {
	if ^uint(0)>>32 == 0 {
		t.Skip("k >= 2^32 is unrepresentable on a 32-bit int")
	}
	d := []ID{0, 1, 2, 3}
	b := New(len(d), func(i uint32) ID { return d[i] }, Increasing, Options{OpenBuckets: 4})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("UpdateBuckets accepted a 2^32-update batch without panicking")
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, "overflows") {
			t.Fatalf("unhelpful panic value: %v", r)
		}
	}()
	b.UpdateBuckets(int(int64(1)<<32), func(j int) (uint32, Dest) {
		t.Error("f evaluated before the overflow guard fired")
		return 0, None
	})
}

// TestPeelRoundZeroAlloc asserts the tentpole property: once warm, a
// NextBucket + UpdateBuckets round (recorder off, histogram path)
// performs zero allocations. The workload is a forward-marching peel —
// every extracted identifier moves to the next bucket — which exercises
// slot compaction, the arena, and the free-list recycling of emptied
// bucket arrays. OpenBuckets exceeds the round count so no range
// advance (whose reduce closures allocate) lands inside the window.
func TestPeelRoundZeroAlloc(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if DebugEnabled {
		t.Skip("julienne_debug shadow bookkeeping allocates by design")
	}
	old := parallel.SetProcs(1)
	defer parallel.SetProcs(old)

	const n = 2048
	d := make([]ID, n)
	b := New(n, func(i uint32) ID { return d[i] }, Increasing, Options{OpenBuckets: 512})

	var curIDs []uint32
	var cur ID
	move := func(j int) (uint32, Dest) {
		id := curIDs[j]
		return id, b.GetBucket(cur, cur+1)
	}
	round := func() {
		id, ids := b.NextBucket()
		if id == Nil {
			t.Fatal("structure exhausted mid-test")
		}
		cur, curIDs = id, ids
		for _, v := range ids {
			d[v] = id + 1
		}
		b.UpdateBuckets(len(ids), move)
	}
	// Reach steady state: the first rounds grow the arena and seed the
	// free list with recycled bucket arrays.
	for i := 0; i < 5; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("peel round allocates %v allocs/op in steady state, want 0", avg)
	}
}

// TestFusedRoundZeroAlloc extends the zero-alloc pin to the fused
// protocol: a steady-state round of NextBucketFused, an in-span
// reinsertion of the whole frontier (which routes through the lazy
// slot), DrainLazy, and an out-of-span advance that settles the span
// must not allocate. This covers the fused-only machinery the peel
// round never touches: the span bookkeeping, the lazy slot's chunk
// recycling, and the drain's arena compaction.
func TestFusedRoundZeroAlloc(t *testing.T) {
	if parallel.RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	if DebugEnabled {
		t.Skip("julienne_debug shadow bookkeeping allocates by design")
	}
	old := parallel.SetProcs(1)
	defer parallel.SetProcs(old)

	const n = 2048
	d := make([]ID, n)
	b := New(n, func(i uint32) ID { return d[i] }, Increasing, Options{OpenBuckets: 512})

	var curIDs []uint32
	var cur ID
	reinsert := func(j int) (uint32, Dest) {
		// Same-bucket reinsertion: next lands inside the active span,
		// so the destination is the lazy slot.
		return curIDs[j], b.GetBucket(cur, cur)
	}
	advance := func(j int) (uint32, Dest) {
		return curIDs[j], b.GetBucket(cur, cur+1)
	}
	round := func() {
		first, last, ids := b.NextBucketFused(math.MaxInt, 1)
		if first == Nil || first != last {
			t.Fatalf("fused run [%d, %d], want a single open bucket", first, last)
		}
		cur, curIDs = first, ids
		b.UpdateBuckets(len(ids), reinsert)
		curIDs = b.DrainLazy()
		if len(curIDs) != n {
			t.Fatalf("drained %d identifiers, want the full frontier of %d", len(curIDs), n)
		}
		for _, v := range curIDs {
			d[v] = cur + 1
		}
		b.UpdateBuckets(len(curIDs), advance)
		if residue := b.DrainLazy(); residue != nil {
			t.Fatalf("span did not settle: %d identifiers still pending", len(residue))
		}
	}
	for i := 0; i < 5; i++ {
		round()
	}
	if avg := testing.AllocsPerRun(100, round); avg != 0 {
		t.Fatalf("fused round allocates %v allocs/op in steady state, want 0", avg)
	}
}
