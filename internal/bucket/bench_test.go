package bucket

import (
	"testing"

	"julienne/internal/rng"
)

// benchUpdateStream pre-computes a realistic (identifier, dest) update
// stream so the benchmark isolates UpdateBuckets itself.
func benchUpdateStream(b *testing.B, opt Options, k int) (*Par, []uint32, []Dest) {
	b.Helper()
	n := 1 << 18
	d := make([]ID, n)
	for i := range d {
		d[i] = ID(rng.UintNAt(1, uint64(i), 512))
	}
	par := New(n, func(i uint32) ID { return d[i] }, Increasing, opt)
	ids := make([]uint32, k)
	dests := make([]Dest, k)
	for j := 0; j < k; j++ {
		v := uint32(rng.UintNAt(2, uint64(j), uint64(n)))
		prev := d[v]
		next := prev / 2
		d[v] = next
		ids[j] = v
		dest := par.GetBucket(prev, next)
		if dest == None {
			dest = Dest(0)
		}
		dests[j] = dest
	}
	return par, ids, dests
}

func BenchmarkUpdateBucketsHistogram(b *testing.B) {
	par, ids, dests := benchUpdateStream(b, Options{}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.UpdateBuckets(len(ids), func(j int) (uint32, Dest) { return ids[j], dests[j] })
	}
	b.SetBytes(int64(len(ids) * 8))
}

func BenchmarkUpdateBucketsSemisort(b *testing.B) {
	par, ids, dests := benchUpdateStream(b, Options{Semisort: true}, 1<<16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		par.UpdateBuckets(len(ids), func(j int) (uint32, Dest) { return ids[j], dests[j] })
	}
	b.SetBytes(int64(len(ids) * 8))
}

func BenchmarkNextBucket(b *testing.B) {
	n := 1 << 18
	d := make([]ID, n)
	for i := range d {
		d[i] = ID(rng.UintNAt(3, uint64(i), 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		par := New(n, func(j uint32) ID { return d[j] }, Increasing, Options{})
		b.StartTimer()
		for {
			id, _ := par.NextBucket()
			if id == Nil {
				break
			}
		}
	}
}

func BenchmarkMakeBuckets(b *testing.B) {
	n := 1 << 18
	d := make([]ID, n)
	for i := range d {
		d[i] = ID(rng.UintNAt(4, uint64(i), 1024))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(n, func(j uint32) ID { return d[j] }, Increasing, Options{})
	}
}
