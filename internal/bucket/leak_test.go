package bucket

import (
	"testing"

	"julienne/internal/harness"
	"julienne/internal/parallel"
	"julienne/internal/rng"
)

// TestDrainLeavesNoGoroutinesOrScratch pins the structure's share of
// the failure-semantics contract on the happy path: a full
// extract/update/drain cycle joins every worker the substrate spawned
// and returns every pooled scratch buffer.
func TestDrainLeavesNoGoroutinesOrScratch(t *testing.T) {
	defer harness.LeakCheck(t)()
	const n = 20_000
	d := make([]ID, n)
	for i := range d {
		d[i] = ID(rng.Hash64(uint64(i)) % 64)
	}
	b := New(n, func(i uint32) ID { return d[i] }, Increasing, Options{})
	seen := 0
	for {
		k, ids := b.NextBucket()
		if k == Nil {
			break
		}
		seen += len(ids)
		// Push a fraction of each bucket one bucket up, exercising
		// UpdateBuckets (and its scratch traffic) mid-drain. The moves
		// are precomputed because the update callback must be pure (it
		// runs once in the count pass and once in the scatter pass).
		var mvIDs []uint32
		var mvDest []Dest
		for _, v := range ids {
			if v%3 == 0 && d[v] < 63 {
				d[v]++
				mvIDs = append(mvIDs, v)
				mvDest = append(mvDest, b.GetBucket(Nil, d[v]))
			}
		}
		b.UpdateBuckets(len(mvIDs), func(j int) (uint32, Dest) {
			return mvIDs[j], mvDest[j]
		})
	}
	if seen < n {
		t.Fatalf("drained %d of %d identifiers", seen, n)
	}
	if bal := parallel.ScratchStats(); !bal.Balanced() {
		t.Errorf("scratch pool imbalance after drain: %d gets, %d puts", bal.Gets, bal.Puts)
	}
}
