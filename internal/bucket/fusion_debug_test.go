//go:build julienne_debug

package bucket

import (
	"math"
	"strings"
	"testing"
)

// This file proves the julienne_debug fusion invariants are load-
// bearing: each assertion of DESIGN.md §11 is deliberately violated —
// through the public API where a caller bug can reach it, directly
// against the shadow checker where only internal corruption could —
// and the test requires the panic to trip with its documented message.

func expectDebugPanic(t *testing.T, want string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want one containing %q", want)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic %v, want one containing %q", r, want)
		}
	}()
	f()
}

// TestDebugSpanClosedWithPending trips the drain-before-extract rule on
// both implementations: extracting again while lazy identifiers are
// pending abandons them.
func TestDebugSpanClosedWithPending(t *testing.T) {
	for _, name := range []string{"par", "seq"} {
		d := []ID{0, 0, 4}
		dfn := func(i uint32) ID { return d[i] }
		var b Fused
		if name == "par" {
			b = New(len(d), dfn, Increasing, Options{OpenBuckets: 8})
		} else {
			b = NewSeq(len(d), dfn, Increasing)
		}
		if _, _, ids := b.NextBucketFused(math.MaxInt, 2); len(ids) != 2 {
			t.Fatalf("%s: fused frontier %v, want 2 identifiers", name, ids)
		}
		// Same-bucket reinsertion into the active span: lands in the
		// lazy buffer.
		dest := b.GetBucket(0, 0)
		b.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, dest })
		expectDebugPanic(t, "undrained lazy identifiers", func() { b.NextBucket() })
	}
}

// TestDebugLazySlotWithoutSpan trips the destination-validity rule: the
// lazy slot is only addressable while a fused span is active, so a
// fabricated Dest targeting it without one is rejected.
func TestDebugLazySlotWithoutSpan(t *testing.T) {
	d := []ID{0}
	b := New(len(d), func(i uint32) ID { return d[i] }, Increasing, Options{OpenBuckets: 4})
	lazyDest := Dest(4 + 1) // nB + 1
	expectDebugPanic(t, "targets the lazy slot without an active fused span", func() {
		b.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, lazyDest })
	})
}

// TestDebugStructureLazyResidue trips the structure walk's rule that
// the lazy slot is empty between spans, by planting a chunk in it
// behind the API's back.
func TestDebugStructureLazyResidue(t *testing.T) {
	d := []ID{0}
	b := New(len(d), func(i uint32) ID { return d[i] }, Increasing, Options{OpenBuckets: 4})
	lz := &b.bkts[b.nB+1]
	lz.chunks = append(lz.chunks, []uint32{0})
	lz.n = 1
	expectDebugPanic(t, "lazy slot holds 1 identifiers without an active fused span", func() {
		b.debugCheckStructure()
	})
}

// TestDebugDoubleLazyCopy trips the uniqueness rule end-to-end: a
// caller that issues two in-span moves for the same identifier creates
// two live lazy copies, which the drain detects.
func TestDebugDoubleLazyCopy(t *testing.T) {
	d := []ID{0, 3}
	dfn := func(i uint32) ID { return d[i] }
	b := New(len(d), dfn, Increasing, Options{OpenBuckets: 8})
	if _, _, ids := b.NextBucketFused(math.MaxInt, 0); len(ids) != 2 {
		t.Fatalf("fused frontier %v, want 2 identifiers", ids)
	}
	d[0] = 1
	dest := b.GetBucket(0, 1)
	// Two separate updates, same identifier, both into the active span.
	b.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, dest })
	b.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, dest })
	expectDebugPanic(t, "drained twice from the fused span", func() { b.DrainLazy() })
}

// TestDebugCheckFusedViolations drives the fused-extraction checker
// directly with fabricated evidence for the invariants no API sequence
// can violate unless the implementation itself is broken.
func TestDebugCheckFusedViolations(t *testing.T) {
	dOf := func(vals map[uint32]ID) func(uint32) ID {
		return func(i uint32) ID { return vals[i] }
	}
	span := func(lo, hi ID) fusedSpan { return fusedSpan{lo: lo, hi: hi, active: true} }

	t.Run("non-contiguous range", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "not contiguous in traversal order", func() {
			dbg.checkFused(Increasing, 5, 3, []uint32{0}, -1, dOf(map[uint32]ID{0: 4}), span(3, 5), Stats{})
		})
	})
	t.Run("empty frontier", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "returned an empty frontier", func() {
			dbg.checkFused(Increasing, 2, 4, nil, -1, dOf(nil), span(2, 4), Stats{})
		})
	})
	t.Run("identifier outside range", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "outside it", func() {
			dbg.checkFused(Increasing, 2, 4, []uint32{0}, -1, dOf(map[uint32]ID{0: 9}), span(2, 4), Stats{})
		})
	})
	t.Run("endpoint not witnessed", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "endpoints not both witnessed", func() {
			dbg.checkFused(Increasing, 2, 4, []uint32{0}, -1, dOf(map[uint32]ID{0: 3}), span(2, 4), Stats{})
		})
	})
	t.Run("duplicate identifier", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "extracted twice from fused range", func() {
			dbg.checkFused(Increasing, 2, 4, []uint32{0, 0},
				-1, dOf(map[uint32]ID{0: 2}), span(2, 4), Stats{})
		})
	})
	t.Run("monotonicity across rounds", func(t *testing.T) {
		dbg := debugState{last: 7, hasLast: true}
		expectDebugPanic(t, "after 7 under Increasing order", func() {
			dbg.checkFused(Increasing, 2, 4, []uint32{0, 1},
				-1, dOf(map[uint32]ID{0: 2, 1: 4}), span(2, 4), Stats{})
		})
	})
	t.Run("stats divergence", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "fused-extraction bookkeeping", func() {
			// A valid fused round whose Stats claim nothing was extracted.
			dbg.checkFused(Increasing, 2, 2, []uint32{0}, -1, dOf(map[uint32]ID{0: 2}), span(2, 2), Stats{})
		})
	})
}

// TestDebugCheckLazyDrainViolations does the same for the drain
// checker.
func TestDebugCheckLazyDrainViolations(t *testing.T) {
	dOf := func(vals map[uint32]ID) func(uint32) ID {
		return func(i uint32) ID { return vals[i] }
	}
	active := fusedSpan{lo: 2, hi: 4, active: true}

	t.Run("inactive span", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "without an active fused span", func() {
			dbg.checkLazyDrain([]uint32{0}, -1, dOf(map[uint32]ID{0: 2}), fusedSpan{}, Stats{})
		})
	})
	t.Run("identifier outside span", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "outside the fused span", func() {
			dbg.checkLazyDrain([]uint32{0}, -1, dOf(map[uint32]ID{0: 7}), active, Stats{})
		})
	})
	t.Run("duplicate identifier", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "drained twice", func() {
			dbg.checkLazyDrain([]uint32{0, 0}, -1, dOf(map[uint32]ID{0: 3}), active, Stats{})
		})
	})
	t.Run("stats divergence", func(t *testing.T) {
		var dbg debugState
		expectDebugPanic(t, "lazy-drain bookkeeping", func() {
			dbg.checkLazyDrain([]uint32{0}, -1, dOf(map[uint32]ID{0: 3}), active, Stats{})
		})
	})
}
