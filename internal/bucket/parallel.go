package bucket

import (
	"sync/atomic"

	"julienne/internal/obs"
	"julienne/internal/parallel"
	"julienne/internal/semisort"
)

// DefaultOpenBuckets is the default size of the open bucket range
// (§3.3: "our default value is 128").
const DefaultOpenBuckets = 128

// updateBlock is the block length M of the block-histogram update
// (§3.3: "we set M to 2048 in our implementation").
const updateBlock = 2048

// Options configures the parallel bucket structure.
type Options struct {
	// OpenBuckets is nB, the number of logical buckets represented
	// exactly; identifiers logically beyond the open range live in a
	// single overflow bucket until the range advances (§3.3). Zero
	// means DefaultOpenBuckets.
	OpenBuckets int
	// Semisort switches UpdateBuckets to the theoretically-clean
	// semisort-based algorithm of §3.2 instead of the block-histogram
	// strategy of §3.3. Kept for the ablation benchmarks.
	Semisort bool
	// Recorder, when non-nil, receives bucket-traffic counters
	// (obs.CtrBucket*) as the structure operates. Construction-time
	// bulk inserts are excluded, mirroring Stats. Nil disables
	// reporting at the cost of a nil check per operation.
	Recorder *obs.Recorder
}

// Par is the parallel bucketing implementation (§3.2 with the §3.3
// optimizations). It maintains nB open buckets covering the logical id
// range [rangeLo, rangeLo+nB) (Increasing) or (rangeHi-nB, rangeHi]
// (Decreasing), plus one overflow bucket for identifiers logically
// beyond the open range. Dest values encode a physical slot: open slot
// index in [0, nB), the overflow slot nB, or None.
type Par struct {
	n       int
	d       func(uint32) ID
	order   Order
	nB      int
	useSemi bool

	bkts    [][]uint32 // nB open slots + 1 overflow slot
	cur     int        // current open slot being processed
	rangeLo ID         // lowest logical id in the open range
	rangeHi ID         // highest logical id in the open range
	done    bool
	stats   Stats
	rec     *obs.Recorder

	// scratch reused across UpdateBuckets calls.
	counts []uint32

	// dbg holds invariant-assertion state; zero-sized unless the build
	// is tagged julienne_debug (see debug_on.go / debug_off.go).
	dbg debugState
}

var _ Structure = (*Par)(nil)

// New creates the parallel structure over identifiers [0, n) with
// initial buckets given by d (Nil means "not bucketed"), traversed in
// the given order. d is retained and re-evaluated lazily, so it must
// reflect the algorithm's current identifier-to-bucket mapping at all
// times.
func New(n int, d func(uint32) ID, order Order, opt Options) *Par {
	nB := opt.OpenBuckets
	if nB <= 0 {
		nB = DefaultOpenBuckets
	}
	b := &Par{n: n, d: d, order: order, nB: nB, useSemi: opt.Semisort}
	b.bkts = make([][]uint32, nB+1)

	// Find the first/last non-empty logical bucket in parallel (§3.2:
	// "calculating the number of initial buckets in parallel using
	// reduce") and anchor the open range there.
	var anchor ID
	if order == Increasing {
		anchor = parallel.Reduce(n, 0, Nil,
			func(i int) ID { return d(uint32(i)) },
			func(a, c ID) ID {
				if a == Nil {
					return c
				}
				if c == Nil {
					return a
				}
				return min(a, c)
			})
	} else {
		anchor = parallel.Reduce(n, 0, Nil,
			func(i int) ID { return d(uint32(i)) },
			func(a, c ID) ID {
				if a == Nil {
					return c
				}
				if c == Nil {
					return a
				}
				return max(a, c)
			})
	}
	if anchor == Nil {
		b.done = true
		return b
	}
	b.setRange(anchor)

	// Bulk-insert the initial identifiers through the same machinery
	// updates use (§3.2: "inserting identifiers into B can be done by
	// then calling updateBuckets(D, n)").
	b.UpdateBuckets(n, func(j int) (uint32, Dest) {
		id := uint32(j)
		return id, b.GetBucket(Nil, d(id))
	})
	// The bulk insert is bookkeeping, not algorithmic movement: reset
	// the counters so Stats reflects only post-construction traffic.
	// The recorder is attached afterwards for the same reason.
	b.stats = Stats{}
	b.debugReset()
	b.rec = opt.Recorder
	return b
}

// setRange positions the open range so that `first` is the first
// logical bucket the traversal will visit.
func (b *Par) setRange(first ID) {
	if b.order == Increasing {
		b.rangeLo = first
		// Saturating high end; Nil is never a valid bucket id.
		if first >= Nil-ID(b.nB) {
			b.rangeHi = Nil - 1
		} else {
			b.rangeHi = first + ID(b.nB) - 1
		}
	} else {
		b.rangeHi = first
		if first < ID(b.nB) {
			b.rangeLo = 0
		} else {
			b.rangeLo = first - ID(b.nB) + 1
		}
	}
	b.cur = 0
}

// slotFor maps a logical bucket id inside the open range to its
// physical slot index (0 is the first slot the traversal visits).
func (b *Par) slotFor(id ID) int {
	if b.order == Increasing {
		return int(id - b.rangeLo)
	}
	return int(b.rangeHi - id)
}

// logical returns the logical bucket id of an open slot.
func (b *Par) logical(slot int) ID {
	if b.order == Increasing {
		return b.rangeLo + ID(slot)
	}
	return b.rangeHi - ID(slot)
}

// inRange reports whether a logical id falls inside the open range.
func (b *Par) inRange(id ID) bool {
	return id != Nil && id >= b.rangeLo && id <= b.rangeHi
}

// behind reports whether logical id `id` is strictly behind the
// traversal position (it will never be visited again).
func (b *Par) behind(id ID) bool {
	cur := b.logical(b.cur)
	if b.order == Increasing {
		return id < cur
	}
	return id > cur
}

// beyond reports whether logical id `id` is past the open range in
// traversal direction (i.e. belongs in the overflow bucket).
func (b *Par) beyond(id ID) bool {
	if id == Nil {
		return false
	}
	if b.order == Increasing {
		return id > b.rangeHi
	}
	return id < b.rangeLo
}

// GetBucket implements Structure (§3.1, with the §3.3 open-range rule:
// "we only move an identifier that is logically moving from its current
// bucket to a new bucket if its new bucket is in the current range, or
// if it is not yet in any bucket").
func (b *Par) GetBucket(prev, next ID) Dest {
	if next == Nil || next == prev || b.done {
		return None
	}
	if b.inRange(next) {
		if b.behind(next) {
			return None
		}
		return Dest(b.slotFor(next))
	}
	if b.beyond(next) {
		// Move into overflow only if the identifier is not already
		// there: fresh identifiers (prev == Nil) and identifiers
		// currently in the open range must move; identifiers already
		// beyond the range stay put for free.
		if prev == Nil || !b.beyond(prev) {
			return Dest(b.nB)
		}
		return None
	}
	// next is behind the whole open range: it will never be visited;
	// lazy deletion makes this free.
	return None
}

// NextBucket implements Structure. It compacts the current slot with a
// parallel filter (§3.2), advances through the open range, and when the
// range is exhausted redistributes the overflow bucket into a new range
// anchored at the nearest remaining bucket (§3.3's range advance; we
// jump directly to the next non-empty bucket rather than walking empty
// ranges, which only reduces the O(T) term of Lemma 3.2).
func (b *Par) NextBucket() (ID, []uint32) {
	if b.done {
		return Nil, nil
	}
	b.debugCheckStructure()
	for {
		for b.cur <= b.nB-1 {
			slot := b.cur
			arr := b.bkts[slot]
			if len(arr) == 0 {
				b.cur++
				continue
			}
			cur := b.logical(slot)
			live := parallel.Filter(arr, func(id uint32) bool {
				return b.d(id) == cur
			})
			b.bkts[slot] = nil
			if len(live) == 0 {
				b.cur++
				continue
			}
			atomic.AddInt64(&b.stats.Extracted, int64(len(live)))
			atomic.AddInt64(&b.stats.BucketsReturned, 1)
			b.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
			b.rec.Inc(obs.CtrBucketReturned)
			b.debugCheckExtract(cur, live)
			return cur, live
		}
		// Open range exhausted: redistribute overflow, if any.
		over := b.bkts[b.nB]
		if len(over) == 0 {
			b.done = true
			return Nil, nil
		}
		b.bkts[b.nB] = nil
		// The next range is anchored at the nearest live bucket among
		// overflow identifiers.
		var anchor ID
		if b.order == Increasing {
			anchor = parallel.Reduce(len(over), 0, Nil,
				func(j int) ID {
					id := b.d(over[j])
					if id == Nil || id <= b.rangeHi {
						return Nil // stale copy: extracted or moved back
					}
					return id
				},
				func(a, c ID) ID {
					if a == Nil {
						return c
					}
					if c == Nil {
						return a
					}
					return min(a, c)
				})
		} else {
			anchor = parallel.Reduce(len(over), 0, Nil,
				func(j int) ID {
					id := b.d(over[j])
					if id == Nil || id >= b.rangeLo {
						return Nil
					}
					return id
				},
				func(a, c ID) ID {
					if a == Nil {
						return c
					}
					if c == Nil {
						return a
					}
					return max(a, c)
				})
		}
		if anchor == Nil {
			b.done = true
			return Nil, nil
		}
		prevLo, prevHi := b.rangeLo, b.rangeHi
		b.setRange(anchor)
		atomic.AddInt64(&b.stats.RangeAdvances, 1)
		b.rec.Inc(obs.CtrBucketRangeAdvances)
		// Reinsert live overflow identifiers under the new range. An
		// identifier is stale if its current logical bucket falls in
		// (or behind) the previous range — it was moved or extracted.
		b.UpdateBuckets(len(over), func(j int) (uint32, Dest) {
			id := over[j]
			next := b.d(id)
			if next == Nil {
				return id, None
			}
			if b.order == Increasing && next <= prevHi {
				return id, None
			}
			if b.order == Decreasing && next >= prevLo {
				return id, None
			}
			return id, b.GetBucket(Nil, next)
		})
	}
}

// UpdateBuckets implements Structure using the block-histogram strategy
// of §3.3 (or the semisort strategy of §3.2 when configured): the k
// updates are split into blocks of M = 2048; each block counts its
// identifiers per destination slot; one scan over the slot-major count
// matrix yields exact write offsets; a second pass scatters identifiers
// directly into the (resized-once) destination buckets.
func (b *Par) UpdateBuckets(k int, f func(j int) (uint32, Dest)) {
	if k <= 0 || b.done {
		return
	}
	b.debugCheckUpdate(k, f)
	if b.useSemi {
		b.updateSemisort(k, f)
		return
	}
	nSlots := b.nB + 1
	nb := (k + updateBlock - 1) / updateBlock
	need := nSlots * nb
	if cap(b.counts) < need {
		b.counts = make([]uint32, need)
	}
	counts := b.counts[:need]
	parallel.For(len(counts), parallel.DefaultGrain, func(i int) { counts[i] = 0 })

	// Pass 1: per-block histograms, laid out slot-major so that one
	// exclusive scan produces, for every (slot, block), the offset of
	// that block's contribution within the slot's incoming batch.
	var skipped int64
	parallel.For(nb, 1, func(blk int) {
		lo, hi := blk*updateBlock, min((blk+1)*updateBlock, k)
		var skip int64
		for j := lo; j < hi; j++ {
			_, dest := f(j)
			if dest == None {
				skip++
				continue
			}
			counts[int(dest)*nb+blk]++
		}
		if skip > 0 {
			parallel.AddInt64(&skipped, skip)
		}
	})
	total := parallel.Scan(counts, counts)

	// Resize all destination buckets once (§3.2: "in parallel, resize
	// all buckets that have identifiers moving to them").
	starts := make([]uint32, nSlots+1)
	for s := 0; s < nSlots; s++ {
		starts[s] = counts[s*nb]
	}
	starts[nSlots] = total
	oldLens := make([]int, nSlots)
	parallel.For(nSlots, 8, func(s int) {
		incoming := int(starts[s+1] - starts[s])
		if incoming == 0 {
			return
		}
		oldLens[s] = len(b.bkts[s])
		b.bkts[s] = grow(b.bkts[s], incoming)
	})

	// Pass 2: scatter. Each block re-evaluates f and writes its
	// identifiers at block-exclusive offsets, so no synchronization is
	// needed within a slot.
	parallel.For(nb, 1, func(blk int) {
		lo, hi := blk*updateBlock, min((blk+1)*updateBlock, k)
		for j := lo; j < hi; j++ {
			id, dest := f(j)
			if dest == None {
				continue
			}
			s := int(dest)
			off := counts[s*nb+blk]
			counts[s*nb+blk] = off + 1
			b.bkts[s][oldLens[s]+int(off-starts[s])] = id
		}
	})
	atomic.AddInt64(&b.stats.Moved, int64(total))
	atomic.AddInt64(&b.stats.Skipped, skipped)
	b.rec.Add(obs.CtrBucketMoved, int64(total))
	b.rec.Add(obs.CtrBucketSkipped, skipped)
	b.debugCheckUpdateTotals(k, int64(total), skipped)
}

// updateSemisort is the §3.2 update algorithm: build (destination,
// identifier) pairs, semisort by destination, locate group boundaries,
// then copy each contiguous group into its (resized-once) bucket.
func (b *Par) updateSemisort(k int, f func(j int) (uint32, Dest)) {
	type pair = semisort.Pair[uint32]
	pairs := parallel.MapFilter(k, func(j int) (pair, bool) {
		id, dest := f(j)
		if dest == None {
			parallel.AddInt64(&b.stats.Skipped, 1)
			return pair{}, false
		}
		return pair{Key: uint32(dest), Value: id}, true
	})
	if len(pairs) == 0 {
		b.debugCheckUpdateTotals(k, 0, int64(k))
		return
	}
	sorted := semisort.Pairs(pairs)
	starts := semisort.GroupStarts(sorted)
	// Resize each destination bucket once, then copy its contiguous
	// group in parallel.
	parallel.For(len(starts), 1, func(gi int) {
		lo := int(starts[gi])
		hi := len(sorted)
		if gi+1 < len(starts) {
			hi = int(starts[gi+1])
		}
		s := int(sorted[lo].Key)
		old := len(b.bkts[s])
		b.bkts[s] = grow(b.bkts[s], hi-lo)
		dst := b.bkts[s][old:]
		for j := lo; j < hi; j++ {
			dst[j-lo] = sorted[j].Value
		}
	})
	atomic.AddInt64(&b.stats.Moved, int64(len(sorted)))
	b.rec.Add(obs.CtrBucketMoved, int64(len(sorted)))
	b.rec.Add(obs.CtrBucketSkipped, int64(k-len(pairs)))
	b.debugCheckUpdateTotals(k, int64(len(sorted)), int64(k-len(pairs)))
}

// Stats implements Structure. The snapshot uses atomic loads so it is
// safe to call concurrently with NextBucket/UpdateBuckets.
func (b *Par) Stats() Stats { return b.stats.load() }

// CurrentRange reports the open range and traversal position; the tests
// use it to assert the §3.3 overflow behaviour.
func (b *Par) CurrentRange() (lo, hi ID, overflow int) {
	return b.rangeLo, b.rangeHi, len(b.bkts[b.nB])
}

// grow extends s by k zero elements, amortizing reallocation doubling.
func grow(s []uint32, k int) []uint32 {
	need := len(s) + k
	if need <= cap(s) {
		return s[:need]
	}
	ns := make([]uint32, need, max(need, 2*cap(s)))
	copy(ns, s)
	return ns
}
