package bucket

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"julienne/internal/chaos"
	"julienne/internal/obs"
	"julienne/internal/parallel"
	"julienne/internal/semisort"
)

// DefaultOpenBuckets is the default size of the open bucket range
// (§3.3: "our default value is 128").
const DefaultOpenBuckets = 128

// updateBlock is the block length M of the block-histogram update
// (§3.3: "we set M to 2048 in our implementation").
const updateBlock = 2048

// Options configures the parallel bucket structure.
type Options struct {
	// OpenBuckets is nB, the number of logical buckets represented
	// exactly; identifiers logically beyond the open range live in a
	// single overflow bucket until the range advances (§3.3). Zero
	// means DefaultOpenBuckets.
	OpenBuckets int
	// Semisort switches UpdateBuckets to the theoretically-clean
	// semisort-based algorithm of §3.2 instead of the block-histogram
	// strategy of §3.3. Kept for the ablation benchmarks.
	Semisort bool
	// Recorder, when non-nil, receives bucket-traffic counters
	// (obs.CtrBucket*) as the structure operates. Construction-time
	// bulk inserts are excluded, mirroring Stats. Nil disables
	// reporting at the cost of a nil check per operation.
	Recorder *obs.Recorder
}

// Par is the parallel bucketing implementation (§3.2 with the §3.3
// optimizations). It maintains nB open buckets covering the logical id
// range [rangeLo, rangeLo+nB) (Increasing) or (rangeHi-nB, rangeHi]
// (Decreasing), plus one overflow bucket for identifiers logically
// beyond the open range and one lazy bucket that receives identifiers
// landing inside the active fused span (DESIGN.md §11). Dest values
// encode a physical slot: open slot index in [0, nB), the overflow
// slot nB, the lazy slot nB+1 (only while a fused span is active), or
// None.
type Par struct {
	n       int
	d       func(uint32) ID
	order   Order
	nB      int
	useSemi bool

	bkts    []chunkedBucket // nB open slots + overflow slot + lazy slot
	cur     int             // current open slot being processed
	rangeLo ID              // lowest logical id in the open range
	rangeHi ID              // highest logical id in the open range
	done    bool
	stats   Stats
	rec     *obs.Recorder

	// span is the active fused span set by NextBucketFused and cleared
	// by the next extraction call: while active, GetBucket routes
	// destinations inside [span.lo, span.hi] to the lazy slot, and
	// DrainLazy hands them back to the caller within the same round.
	span fusedSpan
	// lazyPred is the compaction predicate for DrainLazy (live iff D
	// still falls inside the active span), cached like livePred so the
	// per-drain filter does not allocate a closure.
	lazyPred func(uint32) bool

	// scr is the scratch arena reused across rounds; see the arena type
	// for the ownership rules.
	scr    arena
	freeMu sync.Mutex

	// livePred is the compaction predicate for NextBucket, cached so the
	// per-round filter does not allocate a closure; it tests D(id)
	// against liveCur.
	livePred func(uint32) bool
	liveCur  ID

	// The histogram-update passes are cached closures reading their
	// per-call parameters from upd: a closure literal evaluated inside
	// UpdateBuckets would be heap-allocated on every call (it escapes
	// into parallel.For's goroutines), defeating the allocation-free
	// steady state. Creating them once in New makes each UpdateBuckets
	// call closure-free.
	upd         updState
	zeroPass    func(i int)
	histPass    func(blk int)
	resizePass  func(s int)
	scatterPass func(blk int)

	// dbg holds invariant-assertion state; zero-sized unless the build
	// is tagged julienne_debug (see debug_on.go / debug_off.go).
	dbg debugState
}

// chunkedBucket stores one physical slot as a list of immutable
// chunks, one per UpdateBuckets call that moved identifiers into it.
// Appending a chunk never copies or over-allocates: inserting k
// identifiers costs exactly k words of allocator traffic (recycled
// through the free list when possible), where a single growable array
// would pay a geometric-reallocation factor of several times the data
// on every hot bucket. NextBucket compacts the chunks into one
// contiguous arena buffer when the slot is visited, recycling them.
type chunkedBucket struct {
	chunks [][]uint32
	n      int // total identifiers across chunks, stale copies included
}

// arena is Par's reusable per-round scratch. Buffers here are owned by
// the structure and recycled across NextBucket/UpdateBuckets calls, so
// a peeling loop reaches a steady state with zero allocations per round
// (the work-efficiency contract of §3: per-round cost proportional to
// identifiers processed, with no hidden allocator traffic). None of
// these buffers may be retained by callers beyond the windows the API
// documents — in particular the slice returned by NextBucket aliases
// live and is overwritten by the next NextBucket call.
type arena struct {
	counts []uint32   // slot-major block histograms (UpdateBuckets)
	starts []uint32   // per-slot incoming offsets (UpdateBuckets)
	chunks [][]uint32 // per-slot chunk of the current UpdateBuckets call
	live   []uint32   // compacted survivors returned by NextBucket
	pairs  []semisort.Pair[uint32]
	sorted []semisort.Pair[uint32]
	// free holds spent identifier chunks (compacted or redistributed
	// slots) for chunkAlloc to reuse, protected by freeMu and
	// segregated by capacity class: free[c] holds arrays with cap in
	// [2^c, 2^(c+1)), so put and get are O(1) instead of a linear scan
	// over the whole pool.
	free      [33][][]uint32
	freeCount int
}

// maxFreeArrays bounds the recycling list; beyond it the smallest
// arrays are dropped for the garbage collector (the largest are the
// ones that can satisfy future chunkAlloc calls).
const maxFreeArrays = 1024

// slotChunkCap is the chunk-list capacity pre-seeded per slot at
// construction, sized so typical peels never grow a header array.
const slotChunkCap = 4

// updState holds one UpdateBuckets call's parameters for the cached
// pass closures. f is cleared after the call so the structure does not
// pin the caller's update function between rounds.
type updState struct {
	k, nb   int
	f       func(j int) (uint32, Dest)
	counts  []uint32
	starts  []uint32
	chunks  [][]uint32
	skipped int64
}

// fusedSpan is the logical id interval [lo, hi] covered by the most
// recent NextBucketFused call, normalized so lo <= hi regardless of
// traversal order. The zero value (inactive) contains nothing.
type fusedSpan struct {
	lo, hi ID
	active bool
}

// contains reports whether a logical bucket id falls inside the active
// span. Nil is never contained: hi is at most rangeHi < Nil.
func (s fusedSpan) contains(id ID) bool {
	return s.active && id >= s.lo && id <= s.hi
}

var (
	_ Structure = (*Par)(nil)
	_ Fused     = (*Par)(nil)
)

// New creates the parallel structure over identifiers [0, n) with
// initial buckets given by d (Nil means "not bucketed"), traversed in
// the given order. d is retained and re-evaluated lazily, so it must
// reflect the algorithm's current identifier-to-bucket mapping at all
// times.
func New(n int, d func(uint32) ID, order Order, opt Options) *Par {
	nB := opt.OpenBuckets
	if nB <= 0 {
		nB = DefaultOpenBuckets
	}
	b := &Par{n: n, d: d, order: order, nB: nB, useSemi: opt.Semisort}
	b.bkts = make([]chunkedBucket, nB+2)
	// Seed every slot's chunk list with capacity carved from one shared
	// backing array: the first insert into a virgin slot would otherwise
	// allocate a header array, costing one allocation per round in
	// forward-marching peels. Slots holding more than slotChunkCap
	// chunks fall back to ordinary (amortized) append growth.
	hdrs := make([][]uint32, (nB+2)*slotChunkCap)
	for i := range b.bkts {
		b.bkts[i].chunks = hdrs[i*slotChunkCap : i*slotChunkCap : (i+1)*slotChunkCap]
	}
	// Built once so the per-round compaction filter does not allocate a
	// closure; NextBucket points liveCur at the slot being compacted.
	b.livePred = func(id uint32) bool { return b.d(id) == b.liveCur }
	// Likewise for the DrainLazy filter: an identifier in the lazy slot
	// is live while its bucket still falls inside the active span.
	b.lazyPred = func(id uint32) bool { return b.span.contains(b.d(id)) }
	// The histogram-update passes, likewise built once (see the Par
	// fields for why). Each reads its parameters from b.upd.
	b.zeroPass = func(i int) { b.upd.counts[i] = 0 }
	b.histPass = func(blk int) {
		u := &b.upd
		lo, hi := blk*updateBlock, min((blk+1)*updateBlock, u.k)
		var skip int64
		for j := lo; j < hi; j++ {
			_, dest := u.f(j)
			if dest == None {
				skip++
				continue
			}
			u.counts[int(dest)*u.nb+blk]++
		}
		if skip > 0 {
			parallel.AddInt64(&u.skipped, skip)
		}
	}
	b.resizePass = func(s int) {
		u := &b.upd
		incoming := int(u.starts[s+1] - u.starts[s])
		if incoming == 0 {
			return
		}
		c := b.chunkAlloc(incoming)
		u.chunks[s] = c
		bk := &b.bkts[s]
		bk.chunks = append(bk.chunks, c)
		bk.n += incoming
	}
	b.scatterPass = func(blk int) {
		u := &b.upd
		lo, hi := blk*updateBlock, min((blk+1)*updateBlock, u.k)
		for j := lo; j < hi; j++ {
			id, dest := u.f(j)
			if dest == None {
				continue
			}
			s := int(dest)
			off := u.counts[s*u.nb+blk]
			u.counts[s*u.nb+blk] = off + 1
			u.chunks[s][int(off-u.starts[s])] = id
		}
	}

	// Find the first/last non-empty logical bucket in parallel (§3.2:
	// "calculating the number of initial buckets in parallel using
	// reduce") and anchor the open range there.
	var anchor ID
	if order == Increasing {
		anchor = parallel.Reduce(n, 0, Nil,
			func(i int) ID { return d(uint32(i)) },
			func(a, c ID) ID {
				if a == Nil {
					return c
				}
				if c == Nil {
					return a
				}
				return min(a, c)
			})
	} else {
		anchor = parallel.Reduce(n, 0, Nil,
			func(i int) ID { return d(uint32(i)) },
			func(a, c ID) ID {
				if a == Nil {
					return c
				}
				if c == Nil {
					return a
				}
				return max(a, c)
			})
	}
	if anchor == Nil {
		b.done = true
		return b
	}
	b.setRange(anchor)

	// Bulk-insert the initial identifiers through the same machinery
	// updates use (§3.2: "inserting identifiers into B can be done by
	// then calling updateBuckets(D, n)").
	b.UpdateBuckets(n, func(j int) (uint32, Dest) {
		id := uint32(j)
		return id, b.GetBucket(Nil, d(id))
	})
	// The bulk insert is bookkeeping, not algorithmic movement: reset
	// the counters so Stats reflects only post-construction traffic.
	// The recorder is attached afterwards for the same reason.
	b.stats = Stats{}
	b.debugReset()
	b.rec = opt.Recorder
	return b
}

// setRange positions the open range so that `first` is the first
// logical bucket the traversal will visit.
func (b *Par) setRange(first ID) {
	if b.order == Increasing {
		b.rangeLo = first
		// Saturating high end; Nil is never a valid bucket id.
		if first >= Nil-ID(b.nB) {
			b.rangeHi = Nil - 1
		} else {
			b.rangeHi = first + ID(b.nB) - 1
		}
	} else {
		b.rangeHi = first
		if first < ID(b.nB) {
			b.rangeLo = 0
		} else {
			b.rangeLo = first - ID(b.nB) + 1
		}
	}
	b.cur = 0
}

// slotFor maps a logical bucket id inside the open range to its
// physical slot index (0 is the first slot the traversal visits).
func (b *Par) slotFor(id ID) int {
	if b.order == Increasing {
		return int(id - b.rangeLo)
	}
	return int(b.rangeHi - id)
}

// logical returns the logical bucket id of an open slot.
func (b *Par) logical(slot int) ID {
	if b.order == Increasing {
		return b.rangeLo + ID(slot)
	}
	return b.rangeHi - ID(slot)
}

// inRange reports whether a logical id falls inside the open range.
func (b *Par) inRange(id ID) bool {
	return id != Nil && id >= b.rangeLo && id <= b.rangeHi
}

// behind reports whether logical id `id` is strictly behind the
// traversal position (it will never be visited again).
func (b *Par) behind(id ID) bool {
	cur := b.logical(b.cur)
	if b.order == Increasing {
		return id < cur
	}
	return id > cur
}

// beyond reports whether logical id `id` is past the open range in
// traversal direction (i.e. belongs in the overflow bucket).
func (b *Par) beyond(id ID) bool {
	if id == Nil {
		return false
	}
	if b.order == Increasing {
		return id > b.rangeHi
	}
	return id < b.rangeLo
}

// GetBucket implements Structure (§3.1, with the §3.3 open-range rule:
// "we only move an identifier that is logically moving from its current
// bucket to a new bucket if its new bucket is in the current range, or
// if it is not yet in any bucket").
func (b *Par) GetBucket(prev, next ID) Dest {
	if next == Nil || b.done {
		return None
	}
	// Lazy insertion (DESIGN.md §11): destinations inside the active
	// fused span route to the lazy slot so the caller can process them
	// in the same round via DrainLazy instead of round-tripping through
	// bucket storage. This check precedes the next == prev fast path
	// deliberately — a fused frontier's physical copies were consumed by
	// extraction, so even a same-bucket reinsertion needs a lazy copy.
	if b.span.contains(next) {
		return Dest(b.nB + 1)
	}
	if next == prev {
		return None
	}
	if b.inRange(next) {
		if b.behind(next) {
			return None
		}
		return Dest(b.slotFor(next))
	}
	if b.beyond(next) {
		// Move into overflow only if the identifier is not already
		// there: fresh identifiers (prev == Nil) and identifiers
		// currently in the open range must move; identifiers already
		// beyond the range stay put for free.
		if prev == Nil || !b.beyond(prev) {
			return Dest(b.nB)
		}
		return None
	}
	// next is behind the whole open range: it will never be visited;
	// lazy deletion makes this free.
	return None
}

// NextBucket implements Structure. It compacts the current slot with a
// parallel filter (§3.2), advances through the open range, and when the
// range is exhausted redistributes the overflow bucket into a new range
// anchored at the nearest remaining bucket (§3.3's range advance; we
// jump directly to the next non-empty bucket rather than walking empty
// ranges, which only reduces the O(T) term of Lemma 3.2).
//
// The returned slice is backed by an arena buffer owned by the
// structure: it is valid only until the next NextBucket call, which
// overwrites it. Callers that need the identifiers afterwards must copy
// them out. All the peeling loops in this repository consume the slice
// within the round, so the steady state allocates nothing.
func (b *Par) NextBucket() (ID, []uint32) {
	if b.done {
		return Nil, nil
	}
	// Clock is zero (and ObserveSince a no-op) on a nil recorder, so
	// the disabled path pays one nil check and an open-coded defer.
	start := b.rec.Clock()
	defer b.rec.ObserveSince(obs.HistNextBucketNs, start)
	if chaos.Enabled {
		chaos.Point(chaos.SiteRound)
	}
	b.closeSpan()
	b.debugCheckStructure()
	b.scr.live = b.scr.live[:0]
	cur, ok := b.nextCompacted()
	if !ok {
		return Nil, nil
	}
	live := b.scr.live
	atomic.AddInt64(&b.stats.Extracted, int64(len(live)))
	atomic.AddInt64(&b.stats.BucketsReturned, 1)
	b.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
	b.rec.Inc(obs.CtrBucketReturned)
	b.debugCheckExtract(cur, live)
	return cur, live
}

// NextBucketFused implements the Fused interface (see bucket.Fused for
// the caller contract and DESIGN.md §11 for the safety argument). The
// fusion rule is deterministic and deliberately identical between Par
// and Seq so the differential suite can compare them in lockstep: the
// first non-empty bucket is always included whole; each subsequent
// non-empty bucket joins the run iff the combined compacted frontier
// stays within maxFrontier identifiers and the covered logical span
// stays within maxSpan bucket ids. A rejected bucket is written back
// to storage as a single compacted chunk, and the traversal resumes
// just after the last fused bucket, so the next extraction revisits
// everything behind the rejection point that this round refills.
//
// Only the first bucket of a run may trigger a range advance; the run
// itself never crosses the open-range boundary (see Fused).
func (b *Par) NextBucketFused(maxFrontier, maxSpan int) (ID, ID, []uint32) {
	if b.done {
		return Nil, Nil, nil
	}
	start := b.rec.Clock()
	defer b.rec.ObserveSince(obs.HistNextBucketNs, start)
	if chaos.Enabled {
		chaos.Point(chaos.SiteRound)
	}
	b.closeSpan()
	b.debugCheckStructure()
	if maxFrontier < 1 {
		maxFrontier = 1
	}
	b.scr.live = b.scr.live[:0]
	first, ok := b.nextCompacted()
	if !ok {
		return Nil, Nil, nil
	}
	last := first
	run := 1
	// Invariant entering each iteration: len(scr.live) <= maxFrontier.
	// A non-empty candidate adds at least one identifier, so once the
	// frontier is full no candidate can be accepted — stop probing.
	// Probing is restricted to the open range: crossing into the
	// overflow bucket would redistribute it before this round's
	// insertions exist, stranding updates that land between the run and
	// the new range (and, on an empty overflow, marking a structure done
	// that is about to receive insertions).
	for len(b.scr.live) < maxFrontier {
		base := len(b.scr.live)
		id, ok := b.nextCompactedInRange()
		if !ok {
			break
		}
		if len(b.scr.live) > maxFrontier || (maxSpan >= 1 && b.spanWidth(first, id) > maxSpan) {
			b.unconsume(id, base)
			break
		}
		last = id
		run++
	}
	// The walk passed over empty buckets (probed slots, or the stretch
	// up to a rejected candidate) that this round's relaxations may yet
	// land in. Rewind the cursor to just after the last fused bucket so
	// those insertions stay ahead of the traversal instead of being
	// dropped as behind it.
	b.cur = b.slotFor(last) + 1
	live := b.scr.live
	atomic.AddInt64(&b.stats.Extracted, int64(len(live)))
	atomic.AddInt64(&b.stats.BucketsReturned, 1)
	b.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
	b.rec.Inc(obs.CtrBucketReturned)
	b.rec.Add(obs.CtrBucketRoundsSaved, int64(run-1))
	b.rec.Observe(obs.HistFusedRunLen, int64(run))
	if b.order == Increasing {
		b.span = fusedSpan{lo: first, hi: last, active: true}
	} else {
		b.span = fusedSpan{lo: last, hi: first, active: true}
	}
	b.debugCheckFused(first, last, live)
	return first, last, live
}

// DrainLazy implements the Fused interface: it compacts the lazy slot
// — identifiers GetBucket routed into the active fused span since the
// last extraction or drain — into the arena and empties it. Stale
// copies (identifiers whose D moved on after insertion) are dropped by
// the same liveness rule NextBucket compaction applies.
func (b *Par) DrainLazy() []uint32 {
	if !b.span.active {
		return nil
	}
	lz := &b.bkts[b.nB+1]
	if lz.n == 0 {
		return nil
	}
	live := b.scr.live[:0]
	for _, c := range lz.chunks {
		live = parallel.FilterAppend(live, c, b.lazyPred)
		b.freePut(c)
	}
	b.scr.live = live
	b.resetSlot(lz)
	if len(live) == 0 {
		return nil
	}
	atomic.AddInt64(&b.stats.Extracted, int64(len(live)))
	b.rec.Add(obs.CtrBucketExtracted, int64(len(live)))
	b.rec.Add(obs.CtrBucketLazyDrained, int64(len(live)))
	b.debugCheckLazyDrain(live)
	return live
}

// closeSpan deactivates the fused span at the next extraction call.
// Identifiers still pending in the lazy slot at that point were never
// handed back by DrainLazy and are dropped — a conforming caller
// drains the span until empty before extracting again, so this is a
// caller bug and a julienne_debug build panics; a release build
// recycles the chunks and moves on (the traversal has passed the span,
// so the copies are as dead as identifiers moved to Nil).
func (b *Par) closeSpan() {
	if !b.span.active {
		return
	}
	lz := &b.bkts[b.nB+1]
	b.debugCheckSpanClosed(lz.n)
	if lz.n > 0 {
		for _, c := range lz.chunks {
			b.freePut(c)
		}
		b.resetSlot(lz)
	}
	b.span = fusedSpan{}
}

// spanWidth is the number of logical bucket ids a fused run from
// `first` through `id` covers, inclusive, in traversal order.
func (b *Par) spanWidth(first, id ID) int {
	if b.order == Increasing {
		return int(id-first) + 1
	}
	return int(first-id) + 1
}

// unconsume returns a bucket the fusion walk compacted but rejected
// (accepting it would overflow maxFrontier or maxSpan) to storage as a
// single compacted chunk and rewinds the traversal cursor to it. base
// is the scr.live offset where the rejected bucket's identifiers
// start.
func (b *Par) unconsume(id ID, base int) {
	live := b.scr.live[base:]
	c := b.chunkAlloc(len(live))
	copy(c, live)
	bk := &b.bkts[b.slotFor(id)]
	bk.chunks = append(bk.chunks, c)
	bk.n += len(c)
	b.cur = b.slotFor(id)
	b.scr.live = b.scr.live[:base]
}

// nextCompactedInRange advances the traversal to the next non-empty
// bucket of the current open range, compacts its live identifiers onto
// the end of b.scr.live (recycling the spent chunks through the free
// list), and returns its logical id. It never touches the overflow
// bucket or the done flag: (Nil, false) only means the open range is
// exhausted. The fusion walk uses it for every bucket after the first,
// so fused runs deliberately end at the range boundary (see
// NextBucketFused).
func (b *Par) nextCompactedInRange() (ID, bool) {
	for b.cur <= b.nB-1 {
		slot := b.cur
		bk := &b.bkts[slot]
		if bk.n == 0 {
			b.cur++
			continue
		}
		cur := b.logical(slot)
		b.liveCur = cur
		base := len(b.scr.live)
		live := b.scr.live
		for _, c := range bk.chunks {
			live = parallel.FilterAppend(live, c, b.livePred)
			b.freePut(c)
		}
		b.scr.live = live
		b.resetSlot(bk)
		if len(live) == base {
			b.cur++
			continue
		}
		return cur, true
	}
	return Nil, false
}

// nextCompacted is nextCompactedInRange extended with §3.3's range
// advance: when the open range is exhausted it redistributes the
// overflow bucket and keeps walking; (Nil, false) means the structure
// is exhausted and done is set. Extraction stats and debug bookkeeping
// are left to the caller, which may be fusing several buckets into one
// frontier.
func (b *Par) nextCompacted() (ID, bool) {
	for {
		if cur, ok := b.nextCompactedInRange(); ok {
			return cur, true
		}
		// Open range exhausted: redistribute overflow, if any. The
		// chunks are flattened (through the free list) so the anchor
		// reduce and the reinsert below index one contiguous array.
		obk := &b.bkts[b.nB]
		if obk.n == 0 {
			b.done = true
			return Nil, false
		}
		over := b.chunkAlloc(obk.n)
		off := 0
		for _, c := range obk.chunks {
			copy(over[off:], c)
			off += len(c)
			b.freePut(c)
		}
		b.resetSlot(obk)
		// The next range is anchored at the nearest live bucket among
		// overflow identifiers.
		var anchor ID
		if b.order == Increasing {
			anchor = parallel.Reduce(len(over), 0, Nil,
				func(j int) ID {
					id := b.d(over[j])
					if id == Nil || id <= b.rangeHi {
						return Nil // stale copy: extracted or moved back
					}
					return id
				},
				func(a, c ID) ID {
					if a == Nil {
						return c
					}
					if c == Nil {
						return a
					}
					return min(a, c)
				})
		} else {
			anchor = parallel.Reduce(len(over), 0, Nil,
				func(j int) ID {
					id := b.d(over[j])
					if id == Nil || id >= b.rangeLo {
						return Nil
					}
					return id
				},
				func(a, c ID) ID {
					if a == Nil {
						return c
					}
					if c == Nil {
						return a
					}
					return max(a, c)
				})
		}
		if anchor == Nil {
			b.done = true
			return Nil, false
		}
		prevLo, prevHi := b.rangeLo, b.rangeHi
		b.setRange(anchor)
		atomic.AddInt64(&b.stats.RangeAdvances, 1)
		b.rec.Inc(obs.CtrBucketRangeAdvances)
		// Reinsert live overflow identifiers under the new range. An
		// identifier is stale if its current logical bucket falls in
		// (or behind) the previous range — it was moved or extracted.
		b.UpdateBuckets(len(over), func(j int) (uint32, Dest) {
			id := over[j]
			next := b.d(id)
			if next == Nil {
				return id, None
			}
			if b.order == Increasing && next <= prevHi {
				return id, None
			}
			if b.order == Decreasing && next >= prevLo {
				return id, None
			}
			return id, b.GetBucket(Nil, next)
		})
		b.freePut(over)
	}
}

// UpdateBuckets implements Structure using the block-histogram strategy
// of §3.3 (or the semisort strategy of §3.2 when configured): the k
// updates are split into blocks of M = 2048; each block counts its
// identifiers per destination slot; one scan over the slot-major count
// matrix yields exact write offsets; a second pass scatters identifiers
// directly into a fresh exact-size chunk per destination bucket.
func (b *Par) UpdateBuckets(k int, f func(j int) (uint32, Dest)) {
	if k <= 0 || b.done {
		return
	}
	start := b.rec.Clock()
	defer b.rec.ObserveSince(obs.HistUpdateBucketsNs, start)
	// The block histograms and scatter offsets are uint32; a batch of
	// 2^32 or more updates would silently wrap the offsets and scatter
	// identifiers into the wrong buckets. Fail loudly instead, mirroring
	// the DeltaStepping bucket-id guard.
	if uint64(k) > math.MaxUint32 {
		panic(fmt.Sprintf("bucket: UpdateBuckets batch of %d updates overflows the uint32 offset space; split the batch below 2^32 identifiers", k))
	}
	b.debugCheckUpdate(k, f)
	if b.useSemi {
		b.updateSemisort(k, f)
		return
	}
	// nB open slots, the overflow slot, and the lazy slot (which only
	// receives identifiers while a fused span is active, but is always
	// accounted for so the pass layout does not depend on span state).
	nSlots := b.nB + 2
	nb := (k + updateBlock - 1) / updateBlock
	need := nSlots * nb
	if cap(b.scr.counts) < need {
		b.scr.counts = make([]uint32, need)
	}
	if cap(b.scr.starts) < nSlots+1 {
		b.scr.starts = make([]uint32, nSlots+1)
	}
	if cap(b.scr.chunks) < nSlots {
		b.scr.chunks = make([][]uint32, nSlots)
	}
	b.upd = updState{
		k: k, nb: nb, f: f,
		counts: b.scr.counts[:need],
		starts: b.scr.starts[:nSlots+1],
		chunks: b.scr.chunks[:nSlots],
	}
	counts, starts := b.upd.counts, b.upd.starts
	parallel.For(need, parallel.DefaultGrain, b.zeroPass)

	// Pass 1: per-block histograms, laid out slot-major so that one
	// exclusive scan produces, for every (slot, block), the offset of
	// that block's contribution within the slot's incoming batch.
	parallel.For(nb, 1, b.histPass)
	total := parallel.Scan(counts, counts)

	// Allocate each destination bucket's chunk once (§3.2: "in
	// parallel, resize all buckets that have identifiers moving to
	// them" — chunking makes the resize a fresh exact-size array
	// instead of a copying reallocation). The chunk table comes from
	// the arena; it needs no clearing because pass 2 only reads entries
	// for slots with incoming identifiers, which the pass above always
	// writes.
	for s := 0; s < nSlots; s++ {
		starts[s] = counts[s*nb]
	}
	starts[nSlots] = total
	parallel.For(nSlots, 8, b.resizePass)

	// Pass 2: scatter. Each block re-evaluates f and writes its
	// identifiers at block-exclusive offsets, so no synchronization is
	// needed within a slot.
	parallel.For(nb, 1, b.scatterPass)
	// The scatter workers have quiesced, but the counter is an atomic
	// cell: load it atomically so the happens-before edge is explicit.
	skipped := atomic.LoadInt64(&b.upd.skipped)
	b.upd.f = nil
	atomic.AddInt64(&b.stats.Moved, int64(total))
	atomic.AddInt64(&b.stats.Skipped, skipped)
	b.rec.Add(obs.CtrBucketMoved, int64(total))
	b.rec.Add(obs.CtrBucketSkipped, skipped)
	b.debugCheckUpdateTotals(k, int64(total), skipped)
}

// updateSemisort is the §3.2 update algorithm: build (destination,
// identifier) pairs, semisort by destination, locate group boundaries,
// then copy each contiguous group into a fresh chunk of its bucket.
func (b *Par) updateSemisort(k int, f func(j int) (uint32, Dest)) {
	type pair = semisort.Pair[uint32]
	pairs := parallel.MapFilterInto(b.scr.pairs, k, func(j int) (pair, bool) {
		id, dest := f(j)
		if dest == None {
			parallel.AddInt64(&b.stats.Skipped, 1)
			return pair{}, false
		}
		return pair{Key: uint32(dest), Value: id}, true
	})
	b.scr.pairs = pairs
	if len(pairs) == 0 {
		b.debugCheckUpdateTotals(k, 0, int64(k))
		return
	}
	if cap(b.scr.sorted) < len(pairs) {
		b.scr.sorted = make([]pair, len(pairs))
	}
	sorted := b.scr.sorted[:len(pairs)]
	semisort.PairsInto(sorted, pairs)
	starts := semisort.GroupStarts(sorted)
	// Resize each destination bucket once, then copy its contiguous
	// group in parallel.
	parallel.For(len(starts), 1, func(gi int) {
		lo := int(starts[gi])
		hi := len(sorted)
		if gi+1 < len(starts) {
			hi = int(starts[gi+1])
		}
		s := int(sorted[lo].Key)
		dst := b.chunkAlloc(hi - lo)
		bk := &b.bkts[s]
		bk.chunks = append(bk.chunks, dst)
		bk.n += hi - lo
		for j := lo; j < hi; j++ {
			dst[j-lo] = sorted[j].Value
		}
	})
	atomic.AddInt64(&b.stats.Moved, int64(len(sorted)))
	b.rec.Add(obs.CtrBucketMoved, int64(len(sorted)))
	b.rec.Add(obs.CtrBucketSkipped, int64(k-len(pairs)))
	b.debugCheckUpdateTotals(k, int64(len(sorted)), int64(k-len(pairs)))
}

// Stats implements Structure. The snapshot uses atomic loads so it is
// safe to call concurrently with NextBucket/UpdateBuckets.
func (b *Par) Stats() Stats { return b.stats.load() }

// CurrentRange reports the open range and traversal position; the tests
// use it to assert the §3.3 overflow behaviour.
func (b *Par) CurrentRange() (lo, hi ID, overflow int) {
	return b.rangeLo, b.rangeHi, b.bkts[b.nB].n
}

// resetSlot empties a slot whose chunks have all been handed to
// freePut, clearing the chunk pointers so the retained header array
// does not pin the recycled chunks against eviction from the free list.
func (b *Par) resetSlot(bk *chunkedBucket) {
	for i := range bk.chunks {
		bk.chunks[i] = nil
	}
	bk.chunks = bk.chunks[:0]
	bk.n = 0
}

// chunkAlloc returns a length-n array for an overflow chunk (or the
// redistribution flatten), preferring a recycled one. Chunks are sized
// exactly: they are written once and never appended to, so they need
// no growth slack.
func (b *Par) chunkAlloc(n int) []uint32 {
	if s := b.freeGet(n); s != nil {
		return s[:n]
	}
	return make([]uint32, n)
}

// freePut recycles a spent identifier array (an emptied bucket slot, a
// drained overflow batch, or an array displaced by grow) for later grow
// calls to reuse.
func (b *Par) freePut(s []uint32) {
	if cap(s) == 0 {
		return
	}
	cls := bits.Len(uint(cap(s))) - 1
	b.freeMu.Lock()
	defer b.freeMu.Unlock()
	if b.scr.freeCount >= maxFreeArrays {
		// Full: displace an array from the smallest nonempty class if
		// this one is strictly larger, so the pool converges on the
		// arrays most likely to satisfy future requests.
		low := -1
		for i := range b.scr.free {
			if len(b.scr.free[i]) > 0 {
				low = i
				break
			}
		}
		if low < 0 || low >= cls {
			return
		}
		l := b.scr.free[low]
		l[len(l)-1] = nil
		b.scr.free[low] = l[:len(l)-1]
		b.scr.freeCount--
	}
	b.scr.free[cls] = append(b.scr.free[cls], s[:0])
	b.scr.freeCount++
}

// freeGet returns a recycled array with capacity at least need, or nil.
// Approximate best fit: the first nonempty class at or above need's
// ceiling class wins, and classes more than 8x oversized are left for
// the large requests only they can serve.
func (b *Par) freeGet(need int) []uint32 {
	if need <= 0 {
		return nil
	}
	c0 := bits.Len(uint(need - 1))
	b.freeMu.Lock()
	defer b.freeMu.Unlock()
	// Class c0-1 straddles need: its arrays have cap in [2^(c0-1),
	// 2^c0), some of which suffice. Check the most recently freed few —
	// the common hit is a just-recycled array of nearly the same size
	// (e.g. successive overflow redistributions).
	if cls := c0 - 1; cls >= 0 {
		l := b.scr.free[cls]
		for i := len(l) - 1; i >= 0 && i >= len(l)-8; i-- {
			if cap(l[i]) >= need {
				s := l[i]
				l[i] = l[len(l)-1]
				l[len(l)-1] = nil
				b.scr.free[cls] = l[:len(l)-1]
				b.scr.freeCount--
				return s
			}
		}
	}
	for cls := c0; cls < len(b.scr.free) && cls <= c0+3; cls++ {
		if l := b.scr.free[cls]; len(l) > 0 {
			s := l[len(l)-1]
			l[len(l)-1] = nil
			b.scr.free[cls] = l[:len(l)-1]
			b.scr.freeCount--
			return s
		}
	}
	return nil
}
