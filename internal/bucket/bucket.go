// Package bucket implements Julienne's core contribution: a
// work-efficient structure maintaining a dynamic mapping from integer
// identifiers to ordered buckets, with fast access to the inverse map
// (§3 of the paper). Bucketing-based algorithms (k-core, ∆-stepping,
// wBFS, approximate set cover) repeatedly extract the lowest (or
// highest) non-empty bucket and move identifiers between buckets.
//
// Two implementations are provided:
//
//   - Parallel (the default, §3.2–3.3): represents an open range of nB
//     buckets plus one overflow bucket, updates buckets with the
//     block-histogram strategy (blocks of M = 2048, per-block counts,
//     one scan, then direct scatter), and compacts lazily. A
//     semisort-based update path (the theoretically-clean §3.2
//     algorithm) is kept behind an option for the ablation benchmarks.
//
//   - Sequential (§3.2): exact dynamic arrays with lazy deletion, used
//     as the differential-testing oracle and the single-thread
//     baseline.
//
// Identifier liveness is defined by the user-supplied D function: a
// copy of identifier i stored in bucket b is live iff D(i) == b at
// extraction time. This is the paper's lazy-deletion contract — moving
// an identifier just inserts a new copy; stale copies are dropped when
// their bucket is compacted.
package bucket

import (
	"math"
	"sync/atomic"
)

// ID identifies a logical bucket. Buckets are traversed monotonically
// in the structure's Order.
type ID = uint32

// Nil is the nullbkt sentinel: "not in any bucket". A D function
// returns Nil for identifiers that should not be (re)inserted.
const Nil ID = math.MaxUint32

// Order is the traversal order over buckets.
type Order int

const (
	// Increasing processes buckets from lowest id upward (k-core,
	// ∆-stepping, wBFS).
	Increasing Order = iota
	// Decreasing processes buckets from highest id downward
	// (approximate set cover).
	Decreasing
)

// Dest is the opaque destination produced by GetBucket and consumed by
// UpdateBuckets (§3.1: "bucket_dest is an opaque type representing
// where an identifier is moving inside of the structure"). Its
// representation differs between implementations; user code must treat
// it as a black box apart from the None sentinel.
type Dest uint32

// None is the Dest meaning "no update required". UpdateBuckets skips
// identifiers whose destination is None, which is how requests that
// move an identifier to Nil (or perform no logical move) stay free
// (§3.4: such requests "are ignored by updateBuckets and do not incur
// any random reads or writes").
const None Dest = Dest(math.MaxUint32)

// Structure is the bucketing interface of §3.1. Both the parallel and
// the sequential implementations satisfy it, which lets every
// application and test run against either.
type Structure interface {
	// NextBucket returns the id of the next non-empty bucket in the
	// traversal order together with the identifiers it contains. The
	// returned slice is valid only until the next NextBucket call:
	// implementations reuse its backing storage across rounds (the
	// parallel structure compacts into a per-structure arena buffer),
	// so callers that need the identifiers beyond the current round
	// must copy them out. When the structure is exhausted it returns
	// (Nil, nil). The same bucket id may be returned more than once if
	// identifiers are inserted back into the current bucket between
	// calls.
	NextBucket() (ID, []uint32)
	// GetBucket computes the destination for an identifier moving
	// from bucket prev to bucket next, or None if no physical update
	// is needed (next == Nil, next == prev, or next strictly behind
	// the traversal, which lazy deletion handles for free).
	GetBucket(prev, next ID) Dest
	// UpdateBuckets applies k updates; the j'th update is given by
	// f(j). Updates whose Dest is None are skipped. f must be pure:
	// the parallel implementation evaluates it in parallel and more
	// than once per index (histogram pass and scatter pass). In
	// practice callers index into materialized (identifier, dest)
	// arrays, e.g. the output of a tagged edge map.
	UpdateBuckets(k int, f func(j int) (uint32, Dest))
	// Stats returns cumulative operation counts, used by the
	// microbenchmark (§3.4) and the work-efficiency experiments.
	Stats() Stats
}

// Fused is implemented by structures that additionally support bucket
// fusion: draining a run of consecutive non-empty buckets into one
// frontier (NextBucketFused) with lazy insertion of identifiers that
// land back inside the fused span (DrainLazy). Fusion amortizes the
// per-round synchronization cost that dominates on large-diameter
// inputs, where NextBucket returns long runs of tiny buckets; see
// DESIGN.md §11 for the semantics and the safety argument (fusion is
// only sound for monotone priority algorithms such as ∆-stepping and
// wBFS — peeling algorithms like k-core and set cover require exact
// bucket order and must not use it).
type Fused interface {
	Structure
	// NextBucketFused drains a maximal run of consecutive non-empty
	// buckets, starting at the next one the traversal would visit, into
	// a single frontier. A candidate bucket is fused into the run while
	// the combined live frontier stays within maxFrontier identifiers
	// (values below 1 are clamped to 1, so the first bucket is always
	// returned whole) and the covered logical id span stays within
	// maxSpan buckets (values below 1 mean unbounded). It returns the
	// first and last bucket id of the fused run in traversal order plus
	// the combined identifiers, or (Nil, Nil, nil) when exhausted. The
	// returned slice obeys the NextBucket arena contract: it is valid
	// only until the next NextBucket/NextBucketFused/DrainLazy/
	// UpdateBuckets call.
	//
	// Implementations may end a run early at an internal storage
	// boundary: the parallel structure never fuses across its open-range
	// boundary, because advancing the range mid-run would strand this
	// round's insertions behind the new range (raise Options.OpenBuckets
	// to lengthen runs). The run resumes at the next extraction call
	// after a normal range advance.
	//
	// Until the next extraction call, the structure treats [first, last]
	// as the active fused span: GetBucket destinations inside the span
	// are routed to a lazy buffer instead of bucket storage, so the
	// caller can process them in the same round via DrainLazy.
	NextBucketFused(maxFrontier, maxSpan int) (first, last ID, ids []uint32)
	// DrainLazy returns the live identifiers lazily inserted into the
	// active fused span since the last NextBucketFused/DrainLazy call,
	// emptying the lazy buffer. It returns nil when the span has fully
	// settled (no pending insertions), which terminates the caller's
	// intra-span loop. The returned slice follows the same arena
	// contract as NextBucketFused. Callers must drain the span until
	// empty before the next extraction call: identifiers still pending
	// when the span closes are dropped (a julienne_debug build panics).
	DrainLazy() []uint32
}

// Fusion is the consumer-facing fusion knob (sssp.Options.Fusion, the
// sssp CLI, cmd/bench). The zero value disables fusion entirely: the
// algorithm runs the classic one-bucket-per-round loop, bit-for-bit
// identical to a build without fusion support.
type Fusion struct {
	// MaxFrontier bounds the combined live identifiers per fused run.
	// Zero (or negative) disables fusion; math.MaxInt fuses maximally.
	MaxFrontier int
	// MaxSpan bounds the logical bucket ids a fused run may cover.
	// Zero (or negative) means unbounded.
	MaxSpan int
}

// Enabled reports whether the knob turns fusion on.
func (f Fusion) Enabled() bool { return f.MaxFrontier > 0 }

// MaximalFusion fuses without frontier or span bounds: every run
// extends until the structure (or, for the parallel implementation,
// the open bucket range) is exhausted.
func MaximalFusion() Fusion { return Fusion{MaxFrontier: math.MaxInt} }

// Stats counts the structure's work, matching the §3.4 throughput
// definition: throughput counts identifiers extracted by NextBucket
// plus identifiers physically moved by UpdateBuckets (moves to Nil are
// excluded — they are the skipped None destinations).
//
// Both implementations maintain these counters with atomic operations
// and snapshot them with atomic loads in Stats(), so Stats may be read
// concurrently with structure operations (e.g. by a telemetry poller)
// without data races.
type Stats struct {
	// Extracted is the total number of identifiers returned by
	// NextBucket.
	Extracted int64
	// Moved is the total number of identifiers physically inserted by
	// UpdateBuckets.
	Moved int64
	// Skipped is the number of None-destination updates (free).
	Skipped int64
	// BucketsReturned is the number of successful NextBucket calls.
	BucketsReturned int64
	// RangeAdvances counts overflow unpacks (parallel implementation
	// only).
	RangeAdvances int64
}

// Throughput returns Extracted + Moved, the §3.4 numerator.
func (s Stats) Throughput() int64 { return s.Extracted + s.Moved }

// load snapshots the live counter struct with atomic reads, pairing
// with the atomic adds the implementations perform.
func (s *Stats) load() Stats {
	return Stats{
		Extracted:       atomic.LoadInt64(&s.Extracted),
		Moved:           atomic.LoadInt64(&s.Moved),
		Skipped:         atomic.LoadInt64(&s.Skipped),
		BucketsReturned: atomic.LoadInt64(&s.BucketsReturned),
		RangeAdvances:   atomic.LoadInt64(&s.RangeAdvances),
	}
}

// Sub returns the component-wise difference s - prev: the traffic that
// happened between two snapshots. Per-round observers use it to turn
// cumulative counters into per-round deltas.
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Extracted:       s.Extracted - prev.Extracted,
		Moved:           s.Moved - prev.Moved,
		Skipped:         s.Skipped - prev.Skipped,
		BucketsReturned: s.BucketsReturned - prev.BucketsReturned,
		RangeAdvances:   s.RangeAdvances - prev.RangeAdvances,
	}
}
