package bucket

import (
	"math"
	"testing"
)

// --- fused extraction (DESIGN.md §11) ------------------------------------

// ids returns a sorted copy helper is in bucket_test.go (asSet); these
// tests compare sets because Par's intra-bucket order is unspecified.

func wantSet(t *testing.T, what string, got []uint32, want ...uint32) {
	t.Helper()
	g := asSet(got)
	if len(g) != len(got) {
		t.Fatalf("%s: duplicate identifiers in %v", what, got)
	}
	if len(g) != len(want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
	for _, id := range want {
		if !g[id] {
			t.Fatalf("%s: got %v, want %v", what, got, want)
		}
	}
}

// TestNextBucketFusedRuns exercises the fusion rule on a handcrafted
// layout — runs bounded by maxFrontier, runs bounded by maxSpan with a
// rejected bucket written back, and the cursor rewind that lets this
// round's insertions land between the fused span and the rejection
// point.
func TestNextBucketFusedRuns(t *testing.T) {
	// Buckets: 0:{0,1} 1:{2} 2:{3,4,5} 5:{6,7} 9:{8,9}.
	d := []ID{0, 0, 1, 2, 2, 2, 5, 5, 9, 9}
	dfn := func(i uint32) ID { return d[i] }
	b := New(len(d), dfn, Increasing, Options{OpenBuckets: 16})

	// maxFrontier 6 admits buckets 0,1,2 (2+1+3 identifiers) and then
	// stops: the frontier is full, bucket 5 cannot join.
	first, last, ids := b.NextBucketFused(6, 0)
	if first != 0 || last != 2 {
		t.Fatalf("fused run = [%d, %d], want [0, 2]", first, last)
	}
	wantSet(t, "fused frontier", ids, 0, 1, 2, 3, 4, 5)
	for _, id := range ids {
		d[id] = Nil // retire the whole frontier
	}

	// maxSpan 3 admits bucket 5 alone: 9 is 5 ids away, so it is
	// rejected and written back for a later extraction.
	first, last, ids = b.NextBucketFused(10, 3)
	if first != 5 || last != 5 {
		t.Fatalf("fused run = [%d, %d], want [5, 5]", first, last)
	}
	wantSet(t, "span-bounded frontier", ids, 6, 7)

	// The walk probed past buckets 6..8 before rejecting 9; an insertion
	// into bucket 7 this round must still be accepted (cursor rewound to
	// just after the fused run) and extracted before bucket 9.
	d[6], d[7] = 7, Nil
	dest := b.GetBucket(5, 7)
	if dest == None {
		t.Fatal("insertion between the fused run and the rejected bucket was dropped")
	}
	b.UpdateBuckets(1, func(int) (uint32, Dest) { return 6, dest })
	if got := b.DrainLazy(); got != nil {
		t.Fatalf("DrainLazy returned %v for an out-of-span insertion", got)
	}

	first, last, ids = b.NextBucketFused(10, 1)
	if first != 7 || last != 7 {
		t.Fatalf("fused run = [%d, %d], want [7, 7]", first, last)
	}
	wantSet(t, "rewound frontier", ids, 6)
	d[6] = Nil

	// The rejected bucket finally comes out intact.
	first, last, ids = b.NextBucketFused(10, 0)
	if first != 9 || last != 9 {
		t.Fatalf("fused run = [%d, %d], want [9, 9]", first, last)
	}
	wantSet(t, "rejected bucket", ids, 8, 9)

	s := b.Stats()
	if s.BucketsReturned != 4 || s.Extracted != 11 {
		t.Fatalf("Stats = %+v, want BucketsReturned=4 Extracted=11", s)
	}
}

// TestFusedLazyInsertion pins the lazy-insertion path: while the fused
// span is active, destinations inside it (including same-bucket
// reinsertions, whose physical copies the extraction consumed) route to
// the lazy slot and come back through DrainLazy in the same round.
func TestFusedLazyInsertion(t *testing.T) {
	d := []ID{0, 0, 3, 3}
	dfn := func(i uint32) ID { return d[i] }
	for name, b := range map[string]Fused{
		"par": New(len(d), dfn, Increasing, Options{OpenBuckets: 8}),
		"seq": NewSeq(len(d), dfn, Increasing),
	} {
		first, last, ids := b.NextBucketFused(math.MaxInt, 0)
		if first != 0 || last != 3 {
			t.Fatalf("%s: fused run = [%d, %d], want [0, 3]", name, first, last)
		}
		wantSet(t, name+" frontier", ids, 0, 1, 2, 3)

		// 0 reinserts into its own bucket, 2 moves within the span, 1
		// leaves the span, 3 retires.
		prev := []ID{0, 0, 3, 3}
		d[0], d[1], d[2], d[3] = 0, 5, 2, Nil
		dests := make([]Dest, 4)
		for i := range dests {
			dests[i] = b.GetBucket(prev[i], d[i])
		}
		if dests[3] != None {
			t.Fatalf("%s: retirement got dest %d, want None", name, dests[3])
		}
		b.UpdateBuckets(4, func(j int) (uint32, Dest) { return uint32(j), dests[j] })

		lz := b.DrainLazy()
		wantSet(t, name+" lazy drain", lz, 0, 2)

		// Settle the drained identifiers outside the span; the span is
		// then fully drained and the next extraction finds bucket 5.
		d[0], d[2] = 5, 5
		for _, id := range []uint32{0, 2} {
			dst := b.GetBucket(0, 5)
			b.UpdateBuckets(1, func(int) (uint32, Dest) { return id, dst })
		}
		if got := b.DrainLazy(); got != nil {
			t.Fatalf("%s: second DrainLazy = %v, want nil", name, got)
		}
		id, ids2 := b.NextBucket()
		if id != 5 {
			t.Fatalf("%s: next bucket = %d, want 5", name, id)
		}
		wantSet(t, name+" settled bucket", ids2, 0, 1, 2)
		d[0], d[1], d[2], d[3] = 0, 0, 3, 3 // reset for the second implementation
	}
}

// TestFusedProbeDoesNotExhaust is the regression test for the fatal
// first-cut bug: when only one bucket is occupied, the fusion walk used
// to probe clean through the open range and the (empty) overflow
// bucket, marking the structure done — dropping every insertion the
// caller was about to make and ending ∆-stepping after one round.
func TestFusedProbeDoesNotExhaust(t *testing.T) {
	for _, order := range []Order{Increasing, Decreasing} {
		d := []ID{7, Nil, Nil}
		dfn := func(i uint32) ID { return d[i] }
		b := New(len(d), dfn, order, Options{OpenBuckets: 4})
		first, last, ids := b.NextBucketFused(math.MaxInt, 0)
		if first != 7 || last != 7 {
			t.Fatalf("order %v: fused run = [%d, %d], want [7, 7]", order, first, last)
		}
		wantSet(t, "lone bucket", ids, 0)

		// The structure must still accept and serve insertions.
		next := ID(8)
		if order == Decreasing {
			next = 6
		}
		d[1] = next
		dest := b.GetBucket(Nil, next)
		if dest == None {
			t.Fatalf("order %v: insertion after an exhausting probe was dropped", order)
		}
		b.UpdateBuckets(1, func(int) (uint32, Dest) { return 1, dest })
		id, ids2 := b.NextBucket()
		if id != next {
			t.Fatalf("order %v: next bucket = %d, want %d", order, id, next)
		}
		wantSet(t, "post-probe insertion", ids2, 1)
	}
}

// TestFusedRangeBoundary pins the open-range rule: a fused run never
// crosses the range boundary (probing further would redistribute the
// overflow bucket before this round's insertions exist), insertions
// into the stranded region beyond the boundary go to overflow as
// usual, and the run resumes after a normal range advance.
func TestFusedRangeBoundary(t *testing.T) {
	// Range [0, 3] with every open bucket occupied; 4 and 5 sit in
	// overflow at bucket 10.
	d := []ID{0, 1, 2, 3, 10, 10}
	dfn := func(i uint32) ID { return d[i] }
	b := New(len(d), dfn, Increasing, Options{OpenBuckets: 4})

	first, last, ids := b.NextBucketFused(math.MaxInt, 0)
	if first != 0 || last != 3 {
		t.Fatalf("fused run = [%d, %d], want [0, 3] (must stop at the range boundary)", first, last)
	}
	wantSet(t, "range-wide frontier", ids, 0, 1, 2, 3)

	// An insertion into the stranded region (past the boundary, before
	// the overflow anchor) must survive via the overflow bucket.
	d[0], d[1], d[2], d[3] = 5, Nil, Nil, Nil
	dest := b.GetBucket(0, 5)
	if dest == None {
		t.Fatal("insertion beyond the range boundary was dropped")
	}
	b.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, dest })

	first, last, ids = b.NextBucketFused(math.MaxInt, 0)
	if first != 5 || last != 5 {
		t.Fatalf("fused run = [%d, %d], want [5, 5]", first, last)
	}
	wantSet(t, "stranded insertion", ids, 0)
	d[0] = Nil

	first, last, ids = b.NextBucketFused(math.MaxInt, 0)
	if first != 10 || last != 10 {
		t.Fatalf("fused run = [%d, %d], want [10, 10]", first, last)
	}
	wantSet(t, "overflow bucket", ids, 4, 5)
	if adv := b.Stats().RangeAdvances; adv < 1 {
		t.Fatalf("RangeAdvances = %d, want >= 1", adv)
	}
}

// TestSeqFusedCursorRewind is the Seq half of the rewind regression: a
// rejected bucket leaves the cursor just after the fused run, so
// insertions between the run and the rejection point are accepted.
func TestSeqFusedCursorRewind(t *testing.T) {
	d := []ID{0, 9}
	dfn := func(i uint32) ID { return d[i] }
	s := NewSeq(len(d), dfn, Increasing)

	first, last, ids := s.NextBucketFused(10, 3)
	if first != 0 || last != 0 {
		t.Fatalf("fused run = [%d, %d], want [0, 0]", first, last)
	}
	wantSet(t, "span-bounded run", ids, 0)

	d[0] = 4
	dest := s.GetBucket(0, 4)
	if dest == None {
		t.Fatal("insertion behind the rejected bucket was dropped")
	}
	s.UpdateBuckets(1, func(int) (uint32, Dest) { return 0, dest })

	first, last, ids = s.NextBucketFused(10, 3)
	if first != 4 || last != 4 {
		t.Fatalf("fused run = [%d, %d], want [4, 4]", first, last)
	}
	wantSet(t, "rewound insertion", ids, 0)
	d[0] = Nil
	id, ids2 := s.NextBucket()
	if id != 9 {
		t.Fatalf("next bucket = %d, want 9", id)
	}
	wantSet(t, "rejected bucket", ids2, 1)
}

// TestDrainLazyDropsStale checks the liveness rule on the lazy slot: an
// identifier whose D moved on between lazy insertion and the drain is
// dropped like any stale copy.
func TestDrainLazyDropsStale(t *testing.T) {
	d := []ID{0, 0, 2}
	dfn := func(i uint32) ID { return d[i] }
	for name, b := range map[string]Fused{
		"par": New(len(d), dfn, Increasing, Options{OpenBuckets: 8}),
		"seq": NewSeq(len(d), dfn, Increasing),
	} {
		_, _, ids := b.NextBucketFused(math.MaxInt, 0)
		wantSet(t, name+" frontier", ids, 0, 1, 2)
		// 0 and 1 reinsert into the span...
		d[0], d[1] = 1, 1
		for _, id := range []uint32{0, 1} {
			dst := b.GetBucket(0, 1)
			b.UpdateBuckets(1, func(int) (uint32, Dest) { return id, dst })
		}
		// ...but 1 retires before the drain, so only 0 comes back.
		d[1] = Nil
		lz := b.DrainLazy()
		wantSet(t, name+" lazy drain", lz, 0)
		d[0], d[1], d[2] = 0, 0, 2 // reset for the second implementation
	}
}

// TestFusedMaxFrontierClamp pins the clamp: maxFrontier below 1 still
// returns the first bucket whole (fusion disabled is expressed by not
// calling NextBucketFused at all, not by a zero budget).
func TestFusedMaxFrontierClamp(t *testing.T) {
	d := []ID{4, 4, 4, 5}
	dfn := func(i uint32) ID { return d[i] }
	b := New(len(d), dfn, Increasing, Options{OpenBuckets: 8})
	first, last, ids := b.NextBucketFused(0, 0)
	if first != 4 || last != 4 {
		t.Fatalf("fused run = [%d, %d], want [4, 4]", first, last)
	}
	wantSet(t, "clamped frontier", ids, 0, 1, 2)
}

// TestTrackedFused smoke-tests the Tracked forwarders: fused extraction
// and lazy reinsertion compose with the internal prev-bucket map.
func TestTrackedFused(t *testing.T) {
	d := []ID{0, 1, 3}
	dfn := func(i uint32) ID { return d[i] }
	tr := NewTracked(len(d), dfn, Increasing, Options{OpenBuckets: 8})
	first, last, ids := tr.NextBucketFused(math.MaxInt, 0)
	if first != 0 || last != 3 {
		t.Fatalf("fused run = [%d, %d], want [0, 3]", first, last)
	}
	wantSet(t, "tracked frontier", ids, 0, 1, 2)
	// 0 reinserts in-span (lazy), the others retire.
	d[0], d[1], d[2] = 2, Nil, Nil
	tr.UpdateBucketsTo(3, func(j int) (uint32, ID) { return uint32(j), d[j] })
	lz := tr.DrainLazy()
	wantSet(t, "tracked lazy drain", lz, 0)
	d[0] = Nil
	if got := tr.DrainLazy(); got != nil {
		t.Fatalf("second DrainLazy = %v, want nil", got)
	}
	if id, _ := tr.NextBucket(); id != Nil {
		t.Fatalf("structure not exhausted: bucket %d", id)
	}
}
