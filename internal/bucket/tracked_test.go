package bucket

import (
	"testing"

	"julienne/internal/rng"
)

func TestTrackedMatchesPar(t *testing.T) {
	// Drive Par (with explicit prev) and Tracked (internal prev)
	// through the same workload; extractions must agree.
	n := 3000
	dp := make([]ID, n)
	dt := make([]ID, n)
	for i := range dp {
		dp[i] = ID(rng.UintNAt(5, uint64(i), 200))
		dt[i] = dp[i]
	}
	par := New(n, func(i uint32) ID { return dp[i] }, Increasing, Options{})
	trk := NewTracked(n, func(i uint32) ID { return dt[i] }, Increasing, Options{})

	round := uint64(0)
	for {
		round++
		pb, pids := par.NextBucket()
		tb, tids := trk.NextBucket()
		if pb != tb {
			t.Fatalf("bucket mismatch %d vs %d", pb, tb)
		}
		if pb == Nil {
			break
		}
		if len(pids) != len(tids) {
			t.Fatalf("bucket %d sizes %d vs %d", pb, len(pids), len(tids))
		}
		// Identical update stream: touch fanout pseudo-random ids.
		type upd struct {
			id   uint32
			next ID
		}
		var updates []upd
		for _, id := range pids {
			dp[id] = Nil
			dt[id] = Nil
			for j := 0; j < 4; j++ {
				v := uint32(rng.UintNAt(7, round<<20|uint64(id)<<3|uint64(j), uint64(n)))
				if dp[v] == Nil {
					continue
				}
				var next ID
				if dp[v] > pb {
					next = max(pb, dp[v]/2)
				} else {
					next = Nil
				}
				updates = append(updates, upd{v, next})
			}
		}
		parDests := make([]Dest, len(updates))
		for i, u := range updates {
			parDests[i] = par.GetBucket(dp[u.id], u.next)
			dp[u.id] = u.next
		}
		par.UpdateBuckets(len(updates), func(j int) (uint32, Dest) {
			return updates[j].id, parDests[j]
		})
		// Tracked applies the same stream; its internal prev map must
		// reproduce the explicit prev values. Mutate dt first so the
		// liveness function agrees.
		for _, u := range updates {
			dt[u.id] = u.next
		}
		trk.UpdateBucketsTo(len(updates), func(j int) (uint32, ID) {
			return updates[j].id, updates[j].next
		})
	}
	if par.Stats().Extracted != trk.Stats().Extracted {
		t.Fatalf("extraction totals differ: %d vs %d",
			par.Stats().Extracted, trk.Stats().Extracted)
	}
}

func TestTrackedSimple(t *testing.T) {
	d := []ID{0, 3}
	trk := NewTracked(2, func(i uint32) ID { return d[i] }, Increasing, Options{})
	b, ids := trk.NextBucket()
	if b != 0 || len(ids) != 1 || ids[0] != 0 {
		t.Fatalf("first bucket (%d,%v)", b, ids)
	}
	d[1] = 1
	trk.UpdateBucketsTo(1, func(int) (uint32, ID) { return 1, 1 })
	b, ids = trk.NextBucket()
	if b != 1 || len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("moved bucket (%d,%v)", b, ids)
	}
}
