package experiments

import (
	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/harness"
	"julienne/internal/rng"
)

// Extensions reports the features beyond the paper's four applications
// (DESIGN.md items 17–20): densest subgraph via bucketed peeling,
// k-core extraction, and weighted set cover. These are not paper
// artifacts; they demonstrate the framework's reach, so the section
// reports quality metrics alongside times.
func (s *Suite) Extensions() {
	s.section("Extensions: densest subgraph (bucketed peel)")
	t := harness.NewTable("graph", "impl", "time", "density", "|S|", "rounds")
	for _, ng := range []NamedGraph{s.Graphs()[1], s.Graphs()[2]} {
		ch := densest.Charikar(ng.G)
		chT := harness.TimeMedian(s.reps(), func() { densest.Charikar(ng.G) })
		t.AddRow(ng.Name, "charikar 2-approx", chT, ch.Density, len(ch.Vertices), ch.Rounds)
		pb := densest.PeelBatch(ng.G, 0.1)
		pbT := harness.TimeMedian(s.reps(), func() { densest.PeelBatch(ng.G, 0.1) })
		t.AddRow(ng.Name, "batch peel (2+2e)", pbT, pb.Density, len(pb.Vertices), pb.Rounds)
	}
	t.Render(s.W)

	s.section("Extensions: k-core extraction (4.1 footnote)")
	t2 := harness.NewTable("graph", "k", "core vertices", "num cores", "time")
	g := s.Graphs()[1].G
	cores := kcore.Coreness(g, kcore.Options{}).Coreness
	kmax := kcore.MaxCoreness(cores)
	for _, k := range []uint32{2, kmax / 2, kmax} {
		d := harness.TimeMedian(s.reps(), func() { kcore.ExtractCore(g, cores, k) })
		sub := kcore.ExtractCore(g, cores, k)
		t2.AddRow(s.Graphs()[1].Name, k, len(sub.Vertices), sub.NumCores, d)
	}
	t2.Render(s.W)

	s.section("Extensions: weighted set cover (4.3 weighted case)")
	inst := s.coverInstance()
	r := rng.New(s.seed())
	costs := make([]float64, inst.Sets)
	for i := range costs {
		costs[i] = 0.5 + 5*r.Float64()
	}
	t3 := harness.NewTable("impl", "time", "cover cost", "|cover|")
	aw := setcover.ApproxWeighted(inst.Graph, inst.Sets, costs, setcover.Options{})
	awT := harness.TimeMedian(s.reps(), func() {
		setcover.ApproxWeighted(inst.Graph, inst.Sets, costs, setcover.Options{})
	})
	t3.AddRow("bucketed (e=0.01)", awT, aw.Cost, aw.CoverSize)
	gw := setcover.GreedyWeighted(inst.Graph, inst.Sets, costs)
	gwT := harness.TimeMedian(s.reps(), func() {
		setcover.GreedyWeighted(inst.Graph, inst.Sets, costs)
	})
	t3.AddRow("greedy seq (exact)", gwT, gw.Cost, gw.CoverSize)
	t3.Render(s.W)
}
