// Package experiments reproduces every table and figure of the paper's
// evaluation (§3.4 and §5) on synthetic stand-ins for its graph suite.
// Each exported method of Suite regenerates one artifact:
//
//	Table1   — empirical work-efficiency counters backing Table 1's
//	           asymptotic bounds
//	Table2   — the graph inventory (n, m, ρ, ...) in the role of Table 2
//	Table3   — running times of every implementation at 1 thread and at
//	           all threads, with speedups
//	Figure1  — bucket-structure throughput vs. identifiers/round, plus
//	           application points
//	Figure2..Figure5 — running time vs. thread count per application
//	Ablations — the §3.3/§4.2 design-choice measurements
//
// The cmd/experiments binary and the root-level benchmarks both drive
// this package; EXPERIMENTS.md records one full run.
package experiments

import (
	"fmt"
	"io"

	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/obs"
)

// Scale selects input sizes. Tests use Small; the shipped numbers use
// Medium or Large.
type Scale int

const (
	// Small finishes the whole suite in seconds (CI-sized).
	Small Scale = iota
	// Medium is the default for cmd/experiments.
	Medium
	// Large approaches what a laptop holds comfortably.
	Large
)

// ParseScale maps a flag string to a Scale.
func ParseScale(s string) (Scale, error) {
	switch s {
	case "small":
		return Small, nil
	case "medium":
		return Medium, nil
	case "large":
		return Large, nil
	}
	return Small, fmt.Errorf("experiments: unknown scale %q (want small|medium|large)", s)
}

// Suite carries the experiment configuration.
type Suite struct {
	// W receives the rendered tables and series.
	W io.Writer
	// Scale selects input sizes.
	Scale Scale
	// Reps is the repetition count for medians (default 3).
	Reps int
	// Seed makes all workloads reproducible.
	Seed uint64
	// Rec, when non-nil, receives one trace span per experiment so a
	// whole-suite run can be inspected in a trace viewer. The timed
	// algorithm executions themselves stay uninstrumented — a recorder
	// inside the measured region would perturb the numbers.
	Rec *obs.Recorder
}

// run1 executes one experiment under a trace span.
func (s *Suite) run1(name string, f func()) {
	sp := s.Rec.StartSpan("experiments." + name)
	f()
	sp.End()
}

func (s *Suite) reps() int {
	if s.Reps < 1 {
		return 3
	}
	return s.Reps
}

func (s *Suite) seed() uint64 {
	if s.Seed == 0 {
		return 2017 // SPAA '17
	}
	return s.Seed
}

// NamedGraph is one input of the evaluation suite, playing the role of
// one of the paper's Table 2 graphs.
type NamedGraph struct {
	Name string
	// Role names the paper input this graph stands in for.
	Role string
	G    *graph.CSR
}

// sizes returns (n, m) targets for the social-style graphs.
func (s *Suite) sizes() (int, int) {
	switch s.Scale {
	case Small:
		return 1 << 10, 1 << 13
	case Large:
		return 1 << 16, 1 << 20
	default:
		return 1 << 13, 1 << 17
	}
}

// Graphs builds the undirected inventory (the k-core / wBFS / scaling
// inputs). Graphs are rebuilt per call so experiments cannot leak
// state into each other through packed adjacency.
func (s *Suite) Graphs() []NamedGraph {
	n, m := s.sizes()
	seed := s.seed()
	return []NamedGraph{
		{Name: "rmat-dense", Role: "com-Orkut (dense social)", G: gen.RMAT(n/2, m, true, seed)},
		{Name: "rmat", Role: "Twitter-Sym (skewed social)", G: gen.RMAT(n, m, true, seed+1)},
		{Name: "powerlaw", Role: "Friendster (power law)", G: gen.ChungLu(n, m, 2.3, true, seed+2)},
		{Name: "random", Role: "Hyperlink-Host (uniform)", G: gen.ErdosRenyi(n, m/2, true, seed+3)},
		{Name: "road", Role: "road-like (high diameter)", G: s.roadGraph()},
	}
}

func (s *Suite) roadGraph() *graph.CSR {
	switch s.Scale {
	case Small:
		return gen.Grid2D(32, 32)
	case Large:
		return gen.Grid2D(512, 512)
	default:
		return gen.Grid2D(128, 128)
	}
}

// scalingGraphs returns the three inputs used by the Figure 2–5 thread
// sweeps (the paper uses Friendster, Hyperlink2012-Host-Sym and
// Twitter-Sym).
func (s *Suite) scalingGraphs() []NamedGraph {
	gs := s.Graphs()
	return []NamedGraph{gs[1], gs[2], gs[4]}
}

// coverInstance builds the set-cover input.
func (s *Suite) coverInstance() gen.SetCoverInstance {
	n, _ := s.sizes()
	return gen.SetCover(n/2, 4*n, 4, s.seed()+9)
}

// section prints a titled separator.
func (s *Suite) section(title string) {
	fmt.Fprintf(s.W, "\n== %s ==\n\n", title)
}

// RunAll regenerates every artifact in paper order.
func (s *Suite) RunAll() {
	s.run1("table2", s.Table2)
	s.run1("fig1", s.Figure1)
	s.run1("table1", s.Table1)
	s.run1("table3", s.Table3)
	s.run1("fig2", s.Figure2)
	s.run1("fig3", s.Figure3)
	s.run1("fig4", s.Figure4)
	s.run1("fig5", s.Figure5)
	s.run1("ablations", s.Ablations)
	s.run1("extensions", s.Extensions)
}

// Run dispatches a single experiment by id ("table1", "fig3", ...).
func (s *Suite) Run(id string) error {
	switch id {
	case "all":
		s.RunAll()
	case "table1":
		s.run1(id, s.Table1)
	case "table2":
		s.run1(id, s.Table2)
	case "table3":
		s.run1(id, s.Table3)
	case "fig1":
		s.run1(id, s.Figure1)
	case "fig2":
		s.run1(id, s.Figure2)
	case "fig3":
		s.run1(id, s.Figure3)
	case "fig4":
		s.run1(id, s.Figure4)
	case "fig5":
		s.run1(id, s.Figure5)
	case "ablations":
		s.run1(id, s.Ablations)
	case "extensions":
		s.run1(id, s.Extensions)
	default:
		return fmt.Errorf("experiments: unknown experiment %q", id)
	}
	return nil
}

// IDs lists the experiment ids Run accepts.
func IDs() []string {
	return []string{"all", "table1", "table2", "table3",
		"fig1", "fig2", "fig3", "fig4", "fig5", "ablations", "extensions"}
}
