package experiments

import (
	"fmt"

	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
	"julienne/internal/microbench"
)

// Figure1 reproduces the §3.4 microbenchmark plot: bucket-structure
// throughput (identifiers/second) vs. average identifiers per round
// for b ∈ {128, 256, 512, 1024}, plus one point per application
// computed from its real bucket traffic — the same series Figure 1
// overlays.
func (s *Suite) Figure1() {
	s.section("Figure 1: bucket throughput vs. identifiers/round")
	var idCounts []int
	switch s.Scale {
	case Small:
		idCounts = []int{1 << 10, 1 << 13, 1 << 16}
	case Large:
		idCounts = []int{1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22}
	default:
		idCounts = []int{1 << 10, 1 << 13, 1 << 16, 1 << 19}
	}
	t := harness.NewTable("series", "identifiers", "rounds", "avg ids/round", "throughput ids/s")
	var allPts []microbench.Point
	for _, b := range []int{128, 256, 512, 1024} {
		for _, n := range idCounts {
			p := microbench.Run(microbench.Config{Identifiers: n, Buckets: b, Seed: s.seed()})
			allPts = append(allPts, p)
			t.AddRow(fmt.Sprintf("%d buckets", b), n, p.Rounds, p.AvgPerRound, p.Throughput)
		}
	}
	// Application points: (avg identifiers/round, throughput) measured
	// from each application's bucket statistics over its full run.
	appPoint := func(name string, run func() bucket.Stats) {
		var st bucket.Stats
		elapsed := harness.Time(func() { st = run() })
		rounds := st.BucketsReturned
		if rounds == 0 || elapsed <= 0 {
			return
		}
		t.AddRow(name, "-", rounds,
			float64(st.Throughput())/float64(rounds),
			float64(st.Throughput())/elapsed.Seconds())
	}
	g := s.Graphs()[1].G
	appPoint("k-core", func() bucket.Stats {
		return kcore.Coreness(g, kcore.Options{}).BucketStats
	})
	wlog := gen.LogWeights(g, s.seed()+200)
	appPoint("wBFS", func() bucket.Stats {
		return sssp.WBFS(wlog, 0, sssp.Options{}).BucketStats
	})
	wheavy := gen.HeavyWeights(g, s.seed()+300)
	appPoint("delta-stepping", func() bucket.Stats {
		return sssp.DeltaStepping(wheavy, 0, s.delta(), sssp.Options{}).BucketStats
	})
	inst := s.coverInstance()
	appPoint("setcover", func() bucket.Stats {
		return setcover.Approx(inst.Graph, inst.Sets, setcover.Options{}).BucketStats
	})
	t.Render(s.W)
	sum := microbench.Summarize(allPts)
	fmt.Fprintf(s.W, "\npeak throughput: %.3g ids/s; half-performance length: %.3g ids/round\n",
		sum.PeakThroughput, sum.HalfLength)
}

// sweepFigure renders one thread-scaling figure: per input graph, one
// series per implementation, a row per thread count.
func (s *Suite) sweepFigure(title string, impls []string,
	run func(impl string, g *graph.CSR) func()) {

	s.section(title)
	t := harness.NewTable("graph", "impl", "threads", "time", "spread")
	for _, ng := range s.scalingGraphs() {
		for _, impl := range impls {
			f := run(impl, ng.G)
			for _, pt := range harness.ThreadSweep(s.reps(), f) {
				t.AddRow(ng.Name, impl, pt.Threads, pt.Median, pt.Spread())
			}
		}
	}
	t.Render(s.W)
}

// Figure2 is the k-core scaling figure: Julienne's work-efficient
// implementation vs. the work-inefficient Ligra one.
func (s *Suite) Figure2() {
	s.sweepFigure("Figure 2: k-core running time vs. thread count",
		[]string{"julienne", "ligra"},
		func(impl string, g *graph.CSR) func() {
			if impl == "julienne" {
				return func() { kcore.Coreness(g, kcore.Options{}) }
			}
			return func() { kcore.CorenessLigra(g) }
		})
}

// Figure3 is the wBFS scaling figure (weights in [1, log n)).
func (s *Suite) Figure3() {
	seed := s.seed() + 400
	s.sweepFigure("Figure 3: wBFS running time vs. thread count (weights [1,log n))",
		[]string{"julienne", "gap-bins", "bellman-ford"},
		func(impl string, g *graph.CSR) func() {
			w := gen.LogWeights(g, seed)
			switch impl {
			case "julienne":
				return func() { sssp.WBFS(w, 0, sssp.Options{}) }
			case "gap-bins":
				return func() { sssp.DeltaSteppingBins(w, 0, 1) }
			default:
				return func() { sssp.BellmanFord(w, 0) }
			}
		})
}

// Figure4 is the ∆-stepping scaling figure (weights in [1, 10^5)).
func (s *Suite) Figure4() {
	seed := s.seed() + 500
	delta := s.delta()
	s.sweepFigure("Figure 4: delta-stepping running time vs. thread count (weights [1,1e5))",
		[]string{"julienne", "gap-bins", "bellman-ford"},
		func(impl string, g *graph.CSR) func() {
			w := gen.HeavyWeights(g, seed)
			switch impl {
			case "julienne":
				return func() { sssp.DeltaStepping(w, 0, delta, sssp.Options{}) }
			case "gap-bins":
				return func() { sssp.DeltaSteppingBins(w, 0, delta) }
			default:
				return func() { sssp.BellmanFord(w, 0) }
			}
		})
}

// Figure5 is the set-cover scaling figure: Julienne vs. the PBBS-style
// implementation.
func (s *Suite) Figure5() {
	s.section("Figure 5: set cover running time vs. thread count (e=0.01)")
	t := harness.NewTable("instance", "impl", "threads", "time", "spread")
	inst := s.coverInstance()
	for impl, f := range map[string]func(){
		"julienne": func() { setcover.Approx(inst.Graph, inst.Sets, setcover.Options{}) },
		"pbbs":     func() { setcover.ApproxPBBS(inst.Graph, inst.Sets, setcover.Options{}) },
	} {
		for _, pt := range harness.ThreadSweep(s.reps(), f) {
			t.AddRow("setcover", impl, pt.Threads, pt.Median, pt.Spread())
		}
	}
	t.Render(s.W)
}
