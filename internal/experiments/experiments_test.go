package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func smallSuite(buf *bytes.Buffer) *Suite {
	return &Suite{W: buf, Scale: Small, Reps: 1, Seed: 7}
}

func TestParseScale(t *testing.T) {
	for in, want := range map[string]Scale{"small": Small, "medium": Medium, "large": Large} {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("bad scale accepted")
	}
}

func TestGraphsInventory(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	gs := s.Graphs()
	if len(gs) != 5 {
		t.Fatalf("inventory size %d", len(gs))
	}
	names := map[string]bool{}
	for _, ng := range gs {
		if ng.G.NumVertices() == 0 || ng.G.NumEdges() == 0 {
			t.Fatalf("%s is empty", ng.Name)
		}
		if !ng.G.Symmetric() {
			t.Fatalf("%s is directed", ng.Name)
		}
		names[ng.Name] = true
	}
	if !names["rmat"] || !names["road"] {
		t.Fatalf("missing expected graphs: %v", names)
	}
	if s.graphForName("rmat") == nil || s.graphForName("nope") != nil {
		t.Fatal("graphForName lookup broken")
	}
}

func TestTable2Renders(t *testing.T) {
	var buf bytes.Buffer
	smallSuite(&buf).Table2()
	out := buf.String()
	for _, want := range []string{"Table 2", "rmat", "road", "rho", "setcover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	var buf bytes.Buffer
	smallSuite(&buf).Table1()
	out := buf.String()
	for _, want := range []string{"k-core", "wBFS", "set cover", "vertices scanned"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestFigure1Renders(t *testing.T) {
	var buf bytes.Buffer
	smallSuite(&buf).Figure1()
	out := buf.String()
	for _, want := range []string{"128 buckets", "1024 buckets", "k-core", "wBFS", "setcover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunDispatch(t *testing.T) {
	var buf bytes.Buffer
	s := smallSuite(&buf)
	if err := s.Run("table2"); err != nil {
		t.Fatal(err)
	}
	if err := s.Run("bogus"); err == nil {
		t.Fatal("bogus experiment accepted")
	}
	for _, id := range IDs() {
		if id == "all" {
			continue
		}
		// Every id must be dispatchable (but running all of them at
		// test time is covered by TestRunAllSmall).
		switch id {
		case "table2":
		default:
		}
	}
}

// TestRunAllSmall smoke-runs the entire suite at the smallest scale —
// this is the end-to-end check that every table and figure can be
// regenerated.
func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var buf bytes.Buffer
	smallSuite(&buf).RunAll()
	out := buf.String()
	for _, want := range []string{
		"Table 2", "Figure 1", "Table 1", "Table 3",
		"Figure 2", "Figure 3", "Figure 4", "Figure 5",
		"Ablation: updateBuckets strategy",
		"Ablation: open-range size",
		"Ablation: GetBucket prev",
		"Ablation: delta-stepping light/heavy",
		"Ablation: CSR vs. Ligra+",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in RunAll output", want)
		}
	}
}

func TestExtensionsRenders(t *testing.T) {
	var buf bytes.Buffer
	smallSuite(&buf).Extensions()
	out := buf.String()
	for _, want := range []string{"densest subgraph", "charikar", "k-core extraction", "weighted set cover"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
}
