package experiments

import (
	"fmt"

	"julienne/internal/algo/bfs"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
)

// deltaForScale mirrors the paper's tuned ∆ = 32768 for heavy weights,
// shrunk proportionally at smaller scales so multiple annuli exist.
func (s *Suite) delta() int64 {
	switch s.Scale {
	case Small:
		return 8192
	case Large:
		return 32768
	default:
		return 32768
	}
}

// Table2 prints the graph inventory: the role of the paper's Table 2
// (n, m and the peeling complexity ρ per undirected input), extended
// with max degree, k_max and a source eccentricity.
func (s *Suite) Table2() {
	s.section("Table 2: graph inputs (synthetic stand-ins)")
	t := harness.NewTable("graph", "role", "n", "m", "rho", "maxdeg", "kmax", "ecc(0)")
	for _, ng := range s.Graphs() {
		res := kcore.Coreness(ng.G, kcore.Options{})
		ecc := bfs.Eccentricity(ng.G, 0)
		t.AddRow(ng.Name, ng.Role, ng.G.NumVertices(), ng.G.NumEdges(),
			res.Rounds, ng.G.MaxDegree(), kcore.MaxCoreness(res.Coreness), ecc)
	}
	inst := s.coverInstance()
	t.AddRow("setcover", "bipartite incidence", inst.Graph.NumVertices(),
		inst.Graph.NumEdges(), "-", inst.Graph.MaxDegree(), "-", "-")
	t.Render(s.W)
}

// Table1 prints the empirical work counters that back Table 1's
// asymptotic claims: the bucketed algorithms touch O(n + m) state
// while the frontier/scan baselines pay an extra multiplicative factor
// (k_max·n for k-core, rounds·m for Bellman-Ford, carried sets for
// PBBS set cover).
func (s *Suite) Table1() {
	s.section("Table 1 (empirical): work counters, bucketed vs baseline")
	t := harness.NewTable("problem", "graph", "metric", "julienne", "baseline", "baseline/julienne")
	ratio := func(a, b int64) string {
		if a == 0 {
			return "-"
		}
		return fmt.Sprintf("%.1fx", float64(b)/float64(a))
	}
	for _, ng := range s.Graphs() {
		eff := kcore.Coreness(ng.G, kcore.Options{})
		ineff := kcore.CorenessLigra(ng.G)
		t.AddRow("k-core", ng.Name, "vertices scanned",
			eff.VerticesScanned, ineff.VerticesScanned,
			ratio(eff.VerticesScanned, ineff.VerticesScanned))

		wg := gen.LogWeights(ng.G, s.seed()+100)
		wbfs := sssp.WBFS(wg, 0, sssp.Options{})
		bf := sssp.BellmanFord(wg, 0)
		t.AddRow("wBFS", ng.Name, "edges traversed",
			wbfs.EdgesTraversed, bf.EdgesTraversed,
			ratio(wbfs.EdgesTraversed, bf.EdgesTraversed))
	}
	inst := s.coverInstance()
	a := setcover.Approx(inst.Graph, inst.Sets, setcover.Options{})
	p := setcover.ApproxPBBS(inst.Graph, inst.Sets, setcover.Options{})
	t.AddRow("set cover", "setcover", "sets inspected",
		a.SetsInspected, p.SetsInspected, ratio(a.SetsInspected, p.SetsInspected))
	t.Render(s.W)
}

// row times a single implementation at 1 thread and at full threads.
type timing struct {
	name   string
	t1, tp harness.Sample
}

func (s *Suite) timeBoth(f func()) (harness.Sample, harness.Sample) {
	pts := harness.ThreadSweep(s.reps(), f)
	t1 := pts[0].Sample
	tp := pts[len(pts)-1].Sample
	return t1, tp
}

// Table3 reproduces the layout of the paper's Table 3: for every
// application, the running time of each implementation single-threaded
// (1), with all hardware threads (P), and the self-relative speedup.
// wBFS rows use weights in [1, log n); ∆-stepping rows use weights in
// [1, 10^5) with the tuned ∆.
func (s *Suite) Table3() {
	s.section("Table 3: running times per application and implementation")
	for _, ng := range s.Graphs() {
		fmt.Fprintf(s.W, "graph %s (n=%d, m=%d)\n", ng.Name, ng.G.NumVertices(), ng.G.NumEdges())
		t := harness.NewTable("application", "impl", "T(1)", "T(P)", "spread(P)", "speedup")

		g := ng.G
		var rows []timing
		add := func(name string, f func()) {
			t1, tp := s.timeBoth(f)
			rows = append(rows, timing{name, t1, tp})
		}
		add("k-core (Julienne)", func() { kcore.Coreness(g, kcore.Options{}) })
		add("k-core (Ligra)", func() { kcore.CorenessLigra(g) })
		add("k-core (BZ, seq)", func() { kcore.CorenessBZ(g) })
		for _, r := range rows {
			t.AddRow("k-core", r.name, r.t1, r.tp, r.tp.Spread(),
				harness.Speedup(r.t1.Median, r.tp.Median))
		}
		rows = rows[:0]

		wlog := gen.LogWeights(g, s.seed()+200)
		add("wBFS (Julienne)", func() { sssp.WBFS(wlog, 0, sssp.Options{}) })
		add("Bellman-Ford (Ligra)", func() { sssp.BellmanFord(wlog, 0) })
		add("wBFS (GAP bins)", func() { sssp.DeltaSteppingBins(wlog, 0, 1) })
		add("wBFS (DIMACS seq)", func() { sssp.DijkstraHeap(wlog, 0) })
		add("wBFS (Dial seq)", func() { sssp.Dial(wlog, 0) })
		for _, r := range rows {
			t.AddRow("wBFS [1,log n)", r.name, r.t1, r.tp, r.tp.Spread(),
				harness.Speedup(r.t1.Median, r.tp.Median))
		}
		rows = rows[:0]

		wheavy := gen.HeavyWeights(g, s.seed()+300)
		delta := s.delta()
		add("d-step (Julienne)", func() { sssp.DeltaStepping(wheavy, 0, delta, sssp.Options{}) })
		add("Bellman-Ford (Ligra)", func() { sssp.BellmanFord(wheavy, 0) })
		add("d-step (GAP bins)", func() { sssp.DeltaSteppingBins(wheavy, 0, delta) })
		add("d-step (DIMACS seq)", func() { sssp.DijkstraHeap(wheavy, 0) })
		for _, r := range rows {
			t.AddRow("d-step [1,1e5)", r.name, r.t1, r.tp, r.tp.Spread(),
				harness.Speedup(r.t1.Median, r.tp.Median))
		}
		t.Render(s.W)
		fmt.Fprintln(s.W)
	}

	inst := s.coverInstance()
	fmt.Fprintf(s.W, "set cover instance (sets=%d, elements=%d, M=%d)\n",
		inst.Sets, inst.Elements, inst.Graph.NumEdges())
	t := harness.NewTable("application", "impl", "T(1)", "T(P)", "spread(P)", "speedup", "|cover|")
	a1, ap := s.timeBoth(func() { setcover.Approx(inst.Graph, inst.Sets, setcover.Options{}) })
	sizeA := setcover.Approx(inst.Graph, inst.Sets, setcover.Options{}).CoverSize
	t.AddRow("set cover (e=0.01)", "Julienne", a1, ap, ap.Spread(),
		harness.Speedup(a1.Median, ap.Median), sizeA)
	p1, pp := s.timeBoth(func() { setcover.ApproxPBBS(inst.Graph, inst.Sets, setcover.Options{}) })
	sizeP := setcover.ApproxPBBS(inst.Graph, inst.Sets, setcover.Options{}).CoverSize
	t.AddRow("set cover (e=0.01)", "PBBS", p1, pp, pp.Spread(),
		harness.Speedup(p1.Median, pp.Median), sizeP)
	g1, gp := s.timeBoth(func() { setcover.Greedy(inst.Graph, inst.Sets) })
	sizeG := setcover.Greedy(inst.Graph, inst.Sets).CoverSize
	t.AddRow("set cover (exact)", "greedy seq", g1, gp, gp.Spread(),
		harness.Speedup(g1.Median, gp.Median), sizeG)
	t.Render(s.W)
}

// graphForName is a test helper mapping inventory names.
func (s *Suite) graphForName(name string) *graph.CSR {
	for _, ng := range s.Graphs() {
		if ng.Name == name {
			return ng.G
		}
	}
	return nil
}
