package experiments

import (
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/harness"
	"julienne/internal/microbench"
	"julienne/internal/rng"
)

// Ablations measures the design choices the paper calls out:
//
//   - §3.3 block-histogram vs. semisort updateBuckets ("we found that
//     it was slow in practice due to the extra data movement")
//   - §3.3 open-range size nB (default 128) and the overflow bucket
//   - §3.3 user-supplied prev (GetBucket) vs. an internal prev map
//     ("about 30% more expensive")
//   - §4.2 light/heavy edge split ("did not find a significant
//     improvement")
//   - §1/Ligra+ compressed vs. plain CSR traversal
func (s *Suite) Ablations() {
	s.ablationUpdateStrategy()
	s.ablationRangeSize()
	s.ablationPrevTracking()
	s.ablationLightHeavy()
	s.ablationCompression()
}

func (s *Suite) microN() int {
	switch s.Scale {
	case Small:
		return 1 << 14
	case Large:
		return 1 << 21
	default:
		return 1 << 18
	}
}

func (s *Suite) ablationUpdateStrategy() {
	s.section("Ablation: updateBuckets strategy (block histogram vs. semisort)")
	t := harness.NewTable("identifiers", "buckets", "histogram", "semisort", "semisort/histogram")
	n := s.microN()
	for _, b := range []int{128, 1024} {
		hist := harness.TimeMedian(s.reps(), func() {
			microbench.Run(microbench.Config{Identifiers: n, Buckets: b, Seed: s.seed()})
		})
		semi := harness.TimeMedian(s.reps(), func() {
			microbench.Run(microbench.Config{Identifiers: n, Buckets: b, Seed: s.seed(),
				Options: bucket.Options{Semisort: true}})
		})
		t.AddRow(n, b, hist, semi, harness.Speedup(semi.Median, hist.Median))
	}
	t.Render(s.W)
}

func (s *Suite) ablationRangeSize() {
	s.section("Ablation: open-range size nB (overflow traffic vs. exactness)")
	t := harness.NewTable("nB", "k-core time", "bucket moves", "range advances")
	g := s.Graphs()[1].G
	for _, nb := range []int{16, 128, 1024, 1 << 20} {
		opt := kcore.Options{Buckets: bucket.Options{OpenBuckets: nb}}
		d := harness.TimeMedian(s.reps(), func() { kcore.Coreness(g, opt) })
		res := kcore.Coreness(g, opt)
		t.AddRow(nb, d, res.BucketStats.Moved, res.BucketStats.RangeAdvances)
	}
	t.Render(s.W)
}

// ablationPrevTracking drives the same microbenchmark-style update
// stream through Par (caller-supplied prev via GetBucket) and Tracked
// (internal prev map) — the §3.3 "about 30% more expensive" claim.
func (s *Suite) ablationPrevTracking() {
	s.section("Ablation: GetBucket prev (user-supplied) vs. internal prev map")
	n := s.microN()
	seed := s.seed()
	par := harness.TimeMedian(s.reps(), func() { drivePar(n, seed) })
	trk := harness.TimeMedian(s.reps(), func() { driveTracked(n, seed) })
	t := harness.NewTable("identifiers", "user-prev (Par)", "internal map (Tracked)", "tracked/par")
	t.AddRow(n, par, trk, harness.Speedup(trk.Median, par.Median))
	t.Render(s.W)
}

// drivePar runs the microbenchmark protocol against Par with
// caller-supplied prev buckets.
func drivePar(n int, seed uint64) {
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(seed, uint64(i), 512))
	}
	b := bucket.New(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing, bucket.Options{})
	var ids []uint32
	var dests []bucket.Dest
	round := uint64(0)
	for {
		cur, extracted := b.NextBucket()
		if cur == bucket.Nil {
			return
		}
		round++
		ids, dests = ids[:0], dests[:0]
		for _, id := range extracted {
			for j := 0; j < 8; j++ {
				v := uint32(rng.UintNAt(seed^0xabc, round<<24|uint64(id)<<3|uint64(j), uint64(n)))
				prev := d[v]
				if prev == bucket.Nil {
					continue
				}
				next := bucket.Nil
				if prev > cur {
					next = max(cur, prev/2)
				}
				d[v] = next
				if dest := b.GetBucket(prev, next); dest != bucket.None {
					ids = append(ids, v)
					dests = append(dests, dest)
				}
			}
		}
		b.UpdateBuckets(len(ids), func(j int) (uint32, bucket.Dest) { return ids[j], dests[j] })
	}
}

// driveTracked runs the identical protocol against Tracked, which
// maintains prev internally (the rejected design).
func driveTracked(n int, seed uint64) {
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(seed, uint64(i), 512))
	}
	b := bucket.NewTracked(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing, bucket.Options{})
	var ids []uint32
	var nexts []bucket.ID
	round := uint64(0)
	for {
		cur, extracted := b.NextBucket()
		if cur == bucket.Nil {
			return
		}
		round++
		ids, nexts = ids[:0], nexts[:0]
		for _, id := range extracted {
			for j := 0; j < 8; j++ {
				v := uint32(rng.UintNAt(seed^0xabc, round<<24|uint64(id)<<3|uint64(j), uint64(n)))
				prev := d[v]
				if prev == bucket.Nil {
					continue
				}
				next := bucket.Nil
				if prev > cur {
					next = max(cur, prev/2)
				}
				d[v] = next
				ids = append(ids, v)
				nexts = append(nexts, next)
			}
		}
		b.UpdateBucketsTo(len(ids), func(j int) (uint32, bucket.ID) { return ids[j], nexts[j] })
	}
}

func (s *Suite) ablationLightHeavy() {
	s.section("Ablation: delta-stepping light/heavy edge split (par. 4.2)")
	t := harness.NewTable("graph", "plain", "light/heavy", "lh/plain")
	delta := s.delta()
	for _, ng := range []NamedGraph{s.Graphs()[1], s.Graphs()[4]} {
		w := gen.HeavyWeights(ng.G, s.seed()+600)
		plain := harness.TimeMedian(s.reps(), func() {
			sssp.DeltaStepping(w, 0, delta, sssp.Options{})
		})
		lh := harness.TimeMedian(s.reps(), func() {
			sssp.DeltaSteppingLH(w, 0, delta, sssp.Options{})
		})
		t.AddRow(ng.Name, plain, lh, harness.Speedup(lh.Median, plain.Median))
	}
	t.Render(s.W)
}

func (s *Suite) ablationCompression() {
	s.section("Ablation: CSR vs. Ligra+-style compressed traversal")
	t := harness.NewTable("graph", "csr bytes", "compressed bytes", "ratio",
		"k-core csr", "k-core compressed")
	for _, ng := range []NamedGraph{s.Graphs()[1], s.Graphs()[4]} {
		c := compress.FromCSR(ng.G)
		rawBytes := ng.G.NumEdges() * 4
		csrT := harness.TimeMedian(s.reps(), func() { kcore.Coreness(ng.G, kcore.Options{}) })
		cmpT := harness.TimeMedian(s.reps(), func() { kcore.Coreness(c, kcore.Options{}) })
		t.AddRow(ng.Name, rawBytes, c.SizeBytes(),
			float64(c.SizeBytes())/float64(rawBytes), csrT, cmpT)
	}
	t.Render(s.W)
}
