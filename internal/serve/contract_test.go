package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"julienne/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubmitQueueFullLeavesManagerBalanced pins the ErrQueueFull early
// return audited by julvet/semabalance: a rejected submission must not
// be remembered, must not consume queue capacity, and must leave the
// pool able to accept work once the queue drains.
func TestSubmitQueueFullLeavesManagerBalanced(t *testing.T) {
	m := newJobManager(1, 1, 10, obs.NewRecorder())
	defer m.shutdown()

	started := make(chan struct{})
	release := make(chan struct{})
	busy, err := m.submit("busy", func(ctx context.Context) (any, error) {
		close(started)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return "busy-done", nil
	})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	<-started // the single worker is now occupied

	queued, err := m.submit("queued", func(ctx context.Context) (any, error) {
		return "queued-done", nil
	})
	if err != nil {
		t.Fatalf("second submit (fills the queue): %v", err)
	}

	rejected, err := m.submit("overflow", func(ctx context.Context) (any, error) {
		t.Error("rejected job must never run")
		return nil, nil
	})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}
	if rejected != nil {
		t.Fatalf("overflow submit returned a job: %+v", rejected)
	}

	// The early return must not have indexed a phantom job.
	m.mu.Lock()
	kept := len(m.jobs)
	m.mu.Unlock()
	if kept != 2 {
		t.Fatalf("job index holds %d entries after a rejected submit, want 2", kept)
	}

	// Drain: the queued job runs once the worker frees up, and the
	// manager accepts new work again — the rejection leaked nothing.
	close(release)
	for _, j := range []*job{busy, queued} {
		waitFor(t, j.kind+" to finish", func() bool {
			info, ok := m.lookup(j.id)
			return ok && info.Status == jobDone
		})
	}
	var after *job
	waitFor(t, "a post-drain submit to be accepted", func() bool {
		j, err := m.submit("after", func(ctx context.Context) (any, error) {
			return "after-done", nil
		})
		if err != nil {
			return false
		}
		after = j
		return true
	})
	waitFor(t, "the post-drain job to finish", func() bool {
		info, ok := m.lookup(after.id)
		return ok && info.Status == jobDone
	})

	m.shutdown()
	if _, err := m.submit("late", nil); !errors.Is(err, ErrClosing) {
		t.Fatalf("submit after shutdown: err = %v, want ErrClosing", err)
	}
}

// TestCoalescerFollowerCancelDoesNotPoisonFlight pins the follower
// cancellation path audited by julvet/ctxguard: a follower whose
// context expires while waiting gets ctx.Err(), while the leader's
// computation still completes, caches, and leaves no inflight entry.
func TestCoalescerFollowerCancelDoesNotPoisonFlight(t *testing.T) {
	c := newCoalescer(4, obs.NewRecorder())
	key := ssspKey{src: 7, delta: 16}

	computing := make(chan struct{})
	release := make(chan struct{})
	type leaderResult struct {
		val       *ssspVal
		cached    bool
		coalesced bool
		err       error
	}
	leaderDone := make(chan leaderResult, 1)
	go func() {
		val, cached, coalesced, err := c.do(context.Background(), key, func() *ssspVal {
			close(computing)
			<-release
			return &ssspVal{dist: []int64{42}, rounds: 3}
		})
		leaderDone <- leaderResult{val, cached, coalesced, err}
	}()
	<-computing

	// Follower with an already-expired context: it must observe
	// ctx.Err() promptly instead of blocking on the leader.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	val, cached, coalesced, err := c.do(ctx, key, func() *ssspVal {
		t.Error("follower must coalesce, not compute")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled follower: err = %v, want context.Canceled", err)
	}
	if val != nil || cached || !coalesced {
		t.Fatalf("canceled follower: val=%v cached=%v coalesced=%v, want nil/false/true", val, cached, coalesced)
	}

	// The leader is unaffected by the follower's departure.
	close(release)
	lr := <-leaderDone
	if lr.err != nil || lr.cached || lr.coalesced {
		t.Fatalf("leader: err=%v cached=%v coalesced=%v, want nil/false/false", lr.err, lr.cached, lr.coalesced)
	}
	if lr.val == nil || lr.val.dist[0] != 42 {
		t.Fatalf("leader value = %+v, want dist[0]=42", lr.val)
	}

	// The completed flight was cached and removed from inflight, so a
	// late caller hits the cache without recomputing.
	val, cached, coalesced, err = c.do(context.Background(), key, func() *ssspVal {
		t.Error("cached key must not recompute")
		return nil
	})
	if err != nil || !cached || coalesced {
		t.Fatalf("post-flight lookup: err=%v cached=%v coalesced=%v, want nil/true/false", err, cached, coalesced)
	}
	if val != lr.val {
		t.Fatalf("cache returned a different value (%p) than the leader produced (%p)", val, lr.val)
	}
	c.mu.Lock()
	inflight := len(c.inflight)
	c.mu.Unlock()
	if inflight != 0 {
		t.Fatalf("%d inflight entries remain after the flight completed, want 0", inflight)
	}
}
