// Package serve is the graph analytics service (DESIGN.md §12): it
// loads one immutable graph and serves concurrent point queries (SSSP,
// wBFS, coreness lookups) and async analytics jobs (set cover, densest
// subgraph) over JSON/HTTP, using only the standard library.
//
// The serving concerns layer onto the existing kernels without
// touching them:
//
//   - snapshot isolation: the graph is shared read-only between all
//     queries (the concurrent-callers race test in api_race_test.go
//     pins that this is safe); the one mutating algorithm, set cover,
//     clones the graph internally (setcover.Approx).
//   - deadline propagation: each query's timeout becomes a context
//     deadline handed to the kernels' Options.Ctx, so an expired query
//     stops at the next bucket round and reports typed partial
//     progress (*obs.Canceled → HTTP 504).
//   - request coalescing: concurrent identical SSSP queries share one
//     computation (coalesce.go), and recent results live in an LRU.
//   - admission control: a bounded slot + queue gate in front of the
//     handlers (admission.go) converts overload into immediate typed
//     backpressure (429 queue full, 503 draining) instead of latency.
//   - observability: per-endpoint latency histograms and serve.*
//     counters on the shared obs.Recorder, exposed on the same
//     obs.ServeMux debug surface the CLIs use (/metrics, /debug/obs).
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/obs"
)

// Config configures a Server. The zero value of every field gets a
// sensible default from New.
type Config struct {
	// Graph is the (immutable, shared) graph every query runs against.
	Graph *graph.CSR
	// Recorder receives serve.* metrics and per-endpoint latency
	// histograms; nil disables telemetry.
	Recorder *obs.Recorder
	// MaxInFlight bounds concurrently-executing queries
	// (default: GOMAXPROCS).
	MaxInFlight int
	// MaxQueued bounds queries waiting for a slot; beyond it requests
	// fail fast with 429 (default: 4×MaxInFlight).
	MaxQueued int
	// CacheSize bounds the SSSP result LRU (default 64 entries).
	CacheSize int
	// JobWorkers is the async-job worker pool size (default 1).
	JobWorkers int
	// JobQueue bounds queued jobs; beyond it submission 429s
	// (default 8).
	JobQueue int
	// DefaultTimeout applies to queries without an explicit
	// ?timeout_ms (default 10s); MaxTimeout clamps explicit ones
	// (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultDelta is the ∆ for /sssp without ?delta (default 32768).
	DefaultDelta int64
}

// Server serves analytics queries against one shared graph. Create
// with New, mount Handler, stop with Close.
type Server struct {
	cfg Config
	g   *graph.CSR
	rec *obs.Recorder

	adm  *admission
	coal *coalescer
	jobs *jobManager
	mux  *http.ServeMux

	// Lazily-computed coreness cache (single-flight; a canceled
	// compute does not poison the cache — the next request retries).
	coreMu     sync.Mutex
	coreness   []uint32
	coreErr    error
	coreFlight chan struct{}

	// In-flight query tracking for graceful drain: Close cancels
	// these contexts when its drain budget expires, and the kernels
	// observe the cancellation at their next round.
	qMu      sync.Mutex
	qCancels map[int64]context.CancelFunc
	qSeq     int64
	wg       sync.WaitGroup

	closeOnce sync.Once
}

// New builds a Server over cfg.Graph, applying defaults.
func New(cfg Config) *Server {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueued <= 0 {
		cfg.MaxQueued = 4 * cfg.MaxInFlight
	}
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 64
	}
	if cfg.JobWorkers <= 0 {
		cfg.JobWorkers = 1
	}
	if cfg.JobQueue <= 0 {
		cfg.JobQueue = 8
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 10 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 60 * time.Second
	}
	if cfg.DefaultDelta <= 0 {
		cfg.DefaultDelta = 32768
	}
	s := &Server{
		cfg:      cfg,
		g:        cfg.Graph,
		rec:      cfg.Recorder,
		adm:      newAdmission(cfg.MaxInFlight, cfg.MaxQueued, cfg.Recorder),
		coal:     newCoalescer(cfg.CacheSize, cfg.Recorder),
		jobs:     newJobManager(cfg.JobWorkers, cfg.JobQueue, 64, cfg.Recorder),
		qCancels: make(map[int64]context.CancelFunc),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /sssp", func(w http.ResponseWriter, r *http.Request) {
		s.handleDistance(w, r, false)
	})
	s.mux.HandleFunc("GET /wbfs", func(w http.ResponseWriter, r *http.Request) {
		s.handleDistance(w, r, true)
	})
	s.mux.HandleFunc("GET /coreness", s.handleCoreness)
	s.mux.HandleFunc("POST /jobs/{kind}", s.handleJobSubmit)
	s.mux.HandleFunc("GET /jobs/{id}", s.handleJobStatus)
	debug := obs.ServeMux(s.rec)
	s.mux.Handle("/metrics", debug)
	s.mux.Handle("/debug/", debug)
	s.mux.HandleFunc("/{$}", s.handleIndex)
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: new queries are rejected with 503
// immediately; in-flight queries run to completion until ctx expires,
// at which point their contexts are canceled and they finish at the
// next kernel round with typed partial results. Jobs are stopped the
// same way. Close never abandons a query — it always waits for the
// handlers to return. Idempotent.
func (s *Server) Close(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.adm.close()
		done := make(chan struct{})
		go func() {
			s.wg.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			s.qMu.Lock()
			for _, cancel := range s.qCancels {
				cancel()
			}
			s.qMu.Unlock()
			<-done
		}
		s.jobs.shutdown()
	})
	return nil
}

// beginQuery derives the query context (request context + per-query
// timeout) and registers it for drain cancellation. The returned end
// function must be deferred.
func (s *Server) beginQuery(r *http.Request, timeout time.Duration) (context.Context, func()) {
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	s.wg.Add(1)
	s.qMu.Lock()
	s.qSeq++
	id := s.qSeq
	s.qCancels[id] = cancel
	s.qMu.Unlock()
	return ctx, func() {
		s.qMu.Lock()
		delete(s.qCancels, id)
		s.qMu.Unlock()
		cancel()
		s.wg.Done()
	}
}

// queryTimeout resolves the per-request timeout from ?timeout_ms,
// applying the default and the clamp.
func (s *Server) queryTimeout(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("timeout_ms")
	if raw == "" {
		return s.cfg.DefaultTimeout, nil
	}
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms <= 0 {
		return 0, fmt.Errorf("bad timeout_ms %q", raw)
	}
	d := time.Duration(ms) * time.Millisecond
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return d, nil
}

// admit passes the request through the admission gate, writing the
// backpressure response itself on rejection. On success the caller
// must call the returned release.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter) (func(), bool) {
	if err := s.adm.acquire(ctx); err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.rec.Inc(obs.CtrServeRejectedQueue)
			w.Header().Set("Retry-After", "1")
			s.failJSON(w, http.StatusTooManyRequests, "queue_full", err.Error())
		case errors.Is(err, ErrClosing):
			s.rec.Inc(obs.CtrServeRejectedClose)
			w.Header().Set("Retry-After", "5")
			s.failJSON(w, http.StatusServiceUnavailable, "closing", err.Error())
		default: // the query deadline expired while queued
			s.rec.Inc(obs.CtrServeCanceled)
			s.failJSON(w, http.StatusGatewayTimeout, "deadline", err.Error())
		}
		return nil, false
	}
	s.rec.Inc(obs.CtrServeRequests)
	s.rec.SetGauge(obs.GaugeServeInflight, int64(s.adm.inFlight()))
	return func() {
		s.adm.release()
		s.rec.SetGauge(obs.GaugeServeInflight, int64(s.adm.inFlight()))
	}, true
}

// distanceResponse is the JSON shape of /sssp and /wbfs.
type distanceResponse struct {
	Algo        string  `json:"algo"`
	Src         uint32  `json:"src"`
	Delta       int64   `json:"delta,omitempty"`
	Rounds      int64   `json:"rounds"`
	Relaxations int64   `json:"relaxations"`
	Reached     int     `json:"reached"`
	MaxDist     int64   `json:"max_dist"`
	Cached      bool    `json:"cached"`
	Coalesced   bool    `json:"coalesced"`
	Target      *uint32 `json:"target,omitempty"`
	TargetDist  *int64  `json:"target_dist,omitempty"`
	Dist        []int64 `json:"dist,omitempty"`
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request, wbfs bool) {
	if !s.g.Weighted() {
		s.failJSON(w, http.StatusBadRequest, "unweighted",
			"graph is unweighted; served applies a weighting at startup for SSSP endpoints")
		return
	}
	q := r.URL.Query()
	src, err := s.vertexParam(q.Get("src"), true)
	if err != nil {
		s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	delta := s.cfg.DefaultDelta
	if wbfs {
		delta = 1
	} else if raw := q.Get("delta"); raw != "" {
		delta, err = strconv.ParseInt(raw, 10, 64)
		if err != nil || delta <= 0 {
			s.failJSON(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad delta %q", raw))
			return
		}
	}
	fusion := q.Get("fusion") == "1" || q.Get("fusion") == "true"
	var target *uint32
	if raw := q.Get("target"); raw != "" {
		t, err := s.vertexParam(raw, true)
		if err != nil {
			s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		tv := uint32(t)
		target = &tv
	}
	timeout, err := s.queryTimeout(r)
	if err != nil {
		s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}

	ctx, end := s.beginQuery(r, timeout)
	defer end()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	histName := obs.HistServeSSSPNs
	if wbfs {
		histName = obs.HistServeWBFSNs
	}
	start := s.rec.Clock()
	defer s.rec.ObserveSince(histName, start)

	key := ssspKey{src: src, delta: delta, wbfs: wbfs, fusion: fusion}
	var val *ssspVal
	var cached, coalesced bool
	// A coalesced follower can receive a result canceled by the
	// *leader's* shorter deadline; if our own deadline still has
	// budget, retry once as the new leader.
	for attempt := 0; attempt < 2; attempt++ {
		var waitErr error
		val, cached, coalesced, waitErr = s.coal.do(ctx, key, func() *ssspVal {
			opt := sssp.Options{Recorder: s.rec, Ctx: ctx}
			if fusion {
				opt.Fusion = bucket.MaximalFusion()
			}
			res := sssp.DeltaStepping(s.g, src, delta, opt)
			return newSSSPVal(res)
		})
		if waitErr != nil {
			s.rec.Inc(obs.CtrServeCanceled)
			s.failJSON(w, http.StatusGatewayTimeout, "deadline", waitErr.Error())
			return
		}
		if coalesced && val.err != nil && errors.Is(val.err, obs.ErrCanceled) && ctx.Err() == nil {
			continue
		}
		break
	}
	if val.err != nil {
		s.writeCanceled(w, val.err, val.rounds)
		return
	}
	resp := distanceResponse{
		Algo: "delta-stepping", Src: uint32(src), Delta: delta,
		Rounds: val.rounds, Relaxations: val.relaxations,
		Cached: cached, Coalesced: coalesced,
	}
	if wbfs {
		resp.Algo, resp.Delta = "wbfs", 0
	}
	for _, d := range val.dist {
		if d != sssp.Unreachable {
			resp.Reached++
			if d > resp.MaxDist {
				resp.MaxDist = d
			}
		}
	}
	if target != nil {
		td := val.dist[*target]
		resp.Target, resp.TargetDist = target, &td
	}
	if q.Get("full") == "1" {
		resp.Dist = val.dist
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func newSSSPVal(res sssp.Result) *ssspVal {
	return &ssspVal{dist: res.Dist, rounds: res.Rounds, relaxations: res.Relaxations, err: res.Err}
}

func (s *Server) handleCoreness(w http.ResponseWriter, r *http.Request) {
	if !s.g.Symmetric() {
		s.failJSON(w, http.StatusBadRequest, "directed",
			"coreness requires an undirected graph (load with -symmetric)")
		return
	}
	v, err := s.vertexParam(r.URL.Query().Get("v"), true)
	if err != nil {
		s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	timeout, err := s.queryTimeout(r)
	if err != nil {
		s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	ctx, end := s.beginQuery(r, timeout)
	defer end()
	release, ok := s.admit(ctx, w)
	if !ok {
		return
	}
	defer release()
	start := s.rec.Clock()
	defer s.rec.ObserveSince(obs.HistServeCorenessNs, start)

	coreness, err := s.corenessValues(ctx)
	if err != nil {
		s.writeCanceled(w, err, 0)
		return
	}
	s.writeJSON(w, http.StatusOK, map[string]any{
		"v":        uint32(v),
		"coreness": coreness[v],
	})
}

// corenessValues returns the coreness array, computing it on first
// use. Concurrent first requests single-flight the computation; a
// canceled computation is reported to its requesters but not cached,
// so the next request retries.
func (s *Server) corenessValues(ctx context.Context) ([]uint32, error) {
	for {
		s.coreMu.Lock()
		if s.coreness != nil {
			v := s.coreness
			s.coreMu.Unlock()
			return v, nil
		}
		if s.coreFlight == nil {
			fl := make(chan struct{})
			s.coreFlight = fl
			s.coreMu.Unlock()
			res := kcore.Coreness(s.g, kcore.Options{Recorder: s.rec, Ctx: ctx})
			s.coreMu.Lock()
			if res.Err == nil {
				s.coreness = res.Coreness
			}
			s.coreErr = res.Err
			s.coreFlight = nil
			s.coreMu.Unlock()
			close(fl)
			if res.Err != nil {
				return nil, res.Err
			}
			return res.Coreness, nil
		}
		fl := s.coreFlight
		s.coreMu.Unlock()
		select {
		case <-fl:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		s.coreMu.Lock()
		done, err := s.coreness, s.coreErr
		s.coreMu.Unlock()
		if done != nil {
			return done, nil
		}
		if err != nil {
			return nil, err
		}
		// Another leader is already retrying; loop and wait on it.
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	kind := r.PathValue("kind")
	q := r.URL.Query()
	var fn func(ctx context.Context) (any, error)
	switch kind {
	case "setcover":
		numSets := s.g.NumVertices() / 2
		if raw := q.Get("sets"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n <= 0 || n > s.g.NumVertices() {
				s.failJSON(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("bad sets %q", raw))
				return
			}
			numSets = n
		}
		eps, err := floatParam(q.Get("eps"), 0.01)
		if err != nil {
			s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		fn = func(ctx context.Context) (any, error) {
			// setcover consumes its input; Approx clones the shared
			// graph internally, so queries keep snapshot isolation.
			res := setcover.Approx(s.g, numSets, setcover.Options{
				Epsilon: eps, Recorder: s.rec, Ctx: ctx,
			})
			if res.Err != nil {
				return nil, res.Err
			}
			return map[string]any{
				"cover_size": res.CoverSize,
				"rounds":     res.Rounds,
				"sets":       numSets,
			}, nil
		}
	case "densest":
		if !s.g.Symmetric() {
			s.failJSON(w, http.StatusBadRequest, "directed",
				"densest subgraph requires an undirected graph")
			return
		}
		eps, err := floatParam(q.Get("eps"), 0)
		if err != nil {
			s.failJSON(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		fn = func(ctx context.Context) (any, error) {
			opt := densest.Options{Recorder: s.rec, Ctx: ctx}
			var res densest.Result
			if eps > 0 {
				res = densest.PeelBatchWithOptions(s.g, eps, opt)
			} else {
				res = densest.CharikarWithOptions(s.g, opt)
			}
			if res.Err != nil {
				return nil, res.Err
			}
			return map[string]any{
				"density": res.Density,
				"size":    len(res.Vertices),
				"rounds":  res.Rounds,
			}, nil
		}
	default:
		s.failJSON(w, http.StatusNotFound, "unknown_job",
			fmt.Sprintf("unknown job kind %q (want setcover or densest)", kind))
		return
	}
	j, err := s.jobs.submit(kind, fn)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.rec.Inc(obs.CtrServeRejectedQueue)
		s.failJSON(w, http.StatusTooManyRequests, "queue_full", err.Error())
		return
	case errors.Is(err, ErrClosing):
		w.Header().Set("Retry-After", "5")
		s.rec.Inc(obs.CtrServeRejectedClose)
		s.failJSON(w, http.StatusServiceUnavailable, "closing", err.Error())
		return
	case err != nil:
		s.failJSON(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	s.writeJSON(w, http.StatusAccepted, j.info())
}

func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	info, ok := s.jobs.lookup(r.PathValue("id"))
	if !ok {
		s.failJSON(w, http.StatusNotFound, "unknown_job", "no such job")
		return
	}
	s.writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	select {
	case <-s.adm.closed:
		s.failJSON(w, http.StatusServiceUnavailable, "closing", ErrClosing.Error())
	default:
		s.writeJSON(w, http.StatusOK, map[string]any{
			"status":   "ok",
			"vertices": s.g.NumVertices(),
			"edges":    s.g.NumEdges(),
			"weighted": s.g.Weighted(),
			"inflight": s.adm.inFlight(),
		})
	}
}

func (s *Server) handleIndex(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, `julienne graph analytics service
  GET  /healthz
  GET  /sssp?src=N[&delta=D][&fusion=1][&target=M][&full=1][&timeout_ms=T]
  GET  /wbfs?src=N[&fusion=1][&target=M][&full=1][&timeout_ms=T]
  GET  /coreness?v=N[&timeout_ms=T]
  POST /jobs/setcover[?sets=N&eps=E]
  POST /jobs/densest[?eps=E]
  GET  /jobs/{id}
  GET  /metrics | /debug/obs | /debug/pprof/
`)
}

// writeCanceled maps a kernel cancellation to 504 with the typed
// partial-progress stats (*obs.Canceled carries algo, rounds, cause);
// anything else is a 500.
func (s *Server) writeCanceled(w http.ResponseWriter, err error, rounds int64) {
	var c *obs.Canceled
	if errors.As(err, &c) {
		s.rec.Inc(obs.CtrServeCanceled)
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error":  "canceled",
			"algo":   c.Algo,
			"rounds": c.Rounds,
			"cause":  fmt.Sprint(c.Cause),
		})
		return
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		s.rec.Inc(obs.CtrServeCanceled)
		s.writeJSON(w, http.StatusGatewayTimeout, map[string]any{
			"error": "canceled", "rounds": rounds, "cause": err.Error(),
		})
		return
	}
	s.failJSON(w, http.StatusInternalServerError, "internal", err.Error())
}

// vertexParam parses a vertex id, validating the range.
func (s *Server) vertexParam(raw string, required bool) (graph.Vertex, error) {
	if raw == "" {
		if required {
			return 0, errors.New("missing vertex parameter")
		}
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 32)
	if err != nil {
		return 0, fmt.Errorf("bad vertex %q", raw)
	}
	if int(v) >= s.g.NumVertices() {
		return 0, fmt.Errorf("vertex %d out of range [0,%d)", v, s.g.NumVertices())
	}
	return graph.Vertex(v), nil
}

func floatParam(raw string, def float64) (float64, error) {
	if raw == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(raw, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("bad float %q", raw)
	}
	return f, nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// failJSON writes the typed error body every non-200 response uses.
func (s *Server) failJSON(w http.ResponseWriter, status int, code, detail string) {
	s.writeJSON(w, status, map[string]string{"error": code, "detail": detail})
}
