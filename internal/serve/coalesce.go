package serve

import (
	"container/list"
	"context"
	"sync"

	"julienne/internal/graph"
	"julienne/internal/obs"
)

// ssspKey identifies one distance computation: identical concurrent
// requests coalesce onto a single run, and completed runs are cached.
// Fusion participates in the key because fused and unfused runs report
// different round counts (the distances agree).
type ssspKey struct {
	src    graph.Vertex
	delta  int64
	wbfs   bool
	fusion bool
}

// ssspVal is one computed (or failed) distance vector. Dist is shared
// read-only between the leader, every coalesced follower, and the
// cache — handlers must never mutate it.
type ssspVal struct {
	dist        []int64
	rounds      int64
	relaxations int64
	err         error
}

// ssspFlight is one in-progress computation followers wait on.
type ssspFlight struct {
	done chan struct{}
	val  *ssspVal
}

// coalescer deduplicates concurrent identical SSSP queries
// (singleflight) and keeps an LRU of recent successful results, so a
// hot source costs one computation no matter how many clients ask.
type coalescer struct {
	mu       sync.Mutex
	inflight map[ssspKey]*ssspFlight
	lru      *lruCache
	rec      *obs.Recorder
}

func newCoalescer(cacheSize int, rec *obs.Recorder) *coalescer {
	return &coalescer{
		inflight: make(map[ssspKey]*ssspFlight),
		lru:      newLRU(cacheSize),
		rec:      rec,
	}
}

// do returns the result for key, computing it at most once across
// concurrent callers. The bool results report whether the value came
// from the cache and whether this caller coalesced onto another
// caller's run. A non-nil error is returned only when ctx expired
// while waiting for another caller's computation; errors from the
// computation itself travel inside ssspVal.err so every waiter sees
// them.
func (c *coalescer) do(ctx context.Context, key ssspKey,
	compute func() *ssspVal) (val *ssspVal, cached, coalesced bool, err error) {
	c.mu.Lock()
	if v, ok := c.lru.get(key); ok {
		c.mu.Unlock()
		c.rec.Inc(obs.CtrServeCacheHits)
		return v, true, false, nil
	}
	c.rec.Inc(obs.CtrServeCacheMisses)
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		c.rec.Inc(obs.CtrServeCoalesced)
		select {
		case <-f.done:
			return f.val, false, true, nil
		case <-ctx.Done():
			return nil, false, true, ctx.Err()
		}
	}
	f := &ssspFlight{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	f.val = compute()
	c.mu.Lock()
	delete(c.inflight, key)
	if f.val.err == nil {
		c.lru.put(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	return f.val, false, false, nil
}

// lruCache is a size-bounded map with least-recently-used eviction
// (stdlib container/list; no dependencies). Callers synchronize.
type lruCache struct {
	cap   int
	order *list.List // front = most recently used; values are *lruEntry
	items map[ssspKey]*list.Element
}

type lruEntry struct {
	key ssspKey
	val *ssspVal
}

func newLRU(capacity int) *lruCache {
	return &lruCache{cap: capacity, order: list.New(), items: make(map[ssspKey]*list.Element)}
}

func (l *lruCache) get(key ssspKey) (*ssspVal, bool) {
	el, ok := l.items[key]
	if !ok {
		return nil, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (l *lruCache) put(key ssspKey, val *ssspVal) {
	if l.cap <= 0 {
		return
	}
	if el, ok := l.items[key]; ok {
		el.Value.(*lruEntry).val = val
		l.order.MoveToFront(el)
		return
	}
	l.items[key] = l.order.PushFront(&lruEntry{key: key, val: val})
	if l.order.Len() > l.cap {
		oldest := l.order.Back()
		l.order.Remove(oldest)
		delete(l.items, oldest.Value.(*lruEntry).key)
	}
}
