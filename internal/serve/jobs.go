package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"julienne/internal/obs"
)

// Job states, as reported by GET /jobs/{id}.
const (
	jobPending  = "pending"
	jobRunning  = "running"
	jobDone     = "done"
	jobFailed   = "failed"
	jobCanceled = "canceled"
)

// jobInfo is the JSON shape of one job's status.
type jobInfo struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Status     string `json:"status"`
	DurationNs int64  `json:"duration_ns,omitempty"`
	Error      string `json:"error,omitempty"`
	Result     any    `json:"result,omitempty"`
}

type job struct {
	id   string
	kind string
	fn   func(ctx context.Context) (any, error)

	mu     sync.Mutex
	status string
	result any
	err    error
	durNs  int64
}

func (j *job) info() jobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := jobInfo{ID: j.id, Kind: j.kind, Status: j.status, DurationNs: j.durNs}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	if j.status == jobDone {
		info.Result = j.result
	}
	return info
}

// jobManager runs the long analytics queries (set cover, densest
// subgraph) asynchronously: submission returns a job id immediately,
// a small fixed worker pool executes jobs off the HTTP path, and
// clients poll GET /jobs/{id}. The submission queue is bounded —
// overflow is backpressure (429), exactly like the query path.
type jobManager struct {
	rec    *obs.Recorder
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // insertion order, for bounded retention
	seq     int64
	maxKept int
}

func newJobManager(workers, queueDepth, maxKept int, rec *obs.Recorder) *jobManager {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	if maxKept < queueDepth+workers {
		maxKept = queueDepth + workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &jobManager{
		rec:     rec,
		ctx:     ctx,
		cancel:  cancel,
		queue:   make(chan *job, queueDepth),
		jobs:    make(map[string]*job),
		maxKept: maxKept,
	}
	for i := 0; i < workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

func (m *jobManager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.ctx.Done():
			return
		case j := <-m.queue:
			m.run(j)
		}
	}
}

func (m *jobManager) run(j *job) {
	j.mu.Lock()
	j.status = jobRunning
	j.mu.Unlock()
	start := m.rec.Clock()
	result, err := j.fn(m.ctx)
	m.rec.ObserveSince(obs.HistServeJobNs, start)
	m.rec.Inc(obs.CtrServeJobsDone)
	j.mu.Lock()
	if !start.IsZero() {
		j.durNs = m.rec.Clock().Sub(start).Nanoseconds()
	}
	j.result, j.err = result, err
	switch {
	case err == nil:
		j.status = jobDone
	case errors.Is(err, obs.ErrCanceled), errors.Is(err, context.Canceled):
		j.status = jobCanceled
	default:
		j.status = jobFailed
	}
	j.mu.Unlock()
}

// submit enqueues a job, returning ErrClosing after shutdown started
// and ErrQueueFull when the queue is at capacity.
func (m *jobManager) submit(kind string, fn func(ctx context.Context) (any, error)) (*job, error) {
	select {
	case <-m.ctx.Done():
		return nil, ErrClosing
	default:
	}
	m.mu.Lock()
	m.seq++
	j := &job{id: fmt.Sprintf("job-%d", m.seq), kind: kind, fn: fn, status: jobPending}
	m.mu.Unlock()
	select {
	case m.queue <- j:
	default:
		return nil, ErrQueueFull
	}
	m.remember(j)
	m.rec.Inc(obs.CtrServeJobsSubmitted)
	return j, nil
}

// remember indexes the job for status polling, evicting the oldest
// finished jobs beyond the retention bound.
func (m *jobManager) remember(j *job) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	for len(m.order) > m.maxKept {
		old := m.jobs[m.order[0]]
		old.mu.Lock()
		finished := old.status == jobDone || old.status == jobFailed || old.status == jobCanceled
		old.mu.Unlock()
		if !finished {
			break // never evict live jobs; retention is over-provisioned
		}
		delete(m.jobs, m.order[0])
		m.order = m.order[1:]
	}
}

// lookup returns the job's current status snapshot.
func (m *jobManager) lookup(id string) (jobInfo, bool) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	m.mu.Unlock()
	if !ok {
		return jobInfo{}, false
	}
	return j.info(), true
}

// shutdown cancels the worker context (running jobs observe it per
// round and stop), waits for the workers, and marks never-started
// jobs canceled.
func (m *jobManager) shutdown() {
	m.cancel()
	m.wg.Wait()
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		j.mu.Lock()
		if j.status == jobPending {
			j.status = jobCanceled
			j.err = ErrClosing
		}
		j.mu.Unlock()
	}
}
