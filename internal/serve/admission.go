package serve

import (
	"context"
	"errors"
	"sync/atomic"

	"julienne/internal/obs"
)

// Typed admission verdicts. The HTTP layer maps ErrQueueFull to 429
// and ErrClosing to 503; both carry Retry-After so well-behaved
// clients back off instead of hammering a saturated server.
var (
	// ErrQueueFull reports that the bounded admission queue is at
	// capacity: the server is saturated and taking on the request
	// would only grow latency for everyone already queued.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrClosing reports that the server is draining for shutdown and
	// accepts no new queries.
	ErrClosing = errors.New("serve: server closing")
)

// admission is the bounded-concurrency gate in front of the query
// handlers: at most maxInFlight queries execute at once, at most
// maxQueued more wait for a slot, and everything beyond that is
// rejected immediately with ErrQueueFull. Rejecting at the door keeps
// the tail latency of admitted queries bounded — an unbounded queue
// converts overload into unbounded latency instead of fast feedback.
type admission struct {
	tokens  chan struct{} // semaphore: buffered to maxInFlight
	waiters atomic.Int64  // requests currently waiting for a token
	maxWait int64
	closed  chan struct{} // closed when the server starts draining
	rec     *obs.Recorder
}

func newAdmission(maxInFlight, maxQueued int, rec *obs.Recorder) *admission {
	if maxInFlight < 1 {
		maxInFlight = 1
	}
	if maxQueued < 0 {
		maxQueued = 0
	}
	return &admission{
		tokens:  make(chan struct{}, maxInFlight),
		maxWait: int64(maxQueued),
		closed:  make(chan struct{}),
		rec:     rec,
	}
}

// acquire blocks until a slot is free, the context is done, or the
// server starts draining. It returns nil on success (the caller must
// release), ErrQueueFull when the wait queue is at capacity,
// ErrClosing when draining, or the context's error.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case <-a.closed:
		return ErrClosing
	default:
	}
	select {
	case a.tokens <- struct{}{}:
		return nil
	default:
	}
	if a.waiters.Add(1) > a.maxWait {
		a.waiters.Add(-1)
		return ErrQueueFull
	}
	defer a.waiters.Add(-1)
	start := a.rec.Clock()
	select {
	case a.tokens <- struct{}{}:
		a.rec.ObserveSince(obs.HistServeQueueWaitNs, start)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	case <-a.closed:
		return ErrClosing
	}
}

// release returns the caller's slot.
func (a *admission) release() { <-a.tokens }

// close moves the gate into the draining state: every current and
// future acquire fails with ErrClosing. In-flight holders keep their
// slots until they release. Idempotent.
func (a *admission) close() {
	select {
	case <-a.closed:
	default:
		close(a.closed)
	}
}

// inFlight reports how many slots are currently held.
func (a *admission) inFlight() int { return len(a.tokens) }
