package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"julienne/internal/algo/kcore"
	"julienne/internal/algo/sssp"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
	"julienne/internal/obs"
)

// testGraph is a small weighted undirected grid every test shares.
func testGraph() *graph.CSR {
	return gen.UniformWeights(gen.Grid2D(24, 24), 1, 8, 7)
}

// slowGraph is big enough that one SSSP takes many bucket rounds —
// the deadline, backpressure, and drain tests need queries that are
// reliably in flight when the test acts.
func slowGraph() *graph.CSR {
	return gen.UniformWeights(gen.Grid2D(192, 192), 1, 8, 7)
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Graph == nil {
		cfg.Graph = testGraph()
	}
	if cfg.Recorder == nil {
		cfg.Recorder = obs.NewRecorder()
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Close(ctx)
	})
	return s, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d (body %s)", url, resp.StatusCode, wantStatus, body)
	}
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("GET %s: bad JSON %q: %v", url, body, err)
	}
	return m
}

func TestQueryEndpointsMatchDirectComputation(t *testing.T) {
	g := testGraph()
	_, ts := newTestServer(t, Config{Graph: g})

	want := sssp.DeltaStepping(g, 5, 32768, sssp.Options{})
	m := getJSON(t, ts.URL+"/sssp?src=5&full=1&target=42", http.StatusOK)
	dist, ok := m["dist"].([]any)
	if !ok || len(dist) != g.NumVertices() {
		t.Fatalf("full=1 did not return the distance vector: %v", m["dist"])
	}
	for v, d := range dist {
		if int64(d.(float64)) != want.Dist[v] {
			t.Fatalf("dist[%d] = %v, want %d", v, d, want.Dist[v])
		}
	}
	if int64(m["target_dist"].(float64)) != want.Dist[42] {
		t.Fatalf("target_dist = %v, want %d", m["target_dist"], want.Dist[42])
	}

	// wbfs with fusion still returns exact distances.
	wantW := sssp.WBFS(g, 7, sssp.Options{})
	m = getJSON(t, ts.URL+"/wbfs?src=7&fusion=1&full=1", http.StatusOK)
	for v, d := range m["dist"].([]any) {
		if int64(d.(float64)) != wantW.Dist[v] {
			t.Fatalf("wbfs dist[%d] = %v, want %d", v, d, wantW.Dist[v])
		}
	}

	wantCore := kcore.Coreness(g, kcore.Options{}).Coreness
	m = getJSON(t, ts.URL+"/coreness?v=100", http.StatusOK)
	if uint32(m["coreness"].(float64)) != wantCore[100] {
		t.Fatalf("coreness = %v, want %d", m["coreness"], wantCore[100])
	}

	// Second identical query must come from the cache.
	m = getJSON(t, ts.URL+"/sssp?src=5&full=1&target=42", http.StatusOK)
	if m["cached"] != true {
		t.Fatal("repeat query did not hit the result cache")
	}
}

func TestBadRequestsAreTyped(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{
		"/sssp",                // missing src
		"/sssp?src=999999",     // out of range
		"/sssp?src=1&delta=-3", // bad delta
		"/sssp?src=1&timeout_ms=x",
		"/coreness?v=abc",
	} {
		m := getJSON(t, ts.URL+q, http.StatusBadRequest)
		if m["error"] == "" {
			t.Fatalf("%s: no typed error code in %v", q, m)
		}
	}
	m := getJSON(t, ts.URL+"/jobs/nope-1", http.StatusNotFound)
	if m["error"] != "unknown_job" {
		t.Fatalf("unknown job id: got %v", m)
	}
}

func TestDeadlineReturns504WithPartialStats(t *testing.T) {
	_, ts := newTestServer(t, Config{Graph: slowGraph()})
	m := getJSON(t, ts.URL+"/sssp?src=0&timeout_ms=1", http.StatusGatewayTimeout)
	if m["error"] != "canceled" && m["error"] != "deadline" {
		t.Fatalf("want typed cancellation, got %v", m)
	}
	// The kernel's *obs.Canceled carries the partial progress.
	if m["error"] == "canceled" {
		if _, ok := m["rounds"]; !ok {
			t.Fatalf("504 body missing partial stats: %v", m)
		}
	}
}

func TestBackpressure429WhenSaturated(t *testing.T) {
	// One slot, no queue: with many concurrent slow queries (distinct
	// sources, so no coalescing) some must be rejected immediately.
	rec := obs.NewRecorder()
	_, ts := newTestServer(t, Config{Graph: slowGraph(), Recorder: rec, MaxInFlight: 1, MaxQueued: 1})
	const n = 8
	codes := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(fmt.Sprintf("%s/sssp?src=%d", ts.URL, i*100))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes <- resp.StatusCode
		}(i)
	}
	wg.Wait()
	close(codes)
	var ok200, rejected int
	for c := range codes {
		switch c {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			rejected++
		default:
			t.Fatalf("unexpected status %d", c)
		}
	}
	if ok200 == 0 || rejected == 0 {
		t.Fatalf("want both successes and 429s under saturation, got %d ok / %d rejected", ok200, rejected)
	}
	if rec.Counter(obs.CtrServeRejectedQueue) == 0 {
		t.Fatal("rejection counter not incremented")
	}
}

func TestClosingReturns503(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Close(ctx)
	resp, err := http.Get(ts.URL + "/sssp?src=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d after Close, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d after Close, want 503", resp2.StatusCode)
	}
}

func TestCoalescedRequestsShareOneComputation(t *testing.T) {
	rec := obs.NewRecorder()
	const n = 8
	// Followers hold admission slots while waiting on the leader's
	// computation, so the gate must admit all n at once.
	_, ts := newTestServer(t, Config{Graph: slowGraph(), Recorder: rec, MaxInFlight: n})
	type out struct {
		dist      string
		coalesced bool
		cached    bool
	}
	results := make(chan out, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := getJSON(t, ts.URL+"/sssp?src=33&full=1", http.StatusOK)
			b, _ := json.Marshal(m["dist"])
			results <- out{dist: string(b), coalesced: m["coalesced"] == true, cached: m["cached"] == true}
		}()
	}
	wg.Wait()
	close(results)
	var first string
	var shared int
	for r := range results {
		if first == "" {
			first = r.dist
		} else if r.dist != first {
			t.Fatal("coalesced requests returned different distance vectors")
		}
		if r.coalesced || r.cached {
			shared++
		}
	}
	// Exactly one request computes; every other one coalesces onto it
	// or reads the cache.
	if shared != n-1 {
		t.Fatalf("%d of %d requests shared the computation, want %d", shared, n, n-1)
	}
}

func TestJobsLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for kind, wantKey := range map[string]string{"densest": "density", "setcover": "cover_size"} {
		resp, err := http.Post(ts.URL+"/jobs/"+kind, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		var info jobInfo
		err = json.NewDecoder(resp.Body).Decode(&info)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusAccepted || info.ID == "" {
			t.Fatalf("submit %s: status %d info %+v err %v", kind, resp.StatusCode, info, err)
		}
		var final jobInfo
		for i := 0; i < 200; i++ {
			m := getJSON(t, ts.URL+"/jobs/"+info.ID, http.StatusOK)
			final = jobInfo{Status: m["status"].(string)}
			if r, ok := m["result"].(map[string]any); ok {
				if _, ok := r[wantKey]; !ok {
					t.Fatalf("%s result missing %q: %v", kind, wantKey, r)
				}
			}
			if final.Status == jobDone || final.Status == jobFailed || final.Status == jobCanceled {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if final.Status != jobDone {
			t.Fatalf("%s job ended %q", kind, final.Status)
		}
	}
	m := getJSON(t, ts.URL+"/jobs/frobnicate", http.StatusNotFound)
	if m["error"] != "unknown_job" {
		t.Fatalf("unknown kind: %v", m)
	}
}

func TestGracefulShutdownDrainsWithoutLeaks(t *testing.T) {
	defer harness.LeakCheck(t)()
	rec := obs.NewRecorder()
	s := New(Config{Graph: slowGraph(), Recorder: rec})
	ts := httptest.NewServer(s.Handler())

	// A long query is in flight when Close begins; Close's expired
	// drain budget cancels it, and the query returns a typed 504 —
	// drained, not abandoned.
	started := make(chan struct{})
	status := make(chan int, 1)
	go func() {
		close(started)
		resp, err := http.Get(ts.URL + "/sssp?src=0&timeout_ms=30000")
		if err != nil {
			status <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		status <- resp.StatusCode
	}()
	<-started
	time.Sleep(50 * time.Millisecond) // let the query reach the kernel

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	select {
	case code := <-status:
		if code != http.StatusGatewayTimeout && code != http.StatusOK {
			t.Fatalf("drained query returned %d, want 504 (canceled) or 200 (finished)", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("query not drained by Close")
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
}

func TestLRUCacheEviction(t *testing.T) {
	l := newLRU(2)
	k := func(i int) ssspKey { return ssspKey{src: graph.Vertex(i)} }
	v := &ssspVal{}
	l.put(k(1), v)
	l.put(k(2), v)
	if _, ok := l.get(k(1)); !ok {
		t.Fatal("k1 evicted too early")
	}
	l.put(k(3), v) // evicts k2 (k1 was just used)
	if _, ok := l.get(k(2)); ok {
		t.Fatal("k2 not evicted")
	}
	if _, ok := l.get(k(1)); !ok {
		t.Fatal("k1 wrongly evicted")
	}
	if _, ok := l.get(k(3)); !ok {
		t.Fatal("k3 missing")
	}
}

func TestAdmissionGate(t *testing.T) {
	a := newAdmission(1, 1, nil)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Slot taken; one waiter fits, the second is rejected.
	ctx, cancel := context.WithCancel(context.Background())
	waitErr := make(chan error, 1)
	go func() { waitErr <- a.acquire(ctx) }()
	for a.waiters.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if err := a.acquire(context.Background()); err != ErrQueueFull {
		t.Fatalf("overflow acquire: %v, want ErrQueueFull", err)
	}
	cancel()
	if err := <-waitErr; err != context.Canceled {
		t.Fatalf("canceled waiter: %v", err)
	}
	a.release()
	a.close()
	if err := a.acquire(context.Background()); err != ErrClosing {
		t.Fatalf("acquire after close: %v, want ErrClosing", err)
	}
}
