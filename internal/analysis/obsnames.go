package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// recorderWriteMethods are the obs.Recorder methods whose first
// argument is a metric name being written; read-side methods
// (HistSummary, Snapshot, ...) take arbitrary names by design.
var recorderWriteMethods = map[string]bool{
	"Inc":             true,
	"Add":             true,
	"SetGauge":        true,
	"Observe":         true,
	"ObserveSince":    true,
	"ObserveDuration": true,
}

// ObsNames pins instrumentation to the well-known-names registry
// (internal/obs/names.go + obs.go, DESIGN.md §10): every Recorder
// write call's name argument must resolve to a registry constant —
// directly, through a local variable, or through a helper function
// with the MetricNameFunc fact (cmd/servedload's histFor) — and,
// in reverse, every registry constant must still be used by some
// instrumentation in the unit, so the registry cannot drift away from
// the code in either direction.
var ObsNames = &Analyzer{
	Name: "obsnames",
	Doc: "obsnames: metric names must resolve to the obs well-known-names " +
		"registry, and registry constants must not go unused",
	Run:    runObsNames,
	Finish: finishObsNames,
}

func runObsNames(pass *Pass) error {
	// The obs package itself mints the names; everything else consumes
	// them.
	if pass.Pkg.Name() == "obs" || pass.unit == nil || len(pass.unit.registry) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !isRecorderWrite(pass, call) || len(call.Args) == 0 {
					return true
				}
				checkMetricName(pass, fd.Body, call.Args[0])
				return true
			})
		}
	}
	return nil
}

// isRecorderWrite reports a call to a write method of obs.Recorder.
func isRecorderWrite(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || !recorderWriteMethods[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Recorder" &&
		named.Obj().Pkg() != nil && named.Obj().Pkg().Name() == "obs"
}

// checkMetricName resolves one name argument.
func checkMetricName(pass *Pass, body *ast.BlockStmt, arg ast.Expr) {
	reg := pass.unit.registry
	// Constant (registry const, or a literal — the drift case).
	if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.Value != nil {
		if s, err := strconvUnquoteConst(tv.Value.ExactString()); err == nil {
			if !reg[s] {
				pass.Reportf(arg.Pos(), "metric name %q is not in the obs well-known-names registry", s)
			}
		}
		return
	}
	switch x := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		if fn := calleeFunc(pass, x); fn != nil && pass.InUnit(fn) &&
			pass.Facts.Of(fn).MetricNameFunc {
			return
		}
		pass.Reportf(arg.Pos(), "metric name is computed by a function not known to return registry names")
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[x]
		if obj == nil {
			return
		}
		if resolveNameVar(pass, body, obj) {
			return
		}
		pass.Reportf(arg.Pos(), "metric name variable %s does not resolve to the obs well-known-names registry", x.Name)
	default:
		pass.Reportf(arg.Pos(), "metric name does not resolve to the obs well-known-names registry")
	}
}

// resolveNameVar reports whether every assignment to obj inside body
// resolves to a registry name (constant or fact-carrying call). A
// variable with no assignment in the body (a parameter) does not
// resolve — callers should pass constants or use a MetricNameFunc
// helper.
func resolveNameVar(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	reg := pass.unit.registry
	sources := 0
	allGood := true
	resolveExpr := func(e ast.Expr) bool {
		if tv, ok := pass.TypesInfo.Types[e]; ok && tv.Value != nil {
			s, err := strconvUnquoteConst(tv.Value.ExactString())
			return err == nil && reg[s]
		}
		if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && pass.InUnit(fn) {
				return pass.Facts.Of(fn).MetricNameFunc
			}
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(st.Rhs) {
					continue
				}
				if pass.TypesInfo.Defs[id] == obj || pass.TypesInfo.Uses[id] == obj {
					sources++
					if !resolveExpr(st.Rhs[i]) {
						allGood = false
					}
				}
			}
		case *ast.ValueSpec:
			for i, id := range st.Names {
				if pass.TypesInfo.Defs[id] == obj && i < len(st.Values) {
					sources++
					if !resolveExpr(st.Values[i]) {
						allGood = false
					}
				}
			}
		}
		return true
	})
	return sources > 0 && allGood
}

// finishObsNames is the reverse direction, run once over the whole
// unit: a registry constant that no instrumentation references anymore
// is drift — the metric was renamed or deleted but the registry kept
// the name. WellKnownNames() itself references every constant by
// design and is excluded; so is the obs package's own plumbing.
func finishObsNames(u *Unit, reportf func(pos token.Pos, format string, args ...any)) {
	// Only meaningful when the unit actually contains instrumentation
	// consumers: a unit of pure obs packages (or fixtures without an obs
	// import) should not flag the whole registry.
	hasConsumer := false
	var obsPkgs []*Package
	for _, pkg := range u.Pkgs {
		if pkg.Types.Name() == "obs" {
			obsPkgs = append(obsPkgs, pkg)
			continue
		}
		for _, imp := range pkg.Types.Imports() {
			if imp.Name() == "obs" {
				hasConsumer = true
			}
		}
	}
	if !hasConsumer || len(obsPkgs) == 0 {
		return
	}
	// Collect the registry constants declared by the unit's obs packages.
	// Keys are "pkgpath.Name" strings, not object pointers: a reference
	// from another package resolves through the export-data importer to
	// a DIFFERENT *types.Const instance than the syntax-loaded one.
	type constInfo struct {
		name string
		pos  token.Pos
	}
	consts := map[string]constInfo{}
	for _, pkg := range obsPkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !c.Exported() || !isMetricNameConst(name) {
				continue
			}
			if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				consts[pkg.Path+"."+name] = constInfo{name: name, pos: c.Pos()}
			}
		}
	}
	if len(consts) == 0 {
		return
	}
	// Cross out every constant referenced anywhere in the unit outside
	// WellKnownNames' own body.
	for _, pkg := range u.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "WellKnownNames" {
					continue
				}
				ast.Inspect(decl, func(n ast.Node) bool {
					id, ok := n.(*ast.Ident)
					if !ok {
						return true
					}
					c, ok := pkg.Info.Uses[id].(*types.Const)
					if !ok || c.Pkg() == nil {
						return true
					}
					delete(consts, c.Pkg().Path()+"."+c.Name())
					return true
				})
			}
		}
	}
	ordered := make([]constInfo, 0, len(consts))
	for _, c := range consts {
		ordered = append(ordered, c)
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := u.Fset.Position(ordered[i].pos), u.Fset.Position(ordered[j].pos)
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	for _, c := range ordered {
		reportf(c.pos, "registry constant %s is not referenced by any instrumentation in this build (drift)", c.name)
	}
}
