package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the CFG-lite half of the interprocedural engine
// (DESIGN.md §13): a branch/return/defer path enumerator over the AST
// that the pairing analyzers (ctxguard, semabalance) and the fact
// extractors share. It is deliberately not a real CFG — no goto
// resolution, loops walked once — because every obligation pattern in
// this repository is structured (acquire at the top, branch on the
// verdict, discharge before each exit), and the fixtures pin exactly
// the shapes the walker understands.
//
// The walker owns path enumeration and condition gates; the analyzer
// owns statement semantics through hooks. An analyzer models its
// protocol as obligations in a pathState: the walker clones the state
// at branches, applies success/failure gates from the branch
// condition, re-merges the surviving branches, and calls back at every
// exit with what is still held.

// obInfo is the per-obligation record shared by every path copy of a
// pathOb, so a leak on one path is reported once no matter how many
// paths reach an exit while holding it.
type obInfo struct {
	pos    token.Pos // where the obligation was created (diagnostic anchor)
	name   string    // human name for the message
	leaked bool      // a diagnostic has been issued
}

// pathOb is one path's view of an obligation. cond, when set, is the
// bool/error variable gating it: the obligation is real only on paths
// where that variable indicates the acquiring call succeeded. Branch
// gates resolve it — the failure branch drops the obligation, the
// success branch makes it unconditional.
type pathOb struct {
	info *obInfo
	cond types.Object
}

func (o *pathOb) clone() *pathOb {
	c := *o
	return &c
}

// pathState maps the obligation-carrying object (a cancel func, a
// release closure, an admission-semaphore field) to its state on the
// current path.
type pathState map[types.Object]*pathOb

func (s pathState) clone() pathState {
	out := make(pathState, len(s))
	for k, v := range s {
		out[k] = v.clone()
	}
	return out
}

// pathSim walks one function body, calling the analyzer's hooks along
// every enumerated path. All hooks are optional.
type pathSim struct {
	pass *Pass
	// onStmt interprets one simple statement (assign, expr, incdec,
	// send, go, decl, and the return statement just before its exit),
	// mutating held.
	onStmt func(s ast.Stmt, held pathState)
	// onDefer interprets a deferred call. Defers run at every exit
	// reached from here, so a discharging defer may discharge
	// immediately (every path past this statement is covered).
	onDefer func(call *ast.CallExpr, held pathState)
	// onExpr interprets a bare condition expression (if/for/switch/case
	// conditions), mutating held.
	onExpr func(e ast.Expr, held pathState)
	// onExit is called at each return statement (ret non-nil) and at a
	// reachable fall-off of the body (ret nil) with the obligations the
	// path still holds.
	onExit func(ret *ast.ReturnStmt, pos token.Pos, held pathState)
}

// walkBody enumerates the body's paths starting from held.
func (w *pathSim) walkBody(body *ast.BlockStmt, held pathState) {
	if !w.walkStmts(body.List, held) {
		w.exit(nil, body.End(), held)
	}
}

func (w *pathSim) exit(ret *ast.ReturnStmt, pos token.Pos, held pathState) {
	if w.onExit != nil {
		w.onExit(ret, pos, held)
	}
}

func (w *pathSim) stmt(s ast.Stmt, held pathState) {
	if w.onStmt != nil {
		w.onStmt(s, held)
	}
}

func (w *pathSim) expr(e ast.Expr, held pathState) {
	if w.onExpr != nil {
		w.onExpr(e, held)
	}
}

// walkStmts interprets a statement list, mutating held in place, and
// reports whether the list definitely terminates (return, panic,
// os.Exit) so the caller knows the fall-through path is dead.
func (w *pathSim) walkStmts(stmts []ast.Stmt, held pathState) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *pathSim) walkStmt(s ast.Stmt, held pathState) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		// The analyzer sees the return first (returning an obligation
		// transfers it to the caller), then the exit check runs.
		w.stmt(st, held)
		w.exit(st, st.Pos(), held)
		return true
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			return true // panic/os.Exit: not a leak-checked exit
		}
		w.stmt(st, held)
		return false
	case *ast.DeferStmt:
		if w.onDefer != nil {
			w.onDefer(st.Call, held)
		}
		return false
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.GoStmt,
		*ast.DeclStmt, *ast.EmptyStmt:
		w.stmt(s, held)
		return false
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		w.expr(st.Cond, held)
		gateObj, gateSuccess, hasGate := condGate(w.pass, st.Cond)
		thenHeld := held.clone()
		if hasGate {
			applyGate(thenHeld, gateObj, gateSuccess)
		}
		thenTerm := w.walkStmts(st.Body.List, thenHeld)
		elseHeld := held.clone()
		if hasGate {
			applyGate(elseHeld, gateObj, !gateSuccess)
		}
		elseTerm := false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = w.walkStmts(e.List, elseHeld)
			case *ast.IfStmt:
				elseTerm = w.walkStmt(e, elseHeld)
			}
		}
		mergePathBranches(held, thenHeld, thenTerm, elseHeld, elseTerm)
		return thenTerm && elseTerm
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		if st.Cond != nil {
			w.expr(st.Cond, held)
		}
		bodyHeld := held.clone()
		w.walkStmts(st.Body.List, bodyHeld)
		adoptLoopState(held, bodyHeld)
		return false
	case *ast.RangeStmt:
		w.expr(st.X, held)
		bodyHeld := held.clone()
		w.walkStmts(st.Body.List, bodyHeld)
		adoptLoopState(held, bodyHeld)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodies []*ast.BlockStmt
		var hasDefault bool
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init, held)
			}
			if sw.Tag != nil {
				w.expr(sw.Tag, held)
			}
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				for _, e := range cc.List {
					w.expr(e, held)
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init, held)
			}
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		case *ast.SelectStmt:
			hasDefault = true
			for _, c := range sw.Body.List {
				bodies = append(bodies, &ast.BlockStmt{List: c.(*ast.CommClause).Body})
			}
		}
		allTerm := len(bodies) > 0
		merged := pathState{}
		anyFall := false
		for _, b := range bodies {
			caseHeld := held.clone()
			// Case bodies may gate on a per-case errors.Is verdict; the
			// analyzer resolves those inside onStmt as needed.
			if !w.walkStmts(b.List, caseHeld) {
				for k, v := range caseHeld {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
				anyFall = true
				allTerm = false
			}
		}
		if anyFall || !hasDefault {
			if !hasDefault {
				// The skip path (no case matched) keeps the pre-switch
				// state.
				for k, v := range held {
					if _, ok := merged[k]; !ok {
						merged[k] = v
					}
				}
			}
			for k := range held {
				delete(held, k)
			}
			for k, v := range merged {
				held[k] = v
			}
		}
		return allTerm && hasDefault
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	default:
		// break/continue/goto: the path continues conservatively.
		return false
	}
}

// condGate recognizes the success/failure conditions the serving code
// branches on: `ok`, `!ok` (bool verdicts) and `err == nil`,
// `err != nil` (error verdicts). It returns the gating object and
// whether the condition being TRUE means the acquiring call succeeded.
func condGate(pass *Pass, cond ast.Expr) (types.Object, bool, bool) {
	switch c := ast.Unparen(cond).(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[c]; obj != nil && isBoolType(obj.Type()) {
			return obj, true, true
		}
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			if id, ok := ast.Unparen(c.X).(*ast.Ident); ok {
				if obj := pass.TypesInfo.Uses[id]; obj != nil && isBoolType(obj.Type()) {
					return obj, false, true
				}
			}
		}
	case *ast.BinaryExpr:
		if c.Op != token.EQL && c.Op != token.NEQ {
			break
		}
		id, nilSide := nilComparison(c)
		if id == nil {
			break
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !isErrorType(obj.Type()) || !nilSide {
			break
		}
		// err == nil true => success; err != nil true => failure.
		return obj, c.Op == token.EQL, true
	}
	return nil, false, false
}

func isBoolType(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Bool
}

// nilComparison extracts the ident from `x == nil` / `nil == x` forms.
func nilComparison(c *ast.BinaryExpr) (*ast.Ident, bool) {
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if id, ok := ast.Unparen(c.X).(*ast.Ident); ok && isNil(c.Y) {
		return id, true
	}
	if id, ok := ast.Unparen(c.Y).(*ast.Ident); ok && isNil(c.X) {
		return id, true
	}
	return nil, false
}

// applyGate resolves every obligation gated on obj for a branch where
// the acquire's success is branchSuccess: the failure branch holds
// nothing (the acquire returned an error; there is no token/cancel to
// pair), the success branch holds it unconditionally.
func applyGate(held pathState, obj types.Object, branchSuccess bool) {
	for k, ob := range held {
		if ob.cond != obj {
			continue
		}
		if branchSuccess {
			ob.cond = nil
		} else {
			delete(held, k)
		}
	}
}

// mergePathBranches recomputes held after an if/else: an obligation
// survives if any non-terminated continuation still holds it.
func mergePathBranches(held, thenHeld pathState, thenTerm bool, elseHeld pathState, elseTerm bool) {
	for k := range held {
		delete(held, k)
	}
	if !thenTerm {
		for k, v := range thenHeld {
			held[k] = v
		}
	}
	if !elseTerm {
		for k, v := range elseHeld {
			if _, ok := held[k]; !ok {
				held[k] = v
			}
		}
	}
}

// adoptLoopState carries a loop body's fall-through state past the
// loop: obligations created inside persist, obligations discharged
// inside count as discharged after it — the source order of every
// acquire/release loop in this repository (and of the scratchpair
// walker this mirrors).
func adoptLoopState(held, bodyHeld pathState) {
	for k := range held {
		if _, ok := bodyHeld[k]; !ok {
			delete(held, k)
		}
	}
	for k, v := range bodyHeld {
		held[k] = v
	}
}

// isTerminalCall reports calls that end the goroutine without reaching
// a return: panic, os.Exit, log.Fatal*, runtime.Goexit. Obligations on
// panicking paths are out of scope (same stance as scratchpair).
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := ast.Unparen(fun.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name {
		case "os":
			return fun.Sel.Name == "Exit"
		case "log":
			return fun.Sel.Name == "Fatal" || fun.Sel.Name == "Fatalf" || fun.Sel.Name == "Fatalln"
		case "runtime":
			return fun.Sel.Name == "Goexit"
		}
	}
	return false
}
