package analysis

import (
	"go/types"
	"strconv"
	"strings"
)

// pkgPathEndsWith reports whether the import path's final segment (or
// trailing segments) equal suffix — "julienne/internal/parallel" ends
// with "parallel" and with "internal/parallel". Matching on the tail
// keeps the analyzers working both on the real module paths and on the
// GOPATH-style fixture paths under testdata/src.
func pkgPathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// strconvUnquoteConst turns go/constant's ExactString form of a string
// constant (`"..."` with quotes) back into its value.
func strconvUnquoteConst(s string) (string, error) {
	return strconv.Unquote(s)
}

// intsContain reports membership in a small sorted fact slice.
func intsContain(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// paramIndexFor maps an argument position to the callee's parameter
// index, clamping variadic tails onto the final parameter.
func paramIndexFor(fn *types.Func, argIdx int) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return argIdx
	}
	n := sig.Params().Len()
	if sig.Variadic() && argIdx >= n-1 {
		return n - 1
	}
	if argIdx >= n {
		return n - 1
	}
	return argIdx
}
