package analysis

import "strings"

// pkgPathEndsWith reports whether the import path's final segment (or
// trailing segments) equal suffix — "julienne/internal/parallel" ends
// with "parallel" and with "internal/parallel". Matching on the tail
// keeps the analyzers working both on the real module paths and on the
// GOPATH-style fixture paths under testdata/src.
func pkgPathEndsWith(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
