package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix reports struct fields and package-level variables that are
// accessed through sync/atomic (or the internal/parallel atomic
// wrappers) in one place and through plain reads or writes in another.
// Mixing the two silently breaks the happens-before edges the atomic
// side is paying for: the plain access races with every atomic access,
// and the race detector only catches the schedules it happens to see.
// The bucket Stats contract ("maintained with atomic operations,
// snapshotted with atomic loads") is the motivating instance.
//
// Accesses through a value copy (e.g. a method on a value receiver
// operating on an already-taken snapshot) are allowed: the copy is
// private to its holder, so no concurrent atomic access can touch it.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flags plain reads/writes of fields that are elsewhere accessed atomically",
	Run:  runAtomicMix,
}

// parallelAtomicFuncs are the internal/parallel wrappers that perform
// an atomic access through their pointer argument.
var parallelAtomicFuncs = map[string]bool{
	"CASUint32":      true,
	"CASUint64":      true,
	"WriteMinUint32": true,
	"WriteMinUint64": true,
	"WriteMaxUint32": true,
	"AddInt64":       true,
	"AddUint32":      true,
	"LoadUint32":     true,
	"StoreUint32":    true,
}

func runAtomicMix(pass *Pass) error {
	// Pass 1: collect the objects (struct fields and package-level
	// vars) whose address is taken as the pointer argument of an atomic
	// operation, together with the argument expressions themselves so
	// pass 2 can tell atomic accesses apart from plain ones.
	atomicObjs := map[types.Object][]token.Pos{}
	atomicArgs := map[ast.Expr]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicCall(pass, call) || len(call.Args) == 0 {
				return true
			}
			// The address being operated on is the first argument, by
			// convention of both sync/atomic and the parallel wrappers.
			arg := call.Args[0]
			unary, ok := arg.(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			if obj := trackableObject(pass, unary.X); obj != nil {
				atomicObjs[obj] = append(atomicObjs[obj], call.Pos())
				atomicArgs[unary.X] = true
			}
			return true
		})
	}
	if len(atomicObjs) == 0 {
		return nil
	}

	// Pass 2: every other access to those objects must be atomic.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if atomicArgs[e] {
					// This is the &x.f of an atomic call; do not
					// descend into it, or the inner selector would be
					// misread as a plain access.
					return false
				}
				obj := fieldObject(pass, e)
				if obj == nil {
					return true
				}
				if _, hot := atomicObjs[obj]; hot && sharedAccess(pass, e) {
					pass.Reportf(e.Pos(),
						"plain access of %s.%s, which is accessed atomically elsewhere; use sync/atomic (or a snapshot copy)",
						fieldOwner(obj), obj.Name())
				}
			case *ast.Ident:
				if atomicArgs[e] {
					return false
				}
				obj := pass.TypesInfo.Uses[e]
				if obj == nil {
					return true
				}
				if _, hot := atomicObjs[obj]; hot && isPackageVar(obj) {
					pass.Reportf(e.Pos(),
						"plain access of package variable %s, which is accessed atomically elsewhere; use sync/atomic",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// isAtomicCall reports whether call invokes a sync/atomic function or
// one of the internal/parallel atomic wrappers.
func isAtomicCall(pass *Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	switch {
	case fn.Pkg().Path() == "sync/atomic":
		return true
	case pkgPathEndsWith(fn.Pkg().Path(), "parallel") && parallelAtomicFuncs[fn.Name()]:
		return true
	}
	return false
}

// trackableObject maps the operand of an atomic &x to the object the
// analyzer can track across the package: a struct field accessed
// through a selector, or a package-level variable. Slice and array
// elements are not trackable (the object does not identify the cell).
func trackableObject(pass *Pass, e ast.Expr) types.Object {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return fieldObject(pass, x)
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[x]; obj != nil && isPackageVar(obj) {
			return obj
		}
	}
	return nil
}

// fieldObject returns the struct-field object selected by e, or nil if
// e selects something else (a method, a package member, ...).
func fieldObject(pass *Pass, e *ast.SelectorExpr) types.Object {
	sel, ok := pass.TypesInfo.Selections[e]
	if !ok || sel.Kind() != types.FieldVal {
		return nil
	}
	return sel.Obj()
}

// isPackageVar reports whether obj is a package-level variable.
func isPackageVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// sharedAccess reports whether the selector chain of e can reach
// memory shared with the atomic accessors: some link of the chain goes
// through a pointer (or an index/call whose result we cannot prove
// private). A chain rooted entirely in a local value copy is a private
// snapshot and is exempt.
func sharedAccess(pass *Pass, e *ast.SelectorExpr) bool {
	x := e.X
	for {
		if tv, ok := pass.TypesInfo.Types[x]; ok {
			if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
				return true
			}
		}
		switch inner := x.(type) {
		case *ast.SelectorExpr:
			x = inner.X
		case *ast.ParenExpr:
			x = inner.X
		case *ast.StarExpr:
			return true
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[inner]
			if obj == nil {
				return true
			}
			if isPackageVar(obj) {
				return true // package-level value is shared by definition
			}
			// Local value variable: the chain operates on a copy.
			return false
		default:
			// Index expressions, calls, composite literals: assume
			// shared rather than miss a race.
			return true
		}
	}
}

// fieldOwner names the struct type a field belongs to, best-effort.
func fieldOwner(obj types.Object) string {
	if obj.Pkg() == nil {
		return "?"
	}
	// The owning named type is not directly recorded on the field;
	// report the package-qualified field for unambiguous output.
	return obj.Pkg().Name()
}
