package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// StatusMap checks the serving layer's error contract (DESIGN.md §12):
// every typed error a serve package exports (package-level `var ErrX =
// ...` of type error) must map to exactly one HTTP status across the
// package's handlers. A new typed error with no `errors.Is` branch
// writing a status is a finding (clients would see it as a generic
// 500/504), and two branches mapping the same error to different
// statuses is a finding (the contract forked).
var StatusMap = &Analyzer{
	Name: "statusmap",
	Doc: "statusmap: each typed serve error must map to exactly one " +
		"HTTP status",
	Run: runStatusMap,
}

// statusWriteFuncs maps helper names to the argument index carrying the
// status code: serve's failJSON/writeJSON(w, status, ...) and stdlib
// http.Error(w, msg, status) / w.WriteHeader(status).
var statusWriteFuncs = map[string]int{
	"failJSON":    1,
	"writeJSON":   1,
	"Error":       2,
	"WriteHeader": 0,
}

func runStatusMap(pass *Pass) error {
	if pass.Pkg.Name() != "serve" {
		return nil
	}
	// The package's typed errors.
	errVars := map[types.Object]token.Pos{}
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		if !strings.HasPrefix(name, "Err") {
			continue
		}
		v, ok := scope.Lookup(name).(*types.Var)
		if !ok || !isErrorType(v.Type()) {
			continue
		}
		errVars[v] = v.Pos()
	}
	if len(errVars) == 0 {
		return nil
	}
	// statuses[errObj] = distinct statuses written in errors.Is branches,
	// with one representative position each.
	type mapping struct {
		status int
		pos    token.Pos
	}
	statuses := map[types.Object][]mapping{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var matched types.Object
			var body []ast.Stmt
			switch st := n.(type) {
			case *ast.IfStmt:
				matched = errorsIsTarget(pass, st.Cond, errVars)
				if matched != nil {
					body = st.Body.List
				}
			case *ast.CaseClause:
				for _, e := range st.List {
					if obj := errorsIsTarget(pass, e, errVars); obj != nil {
						matched = obj
						break
					}
				}
				if matched != nil {
					body = st.Body
				}
			}
			if matched == nil {
				return true
			}
			for _, status := range statusWrites(pass, body) {
				dup := false
				for _, m := range statuses[matched] {
					if m.status == status.status {
						dup = true
						break
					}
				}
				if !dup {
					statuses[matched] = append(statuses[matched], mapping{status.status, status.pos})
				}
			}
			return true
		})
	}
	ordered := make([]types.Object, 0, len(errVars))
	for obj := range errVars {
		ordered = append(ordered, obj)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name() < ordered[j].Name() })
	for _, obj := range ordered {
		ms := statuses[obj]
		switch {
		case len(ms) == 0:
			pass.Reportf(errVars[obj], "typed error %s has no HTTP status mapping in this package", obj.Name())
		case len(ms) > 1:
			codes := make([]string, len(ms))
			for i, m := range ms {
				codes[i] = strconv.Itoa(m.status)
			}
			pass.Reportf(ms[1].pos, "typed error %s maps to multiple HTTP statuses (%s)", obj.Name(), strings.Join(codes, ", "))
		}
	}
	return nil
}

// errorsIsTarget reports the typed error tested by an
// `errors.Is(err, ErrX)` call anywhere inside cond.
func errorsIsTarget(pass *Pass, cond ast.Expr, errVars map[types.Object]token.Pos) types.Object {
	var found types.Object
	ast.Inspect(cond, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || fn.Name() != "Is" || fn.Pkg() == nil || fn.Pkg().Path() != "errors" {
			return true
		}
		if len(call.Args) != 2 {
			return true
		}
		obj := rootIdentObj(pass, call.Args[1])
		if obj == nil {
			if sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok {
				obj = pass.TypesInfo.Uses[sel.Sel]
			}
		} else if sel, ok := ast.Unparen(call.Args[1]).(*ast.SelectorExpr); ok {
			// pkg-qualified reference (serve.ErrQueueFull from a sibling):
			// the selector target, not the package ident, is the error.
			obj = pass.TypesInfo.Uses[sel.Sel]
		}
		if _, ok := errVars[obj]; ok {
			found = obj
			return false
		}
		return true
	})
	return found
}

type statusWrite struct {
	status int
	pos    token.Pos
}

// statusWrites collects the constant HTTP statuses written inside the
// branch body (failJSON/writeJSON/http.Error/WriteHeader).
func statusWrites(pass *Pass, body []ast.Stmt) []statusWrite {
	var out []statusWrite
	for _, s := range body {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			var name string
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			default:
				return true
			}
			argIdx, ok := statusWriteFuncs[name]
			if !ok || argIdx >= len(call.Args) {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Args[argIdx]]
			if !ok || tv.Value == nil {
				return true
			}
			v, err := strconv.Atoi(tv.Value.ExactString())
			if err != nil || v < 100 || v > 599 {
				return true
			}
			out = append(out, statusWrite{status: v, pos: call.Args[argIdx].Pos()})
			return true
		})
	}
	return out
}
