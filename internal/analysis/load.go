package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path         string
	Dir          string
	Fset         *token.FileSet
	Files        []*ast.File // type-checked under the active build config
	IgnoredFiles []*ast.File // excluded by build constraints; parsed only
	Types        *types.Package
	Info         *types.Info

	// filesByName maps base filename to the parsed file (active and
	// ignored), for the tagdrift pairing.
	filesByName map[string]*ast.File
}

// LoadConfig configures package loading.
type LoadConfig struct {
	// Dir is the working directory for `go list` (the module root in
	// practice). Empty means the current directory.
	Dir string
	// Tags is the build-tag list forwarded to `go list -tags`, e.g.
	// "julienne_debug" or "race". It selects which half of each
	// tag-paired file set is type-checked.
	Tags string
}

// listJSON is the subset of `go list -json` output the loader uses.
type listJSON struct {
	ImportPath     string
	Dir            string
	GoFiles        []string
	IgnoredGoFiles []string
	Export         string
	DepOnly        bool
	Incomplete     bool
	Error          *struct{ Err string }
}

// Load loads the packages matching the go list patterns, type-checking
// them from source with imports resolved from compiled export data
// (`go list -export`). It deliberately uses only the standard library:
// this repository has no network access for golang.org/x/tools, and
// export data keeps the loader exact where a source-only importer
// would not understand module layout.
func Load(cfg LoadConfig, patterns ...string) ([]*Package, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,IgnoredGoFiles,Export,DepOnly,Incomplete,Error"}
	if cfg.Tags != "" {
		args = append(args, "-tags", cfg.Tags)
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = cfg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{}
	var targets []listJSON
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listJSON
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		if t.Error != nil {
			return nil, fmt.Errorf("package %s: %s", t.ImportPath, t.Error.Err)
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles, t.IgnoredGoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter resolves import paths from compiled export data files
// via the standard gc importer's lookup hook.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (is the package listed by `go list -deps`?)", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses and type-checks one package from source.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles, ignored []string) (*Package, error) {
	pkg := &Package{Path: path, Dir: dir, Fset: fset, filesByName: map[string]*ast.File{}}
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		pkg.Files = append(pkg.Files, f)
		pkg.filesByName[name] = f
	}
	for _, name := range ignored {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			// Ignored files may be excluded precisely because they do
			// not parse under this toolchain; skip them.
			continue
		}
		pkg.IgnoredFiles = append(pkg.IgnoredFiles, f)
		pkg.filesByName[name] = f
	}
	pkg.Info = newInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// LoadDir loads a GOPATH-style fixture tree: every directory under
// root containing .go files becomes a package whose import path is its
// path relative to root. Fixture packages may import each other by
// those relative paths and may import the standard library; standard
// imports are resolved through export data obtained from `go list`.
// This is how the analysistest fixtures under testdata/src load, and
// how `julvet -dir` analyzes a known-bad tree that must stay outside
// the module build.
func LoadDir(root string) ([]*Package, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	type rawPkg struct {
		path    string
		dir     string
		active  map[string][]byte // filename -> source
		ignored map[string][]byte
		imports map[string]bool
	}
	var raws []*rawPkg
	ctx := build.Default
	err = filepath.Walk(root, func(dir string, fi os.FileInfo, err error) error {
		if err != nil || !fi.IsDir() {
			return err
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		rp := &rawPkg{dir: dir, active: map[string][]byte{}, ignored: map[string][]byte{}, imports: map[string]bool{}}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			src, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				return err
			}
			match, err := ctx.MatchFile(dir, e.Name())
			if err != nil {
				return err
			}
			if match {
				rp.active[e.Name()] = src
			} else {
				rp.ignored[e.Name()] = src
			}
		}
		if len(rp.active) == 0 && len(rp.ignored) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		rp.path = filepath.ToSlash(rel)
		raws = append(raws, rp)
		return nil
	})
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	byPath := map[string]*rawPkg{}
	parsed := map[string]*Package{}
	for _, rp := range raws {
		byPath[rp.path] = rp
		pkg := &Package{Path: rp.path, Dir: rp.dir, Fset: fset, filesByName: map[string]*ast.File{}}
		for _, name := range sortedKeys(rp.active) {
			f, err := parser.ParseFile(fset, filepath.Join(rp.dir, name), rp.active[name], parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing fixture %s/%s: %v", rp.path, name, err)
			}
			pkg.Files = append(pkg.Files, f)
			pkg.filesByName[name] = f
			for _, spec := range f.Imports {
				rp.imports[strings.Trim(spec.Path.Value, `"`)] = true
			}
		}
		for _, name := range sortedKeys(rp.ignored) {
			f, err := parser.ParseFile(fset, filepath.Join(rp.dir, name), rp.ignored[name], parser.ParseComments)
			if err != nil {
				continue
			}
			pkg.IgnoredFiles = append(pkg.IgnoredFiles, f)
			pkg.filesByName[name] = f
		}
		parsed[rp.path] = pkg
	}

	// Resolve non-fixture imports through export data, in one go list
	// invocation over the union of external import paths.
	external := map[string]bool{}
	for _, rp := range raws {
		for imp := range rp.imports {
			if _, local := byPath[imp]; !local {
				external[imp] = true
			}
		}
	}
	exports, err := exportData(sortedBoolKeys(external))
	if err != nil {
		return nil, err
	}
	gcImp := exportImporter(fset, exports)

	// Type-check fixtures in dependency order so local imports resolve
	// to already-checked packages.
	checked := map[string]*types.Package{}
	comb := &combinedImporter{local: checked, fallback: gcImp}
	var order []string
	var visit func(string) error
	visiting := map[string]bool{}
	visit = func(path string) error {
		if _, done := checked[path]; done || visiting[path] {
			return nil
		}
		visiting[path] = true
		defer func() { visiting[path] = false }()
		rp := byPath[path]
		for imp := range rp.imports {
			if _, local := byPath[imp]; local {
				if err := visit(imp); err != nil {
					return err
				}
			}
		}
		pkg := parsed[path]
		if len(pkg.Files) > 0 {
			pkg.Info = newInfo()
			conf := types.Config{Importer: comb}
			tpkg, err := conf.Check(path, fset, pkg.Files, pkg.Info)
			if err != nil {
				return fmt.Errorf("type-checking fixture %s: %v", path, err)
			}
			pkg.Types = tpkg
			checked[path] = tpkg
		} else {
			// Tag-only fixture (all files ignored): no type info.
			pkg.Info = newInfo()
			pkg.Types = types.NewPackage(path, "p")
		}
		order = append(order, path)
		return nil
	}
	for _, rp := range raws {
		if err := visit(rp.path); err != nil {
			return nil, err
		}
	}
	pkgs := make([]*Package, 0, len(order))
	for _, path := range order {
		pkgs = append(pkgs, parsed[path])
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// exportData maps each listed import path (plus its dependencies) to
// its compiled export data file.
func exportData(paths []string) (map[string]string, error) {
	exports := map[string]string{}
	if len(paths) == 0 {
		return exports, nil
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Export"}, paths...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list (export data for %v): %v\n%s", paths, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listJSON
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, err
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// combinedImporter serves fixture-local packages from the checked map
// and everything else from export data.
type combinedImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c *combinedImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

func sortedKeys(m map[string][]byte) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedBoolKeys(m map[string]bool) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
