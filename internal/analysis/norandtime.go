package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// NoRandTime enforces the determinism and timing plumbing contracts:
//
//   - math/rand (and math/rand/v2) are forbidden everywhere except
//     internal/rng. Workloads draw randomness from internal/rng's
//     seeded splitmix64/xoshiro generators so every experiment,
//     property test, and benchmark is reproducible from its printed
//     seed; a stray math/rand import reintroduces global mutable state
//     that -race and the differential harness cannot replay.
//
//   - bare time.Now is forbidden outside internal/harness and
//     internal/obs. Timing flows through the harness (TimeMedian,
//     Time, ThreadSweep) or the obs recorder so that every reported
//     number carries the same warm-up, repetition, and median
//     discipline — an inline time.Now measurement silently skips all
//     three.
//
// Deliberate exceptions carry a `//lint:ignore julvet/norandtime
// reason` directive.
var NoRandTime = &Analyzer{
	Name: "norandtime",
	Doc:  "forbids math/rand imports and bare time.Now outside the rng/harness/obs plumbing",
	Run:  runNoRandTime,
}

// randAllowed/timeAllowed are the package-path suffixes exempt from
// each half of the check.
var (
	randAllowed = []string{"internal/rng"}
	timeAllowed = []string{"internal/harness", "internal/obs"}
)

func pathAllowed(path string, allowed []string) bool {
	for _, suffix := range allowed {
		if pkgPathEndsWith(path, suffix) {
			return true
		}
	}
	return false
}

func runNoRandTime(pass *Pass) error {
	path := pass.Pkg.Path()
	for _, f := range pass.Files {
		if !pathAllowed(path, randAllowed) {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if p == "math/rand" || p == "math/rand/v2" {
					pass.Reportf(imp.Pos(),
						"import of %s: use the seeded generators in internal/rng so runs are reproducible", p)
				}
			}
		}
		if pathAllowed(path, timeAllowed) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(call.Pos(),
				"bare time.Now: route timing through internal/harness (Time/TimeMedian) or the obs recorder")
			return true
		})
	}
	return nil
}
