package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer of the julvet engine
// (DESIGN.md §13). The per-function lexical analyzers of PR 5 stop at
// the function boundary; every contract the serving layer now relies
// on (admission release pairing, cancel-func obligations, arena
// invalidation through helpers) routinely crosses it. The layer has
// two parts:
//
//   - a fact store: bottom-up summaries of what each function does to
//     the values it receives or returns (releases the scratch it is
//     handed, calls NextBucket on its receiver, returns a release
//     closure, ...). Facts are computed over every package in the load
//     unit in a fixpoint, so helper chains and cross-package calls
//     resolve as long as both sides are part of the unit (which
//     `julvet ./...` and the fixture loader guarantee).
//   - serialization: each package's facts round-trip through JSON the
//     moment they are computed, mirroring how go/analysis facts travel
//     alongside gc export data. The analyzers only ever read the
//     re-imported copy, so the wire format cannot silently rot — if a
//     fact stops surviving the round trip, the analyzers lose it and
//     the fixture suite fails.
//
// Facts deliberately summarize *behavior visible at the call site*,
// not full dataflow: "this function, handed a scratch in parameter 1,
// releases it on every path". That is exactly the granularity the
// pairing analyzers need to keep walking past a call.

// FuncFacts is the exported summary of one function, serialized as
// JSON alongside the load. The zero value means "nothing known" and is
// what callers get for functions outside the unit.
type FuncFacts struct {
	// InvalidatesArena: the function calls one of the bucket arena
	// invalidators (NextBucket, NextBucketFused, DrainLazy,
	// UpdateBuckets) — directly or through another invalidating
	// function — on a structure it received (receiver or parameter).
	// A call to such a function expires armed arena slices in the
	// caller exactly like a direct NextBucket call would. Functions
	// that only invalidate structures they create locally do not get
	// the fact: their buckets are invisible to the caller's arenas.
	InvalidatesArena bool `json:"invalidates_arena,omitempty"`

	// ArenaResults/ArenaSliceIdx: the function is a producer wrapper —
	// it tail-returns an arena producer call (`return b.NextBucket()`),
	// so binding its results arms an arena slice with this shape.
	ArenaResults  int `json:"arena_results,omitempty"`
	ArenaSliceIdx int `json:"arena_slice_idx,omitempty"`

	// ReleasesScratch lists the 0-based indices of *parallel.Scratch[T]
	// parameters that the function releases (or sinks: returns, stores,
	// hands to an unknown callee) on every panic-free path. Passing a
	// scratch to a function with this fact discharges the caller's
	// obligation; passing it to a unit function without it does not.
	ReleasesScratch []int `json:"releases_scratch,omitempty"`

	// CancelsParams lists the 0-based indices of context.CancelFunc
	// parameters invoked (or deferred) on every path.
	CancelsParams []int `json:"cancels_params,omitempty"`

	// InstallsRecover: the function's first top-level statements
	// include `defer recoverPanic()` (or `defer x.recoverPanic()`), so
	// spawning it — or letting it call caller-supplied function values —
	// is panic-contained.
	InstallsRecover bool `json:"installs_recover,omitempty"`

	// ReleaseResult/OKResult/ErrResult describe admit-style helpers:
	// the function acquires a semaphore and returns a closure that
	// releases it. ReleaseResult is the 1-based index of that closure
	// among the results (0 = no such result). OKResult / ErrResult are
	// the 1-based indices of a companion bool / error result gating
	// the obligation (the closure must be called only when the bool is
	// true / the error is nil); 0 = unconditional.
	ReleaseResult int `json:"release_result,omitempty"`
	OKResult      int `json:"ok_result,omitempty"`
	ErrResult     int `json:"err_result,omitempty"`

	// SemaReleaseParams lists the 0-based indices of parameters on
	// which the function calls release()/Release() on every path, so a
	// caller holding that semaphore may discharge through the call.
	SemaReleaseParams []int `json:"sema_release_params,omitempty"`

	// MetricNameFunc: a single-string-result function whose every
	// return resolves to the well-known-names registry; calls to it
	// are valid metric-name arguments (cmd/servedload's histFor).
	MetricNameFunc bool `json:"metric_name_func,omitempty"`
}

// zero reports whether no fact is set (such entries are not exported).
func (f FuncFacts) zero() bool {
	return !f.InvalidatesArena && f.ArenaResults == 0 &&
		len(f.ReleasesScratch) == 0 && len(f.CancelsParams) == 0 &&
		!f.InstallsRecover && f.ReleaseResult == 0 &&
		len(f.SemaReleaseParams) == 0 && !f.MetricNameFunc
}

func (f FuncFacts) equal(g FuncFacts) bool {
	return f.InvalidatesArena == g.InvalidatesArena &&
		f.ArenaResults == g.ArenaResults && f.ArenaSliceIdx == g.ArenaSliceIdx &&
		intsEqual(f.ReleasesScratch, g.ReleasesScratch) &&
		intsEqual(f.CancelsParams, g.CancelsParams) &&
		f.InstallsRecover == g.InstallsRecover &&
		f.ReleaseResult == g.ReleaseResult && f.OKResult == g.OKResult &&
		f.ErrResult == g.ErrResult &&
		intsEqual(f.SemaReleaseParams, g.SemaReleaseParams) &&
		f.MetricNameFunc == g.MetricNameFunc
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuncKey is the serializable identity of a function: import path,
// optional receiver type, and name — "pkg/path.Name" or
// "pkg/path.(Recv).Name". It is what keys the fact store on the wire.
func FuncKey(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s.(%s).%s", fn.Pkg().Path(), named.Obj().Name(), fn.Name())
		}
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// factsEnabled is the mutation-test knob: the load-bearing tests in
// interproc_test.go flip it off and prove that the cross-function
// fixture diagnostics appear or disappear accordingly, so the
// interprocedural edges cannot silently rot into dead code.
var factsEnabled = true

// Facts is the unit-wide fact store the analyzers read.
type Facts struct {
	funcs map[string]FuncFacts
}

func newFacts() *Facts { return &Facts{funcs: map[string]FuncFacts{}} }

// Of returns the facts for fn (the zero value when none are known or
// the interprocedural layer is disabled).
func (s *Facts) Of(fn *types.Func) FuncFacts {
	if s == nil || fn == nil || !factsEnabled {
		return FuncFacts{}
	}
	return s.funcs[FuncKey(fn)]
}

func (s *Facts) set(key string, f FuncFacts) {
	if key == "" {
		return
	}
	if f.zero() {
		delete(s.funcs, key)
		return
	}
	s.funcs[key] = f
}

// ExportPackage serializes every fact belonging to pkgPath, sorted by
// key for determinism.
func (s *Facts) ExportPackage(pkgPath string) ([]byte, error) {
	out := map[string]FuncFacts{}
	for k, f := range s.funcs {
		if strings.HasPrefix(k, pkgPath+".") {
			out[k] = f
		}
	}
	keys := make([]string, 0, len(out))
	for k := range out {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]struct {
		Key   string    `json:"key"`
		Facts FuncFacts `json:"facts"`
	}, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, struct {
			Key   string    `json:"key"`
			Facts FuncFacts `json:"facts"`
		}{k, out[k]})
	}
	return json.Marshal(ordered)
}

// ImportPackage merges serialized facts into the store.
func (s *Facts) ImportPackage(data []byte) error {
	var in []struct {
		Key   string    `json:"key"`
		Facts FuncFacts `json:"facts"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("importing facts: %v", err)
	}
	for _, e := range in {
		s.set(e.Key, e.Facts)
	}
	return nil
}

// funcInfo locates one declared function's body inside the unit.
type funcInfo struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// Unit is one analysis load: every package analyzed together, plus the
// fact store computed over all of them. Cross-package resolution works
// exactly for functions inside the unit; everything else is summarized
// by export data alone and has no facts.
type Unit struct {
	Pkgs  []*Package
	Fset  *token.FileSet
	Facts *Facts

	bodies   map[string]funcInfo // FuncKey -> declaration
	registry map[string]bool     // well-known metric names (see metricRegistry)
}

// NewUnit indexes the packages and computes the fact store to a
// fixpoint. Each package's facts pass through the JSON round trip
// before the analyzers can see them (see the file comment).
func NewUnit(pkgs []*Package) *Unit {
	u := &Unit{Pkgs: pkgs, bodies: map[string]funcInfo{}}
	if len(pkgs) > 0 {
		u.Fset = pkgs[0].Fset
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					u.bodies[FuncKey(fn)] = funcInfo{pkg: pkg, decl: fd}
				}
			}
		}
	}
	u.registry = u.metricRegistry()
	u.computeFacts()
	return u
}

// HasBody reports whether fn's source is part of this unit (and its
// facts therefore authoritative rather than merely absent).
func (u *Unit) HasBody(fn *types.Func) bool {
	if u == nil || fn == nil {
		return false
	}
	_, ok := u.bodies[FuncKey(fn)]
	return ok
}

// computeFacts runs the per-function extractors to a fixpoint: facts
// are monotone (they only ever get set), so iteration terminates; the
// bound guards against a pathological unit.
func (u *Unit) computeFacts() {
	working := newFacts()
	registry := u.registry
	for iter := 0; iter < 10; iter++ {
		changed := false
		for key, fi := range u.bodies {
			pass := u.passFor(fi.pkg, working)
			got := computeFuncFacts(pass, fi.decl, registry)
			if !got.equal(working.funcs[key]) {
				working.set(key, got)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Production round trip: serialize per package, re-import into the
	// store the analyzers read.
	final := newFacts()
	for _, pkg := range u.Pkgs {
		data, err := working.ExportPackage(pkg.Path)
		if err != nil {
			continue // a package that fails to serialize simply has no facts
		}
		_ = final.ImportPackage(data)
	}
	u.Facts = final
}

// passFor builds the Pass the fact extractors run under (no analyzer,
// no diagnostics sink).
func (u *Unit) passFor(pkg *Package, facts *Facts) *Pass {
	return &Pass{
		Fset:         pkg.Fset,
		Files:        pkg.Files,
		IgnoredFiles: pkg.IgnoredFiles,
		Pkg:          pkg.Types,
		TypesInfo:    pkg.Info,
		Facts:        facts,
		unit:         u,
	}
}

// metricRegistry collects the well-known metric names visible to the
// unit: exported string constants named Ctr*/Gauge*/Hist* declared in
// any package named "obs" — the unit's own packages and their direct
// imports (export data carries constant values, so the registry is
// complete even when the obs package itself is not a target).
func (u *Unit) metricRegistry() map[string]bool {
	reg := map[string]bool{}
	seen := map[*types.Package]bool{}
	var collect func(p *types.Package)
	collect = func(p *types.Package) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		if p.Name() != "obs" {
			return
		}
		scope := p.Scope()
		for _, name := range scope.Names() {
			c, ok := scope.Lookup(name).(*types.Const)
			if !ok || !c.Exported() || !isMetricNameConst(name) {
				continue
			}
			if basic, ok := c.Type().Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
				reg[stringConstValue(c)] = true
			}
		}
	}
	for _, pkg := range u.Pkgs {
		collect(pkg.Types)
		for _, imp := range pkg.Types.Imports() {
			collect(imp)
		}
	}
	return reg
}

func isMetricNameConst(name string) bool {
	return strings.HasPrefix(name, "Ctr") || strings.HasPrefix(name, "Gauge") ||
		strings.HasPrefix(name, "Hist")
}

func stringConstValue(c *types.Const) string {
	s, err := strconvUnquoteConst(c.Val().ExactString())
	if err != nil {
		return ""
	}
	return s
}

// computeFuncFacts extracts one function's facts under the current
// (possibly still converging) store.
func computeFuncFacts(pass *Pass, fd *ast.FuncDecl, registry map[string]bool) FuncFacts {
	var f FuncFacts
	f.InstallsRecover = hasRecoverDefer(fd.Body)
	f.InvalidatesArena = factInvalidatesArena(pass, fd)
	f.ArenaResults, f.ArenaSliceIdx = factArenaProducer(pass, fd)
	f.ReleasesScratch = factReleasesScratch(pass, fd)
	f.CancelsParams = factCancelsParams(pass, fd)
	f.ReleaseResult, f.OKResult, f.ErrResult = factReleaseResult(pass, fd)
	f.SemaReleaseParams = factSemaReleaseParams(pass, fd)
	f.MetricNameFunc = factMetricNameFunc(pass, fd, registry)
	return f
}

// paramObjects maps every parameter (and the receiver) of fd to its
// 0-based parameter index; the receiver gets index -1.
func paramObjects(pass *Pass, fd *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = -1
				}
			}
		}
	}
	i := 0
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					out[obj] = i
				}
				i++
			}
			if len(field.Names) == 0 {
				i++
			}
		}
	}
	return out
}

// rootIdentObj resolves the root identifier of a selector chain
// (`s.b.NextBucket` -> s) to its object.
func rootIdentObj(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[x]
			if obj == nil {
				obj = pass.TypesInfo.Defs[x]
			}
			return obj
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			return nil
		default:
			return nil
		}
	}
}

// factInvalidatesArena: the body calls an arena invalidator (by name,
// or by fact) on — or passing — a structure received from the caller.
func factInvalidatesArena(pass *Pass, fd *ast.FuncDecl) bool {
	params := paramObjects(pass, fd)
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && isArenaMethod(pass, call, arenaInvalidators) {
			if obj := rootIdentObj(pass, sel.X); obj != nil {
				if _, isParam := params[obj]; isParam {
					found = true
					return false
				}
			}
		}
		// Transitive: calling a known invalidator with a caller-supplied
		// structure (as receiver or argument).
		if fn := calleeFunc(pass, call); fn != nil && pass.Facts.Of(fn).InvalidatesArena {
			exprs := make([]ast.Expr, 0, len(call.Args)+1)
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				exprs = append(exprs, sel.X)
			}
			exprs = append(exprs, call.Args...)
			for _, e := range exprs {
				if obj := rootIdentObj(pass, e); obj != nil {
					if _, isParam := params[obj]; isParam {
						found = true
						return false
					}
				}
			}
		}
		return true
	})
	return found
}

// factArenaProducer: tail-call wrappers around an arena producer
// (`return b.NextBucket()` and friends) inherit the producer's binding
// shape.
func factArenaProducer(pass *Pass, fd *ast.FuncDecl) (results, sliceIdx int) {
	for _, stmt := range fd.Body.List {
		ret, ok := stmt.(*ast.ReturnStmt)
		if !ok || len(ret.Results) != 1 {
			continue
		}
		call, ok := ret.Results[0].(*ast.CallExpr)
		if !ok {
			continue
		}
		if p, ok := isArenaProducer(pass, call); ok {
			return p.results, p.sliceIdx
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if ff := pass.Facts.Of(fn); ff.ArenaResults > 0 {
				return ff.ArenaResults, ff.ArenaSliceIdx
			}
		}
	}
	return 0, 0
}

// calleeFunc resolves a call's callee to a *types.Func (declared
// function or method; nil for builtins, conversions, and func values).
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
	case *ast.IndexListExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// factReleasesScratch: scratch-typed parameters discharged on every
// panic-free path (by Release, by handing off, or by returning).
func factReleasesScratch(pass *Pass, fd *ast.FuncDecl) []int {
	var out []int
	for obj, idx := range paramObjects(pass, fd) {
		if idx < 0 || !isScratchType(obj.Type()) {
			continue
		}
		w := &scratchWalker{pass: pass}
		ob := &scratchObligation{obj: obj, getPos: fd}
		w.all = append(w.all, ob)
		held := map[types.Object]*scratchObligation{obj: ob}
		if !w.walkStmts(fd.Body.List, held) {
			w.checkHeld(held, fd.Body.End())
		}
		if !ob.leaked {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// factCancelsParams: context.CancelFunc parameters invoked or deferred
// on every path.
func factCancelsParams(pass *Pass, fd *ast.FuncDecl) []int {
	var out []int
	for obj, idx := range paramObjects(pass, fd) {
		if idx < 0 || !isCancelFuncType(obj.Type()) {
			continue
		}
		if dischargedOnAllPaths(pass, fd.Body, obj, func(call *ast.CallExpr) bool {
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			return ok && pass.TypesInfo.Uses[id] == obj
		}) {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

// isCancelFuncType reports whether t is context.CancelFunc (or an
// alias resolving to it).
func isCancelFuncType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "CancelFunc" && named.Obj().Pkg().Path() == "context"
}

// factSemaReleaseParams: parameters on which release()/Release() is
// called on every path (the pure cross-function release helper).
func factSemaReleaseParams(pass *Pass, fd *ast.FuncDecl) []int {
	var out []int
	for obj, idx := range paramObjects(pass, fd) {
		if idx < 0 {
			continue
		}
		// Only parameters that actually get released somewhere are
		// candidates; dischargedOnAllPaths then checks path coverage.
		if !containsReleaseOn(pass, fd.Body, obj) {
			continue
		}
		if dischargedOnAllPaths(pass, fd.Body, obj, func(call *ast.CallExpr) bool {
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok || !isReleaseName(sel.Sel.Name) {
				return false
			}
			return rootIdentObj(pass, sel.X) == obj
		}) {
			out = append(out, idx)
		}
	}
	sort.Ints(out)
	return out
}

func isReleaseName(name string) bool { return name == "release" || name == "Release" }

func containsReleaseOn(pass *Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
			isReleaseName(sel.Sel.Name) && rootIdentObj(pass, sel.X) == obj {
			found = true
			return false
		}
		return true
	})
	return found
}

// factReleaseResult: admit-style helpers — the body acquires a
// semaphore (a call to a method named acquire/Acquire, or to a helper
// that itself has the fact) and some return statement carries a func
// literal whose body releases one. The closure's result index, plus
// the companion bool/error results, become the caller's obligation
// shape.
func factReleaseResult(pass *Pass, fd *ast.FuncDecl) (release, okIdx, errIdx int) {
	if fd.Type.Results == nil {
		return 0, 0, 0
	}
	acquires := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "acquire" || sel.Sel.Name == "Acquire" {
				acquires = true
				return false
			}
		}
		if fn := calleeFunc(pass, call); fn != nil && pass.Facts.Of(fn).ReleaseResult > 0 {
			acquires = true
			return false
		}
		return true
	})
	if !acquires {
		return 0, 0, 0
	}
	// Flatten the result types to locate companions.
	var resultTypes []types.Type
	for _, field := range fd.Type.Results.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			resultTypes = append(resultTypes, tv.Type)
		}
	}
	for _, stmt := range returnStmts(fd.Body) {
		if len(stmt.Results) != len(resultTypes) {
			continue
		}
		for i, res := range stmt.Results {
			lit, ok := ast.Unparen(res).(*ast.FuncLit)
			if !ok || !funcLitReleases(lit) {
				continue
			}
			release = i + 1
			for j, t := range resultTypes {
				if j == i {
					continue
				}
				if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
					okIdx = j + 1
				}
				if isErrorType(t) {
					errIdx = j + 1
				}
			}
			return release, okIdx, errIdx
		}
	}
	return 0, 0, 0
}

func returnStmts(body *ast.BlockStmt) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // a literal's returns are its own
		}
		if ret, ok := n.(*ast.ReturnStmt); ok {
			out = append(out, ret)
		}
		return true
	})
	return out
}

// funcLitReleases reports whether the literal's body contains a call
// to a method named release/Release.
func funcLitReleases(lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isReleaseName(sel.Sel.Name) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// factMetricNameFunc: single-string-result functions whose every
// return resolves into the well-known-names registry (directly
// constant, or through another fact-carrying helper).
func factMetricNameFunc(pass *Pass, fd *ast.FuncDecl, registry map[string]bool) bool {
	if len(registry) == 0 || fd.Type.Results == nil || fd.Type.Results.NumFields() != 1 {
		return false
	}
	rets := returnStmts(fd.Body)
	if len(rets) == 0 {
		return false
	}
	for _, ret := range rets {
		if len(ret.Results) != 1 {
			return false
		}
		res := ret.Results[0]
		if tv, ok := pass.TypesInfo.Types[res]; ok && tv.Value != nil {
			if s, err := strconvUnquoteConst(tv.Value.ExactString()); err == nil && registry[s] {
				continue
			}
			return false
		}
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			if fn := calleeFunc(pass, call); fn != nil && pass.Facts.Of(fn).MetricNameFunc {
				continue
			}
		}
		return false
	}
	return true
}

// dischargedOnAllPaths runs the shared path walker over body with one
// pre-held obligation on obj, discharged by any call matching
// isDischarge; it reports whether every panic-free exit path has
// discharged it.
func dischargedOnAllPaths(pass *Pass, body *ast.BlockStmt, obj types.Object, isDischarge func(*ast.CallExpr) bool) bool {
	leaked := false
	scan := func(n ast.Node, held pathState) {
		if n == nil {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && isDischarge(call) {
				delete(held, obj)
			}
			return true
		})
	}
	sim := &pathSim{
		pass:    pass,
		onStmt:  func(s ast.Stmt, held pathState) { scan(s, held) },
		onDefer: func(call *ast.CallExpr, held pathState) { scan(call, held) },
		onExpr:  func(e ast.Expr, held pathState) { scan(e, held) },
		onExit: func(ret *ast.ReturnStmt, pos token.Pos, held pathState) {
			if _, ok := held[obj]; ok {
				leaked = true
			}
		},
	}
	held := pathState{obj: &pathOb{info: &obInfo{}}}
	sim.walkBody(body, held)
	return !leaked
}
