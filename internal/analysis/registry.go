package analysis

// All returns every analyzer in the suite, in reporting order. The
// julvet multichecker runs exactly this list; the stock toolchain
// passes with overlapping concerns (copylocks, atomic, nilfunc, ...)
// run alongside via `go vet` in `make lint`.
func All() []*Analyzer {
	return []*Analyzer{
		AtomicMix,
		AtomicAlign,
		ArenaAlias,
		ScratchPair,
		TagDrift,
		NoRandTime,
		PanicGuard,
		CtxGuard,
		SemaBalance,
		ObsNames,
		StatusMap,
	}
}

// ByName resolves a comma-separated analyzer subset; unknown names
// return nil and the full list of valid names.
func ByName(names []string) ([]*Analyzer, []string) {
	valid := map[string]*Analyzer{}
	var validNames []string
	for _, a := range All() {
		valid[a.Name] = a
		validNames = append(validNames, a.Name)
	}
	var out []*Analyzer
	for _, n := range names {
		a, ok := valid[n]
		if !ok {
			return nil, validNames
		}
		out = append(out, a)
	}
	return out, validNames
}
