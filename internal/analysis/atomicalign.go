package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicAlign is the suite's port of the x/tools atomicalign pass
// (this repository vendors no external modules, so the stock analyzer
// cannot be imported): 64-bit sync/atomic operations require their
// address to be 64-bit aligned, which 32-bit platforms (386, arm,
// mips) only guarantee for the first word of an allocation. A 64-bit
// struct field at a non-8-aligned offset under 32-bit layout rules
// panics at runtime on those platforms.
//
// The check computes field offsets with a 32-bit sizes model
// (WordSize 4, the worst case) regardless of the host, so an amd64
// development machine still catches layouts that would break a 32-bit
// build. Fields inside structs that are never atomically accessed are
// not checked.
var AtomicAlign = &Analyzer{
	Name: "atomicalign",
	Doc:  "flags 64-bit atomic operations on fields not 64-bit aligned under 32-bit layout",
	Run:  runAtomicAlign,
}

// atomic64Funcs are the sync/atomic entry points operating on 64-bit
// cells through their first argument.
var atomic64Funcs = map[string]bool{
	"AddInt64": true, "AddUint64": true,
	"LoadInt64": true, "LoadUint64": true,
	"StoreInt64": true, "StoreUint64": true,
	"SwapInt64": true, "SwapUint64": true,
	"CompareAndSwapInt64": true, "CompareAndSwapUint64": true,
}

// sizes32 is the worst-case 32-bit layout model (386: 4-byte words,
// 64-bit values aligned to 4). Built explicitly rather than via
// SizesFor, whose concrete return type is unexported and cannot be
// asked for field offsets directly.
var sizes32 = &types.StdSizes{WordSize: 4, MaxAlign: 4}

func runAtomicAlign(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || !atomic64Funcs[fn.Name()] {
				return true
			}
			unary, ok := call.Args[0].(*ast.UnaryExpr)
			if !ok || unary.Op != token.AND {
				return true
			}
			fieldSel, ok := unary.X.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.TypesInfo.Selections[fieldSel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			off, known := fieldOffset32(selection)
			if known && off%8 != 0 {
				pass.Reportf(call.Pos(),
					"%s.%s: 64-bit atomic access to field %s at 32-bit offset %d (not 8-aligned); move the field to the front of the struct or pad before it",
					fn.Pkg().Name(), fn.Name(), selection.Obj().Name(), off)
			}
			return true
		})
	}
	return nil
}

// fieldOffset32 computes the selected field's byte offset from the
// start of its outermost struct under the 32-bit layout. The embedded
// path is walked index by index so promoted fields are handled.
func fieldOffset32(sel *types.Selection) (int64, bool) {
	t := sel.Recv()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	var total int64
	for _, idx := range sel.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return 0, false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := sizes32.Offsetsof(fields)
		total += offsets[idx]
		t = st.Field(idx).Type()
		if ptr, ok := t.Underlying().(*types.Pointer); ok {
			// A pointer hop resets the offset: the pointee is its own
			// allocation, whose base alignment we cannot see. Assume
			// allocator-aligned (8 even on 32-bit for new(T)) and
			// restart.
			t = ptr.Elem()
			total = 0
		}
	}
	return total, true
}
