package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ArenaAlias enforces the bucket arena-aliasing contract: the
// identifier slices returned by Structure.NextBucket and the fused
// protocol (Fused.NextBucketFused, Fused.DrainLazy) alias an arena
// owned by the bucket structure and are overwritten by the next
// extraction, drain, or update call. A caller that reads such a slice
// after a subsequent arena call on any structure in the same function
// must have copied it out explicitly first (append onto a fresh or
// truncated slice, copy, or slices.Clone).
//
// The check is lexical within one function body: a binding
// `id, ids := b.NextBucket()` (or the NextBucketFused / DrainLazy
// forms) arms the slice; any later call to a method in
// arenaInvalidators expires it; a subsequent use of an expired slice
// is reported unless the use is itself a recognized copy or the
// variable was reassigned in between. Taint follows plain aliasing
// assignments (`saved = ids`). Loops are handled by the source order
// of the loop body, which matches every peeling loop and fused wave
// loop in this repository (extract at the top, consume within the
// round); the fixtures pin the supported shapes.
var ArenaAlias = &Analyzer{
	Name: "arenaalias",
	Doc:  "flags uses of bucket arena slices (NextBucket/NextBucketFused/DrainLazy) after the arena has been invalidated",
	Run:  runArenaAlias,
}

// arenaProducers maps each method that returns an arena-aliased slice
// to the shape of the binding assignment: how many values the call
// produces and which of them is the slice.
var arenaProducers = map[string]struct {
	results  int // assignment LHS arity of the producing form
	sliceIdx int // index of the arena slice among the results
}{
	"NextBucket":      {results: 2, sliceIdx: 1},
	"NextBucketFused": {results: 3, sliceIdx: 2},
	"DrainLazy":       {results: 1, sliceIdx: 0},
}

// arenaInvalidators names the methods whose call flips the arena: every
// producer (the next extraction or drain recompacts into the same
// buffer) plus UpdateBuckets (implementations share scratch with the
// update path). The fused-protocol entries are load-bearing: the
// mutation test in analyzers_test.go removes them and proves the fused
// fixtures' violations go undetected.
var arenaInvalidators = []string{"NextBucket", "NextBucketFused", "DrainLazy", "UpdateBuckets"}

// arenaMethodName returns the method name of a selector call whose
// callee resolves to a function. Matching is by method name — loose
// enough to cover the bucket package, the public API wrappers, and the
// fixtures, but tight enough to skip unrelated calls.
func arenaMethodName(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	return fn.Name(), true
}

func isArenaMethod(pass *Pass, call *ast.CallExpr, names []string) bool {
	got, ok := arenaMethodName(pass, call)
	if !ok {
		return false
	}
	for _, name := range names {
		if got == name {
			return true
		}
	}
	return false
}

// isArenaProducer reports whether call produces an arena slice and, if
// so, the shape of its binding assignment.
func isArenaProducer(pass *Pass, call *ast.CallExpr) (struct {
	results  int
	sliceIdx int
}, bool) {
	name, ok := arenaMethodName(pass, call)
	if !ok {
		var zero struct {
			results  int
			sliceIdx int
		}
		return zero, false
	}
	p, ok := arenaProducers[name]
	return p, ok
}

// arenaEvent is one position-ordered event inside a function body.
type arenaEvent struct {
	pos  token.Pos
	kind int // 0 = invalidation call, 1 = binding, 2 = reassign, 3 = use
	obj  types.Object
	node ast.Node
	// aliasFrom, for bindings created by plain aliasing assignment.
	aliasFrom types.Object
	// copying marks a use inside a recognized copy construct.
	copying bool
}

// At equal positions the kind order decides: an invalidating call
// expires before the binding at the same call re-arms, and a
// reassignment's clear covers the LHS mention (recorded by go/types as
// a use at the statement's own position) before the use is simulated.
const (
	evInvalidate = iota
	evBind
	evClear
	evUse
)

func runArenaAlias(pass *Pass) error {
	// Each top-level function is analyzed as one lexical stream,
	// including its nested closures: the parallel-loop closures in the
	// peeling algorithms execute synchronously at their lexical
	// position, so a closure reading an expired slice is a use at that
	// position.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkArenaBody(pass, fd.Body)
			}
		}
	}
	return nil
}

func checkArenaBody(pass *Pass, body *ast.BlockStmt) {
	var events []arenaEvent

	// Collect bindings: `id, ids := x.NextBucket()`,
	// `first, last, ids := x.NextBucketFused(...)`, `lz := x.DrainLazy()`
	// (any assign token).
	bound := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		p, ok := isArenaProducer(pass, call)
		if !ok {
			// Interprocedural: a unit function that tail-returns a
			// producer (ArenaResults fact) arms an arena slice with the
			// same shape.
			if fn := calleeFunc(pass, call); fn != nil {
				if ff := pass.Facts.Of(fn); ff.ArenaResults > 0 {
					p = struct {
						results  int
						sliceIdx int
					}{ff.ArenaResults, ff.ArenaSliceIdx}
					ok = true
				}
			}
		}
		if !ok {
			return true
		}
		// The arena slice sits at a fixed result index; any other LHS
		// arity would not type-check for the producing form.
		if len(asg.Lhs) != p.results {
			return true
		}
		if id, ok := asg.Lhs[p.sliceIdx].(*ast.Ident); ok && id.Name != "_" {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				// The binding is recorded at the end of the call so it
				// sorts after the call's own invalidation event: the
				// call expires older slices, then arms this one.
				events = append(events, arenaEvent{pos: call.End(), kind: evBind, obj: obj, node: asg})
				bound[obj] = true
			}
		}
		return true
	})
	if len(bound) == 0 {
		return
	}

	// Collect invalidations, aliasing, clears, and uses.
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.CallExpr:
			if isArenaMethod(pass, s, arenaInvalidators) || isFactArenaInvalidator(pass, s) {
				// The call expires previously armed slices. Recorded at
				// the call's end, not its start: the call's own
				// arguments — in particular the update closure that
				// reads the extracted ids while UpdateBuckets processes
				// them — run before the arena flips, so uses lexically
				// inside the call are still valid. (For a binding call
				// the evBind at the same end position sorts after this
				// event by kind and re-arms the slice.)
				events = append(events, arenaEvent{pos: s.End(), kind: evInvalidate, node: s})
			}
		case *ast.AssignStmt:
			// Reassignment of a bound variable clears its taint unless
			// the RHS is itself a tainted alias.
			for i, lhs := range s.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Uses[id]
				if obj == nil {
					obj = pass.TypesInfo.Defs[id]
				}
				if obj == nil || !bound[obj] {
					// Plain aliasing: `saved := ids` propagates taint.
					if obj != nil && i < len(s.Rhs) {
						if from, ok := aliasSource(pass, s.Rhs[i], bound); ok {
							events = append(events, arenaEvent{pos: s.Pos(), kind: evBind, obj: obj, aliasFrom: from, node: s})
							bound[obj] = true
						}
					}
					continue
				}
				if i < len(s.Rhs) {
					if from, ok := aliasSource(pass, s.Rhs[i], bound); ok && from != obj {
						events = append(events, arenaEvent{pos: s.Pos(), kind: evBind, obj: obj, aliasFrom: from, node: s})
						continue
					}
				}
				// Reassignment from a producer call also lands here: the
				// clear at the statement start covers the LHS mention
				// (which go/types records as a use), and the evBind the
				// binding pass recorded at the call's end re-arms the
				// variable afterwards.
				events = append(events, arenaEvent{pos: s.Pos(), kind: evClear, obj: obj, node: s})
			}
		}
		return true
	})

	// Uses of bound objects.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !bound[obj] {
			return true
		}
		events = append(events, arenaEvent{pos: id.Pos(), kind: evUse, obj: obj, node: id, copying: benignUse(body, id)})
		return true
	})

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].pos != events[j].pos {
			return events[i].pos < events[j].pos
		}
		return events[i].kind < events[j].kind
	})

	// Linear simulation.
	type state struct {
		armed   bool
		expired bool
	}
	st := map[types.Object]*state{}
	reported := map[types.Object]bool{}
	for _, ev := range events {
		switch ev.kind {
		case evInvalidate:
			for _, s := range st {
				if s.armed {
					s.expired = true
				}
			}
		case evBind:
			if ev.aliasFrom != nil {
				// The alias inherits the source's state at this point.
				if src := st[ev.aliasFrom]; src != nil {
					st[ev.obj] = &state{armed: src.armed, expired: src.expired}
				} else {
					st[ev.obj] = &state{}
				}
				continue
			}
			st[ev.obj] = &state{armed: true}
		case evClear:
			st[ev.obj] = &state{}
		case evUse:
			s := st[ev.obj]
			if s == nil || !s.armed || !s.expired || reported[ev.obj] {
				continue
			}
			if ev.copying {
				continue
			}
			reported[ev.obj] = true
			pass.Reportf(ev.pos,
				"%s aliases the bucket arena and a later NextBucket/NextBucketFused/DrainLazy/UpdateBuckets call has since invalidated it; copy the slice out before the next call",
				ev.obj.Name())
		}
	}
}

// isFactArenaInvalidator reports a call to a unit function that the
// fact store knows invalidates a structure handed to it (it calls
// NextBucket/UpdateBuckets/... on a receiver or parameter, directly or
// transitively) — such a call expires armed arenas in this body exactly
// like a direct invalidator call.
func isFactArenaInvalidator(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && pass.InUnit(fn) && pass.Facts.Of(fn).InvalidatesArena
}

// aliasSource reports whether expr is a plain alias of a bound slice
// variable (the bare identifier, or a full-slice expression of it).
func aliasSource(pass *Pass, expr ast.Expr, bound map[types.Object]bool) (types.Object, bool) {
	switch e := expr.(type) {
	case *ast.Ident:
		if obj := pass.TypesInfo.Uses[e]; obj != nil && bound[obj] {
			return obj, true
		}
	case *ast.SliceExpr:
		return aliasSource(pass, e.X, bound)
	}
	return nil, false
}

// benignUse reports whether the identifier use cannot read the arena's
// backing array: the recognized copy-out idioms (`append(dst, ids...)`,
// `copy(dst, ids)`, `slices.Clone(ids)` — the explicit copies the
// contract asks for) and header-only reads (`len(ids)`, `cap(ids)`,
// `ids == nil`), which touch the slice header, not the expired memory.
func benignUse(body *ast.BlockStmt, id *ast.Ident) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
		switch name {
		case "append", "copy", "Clone":
			for _, arg := range call.Args {
				if containsIdent(arg, id) {
					found = true
					return false
				}
			}
		case "len", "cap":
			// Only the direct operand: len(ids) is header-only, but
			// len(f(ids)) still hands the arena to f.
			if len(call.Args) == 1 {
				if arg, ok := call.Args[0].(*ast.Ident); ok && arg == id {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func containsIdent(e ast.Expr, id *ast.Ident) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if n == ast.Node(id) {
			found = true
			return false
		}
		return true
	})
	return found
}
