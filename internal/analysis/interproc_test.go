package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDiags runs one analyzer over the fixture packages matching
// prefix, without want-comment checking, returning diagnosed lines
// keyed by base file name.
func fixtureDiags(t *testing.T, a *Analyzer, prefix string) map[string][]int {
	t.Helper()
	all, err := LoadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, pkg := range all {
		if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %q", prefix)
	}
	out := map[string][]int{}
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{a}) {
		base := filepath.Base(d.Pos.Filename)
		out[base] = append(out[base], d.Pos.Line)
	}
	return out
}

// TestInterprocFactsLoadBearing is the mutation test for the
// interprocedural layer as a whole: flipping factsEnabled off must
// silence exactly the diagnostics that exist only because obligations
// were followed through helper calls (and, for obsnames, re-introduce
// the false positive the MetricNameFunc fact removes), while every
// purely lexical diagnostic keeps firing. If an analyzer stopped
// consulting the fact store, the "with facts" column would not move
// when the store is disabled and this test would fail.
func TestInterprocFactsLoadBearing(t *testing.T) {
	cases := []struct {
		analyzer *Analyzer
		prefix   string
		file     string
		with     int // diagnostics with facts enabled
		without  int // diagnostics with facts disabled
	}{
		// Helper-mediated leaks disappear: without facts a helper call
		// is a conservative ownership transfer.
		{ArenaAlias, "arenaalias", "interproc.go", 3, 0},
		{ScratchPair, "scratchpair", "interproc.go", 2, 0},
		{PanicGuard, "panicguard", "interproc.go", 3, 0},
		// ctxguard: the two helper-mediated leaks vanish; the direct
		// leak and the discard in a.go are lexical and stay.
		{CtxGuard, "ctxguard", "a.go", 3, 2},
		{CtxGuard, "ctxguard", "cross.go", 1, 0},
		// The lifetime direction does not use facts at all.
		{CtxGuard, "ctxguard", "store.go", 3, 3},
		// semabalance: direct acquires are lexical (a.go unchanged);
		// the SemaReleaseParams and admit-style obligations are not.
		{SemaBalance, "semabalance", "a.go", 2, 2},
		{SemaBalance, "semabalance", "helpers.go", 1, 0},
		{SemaBalance, "semabalance", "admit.go", 2, 0},
		// obsnames: without the MetricNameFunc fact the helper call
		// becomes a finding — the fact REMOVES a diagnostic.
		{ObsNames, "obsnames", "a.go", 3, 4},
		{ObsNames, "obsnames", "obs.go", 1, 1},
		// The lexical fixtures must not move at all.
		{ArenaAlias, "arenaalias", "a.go", 4, 4},
		{ScratchPair, "scratchpair", "a.go", 2, 2},
		{PanicGuard, "panicguard", "parallel.go", 4, 4},
	}
	run := func(enabled bool) map[string]map[string][]int {
		t.Helper()
		factsEnabled = enabled
		defer func() { factsEnabled = true }()
		out := map[string]map[string][]int{}
		for _, c := range cases {
			if _, ok := out[c.prefix+"/"+c.analyzer.Name]; !ok {
				out[c.prefix+"/"+c.analyzer.Name] = fixtureDiags(t, c.analyzer, c.prefix)
			}
		}
		return out
	}
	with := run(true)
	without := run(false)
	for _, c := range cases {
		key := c.prefix + "/" + c.analyzer.Name
		if got := len(with[key][c.file]); got != c.with {
			t.Errorf("%s on %s/%s with facts: %d diagnostics at %v, want %d",
				c.analyzer.Name, c.prefix, c.file, got, with[key][c.file], c.with)
		}
		if got := len(without[key][c.file]); got != c.without {
			t.Errorf("%s on %s/%s without facts: %d diagnostics at %v, want %d",
				c.analyzer.Name, c.prefix, c.file, got, without[key][c.file], c.without)
		}
	}
}

// fixtureUnit loads the whole fixture tree into one Unit.
func fixtureUnit(t *testing.T) *Unit {
	t.Helper()
	pkgs, err := LoadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	return NewUnit(pkgs)
}

// TestComputedFacts pins the fact extractors against the fixture
// helpers: each interprocedural fixture relies on exactly these
// entries, so a silently-empty fact store cannot pass.
func TestComputedFacts(t *testing.T) {
	u := fixtureUnit(t)
	facts := u.Facts.funcs
	check := func(key string, want func(FuncFacts) bool, desc string) {
		t.Helper()
		f, ok := facts[key]
		if !ok {
			t.Errorf("no facts for %s (want %s); have keys %v", key, desc, factKeys(facts))
			return
		}
		if !want(f) {
			t.Errorf("facts for %s = %+v, want %s", key, f, desc)
		}
	}
	check("semabalance/serve.(server).admit",
		func(f FuncFacts) bool { return f.ReleaseResult == 1 && f.OKResult == 2 },
		"ReleaseResult=1 OKResult=2")
	check("ctxguard/helper.Stop",
		func(f FuncFacts) bool { return len(f.CancelsParams) == 1 && f.CancelsParams[0] == 0 },
		"CancelsParams=[0]")
	check("scratchpair/helpers.ReleaseInts",
		func(f FuncFacts) bool { return len(f.ReleasesScratch) == 1 && f.ReleasesScratch[0] == 0 },
		"ReleasesScratch=[0]")
	check("arenaalias/bucketstub.DrainNext",
		func(f FuncFacts) bool { return f.ArenaResults == 2 && f.ArenaSliceIdx == 1 },
		"ArenaResults=2 ArenaSliceIdx=1")
	check("arenaalias/interproc.touchChain",
		func(f FuncFacts) bool { return f.InvalidatesArena },
		"InvalidatesArena (two-hop fixpoint)")
	check("panicguard/guards.RunGuarded",
		func(f FuncFacts) bool { return f.InstallsRecover },
		"InstallsRecover")
	check("obsnames/a.helperName",
		func(f FuncFacts) bool { return f.MetricNameFunc },
		"MetricNameFunc")
	check("semabalance/serve.finish",
		func(f FuncFacts) bool { return len(f.SemaReleaseParams) == 1 && f.SemaReleaseParams[0] == 0 },
		"SemaReleaseParams=[0]")
	// Negative space: helpers that provably do NOT discharge must have
	// no facts — they are what give the analyzers teeth.
	for _, key := range []string{
		"ctxguard/helper.Keep",
		"semabalance/serve.note",
		"scratchpair/helpers.Fill",
		"panicguard/guards.RunBare",
	} {
		if f, ok := facts[key]; ok {
			t.Errorf("unexpected facts for %s: %+v (the fixture relies on its absence)", key, f)
		}
	}
}

func factKeys(m map[string]FuncFacts) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestFactsRoundTrip pins the wire format: exporting each fixture
// package's facts and importing them into a fresh store must
// reproduce the entries exactly. The analyzers already only read
// round-tripped facts (NewUnit serializes per package before the store
// becomes visible); this test makes a format regression fail loudly
// rather than as a silent loss of interprocedural diagnostics.
func TestFactsRoundTrip(t *testing.T) {
	u := fixtureUnit(t)
	for _, pkg := range u.Pkgs {
		data, err := u.Facts.ExportPackage(pkg.Path)
		if err != nil {
			t.Fatalf("exporting %s: %v", pkg.Path, err)
		}
		fresh := newFacts()
		if err := fresh.ImportPackage(data); err != nil {
			t.Fatalf("importing %s: %v", pkg.Path, err)
		}
		for k, f := range u.Facts.funcs {
			if !strings.HasPrefix(k, pkg.Path+".") {
				continue
			}
			got, ok := fresh.funcs[k]
			if !ok {
				t.Errorf("%s: fact %s lost in the round trip", pkg.Path, k)
				continue
			}
			if !got.equal(f) {
				t.Errorf("%s: fact %s changed in the round trip: %+v -> %+v", pkg.Path, k, f, got)
			}
		}
		for k := range fresh.funcs {
			if _, ok := u.Facts.funcs[k]; !ok {
				t.Errorf("%s: round trip invented fact %s", pkg.Path, k)
			}
		}
	}
}

// TestRealRepoFacts loads two real packages through the export-data
// loader and asserts the facts the serving contracts depend on. This
// is the anti-vacuity check: `julvet ./...` exiting clean is only
// meaningful if the engine actually derives these summaries from the
// production code.
func TestRealRepoFacts(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes go list")
	}
	pkgs, err := Load(LoadConfig{}, "julienne/internal/serve", "julienne/cmd/servedload")
	if err != nil {
		t.Fatalf("loading real packages: %v", err)
	}
	u := NewUnit(pkgs)
	admit, ok := u.Facts.funcs["julienne/internal/serve.(Server).admit"]
	if !ok || admit.ReleaseResult != 1 || admit.OKResult != 2 {
		t.Errorf("serve.(Server).admit facts = %+v, want ReleaseResult=1 OKResult=2 (got=%v)", admit, ok)
	}
	hist, ok := u.Facts.funcs["julienne/cmd/servedload.histFor"]
	if !ok || !hist.MetricNameFunc {
		t.Errorf("servedload.histFor facts = %+v, want MetricNameFunc (got=%v)", hist, ok)
	}
	if len(u.registry) == 0 {
		t.Error("metric-name registry is empty for the real unit; obsnames would be vacuous")
	}
}

// TestUnusedDirectiveDriver pins the driver check: a directive whose
// analyzer ran but suppressed nothing is stale; a directive naming an
// unknown analyzer is always reported; a live directive is silent.
func TestUnusedDirectiveDriver(t *testing.T) {
	all, err := LoadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, pkg := range all {
		if strings.HasPrefix(pkg.Path, "unuseddirective") {
			pkgs = append(pkgs, pkg)
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("no unuseddirective fixture packages")
	}

	diags := RunAnalyzers(pkgs, []*Analyzer{NoRandTime})
	var stale, unknown, other []Diagnostic
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "suppresses nothing"):
			stale = append(stale, d)
		case strings.Contains(d.Message, "unknown analyzer"):
			unknown = append(unknown, d)
		default:
			other = append(other, d)
		}
	}
	if len(other) != 0 {
		t.Errorf("unexpected diagnostics: %v", other)
	}
	if len(stale) != 1 || stale[0].Analyzer != "driver" || !strings.Contains(stale[0].Message, "julvet/norandtime") {
		t.Errorf("stale-directive diagnostics = %v, want one driver diagnostic for julvet/norandtime", stale)
	}
	if len(unknown) != 1 || !strings.Contains(unknown[0].Message, "julvet/nosuchanalyzer") {
		t.Errorf("unknown-analyzer diagnostics = %v, want one for julvet/nosuchanalyzer", unknown)
	}

	// Run-set filtering: with norandtime not running, its directives
	// cannot be judged stale — only the unknown name is reported.
	diags = RunAnalyzers(pkgs, []*Analyzer{ScratchPair})
	if len(diags) != 1 || !strings.Contains(diags[0].Message, "unknown analyzer") {
		t.Errorf("diagnostics with norandtime excluded = %v, want only the unknown-analyzer one", diags)
	}
}
