package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ScratchPair enforces the pooled-scratch ownership contract of
// internal/parallel: every buffer borrowed with GetScratch (or a
// helper returning *parallel.Scratch[T], like ligra's workerParts)
// must be Released on every return path of the borrowing function, or
// explicitly handed off (returned, stored, or passed to another
// function, which transfers ownership). A buffer that misses a Release
// on an early-return path is not a leak — the pool is backed by the
// GC — but it silently forfeits the allocation-free steady state that
// PR 4's AllocsPerRun regressions pin, and the regression only fires
// on the paths the benchmarks happen to take.
//
// The analysis walks the function body as a branch tree: an obligation
// is discharged by s.Release(), defer s.Release(), or an ownership
// transfer, and every return statement (and a reachable fall-off at
// the end of the function) is checked against the obligations still
// held on that path. Panics are out of scope (the pool survives
// dropped buffers; the contract is about panic-free paths).
var ScratchPair = &Analyzer{
	Name: "scratchpair",
	Doc:  "flags scratch buffers from parallel.GetScratch not Released on every return path",
	Run:  runScratchPair,
}

func runScratchPair(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body == nil {
				return true
			}
			w := &scratchWalker{pass: pass}
			held := map[types.Object]*scratchObligation{}
			terminated := w.walkStmts(body.List, held)
			if !terminated {
				w.checkHeld(held, body.End())
			}
			w.reportLeaks()
			return true
		})
	}
	return nil
}

// scratchObligation tracks one borrowed buffer.
type scratchObligation struct {
	obj    types.Object
	getPos ast.Node // the Get call, where the diagnostic is anchored
	leaked bool     // some path reached an exit while held
}

type scratchWalker struct {
	pass *Pass
	all  []*scratchObligation
}

// isScratchType reports whether t is *parallel.Scratch[T] (for any
// package spelled "parallel", so the fixtures can carry a stub).
func isScratchType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Scratch" && named.Obj().Pkg().Name() == "parallel"
}

// walkStmts interprets a statement list, mutating held in place.
// It returns true if the list definitely terminates (return / panic),
// so the caller knows the fall-through path is dead.
func (w *scratchWalker) walkStmts(stmts []ast.Stmt, held map[types.Object]*scratchObligation) bool {
	for _, s := range stmts {
		if w.walkStmt(s, held) {
			return true
		}
	}
	return false
}

func (w *scratchWalker) walkStmt(s ast.Stmt, held map[types.Object]*scratchObligation) bool {
	switch st := s.(type) {
	case *ast.AssignStmt:
		w.scanExprs(st.Rhs, held)
		for i, lhs := range st.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			obj := w.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = w.pass.TypesInfo.Uses[id]
			}
			if obj == nil || !isScratchType(obj.Type()) {
				continue
			}
			if i < len(st.Rhs) || len(st.Rhs) == 1 {
				rhs := st.Rhs[min(i, len(st.Rhs)-1)]
				if call, ok := rhs.(*ast.CallExpr); ok && w.isScratchSource(call) {
					ob := &scratchObligation{obj: obj, getPos: call}
					held[obj] = ob
					w.all = append(w.all, ob)
					continue
				}
			}
			// Reassigned from something else: the old obligation (if
			// any) is overwritten — treat as transfer to avoid noise.
			delete(held, obj)
		}
		return false
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			if obj := w.releaseTarget(call); obj != nil {
				delete(held, obj)
				return false
			}
		}
		w.scanExprs([]ast.Expr{st.X}, held)
		return false
	case *ast.DeferStmt:
		if obj := w.releaseTarget(st.Call); obj != nil {
			delete(held, obj)
			return false
		}
		w.scanExprs([]ast.Expr{st.Call}, held)
		return false
	case *ast.ReturnStmt:
		// Returning a scratch transfers ownership to the caller.
		for _, r := range st.Results {
			if obj := w.identObj(r); obj != nil {
				delete(held, obj)
			}
		}
		w.scanExprs(st.Results, held)
		w.checkHeld(held, st.Pos())
		return true
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		thenHeld := copyHeld(held)
		thenTerm := w.walkStmts(st.Body.List, thenHeld)
		elseHeld := copyHeld(held)
		elseTerm := false
		if st.Else != nil {
			switch e := st.Else.(type) {
			case *ast.BlockStmt:
				elseTerm = w.walkStmts(e.List, elseHeld)
			case *ast.IfStmt:
				elseTerm = w.walkStmt(e, elseHeld)
			}
		}
		mergeBranches(held, thenHeld, thenTerm, elseHeld, elseTerm)
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return w.walkStmts(st.List, held)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, held)
		}
		bodyHeld := copyHeld(held)
		w.walkStmts(st.Body.List, bodyHeld)
		mergeInto(held, bodyHeld)
		// A `for {}` with no condition only exits via return/break;
		// treat as non-terminating for simplicity.
		return false
	case *ast.RangeStmt:
		bodyHeld := copyHeld(held)
		w.walkStmts(st.Body.List, bodyHeld)
		mergeInto(held, bodyHeld)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		var bodies []*ast.BlockStmt
		var hasDefault bool
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				w.walkStmt(sw.Init, held)
			}
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		case *ast.TypeSwitchStmt:
			for _, c := range sw.Body.List {
				cc := c.(*ast.CaseClause)
				if cc.List == nil {
					hasDefault = true
				}
				bodies = append(bodies, &ast.BlockStmt{List: cc.Body})
			}
		case *ast.SelectStmt:
			hasDefault = true
			for _, c := range sw.Body.List {
				bodies = append(bodies, &ast.BlockStmt{List: c.(*ast.CommClause).Body})
			}
		}
		allTerm := len(bodies) > 0
		for _, b := range bodies {
			caseHeld := copyHeld(held)
			term := w.walkStmts(b.List, caseHeld)
			if !term {
				mergeInto(held, caseHeld)
				allTerm = false
			}
		}
		return allTerm && hasDefault
	case *ast.LabeledStmt:
		return w.walkStmt(st.Stmt, held)
	case *ast.GoStmt:
		w.scanExprs([]ast.Expr{st.Call}, held)
		return false
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.scanExprs(vs.Values, held)
				}
			}
		}
		return false
	default:
		return false
	}
}

// isScratchSource reports whether call borrows from the pool: a call
// to a function named GetScratch, or any call whose single result is
// *parallel.Scratch[T] (covering local helpers like workerParts).
func (w *scratchWalker) isScratchSource(call *ast.CallExpr) bool {
	if tv, ok := w.pass.TypesInfo.Types[call]; ok && isScratchType(tv.Type) {
		return true
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return strings.HasPrefix(fun.Name, "GetScratch")
	case *ast.SelectorExpr:
		return strings.HasPrefix(fun.Sel.Name, "GetScratch")
	case *ast.IndexExpr: // GetScratch[T](n)
		return w.isScratchSource(&ast.CallExpr{Fun: fun.X, Args: call.Args})
	}
	return false
}

// releaseTarget returns the scratch object released by `s.Release()`,
// or nil.
func (w *scratchWalker) releaseTarget(call *ast.CallExpr) types.Object {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil || !isScratchType(obj.Type()) {
		return nil
	}
	return obj
}

// scanExprs resolves scratch objects passed to calls. A callee outside
// the unit is an ownership transfer (old lexical behavior); a callee
// whose body the unit knows discharges the obligation only when its
// ReleasesScratch fact covers that parameter — a unit helper that
// provably keeps the scratch alive leaves the Release duty with the
// caller. Field selection (s.S) is a use, not a transfer.
func (w *scratchWalker) scanExprs(exprs []ast.Expr, held map[types.Object]*scratchObligation) {
	for _, e := range exprs {
		ast.Inspect(e, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(w.pass, call)
			for i, arg := range call.Args {
				obj := w.identObj(arg)
				if obj == nil {
					continue
				}
				if fn != nil && w.pass.InUnit(fn) {
					if intsContain(w.pass.Facts.Of(fn).ReleasesScratch, paramIndexFor(fn, i)) {
						delete(held, obj)
					}
					// else: the helper is known not to release it — the
					// obligation stays here.
				} else {
					delete(held, obj) // unknown callee: ownership transfer
				}
			}
			return true
		})
	}
}

func (w *scratchWalker) identObj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := w.pass.TypesInfo.Uses[id]
	if obj == nil || !isScratchType(obj.Type()) {
		return nil
	}
	return obj
}

// checkHeld marks every still-held obligation as leaking at this exit.
func (w *scratchWalker) checkHeld(held map[types.Object]*scratchObligation, _ token.Pos) {
	for _, ob := range held {
		ob.leaked = true
	}
}

func (w *scratchWalker) reportLeaks() {
	for _, ob := range w.all {
		if ob.leaked {
			w.pass.Reportf(ob.getPos.Pos(),
				"scratch buffer %s is not Released on every return path; add a Release (or defer) before each return",
				ob.obj.Name())
		}
	}
}

func copyHeld(held map[types.Object]*scratchObligation) map[types.Object]*scratchObligation {
	out := make(map[types.Object]*scratchObligation, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// mergeBranches recomputes held after an if/else: an obligation
// survives if any non-terminated continuation still holds it. With no
// else branch, elseHeld is the unmodified skip path.
func mergeBranches(held, thenHeld map[types.Object]*scratchObligation, thenTerm bool, elseHeld map[types.Object]*scratchObligation, elseTerm bool) {
	for k := range held {
		delete(held, k)
	}
	if !thenTerm {
		for k, v := range thenHeld {
			held[k] = v
		}
	}
	if !elseTerm {
		for k, v := range elseHeld {
			held[k] = v
		}
	}
}

// mergeInto adds obligations created inside a loop body that are still
// held when the body falls through (they persist past the loop).
func mergeInto(held, bodyHeld map[types.Object]*scratchObligation) {
	for k, v := range bodyHeld {
		held[k] = v
	}
	for k := range held {
		if _, ok := bodyHeld[k]; !ok {
			// Released inside the body on the fall-through path:
			// treat as discharged after the loop too.
			delete(held, k)
		}
	}
}
