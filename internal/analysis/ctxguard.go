package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxGuard enforces the serving layer's context discipline (DESIGN.md
// §12–§13): every context.WithCancel/WithTimeout/WithDeadline must have
// its cancel function called on every panic-free path — directly,
// deferred, or through a helper known (by fact) to cancel it — and a
// request-scoped context must not be stored into a struct field, map,
// or package variable, where it would outlive the handler that owns it.
var CtxGuard = &Analyzer{
	Name: "ctxguard",
	Doc: "ctxguard: context cancel funcs must be called on all paths; " +
		"request contexts must not be stored past handler return",
	Run: runCtxGuard,
}

func runCtxGuard(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCancelPairing(pass, fd.Body)
			checkCtxStores(pass, fd)
		}
		// Package-level func literals (var h = func(){...}) are rare but
		// cheap to cover.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					if lit, ok := v.(*ast.FuncLit); ok {
						checkCancelPairing(pass, lit.Body)
					}
				}
			}
		}
	}
	return nil
}

// isContextWith reports a call to context.WithCancel / WithTimeout /
// WithDeadline, resolved through the type info (not the package alias).
func isContextWith(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "WithCancel", "WithTimeout", "WithDeadline", "WithCancelCause":
		return true
	}
	return false
}

// checkCancelPairing runs the path walker over one body. Obligations
// come from `ctx, cancel := context.WithCancel(...)`; discharges are a
// direct or deferred cancel() call, a handoff to a helper with the
// CancelsParams fact, or a conservative transfer (stored, returned,
// captured by a closure, or passed to a function outside the unit —
// the jobs.go composite-literal and qCancels-map patterns).
func checkCancelPairing(pass *Pass, body *ast.BlockStmt) {
	// Func literals are separate analysis subjects: each body gets its
	// own walk, and the outer walk never descends into them (a literal
	// capturing a held cancel is a transfer, handled in scanCancelNode).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkCancelPairing(pass, lit.Body)
			return false
		}
		return true
	})

	sim := &pathSim{pass: pass}
	sim.onStmt = func(s ast.Stmt, held pathState) {
		if as, ok := s.(*ast.AssignStmt); ok {
			ctxGuardAssign(pass, as, held)
			return
		}
		scanCancelNode(pass, s, held, false)
	}
	sim.onDefer = func(call *ast.CallExpr, held pathState) {
		scanCancelNode(pass, call, held, true)
	}
	sim.onExpr = func(e ast.Expr, held pathState) {
		scanCancelNode(pass, e, held, false)
	}
	sim.onExit = func(ret *ast.ReturnStmt, pos token.Pos, held pathState) {
		for _, ob := range held {
			if ob.info.leaked {
				continue
			}
			ob.info.leaked = true
			pass.Reportf(ob.info.pos, "%s is not called on every path", ob.info.name)
		}
	}
	sim.walkBody(body, pathState{})
}

// ctxGuardAssign creates obligations from With* assignments and treats
// any other assignment mentioning a held cancel func as a transfer
// (storing it somewhere the analyzer cannot follow — jobs.go's
// composite literals and serve.go's qCancels map).
func ctxGuardAssign(pass *Pass, as *ast.AssignStmt, held pathState) {
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isContextWith(pass, call) && len(as.Lhs) == 2 {
			if id, ok := as.Lhs[1].(*ast.Ident); ok {
				if id.Name == "_" {
					pass.Reportf(call.Pos(), "cancel func of %s is discarded", callName(call))
					return
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj != nil {
					held[obj] = &pathOb{info: &obInfo{
						pos:  call.Pos(),
						name: "cancel func of " + callName(call),
					}}
				}
			}
			return
		}
	}
	scanCancelNode(pass, as, held, false)
}

func callName(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if pkg, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			return pkg.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		return id.Name
	}
	return "context.With*"
}

// scanCancelNode interprets one statement/expression against the held
// cancel obligations: calls are resolved against the facts, closures
// capturing a held cancel are transfers, and any other mention of a
// held cancel func (returned, re-assigned, stored in a literal) is a
// conservative ownership transfer.
func scanCancelNode(pass *Pass, n ast.Node, held pathState, deferred bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			handleCancelCall(pass, x, held, deferred)
			return false
		case *ast.FuncLit:
			// A closure capturing the cancel func owns it now (serve.go's
			// beginQuery end-closure); transfer and do not descend — the
			// literal's body is analyzed on its own.
			transferMentioned(pass, x.Body, held)
			return false
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				delete(held, obj)
			}
		}
		return true
	})
}

// handleCancelCall resolves one call against the held obligations. It
// consumes the whole call (the Inspect above never descends into one):
// bare-ident arguments are matched against the callee's facts — this
// is where the analyzer keeps its teeth, since a unit-local helper
// that provably does not cancel leaves the obligation with the caller —
// and every other operand is scanned recursively.
func handleCancelCall(pass *Pass, call *ast.CallExpr, held pathState, deferred bool) {
	// Direct cancel(): the callee is a held object.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			if _, ok := held[obj]; ok {
				delete(held, obj)
			}
		}
	} else {
		scanCancelNode(pass, call.Fun, held, deferred)
	}
	fn := calleeFunc(pass, call)
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			scanCancelNode(pass, arg, held, deferred)
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		if _, isHeld := held[obj]; !isHeld {
			continue
		}
		if fn != nil && pass.InUnit(fn) {
			// The callee's body is known: only a CancelsParams fact
			// discharges; otherwise the helper provably does not cancel
			// on all paths and the obligation stays with the caller.
			if intsContain(pass.Facts.Of(fn).CancelsParams, paramIndexFor(fn, i)) {
				delete(held, obj)
			}
		} else {
			// Unknown callee: conservative ownership transfer.
			delete(held, obj)
		}
	}
}

// transferMentioned discharges every held obligation whose object is
// referenced inside n (ownership moved somewhere we cannot track).
func transferMentioned(pass *Pass, n ast.Node, held pathState) {
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				delete(held, obj)
			}
		}
		return true
	})
}

// checkCtxStores flags request-scoped contexts escaping into longer-
// lived storage: assignments of a tainted context into a struct field,
// a map element, or a package-level variable. Composite literals are
// allowed — serve.go packages the ctx into per-call option structs
// (sssp.Options{Ctx: ctx}) that die with the request.
func checkCtxStores(pass *Pass, fd *ast.FuncDecl) {
	// Seed: locals holding r.Context() (or a derived context: the
	// results of context.With* on a tainted parent). A plain context
	// parameter is NOT tainted — passing a ctx down and parking it in a
	// struct is legitimate cancellation plumbing (obs.Canceled carries
	// one); the contract is specifically about *request* contexts, whose
	// lifetime ends with the handler.
	tainted := map[types.Object]bool{}
	// Two passes so derivation chains settle regardless of order.
	for i := 0; i < 2; i++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			fromReq := isRequestContextCall(pass, call)
			derived := isContextWith(pass, call) && len(call.Args) > 0 && exprTainted(pass, call.Args[0], tainted)
			if !fromReq && !derived {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					tainted[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					tainted[obj] = true
				}
			}
			return true
		})
	}
	if len(tainted) == 0 {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			if !exprTainted(pass, as.Rhs[i], tainted) {
				continue
			}
			switch l := ast.Unparen(lhs).(type) {
			case *ast.SelectorExpr:
				pass.Reportf(as.Pos(), "request context stored in %s outlives the handler", exprString(l))
			case *ast.IndexExpr:
				pass.Reportf(as.Pos(), "request context stored in map/slice element outlives the handler")
			case *ast.Ident:
				if obj := pass.TypesInfo.Uses[l]; obj != nil && obj.Parent() == pass.Pkg.Scope() {
					pass.Reportf(as.Pos(), "request context stored in package variable %s outlives the handler", l.Name)
				}
			}
		}
		return true
	})
}

func exprTainted(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	return obj != nil && tainted[obj]
}

// isRequestContextCall matches `r.Context()` for *http.Request.
func isRequestContextCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	return fn != nil && fn.Name() == "Context" && fn.Pkg() != nil &&
		fn.Pkg().Path() == "net/http"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && named.Obj().Pkg().Path() == "context"
}

func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expression"
	}
}
