package analysis

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// Each analyzer is pinned against the GOPATH-style fixtures under
// testdata/src/<name>/...: every `// want "re"` comment must be
// matched by a diagnostic on that line, and no diagnostic may appear
// without one. The clean packages in each tree double as
// false-positive regressions.

func TestAtomicMix(t *testing.T) {
	RunTest(t, "testdata/src", AtomicMix, "atomicmix")
}

func TestAtomicAlign(t *testing.T) {
	RunTest(t, "testdata/src", AtomicAlign, "atomicalign")
}

func TestArenaAlias(t *testing.T) {
	RunTest(t, "testdata/src", ArenaAlias, "arenaalias")
}

// arenaAliasDiags runs ArenaAlias over the arenaalias fixture tree
// without want-comment checking and returns the diagnosed lines keyed
// by base file name.
func arenaAliasDiags(t *testing.T) map[string][]int {
	t.Helper()
	all, err := LoadDir("testdata/src")
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, pkg := range all {
		if pkg.Path == "arenaalias" || strings.HasPrefix(pkg.Path, "arenaalias/") {
			pkgs = append(pkgs, pkg)
		}
	}
	out := map[string][]int{}
	for _, d := range RunAnalyzers(pkgs, []*Analyzer{ArenaAlias}) {
		base := filepath.Base(d.Pos.Filename)
		out[base] = append(out[base], d.Pos.Line)
	}
	return out
}

// TestArenaAliasFusedEdgesLoadBearing is the mutation test for the
// fused invalidation edges: removing NextBucketFused and DrainLazy from
// arenaInvalidators must silence exactly the two fused fixtures whose
// only intervening call is a fused one, while the UpdateBuckets-backed
// fused case and every pre-existing fixture keep firing — proving the
// new edges, not some older rule, are what catch them.
func TestArenaAliasFusedEdgesLoadBearing(t *testing.T) {
	before := arenaAliasDiags(t)
	if n := len(before["fused.go"]); n != 3 {
		t.Fatalf("unmutated analyzer found %d fused.go diagnostics at lines %v, want 3",
			n, before["fused.go"])
	}
	orig := arenaInvalidators
	arenaInvalidators = []string{"NextBucket", "UpdateBuckets"}
	defer func() { arenaInvalidators = orig }()
	after := arenaAliasDiags(t)
	if n := len(after["fused.go"]); n != 1 {
		t.Fatalf("mutated analyzer found %d fused.go diagnostics at lines %v, want only the UpdateBuckets-invalidated one",
			n, after["fused.go"])
	}
	if len(after["a.go"]) != len(before["a.go"]) {
		t.Fatalf("mutation bled into a.go diagnostics: %v -> %v", before["a.go"], after["a.go"])
	}
}

func TestScratchPair(t *testing.T) {
	RunTest(t, "testdata/src", ScratchPair, "scratchpair")
}

func TestTagDrift(t *testing.T) {
	RunTest(t, "testdata/src", TagDrift, "tagdrift")
}

// TestTagDriftRealPairs pins the analyzer against verbatim copies of
// the repository's real tag pairs (parallel's race pair, bucket's and
// ligra's julienne_debug pairs): the shipped halves must compare clean.
func TestTagDriftRealPairs(t *testing.T) {
	RunTest(t, "testdata/src", TagDrift, "tagdrift/real")
}

func TestNoRandTime(t *testing.T) {
	RunTest(t, "testdata/src", NoRandTime, "norandtime")
}

func TestPanicGuard(t *testing.T) {
	RunTest(t, "testdata/src", PanicGuard, "panicguard")
}

// TestSuppressionRequiresReason pins the driver rule that a
// //lint:ignore directive without a reason is itself a diagnostic and
// suppresses nothing.
func TestSuppressionRequiresReason(t *testing.T) {
	const src = `package p

//lint:ignore julvet/norandtime
var x = 1

//lint:ignore julvet/arenaalias copied out two lines above
var y = 2
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	sups, bad := collectSuppressions(fset, f)
	if len(bad) != 1 || !strings.Contains(bad[0].Message, "missing a reason") {
		t.Fatalf("bad directives = %v, want one missing-reason diagnostic", bad)
	}
	if bad[0].Analyzer != "driver" || bad[0].Pos.Line != 3 {
		t.Fatalf("missing-reason diagnostic = %+v, want driver diagnostic on line 3", bad[0])
	}
	if len(sups) != 1 || sups[0].analyzer != "arenaalias" || sups[0].line != 6 {
		t.Fatalf("suppressions = %+v, want the documented arenaalias directive on line 6", sups)
	}
}

// TestSuppressionPlacement pins which lines a directive covers: its own
// line and the line directly below, nothing else.
func TestSuppressionPlacement(t *testing.T) {
	sup := suppression{analyzer: "norandtime", file: "f.go", line: 10, reason: "r"}
	diag := func(line int) Diagnostic {
		return Diagnostic{Analyzer: "norandtime", Pos: token.Position{Filename: "f.go", Line: line}}
	}
	if !suppressed(diag(10), []suppression{sup}) || !suppressed(diag(11), []suppression{sup}) {
		t.Error("directive must cover its own line and the line below")
	}
	if suppressed(diag(9), []suppression{sup}) || suppressed(diag(12), []suppression{sup}) {
		t.Error("directive must not cover lines at distance > 1")
	}
	other := Diagnostic{Analyzer: "arenaalias", Pos: token.Position{Filename: "f.go", Line: 10}}
	if suppressed(other, []suppression{sup}) {
		t.Error("directive must only cover its named analyzer")
	}
}

func TestCtxGuard(t *testing.T) {
	RunTest(t, "testdata/src", CtxGuard, "ctxguard")
}

func TestSemaBalance(t *testing.T) {
	RunTest(t, "testdata/src", SemaBalance, "semabalance")
}

func TestObsNames(t *testing.T) {
	RunTest(t, "testdata/src", ObsNames, "obsnames")
}

func TestStatusMap(t *testing.T) {
	RunTest(t, "testdata/src", StatusMap, "statusmap")
}
