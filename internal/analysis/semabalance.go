package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SemaBalance enforces admission-control pairing in serve packages
// (DESIGN.md §12–§13): every successful semaphore acquire — a direct
// `s.adm.acquire(ctx)` or an admit-style helper returning a release
// closure (known through the ReleaseResult fact) — must be balanced by
// a release on every panic-free path: called, deferred, handed to a
// releasing helper (SemaReleaseParams fact), or captured by an escaping
// closure that releases it (the coalescer's leader-cancel/
// follower-retry completion paths).
var SemaBalance = &Analyzer{
	Name: "semabalance",
	Doc: "semabalance: admission-semaphore acquires must be released on " +
		"every path, across serve's helper calls",
	Run: runSemaBalance,
}

func runSemaBalance(pass *Pass) error {
	// The acquire/release protocol is the serving layer's; other
	// packages use Scratch (scratchpair) or raw channels.
	if pass.Pkg.Name() != "serve" {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSemaBody(pass, fd.Body)
		}
	}
	return nil
}

func checkSemaBody(pass *Pass, body *ast.BlockStmt) {
	// Each func literal is its own balance scope (a goroutine body that
	// acquires must also release).
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkSemaBody(pass, lit.Body)
			return false
		}
		return true
	})

	sim := &pathSim{pass: pass}
	sim.onStmt = func(s ast.Stmt, held pathState) {
		if as, ok := s.(*ast.AssignStmt); ok && semaAssign(pass, as, held) {
			return
		}
		scanSemaNode(pass, s, held)
	}
	sim.onDefer = func(call *ast.CallExpr, held pathState) {
		scanSemaNode(pass, call, held)
	}
	sim.onExpr = func(e ast.Expr, held pathState) {
		scanSemaNode(pass, e, held)
	}
	sim.onExit = func(ret *ast.ReturnStmt, pos token.Pos, held pathState) {
		for _, ob := range held {
			if ob.info.leaked {
				continue
			}
			ob.info.leaked = true
			pass.Reportf(ob.info.pos, "%s is not released on every path", ob.info.name)
		}
	}
	sim.walkBody(body, pathState{})
}

// semaAssign recognizes the two acquire shapes and creates obligations;
// reports true when the assignment was fully interpreted.
func semaAssign(pass *Pass, as *ast.AssignStmt, held pathState) bool {
	if len(as.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return false
	}
	// Direct acquire: `err := s.adm.acquire(ctx)` — the obligation keys
	// on the semaphore value itself (the last selector component), gated
	// on the error result.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
		(sel.Sel.Name == "acquire" || sel.Sel.Name == "Acquire") {
		if key := lastComponentObj(pass, sel.X); key != nil {
			ob := &pathOb{info: &obInfo{
				pos:  call.Pos(),
				name: "semaphore acquire on " + exprString(ast.Unparen(sel.X)),
			}}
			if len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
					if obj := lhsObj(pass, id); obj != nil && isErrorType(obj.Type()) {
						ob.cond = obj
					}
				}
			}
			held[key] = ob
			return true
		}
	}
	// Admit-style helper: `release, ok := s.admit(ctx, w)` where the
	// callee's ReleaseResult fact says which result is the release
	// closure and which companion gates it.
	fn := calleeFunc(pass, call)
	if fn == nil || !pass.InUnit(fn) {
		return false
	}
	ff := pass.Facts.Of(fn)
	if ff.ReleaseResult == 0 || ff.ReleaseResult > len(as.Lhs) {
		return false
	}
	relExpr := as.Lhs[ff.ReleaseResult-1]
	id, ok := relExpr.(*ast.Ident)
	if !ok {
		return false
	}
	if id.Name == "_" {
		pass.Reportf(as.Pos(), "release func returned by %s is discarded", fn.Name())
		return true
	}
	obj := lhsObj(pass, id)
	if obj == nil {
		return false
	}
	ob := &pathOb{info: &obInfo{
		pos:  as.Pos(),
		name: "release func returned by " + fn.Name(),
	}}
	if ff.OKResult > 0 && ff.OKResult <= len(as.Lhs) {
		if gid, ok := as.Lhs[ff.OKResult-1].(*ast.Ident); ok {
			if g := lhsObj(pass, gid); g != nil {
				ob.cond = g
			}
		}
	} else if ff.ErrResult > 0 && ff.ErrResult <= len(as.Lhs) {
		if gid, ok := as.Lhs[ff.ErrResult-1].(*ast.Ident); ok {
			if g := lhsObj(pass, gid); g != nil {
				ob.cond = g
			}
		}
	}
	held[obj] = ob
	return true
}

func lhsObj(pass *Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// lastComponentObj resolves the object of the last selector component
// (`s.adm` -> the adm field var; `adm` -> the adm var), which is stable
// across every mention of the same semaphore in a body.
func lastComponentObj(pass *Pass, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[x.Sel]
	}
	return nil
}

// scanSemaNode interprets one statement/expression against the held
// obligations.
func scanSemaNode(pass *Pass, n ast.Node, held pathState) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.CallExpr:
			handleSemaCall(pass, x, held)
			return false
		case *ast.FuncLit:
			// An escaping closure that releases a held semaphore owns the
			// completion path now (coalesce leader/followers); one that
			// merely mentions the release func is a transfer.
			for key := range held {
				if funcLitReleasesObj(pass, x, key) || litMentions(pass, x, key) {
					delete(held, key)
				}
			}
			return false
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				delete(held, obj)
			}
		}
		return true
	})
}

func handleSemaCall(pass *Pass, call *ast.CallExpr, held pathState) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		// `release()` where release is the held closure.
		if obj := pass.TypesInfo.Uses[fun]; obj != nil {
			if _, ok := held[obj]; ok {
				delete(held, obj)
			}
		}
	case *ast.SelectorExpr:
		// `s.adm.release()` keyed on the semaphore component.
		if fun.Sel.Name == "release" || fun.Sel.Name == "Release" {
			if key := lastComponentObj(pass, fun.X); key != nil {
				delete(held, key)
			}
		} else {
			scanSemaNode(pass, fun.X, held)
		}
	default:
		scanSemaNode(pass, call.Fun, held)
	}
	fn := calleeFunc(pass, call)
	for i, arg := range call.Args {
		if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
			for key := range held {
				if funcLitReleasesObj(pass, lit, key) || litMentions(pass, lit, key) {
					delete(held, key)
				}
			}
			continue
		}
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			scanSemaNode(pass, arg, held)
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		if _, isHeld := held[obj]; !isHeld {
			continue
		}
		if fn != nil && pass.InUnit(fn) {
			// Known helper: only a SemaReleaseParams fact discharges.
			if intsContain(pass.Facts.Of(fn).SemaReleaseParams, paramIndexFor(fn, i)) {
				delete(held, obj)
			}
		} else {
			delete(held, obj)
		}
	}
}

// funcLitReleasesObj reports whether the literal's body releases key:
// calls it directly (a release closure) or calls release/Release on it
// (a semaphore).
func funcLitReleasesObj(pass *Pass, lit *ast.FuncLit, key types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if pass.TypesInfo.Uses[fun] == key {
				found = true
				return false
			}
		case *ast.SelectorExpr:
			if (fun.Sel.Name == "release" || fun.Sel.Name == "Release") &&
				lastComponentObj(pass, fun.X) == key {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func litMentions(pass *Pass, lit *ast.FuncLit, key types.Object) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == key {
			found = true
			return false
		}
		return true
	})
	return found
}
