// Package analysis is julienne's static-analysis suite: a small,
// self-contained clone of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the custom analyzers that
// mechanically enforce the framework's concurrency and arena contracts
// (see DESIGN.md §8):
//
//   - atomicmix:   a field accessed via sync/atomic anywhere must be
//     accessed atomically everywhere
//   - arenaalias:  slices returned by NextBucket must not be read past
//     the next NextBucket/UpdateBuckets call without a copy
//   - scratchpair: every parallel.GetScratch must be Released on all
//     return paths
//   - tagdrift:    build-tag-paired files (race_on/race_off,
//     debug_on/debug_off) must declare matching signatures
//   - norandtime:  math/rand and bare time.Now are forbidden outside
//     the rng/harness/obs plumbing
//   - atomicalign: 64-bit atomic fields must sit at 64-bit-aligned
//     offsets under a 32-bit memory layout
//
// The framework is built on the standard library alone (go/ast,
// go/types, and `go list -export` for import resolution) because this
// repository vendors no third-party modules; the types mirror
// go/analysis closely enough that the analyzers would port to the real
// framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package through
// its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in suppression
	// comments (`//lint:ignore julvet/<name> reason`).
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked files under the active build
	// configuration.
	Files []*ast.File
	// IgnoredFiles are files in the package directory excluded by build
	// constraints: parsed (with comments) but not type-checked. The
	// tagdrift analyzer compares these against their active
	// counterparts.
	IgnoredFiles []*ast.File
	Pkg          *types.Package
	TypesInfo    *types.Info

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [julvet/%s]", d.Pos, d.Message, d.Analyzer)
}

// ignoreRe matches the suppression directive handled by the driver:
// `//lint:ignore julvet/<name> <reason>`. A non-empty reason is
// mandatory — an undocumented suppression is itself reported.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+julvet/([a-z]+)\s*(.*)$`)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	file     string
	line     int
	reason   string
}

// RunAnalyzers applies every analyzer to every package, collects the
// diagnostics, filters the ones covered by //lint:ignore directives
// (same line or the line directly below the directive), and returns
// the survivors sorted by position. Malformed directives (missing
// reason) are reported as driver diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	var sups []suppression
	for _, pkg := range pkgs {
		for _, files := range [][]*ast.File{pkg.Files, pkg.IgnoredFiles} {
			for _, f := range files {
				s, bad := collectSuppressions(pkg.Fset, f)
				sups = append(sups, s...)
				diags = append(diags, bad...)
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				IgnoredFiles: pkg.IgnoredFiles,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.Info,
				diags:        &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if !suppressed(d, sups) {
			kept = append(kept, d)
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// collectSuppressions parses the //lint:ignore directives of one file.
// Directives without a reason are returned as diagnostics instead: the
// whole point of the mechanism is that deviations are documented.
func collectSuppressions(fset *token.FileSet, f *ast.File) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				bad = append(bad, Diagnostic{
					Analyzer: "driver",
					Pos:      pos,
					Message:  fmt.Sprintf("lint:ignore julvet/%s directive is missing a reason", m[1]),
				})
				continue
			}
			sups = append(sups, suppression{
				analyzer: m[1],
				file:     pos.Filename,
				line:     pos.Line,
				reason:   strings.TrimSpace(m[2]),
			})
		}
	}
	return sups, bad
}

// suppressed reports whether d is covered by a directive on its own
// line or on the line directly above (the two placements gofmt keeps
// stable for trailing and standalone comments respectively).
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if s.analyzer != d.Analyzer || s.file != d.Pos.Filename {
			continue
		}
		if s.line == d.Pos.Line || s.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}
