// Package analysis is julienne's static-analysis suite: a small,
// self-contained clone of the golang.org/x/tools/go/analysis vocabulary
// (Analyzer, Pass, Diagnostic) plus the custom analyzers that
// mechanically enforce the framework's concurrency and arena contracts
// (see DESIGN.md §8):
//
//   - atomicmix:   a field accessed via sync/atomic anywhere must be
//     accessed atomically everywhere
//   - arenaalias:  slices returned by NextBucket must not be read past
//     the next NextBucket/UpdateBuckets call without a copy
//   - scratchpair: every parallel.GetScratch must be Released on all
//     return paths
//   - tagdrift:    build-tag-paired files (race_on/race_off,
//     debug_on/debug_off) must declare matching signatures
//   - norandtime:  math/rand and bare time.Now are forbidden outside
//     the rng/harness/obs plumbing
//   - atomicalign: 64-bit atomic fields must sit at 64-bit-aligned
//     offsets under a 32-bit memory layout
//   - panicguard:  goroutines spawned outside internal/parallel must
//     install the panic-containment recover
//   - ctxguard:    context cancel funcs are called on every path and
//     request contexts are never stored past handler return
//   - semabalance: admission-semaphore acquire/release stay paired
//     across serve's helper calls
//   - obsnames:    metric names resolve to the obs well-known-names
//     registry, in both directions
//   - statusmap:   each typed serve error maps to exactly one HTTP
//     status
//
// Since PR 10 the driver is interprocedural: every load is wrapped in a
// Unit (interproc.go) that computes per-function facts to a fixpoint
// and serializes them per package, so arenaalias/scratchpair/
// panicguard/ctxguard/semabalance/obsnames follow their obligations
// through helper calls, same-package and cross-package alike.
//
// The framework is built on the standard library alone (go/ast,
// go/types, and `go list -export` for import resolution) because this
// repository vendors no third-party modules; the types mirror
// go/analysis closely enough that the analyzers would port to the real
// framework by changing imports.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single package through
// its Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	// Name identifies the analyzer in output and in suppression
	// comments (`//lint:ignore julvet/<name> reason`).
	Name string
	// Doc is a one-paragraph description of the contract enforced.
	Doc string
	// Run performs the check on one package.
	Run func(*Pass) error
	// Finish, if set, runs once per load unit after every package's Run,
	// for whole-unit checks (obsnames' reverse registry-drift pass).
	Finish func(u *Unit, reportf func(pos token.Pos, format string, args ...any))
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring go/analysis.Pass.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's type-checked files under the active build
	// configuration.
	Files []*ast.File
	// IgnoredFiles are files in the package directory excluded by build
	// constraints: parsed (with comments) but not type-checked. The
	// tagdrift analyzer compares these against their active
	// counterparts.
	IgnoredFiles []*ast.File
	Pkg          *types.Package
	TypesInfo    *types.Info
	// Facts is the unit-wide interprocedural fact store (interproc.go);
	// never nil under RunAnalyzers, may be nil under hand-built passes.
	Facts *Facts

	unit  *Unit
	diags *[]Diagnostic
}

// InUnit reports whether fn's body is part of the current load unit, so
// the facts for it are authoritative: a unit function WITHOUT a fact
// really does lack the property, while a function outside the unit is
// merely unknown. Analyzers use this to decide between "trust the
// missing fact" and "assume a conservative transfer".
func (p *Pass) InUnit(fn *types.Func) bool {
	return p.unit != nil && factsEnabled && p.unit.HasBody(fn)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [julvet/%s]", d.Pos, d.Message, d.Analyzer)
}

// ignoreRe matches the suppression directive handled by the driver:
// `//lint:ignore julvet/<name> <reason>`. A non-empty reason is
// mandatory — an undocumented suppression is itself reported.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+julvet/([a-z]+)\s*(.*)$`)

// suppression is one parsed //lint:ignore directive.
type suppression struct {
	analyzer string
	file     string
	line     int
	reason   string
}

// RunAnalyzers applies every analyzer to every package, collects the
// diagnostics, filters the ones covered by //lint:ignore directives
// (same line or the line directly below the directive), and returns
// the survivors sorted by position. Malformed directives (missing
// reason), directives naming an analyzer that does not exist, and
// directives in active files that suppress nothing this run are
// reported as driver diagnostics.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	unit := NewUnit(pkgs)
	var diags []Diagnostic
	type supEntry struct {
		suppression
		active bool // in a type-checked file (stale directives only matter there)
		used   bool
	}
	var sups []*supEntry
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			s, bad := collectSuppressions(pkg.Fset, f)
			for _, sup := range s {
				sups = append(sups, &supEntry{suppression: sup, active: true})
			}
			diags = append(diags, bad...)
		}
		for _, f := range pkg.IgnoredFiles {
			s, bad := collectSuppressions(pkg.Fset, f)
			for _, sup := range s {
				sups = append(sups, &supEntry{suppression: sup})
			}
			diags = append(diags, bad...)
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:     a,
				Fset:         pkg.Fset,
				Files:        pkg.Files,
				IgnoredFiles: pkg.IgnoredFiles,
				Pkg:          pkg.Types,
				TypesInfo:    pkg.Info,
				Facts:        unit.Facts,
				unit:         unit,
				diags:        &diags,
			}
			if err := a.Run(pass); err != nil {
				diags = append(diags, Diagnostic{
					Analyzer: a.Name,
					Message:  fmt.Sprintf("analyzer error: %v", err),
				})
			}
		}
	}
	for _, a := range analyzers {
		if a.Finish == nil {
			continue
		}
		name := a.Name
		a.Finish(unit, func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Analyzer: name,
				Pos:      unit.Fset.Position(pos),
				Message:  fmt.Sprintf(format, args...),
			})
		})
	}
	kept := diags[:0]
	for _, d := range diags {
		matched := false
		for _, s := range sups {
			if supCovers(s.suppression, d) {
				s.used = true
				matched = true
			}
		}
		if !matched {
			kept = append(kept, d)
		}
	}
	// Stale-directive check (the unuseddirective driver pass): a
	// directive in an active file whose analyzer ran this time but
	// matched nothing is dead weight and gets reported, as does a
	// directive naming an analyzer that does not exist at all. Directives
	// for analyzers outside this run's set are left alone — a subset run
	// cannot tell whether they still earn their keep.
	runSet := map[string]bool{}
	for _, a := range analyzers {
		runSet[a.Name] = true
	}
	known := map[string]bool{}
	for _, a := range All() {
		known[a.Name] = true
	}
	for _, s := range sups {
		if !s.active || s.used {
			continue
		}
		pos := token.Position{Filename: s.file, Line: s.line}
		switch {
		case !known[s.analyzer]:
			kept = append(kept, Diagnostic{
				Analyzer: "driver",
				Pos:      pos,
				Message:  fmt.Sprintf("lint:ignore julvet/%s names an unknown analyzer", s.analyzer),
			})
		case runSet[s.analyzer]:
			kept = append(kept, Diagnostic{
				Analyzer: "driver",
				Pos:      pos,
				Message:  fmt.Sprintf("lint:ignore julvet/%s suppresses nothing; delete the stale directive", s.analyzer),
			})
		}
	}
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// collectSuppressions parses the //lint:ignore directives of one file.
// Directives without a reason are returned as diagnostics instead: the
// whole point of the mechanism is that deviations are documented.
func collectSuppressions(fset *token.FileSet, f *ast.File) ([]suppression, []Diagnostic) {
	var sups []suppression
	var bad []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			if strings.TrimSpace(m[2]) == "" {
				bad = append(bad, Diagnostic{
					Analyzer: "driver",
					Pos:      pos,
					Message:  fmt.Sprintf("lint:ignore julvet/%s directive is missing a reason", m[1]),
				})
				continue
			}
			sups = append(sups, suppression{
				analyzer: m[1],
				file:     pos.Filename,
				line:     pos.Line,
				reason:   strings.TrimSpace(m[2]),
			})
		}
	}
	return sups, bad
}

// supCovers reports whether one directive covers d: same analyzer and
// file, on d's own line or on the line directly above (the two
// placements gofmt keeps stable for trailing and standalone comments
// respectively).
func supCovers(s suppression, d Diagnostic) bool {
	if s.analyzer != d.Analyzer || s.file != d.Pos.Filename {
		return false
	}
	return s.line == d.Pos.Line || s.line == d.Pos.Line-1
}

// suppressed reports whether d is covered by any of the directives.
func suppressed(d Diagnostic, sups []suppression) bool {
	for _, s := range sups {
		if supCovers(s, d) {
			return true
		}
	}
	return false
}
