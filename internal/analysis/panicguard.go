package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PanicGuard enforces the panic-containment contract of the parallel
// substrate (DESIGN.md §9): every goroutine the substrate spawns that
// calls a caller-supplied function value must install the recover
// wrapper first, so a panic in user code is captured on the worker and
// re-raised (once, wrapped) on the calling goroutine instead of
// crashing the whole process — a panic escaping any non-main goroutine
// is unconditionally fatal in Go.
//
// Concretely, inside package parallel (the only package allowed to
// spawn raw worker goroutines; everything else goes through its
// primitives):
//
//   - a `go func(){ ... }()` whose body calls a func-typed variable
//     (parameter, local, or field — i.e. code the caller supplied, as
//     opposed to a named function or method of the substrate itself)
//     must have a top-level `defer pc.recoverPanic()` before it;
//   - `go f(...)` spawning a caller-supplied function value directly is
//     always flagged: there is no frame to hang the recover on.
//
// Deliberate exceptions carry a `//lint:ignore julvet/panicguard
// reason` directive.
var PanicGuard = &Analyzer{
	Name: "panicguard",
	Doc:  "requires a deferred recoverPanic in parallel worker goroutines that call caller-supplied functions",
	Run:  runPanicGuard,
}

func runPanicGuard(pass *Pass) error {
	// The contract binds the substrate package only: other packages
	// cannot spawn workers (they use the parallel primitives), and the
	// fixture tree mirrors this by naming its positive package
	// "parallel".
	if pass.Pkg.Name() != "parallel" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkWorkerSpawn(pass, gs)
			return true // nested go statements are visited separately
		})
	}
	return nil
}

func checkWorkerSpawn(pass *Pass, gs *ast.GoStmt) {
	fl, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		if isFuncValue(pass, gs.Call.Fun) {
			pass.Reportf(gs.Pos(),
				"caller-supplied function %s spawned directly with go: wrap it in a closure with a deferred recoverPanic so its panics are contained",
				funcValueName(gs.Call.Fun))
			return
		}
		// go h(fn): a named helper spawned directly. If the unit knows
		// h's body and h does not install the recover itself, any
		// func-value argument rides into the goroutine unguarded.
		reportUnguardedFuncArgs(pass, gs.Call, gs.Pos())
		return
	}
	if hasRecoverDefer(fl.Body) {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.GoStmt); ok && inner != gs {
			return false // its own spawn, checked on its own visit
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isFuncValue(pass, call.Fun) {
			pass.Reportf(call.Pos(),
				"caller-supplied function %s called in a worker goroutine without a deferred recoverPanic; a panic here crashes the process",
				funcValueName(call.Fun))
			return true
		}
		// h(fn) inside the unguarded body: the helper's InstallsRecover
		// fact decides whether the callback is contained in h's frame.
		reportUnguardedFuncArgs(pass, call, call.Pos())
		return true
	})
}

// reportUnguardedFuncArgs flags func-value arguments handed to a unit
// function that provably does not install the recover wrapper, in a
// goroutine context with no recover of its own. Callees outside the
// unit stay un-flagged (the lexical analyzer's old stance: no evidence
// either way), and callees with the InstallsRecover fact are safe — the
// fixtures' mutation test flips factsEnabled to prove both edges hold.
func reportUnguardedFuncArgs(pass *Pass, call *ast.CallExpr, pos token.Pos) {
	fn := calleeFunc(pass, call)
	if fn == nil || !pass.InUnit(fn) || pass.Facts.Of(fn).InstallsRecover {
		return
	}
	for _, arg := range call.Args {
		if isFuncValue(pass, arg) {
			pass.Reportf(pos,
				"caller-supplied function %s reaches %s in a worker goroutine and neither installs a recoverPanic; a panic here crashes the process",
				funcValueName(arg), fn.Name())
		}
	}
}

// hasRecoverDefer reports whether the goroutine body's top-level
// statements include `defer x.recoverPanic()` (or a deferred call to a
// plain recoverPanic helper). Only top-level defers count: a defer
// buried in a conditional may not be installed when user code runs.
func hasRecoverDefer(body *ast.BlockStmt) bool {
	for _, st := range body.List {
		ds, ok := st.(*ast.DeferStmt)
		if !ok {
			continue
		}
		switch fun := ds.Call.Fun.(type) {
		case *ast.SelectorExpr:
			if fun.Sel.Name == "recoverPanic" {
				return true
			}
		case *ast.Ident:
			if fun.Name == "recoverPanic" {
				return true
			}
		}
	}
	return false
}

// isFuncValue reports whether e denotes a function *value* — a
// variable of function type (parameter, local, struct field) rather
// than a declared function, method, builtin, or type conversion.
// Caller-supplied callbacks always arrive as values; the substrate's
// own helpers are declared functions and methods.
func isFuncValue(pass *Pass, e ast.Expr) bool {
	var obj types.Object
	switch x := e.(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return false
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	_, isFunc := v.Type().Underlying().(*types.Signature)
	return isFunc
}

func funcValueName(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return "value"
}
