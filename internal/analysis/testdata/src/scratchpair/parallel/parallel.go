// Package parallel is a fixture stand-in for julienne's pooled-scratch
// API: the scratchpair analyzer keys on the *parallel.Scratch[T] type
// and the GetScratch name.
package parallel

type Scratch[T any] struct {
	S []T
}

func GetScratch[T any](n int) *Scratch[T] {
	return &Scratch[T]{S: make([]T, n)}
}

func (s *Scratch[T]) Release() {}
