// Fixture for the scratchpair analyzer: every GetScratch must be
// Released on all return paths unless ownership is handed off.
package a

import "scratchpair/parallel"

// Leak misses the Release on the early-return path.
func Leak(n int) int {
	s := parallel.GetScratch[int](n) // want "scratch buffer s is not Released on every return path"
	if n > 10 {
		return 0
	}
	s.Release()
	return 1
}

// LeakFallOff falls off the end of the function while holding.
func LeakFallOff(n int) {
	_ = n
	s := parallel.GetScratch[byte](n) // want "scratch buffer s is not Released on every return path"
	s.S[0] = 1
}

// CleanDefer releases via defer, which covers every path.
func CleanDefer(n int) int {
	s := parallel.GetScratch[int](n)
	defer s.Release()
	if n > 10 {
		return 0
	}
	return len(s.S)
}

// CleanBothPaths releases explicitly on each path.
func CleanBothPaths(n int) int {
	s := parallel.GetScratch[int](n)
	if n > 10 {
		s.Release()
		return 0
	}
	s.Release()
	return 1
}

// CleanReturn transfers ownership to the caller.
func CleanReturn(n int) *parallel.Scratch[int] {
	s := parallel.GetScratch[int](n)
	return s
}

func consume(s *parallel.Scratch[int]) {
	s.Release()
}

// CleanHandOff transfers ownership by passing the scratch along.
func CleanHandOff(n int) {
	s := parallel.GetScratch[int](n)
	consume(s)
}
