// Interprocedural fixtures for scratchpair: a unit-local helper call
// discharges the Release obligation only when its ReleasesScratch fact
// covers the parameter — same-package and across packages.
package a

import (
	"scratchpair/helpers"
	"scratchpair/parallel"
)

// fill uses the scratch but provably neither releases nor sinks it.
func fill(s *parallel.Scratch[int]) {
	for i := range s.S {
		s.S[i] = 0
	}
}

// leakViaFill: the unit knows fill's body keeps the scratch alive, so
// the Release duty stays with the caller.
func leakViaFill(n int) {
	s := parallel.GetScratch[int](n) // want "scratch buffer s is not Released on every return path"
	fill(s)
}

// cleanFillThenRelease: the helper call does not discharge, the
// explicit Release does.
func cleanFillThenRelease(n int) {
	s := parallel.GetScratch[int](n)
	fill(s)
	s.Release()
}

// cleanViaCrossHelper discharges through the cross-package fact.
func cleanViaCrossHelper(n int) {
	s := parallel.GetScratch[int](n)
	helpers.ReleaseInts(s)
}

// leakViaCrossFill keeps the duty across the package boundary too.
func leakViaCrossFill(n int) {
	s := parallel.GetScratch[int](n) // want "scratch buffer s is not Released on every return path"
	helpers.Fill(s)
}
