// Package helpers carries the cross-package scratch helpers for the
// scratchpair fixtures: the ReleasesScratch fact decides whether a
// call discharges the caller's Release obligation.
package helpers

import "scratchpair/parallel"

// ReleaseInts releases the scratch it is handed on every path.
func ReleaseInts(s *parallel.Scratch[int]) {
	s.Release()
}

// Fill uses the scratch but provably neither releases nor sinks it.
func Fill(s *parallel.Scratch[int]) {
	for i := range s.S {
		s.S[i] = 0
	}
}
