// Admit-style half of the semabalance fixtures: a helper that
// acquires and returns a release closure creates an obligation at its
// call sites, shaped by the ReleaseResult/OKResult facts.
package serve

import "context"

// admit acquires and returns the release closure gated by ok —
// internal/serve's (*Server).admit shape.
func (s *server) admit(ctx context.Context) (func(), bool) {
	if err := s.adm.acquire(ctx); err != nil {
		return nil, false
	}
	return func() { s.adm.release() }, true
}

// cleanAdmit pairs the closure with a defer on the success path.
func (s *server) cleanAdmit(ctx context.Context) {
	release, ok := s.admit(ctx)
	if !ok {
		return
	}
	defer release()
}

// leakAdmit drops the closure on one success continuation.
func (s *server) leakAdmit(ctx context.Context, fail bool) {
	release, ok := s.admit(ctx) // want "release func returned by admit is not released on every path"
	if !ok {
		return
	}
	if fail {
		return
	}
	release()
}

// discardAdmit throws the closure away.
func (s *server) discardAdmit(ctx context.Context) {
	_, ok := s.admit(ctx) // want "release func returned by admit is discarded"
	_ = ok
}
