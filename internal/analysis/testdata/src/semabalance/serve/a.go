// Fixture for the semabalance analyzer: admission-semaphore acquires
// in a serve package must be released on every panic-free path. The
// package is named "serve" because the analyzer keys on the package
// name; the admission stub mirrors internal/serve's gate.
package serve

import "context"

type admission struct {
	tokens chan struct{}
}

func newAdmission(n int) *admission {
	return &admission{tokens: make(chan struct{}, n)}
}

func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.tokens <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) release() { <-a.tokens }

type server struct {
	adm *admission
}

// leakEarlyReturn releases on the happy path but not the early return.
func (s *server) leakEarlyReturn(ctx context.Context, fail bool) error {
	if err := s.adm.acquire(ctx); err != nil { // want "semaphore acquire on s.adm is not released on every path"
		return err
	}
	if fail {
		return nil
	}
	s.adm.release()
	return nil
}

// leakUnchecked never checks the verdict and never releases.
func (s *server) leakUnchecked(ctx context.Context) {
	err := s.adm.acquire(ctx) // want "semaphore acquire on s.adm is not released on every path"
	_ = err
}

// cleanDefer: a deferred release covers every path past the gate.
func (s *server) cleanDefer(ctx context.Context) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	defer s.adm.release()
	return nil
}

// cleanBranches releases explicitly on each continuation.
func (s *server) cleanBranches(ctx context.Context, fast bool) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	if fast {
		s.adm.release()
		return nil
	}
	s.adm.release()
	return nil
}

// cleanClosureHandOff: an escaping closure that releases owns the
// completion path (the coalescer's leader-cancel/follower shape).
func (s *server) cleanClosureHandOff(ctx context.Context, enqueue func(func())) error {
	if err := s.adm.acquire(ctx); err != nil {
		return err
	}
	enqueue(func() { s.adm.release() })
	return nil
}
