// Helper-call half of the semabalance fixtures: handing a held
// semaphore to a unit function discharges only through its
// SemaReleaseParams fact.
package serve

import "context"

// finish releases the admission it is handed on every path
// (SemaReleaseParams).
func finish(a *admission) {
	a.release()
}

// note provably never releases: callers keep the obligation.
func note(a *admission) {
	_ = a
}

// cleanViaHelper discharges through finish's fact.
func cleanViaHelper(ctx context.Context) error {
	adm := newAdmission(1)
	if err := adm.acquire(ctx); err != nil {
		return err
	}
	finish(adm)
	return nil
}

// leakViaHelper: the unit knows note's body, so the release duty
// stays here.
func leakViaHelper(ctx context.Context) error {
	adm := newAdmission(1)
	if err := adm.acquire(ctx); err != nil { // want "semaphore acquire on adm is not released on every path"
		return err
	}
	note(adm)
	return nil
}
