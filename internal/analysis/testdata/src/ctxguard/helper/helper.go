// Package helper carries the cross-package cancel helpers for the
// ctxguard fixtures: CancelsParams facts travel across package
// boundaries with the unit's fact store.
package helper

import "context"

// Stop cancels the func it is handed on every path (CancelsParams).
func Stop(c context.CancelFunc) {
	c()
}

// Keep provably never cancels: callers keep the obligation.
func Keep(c context.CancelFunc) {
	_ = c
}
