// Fixture for the ctxguard analyzer, cancel-pairing direction: every
// context.WithCancel/WithTimeout/WithDeadline must have its cancel
// func called on every path. Helpers discharge only through the
// CancelsParams fact — a unit-local helper that provably does not
// cancel leaves the obligation with the caller.
package a

import (
	"context"
	"time"
)

// leakOnOnePath cancels on the early return but not the fall-through.
func leakOnOnePath(d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d) // want "cancel func of context.WithTimeout is not called on every path"
	if d > 0 {
		cancel()
		return
	}
	_ = ctx
}

// discard throws the cancel func away at the call site.
func discard() {
	ctx, _ := context.WithCancel(context.Background()) // want "cancel func of context.WithCancel is discarded"
	_ = ctx
}

// cleanDefer: a deferred cancel covers every path.
func cleanDefer(d time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	_ = ctx
}

// cleanBothPaths cancels explicitly on each continuation.
func cleanBothPaths(b bool) {
	ctx, cancel := context.WithCancel(context.Background())
	if b {
		cancel()
		return
	}
	cancel()
	_ = ctx
}

var cancels = map[int]context.CancelFunc{}

// cleanTransferToMap: storing the cancel func moves ownership
// (serve.go's qCancels registry shape).
func cleanTransferToMap(id int) {
	ctx, cancel := context.WithCancel(context.Background())
	cancels[id] = cancel
	_ = ctx
}

// cleanTransferToClosure: a closure capturing the cancel owns it now
// (beginQuery's end closure).
func cleanTransferToClosure(run func(func())) {
	ctx, cancel := context.WithCancel(context.Background())
	run(func() { cancel() })
	_ = ctx
}

// stopIt cancels the func it is handed on every path: callers
// discharge through its CancelsParams fact.
func stopIt(c context.CancelFunc) {
	c()
}

// neverCancels provably does not cancel; passing a held cancel to it
// keeps the obligation with the caller.
func neverCancels(c context.CancelFunc) {
	_ = c
}

// cleanViaHelper discharges through stopIt's fact.
func cleanViaHelper() {
	ctx, cancel := context.WithCancel(context.Background())
	stopIt(cancel)
	_ = ctx
}

// leakViaHelper: the unit knows neverCancels' body, so handing the
// cancel over is not a discharge.
func leakViaHelper() {
	ctx, cancel := context.WithCancel(context.Background()) // want "cancel func of context.WithCancel is not called on every path"
	neverCancels(cancel)
	_ = ctx
}
