// Cross-package half of the cancel-pairing fixtures: the helpers live
// in ctxguard/helper and resolve through exported facts.
package a

import (
	"context"

	"ctxguard/helper"
)

// cleanViaCrossHelper discharges through helper.Stop's fact.
func cleanViaCrossHelper() {
	ctx, cancel := context.WithCancel(context.Background())
	helper.Stop(cancel)
	_ = ctx
}

// leakViaCrossHelper: helper.Keep is in the unit and provably does not
// cancel, so the obligation stays here.
func leakViaCrossHelper() {
	ctx, cancel := context.WithCancel(context.Background()) // want "cancel func of context.WithCancel is not called on every path"
	helper.Keep(cancel)
	_ = ctx
}
