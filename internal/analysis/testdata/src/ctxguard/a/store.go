// Fixture for the ctxguard analyzer, lifetime direction: a request
// context (r.Context() or a context derived from it) must not be
// stored into a struct field, map element, or package variable, where
// it would outlive the handler. Plain context parameters are not
// request contexts — parking one in a struct is legitimate plumbing.
package a

import (
	"context"
	"net/http"
)

type holder struct {
	ctx context.Context
}

type options struct {
	Ctx context.Context
}

var globalCtx context.Context

func storeInField(h *holder, r *http.Request) {
	ctx := r.Context()
	h.ctx = ctx // want "request context stored in h.ctx outlives the handler"
}

func storeDerivedInMap(m map[int]context.Context, r *http.Request) {
	rctx := r.Context()
	ctx, cancel := context.WithCancel(rctx)
	defer cancel()
	m[0] = ctx // want "request context stored in map/slice element outlives the handler"
}

func storeInGlobal(r *http.Request) {
	ctx := r.Context()
	globalCtx = ctx // want "request context stored in package variable globalCtx outlives the handler"
}

// cleanCompositeLiteral: per-call option structs die with the request.
func cleanCompositeLiteral(r *http.Request) options {
	ctx := r.Context()
	return options{Ctx: ctx}
}

// cleanPlainParam: a non-request context is legitimate cancellation
// plumbing (obs.Canceled carries one).
func cleanPlainParam(h *holder, ctx context.Context) {
	h.ctx = ctx
}
