// Fixture for the obsnames analyzer, forward direction: the name
// argument of every Recorder write call must resolve to the
// well-known-names registry — directly, through a local variable, or
// through a helper carrying the MetricNameFunc fact.
package a

import "obsnames/obs"

func direct(r *obs.Recorder) {
	r.Inc(obs.CtrHits)
	r.Observe(obs.HistLatNs, 1)
}

func rawLiteral(r *obs.Recorder) {
	r.Inc("fixture.rogue") // want "metric name .fixture.rogue. is not in the obs well-known-names registry"
}

// viaVar: a local resolving to a registry constant is fine.
func viaVar(r *obs.Recorder) {
	name := obs.GaugeDepth
	r.Inc(name)
}

// viaMixedVar: one of the assignments is a rogue literal.
func viaMixedVar(r *obs.Recorder, rogue bool) {
	name := obs.CtrHits
	if rogue {
		name = "fixture.rogue2"
	}
	r.Inc(name) // want "metric name variable name does not resolve to the obs well-known-names registry"
}

// helperName returns registry constants on every path: MetricNameFunc.
func helperName(hot bool) string {
	if hot {
		return obs.CtrHits
	}
	return obs.HistLatNs
}

// viaHelper discharges through helperName's fact.
func viaHelper(r *obs.Recorder) {
	r.Inc(helperName(true))
}

// viaParam: a parameter has no resolvable source in this body.
func viaParam(r *obs.Recorder, metric string) {
	r.Inc(metric) // want "metric name variable metric does not resolve to the obs well-known-names registry"
}

// readSideUnchecked: read methods take arbitrary names by design.
func readSideUnchecked(r *obs.Recorder, metric string) int {
	return r.HistSummary(metric)
}
