// Package obs is the fixture registry for the obsnames analyzer: it
// keys on packages named "obs", their exported Ctr*/Gauge*/Hist*
// string constants, and the Recorder write methods. CtrOrphan is
// referenced only by WellKnownNames, which is excluded by design — the
// reverse (drift) direction flags it.
package obs

const (
	CtrHits    = "fixture.hits"
	GaugeDepth = "fixture.depth"
	HistLatNs  = "fixture.lat_ns"
	CtrOrphan  = "fixture.orphan" // want "registry constant CtrOrphan is not referenced by any instrumentation in this build"
)

type Recorder struct{}

func (r *Recorder) Inc(name string)              {}
func (r *Recorder) Observe(name string, v int64) {}

// HistSummary is a read-side method: it takes arbitrary names by
// design and is not checked.
func (r *Recorder) HistSummary(name string) int { return 0 }

// WellKnownNames references every constant by design; it does not
// count as instrumentation.
func WellKnownNames() []string {
	return []string{CtrHits, GaugeDepth, HistLatNs, CtrOrphan}
}
