// Fixture for the atomicalign analyzer: 64-bit atomic fields must sit
// at 8-aligned offsets under the worst-case 32-bit layout (WordSize 4).
package a

import "sync/atomic"

type bad struct {
	flag uint32 // 4 bytes: pushes n to offset 4 on 32-bit
	n    int64
}

func (b *bad) inc() {
	atomic.AddInt64(&b.n, 1) // want "64-bit atomic access to field n at 32-bit offset 4"
}

type good struct {
	n    int64 // first field: offset 0 in every layout
	flag uint32
}

func (g *good) inc() {
	atomic.AddInt64(&g.n, 1)
}

type padded struct {
	flag uint32
	_    uint32 // explicit pad keeps n 8-aligned on 32-bit
	n    int64
}

func (p *padded) load() int64 {
	return atomic.LoadInt64(&p.n)
}

// The shapes below mirror the internal/obs observability structs: a
// log-bucketed histogram (scalar atomics followed by an atomic cell
// array) and a flight-recorder ring (a cursor plus an array of
// all-atomic slots), in both a correctly laid out form and a form
// whose leading narrow field breaks 32-bit alignment.

type histogram struct {
	count  int64 // 64-bit fields first: offsets 0, 8, 16
	sum    int64
	max    int64
	counts [16]int64
}

func (h *histogram) record(v int64, i int) {
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.counts[i], 1)
	atomic.CompareAndSwapInt64(&h.max, 0, v)
}

type badHistogram struct {
	enabled uint32 // 4 bytes: every cell below lands 4-misaligned on 32-bit
	count   int64
	counts  [16]int64
}

func (h *badHistogram) record(i int) {
	atomic.AddInt64(&h.count, 1) // want "64-bit atomic access to field count at 32-bit offset 4"
}

type ringSlot struct {
	seq int64 // all-int64 slots: every field 8-aligned at any index
	ts  int64
	val int64
}

type ring struct {
	cursor int64
	slots  [8]ringSlot
}

func (r *ring) publish(v int64) {
	ticket := atomic.AddInt64(&r.cursor, 1)
	s := &r.slots[(ticket-1)&7]
	atomic.StoreInt64(&s.seq, -ticket)
	atomic.StoreInt64(&s.val, v)
	atomic.StoreInt64(&s.seq, ticket)
}

type badRing struct {
	open   uint32 // narrow leading field misaligns the whole ring on 32-bit
	cursor int64
}

func (r *badRing) next() int64 {
	return atomic.AddInt64(&r.cursor, 1) // want "64-bit atomic access to field cursor at 32-bit offset 4"
}

// holder reaches a ring through a pointer: the pointed-to struct gets
// a fresh 8-aligned allocation, so the hop resets the offset analysis
// (the internal/obs Recorder relies on exactly this for its flight
// ring).
type holder struct {
	pad    uint32
	flight *ring
}

func (h *holder) bump() int64 {
	return atomic.AddInt64(&h.flight.cursor, 1)
}
