// Fixture for the atomicalign analyzer: 64-bit atomic fields must sit
// at 8-aligned offsets under the worst-case 32-bit layout (WordSize 4).
package a

import "sync/atomic"

type bad struct {
	flag uint32 // 4 bytes: pushes n to offset 4 on 32-bit
	n    int64
}

func (b *bad) inc() {
	atomic.AddInt64(&b.n, 1) // want "64-bit atomic access to field n at 32-bit offset 4"
}

type good struct {
	n    int64 // first field: offset 0 in every layout
	flag uint32
}

func (g *good) inc() {
	atomic.AddInt64(&g.n, 1)
}

type padded struct {
	flag uint32
	_    uint32 // explicit pad keeps n 8-aligned on 32-bit
	n    int64
}

func (p *padded) load() int64 {
	return atomic.LoadInt64(&p.n)
}
