// The internal/rng suffix is the one place math/rand may appear (the
// real package wraps seeded generators); clean.
package rng

import "math/rand"

func Int(seed int64) int64 {
	return rand.New(rand.NewSource(seed)).Int63()
}
