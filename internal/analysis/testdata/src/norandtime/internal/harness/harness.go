// The internal/harness suffix owns the timing primitive; clean.
package harness

import "time"

func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
