// Fixture pinning the //lint:ignore suppression mechanism: both
// placements (line above, same line) silence the diagnostic, so this
// package must produce no findings.
package suppressed

import "time"

//lint:ignore julvet/norandtime fixture pins the line-above directive placement
var bootTime = time.Now()

func sameLine() time.Time {
	return time.Now() //lint:ignore julvet/norandtime fixture pins the same-line directive placement
}
