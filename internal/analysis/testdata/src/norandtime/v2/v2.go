// math/rand/v2 is forbidden just like math/rand.
package v2

import "math/rand/v2" // want "import of math/rand/v2: use the seeded generators in internal/rng"

func roll() int {
	return rand.IntN(6)
}
