// Fixture for the norandtime analyzer: math/rand is forbidden outside
// internal/rng, bare time.Now outside internal/harness and
// internal/obs.
package a

import (
	"math/rand" // want "import of math/rand: use the seeded generators in internal/rng"
	"time"
)

func jitter() int64 {
	return rand.Int63()
}

func stamp() time.Time {
	return time.Now() // want "bare time.Now: route timing through internal/harness"
}

// since is fine: only Now is the measurement primitive the harness
// owns; arithmetic on times obtained elsewhere is not flagged.
func since(t0, t1 time.Time) time.Duration {
	return t1.Sub(t0)
}
