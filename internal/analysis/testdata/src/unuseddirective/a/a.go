// Fixture for the unuseddirective driver check: the first directive
// suppresses a live norandtime finding and is kept; the second
// suppresses nothing; the third names an analyzer that does not exist.
// The driver tests in interproc_test.go pin the expected diagnostics
// directly (want comments only cover analyzer diagnostics).
package a

import "time"

func now() int64 {
	//lint:ignore julvet/norandtime fixture pins a live suppression
	return time.Now().UnixNano()
}

//lint:ignore julvet/norandtime stale: nothing below trips the analyzer
func pure() int {
	return 4
}

//lint:ignore julvet/nosuchanalyzer typo in the analyzer name
func other() int {
	return 5
}
