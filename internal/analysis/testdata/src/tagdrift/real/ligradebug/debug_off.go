//go:build !julienne_debug

package ligra

import "julienne/internal/graph"

// Release half of the julienne_debug assertion pair; see debug_on.go.

func debugCheckSparse(n int, ids []graph.Vertex) {}
