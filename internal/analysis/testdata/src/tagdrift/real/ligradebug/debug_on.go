//go:build julienne_debug

package ligra

import (
	"fmt"

	"julienne/internal/graph"
)

// Debug half of the julienne_debug assertion pair (see the matching
// files in internal/bucket). VertexSubset documents that sparse inputs
// hold distinct in-range vertex ids — a duplicate or out-of-range id
// makes edgeMap visit neighbors twice or index out of bounds in the
// dense conversion — so tagged builds verify the contract at the one
// place sparse slices enter the model.

func debugCheckSparse(n int, ids []graph.Vertex) {
	seen := make(map[graph.Vertex]struct{}, len(ids))
	for _, v := range ids {
		if int(v) >= n {
			panic(fmt.Sprintf("ligra debug: sparse subset id %d out of range [0,%d)", v, n))
		}
		if _, dup := seen[v]; dup {
			panic(fmt.Sprintf("ligra debug: sparse subset contains duplicate id %d", v))
		}
		seen[v] = struct{}{}
	}
}
