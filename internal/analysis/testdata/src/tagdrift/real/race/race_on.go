//go:build race

package parallel

// RaceEnabled reports whether the race detector is compiled in. The
// zero-allocation regression tests skip under -race: the detector
// deliberately randomizes sync.Pool reuse and charges its own
// bookkeeping allocations to the measured function.
const RaceEnabled = true
