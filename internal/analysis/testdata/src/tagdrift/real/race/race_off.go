//go:build !race

package parallel

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
