//go:build julienne_debug

package bucket

import "fmt"

// This file is the julienne_debug half of the assertion pair declared
// in debug_off.go: building with `-tags julienne_debug` compiles the
// bucket structure's internal contract into every operation, so the
// property tests in internal/proptest exercise the §3 invariants
// directly rather than only end-to-end algorithm outputs. The checks
// are deliberately O(work) per operation — debug builds are for tests,
// not benchmarks.
//
// Invariants asserted:
//
//   - extraction liveness: every identifier returned by NextBucket has
//     D(i) equal to the returned bucket id, is unique within the
//     returned slice, and is a valid identifier;
//   - traversal monotonicity: bucket ids returned by NextBucket are
//     non-decreasing under Increasing order (non-increasing under
//     Decreasing) — non-strict, because algorithms legally reinsert
//     into the current bucket;
//   - update destinations: every non-None Dest passed to UpdateBuckets
//     addresses a real physical slot (open range or overflow);
//   - bookkeeping: each UpdateBuckets call moves + skips exactly its k
//     requests, and the cumulative Stats counters agree with shadow
//     counts maintained here;
//   - single live copy: across the whole structure, each identifier
//     has at most one live copy (a stored copy whose slot matches its
//     current D value) — stale copies from lazy deletion may be
//     plentiful, live ones may not.

// DebugEnabled reports whether invariant assertions are compiled in.
const DebugEnabled = true

// debugState is the shadow bookkeeping behind the assertions.
type debugState struct {
	last      ID
	hasLast   bool
	extracted int64
	returned  int64
	moved     int64
	skipped   int64
}

func (d *debugState) checkExtract(order Order, cur ID, live []uint32, n int, dfn func(uint32) ID, s Stats) {
	if d.hasLast {
		if order == Increasing && cur < d.last {
			panic(fmt.Sprintf("bucket debug: NextBucket returned %d after %d under Increasing order", cur, d.last))
		}
		if order == Decreasing && cur > d.last {
			panic(fmt.Sprintf("bucket debug: NextBucket returned %d after %d under Decreasing order", cur, d.last))
		}
	}
	d.last, d.hasLast = cur, true
	seen := make(map[uint32]struct{}, len(live))
	for _, id := range live {
		if n >= 0 && int(id) >= n {
			panic(fmt.Sprintf("bucket debug: extracted identifier %d out of range [0,%d)", id, n))
		}
		if got := dfn(id); got != cur {
			panic(fmt.Sprintf("bucket debug: extracted identifier %d from bucket %d but D(i)=%d", id, cur, got))
		}
		if _, dup := seen[id]; dup {
			panic(fmt.Sprintf("bucket debug: identifier %d extracted twice from bucket %d", id, cur))
		}
		seen[id] = struct{}{}
	}
	d.extracted += int64(len(live))
	d.returned++
	if s.Extracted != d.extracted || s.BucketsReturned != d.returned {
		panic(fmt.Sprintf("bucket debug: Stats extraction bookkeeping (Extracted=%d BucketsReturned=%d) diverged from shadow (%d, %d)",
			s.Extracted, s.BucketsReturned, d.extracted, d.returned))
	}
}

func (d *debugState) checkUpdateTotals(k int, moved, skipped int64, s Stats) {
	if moved+skipped != int64(k) {
		panic(fmt.Sprintf("bucket debug: UpdateBuckets(k=%d) accounted for moved=%d + skipped=%d requests", k, moved, skipped))
	}
	d.moved += moved
	d.skipped += skipped
	if s.Moved != d.moved || s.Skipped != d.skipped {
		panic(fmt.Sprintf("bucket debug: Stats update bookkeeping (Moved=%d Skipped=%d) diverged from shadow (%d, %d)",
			s.Moved, s.Skipped, d.moved, d.skipped))
	}
}

func (b *Par) debugReset() { b.dbg = debugState{} }

func (b *Par) debugCheckExtract(cur ID, live []uint32) {
	b.dbg.checkExtract(b.order, cur, live, b.n, b.d, b.Stats())
}

func (b *Par) debugCheckUpdate(k int, f func(int) (uint32, Dest)) {
	for j := 0; j < k; j++ {
		id, dest := f(j)
		if dest == None {
			continue
		}
		if int(id) >= b.n {
			panic(fmt.Sprintf("bucket debug: update %d targets identifier %d out of range [0,%d)", j, id, b.n))
		}
		if int(dest) > b.nB {
			panic(fmt.Sprintf("bucket debug: update %d has destination slot %d beyond overflow slot %d", j, dest, b.nB))
		}
	}
}

func (b *Par) debugCheckUpdateTotals(k int, moved, skipped int64) {
	b.dbg.checkUpdateTotals(k, moved, skipped, b.Stats())
}

// debugCheckStructure walks every physical slot and asserts the single
// live copy invariant: an identifier may have stale copies anywhere,
// but at most one copy whose location matches its current D value
// (open slot with matching logical id, or the overflow slot while D is
// beyond the open range). Two live copies of one identifier would make
// NextBucket extract it twice.
func (b *Par) debugCheckStructure() {
	if b.done {
		return
	}
	live := make(map[uint32]int)
	check := func(slot int, ids []uint32, overflow bool) {
		for _, id := range ids {
			if int(id) >= b.n {
				panic(fmt.Sprintf("bucket debug: slot %d stores identifier %d out of range [0,%d)", slot, id, b.n))
			}
			d := b.d(id)
			isLive := false
			if overflow {
				isLive = b.beyond(d)
			} else {
				isLive = d == b.logical(slot)
			}
			if isLive {
				live[id]++
				if live[id] > 1 {
					panic(fmt.Sprintf("bucket debug: identifier %d has %d live copies (D=%d)", id, live[id], d))
				}
			}
		}
	}
	for slot := 0; slot <= b.nB; slot++ {
		bk := &b.bkts[slot]
		n := 0
		for _, chunk := range bk.chunks {
			check(slot, chunk, slot == b.nB)
			n += len(chunk)
		}
		if n != bk.n {
			panic(fmt.Sprintf("bucket debug: slot %d chunks hold %d identifiers but n is %d", slot, n, bk.n))
		}
	}
}

func (s *Seq) debugCheckExtract(cur ID, live []uint32) {
	s.dbg.checkExtract(s.order, cur, live, -1, s.d, s.Stats())
}

func (s *Seq) debugCheckUpdateTotals(k int, moved, skipped int64) {
	s.dbg.checkUpdateTotals(k, moved, skipped, s.Stats())
}
