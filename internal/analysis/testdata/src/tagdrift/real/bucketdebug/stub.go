// Stub declarations so the verbatim copy of internal/bucket's
// debug_off.go (the active half of the pair) type-checks inside the
// fixture tree. Only the identifiers the release half mentions are
// needed; the tagged half is parse-only. If the real files gain new
// dependencies, extend this stub when refreshing the copies.
package bucket

type ID uint32

type Dest uint64

type Par struct {
	debug debugState
}

type Seq struct {
	debug debugState
}
