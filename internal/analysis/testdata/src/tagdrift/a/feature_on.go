//go:build feature

// Tagged half of the pair; build-excluded, so it is parsed but not
// type-checked — tagdrift compares it syntactically.
package a

const Enabled = true

func hook(k int) {}

func onOnly(x int) int { return x } // want "tag drift: func onOnly\\(int\\)\\(int\\) has no matching declaration in feature_off.go"

func sized(n int64) {} // want "tag drift: func sized\\(int64\\) has no matching declaration in feature_off.go"

// shadow is declared on both sides (shared code may reference it), but
// its helper method is pair-private implementation detail: exempt even
// though the _off half declares no counterpart.
type shadow struct {
	count int64
}

func (s *shadow) helper() { s.count++ }
