//go:build !feature

// Fixture for the tagdrift analyzer: the two halves of a tag pair must
// declare matching signatures. This is the active (untagged) half.
package a

// Enabled exists on both sides with different values: clean.
const Enabled = false

// hook matches the _on half up to parameter names: clean.
func hook(n int) {}

// offOnly has no counterpart in the _on half.
func offOnly() {} // want "tag drift: func offOnly\\(\\) has no matching declaration in feature_on.go"

// sized drifted: the _on half takes int64.
func sized(n int) {} // want "tag drift: func sized\\(int\\) has no matching declaration in feature_on.go"

// shadow is empty in the release half; methods on it are pair-private.
type shadow struct{}
