//go:build feature

// A tagged _on file with no _off counterpart at all.
package b // want "tag-paired file lonely_on.go has no matching lonely_off.go"

const Orphan = true
