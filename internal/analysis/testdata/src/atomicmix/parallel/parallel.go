// Package parallel is a fixture stand-in for julienne's
// internal/parallel atomic wrappers: the atomicmix analyzer must treat
// these exactly like direct sync/atomic calls.
package parallel

import "sync/atomic"

func AddInt64(p *int64, delta int64) int64 {
	return atomic.AddInt64(p, delta)
}

func LoadUint32(p *uint32) uint32 {
	return atomic.LoadUint32(p)
}
