// Fixture: accesses through the internal/parallel atomic wrappers
// count as atomic accesses, so a plain read elsewhere is still mixing.
package b

import "atomicmix/parallel"

type stats struct {
	moved int64
}

func (s *stats) add(k int64) {
	parallel.AddInt64(&s.moved, k)
}

func (s *stats) peek() int64 {
	return s.moved // want "plain access of b\\.moved, which is accessed atomically elsewhere"
}
