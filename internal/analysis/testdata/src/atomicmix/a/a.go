// Fixture for the atomicmix analyzer: fields and package variables
// accessed via sync/atomic in one place must be accessed atomically
// everywhere; reads through a private value snapshot are exempt.
package a

import "sync/atomic"

type counter struct {
	n int64
}

func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) bad() int64 {
	return c.n // want "plain access of a\\.n, which is accessed atomically elsewhere"
}

func (c *counter) badWrite() {
	c.n = 0 // want "plain access of a\\.n, which is accessed atomically elsewhere"
}

// snapshot takes the value atomically; the copy is private to the
// holder, so plain field reads on it are fine.
func (c *counter) snapshot() counter {
	return counter{n: atomic.LoadInt64(&c.n)}
}

func diff(a, b counter) int64 {
	return a.n - b.n // clean: value copies, no shared memory
}

var hits int64

func touch() {
	atomic.AddInt64(&hits, 1)
}

func peek() int64 {
	return hits // want "plain access of package variable hits"
}
