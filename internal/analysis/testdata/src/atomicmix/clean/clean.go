// Clean fixture: a package with consistent atomic discipline produces
// no atomicmix diagnostics.
package clean

import "sync/atomic"

type gauge struct {
	v int64
}

func (g *gauge) set(x int64) {
	atomic.StoreInt64(&g.v, x)
}

func (g *gauge) get() int64 {
	return atomic.LoadInt64(&g.v)
}
