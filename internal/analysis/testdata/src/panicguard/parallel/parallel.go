// Package parallel is the positive fixture for panicguard: it mirrors
// the substrate's worker-spawn shapes. The analyzer keys on the
// package name, so these declarations trip it.
package parallel

import "sync"

type panicCatcher struct{ got any }

func (pc *panicCatcher) recoverPanic() {
	if v := recover(); v != nil {
		pc.got = v
	}
}

func recoverPanic() {
	recover()
}

// goodBlocked is the canonical protected worker: defer recoverPanic
// before the caller-supplied body runs.
func goodBlocked(n int, body func(lo, hi int)) {
	var pc panicCatcher
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer pc.recoverPanic()
		body(0, n)
	}()
	wg.Wait()
}

// goodPlainHelper accepts the package-level recoverPanic helper too.
func goodPlainHelper(body func()) {
	go func() {
		defer recoverPanic()
		body()
	}()
}

// badUnprotected calls the caller-supplied body with no recover
// wrapper: a panic in body crashes the process.
func badUnprotected(n int, body func(lo, hi int)) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		body(0, n) // want "caller-supplied function body called in a worker goroutine without a deferred recoverPanic"
	}()
	wg.Wait()
}

// badConditionalDefer installs the wrapper only on one branch; only
// top-level defers count.
func badConditionalDefer(cond bool, body func()) {
	var pc panicCatcher
	go func() {
		if cond {
			defer pc.recoverPanic()
		}
		body() // want "caller-supplied function body called in a worker goroutine"
	}()
}

// badDirectSpawn spawns the caller's function value with no frame to
// hang a recover on.
func badDirectSpawn(thunk func()) {
	go thunk() // want "caller-supplied function thunk spawned directly with go"
}

// goodNamedFunc: calls to declared functions and methods of the
// substrate itself are not caller-supplied values.
func helper() {}

func goodNamedFunc() {
	go func() {
		helper()
	}()
}

// goodNestedSpawnCheckedSeparately: the outer goroutine is clean; the
// inner one is flagged on its own visit, once.
func goodNestedSpawnCheckedSeparately(body func()) {
	go func() {
		go func() {
			body() // want "caller-supplied function body called in a worker goroutine"
		}()
	}()
}

// suppressedSpawn pins the escape hatch.
func suppressedSpawn(thunk func()) {
	//lint:ignore julvet/panicguard fixture pins the suppression path
	go thunk()
}
