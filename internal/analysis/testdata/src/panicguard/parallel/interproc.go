// Interprocedural fixtures for panicguard: a helper spawned with (or
// called from) a worker goroutine carries caller-supplied function
// values into the goroutine; only its InstallsRecover fact makes that
// safe — same-package and across packages.
package parallel

import "panicguard/guards"

func runTask(fn func()) {
	fn()
}

func runGuarded(fn func()) {
	defer recoverPanic()
	fn()
}

func spawnViaHelper(fn func()) {
	go runTask(fn) // want "caller-supplied function fn reaches runTask in a worker goroutine"
}

func spawnViaGuardedHelper(fn func()) {
	go runGuarded(fn)
}

func spawnBodyHelper(fn func()) {
	go func() {
		runTask(fn) // want "caller-supplied function fn reaches runTask in a worker goroutine"
	}()
}

func spawnViaCrossHelper(fn func()) {
	go guards.RunBare(fn) // want "caller-supplied function fn reaches RunBare in a worker goroutine"
}

func spawnViaCrossGuarded(fn func()) {
	go guards.RunGuarded(fn)
}
