// Package guards carries the cross-package spawn helpers for the
// panicguard fixtures: InstallsRecover travels as a fact, so the
// substrate package can spawn these without a local wrapper.
package guards

func recoverPanic() {
	recover()
}

// RunGuarded contains panics from the caller-supplied function.
func RunGuarded(fn func()) {
	defer recoverPanic()
	fn()
}

// RunBare lets a panic in fn escape the goroutine.
func RunBare(fn func()) {
	fn()
}
