// Package other shows the analyzer is scoped to the substrate: the
// same unprotected shapes outside package parallel are not flagged
// (other packages do not spawn substrate workers; their goroutines are
// governed by ordinary code review, not this contract).
package other

func spawn(body func()) {
	go body()
	go func() {
		body()
	}()
}
