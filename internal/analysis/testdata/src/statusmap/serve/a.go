// Fixture for the statusmap analyzer: every typed error a serve
// package exports must map to exactly one HTTP status across its
// errors.Is branches. The package is named "serve" (the analyzer keys
// on the name); failJSON mirrors internal/serve's writer helper.
package serve

import (
	"errors"
	"net/http"
)

var (
	ErrQueueFull = errors.New("queue full")
	ErrClosing   = errors.New("closing")
	ErrUnmapped  = errors.New("unmapped") // want "typed error ErrUnmapped has no HTTP status mapping in this package"
	ErrForked    = errors.New("forked")
)

func failJSON(w http.ResponseWriter, status int, msg string) {
	w.WriteHeader(status)
}

func handle(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrQueueFull):
		failJSON(w, http.StatusTooManyRequests, "busy")
	case errors.Is(err, ErrClosing):
		failJSON(w, http.StatusServiceUnavailable, "closing")
	default:
		failJSON(w, http.StatusGatewayTimeout, "timeout")
	}
}

// handleAgain maps ErrQueueFull to the same status (consistent, no
// finding) and gives ErrForked its first mapping.
func handleAgain(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrQueueFull) {
		failJSON(w, http.StatusTooManyRequests, "busy")
	}
	if errors.Is(err, ErrForked) {
		failJSON(w, http.StatusBadRequest, "bad")
	}
}

// handleForked forks ErrForked's contract with a second status.
func handleForked(w http.ResponseWriter, err error) {
	if errors.Is(err, ErrForked) {
		w.WriteHeader(http.StatusConflict) // want "typed error ErrForked maps to multiple HTTP statuses"
	}
}
