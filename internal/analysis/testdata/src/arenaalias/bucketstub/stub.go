// Package bucketstub is the shared arena-owning structure for the
// interprocedural arenaalias fixtures: the analyzer matches producer
// and invalidator calls by method name, and the exported helpers carry
// ArenaResults/InvalidatesArena facts across the package boundary.
package bucketstub

type B struct {
	arena []uint32
}

func (b *B) NextBucket() (uint32, []uint32) {
	return 0, b.arena
}

func (b *B) UpdateBuckets(ids []uint32) {}

// DrainNext tail-returns the producer: callers binding its results arm
// an arena slice (ArenaResults/ArenaSliceIdx facts).
func DrainNext(b *B) (uint32, []uint32) {
	return b.NextBucket()
}

// Touch invalidates the structure it is handed (InvalidatesArena).
func Touch(b *B) {
	b.UpdateBuckets(nil)
}
