// Interprocedural fixtures for arenaalias: producer wrappers and
// invalidating helpers — same-package, chained through two hops, and
// across a package boundary — all resolved through the fact store.
package interproc

import "arenaalias/bucketstub"

func use(x uint32) {}

// drainNext and touch are same-package wrappers around the producer
// and an invalidator.
func drainNext(b *bucketstub.B) (uint32, []uint32) {
	return b.NextBucket()
}

func touch(b *bucketstub.B) {
	b.UpdateBuckets(nil)
}

// touchChain invalidates through two hops: the fixpoint propagates the
// fact up the helper chain.
func touchChain(b *bucketstub.B) {
	touch(b)
}

func samePackage(b *bucketstub.B) {
	_, ids := drainNext(b)
	touch(b)
	use(ids[0]) // want "ids aliases the bucket arena"
}

func samePackageChained(b *bucketstub.B) {
	_, ids := drainNext(b)
	touchChain(b)
	use(ids[0]) // want "ids aliases the bucket arena"
}

func crossPackage(b *bucketstub.B) {
	_, ids := bucketstub.DrainNext(b)
	bucketstub.Touch(b)
	use(ids[0]) // want "ids aliases the bucket arena"
}

// cleanCopyOut copies before the invalidating helper call.
func cleanCopyOut(b *bucketstub.B) []uint32 {
	_, ids := drainNext(b)
	out := append([]uint32(nil), ids...)
	touch(b)
	return out
}

// cleanHeaderOnly: len reads the slice header, not the arena.
func cleanHeaderOnly(b *bucketstub.B) int {
	_, ids := drainNext(b)
	touch(b)
	return len(ids)
}
