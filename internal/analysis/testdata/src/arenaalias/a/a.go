// Fixture for the arenaalias analyzer. B mimics the bucket structures:
// NextBucket returns a slice aliasing an internal arena that the next
// NextBucket/UpdateBuckets call overwrites.
package a

type B struct {
	arena []uint32
}

func (b *B) NextBucket() (uint32, []uint32) {
	return 0, b.arena
}

func (b *B) UpdateBuckets(k int) {}

func each(n int, f func(int)) {
	for i := 0; i < n; i++ {
		f(i)
	}
}

// Bad reads the arena slice after UpdateBuckets invalidated it.
func Bad(b *B) uint32 {
	_, ids := b.NextBucket()
	b.UpdateBuckets(1)
	return ids[0] // want "ids aliases the bucket arena and a later NextBucket/NextBucketFused/DrainLazy/UpdateBuckets call has since invalidated it"
}

// BadNext reads the slice after the next NextBucket overwrote it.
func BadNext(b *B) uint32 {
	_, ids := b.NextBucket()
	_, _ = b.NextBucket()
	return ids[0] // want "ids aliases the bucket arena"
}

// BadClosure is the shape of the densest-subgraph regression: the
// expired slice is read through a parallel-style closure. The closure
// runs synchronously at its lexical position, so this is a use after
// invalidation.
func BadClosure(b *B) uint32 {
	_, ids := b.NextBucket()
	b.UpdateBuckets(1)
	var sum uint32
	each(len(ids), func(i int) { sum += ids[i] }) // want "ids aliases the bucket arena"
	return sum
}

// BadAlias reaches the expired arena through a plain alias.
func BadAlias(b *B) uint32 {
	_, ids := b.NextBucket()
	saved := ids
	b.UpdateBuckets(1)
	return saved[0] // want "saved aliases the bucket arena"
}
