// Fixtures for the fused arena methods: NextBucketFused and DrainLazy
// return slices aliasing the same arena NextBucket uses, and each call
// also recompacts it — so either one invalidates every slice handed
// out earlier.
package a

func (b *B) NextBucketFused(maxFrontier, maxSpan int) (uint32, uint32, []uint32) {
	return 0, 0, b.arena
}

func (b *B) DrainLazy() []uint32 { return b.arena }

// BadFusedFrontier reads the fused frontier after DrainLazy recompacted
// the arena. Only the DrainLazy invalidation edge catches this; the
// mutation test in analyzers_test.go removes that edge and proves the
// diagnostic disappears.
func BadFusedFrontier(b *B) uint32 {
	_, _, ids := b.NextBucketFused(8, 0)
	b.DrainLazy()
	return ids[0] // want "ids aliases the bucket arena"
}

// BadLazyAfterFused reads a drained slice after the next fused
// extraction overwrote it — the NextBucketFused invalidation edge.
func BadLazyAfterFused(b *B) uint32 {
	lz := b.DrainLazy()
	_, _, _ = b.NextBucketFused(8, 0)
	return lz[0] // want "lz aliases the bucket arena"
}

// BadFusedAfterUpdate pairs the fused producer with the pre-existing
// UpdateBuckets invalidator; it must keep firing even when the fused
// invalidation edges are mutated away.
func BadFusedAfterUpdate(b *B) uint32 {
	_, _, ids := b.NextBucketFused(8, 0)
	b.UpdateBuckets(1)
	return ids[0] // want "ids aliases the bucket arena"
}

// FusedCopyOut is the contractual fix: copy the frontier before the
// drain flips the arena.
func FusedCopyOut(b *B) []uint32 {
	_, _, ids := b.NextBucketFused(8, 0)
	out := append([]uint32(nil), ids...)
	b.DrainLazy()
	return out
}

// FusedWaveLoop is the canonical fused round shape (extract, consume,
// update, drain, repeat): each drain re-arms the working slice before
// the next read, so nothing expires.
func FusedWaveLoop(b *B) uint32 {
	var total uint32
	_, _, wave := b.NextBucketFused(8, 0)
	for len(wave) > 0 {
		for _, id := range wave {
			total += id
		}
		b.UpdateBuckets(len(wave))
		wave = b.DrainLazy()
	}
	return total
}
