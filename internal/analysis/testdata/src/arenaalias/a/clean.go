package a

// CopyOut is the contractual fix: append onto an independent slice
// before the arena is invalidated.
func CopyOut(b *B) []uint32 {
	_, ids := b.NextBucket()
	out := append([]uint32(nil), ids...)
	b.UpdateBuckets(1)
	return out
}

// HeaderOnly reads only the slice header after invalidation; len/cap
// never touch the backing array.
func HeaderOnly(b *B) int {
	_, ids := b.NextBucket()
	b.UpdateBuckets(1)
	return len(ids)
}

// UseBefore consumes the slice while it is still valid.
func UseBefore(b *B) uint32 {
	_, ids := b.NextBucket()
	x := ids[0]
	b.UpdateBuckets(1)
	return x
}

// Rebound re-extracts after the invalidation, which re-arms the
// binding: the read sees the fresh arena contents.
func Rebound(b *B) uint32 {
	_, ids := b.NextBucket()
	b.UpdateBuckets(int(ids[0]))
	_, ids = b.NextBucket()
	return ids[0]
}

// PeelLoop is the canonical peeling shape: extract at the top of each
// round, consume within the round, update at the bottom.
func PeelLoop(b *B) uint32 {
	var total uint32
	for r := 0; r < 4; r++ {
		_, ids := b.NextBucket()
		for _, id := range ids {
			total += id
		}
		b.UpdateBuckets(len(ids))
	}
	return total
}
