package analysis

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// TagDrift keeps build-tag-paired files honest. The repository pairs
// files by suffix — race_on.go/race_off.go, debug_on.go/debug_off.go —
// where exactly one of each pair compiles into any given build, and
// the rest of the package calls through the shared surface. If the two
// halves drift (a hook added to the _on file but not the _off file, or
// a signature change on one side), the configuration that CI happens
// not to build breaks silently.
//
// For each <base>_on.go/<base>_off.go pair in a package directory
// (active or build-tag-excluded), the analyzer compares, purely
// syntactically:
//
//   - functions and methods, by name, receiver base type, and
//     parameter/result types (parameter names are ignored) — except
//     methods on types declared inside the pair itself, which are
//     pair-private implementation detail (e.g. debugState's helpers);
//   - package-level const, var, and type names (not their values or
//     structures: the halves exist precisely to differ there).
//
// Every mismatch is reported on the file missing the declaration.
var TagDrift = &Analyzer{
	Name: "tagdrift",
	Doc:  "flags signature drift between build-tag-paired files (x_on.go vs x_off.go)",
	Run:  runTagDrift,
}

// tagDecl is one comparable package-level declaration.
type tagDecl struct {
	kind string // "func", "const", "var", "type"
	key  string // comparison key (name + normalized signature for funcs)
}

func runTagDrift(pass *Pass) error {
	byName := map[string]*ast.File{}
	for _, f := range pass.Files {
		byName[baseFilename(pass.Fset, f)] = f
	}
	for _, f := range pass.IgnoredFiles {
		byName[baseFilename(pass.Fset, f)] = f
	}
	for name, f := range byName {
		base, ok := strings.CutSuffix(name, "_on.go")
		if !ok {
			continue
		}
		offName := base + "_off.go"
		off, ok := byName[offName]
		if !ok {
			pass.Reportf(f.Package, "tag-paired file %s has no matching %s", name, offName)
			continue
		}
		comparePair(pass, name, f, offName, off)
	}
	return nil
}

func baseFilename(fset *token.FileSet, f *ast.File) string {
	full := fset.Position(f.Package).Filename
	if i := strings.LastIndexByte(full, '/'); i >= 0 {
		return full[i+1:]
	}
	return full
}

func comparePair(pass *Pass, onName string, on *ast.File, offName string, off *ast.File) {
	// Types declared inside either half are pair-private: methods on
	// them need not match (the halves legitimately differ in their
	// internal helpers), but the type names themselves must exist on
	// both sides so shared code can reference them.
	privateTypes := map[string]bool{}
	for _, f := range []*ast.File{on, off} {
		for _, d := range f.Decls {
			if gd, ok := d.(*ast.GenDecl); ok && gd.Tok == token.TYPE {
				for _, spec := range gd.Specs {
					privateTypes[spec.(*ast.TypeSpec).Name.Name] = true
				}
			}
		}
	}
	onDecls := collectTagDecls(pass.Fset, on, privateTypes)
	offDecls := collectTagDecls(pass.Fset, off, privateTypes)
	reportMissing(pass, on, onDecls, offName, offDecls)
	reportMissing(pass, off, offDecls, onName, onDecls)
}

// reportMissing reports every declaration of `have` absent from
// `other`, anchored on the file that has the declaration (the fix is
// usually to mirror it, and that is where the author is looking).
func reportMissing(pass *Pass, f *ast.File, have map[tagDecl]token.Pos, otherName string, other map[tagDecl]token.Pos) {
	keys := make([]tagDecl, 0, len(have))
	for d := range have {
		keys = append(keys, d)
	}
	sort.Slice(keys, func(i, j int) bool { return have[keys[i]] < have[keys[j]] })
	for _, d := range keys {
		if _, ok := other[d]; !ok {
			pass.Reportf(have[d], "tag drift: %s %s has no matching declaration in %s", d.kind, d.key, otherName)
		}
	}
}

func collectTagDecls(fset *token.FileSet, f *ast.File, privateTypes map[string]bool) map[tagDecl]token.Pos {
	decls := map[tagDecl]token.Pos{}
	for _, d := range f.Decls {
		switch dd := d.(type) {
		case *ast.FuncDecl:
			recv := ""
			if dd.Recv != nil && len(dd.Recv.List) > 0 {
				recv = receiverBase(dd.Recv.List[0].Type)
				if privateTypes[recv] {
					continue
				}
			}
			key := dd.Name.Name + normalizeSignature(fset, dd)
			if recv != "" {
				key = "(" + recv + ")." + key
			}
			decls[tagDecl{kind: "func", key: key}] = dd.Pos()
		case *ast.GenDecl:
			var kind string
			switch dd.Tok {
			case token.CONST:
				kind = "const"
			case token.VAR:
				kind = "var"
			case token.TYPE:
				kind = "type"
			default:
				continue
			}
			for _, spec := range dd.Specs {
				switch s := spec.(type) {
				case *ast.ValueSpec:
					for _, n := range s.Names {
						if n.Name == "_" {
							continue
						}
						decls[tagDecl{kind: kind, key: n.Name}] = n.Pos()
					}
				case *ast.TypeSpec:
					decls[tagDecl{kind: kind, key: s.Name.Name}] = s.Pos()
				}
			}
		}
	}
	return decls
}

// receiverBase extracts the receiver's base type name, dropping
// pointers and type parameters.
func receiverBase(e ast.Expr) string {
	for {
		switch t := e.(type) {
		case *ast.StarExpr:
			e = t.X
		case *ast.IndexExpr:
			e = t.X
		case *ast.IndexListExpr:
			e = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}

// normalizeSignature renders a function's parameter and result types
// with parameter names stripped, so `f(k int)` and `f(n int)` compare
// equal while `f(k int)` and `f(k int64)` do not.
func normalizeSignature(fset *token.FileSet, fd *ast.FuncDecl) string {
	var b strings.Builder
	b.WriteString("(")
	writeFieldTypes(&b, fset, fd.Type.Params)
	b.WriteString(")")
	if fd.Type.Results != nil {
		b.WriteString("(")
		writeFieldTypes(&b, fset, fd.Type.Results)
		b.WriteString(")")
	}
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fset *token.FileSet, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, field := range fl.List {
		// A field with n names contributes n copies of its type.
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			if !first {
				b.WriteString(",")
			}
			first = false
			b.WriteString(typeString(fset, field.Type))
		}
	}
}

// typeString renders a type expression, recursively stripping
// parameter names inside function types so they do not affect
// comparison.
func typeString(fset *token.FileSet, e ast.Expr) string {
	if ft, ok := e.(*ast.FuncType); ok {
		var b strings.Builder
		b.WriteString("func(")
		writeFieldTypes(&b, fset, ft.Params)
		b.WriteString(")")
		if ft.Results != nil {
			b.WriteString("(")
			writeFieldTypes(&b, fset, ft.Results)
			b.WriteString(")")
		}
		return b.String()
	}
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return fmt.Sprintf("<%T>", e)
	}
	return b.String()
}
