package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// wantRe matches the expectation comments the fixture files carry:
// `// want "regexp"` with one or more quoted regexps.
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

var wantArgRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one `// want` entry: a diagnostic matching re must be
// reported on this file:line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// RunTest loads the GOPATH-style fixture tree at srcRoot, runs the
// analyzer over the packages whose import paths start with one of the
// given prefixes, and compares the diagnostics against the fixtures'
// `// want "regexp"` comments — the same contract as
// golang.org/x/tools/go/analysis/analysistest. Suppression directives
// are honored, so a fixture can pin the //lint:ignore mechanism by
// carrying a directive and no want comment.
func RunTest(t *testing.T, srcRoot string, a *Analyzer, pkgPrefixes ...string) {
	t.Helper()
	all, err := LoadDir(srcRoot)
	if err != nil {
		t.Fatalf("loading fixtures from %s: %v", srcRoot, err)
	}
	var pkgs []*Package
	for _, pkg := range all {
		for _, prefix := range pkgPrefixes {
			if pkg.Path == prefix || strings.HasPrefix(pkg.Path, prefix+"/") {
				pkgs = append(pkgs, pkg)
				break
			}
		}
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages matched %v under %s", pkgPrefixes, srcRoot)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, files := range [][]*ast.File{pkg.Files, pkg.IgnoredFiles} {
			for _, f := range files {
				ws, err := collectWants(pkg.Fset, f)
				if err != nil {
					t.Fatal(err)
				}
				wants = append(wants, ws...)
			}
		}
	}

	diags := RunAnalyzers(pkgs, []*Analyzer{a})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func collectWants(fset *token.FileSet, f *ast.File) ([]*expectation, error) {
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRe.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			args := wantArgRe.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
			}
			for _, arg := range args {
				// The quoted argument is a Go string literal, as in
				// x/tools analysistest: `\\.` in the source is the
				// regexp `\.`.
				lit, err := strconv.Unquote(arg[0])
				if err != nil {
					return nil, fmt.Errorf("%s: bad want literal %s: %v", pos, arg[0], err)
				}
				re, err := regexp.Compile(lit)
				if err != nil {
					return nil, fmt.Errorf("%s: bad want regexp %q: %v", pos, lit, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants, nil
}
