package graphio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"julienne/internal/graph"
)

// WriteEdgeList writes g as one "u v" (or "u v w") line per directed
// edge — the SNAP-style format most public graph datasets ship in.
// Lines beginning with '#' are comments on read.
func WriteEdgeList(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "# julienne edge list: n=%d m=%d weighted=%v symmetric=%v\n",
		g.NumVertices(), g.NumEdges(), g.Weighted(), g.Symmetric())
	for v := 0; v < g.NumVertices(); v++ {
		nbrs := g.OutEdges(graph.Vertex(v))
		wgts := g.OutWeights(graph.Vertex(v))
		for i, u := range nbrs {
			if wgts != nil {
				fmt.Fprintf(bw, "%d %d %d\n", v, u, wgts[i])
			} else {
				fmt.Fprintf(bw, "%d %d\n", v, u)
			}
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses a SNAP-style edge list: whitespace-separated
// "u v" or "u v w" lines, '#' comments ignored. Vertex ids may be
// sparse; n is max id + 1. opt controls symmetrization and dedup as in
// graph.FromEdges; opt.Weighted is inferred from the first data line
// when left false but a third column exists.
func ReadEdgeList(r io.Reader, opt graph.BuildOptions) (*graph.CSR, error) {
	const format = "edgelist"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []graph.Edge
	maxID := int64(-1)
	lineNo := 0
	sawWeight := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 && len(fields) != 3 {
			return nil, corrupt(format, "line %d: want 2 or 3 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, &ParseError{Format: format,
				Detail: fmt.Sprintf("line %d: bad source id %q", lineNo, fields[0]), Kind: ErrCorrupt, Cause: err}
		}
		v, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, &ParseError{Format: format,
				Detail: fmt.Sprintf("line %d: bad target id %q", lineNo, fields[1]), Kind: ErrCorrupt, Cause: err}
		}
		if u < 0 || v < 0 || u > 1<<31 || v > 1<<31 {
			return nil, corrupt(format, "line %d: vertex id out of range", lineNo)
		}
		var wt int64
		if len(fields) == 3 {
			sawWeight = true
			wt, err = strconv.ParseInt(fields[2], 10, 32)
			if err != nil {
				return nil, &ParseError{Format: format,
					Detail: fmt.Sprintf("line %d: bad weight %q", lineNo, fields[2]), Kind: ErrCorrupt, Cause: err}
			}
			if wt < 0 {
				return nil, corrupt(format, "line %d: negative weight %d", lineNo, wt)
			}
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v), W: graph.Weight(wt)})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, ioError(format, "scanning edge list", err)
	}
	if sawWeight {
		opt.Weighted = true
	}
	return graph.FromEdges(int(maxID+1), edges, opt), nil
}
