package graphio

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// The fuzz targets assert that arbitrary input either parses into a
// structurally valid graph or returns a *typed* error — never panics,
// never yields a graph that violates CSR invariants, and never returns
// an ad-hoc error outside the ParseError/ErrCorrupt/ErrTruncated
// contract (errors.go). `go test` runs the seed corpus;
// `go test -fuzz=FuzzReadText ./internal/graphio` explores.

// checkTypedError fails the fuzz iteration when a loader error does
// not follow the typed contract.
func checkTypedError(t *testing.T, err error) {
	t.Helper()
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("untyped loader error %v (%T)", err, err)
	}
	if errors.Is(err, ErrCorrupt) == errors.Is(err, ErrTruncated) {
		t.Fatalf("error %v must wrap exactly one of ErrCorrupt/ErrTruncated", err)
	}
}

// checkWeights fails when a loader accepted a negative weight (they
// silently corrupt sssp's unsigned distance arithmetic).
func checkWeights(t *testing.T, g *graph.CSR) {
	t.Helper()
	for v := 0; v < g.NumVertices(); v++ {
		for _, w := range g.OutWeights(graph.Vertex(v)) {
			if w < 0 {
				t.Fatalf("negative weight %d accepted", w)
			}
		}
	}
}

func FuzzReadText(f *testing.F) {
	f.Add("AdjacencyGraph\n2\n1\n0\n1\n1\n")
	f.Add("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n5\n")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n-3\n5\n")
	f.Add("AdjacencyGraph\n2\n1\n0\n2\n9\n")
	// Regression seeds: nonzero first offset (panicked in NewCSR),
	// absurd header sizes (makeslice panic), negative weight (silent
	// downstream corruption), edges without vertices.
	f.Add("AdjacencyGraph\n2\n1\n1\n1\n0\n")
	f.Add("AdjacencyGraph\n9223372036854775807\n0\n")
	f.Add("AdjacencyGraph\n1\n9223372036854775807\n0\n")
	f.Add("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n-5\n")
	f.Add("AdjacencyGraph\n0\n3\n")
	var buf bytes.Buffer
	_ = WriteText(&buf, gen.Grid2D(3, 3))
	f.Add(buf.String())
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in), false)
		if err != nil {
			checkTypedError(t, err)
			return
		}
		// Parsed graphs may contain self-loops/dupes (the format allows
		// them); check only the structural offset/edge invariants.
		if g.NumVertices() < 0 || g.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.OutEdges(graph.Vertex(v)) {
				if int(u) >= g.NumVertices() {
					t.Fatalf("out-of-range edge %d", u)
				}
			}
		}
		checkWeights(t, g)
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("0 1 7\n")
	f.Add("# comment\n\n3 4\n")
	f.Add("x y\n")
	f.Add("1")
	f.Add("0 1 -7\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), graph.DefaultBuild)
		if err != nil {
			checkTypedError(t, err)
			return
		}
		if err := graph.Validate(g); err != nil {
			t.Fatalf("invalid graph accepted: %v", err)
		}
		checkWeights(t, g)
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, gen.Grid2D(3, 3))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	// Regression seeds: truncated weighted stream, corrupted weight
	// sign bit, absurd header counts.
	var wbuf bytes.Buffer
	_ = WriteBinary(&wbuf, gen.LogWeights(gen.Grid2D(3, 3), 1))
	wraw := wbuf.Bytes()
	f.Add(wraw[:len(wraw)/2])
	neg := append([]byte(nil), wraw...)
	neg[len(neg)-1] |= 0x80
	f.Add(neg)
	huge := append([]byte(nil), wraw[:40]...)
	for i := 24; i < 40; i++ {
		huge[i] = 0xff
	}
	f.Add(huge)
	f.Fuzz(func(t *testing.T, in []byte) {
		// ReadBinary fully validates before constructing the CSR, so
		// arbitrary bytes must either error (typed) or produce a usable
		// graph.
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			checkTypedError(t, err)
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
				if int(u) >= g.NumVertices() {
					t.Fatalf("out-of-range neighbor %d", u)
				}
				return true
			})
		}
		checkWeights(t, g)
	})
}
