package graphio

import (
	"bytes"
	"strings"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// The fuzz targets assert that arbitrary input either parses into a
// structurally valid graph or returns an error — never panics, never
// yields a graph that violates CSR invariants. `go test` runs the seed
// corpus; `go test -fuzz=FuzzReadText ./internal/graphio` explores.

func FuzzReadText(f *testing.F) {
	f.Add("AdjacencyGraph\n2\n1\n0\n1\n1\n")
	f.Add("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n5\n")
	f.Add("AdjacencyGraph\n0\n0\n")
	f.Add("garbage")
	f.Add("AdjacencyGraph\n-3\n5\n")
	f.Add("AdjacencyGraph\n2\n1\n0\n2\n9\n")
	var buf bytes.Buffer
	_ = WriteText(&buf, gen.Grid2D(3, 3))
	f.Add(buf.String())
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in), false)
		if err != nil {
			return
		}
		// Parsed graphs may contain self-loops/dupes (the format allows
		// them); check only the structural offset/edge invariants.
		if g.NumVertices() < 0 || g.NumEdges() < 0 {
			t.Fatal("negative sizes")
		}
		for v := 0; v < g.NumVertices(); v++ {
			for _, u := range g.OutEdges(graph.Vertex(v)) {
				if int(u) >= g.NumVertices() {
					t.Fatalf("out-of-range edge %d", u)
				}
			}
		}
	})
}

func FuzzReadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2\n")
	f.Add("0 1 7\n")
	f.Add("# comment\n\n3 4\n")
	f.Add("x y\n")
	f.Add("1")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadEdgeList(strings.NewReader(in), graph.DefaultBuild)
		if err != nil {
			return
		}
		if err := graph.Validate(g); err != nil {
			t.Fatalf("invalid graph accepted: %v", err)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, gen.Grid2D(3, 3))
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Fuzz(func(t *testing.T, in []byte) {
		// ReadBinary fully validates before constructing the CSR, so
		// arbitrary bytes must either error or produce a usable graph.
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		for v := 0; v < g.NumVertices(); v++ {
			g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
				if int(u) >= g.NumVertices() {
					t.Fatalf("out-of-range neighbor %d", u)
				}
				return true
			})
		}
	})
}
