package graphio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

func assertSame(t *testing.T, name string, want, got *graph.CSR) {
	t.Helper()
	if want.NumVertices() != got.NumVertices() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("%s: shape mismatch", name)
	}
	if want.Weighted() != got.Weighted() {
		t.Fatalf("%s: weighted flag mismatch", name)
	}
	for v := 0; v < want.NumVertices(); v++ {
		vv := graph.Vertex(v)
		we, ge := want.OutEdges(vv), got.OutEdges(vv)
		if len(we) != len(ge) {
			t.Fatalf("%s: degree(%d) %d vs %d", name, v, len(we), len(ge))
		}
		for i := range we {
			if we[i] != ge[i] {
				t.Fatalf("%s: edge %d of %d differs", name, i, v)
			}
		}
		ww, gw := want.OutWeights(vv), got.OutWeights(vv)
		for i := range ww {
			if ww[i] != gw[i] {
				t.Fatalf("%s: weight %d of %d differs", name, i, v)
			}
		}
	}
}

func families() map[string]*graph.CSR {
	return map[string]*graph.CSR{
		"rmat":     gen.RMAT(1<<9, 3000, true, 1),
		"grid":     gen.Grid2D(9, 11),
		"er-dir":   gen.ErdosRenyi(200, 900, false, 2),
		"weighted": gen.LogWeights(gen.Grid2D(8, 8), 3),
		"empty":    graph.FromEdges(5, nil, graph.DefaultBuild),
	}
}

func TestTextRoundTrip(t *testing.T) {
	for name, g := range families() {
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadText(&buf, g.Symmetric())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSame(t, name, g, got)
		if got.Symmetric() != g.Symmetric() {
			t.Fatalf("%s: symmetry flag lost", name)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range families() {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSame(t, name, g, got)
		if got.Symmetric() != g.Symmetric() {
			t.Fatalf("%s: symmetry flag lost", name)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	g := gen.LogWeights(gen.RMAT(1<<8, 1500, true, 7), 7)
	for _, name := range []string{"g.adj", "g.txt", "g.bin"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got, err := LoadFile(path, true)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		assertSame(t, name, g, got)
	}
}

func TestTextHeaderErrors(t *testing.T) {
	cases := map[string]string{
		"bad header":   "NotAGraph\n1\n0\n0\n",
		"truncated":    "AdjacencyGraph\n2\n",
		"bad offset":   "AdjacencyGraph\n2\n1\n0\n9\n1\n",
		"bad edge":     "AdjacencyGraph\n2\n1\n0\n1\n7\n",
		"non-numeric":  "AdjacencyGraph\nx\n0\n",
		"neg sizes":    "AdjacencyGraph\n-1\n0\n",
		"offset order": "AdjacencyGraph\n2\n2\n2\n0\n0\n1\n",
	}
	for name, in := range cases {
		if _, err := ReadText(strings.NewReader(in), false); err == nil {
			t.Fatalf("%s: error expected", name)
		}
	}
}

func TestBinaryHeaderErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
	var buf bytes.Buffer
	_ = WriteBinary(&buf, gen.Path(4))
	raw := buf.Bytes()
	raw[0] ^= 0xff // corrupt magic
	if _, err := ReadBinary(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestPackedGraphSavesLiveEdges(t *testing.T) {
	g := gen.Star(6)
	g.PackOut(0, func(u graph.Vertex) bool { return u%2 == 1 })
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.OutDegree(0) != 3 {
		t.Fatalf("packed save degree %d want 3", got.OutDegree(0))
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	for name, g := range families() {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt := graph.BuildOptions{Weighted: g.Weighted(), DropSelfLoops: true, Dedup: true}
		got, err := ReadEdgeList(&buf, opt)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "empty" {
			if got.NumVertices() != 0 {
				t.Fatalf("empty graph read back %d vertices", got.NumVertices())
			}
			continue // edge lists cannot represent trailing isolated vertices
		}
		// Isolated max-id vertices survive since n = maxID+1; compare
		// edges structurally via a trimmed oracle.
		if got.NumEdges() != g.NumEdges() {
			t.Fatalf("%s: m %d vs %d", name, got.NumEdges(), g.NumEdges())
		}
		for v := 0; v < got.NumVertices(); v++ {
			we, ge := g.OutEdges(graph.Vertex(v)), got.OutEdges(graph.Vertex(v))
			if len(we) != len(ge) {
				t.Fatalf("%s: degree(%d)", name, v)
			}
			for i := range we {
				if we[i] != ge[i] {
					t.Fatalf("%s: edge %d of %d", name, i, v)
				}
			}
			ww, gw := g.OutWeights(graph.Vertex(v)), got.OutWeights(graph.Vertex(v))
			for i := range ww {
				if ww[i] != gw[i] {
					t.Fatalf("%s: weight %d of %d", name, i, v)
				}
			}
		}
	}
}

func TestEdgeListComments(t *testing.T) {
	in := "# comment\n\n0 1\n1 2 \n# more\n2 0\n"
	g, err := ReadEdgeList(strings.NewReader(in), graph.DefaultBuild)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListWeightInference(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("0 1 7\n1 2 9\n"), graph.BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Weighted() {
		t.Fatal("weights not inferred")
	}
	w := g.OutWeights(0)
	if len(w) != 1 || w[0] != 7 {
		t.Fatalf("weights %v", w)
	}
}

func TestEdgeListErrors(t *testing.T) {
	for name, in := range map[string]string{
		"too many fields": "0 1 2 3\n",
		"bad int":         "x 1\n",
		"negative":        "-1 2\n",
		"bad weight":      "0 1 zz\n",
	} {
		if _, err := ReadEdgeList(strings.NewReader(in), graph.DefaultBuild); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
}
