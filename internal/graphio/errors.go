package graphio

import (
	"errors"
	"fmt"
	"io"
)

// Load failures are typed so callers (the serving layer, CLIs, tests)
// can react without string matching:
//
//   - errors.Is(err, ErrTruncated): the stream ended before the data
//     its header declared — the file was cut short mid-write or
//     mid-copy. Retrying after the producer finishes can succeed.
//   - errors.Is(err, ErrCorrupt): the bytes are structurally invalid
//     (bad header, out-of-range ids, non-monotone offsets, negative
//     weights). Retrying cannot help.
//
// Every loader in this package returns a *ParseError wrapping exactly
// one of the two sentinels. Loaders never panic on hostile input and
// never return a silently short or internally inconsistent graph.

var (
	// ErrCorrupt marks structurally invalid input.
	ErrCorrupt = errors.New("corrupt graph input")
	// ErrTruncated marks input that ended before its declared data.
	ErrTruncated = errors.New("truncated graph input")
)

// ParseError reports which loader failed, why, and with which
// underlying cause (when an io or strconv error triggered it).
type ParseError struct {
	// Format is the loader that failed: "text", "binary", "edgelist".
	Format string
	// Detail is a human-readable description of the violation.
	Detail string
	// Kind is ErrCorrupt or ErrTruncated.
	Kind error
	// Cause is the underlying io/parse error, when one exists.
	Cause error
}

func (e *ParseError) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("graphio: %s: %s: %v", e.Format, e.Detail, e.Cause)
	}
	return fmt.Sprintf("graphio: %s: %s", e.Format, e.Detail)
}

// Unwrap exposes the kind sentinel (and the cause, when present) to
// errors.Is/As.
func (e *ParseError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Kind, e.Cause}
	}
	return []error{e.Kind}
}

// corrupt builds an ErrCorrupt ParseError.
func corrupt(format, detailFmt string, args ...any) error {
	return &ParseError{Format: format, Detail: fmt.Sprintf(detailFmt, args...), Kind: ErrCorrupt}
}

// truncatedf builds an ErrTruncated ParseError.
func truncatedf(format, detailFmt string, args ...any) error {
	return &ParseError{Format: format, Detail: fmt.Sprintf(detailFmt, args...), Kind: ErrTruncated}
}

// ioError classifies an error bubbling up from the byte layer: EOF
// variants mean the stream ran dry (truncated); anything else (scanner
// token overflow, a failing reader) is treated as corruption.
func ioError(format, detail string, cause error) error {
	kind := ErrCorrupt
	if errors.Is(cause, io.EOF) || errors.Is(cause, io.ErrUnexpectedEOF) {
		kind = ErrTruncated
	}
	return &ParseError{Format: format, Detail: detail, Kind: kind, Cause: cause}
}
