package graphio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// Each case here pins a loader bug found by the fuzz targets (or by
// auditing alongside them): inputs that previously panicked inside
// graph.NewCSR / the runtime, or silently produced a graph that breaks
// downstream algorithms. Every loader error must be a *ParseError
// wrapping exactly one of ErrCorrupt / ErrTruncated.

func requireTyped(t *testing.T, err error, wantKind error) {
	t.Helper()
	if err == nil {
		t.Fatal("error expected")
	}
	var pe *ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v (%T) is not a *ParseError", err, err)
	}
	if !errors.Is(err, wantKind) {
		t.Fatalf("error %v does not wrap %v", err, wantKind)
	}
	corrupt, truncated := errors.Is(err, ErrCorrupt), errors.Is(err, ErrTruncated)
	if corrupt == truncated {
		t.Fatalf("error %v must wrap exactly one of ErrCorrupt/ErrTruncated", err)
	}
}

func TestReadTextFirstOffsetNonzero(t *testing.T) {
	// Regression: a nonzero first offset previously flowed into
	// graph.NewCSR, which panicked with "malformed offsets".
	_, err := ReadText(strings.NewReader("AdjacencyGraph\n2\n1\n1\n1\n0\n"), false)
	requireTyped(t, err, ErrCorrupt)
}

func TestReadTextHugeHeaderNoAlloc(t *testing.T) {
	// Regression: a huge declared n previously hit
	// make([]uint64, n+1) and panicked with "makeslice: len out of
	// range" (or forced an enormous allocation) before any data was
	// validated.
	for _, in := range []string{
		"AdjacencyGraph\n9223372036854775807\n0\n",
		"AdjacencyGraph\n1\n9223372036854775807\n0\n",
		"AdjacencyGraph\n99999999999999\n3\n",
	} {
		_, err := ReadText(strings.NewReader(in), false)
		requireTyped(t, err, ErrCorrupt)
	}
}

func TestReadTextEdgesWithoutVertices(t *testing.T) {
	_, err := ReadText(strings.NewReader("AdjacencyGraph\n0\n3\n"), false)
	requireTyped(t, err, ErrCorrupt)
}

func TestReadTextNegativeWeight(t *testing.T) {
	// Regression: negative weights parsed fine and later wrapped the
	// unsigned distance arithmetic in sssp (uint64(w) on int32 -5).
	_, err := ReadText(strings.NewReader("WeightedAdjacencyGraph\n2\n1\n0\n1\n1\n-5\n"), false)
	requireTyped(t, err, ErrCorrupt)
}

func TestReadTextTruncated(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"header only":  "AdjacencyGraph\n",
		"mid offsets":  "AdjacencyGraph\n4\n2\n0\n1\n",
		"mid edges":    "AdjacencyGraph\n2\n2\n0\n1\n0\n",
		"mid weights":  "WeightedAdjacencyGraph\n2\n2\n0\n1\n0\n1\n3\n",
		"no edge data": "AdjacencyGraph\n2\n1\n0\n1\n",
	}
	for name, in := range cases {
		_, err := ReadText(strings.NewReader(in), false)
		if err == nil {
			t.Fatalf("%s: error expected", name)
		}
		requireTyped(t, err, ErrTruncated)
	}
}

func TestReadBinaryTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.LogWeights(gen.Grid2D(4, 4), 1)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must fail with a typed truncation error —
	// never a panic, never a silently short graph.
	for _, cut := range []int{0, 4, 39, 40, 41, len(full) / 2, len(full) - 1} {
		_, err := ReadBinary(bytes.NewReader(full[:cut]))
		requireTyped(t, err, ErrTruncated)
	}
	if _, err := ReadBinary(bytes.NewReader(full)); err != nil {
		t.Fatalf("full input must load: %v", err)
	}
}

func TestReadBinaryNegativeWeight(t *testing.T) {
	g := gen.LogWeights(gen.Grid2D(3, 3), 1)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// The weight block is the last m int32s; force a sign bit.
	binary.LittleEndian.PutUint32(raw[len(raw)-4:], 0x80000001)
	_, err := ReadBinary(bytes.NewReader(raw))
	requireTyped(t, err, ErrCorrupt)
}

func TestReadBinaryCorruptHeader(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, gen.Grid2D(3, 3)); err != nil {
		t.Fatal(err)
	}
	mangle := func(f func(raw []byte)) error {
		raw := append([]byte(nil), buf.Bytes()...)
		f(raw)
		_, err := ReadBinary(bytes.NewReader(raw))
		return err
	}
	requireTyped(t, mangle(func(raw []byte) { raw[0] ^= 0xff }), ErrCorrupt)   // magic
	requireTyped(t, mangle(func(raw []byte) { raw[8] = 99 }), ErrCorrupt)      // version
	requireTyped(t, mangle(func(raw []byte) { raw[31] = 0xff }), ErrCorrupt)   // absurd n
	requireTyped(t, mangle(func(raw []byte) { raw[5*8] ^= 0x01 }), ErrCorrupt) // first offset
}

func TestReadEdgeListNegativeWeight(t *testing.T) {
	_, err := ReadEdgeList(strings.NewReader("0 1 -3\n"), graph.DefaultBuild)
	requireTyped(t, err, ErrCorrupt)
}

func TestEdgeListErrorsTyped(t *testing.T) {
	for name, in := range map[string]string{
		"too many fields": "0 1 2 3\n",
		"bad int":         "x 1\n",
		"negative id":     "-1 2\n",
		"bad weight":      "0 1 zz\n",
	} {
		_, err := ReadEdgeList(strings.NewReader(in), graph.DefaultBuild)
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		requireTyped(t, err, ErrCorrupt)
	}
}
