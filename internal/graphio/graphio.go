// Package graphio reads and writes graphs in the Ligra adjacency text
// format (the format the paper's framework consumes) and in a compact
// binary format for fast reloads of generated experiment inputs.
//
// Text format (Ligra):
//
//	AdjacencyGraph            (or WeightedAdjacencyGraph)
//	<n>
//	<m>
//	<n offset lines>
//	<m edge lines>
//	<m weight lines>          (weighted only)
//
// Binary format: a fixed little-endian header (magic, version, flags,
// n, m) followed by n+1 uint64 offsets, m uint32 edges and, when
// weighted, m int32 weights.
package graphio

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"

	"julienne/internal/graph"
)

const (
	headerUnweighted = "AdjacencyGraph"
	headerWeighted   = "WeightedAdjacencyGraph"

	binMagic   = 0x4a4c4e47 // "JLNG"
	binVersion = 1

	flagWeighted  = 1 << 0
	flagSymmetric = 1 << 1
)

// WriteText writes g in Ligra adjacency format.
func WriteText(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	header := headerUnweighted
	if g.Weighted() {
		header = headerWeighted
	}
	n := g.NumVertices()
	m := g.NumEdges()
	fmt.Fprintf(bw, "%s\n%d\n%d\n", header, n, m)
	off := int64(0)
	for v := 0; v < n; v++ {
		fmt.Fprintf(bw, "%d\n", off)
		off += int64(g.OutDegree(graph.Vertex(v)))
	}
	for v := 0; v < n; v++ {
		for _, u := range g.OutEdges(graph.Vertex(v)) {
			fmt.Fprintf(bw, "%d\n", u)
		}
	}
	if g.Weighted() {
		for v := 0; v < n; v++ {
			for _, wt := range g.OutWeights(graph.Vertex(v)) {
				fmt.Fprintf(bw, "%d\n", wt)
			}
		}
	}
	return bw.Flush()
}

// ReadText parses a Ligra adjacency file. Symmetry is not recorded in
// the format; pass symmetric=true when the file is known to hold an
// undirected graph (both edge directions present).
//
// Errors are *ParseError values wrapping ErrTruncated or ErrCorrupt
// (see errors.go). Arrays grow incrementally as tokens arrive, so a
// lying header cannot force a huge up-front allocation.
func ReadText(r io.Reader, symmetric bool) (*graph.CSR, error) {
	const format = "text"
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	next := func(what string) (string, error) {
		for sc.Scan() {
			tok := sc.Text()
			if len(tok) > 0 {
				return tok, nil
			}
		}
		if err := sc.Err(); err != nil {
			return "", ioError(format, "reading "+what, err)
		}
		return "", truncatedf(format, "unexpected end of input reading %s", what)
	}
	header, err := next("header")
	if err != nil {
		return nil, err
	}
	var weighted bool
	switch header {
	case headerUnweighted:
	case headerWeighted:
		weighted = true
	default:
		return nil, corrupt(format, "unknown header %q", header)
	}
	nextInt := func(what string) (int64, error) {
		tok, err := next(what)
		if err != nil {
			return 0, err
		}
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return 0, &ParseError{Format: format,
				Detail: fmt.Sprintf("bad integer %q for %s", tok, what), Kind: ErrCorrupt, Cause: err}
		}
		return v, nil
	}
	n64, err := nextInt("n")
	if err != nil {
		return nil, err
	}
	m64, err := nextInt("m")
	if err != nil {
		return nil, err
	}
	if n64 < 0 || m64 < 0 {
		return nil, corrupt(format, "negative sizes n=%d m=%d", n64, m64)
	}
	if n64 > maxBinaryVertices || m64 > maxBinaryEdges {
		return nil, corrupt(format, "implausible sizes n=%d m=%d", n64, m64)
	}
	n, m := int(n64), int(m64)
	if n == 0 && m > 0 {
		return nil, corrupt(format, "m=%d edges with n=0 vertices", m)
	}
	offsets := make([]uint64, 0, min(n+1, allocChunk))
	for v := 0; v < n; v++ {
		o, err := nextInt("offset")
		if err != nil {
			return nil, err
		}
		if o < 0 || o > m64 {
			return nil, corrupt(format, "offset %d of vertex %d out of range [0,%d]", o, v, m64)
		}
		if v == 0 && o != 0 {
			return nil, corrupt(format, "first offset is %d, want 0", o)
		}
		if v > 0 && uint64(o) < offsets[v-1] {
			return nil, corrupt(format, "offsets not monotone at vertex %d", v)
		}
		offsets = append(offsets, uint64(o))
	}
	offsets = append(offsets, uint64(m))
	edges := make([]graph.Vertex, 0, min(m, allocChunk))
	for i := 0; i < m; i++ {
		e, err := nextInt("edge")
		if err != nil {
			return nil, err
		}
		if e < 0 || e >= n64 {
			return nil, corrupt(format, "edge target %d out of range [0,%d)", e, n64)
		}
		edges = append(edges, graph.Vertex(e))
	}
	var weights []graph.Weight
	if weighted {
		weights = make([]graph.Weight, 0, min(m, allocChunk))
		for i := 0; i < m; i++ {
			w, err := nextInt("weight")
			if err != nil {
				return nil, err
			}
			if w < 0 || w > maxWeight {
				return nil, corrupt(format, "weight %d of edge %d out of range [0,%d]", w, i, maxWeight)
			}
			weights = append(weights, graph.Weight(w))
		}
	}
	return graph.NewCSR(n, offsets, edges, weights, symmetric), nil
}

// WriteBinary writes g in the compact binary format.
func WriteBinary(w io.Writer, g *graph.CSR) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	n := g.NumVertices()
	m := g.NumEdges()
	var flags uint32
	if g.Weighted() {
		flags |= flagWeighted
	}
	if g.Symmetric() {
		flags |= flagSymmetric
	}
	for _, v := range []uint64{binMagic, binVersion, uint64(flags), uint64(n), uint64(m)} {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	off := uint64(0)
	for v := 0; v <= n; v++ {
		if err := binary.Write(bw, binary.LittleEndian, off); err != nil {
			return err
		}
		if v < n {
			off += uint64(g.OutDegree(graph.Vertex(v)))
		}
	}
	for v := 0; v < n; v++ {
		if err := binary.Write(bw, binary.LittleEndian, g.OutEdges(graph.Vertex(v))); err != nil {
			return err
		}
	}
	if g.Weighted() {
		for v := 0; v < n; v++ {
			if err := binary.Write(bw, binary.LittleEndian, g.OutWeights(graph.Vertex(v))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph written by WriteBinary. Errors are
// *ParseError values wrapping ErrTruncated or ErrCorrupt.
func ReadBinary(r io.Reader) (*graph.CSR, error) {
	const format = "binary"
	br := bufio.NewReaderSize(r, 1<<20)
	var header [5]uint64
	if err := binary.Read(br, binary.LittleEndian, header[:]); err != nil {
		return nil, ioError(format, "reading header", err)
	}
	if header[0] != binMagic {
		return nil, corrupt(format, "bad magic %#x", header[0])
	}
	if header[1] != binVersion {
		return nil, corrupt(format, "unsupported version %d", header[1])
	}
	flags := uint32(header[2])
	if header[3] > maxBinaryVertices || header[4] > maxBinaryEdges {
		return nil, corrupt(format, "implausible sizes n=%d m=%d", header[3], header[4])
	}
	n, m := int(header[3]), int(header[4])
	// Arrays are read in bounded chunks so a malicious header cannot
	// force a huge up-front allocation: memory grows only as the
	// stream actually delivers data.
	offsets, err := readChunked[uint64](br, n+1)
	if err != nil {
		return nil, ioError(format, "reading offsets", err)
	}
	if offsets[0] != 0 || offsets[n] != uint64(m) {
		return nil, corrupt(format, "malformed offsets (first=%d last=%d m=%d)", offsets[0], offsets[n], m)
	}
	for v := 0; v < n; v++ {
		if offsets[v] > offsets[v+1] {
			return nil, corrupt(format, "offsets not monotone at vertex %d", v)
		}
	}
	edges, err := readChunked[graph.Vertex](br, m)
	if err != nil {
		return nil, ioError(format, "reading edges", err)
	}
	for _, e := range edges {
		if int64(e) >= int64(n) {
			return nil, corrupt(format, "edge target %d out of range [0,%d)", e, n)
		}
	}
	var weights []graph.Weight
	if flags&flagWeighted != 0 {
		weights, err = readChunked[graph.Weight](br, m)
		if err != nil {
			return nil, ioError(format, "reading weights", err)
		}
		for i, w := range weights {
			if w < 0 {
				return nil, corrupt(format, "negative weight %d at edge %d", w, i)
			}
		}
	}
	return graph.NewCSR(n, offsets, edges, weights, flags&flagSymmetric != 0), nil
}

const (
	// maxBinaryVertices and maxBinaryEdges bound what the loaders will
	// accept; they comfortably exceed anything a single machine holds
	// while rejecting absurd headers outright.
	maxBinaryVertices = 1 << 32
	maxBinaryEdges    = 1 << 40
	// maxWeight is the largest edge weight the loaders accept
	// (graph.Weight is int32; negative weights would silently corrupt
	// the unsigned distance arithmetic in sssp).
	maxWeight = 1<<31 - 1
	// allocChunk caps the initial capacity of header-sized allocations;
	// arrays grow from there only as the stream delivers data.
	allocChunk = 1 << 16
)

// readChunked reads exactly n fixed-size values, growing the result
// incrementally (64Ki values per read) so truncated or hostile inputs
// fail fast instead of pre-allocating n values worth of memory.
func readChunked[T uint64 | uint32 | int32](r io.Reader, n int) ([]T, error) {
	const chunk = 1 << 16
	out := make([]T, 0, min(n, chunk))
	for len(out) < n {
		k := min(chunk, n-len(out))
		tmp := make([]T, k)
		if err := binary.Read(r, binary.LittleEndian, tmp); err != nil {
			return nil, err
		}
		out = append(out, tmp...)
	}
	return out, nil
}

// SaveFile writes g to path, choosing the format by extension:
// ".adj" or ".txt" for Ligra text, anything else for binary.
func SaveFile(path string, g *graph.CSR) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if isTextPath(path) {
		return WriteText(f, g)
	}
	return WriteBinary(f, g)
}

// LoadFile reads a graph saved by SaveFile. symmetric applies to text
// files only (the binary format records it).
func LoadFile(path string, symmetric bool) (*graph.CSR, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if isTextPath(path) {
		return ReadText(f, symmetric)
	}
	return ReadBinary(f)
}

func isTextPath(path string) bool {
	for _, suf := range []string{".adj", ".txt"} {
		if len(path) >= len(suf) && path[len(path)-len(suf):] == suf {
			return true
		}
	}
	return false
}
