// Package semisort implements the parallel semisort primitive from the
// paper's preliminaries (§2): reorder an array of keyed elements so that
// elements with equal keys become contiguous, without fully sorting the
// keys. Julienne's theoretically-clean updateBuckets (§3.2) is built on
// it; the practical block-histogram implementation (§3.3) avoids it, and
// this repository keeps both so the ablation benchmarks can compare them.
//
// The algorithm is a hash-partitioned counting sort in the style of the
// top-down parallel semisort of Gu, Shun, Sun and Blelloch [23]:
//
//  1. hash every key into one of B ≈ n/expectedBucketSize partitions;
//  2. per-block histograms + one scan produce stable scatter offsets
//     (the same histogram kernel the bucket structure itself uses);
//  3. scatter elements to their partition;
//  4. sort each small partition by key, grouping equal keys.
//
// Equal keys share a hash, hence a partition, so after step 4 the whole
// array is semisorted. With partitions of expected constant size the work
// is O(n) in expectation and the depth is O(log n) w.h.p., matching §2.
package semisort

import (
	"slices"

	"julienne/internal/parallel"
	"julienne/internal/rng"
)

// Pair is one keyed element.
type Pair[V any] struct {
	Key   uint32
	Value V
}

// expectedBucketSize is the target number of elements per hash partition.
// Partitions are sorted sequentially, so this bounds the work of step 4
// at O(n log expectedBucketSize) = O(n) with a modest constant.
const expectedBucketSize = 48

// blockSize mirrors the M used by the bucket structure's histogram pass.
const blockSize = 2048

// Pairs semisorts pairs by Key, returning a new slice in which all pairs
// with equal keys are contiguous. The input is not modified.
func Pairs[V any](in []Pair[V]) []Pair[V] {
	out := make([]Pair[V], len(in))
	PairsInto(out, in)
	return out
}

// PairsInto semisorts in into out, which must have the same length.
func PairsInto[V any](out, in []Pair[V]) {
	n := len(in)
	if len(out) != n {
		panic("semisort: length mismatch")
	}
	if n == 0 {
		return
	}
	if n <= 2*expectedBucketSize {
		copy(out, in)
		slices.SortFunc(out, func(a, b Pair[V]) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			}
			return 0
		})
		return
	}

	nbkt := nextPow2(n / expectedBucketSize)
	mask := uint32(nbkt - 1)
	// A fixed hash salt would let adversarial key sets defeat the
	// partitioning; salting with a per-call value restores the w.h.p.
	// bounds for any fixed input. Determinism is preserved because the
	// salt depends only on n.
	salt := rng.Hash64(uint64(n)*0x9e3779b97f4a7c15 + 0xabcdef)

	hash := func(k uint32) uint32 {
		return uint32(rng.Hash64(uint64(k)+salt)) & mask
	}

	nb := (n + blockSize - 1) / blockSize
	// counts is laid out partition-major: counts[j*nb + b] is the number
	// of elements of block b hashing to partition j. A single scan over
	// this layout yields, for every (partition, block), the exact start
	// offset of that block's contribution — the standard stable radix
	// scatter.
	cb := parallel.GetScratch[uint32](nbkt * nb)
	defer cb.Release()
	counts := cb.S
	parallel.For(len(counts), parallel.DefaultGrain, func(i int) { counts[i] = 0 })
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		for i := lo; i < hi; i++ {
			counts[int(hash(in[i].Key))*nb+b]++
		}
	})
	parallel.Scan(counts, counts)

	ob := parallel.GetScratch[uint32](len(counts))
	defer ob.Release()
	offsets := ob.S
	parallel.Blocked(len(counts), parallel.DefaultGrain, func(lo, hi int) {
		copy(offsets[lo:hi], counts[lo:hi])
	})
	parallel.For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		for i := lo; i < hi; i++ {
			slot := int(hash(in[i].Key))*nb + b
			out[offsets[slot]] = in[i]
			offsets[slot]++
		}
	})

	// Sort each partition; equal keys are now contiguous globally.
	parallel.For(nbkt, 1, func(j int) {
		start := counts[j*nb]
		var end uint32
		if j == nbkt-1 {
			end = uint32(n)
		} else {
			end = counts[(j+1)*nb]
		}
		part := out[start:end]
		slices.SortFunc(part, func(a, b Pair[V]) int {
			switch {
			case a.Key < b.Key:
				return -1
			case a.Key > b.Key:
				return 1
			}
			return 0
		})
	})
}

// GroupStarts returns the start index of every maximal run of equal keys
// in a semisorted slice, in increasing index order. It is the "map an
// indicator function and pack" step of §3.2.
func GroupStarts[V any](sorted []Pair[V]) []uint32 {
	return parallel.PackIndices(len(sorted), func(i int) bool {
		return i == 0 || sorted[i].Key != sorted[i-1].Key
	})
}

// nextPow2 returns the smallest power of two >= x (and at least 1).
func nextPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}
