package semisort

import (
	"testing"
	"testing/quick"

	"julienne/internal/rng"
)

// checkSemisorted verifies the semisort contract: output is a permutation
// of the input and every key appears in exactly one contiguous run.
func checkSemisorted(t *testing.T, in, out []Pair[uint32]) {
	t.Helper()
	if len(in) != len(out) {
		t.Fatalf("length changed: %d -> %d", len(in), len(out))
	}
	// Permutation check via multiset of (key, value).
	type kv struct{ k, v uint32 }
	counts := map[kv]int{}
	for _, p := range in {
		counts[kv{p.Key, p.Value}]++
	}
	for _, p := range out {
		counts[kv{p.Key, p.Value}]--
	}
	for c, k := range counts {
		if k != 0 {
			t.Fatalf("not a permutation: %v has balance %d", c, k)
		}
	}
	// Contiguity: once a key's run ends, it never reappears.
	seen := map[uint32]bool{}
	for i, p := range out {
		if i > 0 && out[i-1].Key != p.Key {
			if seen[p.Key] {
				t.Fatalf("key %d appears in two separate runs (index %d)", p.Key, i)
			}
			seen[out[i-1].Key] = true
		}
	}
}

func randomPairs(seed uint64, n, keyRange int) []Pair[uint32] {
	r := rng.New(seed)
	in := make([]Pair[uint32], n)
	for i := range in {
		in[i] = Pair[uint32]{Key: uint32(r.IntN(keyRange)), Value: uint32(i)}
	}
	return in
}

func TestPairsSmall(t *testing.T) {
	in := []Pair[uint32]{{3, 0}, {1, 1}, {3, 2}, {2, 3}, {1, 4}}
	out := Pairs(in)
	checkSemisorted(t, in, out)
}

func TestPairsEmpty(t *testing.T) {
	if out := Pairs([]Pair[uint32]{}); len(out) != 0 {
		t.Fatal("empty input produced non-empty output")
	}
}

func TestPairsSingleKey(t *testing.T) {
	in := randomPairs(1, 5000, 1)
	out := Pairs(in)
	checkSemisorted(t, in, out)
}

func TestPairsManySizes(t *testing.T) {
	for _, n := range []int{1, 2, 10, 95, 96, 97, 1000, 2047, 2048, 2049, 50000} {
		for _, keyRange := range []int{1, 2, 7, 100, 1 << 20} {
			in := randomPairs(uint64(n*31+keyRange), n, keyRange)
			out := Pairs(in)
			checkSemisorted(t, in, out)
		}
	}
}

func TestPairsAdversarialKeys(t *testing.T) {
	// Keys that collide in the low bits; the salted hash must still
	// spread them.
	n := 40000
	in := make([]Pair[uint32], n)
	for i := range in {
		in[i] = Pair[uint32]{Key: uint32(i%17) << 20, Value: uint32(i)}
	}
	out := Pairs(in)
	checkSemisorted(t, in, out)
}

func TestPairsDoesNotModifyInput(t *testing.T) {
	in := randomPairs(5, 10000, 50)
	before := make([]Pair[uint32], len(in))
	copy(before, in)
	_ = Pairs(in)
	for i := range in {
		if in[i] != before[i] {
			t.Fatalf("input modified at %d", i)
		}
	}
}

func TestGroupStarts(t *testing.T) {
	sorted := []Pair[uint32]{{1, 0}, {1, 1}, {4, 2}, {4, 3}, {4, 4}, {9, 5}}
	starts := GroupStarts(sorted)
	want := []uint32{0, 2, 5}
	if len(starts) != len(want) {
		t.Fatalf("starts=%v want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("starts=%v want %v", starts, want)
		}
	}
}

func TestGroupStartsEmpty(t *testing.T) {
	if s := GroupStarts[uint32](nil); len(s) != 0 {
		t.Fatal("GroupStarts(nil) non-empty")
	}
}

func TestGroupStartsCountsDistinctKeys(t *testing.T) {
	in := randomPairs(11, 30000, 200)
	out := Pairs(in)
	distinct := map[uint32]bool{}
	for _, p := range in {
		distinct[p.Key] = true
	}
	starts := GroupStarts(out)
	if len(starts) != len(distinct) {
		t.Fatalf("GroupStarts found %d groups, want %d", len(starts), len(distinct))
	}
}

func TestPairsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		in := make([]Pair[uint32], len(keys))
		for i, k := range keys {
			in[i] = Pair[uint32]{Key: uint32(k % 64), Value: uint32(i)}
		}
		out := Pairs(in)
		// Permutation + contiguity, inline (no *testing.T here).
		if len(out) != len(in) {
			return false
		}
		counts := map[[2]uint32]int{}
		for _, p := range in {
			counts[[2]uint32{p.Key, p.Value}]++
		}
		for _, p := range out {
			counts[[2]uint32{p.Key, p.Value}]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		closed := map[uint32]bool{}
		for i := 1; i < len(out); i++ {
			if out[i-1].Key != out[i].Key {
				if closed[out[i].Key] {
					return false
				}
				closed[out[i-1].Key] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Fatalf("nextPow2(%d)=%d want %d", in, got, want)
		}
	}
}

func BenchmarkSemisort(b *testing.B) {
	in := randomPairs(7, 1<<18, 1024)
	out := make([]Pair[uint32], len(in))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PairsInto(out, in)
	}
	b.SetBytes(int64(len(in) * 8))
}
