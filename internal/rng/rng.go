// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the workload generators and benchmarks.
//
// Everything in this repository that involves randomness takes an explicit
// seed and goes through this package, so experiments and tests are exactly
// reproducible across runs and machines. The generators are also trivially
// splittable: parallel loops derive an independent stream per index with
// At/Stream, which avoids any shared mutable state between goroutines.
package rng

import "math/bits"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood.
// It passes BigCrush, has a period of 2^64, and — most importantly here —
// is stateless enough that hashing an arbitrary counter value produces an
// independent-looking stream, which is what parallel generators need.
type SplitMix64 struct {
	state uint64
}

// New returns a SplitMix64 seeded with seed.
func New(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the stream.
func (r *SplitMix64) Next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	return mix(r.state)
}

// mix is the splitmix64 finalizer: a bijective scrambling of a 64-bit word.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Hash64 hashes an arbitrary 64-bit value to a uniform 64-bit value.
// Hash64(seed+i) for i = 0,1,2,... yields streams that are independent for
// practical purposes, which makes it safe to call from parallel loops.
func Hash64(x uint64) uint64 {
	return mix(x + 0x9e3779b97f4a7c15)
}

// At returns the i'th value of the stream identified by seed without
// generating the preceding values. It is the parallel-friendly counterpart
// of Next.
func At(seed, i uint64) uint64 {
	return Hash64(seed*0x9e3779b97f4a7c15 + i + 1)
}

// Uint64 returns the next value in the stream (alias of Next, for
// readability at call sites that mix widths).
func (r *SplitMix64) Uint64() uint64 { return r.Next() }

// Uint32 returns the next value truncated to 32 bits.
func (r *SplitMix64) Uint32() uint32 { return uint32(r.Next() >> 32) }

// UintN returns a uniform value in [0, n). n must be positive.
// It uses Lemire's multiply-shift reduction, which is unbiased enough for
// workload generation (the bias is < 2^-32 for the n used here).
func (r *SplitMix64) UintN(n uint64) uint64 {
	if n == 0 {
		panic("rng: UintN(0)")
	}
	return mulHi(r.Next(), n)
}

// IntN returns a uniform int in [0, n). n must be positive.
func (r *SplitMix64) IntN(n int) int {
	if n <= 0 {
		panic("rng: IntN with non-positive n")
	}
	return int(r.UintN(uint64(n)))
}

// Range returns a uniform value in [lo, hi). Requires lo < hi.
func (r *SplitMix64) Range(lo, hi int) int {
	if lo >= hi {
		panic("rng: empty Range")
	}
	return lo + r.IntN(hi-lo)
}

// Float64 returns a uniform value in [0, 1).
func (r *SplitMix64) Float64() float64 {
	return float64(r.Next()>>11) / (1 << 53)
}

// UintNAt is the stateless counterpart of UintN: the i'th value in [0, n)
// of the stream identified by seed.
func UintNAt(seed, i, n uint64) uint64 {
	if n == 0 {
		panic("rng: UintNAt(0)")
	}
	return mulHi(At(seed, i), n)
}

// Float64At is the stateless counterpart of Float64.
func Float64At(seed, i uint64) float64 {
	return float64(At(seed, i)>>11) / (1 << 53)
}

// mulHi returns the high 64 bits of x*n, i.e. floor(x*n / 2^64), which maps
// a uniform 64-bit x to a uniform value in [0, n).
func mulHi(x, n uint64) uint64 {
	hi, _ := bits.Mul64(x, n)
	return hi
}
