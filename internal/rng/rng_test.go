package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different streams")
		}
	}
	c := New(12346)
	same := 0
	a = New(12345)
	for i := 0; i < 1000; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds collided %d times in 1000 draws", same)
	}
}

func TestUintNInRange(t *testing.T) {
	r := New(9)
	for _, n := range []uint64{1, 2, 3, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := r.UintN(n); v >= n {
				t.Fatalf("UintN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUintNOneIsZero(t *testing.T) {
	r := New(1)
	for i := 0; i < 100; i++ {
		if v := r.UintN(1); v != 0 {
			t.Fatalf("UintN(1) = %d, want 0", v)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("IntN(0) did not panic")
		}
	}()
	New(1).IntN(0)
}

func TestRangeBounds(t *testing.T) {
	r := New(4)
	for i := 0; i < 1000; i++ {
		v := r.Range(10, 20)
		if v < 10 || v >= 20 {
			t.Fatalf("Range(10,20) = %d", v)
		}
	}
}

func TestFloat64InUnitInterval(t *testing.T) {
	r := New(77)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

// TestUniformity is a coarse chi-square-style check that UintN(k) hits all
// residues roughly equally. It guards against e.g. only using low bits.
func TestUniformity(t *testing.T) {
	r := New(2024)
	const k, draws = 16, 160000
	var counts [k]int
	for i := 0; i < draws; i++ {
		counts[r.UintN(k)]++
	}
	want := float64(draws) / k
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d has %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestAtMatchesIndependence(t *testing.T) {
	// At(seed, i) must be deterministic and differ across i and seeds.
	if At(1, 5) != At(1, 5) {
		t.Fatal("At is not deterministic")
	}
	seen := map[uint64]bool{}
	for i := uint64(0); i < 10000; i++ {
		v := At(42, i)
		if seen[v] {
			t.Fatalf("collision at i=%d", i)
		}
		seen[v] = true
	}
}

func TestUintNAtInRange(t *testing.T) {
	f := func(seed, i uint64, nRaw uint16) bool {
		n := uint64(nRaw) + 1
		return UintNAt(seed, i, n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat64At(t *testing.T) {
	for i := uint64(0); i < 1000; i++ {
		f := Float64At(5, i)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64At = %v out of [0,1)", f)
		}
	}
}

func TestHash64Bijective(t *testing.T) {
	// mix is bijective, so no collisions among distinct small inputs.
	seen := map[uint64]bool{}
	for i := uint64(0); i < 100000; i++ {
		v := Hash64(i)
		if seen[v] {
			t.Fatalf("Hash64 collision at %d", i)
		}
		seen[v] = true
	}
}

func TestPanicBranches(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("UintN(0)", func() { New(1).UintN(0) })
	mustPanic("Range empty", func() { New(1).Range(5, 5) })
	mustPanic("UintNAt(0)", func() { UintNAt(1, 2, 0) })
}

func TestUint32AndUint64Aliases(t *testing.T) {
	r := New(9)
	_ = r.Uint32()
	a, b := New(5), New(5)
	if a.Uint64() != b.Next() {
		t.Fatal("Uint64 alias differs from Next")
	}
}
