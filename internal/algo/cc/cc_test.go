package cc

import (
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// seqComponents is the union-find oracle.
func seqComponents(g graph.Graph) []graph.Vertex {
	n := g.NumVertices()
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := 0; v < n; v++ {
		g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			a, b := find(v), find(int(u))
			if a != b {
				if a < b {
					parent[b] = a
				} else {
					parent[a] = b
				}
			}
			return true
		})
	}
	out := make([]graph.Vertex, n)
	for v := range out {
		out[v] = graph.Vertex(find(v))
	}
	// Canonicalize to minimum id per component.
	minOf := map[graph.Vertex]graph.Vertex{}
	for v, r := range out {
		if m, ok := minOf[r]; !ok || graph.Vertex(v) < m {
			minOf[r] = graph.Vertex(v)
		}
	}
	for v, r := range out {
		out[v] = minOf[r]
	}
	return out
}

func TestComponentsMatchUnionFind(t *testing.T) {
	graphs := map[string]graph.Graph{
		"two-components": graph.FromEdges(6,
			[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}},
			graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true}),
		"rmat":   gen.RMAT(1<<10, 4000, true, 1),
		"sparse": gen.ErdosRenyi(2000, 900, true, 2),
		"grid":   gen.Grid2D(15, 15),
		"cycle":  gen.Cycle(50),
	}
	for name, g := range graphs {
		want := seqComponents(g)
		got := Components(g)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("%s: label[%d]=%d want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestCountAndLargest(t *testing.T) {
	g := graph.FromEdges(7,
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	labels := Components(g)
	if Count(labels) != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("Count=%d want 4", Count(labels))
	}
	l, size := Largest(labels)
	if l != 0 || size != 3 {
		t.Fatalf("Largest=(%d,%d) want (0,3)", l, size)
	}
	if _, s := Largest(nil); s != 0 {
		t.Fatal("Largest(nil)")
	}
}

func TestPanicsOnDirected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on directed graph")
		}
	}()
	Components(graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild))
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true})
	if len(Components(g)) != 0 {
		t.Fatal("empty graph")
	}
}
