// Package cc computes connected components with label propagation, the
// canonical frontier-based algorithm the paper's introduction uses to
// motivate Ligra-style frameworks (§1: "In label propagation
// implementations of graph connectivity, the frontier on each round
// consists of vertices whose labels changed in the previous round").
//
// It also serves §4.1's footnote: extracting a particular k-core from
// coreness values means taking the induced subgraph on vertices with
// coreness ≥ k and finding its components, "which can be done
// efficiently in parallel" — see kcore.CoreSubgraph.
package cc

import (
	"sync/atomic"

	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/parallel"
)

// Components returns, for every vertex, the smallest vertex id in its
// connected component (the component label). The graph must be
// undirected.
func Components(g graph.Graph) []graph.Vertex {
	if !g.Symmetric() {
		panic("cc: requires an undirected graph")
	}
	n := g.NumVertices()
	label := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) { label[v] = uint32(v) })

	// Label propagation: every round, vertices push their label to
	// neighbors with writeMin; the frontier is the set of vertices
	// whose label changed, deduplicated with a per-round claim flag
	// (the first successful relaxer of d this round adds it).
	changed := make([]uint32, n)
	frontier := ligra.All(n)
	for !frontier.IsEmpty() {
		frontier = ligra.EdgeMap(g, frontier,
			func(graph.Vertex) bool { return true },
			func(s, d graph.Vertex, w graph.Weight) bool {
				if parallel.WriteMinUint32(&label[d], atomic.LoadUint32(&label[s])) {
					return parallel.CASUint32(&changed[d], 0, 1)
				}
				return false
			}, ligra.EdgeMapOptions{NoDense: true})
		frontier.ForEach(func(v graph.Vertex) {
			parallel.StoreUint32(&changed[v], 0)
		})
	}
	out := make([]graph.Vertex, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) { out[v] = graph.Vertex(label[v]) })
	return out
}

// Count returns the number of distinct components given labels from
// Components (labels are canonical: the minimum vertex id, so a vertex
// whose label equals its own id roots a component).
func Count(labels []graph.Vertex) int {
	return parallel.Count(len(labels), 0, func(v int) bool {
		return labels[v] == graph.Vertex(v)
	})
}

// Largest returns the label and size of the largest component.
func Largest(labels []graph.Vertex) (graph.Vertex, int) {
	if len(labels) == 0 {
		return graph.NilVertex, 0
	}
	sizes := map[graph.Vertex]int{}
	for _, l := range labels {
		sizes[l]++
	}
	best, bestSize := graph.NilVertex, 0
	for l, s := range sizes {
		if s > bestSize || (s == bestSize && l < best) {
			best, bestSize = l, s
		}
	}
	return best, bestSize
}
