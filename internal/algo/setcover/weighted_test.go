package setcover

import (
	"testing"

	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/rng"
)

func unitCosts(n int) []float64 {
	c := make([]float64, n)
	for i := range c {
		c[i] = 1
	}
	return c
}

func TestWeightedTinyPrefersCheap(t *testing.T) {
	// Set 0 covers both elements at cost 10; sets 1 and 2 cover one
	// element each at cost 1. Greedy value: set 0 = 0.2/elt-cost vs
	// 1.0 — the cheap pair wins.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 3},
		{U: 2, V: 4},
	}, graph.DefaultBuild)
	costs := []float64{10, 1, 1}
	for name, res := range map[string]WeightedResult{
		"approx": ApproxWeighted(g, 3, costs, Options{}),
		"greedy": GreedyWeighted(g, 3, costs),
	} {
		if err := Validate(g, 3, res.InCover); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.InCover[0] || !res.InCover[1] || !res.InCover[2] {
			t.Fatalf("%s: chose %v, want the two cheap sets", name, res.InCover)
		}
		if res.Cost != 2 {
			t.Fatalf("%s: cost %v want 2", name, res.Cost)
		}
	}
}

func TestWeightedTinyPrefersBigWhenCheap(t *testing.T) {
	// Same structure but now the big set is the cheap one.
	g := graph.FromEdges(5, []graph.Edge{
		{U: 0, V: 3}, {U: 0, V: 4},
		{U: 1, V: 3},
		{U: 2, V: 4},
	}, graph.DefaultBuild)
	costs := []float64{1, 10, 10}
	res := ApproxWeighted(g, 3, costs, Options{})
	if err := Validate(g, 3, res.InCover); err != nil {
		t.Fatal(err)
	}
	if !res.InCover[0] || res.CoverSize != 1 || res.Cost != 1 {
		t.Fatalf("chose %v (cost %v), want only set 0", res.InCover, res.Cost)
	}
}

func TestWeightedUnitCostsMatchQuality(t *testing.T) {
	// With unit costs the weighted algorithm solves the unweighted
	// problem; its cover must be valid and comparable in size.
	inst := gen.SetCover(200, 1600, 3, 21)
	unweighted := Approx(inst.Graph, inst.Sets, Options{})
	weighted := ApproxWeighted(inst.Graph, inst.Sets, unitCosts(inst.Sets), Options{})
	if err := Validate(inst.Graph, inst.Sets, weighted.InCover); err != nil {
		t.Fatal(err)
	}
	if float64(weighted.CoverSize) > 1.5*float64(unweighted.CoverSize)+2 {
		t.Fatalf("unit-cost weighted cover %d vs unweighted %d",
			weighted.CoverSize, unweighted.CoverSize)
	}
	if weighted.Cost != float64(weighted.CoverSize) {
		t.Fatal("unit costs must sum to cover size")
	}
}

func TestWeightedRandomCostsQuality(t *testing.T) {
	for trial := uint64(0); trial < 3; trial++ {
		inst := gen.SetCover(150, 1200, 3, 31+trial)
		r := rng.New(trial)
		costs := make([]float64, inst.Sets)
		for i := range costs {
			costs[i] = 0.5 + 10*r.Float64()
		}
		greedy := GreedyWeighted(inst.Graph, inst.Sets, costs)
		if err := Validate(inst.Graph, inst.Sets, greedy.InCover); err != nil {
			t.Fatalf("greedy: %v", err)
		}
		for _, opt := range []Options{{}, {Epsilon: 0.1}, {Buckets: bucket.Options{OpenBuckets: 4}}} {
			res := ApproxWeighted(inst.Graph, inst.Sets, costs, opt)
			if err := Validate(inst.Graph, inst.Sets, res.InCover); err != nil {
				t.Fatalf("approx %+v: %v", opt, err)
			}
			// Cost within a small factor of exact greedy.
			if res.Cost > 2.5*greedy.Cost+1 {
				t.Fatalf("approx cost %.1f vs greedy %.1f (opt %+v)",
					res.Cost, greedy.Cost, opt)
			}
		}
	}
}

func TestWeightedExtremeCostSpread(t *testing.T) {
	inst := gen.SetCover(100, 600, 3, 41)
	costs := make([]float64, inst.Sets)
	for i := range costs {
		if i%2 == 0 {
			costs[i] = 1e-3
		} else {
			costs[i] = 1e3
		}
	}
	res := ApproxWeighted(inst.Graph, inst.Sets, costs, Options{})
	if err := Validate(inst.Graph, inst.Sets, res.InCover); err != nil {
		t.Fatal(err)
	}
	greedy := GreedyWeighted(inst.Graph, inst.Sets, costs)
	if res.Cost > 3*greedy.Cost+1 {
		t.Fatalf("cost %.3f vs greedy %.3f", res.Cost, greedy.Cost)
	}
}

func TestWeightedPanics(t *testing.T) {
	g := tinyInstance()
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("bad costs len", func() { ApproxWeighted(g, 3, []float64{1}, Options{}) })
	mustPanic("nonpositive cost", func() { ApproxWeighted(g, 3, []float64{1, 0, 1}, Options{}) })
	mustPanic("greedy bad len", func() { GreedyWeighted(g, 3, nil) })
	mustPanic("greedy nonpositive", func() { GreedyWeighted(g, 3, []float64{1, -1, 1}) })
}

func TestWeightedDeterministic(t *testing.T) {
	inst := gen.SetCover(120, 900, 3, 51)
	costs := make([]float64, inst.Sets)
	for i := range costs {
		costs[i] = 1 + float64(i%7)
	}
	a := ApproxWeighted(inst.Graph, inst.Sets, costs, Options{})
	b := ApproxWeighted(inst.Graph, inst.Sets, costs, Options{})
	if a.Cost != b.Cost || a.CoverSize != b.CoverSize {
		t.Fatal("nondeterministic weighted cover")
	}
	for s := range a.InCover {
		if a.InCover[s] != b.InCover[s] {
			t.Fatal("covers differ")
		}
	}
}
