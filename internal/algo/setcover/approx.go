package setcover

import (
	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// Approx runs the bucketed Blelloch et al. algorithm (Algorithm 3 of
// the paper) on the instance whose sets are vertices [0, numSets) of g.
// The graph is cloned internally (the algorithm packs covered elements
// out of adjacency lists).
//
// Ties between sets reserving the same element are broken by writeMin
// on set ids, which makes the chosen cover deterministic. Determinism
// also guarantees progress: in every round the smallest-id active set
// wins all elements it reserves and therefore enters the cover.
func Approx(g *graph.CSR, numSets int, opt Options) Result {
	return ApproxOn(g.Clone(), numSets, opt)
}

// ApproxOn is Approx over any packable graph representation (plain CSR
// or the Ligra+-style compressed graph, mirroring how the paper runs
// set cover on its compressed Hyperlink inputs). The graph is consumed:
// its adjacency is packed down to nothing as elements are covered.
func ApproxOn(work graph.Packer, numSets int, opt Options) Result {
	eps := opt.epsilon()
	bz := newBucketizer(eps)
	n := work.NumVertices()

	// El[e]: the set currently reserving element e (elmFree if none).
	// Covered[e] != 0 marks e covered. D[s]: uncovered elements still
	// covered by s, lazily maintained (inCover marks chosen sets).
	el := make([]uint32, n)
	covered := make([]uint32, n)
	d := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) {
		el[i] = elmFree
		if i < numSets {
			d[i] = uint32(work.OutDegree(graph.Vertex(i)))
		}
	})

	rec := opt.Recorder
	bopt := opt.Buckets
	if bopt.Recorder == nil {
		bopt.Recorder = rec
	}
	b := bucket.New(numSets, func(s uint32) bucket.ID { return bz.bucketOf(d[s]) },
		bucket.Decreasing, bopt)

	res := Result{InCover: make([]bool, numSets)}
	elmUncovered := func(_, e graph.Vertex) bool { return covered[e] == 0 }
	emOpts := ligra.EdgeMapOptions{NoDense: true, NoOutput: true, Recorder: rec}
	var prevStats bucket.Stats
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
	for {
		if cause := cancel.Stopped(); cause != nil {
			res.Err = rec.NewCanceled("setcover", res.Rounds, cause)
			break
		}
		// sets aliases the bucket structure's arena: valid only until
		// the next NextBucket call, and fully consumed this round.
		bkt, sets := b.NextBucket()
		if bkt == bucket.Nil {
			break
		}
		sp := rec.StartSpan("setcover.round").Arg("bucket", bkt).Arg("sets", len(sets))
		res.Rounds++
		res.SetsInspected += int64(len(sets))
		frontier := ligra.FromSparse(n, sets)

		// Phase 1 (lines 25–27): pack covered elements out of the
		// extracted sets' adjacency lists, update their degrees, and
		// keep the sets that still clear this bucket's threshold.
		setsD := ligra.EdgeMapPack(work, frontier, elmUncovered)
		parallel.For(setsD.Size(), parallel.DefaultGrain, func(i int) {
			d[setsD.IDs[i]] = setsD.Vals[i]
		})
		degThreshold := ceilPow(eps, int64(bkt))
		activeT := ligra.TagMapTagged(setsD, func(s graph.Vertex, deg uint32) (struct{}, bool) {
			return struct{}{}, deg >= degThreshold
		})
		active := active(activeT)

		// Phase 2 (lines 28–30): one MaNIS step. Active sets reserve
		// uncovered elements with writeMin on their ids; a set joins
		// the cover if it won at least ⌈(1+ε)^(b-1)⌉ elements. (The
		// paper's pseudocode tests elmsWon > ⌈(1+ε)^max(b-1,0)⌉, which
		// at b = 0 would demand 2 wins from degree-1 sets and never
		// terminate; ≥ with the unclamped exponent keeps the intended
		// 1/(1+ε)-fraction rule and guarantees progress.)
		ligra.EdgeMap(work, active,
			func(e graph.Vertex) bool { return covered[e] == 0 },
			func(s, e graph.Vertex, w graph.Weight) bool {
				parallel.WriteMinUint32(&el[e], uint32(s))
				return false
			}, emOpts)
		activeCts := ligra.EdgeMapFilterCount(work, active,
			func(s, e graph.Vertex) bool { return el[e] == uint32(s) })
		winThreshold := ceilPow(eps, int64(bkt)-1)
		parallel.For(activeCts.Size(), parallel.DefaultGrain, func(i int) {
			if activeCts.Vals[i] >= winThreshold {
				s := activeCts.IDs[i]
				d[s] = inCover
				res.InCover[s] = true
			}
		})

		// Phase 3 (lines 31–33): mark elements won by chosen sets as
		// covered, release the rest, and rebucket the sets that did
		// not join the cover.
		ligra.EdgeMap(work, active,
			func(graph.Vertex) bool { return true },
			func(s, e graph.Vertex, w graph.Weight) bool {
				// Only e's unique winner passes the check, but losers
				// read el[e] concurrently with the winner's store, so
				// the accesses must be atomic.
				if parallel.LoadUint32(&el[e]) == uint32(s) {
					if d[s] == inCover {
						parallel.StoreUint32(&covered[e], 1)
					} else {
						parallel.StoreUint32(&el[e], elmFree)
					}
				}
				return false
			}, emOpts)

		rebucket := ligra.TagMap(frontier, func(s graph.Vertex) (bucket.Dest, bool) {
			if d[s] == inCover {
				return bucket.None, false
			}
			next := bz.bucketOf(d[s])
			if next == bkt && d[s] < degThreshold && bkt > 0 {
				// Float rounding in bucketOf could otherwise park an
				// inactive set in the current bucket forever.
				next = bkt - 1
			}
			var dest bucket.Dest
			if next == bkt {
				// The set stays in the current bucket, but its physical
				// copy was consumed by extraction: reinsert (the fused
				// MaNIS loop revisits the bucket, §4.3).
				dest = b.GetBucket(bucket.Nil, next)
			} else {
				dest = b.GetBucket(bkt, next)
			}
			return dest, dest != bucket.None
		})
		b.UpdateBuckets(rebucket.Size(), func(j int) (uint32, bucket.Dest) {
			return rebucket.IDs[j], rebucket.Vals[j]
		})
		dur := sp.End()
		if rec != nil {
			cur := b.Stats()
			delta := cur.Sub(prevStats)
			prevStats = cur
			rec.RecordRound(obs.RoundMetrics{
				Algo: "setcover", Round: res.Rounds, Bucket: bkt,
				FrontierSize: len(sets),
				Dense:        false, // the MaNIS edge maps force NoDense
				Extracted:    delta.Extracted, Moved: delta.Moved,
				Skipped: delta.Skipped, Duration: dur,
			})
		}
	}
	res.CoverSize = len(CoverList(res.InCover))
	res.BucketStats = b.Stats()
	return res
}

// active converts a tagged subset to a plain one (helper for clarity).
func active(t ligra.Tagged[struct{}]) ligra.VertexSubset {
	return t.Untagged()
}
