package setcover

import (
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/parallel"
)

// ApproxPBBS is the PBBS-suite-style implementation of the Blelloch et
// al. algorithm [10]: the same MaNIS rounds as Approx, but without a
// bucket structure. Sets that are not chosen in a step are carried in
// the working list to the next step and re-inspected every round even
// when their degree has collapsed far below the current threshold —
// the work-inefficiency the paper's §5 comparison measures ("it
// carries them over to the next step"). Both implementations compute
// covers with the same guarantee.
func ApproxPBBS(g *graph.CSR, numSets int, opt Options) Result {
	return ApproxPBBSOn(g.Clone(), numSets, opt)
}

// ApproxPBBSOn is ApproxPBBS over any packable graph; the graph is
// consumed.
func ApproxPBBSOn(work graph.Packer, numSets int, opt Options) Result {
	eps := opt.epsilon()
	bz := newBucketizer(eps)
	n := work.NumVertices()

	el := make([]uint32, n)
	covered := make([]uint32, n)
	d := make([]uint32, n)
	maxBkt := int64(0)
	for i := 0; i < n; i++ {
		el[i] = elmFree
		if i < numSets {
			d[i] = uint32(work.OutDegree(graph.Vertex(i)))
			if b := bz.bucketOf(d[i]); b != ^uint32(0) && int64(b) > maxBkt {
				maxBkt = int64(b)
			}
		}
	}

	res := Result{InCover: make([]bool, numSets)}
	// The working list starts with every non-empty set and shrinks only
	// when sets join the cover or run out of uncovered elements.
	working := parallel.PackIndices(numSets, func(s int) bool { return d[s] > 0 })
	elmUncovered := func(_, e graph.Vertex) bool { return covered[e] == 0 }

	for bkt := maxBkt; bkt >= 0 && len(working) > 0; {
		res.Rounds++
		res.SetsInspected += int64(len(working))
		frontier := ligra.FromSparse(n, working)

		setsD := ligra.EdgeMapPack(work, frontier, elmUncovered)
		parallel.For(setsD.Size(), parallel.DefaultGrain, func(i int) {
			d[setsD.IDs[i]] = setsD.Vals[i]
		})
		degThreshold := ceilPow(eps, bkt)
		activeT := ligra.TagMapTagged(setsD, func(s graph.Vertex, deg uint32) (struct{}, bool) {
			return struct{}{}, deg >= degThreshold
		})
		act := activeT.Untagged()
		if act.IsEmpty() {
			// No set clears this threshold: move to the next step.
			working = parallel.FilterIndex(working, func(_ int, s graph.Vertex) bool {
				return d[s] > 0
			})
			bkt--
			continue
		}

		ligra.EdgeMap(work, act,
			func(e graph.Vertex) bool { return covered[e] == 0 },
			func(s, e graph.Vertex, w graph.Weight) bool {
				parallel.WriteMinUint32(&el[e], uint32(s))
				return false
			}, ligra.EdgeMapOptions{NoDense: true, NoOutput: true})
		activeCts := ligra.EdgeMapFilterCount(work, act,
			func(s, e graph.Vertex) bool { return el[e] == uint32(s) })
		winThreshold := ceilPow(eps, bkt-1)
		parallel.For(activeCts.Size(), parallel.DefaultGrain, func(i int) {
			if activeCts.Vals[i] >= winThreshold {
				s := activeCts.IDs[i]
				d[s] = inCover
				res.InCover[s] = true
			}
		})
		ligra.EdgeMap(work, act,
			func(graph.Vertex) bool { return true },
			func(s, e graph.Vertex, w graph.Weight) bool {
				if parallel.LoadUint32(&el[e]) == uint32(s) {
					if d[s] == inCover {
						parallel.StoreUint32(&covered[e], 1)
					} else {
						parallel.StoreUint32(&el[e], elmFree)
					}
				}
				return false
			}, ligra.EdgeMapOptions{NoDense: true, NoOutput: true})

		// Carry everything not chosen and not exhausted — including
		// sets far below the threshold (the inefficiency).
		working = parallel.FilterIndex(working, func(_ int, s graph.Vertex) bool {
			return d[s] != inCover && d[s] > 0
		})
	}
	res.CoverSize = len(CoverList(res.InCover))
	return res
}
