package setcover

import (
	"testing"

	"julienne/internal/bucket"
	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
)

// instance builds a tiny hand-checked bipartite instance:
// sets: 0 = {3,4,5}, 1 = {4,5}, 2 = {6}; elements are vertices 3..6.
func tinyInstance() *graph.CSR {
	return graph.FromEdges(7, []graph.Edge{
		{U: 0, V: 3}, {U: 0, V: 4}, {U: 0, V: 5},
		{U: 1, V: 4}, {U: 1, V: 5},
		{U: 2, V: 6},
	}, graph.DefaultBuild)
}

func TestTinyInstanceAllImplementations(t *testing.T) {
	g := tinyInstance()
	for name, f := range map[string]func() Result{
		"approx": func() Result { return Approx(g, 3, Options{}) },
		"pbbs":   func() Result { return ApproxPBBS(g, 3, Options{}) },
		"greedy": func() Result { return Greedy(g, 3) },
	} {
		res := f()
		if err := Validate(g, 3, res.InCover); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Optimal cover is {0, 2}; set 1 is dominated by 0.
		if res.CoverSize != 2 || !res.InCover[0] || !res.InCover[2] || res.InCover[1] {
			t.Fatalf("%s: cover %v (size %d), want {0,2}", name, res.InCover, res.CoverSize)
		}
	}
}

func TestGraphNotMutated(t *testing.T) {
	g := tinyInstance()
	before := g.NumEdges()
	Approx(g, 3, Options{})
	ApproxPBBS(g, 3, Options{})
	if g.NumEdges() != before {
		t.Fatal("input graph was mutated")
	}
	if g.OutDegree(0) != 3 {
		t.Fatal("input degrees changed")
	}
}

func TestEmptyInstance(t *testing.T) {
	g := graph.FromEdges(4, nil, graph.DefaultBuild)
	res := Approx(g, 2, Options{})
	if res.CoverSize != 0 {
		t.Fatalf("empty instance produced cover of size %d", res.CoverSize)
	}
	if err := Validate(g, 2, res.InCover); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSetCoversAll(t *testing.T) {
	// One big set plus many singletons; greedy and approx should both
	// pick just the big set.
	var edges []graph.Edge
	for e := 0; e < 20; e++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(5 + e)})
	}
	edges = append(edges,
		graph.Edge{U: 1, V: 5}, graph.Edge{U: 2, V: 6},
		graph.Edge{U: 3, V: 7}, graph.Edge{U: 4, V: 8})
	g := graph.FromEdges(25, edges, graph.DefaultBuild)
	for name, res := range map[string]Result{
		"approx": Approx(g, 5, Options{}),
		"pbbs":   ApproxPBBS(g, 5, Options{}),
		"greedy": Greedy(g, 5),
	} {
		if err := Validate(g, 5, res.InCover); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !res.InCover[0] || res.CoverSize != 1 {
			t.Fatalf("%s: cover %v, want only set 0", name, res.InCover)
		}
	}
}

func TestRandomInstancesValidAndComparable(t *testing.T) {
	for _, tc := range []struct{ sets, elems, avg int }{
		{50, 300, 3},
		{200, 2000, 4},
		{500, 2000, 2},
		{20, 50, 8},
	} {
		inst := gen.SetCover(tc.sets, tc.elems, tc.avg, uint64(tc.sets))
		g := inst.Graph
		greedy := Greedy(g, inst.Sets)
		if err := Validate(g, inst.Sets, greedy.InCover); err != nil {
			t.Fatalf("greedy invalid: %v", err)
		}
		for name, res := range map[string]Result{
			"approx": Approx(g, inst.Sets, Options{}),
			"pbbs":   ApproxPBBS(g, inst.Sets, Options{}),
		} {
			if err := Validate(g, inst.Sets, res.InCover); err != nil {
				t.Fatalf("%s invalid on %+v: %v", name, tc, err)
			}
			// The (1+ε)H_n cover should be within a small constant of
			// exact greedy (both are H_n-flavored); 2x is generous.
			if res.CoverSize > 2*greedy.CoverSize+2 {
				t.Fatalf("%s cover %d vs greedy %d on %+v", name, res.CoverSize, greedy.CoverSize, tc)
			}
			if res.CoverSize == 0 && greedy.CoverSize > 0 {
				t.Fatalf("%s produced empty cover", name)
			}
		}
	}
}

func TestApproxAndPBBSComputeSameCover(t *testing.T) {
	// Both implement the same deterministic algorithm (writeMin ties),
	// so the chosen covers must be identical (§5: "Both implementations
	// compute the same covers").
	inst := gen.SetCover(300, 3000, 4, 99)
	a := Approx(inst.Graph, inst.Sets, Options{})
	p := ApproxPBBS(inst.Graph, inst.Sets, Options{})
	if a.CoverSize != p.CoverSize {
		t.Fatalf("cover sizes differ: %d vs %d", a.CoverSize, p.CoverSize)
	}
	for s := range a.InCover {
		if a.InCover[s] != p.InCover[s] {
			t.Fatalf("covers differ at set %d", s)
		}
	}
}

func TestBucketConfigurations(t *testing.T) {
	inst := gen.SetCover(200, 1500, 3, 7)
	want := Approx(inst.Graph, inst.Sets, Options{})
	for _, opt := range []Options{
		{Buckets: bucket.Options{OpenBuckets: 2}},
		{Buckets: bucket.Options{Semisort: true}},
		{Epsilon: 0.1},
		{Epsilon: 0.5},
	} {
		res := Approx(inst.Graph, inst.Sets, opt)
		if err := Validate(inst.Graph, inst.Sets, res.InCover); err != nil {
			t.Fatalf("opt %+v: %v", opt, err)
		}
		if opt.Epsilon == 0 && res.CoverSize != want.CoverSize {
			t.Fatalf("bucket option changed the cover: %d vs %d", res.CoverSize, want.CoverSize)
		}
	}
}

func TestWorkEfficiencyComparison(t *testing.T) {
	// The PBBS variant re-inspects carried sets each round, so on an
	// instance with many rounds its inspections should exceed the
	// bucketed version's.
	inst := gen.SetCover(2000, 20000, 4, 5)
	a := Approx(inst.Graph, inst.Sets, Options{})
	p := ApproxPBBS(inst.Graph, inst.Sets, Options{})
	if p.SetsInspected <= a.SetsInspected {
		t.Logf("note: pbbs=%d approx=%d (instance too easy to separate)", p.SetsInspected, a.SetsInspected)
	}
	if a.SetsInspected == 0 || p.SetsInspected == 0 {
		t.Fatal("inspection counters not populated")
	}
}

func TestBucketizer(t *testing.T) {
	bz := newBucketizer(0.01)
	if bz.bucketOf(0) != bucket.Nil || bz.bucketOf(inCover) != bucket.Nil {
		t.Fatal("sentinels must map to Nil")
	}
	if bz.bucketOf(1) != 0 {
		t.Fatalf("bucketOf(1)=%d", bz.bucketOf(1))
	}
	// Monotone non-decreasing in d.
	prev := bucket.ID(0)
	for d := uint32(1); d < 10000; d++ {
		b := bz.bucketOf(d)
		if b < prev {
			t.Fatalf("bucketOf not monotone at %d", d)
		}
		prev = b
	}
}

func TestCeilPow(t *testing.T) {
	if ceilPow(0.01, -1) != 1 || ceilPow(0.01, 0) != 1 {
		t.Fatal("ceilPow base cases")
	}
	if ceilPow(1.0, 3) != 8 {
		t.Fatalf("ceilPow(1,3)=%d want 8", ceilPow(1.0, 3))
	}
}

func TestValidateCatchesBadCover(t *testing.T) {
	g := tinyInstance()
	bad := []bool{false, true, false} // set 1 misses element 3 and 6
	if Validate(g, 3, bad) == nil {
		t.Fatal("Validate accepted an incomplete cover")
	}
}

func TestApproxOnCompressedGraph(t *testing.T) {
	// Set cover over the Ligra+-style compressed representation must
	// produce exactly the cover the CSR run produces (the paper runs
	// set cover on its compressed Hyperlink inputs).
	inst := gen.SetCover(300, 2500, 4, 77)
	want := Approx(inst.Graph, inst.Sets, Options{})
	c := compress.FromCSR(inst.Graph)
	got := ApproxOn(c.Clone(), inst.Sets, Options{})
	if got.CoverSize != want.CoverSize {
		t.Fatalf("cover sizes differ: %d vs %d", got.CoverSize, want.CoverSize)
	}
	for s := range want.InCover {
		if got.InCover[s] != want.InCover[s] {
			t.Fatalf("covers differ at %d", s)
		}
	}
	if err := Validate(inst.Graph, inst.Sets, got.InCover); err != nil {
		t.Fatal(err)
	}
	// PBBS variant too.
	gotP := ApproxPBBSOn(c.Clone(), inst.Sets, Options{})
	if gotP.CoverSize != want.CoverSize {
		t.Fatalf("pbbs-on-compressed cover %d vs %d", gotP.CoverSize, want.CoverSize)
	}
	// Greedy over the compressed graph (read-only path).
	g2 := Greedy(compress.FromCSR(inst.Graph), inst.Sets)
	if err := Validate(inst.Graph, inst.Sets, g2.InCover); err != nil {
		t.Fatal(err)
	}
}
