package setcover

import (
	"container/heap"
	"math"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/parallel"
)

// Weighted set cover (§4.3: "we now describe our algorithm for
// unweighted set cover, and note that it can be easily modified for
// the weighted case as well"). Sets carry positive costs; the greedy
// quantity is the *normalized cost* — uncovered elements per unit cost
// — and sets are bucketed by ⌊log_{1+ε}(D(s)/c(s))⌋, processed from
// most to least valuable. A set joins the cover when the elements it
// wins per unit cost clear the bucket's threshold.
//
// The Blelloch et al. preprocessing that clamps the cost ratio to keep
// the *number of buckets* logarithmic (their Lemma 4.2) is not needed
// here: the open-range optimization (§3.3) already keeps the
// represented bucket range small, so arbitrary positive costs are
// accepted and only the theoretical bucket-count term of Lemma 3.2
// grows with the cost spread.

// WeightedResult extends Result with the total cost of the cover.
type WeightedResult struct {
	Result
	// Cost is the sum of chosen sets' costs.
	Cost float64
}

// valueBucketizer maps a (degree, cost) pair to a bucket id. Bucket
// ids are biased so the smallest representable value (one element per
// maxCost) lands at id 0; higher ids mean more value per cost.
type valueBucketizer struct {
	invLog float64
	bias   int64
}

func newValueBucketizer(eps float64, maxCost float64) valueBucketizer {
	invLog := 1.0 / math.Log1p(eps)
	bias := int64(math.Ceil(math.Log(maxCost)*invLog)) + 1
	if bias < 1 {
		bias = 1
	}
	return valueBucketizer{invLog: invLog, bias: bias}
}

// bucketOf returns the bucket for a live set with d uncovered elements
// and cost c; Nil for exhausted or chosen sets.
func (vb valueBucketizer) bucketOf(d uint32, c float64) bucket.ID {
	if d == 0 || d == inCover {
		return bucket.Nil
	}
	b := vb.bias + int64(math.Floor(math.Log(float64(d)/c)*vb.invLog))
	if b < 0 {
		b = 0
	}
	return bucket.ID(b)
}

// threshold returns (1+ε)^(b-bias), the value floor of bucket b.
func (vb valueBucketizer) threshold(eps float64, b int64) float64 {
	return math.Pow(1+eps, float64(b-vb.bias))
}

// ApproxWeighted runs the bucketed weighted set-cover approximation.
// costs[s] must be positive for every set. The cover guarantee matches
// the unweighted algorithm's, with cost in place of cardinality.
func ApproxWeighted(g *graph.CSR, numSets int, costs []float64, opt Options) WeightedResult {
	return ApproxWeightedOn(g.Clone(), numSets, costs, opt)
}

// ApproxWeightedOn is ApproxWeighted over any packable graph; the
// graph is consumed.
func ApproxWeightedOn(work graph.Packer, numSets int, costs []float64, opt Options) WeightedResult {
	if len(costs) != numSets {
		panic("setcover: costs slice does not match numSets")
	}
	maxCost := 1.0
	for _, c := range costs {
		if c <= 0 {
			panic("setcover: costs must be positive")
		}
		if c > maxCost {
			maxCost = c
		}
	}
	eps := opt.epsilon()
	vb := newValueBucketizer(eps, maxCost)
	n := work.NumVertices()

	el := make([]uint32, n)
	covered := make([]uint32, n)
	d := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) {
		el[i] = elmFree
		if i < numSets {
			d[i] = uint32(work.OutDegree(graph.Vertex(i)))
		}
	})

	b := bucket.New(numSets, func(s uint32) bucket.ID { return vb.bucketOf(d[s], costs[s]) },
		bucket.Decreasing, opt.Buckets)

	res := WeightedResult{Result: Result{InCover: make([]bool, numSets)}}
	elmUncovered := func(_, e graph.Vertex) bool { return covered[e] == 0 }
	for {
		// sets aliases the bucket structure's arena: valid only until
		// the next NextBucket call, and fully consumed this round.
		bkt, sets := b.NextBucket()
		if bkt == bucket.Nil {
			break
		}
		res.Rounds++
		res.SetsInspected += int64(len(sets))
		frontier := ligra.FromSparse(n, sets)

		setsD := ligra.EdgeMapPack(work, frontier, elmUncovered)
		parallel.For(setsD.Size(), parallel.DefaultGrain, func(i int) {
			d[setsD.IDs[i]] = setsD.Vals[i]
		})
		// Active: value (elements per cost) still clears this bucket.
		valueFloor := vb.threshold(eps, int64(bkt))
		activeT := ligra.TagMapTagged(setsD, func(s graph.Vertex, deg uint32) (struct{}, bool) {
			return struct{}{}, float64(deg)/costs[s] >= valueFloor
		})
		act := activeT.Untagged()

		ligra.EdgeMap(work, act,
			func(e graph.Vertex) bool { return covered[e] == 0 },
			func(s, e graph.Vertex, w graph.Weight) bool {
				parallel.WriteMinUint32(&el[e], uint32(s))
				return false
			}, ligra.EdgeMapOptions{NoDense: true, NoOutput: true})
		activeCts := ligra.EdgeMapFilterCount(work, act,
			func(s, e graph.Vertex) bool { return el[e] == uint32(s) })
		winFloor := vb.threshold(eps, int64(bkt)-1)
		parallel.For(activeCts.Size(), parallel.DefaultGrain, func(i int) {
			s := activeCts.IDs[i]
			if float64(activeCts.Vals[i])/costs[s] >= winFloor {
				d[s] = inCover
				res.InCover[s] = true
			}
		})
		ligra.EdgeMap(work, act,
			func(graph.Vertex) bool { return true },
			func(s, e graph.Vertex, w graph.Weight) bool {
				if parallel.LoadUint32(&el[e]) == uint32(s) {
					if d[s] == inCover {
						parallel.StoreUint32(&covered[e], 1)
					} else {
						parallel.StoreUint32(&el[e], elmFree)
					}
				}
				return false
			}, ligra.EdgeMapOptions{NoDense: true, NoOutput: true})

		rebucket := ligra.TagMap(frontier, func(s graph.Vertex) (bucket.Dest, bool) {
			if d[s] == inCover {
				return bucket.None, false
			}
			next := vb.bucketOf(d[s], costs[s])
			if next == bkt && float64(d[s])/costs[s] < valueFloor && bkt > 0 {
				next = bkt - 1 // float-rounding guard, as in Approx
			}
			var dest bucket.Dest
			if next == bkt {
				dest = b.GetBucket(bucket.Nil, next)
			} else {
				dest = b.GetBucket(bkt, next)
			}
			return dest, dest != bucket.None
		})
		b.UpdateBuckets(rebucket.Size(), func(j int) (uint32, bucket.Dest) {
			return rebucket.IDs[j], rebucket.Vals[j]
		})
	}
	res.CoverSize = len(CoverList(res.InCover))
	for s, in := range res.InCover {
		if in {
			res.Cost += costs[s]
		}
	}
	res.BucketStats = b.Stats()
	return res
}

// GreedyWeighted is the exact sequential weighted greedy algorithm:
// repeatedly choose the set maximizing uncovered-elements per unit
// cost (H_n approximation for weighted set cover). Lazy heap with
// stale-entry re-push.
func GreedyWeighted(g graph.Graph, numSets int, costs []float64) WeightedResult {
	if len(costs) != numSets {
		panic("setcover: costs slice does not match numSets")
	}
	n := g.NumVertices()
	d := make([]uint32, numSets)
	covered := make([]bool, n)
	pq := &valueHeap{}
	for s := 0; s < numSets; s++ {
		if costs[s] <= 0 {
			panic("setcover: costs must be positive")
		}
		d[s] = uint32(g.OutDegree(graph.Vertex(s)))
		if d[s] > 0 {
			heap.Push(pq, valueItem{s: uint32(s), value: float64(d[s]) / costs[s], deg: d[s]})
		}
	}
	res := WeightedResult{Result: Result{InCover: make([]bool, numSets)}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(valueItem)
		s := item.s
		if d[s] == inCover || d[s] == 0 {
			continue
		}
		if d[s] != item.deg {
			// Stale: re-push with the current degree.
			heap.Push(pq, valueItem{s: s, value: float64(d[s]) / costs[s], deg: d[s]})
			continue
		}
		res.InCover[s] = true
		res.CoverSize++
		res.Cost += costs[s]
		g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
			if covered[e] {
				return true
			}
			covered[e] = true
			g.InNeighbors(e, func(t graph.Vertex, w2 graph.Weight) bool {
				if uint32(t) != s && d[t] > 0 && d[t] != inCover {
					d[t]--
				}
				return true
			})
			return true
		})
		d[s] = inCover
	}
	return res
}

type valueItem struct {
	s     uint32
	value float64
	deg   uint32
}

type valueHeap []valueItem

func (h valueHeap) Len() int            { return len(h) }
func (h valueHeap) Less(i, j int) bool  { return h[i].value > h[j].value } // max-heap
func (h valueHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *valueHeap) Push(x interface{}) { *h = append(*h, x.(valueItem)) }
func (h *valueHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}
