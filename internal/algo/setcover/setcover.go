// Package setcover implements (1+ε)·H_n-approximate set cover on
// bipartite incidence graphs, following §4.3 of the paper:
//
//   - Approx: the work-efficient bucketed implementation of the
//     Blelloch–Peng–Tangwongsan algorithm [9] (Algorithm 3). Sets are
//     bucketed by ⌊log_{1+ε} D(s)⌋ where D(s) is the number of
//     uncovered elements the set still covers; buckets are processed in
//     decreasing order, and each round runs one step of MaNIS (maximal
//     nearly-independent set) fused into the bucket loop. O(M) expected
//     work where M is the sum of set sizes.
//
//   - ApproxPBBS: the PBBS-benchmark-style implementation of the same
//     algorithm [10], which is *not* work-efficient: instead of
//     rebucketing sets that were not chosen it carries them from step
//     to step, re-inspecting them every round (§5: "it carries them
//     over to the next step").
//
//   - Greedy: the exact sequential greedy algorithm (H_n
//     approximation) with a lazy bucket queue, the correctness oracle.
//
// Instances are bipartite graphs where vertices [0, Sets) are sets,
// the remaining vertices are elements, and directed edges run from a
// set to each element it covers.
package setcover

import (
	"context"
	"fmt"
	"math"
	"time"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// inCover is the D-value marking a set as chosen (the paper's D[s] = ∞,
// Algorithm 3 line 15).
const inCover = math.MaxUint32

// elmFree marks an element not yet reserved by any set (El[e] = ∞).
const elmFree = math.MaxUint32

// Options configures the approximation algorithms.
type Options struct {
	// Epsilon is the bucketing granularity; the approximation factor is
	// (1+ε)·H_n. The paper's experiments use 0.01 (the default).
	Epsilon float64
	// Buckets is passed through to the bucket structure (Approx only).
	Buckets bucket.Options
	// Recorder, when non-nil, receives one span and one RoundMetrics
	// per MaNIS round plus bucket and edgeMap counters (Approx only).
	// Nil disables telemetry with only nil-check overhead.
	Recorder *obs.Recorder
	// Ctx, when non-nil, is checked once per MaNIS round (Approx only);
	// if it is done the run stops and Result.Err reports a
	// *obs.Canceled with partial progress. Nil keeps today's
	// zero-overhead behavior.
	Ctx context.Context
	// Deadline, when non-zero, stops the run once it passes (checked
	// once per round, composing with Ctx — whichever trips first).
	Deadline time.Time

	// There is deliberately no bucket-fusion knob here (compare
	// sssp.Options.Fusion): the greedy guarantee depends on processing
	// degree buckets in exact decreasing order, and sets not chosen by
	// a MaNIS step rebucket *downward* — fusing rounds would let a set
	// win with fewer uncovered elements than the bucket it was drained
	// from claims, voiding the (1+ε)·H_n approximation bound.
}

func (o Options) epsilon() float64 {
	if o.Epsilon <= 0 {
		return 0.01
	}
	return o.Epsilon
}

// Result carries the chosen cover plus harness measurements.
type Result struct {
	// InCover[s] reports whether set s was chosen (indexed over set
	// vertices only).
	InCover []bool
	// CoverSize is the number of chosen sets.
	CoverSize int
	// Rounds is the number of MaNIS/bucket rounds.
	Rounds int64
	// SetsInspected counts set-vertex inspections across rounds; the
	// work-efficiency comparison between Approx and ApproxPBBS reads
	// this (the PBBS version re-inspects carried sets every round).
	SetsInspected int64
	// BucketStats is the bucket-structure traffic (Approx only).
	BucketStats bucket.Stats
	// Err is nil on a completed run, or a *obs.Canceled (wrapping
	// obs.ErrCanceled) if the run was stopped by Options.Ctx or
	// Options.Deadline. A partial InCover is a valid partial cover but
	// not a (1+ε)·H_n-approximate one.
	Err error
}

// bucketizer precomputes the ⌊log_{1+ε} d⌋ mapping. Degrees are small
// integers, so a table lookup keeps the mapping exact and fast.
type bucketizer struct {
	invLog float64
}

func newBucketizer(eps float64) bucketizer {
	return bucketizer{invLog: 1.0 / math.Log1p(eps)}
}

// bucketOf returns the bucket id for a set with d uncovered elements;
// Nil for exhausted (d == 0) or chosen (d == inCover) sets.
func (bz bucketizer) bucketOf(d uint32) bucket.ID {
	switch d {
	case 0, inCover:
		return bucket.Nil
	case 1:
		return 0
	}
	return bucket.ID(math.Log(float64(d)) * bz.invLog)
}

// ceilPow returns ⌈(1+ε)^k⌉ for (possibly negative) k, the degree and
// win thresholds of Algorithm 3 (lines 8 and 13).
func ceilPow(eps float64, k int64) uint32 {
	if k < 0 {
		return 1
	}
	v := math.Pow(1+eps, float64(k))
	return uint32(math.Ceil(v))
}

// Validate checks that the chosen sets cover every coverable element of
// the original (unpacked) instance. It returns nil on a valid cover.
func Validate(g graph.Graph, numSets int, inCoverFlags []bool) error {
	if len(inCoverFlags) != numSets {
		return fmt.Errorf("setcover: flag slice has length %d, want %d", len(inCoverFlags), numSets)
	}
	n := g.NumVertices()
	covered := make([]bool, n)
	for s := 0; s < numSets; s++ {
		if !inCoverFlags[s] {
			continue
		}
		g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
			covered[e] = true
			return true
		})
	}
	coverable := make([]bool, n)
	for s := 0; s < numSets; s++ {
		g.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
			coverable[e] = true
			return true
		})
	}
	for e := numSets; e < n; e++ {
		if coverable[e] && !covered[e] {
			return fmt.Errorf("setcover: element %d is coverable but uncovered", e)
		}
	}
	return nil
}

// CoverList returns the chosen set ids in increasing order.
func CoverList(inCoverFlags []bool) []graph.Vertex {
	return parallel.PackIndices(len(inCoverFlags), func(i int) bool { return inCoverFlags[i] })
}
