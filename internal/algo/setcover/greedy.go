package setcover

import (
	"julienne/internal/graph"
)

// Greedy is the exact sequential greedy set-cover algorithm (Johnson
// [27]): repeatedly choose the set covering the most uncovered
// elements. H_n approximation, O(M) work via a bucket queue over
// degrees with lazy (stale-entry) deletion. It is the oracle the
// parallel implementations' cover quality is compared against.
func Greedy(g graph.Graph, numSets int) Result {
	work := g // read-only: uncovered counts are maintained externally
	n := work.NumVertices()
	d := make([]uint32, numSets)
	maxD := uint32(0)
	for s := 0; s < numSets; s++ {
		d[s] = uint32(work.OutDegree(graph.Vertex(s)))
		if d[s] > maxD {
			maxD = d[s]
		}
	}
	covered := make([]bool, n)
	// bkts[k] holds (possibly stale) sets whose uncovered count was k
	// when pushed; a popped entry is live iff d[s] still equals k.
	bkts := make([][]uint32, maxD+1)
	for s := 0; s < numSets; s++ {
		if d[s] > 0 {
			bkts[d[s]] = append(bkts[d[s]], uint32(s))
		}
	}
	res := Result{InCover: make([]bool, numSets)}
	for k := int(maxD); k >= 1; k-- {
		for len(bkts[k]) > 0 {
			s := bkts[k][len(bkts[k])-1]
			bkts[k] = bkts[k][:len(bkts[k])-1]
			if d[s] != uint32(k) {
				continue // stale entry; a live one sits in a lower bucket
			}
			// Choose s; cover its uncovered elements and decrement
			// every other set that also covered them.
			res.InCover[s] = true
			res.CoverSize++
			work.OutNeighbors(graph.Vertex(s), func(e graph.Vertex, w graph.Weight) bool {
				if covered[e] {
					return true
				}
				covered[e] = true
				g.InNeighbors(e, func(t graph.Vertex, w2 graph.Weight) bool {
					if t != s && d[t] > 0 && d[t] != inCover {
						d[t]--
						if d[t] > 0 {
							bkts[d[t]] = append(bkts[d[t]], uint32(t))
						}
					}
					return true
				})
				return true
			})
			d[s] = inCover
		}
	}
	return res
}
