// Package triangles counts triangles in undirected graphs. Triangle
// support is the substrate for truss-style bucketed peeling — the
// paper's §3.1 explicitly envisions bucket identifiers representing
// "edges, triangles, or graph motifs" — and triangle counts are a
// staple statistic for the social-network inputs the evaluation uses.
//
// The algorithm is the standard degree-ordered count: orient each
// undirected edge from the lower-rank endpoint to the higher (rank =
// (degree, id)), then for every directed edge (u, v) intersect the
// sorted out-neighborhoods of u and v. Each triangle is counted
// exactly once. Work O(m^{3/2}) worst case, parallel over vertices.
package triangles

import (
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// Count returns the number of triangles in g (undirected).
func Count(g graph.Graph) int64 {
	counts := PerVertex(g)
	// Every triangle contributes 1 to exactly three vertices' counts.
	return parallel.SumSlice(counts) / 3
}

// PerVertex returns, for each vertex, the number of triangles it
// participates in.
func PerVertex(g graph.Graph) []int64 {
	if !g.Symmetric() {
		panic("triangles: requires an undirected graph")
	}
	n := g.NumVertices()
	// rank orders vertices by (degree, id); orienting edges toward
	// higher rank bounds out-degrees by O(sqrt(m)) on simple graphs.
	rank := func(v graph.Vertex) uint64 {
		return uint64(g.OutDegree(v))<<32 | uint64(v)
	}
	// Oriented adjacency: higher-rank neighbors only, sorted by id
	// (the input adjacency is sorted, filtering preserves order).
	oriented := make([][]graph.Vertex, n)
	parallel.For(n, 64, func(vi int) {
		v := graph.Vertex(vi)
		rv := rank(v)
		var out []graph.Vertex
		g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
			if rank(u) > rv {
				out = append(out, u)
			}
			return true
		})
		oriented[vi] = out
	})

	counts := make([]int64, n)
	parallel.For(n, 16, func(ui int) {
		u := graph.Vertex(ui)
		for _, v := range oriented[ui] {
			// Intersect oriented[u] and oriented[v]: each common w
			// closes the triangle u-v-w with rank(u) < rank(v) < ... —
			// ranks of both lists exceed their owners', and w appears
			// in both, so the triangle is found exactly here.
			a, b := oriented[ui], oriented[v]
			i, j := 0, 0
			for i < len(a) && j < len(b) {
				switch {
				case a[i] < b[j]:
					i++
				case a[i] > b[j]:
					j++
				default:
					w := a[i]
					parallel.AddInt64(&counts[u], 1)
					parallel.AddInt64(&counts[v], 1)
					parallel.AddInt64(&counts[w], 1)
					i++
					j++
				}
			}
		}
	})
	return counts
}

// GlobalClusteringCoefficient returns 3·triangles / open-wedges, the
// standard transitivity measure, or 0 for wedge-free graphs.
func GlobalClusteringCoefficient(g graph.Graph) float64 {
	tri := Count(g)
	wedges := parallel.Sum(g.NumVertices(), 0, func(v int) int64 {
		d := int64(g.OutDegree(graph.Vertex(v)))
		return d * (d - 1) / 2
	})
	if wedges == 0 {
		return 0
	}
	return 3 * float64(tri) / float64(wedges)
}
