package triangles

import (
	"testing"

	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
)

// seqCount is the brute-force oracle: check every vertex triple.
func seqCount(g graph.Graph) int64 {
	n := g.NumVertices()
	adj := make([]map[graph.Vertex]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = map[graph.Vertex]bool{}
		g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			adj[v][u] = true
			return true
		})
	}
	var c int64
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if !adj[a][graph.Vertex(b)] {
				continue
			}
			for x := b + 1; x < n; x++ {
				if adj[a][graph.Vertex(x)] && adj[b][graph.Vertex(x)] {
					c++
				}
			}
		}
	}
	return c
}

func TestKnownCounts(t *testing.T) {
	cases := map[string]struct {
		g    graph.Graph
		want int64
	}{
		"triangle": {gen.Complete(3), 1},
		"K4":       {gen.Complete(4), 4},
		"K6":       {gen.Complete(6), 20}, // C(6,3)
		"cycle5":   {gen.Cycle(5), 0},
		"star":     {gen.Star(10), 0},
		"path":     {gen.Path(10), 0},
		"grid":     {gen.Grid2D(5, 5), 0},
	}
	for name, tc := range cases {
		if got := Count(tc.g); got != tc.want {
			t.Fatalf("%s: %d triangles, want %d", name, got, tc.want)
		}
	}
}

func TestMatchesBruteForce(t *testing.T) {
	graphs := map[string]graph.Graph{
		"er":      gen.ErdosRenyi(120, 900, true, 1),
		"rmat":    gen.RMAT(1<<7, 1200, true, 2),
		"chunglu": gen.ChungLu(100, 700, 2.3, true, 3),
	}
	for name, g := range graphs {
		want := seqCount(g)
		if got := Count(g); got != want {
			t.Fatalf("%s: %d want %d", name, got, want)
		}
	}
}

func TestPerVertex(t *testing.T) {
	// Triangle + pendant: triangle vertices in 1 triangle each.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	pv := PerVertex(g)
	want := []int64{1, 1, 1, 0}
	for v := range want {
		if pv[v] != want[v] {
			t.Fatalf("perVertex[%d]=%d want %d", v, pv[v], want[v])
		}
	}
}

func TestCompressedGraph(t *testing.T) {
	g := gen.RMAT(1<<8, 3000, true, 5)
	if Count(g) != Count(compress.FromCSR(g)) {
		t.Fatal("compressed count differs")
	}
}

func TestClusteringCoefficient(t *testing.T) {
	// Complete graphs have transitivity exactly 1.
	if c := GlobalClusteringCoefficient(gen.Complete(6)); c != 1 {
		t.Fatalf("K6 transitivity %v want 1", c)
	}
	if c := GlobalClusteringCoefficient(gen.Star(10)); c != 0 {
		t.Fatalf("star transitivity %v want 0", c)
	}
	if c := GlobalClusteringCoefficient(gen.Path(2)); c != 0 {
		t.Fatalf("edge transitivity %v want 0", c)
	}
}

func TestPanicsOnDirected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Count(graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild))
}

func TestEmpty(t *testing.T) {
	if Count(graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true})) != 0 {
		t.Fatal("empty graph")
	}
}
