package kcore

import (
	"julienne/internal/algo/cc"
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// CoreSubgraph is the result of extracting a particular k-core from
// coreness values (footnote 1 / §4.1 of the paper: "computing a
// particular k-core from the coreness numbers requires finding the
// largest induced subgraph among vertices with coreness at least k,
// which can be done efficiently in parallel").
type CoreSubgraph struct {
	// K is the requested core value.
	K uint32
	// Vertices are the original-graph ids of the subgraph's vertices,
	// in increasing order; the subgraph renumbers them densely in this
	// order.
	Vertices []graph.Vertex
	// Graph is the induced subgraph over the renumbered vertices.
	Graph *graph.CSR
	// Components labels each subgraph vertex with the minimum
	// renumbered id of its connected component. A k-core is by
	// definition a maximal *connected* subgraph with min degree k, so
	// the k-cores of the original graph are exactly these components.
	Components []graph.Vertex
	// NumCores is the number of distinct k-cores (components).
	NumCores int
}

// ExtractCore returns the k-core(s) of g given its coreness values
// (from any of the Coreness implementations). Every vertex of the
// returned subgraph has induced degree ≥ k; the subgraph's connected
// components are the individual k-cores.
func ExtractCore(g graph.Graph, coreness []uint32, k uint32) CoreSubgraph {
	requireSymmetric(g)
	n := g.NumVertices()
	if len(coreness) != n {
		panic("kcore: coreness slice does not match the graph")
	}
	keep := parallel.PackIndices(n, func(v int) bool { return coreness[v] >= k })
	// Dense renumbering: old id -> new id.
	renum := make([]graph.Vertex, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) { renum[v] = graph.NilVertex })
	parallel.For(len(keep), parallel.DefaultGrain, func(i int) {
		renum[keep[i]] = graph.Vertex(i)
	})
	// Induced edges, built per kept vertex in parallel.
	parts := make([][]graph.Edge, parallel.Procs())
	parallel.Workers(len(keep), func(worker, lo, hi int) {
		local := parts[worker]
		for i := lo; i < hi; i++ {
			v := keep[i]
			g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
				if renum[u] != graph.NilVertex {
					local = append(local, graph.Edge{U: graph.Vertex(i), V: renum[u], W: w})
				}
				return true
			})
		}
		parts[worker] = local
	})
	var edges []graph.Edge
	for _, p := range parts {
		edges = append(edges, p...)
	}
	// Both directions of every undirected edge survive induction, so
	// no re-symmetrization is needed; FromEdges just sorts and builds.
	sub := graph.FromEdges(len(keep), edges, graph.BuildOptions{
		Weighted:      g.Weighted(),
		DropSelfLoops: true,
		Dedup:         true,
	})
	sub = markSymmetric(sub)

	res := CoreSubgraph{K: k, Vertices: keep, Graph: sub}
	if len(keep) > 0 {
		res.Components = cc.Components(sub)
		res.NumCores = cc.Count(res.Components)
	}
	return res
}

// markSymmetric rebuilds the CSR flagged undirected. Induced subgraphs
// of undirected graphs contain both edge directions already, so the
// flag is a statement of fact, not a transformation.
func markSymmetric(g *graph.CSR) *graph.CSR {
	n := g.NumVertices()
	offsets := make([]uint64, n+1)
	var m uint64
	for v := 0; v < n; v++ {
		offsets[v] = m
		m += uint64(g.OutDegree(graph.Vertex(v)))
	}
	offsets[n] = m
	edges := make([]graph.Vertex, 0, m)
	var weights []graph.Weight
	if g.Weighted() {
		weights = make([]graph.Weight, 0, m)
	}
	for v := 0; v < n; v++ {
		edges = append(edges, g.OutEdges(graph.Vertex(v))...)
		if weights != nil {
			weights = append(weights, g.OutWeights(graph.Vertex(v))...)
		}
	}
	return graph.NewCSR(n, offsets, edges, weights, true)
}
