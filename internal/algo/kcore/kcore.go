// Package kcore computes coreness values (the k-core decomposition) of
// an undirected graph. It contains three implementations:
//
//   - Coreness: the paper's work-efficient bucketed peeling algorithm
//     (Algorithm 1, §4.1) — the first work-efficient parallel k-core
//     algorithm with non-trivial parallelism: O(m + n) expected work
//     and O(ρ log n) depth w.h.p., where ρ is the graph's peeling
//     complexity (Theorem 4.1).
//
//   - CorenessLigra: the work-inefficient frontier-based algorithm that
//     existing frameworks (Ligra et al.) use. It scans all remaining
//     vertices once per core value, for O(k_max·n + m) work — the
//     baseline Table 3 and Figure 2 compare against.
//
//   - CorenessBZ: the sequential O(m + n) Batagelj–Zaversnik bucket
//     algorithm [4], the "well-tuned sequential baseline" (the paper's
//     single-thread comparisons, §5).
//
// The coreness of v is the largest k such that v belongs to a subgraph
// with minimum induced degree k.
package kcore

import (
	"context"
	"fmt"
	"time"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// Options configures the bucketed algorithm.
type Options struct {
	// Buckets is passed through to the bucket structure (open-range
	// size, semisort ablation).
	Buckets bucket.Options
	// Recorder, when non-nil, receives one span and one RoundMetrics
	// per peeling round plus the bucket structure's counters. Nil
	// disables telemetry with only nil-check overhead.
	Recorder *obs.Recorder
	// Ctx, when non-nil, is checked once per peeling round; if it is
	// done the run stops and Result.Err reports a *obs.Canceled with
	// partial progress. Nil keeps today's zero-overhead behavior.
	Ctx context.Context
	// Deadline, when non-zero, stops the run once it passes (checked
	// once per round, composing with Ctx — whichever trips first).
	Deadline time.Time

	// There is deliberately no bucket-fusion knob here (compare
	// sssp.Options.Fusion): peeling must process buckets in exact order
	// because removing a vertex can move its neighbors *down* into the
	// bucket currently being peeled — fusing rounds would peel vertices
	// against stale induced degrees and change the computed coreness.
}

// Result carries the coreness values along with the measurements the
// experiment harness reports.
type Result struct {
	// Coreness[v] is the coreness (maximum core number) of v.
	Coreness []uint32
	// Rounds is the number of peeling rounds, an upper bound on (and in
	// practice equal to) the peeling complexity ρ of §4.1.
	Rounds int64
	// BucketStats is the traffic through the bucket structure (zero for
	// implementations that do not use one).
	BucketStats bucket.Stats
	// VerticesScanned counts vertex inspections outside edge traversal:
	// the work-efficiency experiment (Table 1) compares this between
	// Coreness (O(n + m/...) total) and CorenessLigra (O(k_max·n)).
	VerticesScanned int64
	// EdgesTraversed counts neighbor visits.
	EdgesTraversed int64
	// Err is nil on a completed run, or a *obs.Canceled (wrapping
	// obs.ErrCanceled) if the run was stopped by Options.Ctx or
	// Options.Deadline. The partial Coreness values cover exactly the
	// peeled vertices; the counters cover the completed rounds.
	Err error
}

func requireSymmetric(g graph.Graph) {
	if !g.Symmetric() {
		panic(fmt.Sprintf("kcore: requires an undirected graph (n=%d is directed); symmetrize first", g.NumVertices()))
	}
}

// Coreness runs the work-efficient bucketed peeling algorithm
// (Algorithm 1). The graph must be undirected.
func Coreness(g graph.Graph, opt Options) Result {
	requireSymmetric(g)
	n := g.NumVertices()
	res := Result{Coreness: make([]uint32, n)}
	if n == 0 {
		return res
	}

	// D[v] starts as deg(v) and tracks the induced degree of v in the
	// not-yet-peeled subgraph; once v is peeled it freezes at v's
	// coreness. The bucket structure reads D through its d function.
	d := res.Coreness
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		d[v] = uint32(g.OutDegree(graph.Vertex(v)))
	})
	rec := opt.Recorder
	bopt := opt.Buckets
	if bopt.Recorder == nil {
		bopt.Recorder = rec
	}
	b := bucket.New(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing, bopt)

	var scratch ligra.CountScratch
	finished := 0
	var edges int64
	var prevStats bucket.Stats
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
	for finished < n {
		if cause := cancel.Stopped(); cause != nil {
			res.Err = rec.NewCanceled("kcore", res.Rounds, cause)
			break
		}
		// ids aliases the bucket structure's arena: valid only until
		// the next NextBucket call, and fully consumed this round.
		k, ids := b.NextBucket()
		if k == bucket.Nil {
			break
		}
		sp := rec.StartSpan("kcore.round").Arg("bucket", k).Arg("frontier", len(ids))
		res.Rounds++
		finished += len(ids)
		res.VerticesScanned += int64(len(ids))
		// All vertices in the bucket have coreness k (their D values
		// already equal k by the bucket-liveness invariant); their
		// removal decrements neighbors' induced degrees. edgeMapSum
		// counts removed edges per still-live neighbor (line 16).
		frontier := ligra.FromSparse(n, ids)
		roundEdges := frontier2EdgeCount(g, ids)
		edges += roundEdges
		moved := ligra.EdgeMapCount(g, frontier,
			func(v graph.Vertex) bool { return d[v] > k }, &scratch)
		// Update(v, edgesRemoved) of Algorithm 1: lower D[v], clamping
		// at k so vertices falling below the current core are placed
		// into the current bucket and peeled this round.
		rebucket := ligra.TagMapTagged(moved, func(v graph.Vertex, removed uint32) (bucket.Dest, bool) {
			induced := d[v]
			if induced <= k {
				return bucket.None, false
			}
			newD := max(induced-removed, k)
			d[v] = newD
			dest := b.GetBucket(induced, newD)
			return dest, dest != bucket.None
		})
		b.UpdateBuckets(rebucket.Size(), func(j int) (uint32, bucket.Dest) {
			return rebucket.IDs[j], rebucket.Vals[j]
		})
		dur := sp.End()
		if rec != nil {
			cur := b.Stats()
			delta := cur.Sub(prevStats)
			prevStats = cur
			rec.RecordRound(obs.RoundMetrics{
				Algo: "kcore", Round: res.Rounds, Bucket: k,
				FrontierSize: len(ids), EdgesTraversed: roundEdges,
				Dense:     false, // EdgeMapCount is push-only
				Extracted: delta.Extracted, Moved: delta.Moved,
				Skipped: delta.Skipped, Duration: dur,
			})
		}
	}
	res.BucketStats = b.Stats()
	res.EdgesTraversed = edges
	return res
}

// frontier2EdgeCount sums the degrees of the peeled set (the edges the
// round traverses), for the work counters.
func frontier2EdgeCount(g graph.Graph, ids []graph.Vertex) int64 {
	return parallel.Sum(len(ids), 0, func(i int) int64 {
		return int64(g.OutDegree(ids[i]))
	})
}

// CorenessLigra is the work-inefficient frontier-based algorithm used
// by bucket-less frameworks: for each core value k it scans *all*
// remaining vertices to seed the frontier (the O(k_max·n) term), then
// cascades removals within k as in the bucketed algorithm.
func CorenessLigra(g graph.Graph) Result {
	requireSymmetric(g)
	n := g.NumVertices()
	res := Result{Coreness: make([]uint32, n)}
	if n == 0 {
		return res
	}
	d := make([]uint32, n)
	alive := make([]uint32, n) // 1 = alive; uint32 for atomic-free phase writes
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		d[v] = uint32(g.OutDegree(graph.Vertex(v)))
		alive[v] = 1
	})
	var scratch ligra.CountScratch
	finished := 0
	for k := uint32(0); finished < n; k++ {
		// The work-inefficient step: scan every vertex to find the ones
		// at or below the current core value.
		res.VerticesScanned += int64(n)
		ids := parallel.PackIndices(n, func(v int) bool {
			return alive[v] == 1 && d[v] <= k
		})
		for len(ids) > 0 {
			res.Rounds++
			finished += len(ids)
			parallel.For(len(ids), parallel.DefaultGrain, func(i int) {
				v := ids[i]
				res.Coreness[v] = k
				alive[v] = 0
				d[v] = k
			})
			res.EdgesTraversed += frontier2EdgeCount(g, ids)
			frontier := ligra.FromSparse(n, ids)
			moved := ligra.EdgeMapCount(g, frontier,
				func(v graph.Vertex) bool { return alive[v] == 1 && d[v] > k }, &scratch)
			// Vertices dropping to <= k cascade within this core value.
			next := ligra.TagMapTagged(moved, func(v graph.Vertex, removed uint32) (struct{}, bool) {
				newD := max(d[v]-removed, k)
				d[v] = newD
				return struct{}{}, newD <= k
			})
			ids = next.IDs
		}
	}
	return res
}

// CorenessBZ is the sequential Batagelj–Zaversnik algorithm [4]: bucket
// sort vertices by degree, then repeatedly delete a minimum-degree
// vertex, moving each affected neighbor down one bucket via the classic
// swap-with-bucket-head trick. O(m + n) work.
func CorenessBZ(g graph.Graph) []uint32 {
	requireSymmetric(g)
	n := g.NumVertices()
	deg := make([]uint32, n)
	md := uint32(0)
	for v := 0; v < n; v++ {
		deg[v] = uint32(g.OutDegree(graph.Vertex(v)))
		if deg[v] > md {
			md = deg[v]
		}
	}
	// bin[d] = start index (in vert) of the block of vertices with
	// current degree d; vert is sorted by current degree; pos[v] is v's
	// index in vert.
	bin := make([]uint32, md+2)
	for v := 0; v < n; v++ {
		bin[deg[v]+1]++
	}
	for i := 1; i < len(bin); i++ {
		bin[i] += bin[i-1]
	}
	vert := make([]uint32, n)
	pos := make([]uint32, n)
	fill := append([]uint32(nil), bin...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = uint32(v)
		fill[deg[v]]++
	}
	core := make([]uint32, n)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			if deg[u] > deg[v] {
				du := deg[u]
				pu := pos[u]
				// Swap u with the first vertex of its bucket, then
				// shrink the bucket from the left.
				pw := bin[du]
				wv := vert[pw]
				if u != wv {
					pos[u], pos[wv] = pw, pu
					vert[pu], vert[pw] = wv, u
				}
				bin[du]++
				deg[u]--
			}
			return true
		})
	}
	return core
}

// Rho returns the peeling complexity ρ of g (§4.1): the number of
// rounds needed to peel the graph completely, where each round removes
// all minimum-degree vertices. It is measured by running the bucketed
// peeling algorithm.
func Rho(g graph.Graph) int64 {
	return Coreness(g, Options{}).Rounds
}

// MaxCoreness returns k_max, the largest core number.
func MaxCoreness(coreness []uint32) uint32 {
	if len(coreness) == 0 {
		return 0
	}
	return parallel.Max(len(coreness), 0, func(i int) uint32 { return coreness[i] })
}
