package kcore

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/obs"
)

func checkEqual(t *testing.T, name string, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", name, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("%s: coreness[%d]=%d want %d", name, v, got[v], want[v])
		}
	}
}

func TestKnownSmallGraphs(t *testing.T) {
	// Triangle with a pendant vertex: triangle has coreness 2, pendant 1.
	tri := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	want := []uint32{2, 2, 2, 1}
	checkEqual(t, "bucketed", Coreness(tri, Options{}).Coreness, want)
	checkEqual(t, "ligra", CorenessLigra(tri).Coreness, want)
	checkEqual(t, "bz", CorenessBZ(tri), want)
}

func TestCompleteGraph(t *testing.T) {
	k := gen.Complete(8)
	res := Coreness(k, Options{})
	for v, c := range res.Coreness {
		if c != 7 {
			t.Fatalf("K8 coreness[%d]=%d want 7", v, c)
		}
	}
	// K_n peels in one round: all vertices drop together.
	if res.Rounds != 1 {
		t.Fatalf("K8 rounds=%d want 1", res.Rounds)
	}
}

func TestCycleAndPathAndStar(t *testing.T) {
	for v, c := range Coreness(gen.Cycle(20), Options{}).Coreness {
		if c != 2 {
			t.Fatalf("cycle coreness[%d]=%d want 2", v, c)
		}
	}
	for v, c := range Coreness(gen.Path(20), Options{}).Coreness {
		if c != 1 {
			t.Fatalf("path coreness[%d]=%d want 1", v, c)
		}
	}
	star := Coreness(gen.Star(20), Options{}).Coreness
	for v, c := range star {
		if c != 1 {
			t.Fatalf("star coreness[%d]=%d want 1", v, c)
		}
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := graph.FromEdges(5, []graph.Edge{{U: 0, V: 1}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	res := Coreness(g, Options{})
	want := []uint32{1, 1, 0, 0, 0}
	checkEqual(t, "isolated", res.Coreness, want)
}

func TestEmptyGraph(t *testing.T) {
	g := graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true})
	if res := Coreness(g, Options{}); len(res.Coreness) != 0 {
		t.Fatal("empty graph")
	}
}

func TestPanicsOnDirected(t *testing.T) {
	g := graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on directed input")
		}
	}()
	Coreness(g, Options{})
}

// TestAllImplementationsAgree cross-checks the three implementations on
// a spread of random graph families and bucket configurations.
func TestAllImplementationsAgree(t *testing.T) {
	graphs := map[string]graph.Graph{
		"er-sparse": gen.ErdosRenyi(500, 1000, true, 1),
		"er-dense":  gen.ErdosRenyi(300, 9000, true, 2),
		"rmat":      gen.RMAT(1<<10, 8000, true, 3),
		"chunglu":   gen.ChungLu(800, 6000, 2.3, true, 4),
		"grid":      gen.Grid2D(20, 25),
		"regular8":  gen.RandomRegular(600, 8, true, 5),
		"singleton": gen.Star(2),
	}
	for name, g := range graphs {
		want := CorenessBZ(g)
		checkEqual(t, name+"/ligra", CorenessLigra(g).Coreness, want)
		for _, opt := range []Options{
			{},
			{Buckets: bucket.Options{OpenBuckets: 4}},
			{Buckets: bucket.Options{Semisort: true}},
			{Buckets: bucket.Options{OpenBuckets: 1024}},
		} {
			checkEqual(t, name+"/bucketed", Coreness(g, opt).Coreness, want)
		}
	}
}

func TestWorkEfficiency(t *testing.T) {
	// Table 1's claim made measurable: the bucketed algorithm's scanned
	// vertices are O(n + moves) while the Ligra baseline scans
	// O(k_max * n). On a graph with nontrivial k_max the gap must be
	// large.
	g := gen.RMAT(1<<12, 60000, true, 7)
	eff := Coreness(g, Options{})
	ineff := CorenessLigra(g)
	checkEqual(t, "agree", eff.Coreness, ineff.Coreness)
	kmax := int64(MaxCoreness(eff.Coreness))
	if kmax < 4 {
		t.Skipf("graph too shallow for the comparison (kmax=%d)", kmax)
	}
	if ineff.VerticesScanned < kmax*int64(g.NumVertices()) {
		t.Fatalf("baseline scanned %d vertices, expected >= kmax*n = %d",
			ineff.VerticesScanned, kmax*int64(g.NumVertices()))
	}
	// The bucketed algorithm scans each vertex exactly once at
	// extraction: VerticesScanned == n.
	if eff.VerticesScanned != int64(g.NumVertices()) {
		t.Fatalf("bucketed scanned %d want n=%d", eff.VerticesScanned, g.NumVertices())
	}
	// Bucket traffic is bounded by 2m + n (each edge causes at most one
	// move request; Lemma 3.2 instantiation in §4.1).
	moves := eff.BucketStats.Moved
	if moves > 2*g.NumEdges()+int64(g.NumVertices()) {
		t.Fatalf("bucket moves %d exceed 2m+n", moves)
	}
}

func TestRhoMatchesRounds(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, true, 11)
	if Rho(g) != Coreness(g, Options{}).Rounds {
		t.Fatal("Rho disagrees with Rounds")
	}
	// A complete graph peels in exactly 1 round; a path in few rounds.
	if r := Rho(gen.Complete(10)); r != 1 {
		t.Fatalf("rho(K10)=%d want 1", r)
	}
}

func TestMaxCoreness(t *testing.T) {
	if MaxCoreness(nil) != 0 {
		t.Fatal("MaxCoreness(nil)")
	}
	if MaxCoreness([]uint32{1, 5, 3}) != 5 {
		t.Fatal("MaxCoreness wrong")
	}
}

func TestDeterministic(t *testing.T) {
	g := gen.RMAT(1<<10, 10000, true, 13)
	a := Coreness(g, Options{})
	bres := Coreness(g, Options{})
	checkEqual(t, "determinism", a.Coreness, bres.Coreness)
	if a.Rounds != bres.Rounds {
		t.Fatal("rounds differ across runs")
	}
}

// TestCanceledCarriesFlightTail pins that a canceled run's error
// embeds the flight-recorder tail: the last rounds completed before
// the cancellation, decoded and attributed to this algorithm.
func TestCanceledCarriesFlightTail(t *testing.T) {
	g := gen.RMAT(1<<11, 1<<14, true, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rec := obs.NewRecorder()
	const stopAfter = 3
	rec.OnRound(func(m obs.RoundMetrics) {
		if m.Round == stopAfter {
			cancel()
		}
	})
	res := Coreness(g, Options{Recorder: rec, Ctx: ctx})
	var c *obs.Canceled
	if !errors.As(res.Err, &c) {
		t.Fatalf("want *obs.Canceled, got %v", res.Err)
	}
	if c.Rounds != stopAfter {
		t.Fatalf("canceled after %d rounds, want %d", c.Rounds, stopAfter)
	}
	if len(c.Tail) != stopAfter {
		t.Fatalf("tail has %d records, want %d", len(c.Tail), stopAfter)
	}
	for i, fr := range c.Tail {
		if fr.Algo != "kcore" {
			t.Fatalf("tail[%d].Algo = %q, want kcore", i, fr.Algo)
		}
		if fr.Round != int64(i+1) {
			t.Fatalf("tail[%d].Round = %d, want %d", i, fr.Round, i+1)
		}
	}
	var buf bytes.Buffer
	c.WriteTail(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("kcore")) {
		t.Fatalf("WriteTail output missing algo name:\n%s", buf.String())
	}
}
