package kcore

import (
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

func TestExtractCoreTriangle(t *testing.T) {
	// Triangle (coreness 2) + pendant (coreness 1).
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	cores := Coreness(g, Options{}).Coreness
	sub := ExtractCore(g, cores, 2)
	if len(sub.Vertices) != 3 {
		t.Fatalf("2-core has %d vertices, want 3", len(sub.Vertices))
	}
	if sub.NumCores != 1 {
		t.Fatalf("NumCores=%d want 1", sub.NumCores)
	}
	// Every vertex of the 2-core has induced degree >= 2.
	for v := 0; v < sub.Graph.NumVertices(); v++ {
		if sub.Graph.OutDegree(graph.Vertex(v)) < 2 {
			t.Fatalf("induced degree %d < 2", sub.Graph.OutDegree(graph.Vertex(v)))
		}
	}
	// k=1 keeps everything; k=3 keeps nothing.
	if all := ExtractCore(g, cores, 1); len(all.Vertices) != 4 {
		t.Fatalf("1-core size %d", len(all.Vertices))
	}
	if none := ExtractCore(g, cores, 3); len(none.Vertices) != 0 || none.NumCores != 0 {
		t.Fatalf("3-core should be empty")
	}
}

func TestExtractCoreTwoSeparateCores(t *testing.T) {
	// Two disjoint triangles plus a pendant vertex: the 2-core has two
	// components (two distinct 2-cores); the pendant (coreness 1) is
	// excluded. (Note a path *bridging* the triangles would not
	// separate them: every bridge vertex would keep degree 2 and the
	// whole graph would be one 2-core.)
	edges := []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, // triangle A
		{U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 3}, // triangle B
		{U: 2, V: 6}, // pendant
	}
	g := graph.FromEdges(7, edges,
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	cores := Coreness(g, Options{}).Coreness
	sub := ExtractCore(g, cores, 2)
	if len(sub.Vertices) != 6 {
		t.Fatalf("2-core size %d want 6 (bridge vertex excluded)", len(sub.Vertices))
	}
	if sub.NumCores != 2 {
		t.Fatalf("NumCores=%d want 2", sub.NumCores)
	}
}

// TestExtractCoreInvariants is the property check on random graphs:
// the k-core subgraph has min induced degree >= k and contains exactly
// the vertices with coreness >= k.
func TestExtractCoreInvariants(t *testing.T) {
	g := gen.RMAT(1<<10, 10000, true, 3)
	cores := Coreness(g, Options{}).Coreness
	kmax := MaxCoreness(cores)
	for _, k := range []uint32{1, 2, kmax / 2, kmax} {
		sub := ExtractCore(g, cores, k)
		wantSize := 0
		for _, c := range cores {
			if c >= k {
				wantSize++
			}
		}
		if len(sub.Vertices) != wantSize {
			t.Fatalf("k=%d: size %d want %d", k, len(sub.Vertices), wantSize)
		}
		if err := graph.Validate(sub.Graph); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		for v := 0; v < sub.Graph.NumVertices(); v++ {
			if sub.Graph.OutDegree(graph.Vertex(v)) < int(k) {
				t.Fatalf("k=%d: vertex %d has induced degree %d",
					k, v, sub.Graph.OutDegree(graph.Vertex(v)))
			}
		}
		// Coreness of the subgraph's vertices is >= k when recomputed.
		subCores := Coreness(sub.Graph, Options{}).Coreness
		for v, c := range subCores {
			if c < k {
				t.Fatalf("k=%d: recomputed coreness %d < k at %d", k, c, v)
			}
		}
	}
}

func TestExtractCoreWeighted(t *testing.T) {
	g := gen.UniformWeights(gen.Complete(5), 1, 10, 1)
	cores := Coreness(g, Options{}).Coreness
	sub := ExtractCore(g, cores, 4)
	if !sub.Graph.Weighted() {
		t.Fatal("weights lost")
	}
	if sub.Graph.NumVertices() != 5 {
		t.Fatal("K5 4-core should be whole graph")
	}
}

func TestExtractCorePanics(t *testing.T) {
	g := gen.Complete(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on bad coreness slice")
		}
	}()
	ExtractCore(g, []uint32{1}, 1)
}
