// Package truss computes the k-truss decomposition of an undirected
// graph with bucketed peeling over *edge* identifiers. The paper's
// §3.1 designs the bucket interface over abstract identifiers
// precisely so that "identifiers represent other objects such as
// edges, triangles, or graph motifs"; this package is that claim made
// concrete: the identifiers in the bucket structure are edges, the
// bucket of an edge is its remaining triangle support, and peeling
// proceeds exactly as in k-core — min-support bucket first, with
// support decrements rebucketing the surviving edges.
//
// The trussness of edge e is the largest k such that e belongs to a
// subgraph in which every edge participates in at least k-2 triangles
// (so every edge of a graph with any edges has trussness >= 2, and
// edges of a triangle have trussness >= 3).
package truss

import (
	"slices"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// Result holds the edge-indexed decomposition.
type Result struct {
	// EdgeU/EdgeV list each undirected edge once with EdgeU < EdgeV;
	// Trussness is parallel to them.
	EdgeU, EdgeV []graph.Vertex
	Trussness    []uint32
	// Rounds is the number of peeling rounds (bucket extractions).
	Rounds int64
	// BucketStats is the edge-identifier traffic through the
	// structure.
	BucketStats bucket.Stats
}

// MaxTrussness returns the largest trussness, or 0 for edgeless input.
func (r Result) MaxTrussness() uint32 {
	if len(r.Trussness) == 0 {
		return 0
	}
	return parallel.Max(len(r.Trussness), 0, func(i int) uint32 { return r.Trussness[i] })
}

// Trussness runs the bucketed edge peel. The graph must be undirected
// (and is not modified).
func Trussness(g *graph.CSR) Result {
	if !g.Symmetric() {
		panic("truss: requires an undirected graph")
	}
	n := g.NumVertices()

	// Degree prefix sums recover each vertex's CSR slot base (valid
	// because truss never packs the graph).
	pref := make([]int64, n+1)
	for v := 0; v < n; v++ {
		pref[v+1] = pref[v] + int64(g.OutDegree(graph.Vertex(v)))
	}

	// Assign one identifier per undirected edge (the u < v direction)
	// and build the slot -> edge-id map for both directions so that
	// edgeID(a, b) is a binary search plus a lookup.
	slotOf := func(a, b graph.Vertex) int {
		nbrs := g.OutEdges(a)
		i, ok := slices.BinarySearch(nbrs, b)
		if !ok {
			return -1
		}
		return int(pref[a]) + i
	}
	totalSlots := int(g.NumEdges())
	slotEid := make([]int32, totalSlots)
	var eids int32
	for a := 0; a < n; a++ {
		av := graph.Vertex(a)
		base := int(pref[a])
		for i, b := range g.OutEdges(av) {
			if av < b {
				slotEid[base+i] = eids
				eids++
			}
		}
	}
	// Second pass: mirror direction points at the canonical id.
	parallel.For(n, 64, func(a int) {
		av := graph.Vertex(a)
		base := int(pref[a])
		for i, b := range g.OutEdges(av) {
			if av > b {
				slotEid[base+i] = slotEid[slotOf(b, av)]
			}
		}
	})
	m := int(eids)
	edgeID := func(a, b graph.Vertex) int32 {
		if a > b {
			a, b = b, a
		}
		return slotEid[slotOf(a, b)]
	}

	res := Result{
		EdgeU:     make([]graph.Vertex, m),
		EdgeV:     make([]graph.Vertex, m),
		Trussness: make([]uint32, m),
	}
	parallel.For(n, 64, func(a int) {
		av := graph.Vertex(a)
		base := int(pref[a])
		for i, b := range g.OutEdges(av) {
			if av < b {
				e := slotEid[base+i]
				res.EdgeU[e], res.EdgeV[e] = av, b
			}
		}
	})
	if m == 0 {
		return res
	}

	// Initial support: common neighbors of the endpoints.
	support := make([]uint32, m)
	parallel.For(m, 16, func(e int) {
		support[e] = uint32(intersectCount(g, res.EdgeU[e], res.EdgeV[e], nil))
	})

	peeled := make([]bool, m)
	b := bucket.New(m, func(e uint32) bucket.ID { return bucket.ID(support[e]) },
		bucket.Increasing, bucket.Options{})

	finished := 0
	var updIDs []uint32
	var updDests []bucket.Dest
	for finished < m {
		// ids aliases the bucket structure's arena: valid only until
		// the next NextBucket call, and fully consumed this round.
		k, ids := b.NextBucket()
		if k == bucket.Nil {
			break
		}
		res.Rounds++
		finished += len(ids)
		updIDs, updDests = updIDs[:0], updDests[:0]
		// Peel the batch sequentially: each destroyed triangle
		// decrements its two surviving edges exactly once (the
		// first-peeled edge of a triangle claims it; later edges of
		// the batch see the earlier ones already peeled).
		for _, eRaw := range ids {
			e := int32(eRaw)
			res.Trussness[e] = uint32(k) + 2
			peeled[e] = true
			a, c := res.EdgeU[e], res.EdgeV[e]
			intersectCount(g, a, c, func(w graph.Vertex) {
				e1 := edgeID(a, w)
				e2 := edgeID(c, w)
				if peeled[e1] || peeled[e2] {
					return // triangle already destroyed
				}
				for _, other := range []int32{e1, e2} {
					old := support[other]
					nw := max(old-1, uint32(k))
					if nw == old {
						continue
					}
					support[other] = nw
					if dest := b.GetBucket(bucket.ID(old), bucket.ID(nw)); dest != bucket.None {
						updIDs = append(updIDs, uint32(other))
						updDests = append(updDests, dest)
					}
				}
			})
		}
		b.UpdateBuckets(len(updIDs), func(j int) (uint32, bucket.Dest) {
			return updIDs[j], updDests[j]
		})
	}
	res.BucketStats = b.Stats()
	return res
}

// intersectCount intersects the sorted adjacencies of a and b; when
// visit is non-nil it is called per common neighbor, and the count is
// returned either way.
func intersectCount(g *graph.CSR, a, b graph.Vertex, visit func(w graph.Vertex)) int {
	x, y := g.OutEdges(a), g.OutEdges(b)
	i, j, c := 0, 0, 0
	for i < len(x) && j < len(y) {
		switch {
		case x[i] < y[j]:
			i++
		case x[i] > y[j]:
			j++
		default:
			c++
			if visit != nil {
				visit(x[i])
			}
			i++
			j++
		}
	}
	return c
}
