package truss

import (
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

// seqTrussness is the oracle: repeatedly remove a minimum-support edge
// (recomputing supports from scratch), recording support+2 at removal
// clamped to be non-decreasing — the textbook sequential peel.
func seqTrussness(g *graph.CSR) map[[2]graph.Vertex]uint32 {
	type edge = [2]graph.Vertex
	adj := map[graph.Vertex]map[graph.Vertex]bool{}
	var edges []edge
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.Vertex(v)
		adj[vv] = map[graph.Vertex]bool{}
	}
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.Vertex(v)
		g.OutNeighbors(vv, func(u graph.Vertex, w graph.Weight) bool {
			adj[vv][u] = true
			if vv < u {
				edges = append(edges, edge{vv, u})
			}
			return true
		})
	}
	support := func(e edge) uint32 {
		c := uint32(0)
		for w := range adj[e[0]] {
			if adj[e[1]][w] {
				c++
			}
		}
		return c
	}
	out := map[edge]uint32{}
	level := uint32(0)
	for len(edges) > 0 {
		// Find the minimum-support edge.
		minI, minS := 0, support(edges[0])
		for i := 1; i < len(edges); i++ {
			if s := support(edges[i]); s < minS {
				minI, minS = i, s
			}
		}
		if minS > level {
			level = minS
		}
		e := edges[minI]
		out[e] = level + 2
		delete(adj[e[0]], e[1])
		delete(adj[e[1]], e[0])
		edges = append(edges[:minI], edges[minI+1:]...)
	}
	return out
}

func resultMap(r Result) map[[2]graph.Vertex]uint32 {
	out := map[[2]graph.Vertex]uint32{}
	for i := range r.Trussness {
		out[[2]graph.Vertex{r.EdgeU[i], r.EdgeV[i]}] = r.Trussness[i]
	}
	return out
}

func TestKnownFixtures(t *testing.T) {
	// Every edge of K_n has trussness n; a triangle's edges have 3; a
	// path's edges have 2.
	for n := 3; n <= 6; n++ {
		r := Trussness(gen.Complete(n))
		for i, tr := range r.Trussness {
			if tr != uint32(n) {
				t.Fatalf("K%d edge %d trussness %d", n, i, tr)
			}
		}
		if r.MaxTrussness() != uint32(n) {
			t.Fatalf("K%d max trussness %d", n, r.MaxTrussness())
		}
	}
	for _, tr := range Trussness(gen.Path(10)).Trussness {
		if tr != 2 {
			t.Fatalf("path trussness %d want 2", tr)
		}
	}
	for _, tr := range Trussness(gen.Cycle(8)).Trussness {
		if tr != 2 {
			t.Fatalf("cycle trussness %d want 2", tr)
		}
	}
}

func TestTrianglePlusPendant(t *testing.T) {
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	got := resultMap(Trussness(g))
	want := map[[2]graph.Vertex]uint32{
		{0, 1}: 3, {0, 2}: 3, {1, 2}: 3, {2, 3}: 2,
	}
	for e, w := range want {
		if got[e] != w {
			t.Fatalf("edge %v trussness %d want %d (all: %v)", e, got[e], w, got)
		}
	}
}

func TestMatchesSequentialOracle(t *testing.T) {
	graphs := map[string]*graph.CSR{
		"er":    gen.ErdosRenyi(60, 300, true, 1),
		"rmat":  gen.RMAT(1<<6, 500, true, 2),
		"dense": gen.ErdosRenyi(25, 200, true, 3),
		"grid":  gen.Grid2D(6, 6),
	}
	for name, g := range graphs {
		want := seqTrussness(g)
		got := resultMap(Trussness(g))
		if len(got) != len(want) {
			t.Fatalf("%s: %d edges vs %d", name, len(got), len(want))
		}
		for e, w := range want {
			if got[e] != w {
				t.Fatalf("%s: edge %v trussness %d want %d", name, e, got[e], w)
			}
		}
	}
}

// TestTrussInvariant checks the defining property directly: within the
// subgraph of edges with trussness >= k, every edge must close at
// least k-2 triangles.
func TestTrussInvariant(t *testing.T) {
	g := gen.RMAT(1<<8, 4000, true, 7)
	r := Trussness(g)
	kmax := r.MaxTrussness()
	for _, k := range []uint32{3, kmax} {
		if k < 3 {
			continue
		}
		// Adjacency restricted to edges with trussness >= k.
		adj := map[graph.Vertex]map[graph.Vertex]bool{}
		add := func(a, b graph.Vertex) {
			if adj[a] == nil {
				adj[a] = map[graph.Vertex]bool{}
			}
			adj[a][b] = true
		}
		for i, tr := range r.Trussness {
			if tr >= k {
				add(r.EdgeU[i], r.EdgeV[i])
				add(r.EdgeV[i], r.EdgeU[i])
			}
		}
		for i, tr := range r.Trussness {
			if tr < k {
				continue
			}
			a, b := r.EdgeU[i], r.EdgeV[i]
			c := uint32(0)
			for w := range adj[a] {
				if adj[b][w] {
					c++
				}
			}
			if c < k-2 {
				t.Fatalf("k=%d: edge (%d,%d) has %d triangles in the %d-truss", k, a, b, c, k)
			}
		}
	}
}

func TestEmptyAndEdgeless(t *testing.T) {
	r := Trussness(graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true}))
	if len(r.Trussness) != 0 || r.MaxTrussness() != 0 {
		t.Fatal("empty graph")
	}
	r2 := Trussness(graph.FromEdges(5, nil, graph.BuildOptions{Symmetrize: true}))
	if len(r2.Trussness) != 0 {
		t.Fatal("edgeless graph")
	}
}

func TestPanicsOnDirected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Trussness(graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild))
}
