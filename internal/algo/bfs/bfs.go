// Package bfs implements frontier-based breadth-first search — the
// degenerate bucketing algorithm with a single bucket (§1: "frontier-
// based algorithms are ... bucketing-based algorithms that only use one
// bucket"). It doubles as the eccentricity estimator used to size wBFS
// experiments and as a connectivity oracle in tests.
package bfs

import (
	"fmt"
	"sync/atomic"

	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/parallel"
)

// Unreached marks vertices the search did not reach.
const Unreached int32 = -1

// Result holds BFS outputs.
type Result struct {
	// Level[v] is the hop distance from the source, or Unreached.
	Level []int32
	// Parent[v] is the BFS-tree parent (NilVertex for the source and
	// unreached vertices).
	Parent []graph.Vertex
	// Rounds is the number of frontier expansions (the eccentricity of
	// the source plus one, on connected graphs).
	Rounds int64
}

// BFS runs a direction-optimized breadth-first search from src.
func BFS(g graph.Graph, src graph.Vertex) Result {
	n := g.NumVertices()
	if int(src) >= n {
		panic(fmt.Sprintf("bfs: source %d out of range for n=%d", src, n))
	}
	level := make([]int32, n)
	parent := make([]graph.Vertex, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) {
		level[i] = Unreached
		parent[i] = graph.NilVertex
	})
	level[src] = 0
	res := Result{Level: level, Parent: parent}

	frontier := ligra.Single(n, src)
	for round := int32(1); !frontier.IsEmpty(); round++ {
		res.Rounds++
		frontier = ligra.EdgeMap(g, frontier,
			func(v graph.Vertex) bool { return atomic.LoadInt32(&level[v]) == Unreached },
			func(s, d graph.Vertex, w graph.Weight) bool {
				if atomic.CompareAndSwapInt32(&level[d], Unreached, round) {
					parent[d] = s
					return true
				}
				return false
			}, ligra.EdgeMapOptions{})
	}
	return res
}

// Eccentricity returns the largest finite BFS level from src.
func Eccentricity(g graph.Graph, src graph.Vertex) int32 {
	res := BFS(g, src)
	var ecc int32
	for _, l := range res.Level {
		if l > ecc {
			ecc = l
		}
	}
	return ecc
}

// ComponentOf returns the vertices reachable from src (including src).
func ComponentOf(g graph.Graph, src graph.Vertex) []graph.Vertex {
	res := BFS(g, src)
	return parallel.PackIndices(g.NumVertices(), func(v int) bool {
		return res.Level[v] != Unreached
	})
}
