package bfs

import (
	"testing"

	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
)

func seqLevels(g graph.Graph, src graph.Vertex) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = Unreached
	}
	level[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
			if level[u] == Unreached {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return level
}

func TestBFSMatchesSequential(t *testing.T) {
	graphs := map[string]graph.Graph{
		"rmat":       gen.RMAT(1<<11, 16000, true, 1),
		"grid":       gen.Grid2D(40, 35),
		"path":       gen.Path(500),
		"star":       gen.Star(200),
		"er-dir":     gen.ErdosRenyi(800, 4000, false, 2),
		"compressed": compress.FromCSR(gen.RMAT(1<<10, 8000, true, 3)),
	}
	for name, g := range graphs {
		want := seqLevels(g, 0)
		got := BFS(g, 0)
		for v := range want {
			if got.Level[v] != want[v] {
				t.Fatalf("%s: level[%d]=%d want %d", name, v, got.Level[v], want[v])
			}
		}
	}
}

func TestParentsFormTree(t *testing.T) {
	g := gen.RMAT(1<<10, 8000, true, 7)
	res := BFS(g, 0)
	for v := range res.Level {
		switch {
		case res.Level[v] == Unreached:
			if res.Parent[v] != graph.NilVertex {
				t.Fatalf("unreached %d has parent", v)
			}
		case res.Level[v] == 0:
			if v != 0 {
				t.Fatalf("level 0 at non-source %d", v)
			}
		default:
			p := res.Parent[v]
			if p == graph.NilVertex {
				t.Fatalf("reached %d has no parent", v)
			}
			if res.Level[p] != res.Level[v]-1 {
				t.Fatalf("parent level of %d: %d vs %d", v, res.Level[p], res.Level[v])
			}
		}
	}
}

func TestEccentricityOnPath(t *testing.T) {
	g := gen.Path(100)
	if e := Eccentricity(g, 0); e != 99 {
		t.Fatalf("path ecc=%d want 99", e)
	}
	if e := Eccentricity(g, 50); e != 50 {
		t.Fatalf("mid ecc=%d want 50", e)
	}
}

func TestComponentOf(t *testing.T) {
	g := graph.FromEdges(6, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	comp := ComponentOf(g, 0)
	if len(comp) != 3 {
		t.Fatalf("component %v", comp)
	}
	comp2 := ComponentOf(g, 5)
	if len(comp2) != 1 || comp2[0] != 5 {
		t.Fatalf("singleton component %v", comp2)
	}
}

func TestRoundsEqualsEccentricityPlusOne(t *testing.T) {
	g := gen.Grid2D(10, 10)
	res := BFS(g, 0)
	var ecc int32
	for _, l := range res.Level {
		if l > ecc {
			ecc = l
		}
	}
	if res.Rounds != int64(ecc)+1 {
		t.Fatalf("rounds=%d ecc=%d", res.Rounds, ecc)
	}
}

func TestSourceOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BFS(gen.Path(5), 10)
}
