package densest

import (
	"math"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

func TestDensityHelper(t *testing.T) {
	k5 := gen.Complete(5)
	all := []graph.Vertex{0, 1, 2, 3, 4}
	if d := Density(k5, all); d != 2.0 { // C(5,2)=10 edges / 5 vertices
		t.Fatalf("K5 density %v want 2", d)
	}
	if d := Density(k5, all[:2]); d != 0.5 {
		t.Fatalf("pair density %v want 0.5", d)
	}
	if Density(k5, nil) != 0 {
		t.Fatal("empty density")
	}
}

// checkResult verifies the reported density equals the recomputed
// density of the reported vertex set.
func checkResult(t *testing.T, name string, g graph.Graph, res Result) {
	t.Helper()
	if len(res.Vertices) == 0 {
		t.Fatalf("%s: empty subgraph", name)
	}
	got := Density(g, res.Vertices)
	if math.Abs(got-res.Density) > 1e-9 {
		t.Fatalf("%s: reported density %v but set has %v (%d vertices)",
			name, res.Density, got, len(res.Vertices))
	}
}

func TestCliquePlusFringe(t *testing.T) {
	// K10 (density 4.5) plus a long path attached: both algorithms
	// must find (a superset as dense as) the clique.
	var edges []graph.Edge
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j)})
		}
	}
	for i := 10; i < 60; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i - 1), V: graph.Vertex(i)})
	}
	g := graph.FromEdges(60, edges,
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})

	ch := Charikar(g)
	checkResult(t, "charikar", g, ch)
	if ch.Density < 4.5-1e-9 {
		t.Fatalf("charikar density %v < clique density 4.5", ch.Density)
	}
	pb := PeelBatch(g, 0.1)
	checkResult(t, "peelbatch", g, pb)
	// (2+2ε)-approx of optimum >= 4.5.
	if pb.Density < 4.5/(2+0.2)-1e-9 {
		t.Fatalf("peelbatch density %v below guarantee", pb.Density)
	}
}

func TestCompleteGraph(t *testing.T) {
	g := gen.Complete(8)
	want := 3.5 // 28 edges / 8 vertices
	for name, res := range map[string]Result{
		"charikar":  Charikar(g),
		"peelbatch": PeelBatch(g, 0.1),
	} {
		checkResult(t, name, g, res)
		if res.Density != want {
			t.Fatalf("%s: density %v want %v", name, res.Density, want)
		}
		if len(res.Vertices) != 8 {
			t.Fatalf("%s: should keep the whole clique", name)
		}
	}
}

func TestGuaranteesOnRandomGraphs(t *testing.T) {
	graphs := map[string]graph.Graph{
		"rmat":    gen.RMAT(1<<10, 12000, true, 1),
		"chunglu": gen.ChungLu(1000, 8000, 2.3, true, 2),
		"er":      gen.ErdosRenyi(800, 4000, true, 3),
		"grid":    gen.Grid2D(20, 20),
	}
	for name, g := range graphs {
		ch := Charikar(g)
		checkResult(t, name+"/charikar", g, ch)
		pb := PeelBatch(g, 0.1)
		checkResult(t, name+"/peelbatch", g, pb)
		// Charikar is a 2-approx and PeelBatch a (2+2ε)-approx of the
		// same optimum, so they can differ by at most a factor
		// (2+2ε)/... — in particular PeelBatch cannot beat Charikar by
		// more than 2x and vice versa cannot be below charikar/(1+ε)
		// by much. Assert the loose mutual bound.
		if pb.Density > 2*ch.Density+1e-9 || ch.Density > (2+0.2)*pb.Density+1e-9 {
			t.Fatalf("%s: densities inconsistent: charikar=%v peelbatch=%v",
				name, ch.Density, pb.Density)
		}
		// Both must be at least half the max-degree-based lower bound
		// on optimum? Optimum >= m/n (whole graph).
		whole := float64(g.NumEdges()) / 2 / float64(g.NumVertices())
		if ch.Density < whole-1e-9 {
			t.Fatalf("%s: charikar %v below whole-graph density %v", name, ch.Density, whole)
		}
	}
}

func TestPeelBatchLogRounds(t *testing.T) {
	g := gen.RMAT(1<<12, 40000, true, 7)
	res := PeelBatch(g, 0.5)
	// O(log_{1.5} n) rounds: generous cap at 4*log2(n).
	maxRounds := int64(4 * 12)
	if res.Rounds > maxRounds {
		t.Fatalf("rounds %d exceed O(log n) expectation %d", res.Rounds, maxRounds)
	}
}

func TestEmptyAndTiny(t *testing.T) {
	empty := graph.FromEdges(0, nil, graph.BuildOptions{Symmetrize: true})
	if res := Charikar(empty); len(res.Vertices) != 0 {
		t.Fatal("empty graph")
	}
	if res := PeelBatch(empty, 0.1); len(res.Vertices) != 0 {
		t.Fatal("empty graph peelbatch")
	}
	single := gen.Star(2) // one edge
	res := Charikar(single)
	checkResult(t, "single-edge", single, res)
	if res.Density != 0.5 {
		t.Fatalf("single edge density %v", res.Density)
	}
}

func TestPanicsOnDirected(t *testing.T) {
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 1}}, graph.DefaultBuild)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Charikar(g)
}
