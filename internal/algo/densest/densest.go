// Package densest implements approximate densest-subgraph algorithms.
// They are not one of the paper's four applications, but they are the
// canonical *next* bucketing-based algorithm the framework enables —
// peeling by remaining degree, exactly like k-core — and GBBS (the
// paper's successor system) ships them. Implemented here as the
// "extension" application demonstrating the bucket structure beyond
// the paper's four:
//
//   - Charikar: the exact greedy 2-approximation — repeatedly remove a
//     minimum-degree vertex, track the densest prefix. Implemented
//     work-efficiently on the bucket structure: O(m + n) work, like
//     coreness.
//   - PeelBatch: the Bahmani–Kumar–Vassilvitskii batch peeling
//     (2+2ε)-approximation — each round removes every vertex with
//     degree ≤ 2(1+ε)·ρ(S), finishing in O(log_{1+ε} n) rounds. Fully
//     parallel via the Ligra layer.
//
// Density of a vertex set S is |E(S)| / |S| (undirected edges).
package densest

import (
	"context"
	"time"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// Options configures the peeling algorithms.
type Options struct {
	// Recorder, when non-nil, receives one span and one RoundMetrics
	// per peeling round plus the bucket structure's counters
	// (Charikar only; PeelBatch has no bucket structure). Nil disables
	// telemetry with only nil-check overhead.
	Recorder *obs.Recorder
	// Ctx, when non-nil, is checked once per peeling round; if it is
	// done the run stops and Result.Err reports a *obs.Canceled with
	// partial progress. Nil keeps today's zero-overhead behavior.
	Ctx context.Context
	// Deadline, when non-zero, stops the run once it passes (checked
	// once per round, composing with Ctx — whichever trips first).
	Deadline time.Time
}

// Result describes a dense subgraph.
type Result struct {
	// Vertices of the chosen subgraph (original ids, increasing).
	Vertices []graph.Vertex
	// Density is |E(S)|/|S| of the chosen subgraph.
	Density float64
	// Rounds is the number of peeling rounds executed.
	Rounds int64
	// Err is nil on a completed run, or a *obs.Canceled (wrapping
	// obs.ErrCanceled) if the run was stopped by Options.Ctx or
	// Options.Deadline. The partial result is the densest prefix seen
	// over the completed rounds — a valid subgraph and density, but
	// without the approximation guarantee.
	Err error
}

// Density computes |E(S)|/|S| for an explicit vertex set over g.
func Density(g graph.Graph, vertices []graph.Vertex) float64 {
	if len(vertices) == 0 {
		return 0
	}
	in := make([]bool, g.NumVertices())
	for _, v := range vertices {
		in[v] = true
	}
	edges := parallel.Sum(len(vertices), 0, func(i int) int64 {
		var c int64
		g.OutNeighbors(vertices[i], func(u graph.Vertex, w graph.Weight) bool {
			if in[u] {
				c++
			}
			return true
		})
		return c
	})
	return float64(edges) / 2 / float64(len(vertices))
}

func requireSymmetric(g graph.Graph) {
	if !g.Symmetric() {
		panic("densest: requires an undirected graph")
	}
}

// Charikar runs the exact greedy peel (2-approximation): vertices are
// removed in min-degree-first order via the bucket structure; after
// each bucket is peeled the remaining subgraph's density is recorded,
// and the densest intermediate subgraph wins. Peeling a whole bucket
// at a time preserves the classic guarantee: the analysis only needs
// that when the optimum's first vertex is peeled, every remaining
// vertex (hence every vertex of the optimum S*) has degree ≥ the
// minimum degree being peeled, and ρ* ≤ max-min-degree/... — the
// recorded density at the round *before* any vertex of the best
// prefix falls is at least ρ*/2.
func Charikar(g graph.Graph) Result {
	return CharikarWithOptions(g, Options{})
}

// CharikarWithOptions is Charikar with cancellation support.
func CharikarWithOptions(g graph.Graph, opt Options) Result {
	requireSymmetric(g)
	n := g.NumVertices()
	if n == 0 {
		return Result{}
	}
	d := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		d[v] = uint32(g.OutDegree(graph.Vertex(v)))
	})
	rec := opt.Recorder
	b := bucket.New(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing,
		bucket.Options{Recorder: rec})

	alive := int64(n)
	liveEdges := g.NumEdges() / 2 // undirected edges
	bestDensity := float64(liveEdges) / float64(alive)
	bestAlive := alive
	var rounds int64
	removedAt := make([]int64, n) // round at which each vertex fell (1-based)
	var scratch ligra.CountScratch
	var runErr error
	var prevStats bucket.Stats
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
	for alive > 0 {
		if cause := cancel.Stopped(); cause != nil {
			runErr = rec.NewCanceled("densest", rounds, cause)
			break
		}
		// ids aliases the bucket structure's arena: valid only until
		// the next NextBucket call, and fully consumed this round.
		k, ids := b.NextBucket()
		if k == bucket.Nil {
			break
		}
		sp := rec.StartSpan("densest.round").Arg("bucket", k).Arg("frontier", len(ids))
		rounds++
		frontier := ligra.FromSparse(n, ids)
		parallel.For(len(ids), parallel.DefaultGrain, func(i int) {
			removedAt[ids[i]] = rounds
		})
		// Count removed edges per *every* live neighbor (edges to
		// survivors sitting at degree exactly k must be accounted even
		// though those survivors cannot move buckets), then rebucket
		// the neighbors above the current bucket as in Algorithm 1.
		moved := ligra.EdgeMapCount(g, frontier,
			func(v graph.Vertex) bool { return removedAt[v] == 0 }, &scratch)
		var removedEdges int64
		rebucket := ligra.TagMapTagged(moved, func(v graph.Vertex, removed uint32) (bucket.Dest, bool) {
			parallel.AddInt64(&removedEdges, int64(removed))
			induced := d[v]
			if induced <= k {
				return bucket.None, false // already in (or below) cur
			}
			newD := max(induced-removed, k)
			d[v] = newD
			dest := b.GetBucket(induced, newD)
			return dest, dest != bucket.None
		})
		// Edges internal to the peeled set fall too (each counted once
		// per endpoint among peeled vertices, halved), plus edges to
		// survivors (counted once, above). Recompute exactly: an edge
		// dies when its first endpoint dies. This must read ids before
		// UpdateBuckets below: the slice aliases the bucket arena,
		// which that call invalidates.
		internal := parallel.Sum(len(ids), 0, func(i int) int64 {
			var c int64
			g.OutNeighbors(ids[i], func(u graph.Vertex, w graph.Weight) bool {
				if removedAt[u] == rounds {
					c++
				}
				return true
			})
			return c
		})
		removedEdges += internal / 2
		b.UpdateBuckets(rebucket.Size(), func(j int) (uint32, bucket.Dest) {
			return rebucket.IDs[j], rebucket.Vals[j]
		})
		nPeeled := len(ids)
		alive -= int64(nPeeled)
		liveEdges -= removedEdges
		if alive > 0 {
			density := float64(liveEdges) / float64(alive)
			if density > bestDensity {
				bestDensity = density
				bestAlive = alive
			}
		}
		dur := sp.End()
		if rec != nil {
			cur := b.Stats()
			delta := cur.Sub(prevStats)
			prevStats = cur
			rec.RecordRound(obs.RoundMetrics{
				Algo: "densest", Round: rounds, Bucket: k,
				FrontierSize: nPeeled, EdgesTraversed: removedEdges,
				Dense:     false, // EdgeMapCount is push-only
				Extracted: delta.Extracted, Moved: delta.Moved,
				Skipped: delta.Skipped, Duration: dur,
			})
		}
	}
	// Reconstruct the best prefix: the survivors just before density
	// peaked are exactly the vertices removed in the latest rounds.
	// Find the cutoff round: survivors after round r = vertices with
	// removedAt > r; pick r such that survivor count == bestAlive.
	return Result{
		Vertices: survivorsOfSize(removedAt, bestAlive),
		Density:  bestDensity,
		Rounds:   rounds,
		Err:      runErr,
	}
}

// survivorsOfSize returns the vertex set consisting of the `want`
// longest-surviving vertices (ties broken by taking whole rounds; the
// recorded density corresponds to a whole-round cut, so an exact-size
// cut always exists).
func survivorsOfSize(removedAt []int64, want int64) []graph.Vertex {
	if want <= 0 {
		return nil
	}
	// Count how many vertices fall in each round.
	maxRound := int64(0)
	for _, r := range removedAt {
		if r > maxRound {
			maxRound = r
		}
	}
	fallen := make([]int64, maxRound+1)
	for _, r := range removedAt {
		fallen[r]++
	}
	n := int64(len(removedAt))
	cut := int64(0) // survivors after round `cut` have removedAt > cut
	survivors := n
	for r := int64(1); r <= maxRound && survivors != want; r++ {
		survivors -= fallen[r]
		cut = r
	}
	return parallel.PackIndices(len(removedAt), func(v int) bool {
		return removedAt[v] > cut || removedAt[v] == 0
	})
}

// PeelBatch is the Bahmani et al. parallel batch peel: while vertices
// remain, remove every vertex with degree ≤ 2(1+ε)·ρ(S). The densest
// intermediate S is a (2+2ε)-approximation, reached in
// O(log_{1+ε} n) rounds.
func PeelBatch(g graph.Graph, eps float64) Result {
	return PeelBatchWithOptions(g, eps, Options{})
}

// PeelBatchWithOptions is PeelBatch with cancellation support.
func PeelBatchWithOptions(g graph.Graph, eps float64, opt Options) Result {
	requireSymmetric(g)
	if eps <= 0 {
		eps = 0.1
	}
	n := g.NumVertices()
	if n == 0 {
		return Result{}
	}
	d := make([]uint32, n)
	dead := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		d[v] = uint32(g.OutDegree(graph.Vertex(v)))
	})
	alive := int64(n)
	liveEdges := g.NumEdges() / 2
	bestDensity := float64(liveEdges) / float64(alive)
	bestAlive := alive
	round := uint32(0)
	var rounds int64
	var scratch ligra.CountScratch
	var runErr error
	rec := opt.Recorder
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
	for alive > 0 {
		if cause := cancel.Stopped(); cause != nil {
			runErr = rec.NewCanceled("densest", rounds, cause)
			break
		}
		sp := rec.StartSpan("densest.batch_round")
		rounds++
		round++
		rho := float64(liveEdges) / float64(alive)
		threshold := 2 * (1 + eps) * rho
		ids := parallel.PackIndices(n, func(v int) bool {
			return dead[v] == 0 && float64(d[v]) <= threshold
		})
		if len(ids) == 0 {
			sp.End()
			break // cannot happen mathematically, but guard float edges
		}
		sp.Arg("frontier", len(ids))
		parallel.For(len(ids), parallel.DefaultGrain, func(i int) {
			dead[ids[i]] = round
		})
		frontier := ligra.FromSparse(n, ids)
		moved := ligra.EdgeMapCount(g, frontier,
			func(v graph.Vertex) bool { return dead[v] == 0 }, &scratch)
		var removedEdges int64
		parallel.For(moved.Size(), parallel.DefaultGrain, func(i int) {
			v, c := moved.At(i)
			d[v] -= c
			parallel.AddInt64(&removedEdges, int64(c))
		})
		internal := parallel.Sum(len(ids), 0, func(i int) int64 {
			var c int64
			g.OutNeighbors(ids[i], func(u graph.Vertex, w graph.Weight) bool {
				if dead[u] == round {
					c++
				}
				return true
			})
			return c
		})
		removedEdges += internal / 2
		alive -= int64(len(ids))
		liveEdges -= removedEdges
		if alive > 0 {
			density := float64(liveEdges) / float64(alive)
			if density > bestDensity {
				bestDensity = density
				bestAlive = alive
			}
		}
		dur := sp.End()
		if rec != nil {
			rec.RecordRound(obs.RoundMetrics{
				Algo: "densest", Round: rounds, Bucket: ^uint32(0),
				FrontierSize: len(ids), EdgesTraversed: removedEdges,
				Dense: false, Duration: dur,
			})
		}
	}
	// Reconstruct the best survivor set by round cut, as in Charikar.
	removedAt := make([]int64, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		removedAt[v] = int64(dead[v])
	})
	return Result{
		Vertices: survivorsOfSize(removedAt, bestAlive),
		Density:  bestDensity,
		Rounds:   rounds,
		Err:      runErr,
	}
}
