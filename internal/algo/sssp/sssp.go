// Package sssp solves single-source shortest paths on graphs with
// non-negative integral edge weights. It contains the paper's bucketed
// algorithms and every baseline its evaluation compares against:
//
//   - DeltaStepping: Algorithm 2 (§4.2) on the bucket structure; bucket
//     i holds the annulus of vertices at distance [i∆, (i+1)∆). With
//     ∆ = 1 this is wBFS, with work O(r_src + m) in expectation and
//     depth O(r_src log n) w.h.p. (Theorem 4.2).
//   - WBFS: DeltaStepping with ∆ = 1.
//   - DeltaSteppingLH: the light/heavy edge-split optimization of the
//     original Meyer–Sanders algorithm (§4.2 discusses it; the paper
//     implemented it and found no significant gain — the ablation
//     benchmark measures that claim).
//   - BellmanFord: the frontier-based algorithm Ligra and most
//     frameworks use for SSSP; work-inefficient on weighted graphs
//     (up to O(mn)) but simple and dense-traversal friendly.
//   - DeltaSteppingBins: a GAP-benchmark-style ∆-stepping that keeps
//     thread-local bins instead of a shared bucket structure.
//   - DijkstraHeap: the sequential binary-heap Dijkstra solver (the
//     DIMACS-style sequential baseline of Table 3).
//   - Dial: sequential Dial's algorithm (bucket queue), the sequential
//     analogue of wBFS.
//
// All implementations agree exactly on the distance vector; the tests
// enforce this pairwise on every graph family.
package sssp

import (
	"fmt"
	"math"
	"sync/atomic"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// Unreachable is the distance reported for vertices not connected to
// the source.
const Unreachable int64 = -1

// inf is the internal "not reached" distance. It leaves the top bit
// free for the visited flag (§4.2: "our actual implementation uses the
// highest bit of SP to represent Fl").
const inf uint64 = math.MaxUint64 >> 1

// flag marks a vertex whose distance changed in the current round; the
// vertex that sets it captures the pre-round distance for rebucketing.
const flag uint64 = 1 << 63

// Result carries distances plus the measurements the harness reports.
type Result struct {
	// The int64 counters come first so they stay 8-aligned under
	// 32-bit layout: the parallel relax loops update them with
	// sync/atomic, which requires 64-bit alignment.

	// Rounds is the number of frontier/bucket rounds executed.
	Rounds int64
	// Relaxations counts successful distance improvements.
	Relaxations int64
	// EdgesTraversed counts edge visits (frontier out-degrees summed).
	EdgesTraversed int64
	// Dist[v] is the shortest-path distance from the source to v, or
	// Unreachable.
	Dist []int64
	// BucketStats is the bucket-structure traffic (bucketed algorithms
	// only).
	BucketStats bucket.Stats
	// Err is nil on a completed run, or a *obs.Canceled (wrapping
	// obs.ErrCanceled) if the run was stopped by Options.Ctx or
	// Options.Deadline. Dist still covers every vertex, but distances
	// not yet settled when the run stopped may exceed the true
	// shortest-path distance (or be Unreachable).
	Err error
}

func checkInput(g graph.Graph, src graph.Vertex) {
	if !g.Weighted() {
		panic("sssp: graph must be weighted (use bfs for unweighted graphs)")
	}
	if int(src) >= g.NumVertices() {
		panic(fmt.Sprintf("sssp: source %d out of range for n=%d", src, g.NumVertices()))
	}
}

// finalize converts the internal distance array to the public form.
func finalize(sp []uint64) []int64 {
	out := make([]int64, len(sp))
	parallel.For(len(sp), parallel.DefaultGrain, func(i int) {
		d := sp[i] &^ flag
		if d >= inf {
			out[i] = Unreachable
		} else {
			out[i] = int64(d)
		}
	})
	return out
}

// load returns the current distance of v, ignoring the round flag.
func load(sp []uint64, v graph.Vertex) uint64 {
	return atomic.LoadUint64(&sp[v]) &^ flag
}

// relaxCapture attempts the relaxation s→d with edge weight w
// (Algorithm 2, Update): on improvement it writeMins the distance and
// sets the round flag; the caller that transitions the flag from clear
// to set captures the pre-round distance (returned with ok=true).
func relaxCapture(sp []uint64, relaxations *int64, s, d graph.Vertex, w graph.Weight) (uint64, bool) {
	nDist := load(sp, s) + uint64(w)
	for {
		old := atomic.LoadUint64(&sp[d])
		oDist := old &^ flag
		if nDist >= oDist {
			return 0, false
		}
		if atomic.CompareAndSwapUint64(&sp[d], old, flag|nDist) {
			atomic.AddInt64(relaxations, 1)
			if old&flag == 0 {
				return oDist, true // unique capturer this round
			}
			return 0, false
		}
	}
}
