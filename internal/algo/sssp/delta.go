package sssp

import (
	"context"
	"time"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// Options configures the bucketed SSSP algorithms.
type Options struct {
	// Buckets is passed through to the bucket structure.
	Buckets bucket.Options
	// Recorder, when non-nil, receives one span and one RoundMetrics
	// per ∆-stepping round plus the bucket structure's counters. Nil
	// disables telemetry with only nil-check overhead.
	Recorder *obs.Recorder
	// Ctx, when non-nil, is checked once per bucket round; if it is
	// done the run stops and Result.Err reports a *obs.Canceled with
	// partial progress. Nil keeps today's zero-overhead behavior.
	Ctx context.Context
	// Deadline, when non-zero, stops the run once it passes (checked
	// once per round, composing with Ctx — whichever trips first).
	Deadline time.Time
	// Fusion enables fused bucket extraction (bucket.Fused, DESIGN.md
	// §11): runs of consecutive small buckets drain into one frontier,
	// and vertices relaxed back into the fused span are processed in
	// the same round via the lazy buffer instead of round-tripping
	// through bucket storage. This is safe for the algorithms in this
	// package because their priorities are monotone — with non-negative
	// weights a relaxation never lands behind the bucket that produced
	// it — and it pays off on large-diameter inputs where per-round
	// synchronization dominates. The zero value disables fusion and
	// reproduces the classic loop exactly. kcore and setcover expose no
	// such knob on purpose: peeling moves identifiers in both
	// directions relative to the traversal, so fusing their rounds
	// would change the computed cores/covers.
	Fusion bucket.Fusion
}

// DeltaStepping implements Algorithm 2 of the paper: bucketed
// ∆-stepping where bucket i is the annulus of tentative distances
// [i∆, (i+1)∆). Unreached vertices are outside the structure (their D
// is Nil) and enter it on first relaxation, so the work is proportional
// to edges relaxed, not to n per round.
func DeltaStepping(g graph.Graph, src graph.Vertex, delta int64, opt Options) Result {
	checkInput(g, src)
	if delta <= 0 {
		panic("sssp: delta must be positive")
	}
	n := g.NumVertices()
	sp := make([]uint64, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { sp[i] = inf })
	sp[src] = 0

	udelta := uint64(delta)
	bktOf := func(dist uint64) bucket.ID {
		if dist >= inf {
			return bucket.Nil
		}
		b := dist / udelta
		if b >= uint64(bucket.Nil) {
			panic("sssp: distance/delta exceeds the bucket id space; increase delta")
		}
		return bucket.ID(b)
	}
	// GetBucketNum of Algorithm 2 (line 3).
	d := func(i uint32) bucket.ID { return bktOf(sp[i] &^ flag) }
	rec := opt.Recorder
	bopt := opt.Buckets
	if bopt.Recorder == nil {
		bopt.Recorder = rec
	}
	b := bucket.New(n, d, bucket.Increasing, bopt)

	res := Result{}
	always := func(graph.Vertex) bool { return true }
	fus := opt.Fusion
	var prevStats bucket.Stats
	var prevRelax int64
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
loop:
	for {
		if cause := cancel.Stopped(); cause != nil {
			res.Err = rec.NewCanceled("sssp", res.Rounds, cause)
			break
		}
		// ids aliases the bucket structure's arena: valid only until the
		// next NextBucket/NextBucketFused/DrainLazy/UpdateBuckets call,
		// and fully consumed this wave. With fusion enabled the frontier
		// covers the fused bucket range [id, last]; without it, last ==
		// id and the inner loop below runs exactly once.
		var id, last bucket.ID
		var ids []uint32
		if fus.Enabled() {
			id, last, ids = b.NextBucketFused(fus.MaxFrontier, fus.MaxSpan)
		} else {
			id, ids = b.NextBucket()
			last = id
		}
		if id == bucket.Nil {
			break
		}
		for len(ids) > 0 {
			sp2 := rec.StartSpan("sssp.round").Arg("bucket", id).Arg("frontier", len(ids))
			res.Rounds++
			frontier := ligra.FromSparse(n, ids)
			roundEdges := parallel.Sum(len(ids), 0, func(i int) int64 {
				return int64(g.OutDegree(ids[i]))
			})
			res.EdgesTraversed += roundEdges
			// Relax the out-edges of the frontier (Algorithm 2, line 18).
			// The tagged output carries each improved vertex's distance
			// at the start of the round, captured by the winning relaxer.
			moved := ligra.EdgeMapTagged(g, frontier, always,
				func(s, dst graph.Vertex, w graph.Weight) (uint64, bool) {
					return relaxCapture(sp, &res.Relaxations, s, dst, w)
				})
			// Reset (lines 11–13): clear the round flag and compute each
			// vertex's bucket move from its start-of-round bucket to its
			// new bucket.
			rebucket := ligra.TagMapTagged(moved, func(v graph.Vertex, oldDist uint64) (bucket.Dest, bool) {
				newDist := sp[v] &^ flag
				sp[v] = newDist
				prevB, newB := bktOf(oldDist), bktOf(newDist)
				var dest bucket.Dest
				if newB == prevB && newB >= id && newB <= last {
					// v sat in the current bucket range and was improved
					// to a distance still inside it. The extraction
					// consumed its physical copy, so "no logical move"
					// must still reinsert it (the light-edge iteration
					// of ∆-stepping); prev = Nil states the physical
					// truth. Under fusion the structure routes this to
					// the lazy buffer for the next wave.
					dest = b.GetBucket(bucket.Nil, newB)
				} else {
					dest = b.GetBucket(prevB, newB)
				}
				return dest, dest != bucket.None
			})
			b.UpdateBuckets(rebucket.Size(), func(j int) (uint32, bucket.Dest) {
				return rebucket.IDs[j], rebucket.Vals[j]
			})
			dur := sp2.Arg("relaxations", res.Relaxations-prevRelax).End()
			if rec != nil {
				cur := b.Stats()
				sd := cur.Sub(prevStats)
				prevStats = cur
				prevRelax = res.Relaxations
				rec.RecordRound(obs.RoundMetrics{
					Algo: "sssp", Round: res.Rounds, Bucket: id,
					FrontierSize: len(ids), EdgesTraversed: roundEdges,
					Dense:     false, // EdgeMapTagged is push-only
					Extracted: sd.Extracted, Moved: sd.Moved,
					Skipped: sd.Skipped, Duration: dur,
				})
			}
			if !fus.Enabled() {
				break
			}
			// Same-round processing of the fused span: everything
			// relaxed into [id, last] this wave comes back immediately
			// instead of waiting for another synchronization round.
			ids = b.DrainLazy()
			if len(ids) > 0 {
				if cause := cancel.Stopped(); cause != nil {
					res.Err = rec.NewCanceled("sssp", res.Rounds, cause)
					break loop
				}
			}
		}
	}
	res.BucketStats = b.Stats()
	res.Dist = finalize(sp)
	return res
}

// WBFS is weighted breadth-first search: ∆-stepping with ∆ = 1
// (Theorem 4.2: O(r_src + m) expected work, O(r_src log n) depth).
func WBFS(g graph.Graph, src graph.Vertex, opt Options) Result {
	return DeltaStepping(g, src, 1, opt)
}
