package sssp

import (
	"testing"

	"julienne/internal/graph"
)

// hugeWeightPath builds a directed path 0→1→2→3 whose edges all carry
// the maximum representable weight, so shortest-path distances overflow
// 32 bits (3·(2³¹−1) ≈ 6.4e9).
func hugeWeightPath(t *testing.T) *graph.CSR {
	t.Helper()
	w := graph.Weight(1<<31 - 1)
	edges := []graph.Edge{{U: 0, V: 1, W: w}, {U: 1, V: 2, W: w}, {U: 2, V: 3, W: w}}
	opt := graph.DefaultBuild
	opt.Weighted = true
	return graph.FromEdges(4, edges, opt)
}

// DeltaSteppingLH used to compute bucket ids as bucket.ID(dist/delta)
// with no range check, so distances at or above 2³²·∆ silently wrapped
// modulo 2³² and corrupted the traversal order. DeltaStepping always
// guarded this case with a panic; the light/heavy variant must behave
// identically.
func TestDeltaSteppingLHBucketOverflowGuard(t *testing.T) {
	g := hugeWeightPath(t)
	defer func() {
		if recover() == nil {
			t.Fatalf("DeltaSteppingLH(delta=1) on >32-bit distances: want panic, got none")
		}
	}()
	DeltaSteppingLH(g, 0, 1, Options{})
}

// With a delta large enough to keep bucket ids in range, the same graph
// must produce exact distances. The delta = 2³² leg pins a second
// discrepancy: splitLightHeavy used to cap the light threshold at 2³⁰,
// misclassifying edges with 2³⁰ < w ≤ ∆ as heavy; a heavy relaxation
// landing inside the current annulus was then treated as settled
// without ever exploring its edges, reporting reachable vertices as
// unreachable.
func TestDeltaSteppingLHHugeWeights(t *testing.T) {
	g := hugeWeightPath(t)
	w := int64(1<<31 - 1)
	want := []int64{0, w, 2 * w, 3 * w}
	for _, delta := range []int64{w, 1 << 32} {
		res := DeltaSteppingLH(g, 0, delta, Options{})
		checkDists(t, "DeltaSteppingLH", res.Dist, want)
	}
	res := DijkstraHeap(g, 0)
	checkDists(t, "DijkstraHeap", res.Dist, want)
}
