package sssp

import (
	"math"
	"sync/atomic"

	"julienne/internal/bucket"
	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// DeltaSteppingLH is ∆-stepping with the Meyer–Sanders light/heavy edge
// split that §4.2 describes: the graph is split into light edges
// (weight ≤ ∆) and heavy edges (weight > ∆); inside an annulus only
// light edges are relaxed (repeatedly, until the annulus settles), and
// heavy edges of the settled vertices are relaxed exactly once when the
// algorithm leaves the annulus. The paper implemented this optimization
// and "did not find a significant improvement" — the ablation benchmark
// checks that observation.
//
// Because a heavy relaxation may target any bucket after the current
// one (including buckets the traversal would otherwise skip past), the
// annulus is iterated manually here: the bucket structure supplies the
// annulus fronts, and intra-annulus light rounds run outside it.
func DeltaSteppingLH(g graph.Graph, src graph.Vertex, delta int64, opt Options) Result {
	checkInput(g, src)
	if delta <= 0 {
		panic("sssp: delta must be positive")
	}
	// Every edge with w ≤ ∆ must be classified light: the rebucketing
	// below treats any vertex landing in the current annulus as settled,
	// which is only sound because a genuinely heavy relaxation (w > ∆)
	// always lands beyond the annulus. Weights are int32, so capping the
	// threshold at MaxInt32 keeps the conversion in range while still
	// classifying every edge as light once ∆ exceeds the weight range.
	limit := delta
	if limit > math.MaxInt32 {
		limit = math.MaxInt32
	}
	light, heavy := splitLightHeavy(g, graph.Weight(limit))

	n := g.NumVertices()
	udelta := uint64(delta)
	sp := make([]uint64, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { sp[i] = inf })
	sp[src] = 0
	bktOf := func(dist uint64) bucket.ID {
		if dist >= inf {
			return bucket.Nil
		}
		b := dist / udelta
		if b >= uint64(bucket.Nil) {
			panic("sssp: distance/delta exceeds the bucket id space; increase delta")
		}
		return bucket.ID(b)
	}
	d := func(i uint32) bucket.ID { return bktOf(sp[i] &^ flag) }
	rec := opt.Recorder
	bopt := opt.Buckets
	if bopt.Recorder == nil {
		bopt.Recorder = rec
	}
	b := bucket.New(n, d, bucket.Increasing, bopt)

	res := Result{}
	always := func(graph.Vertex) bool { return true }
	// roundMark/annulusMark deduplicate activations; a vertex joins the
	// active set at most once per light round, and the settled set at
	// most once per annulus.
	roundMark := make([]uint64, n)
	annulusMark := make([]uint64, n)
	var round, annulus uint64

	type capture struct {
		oldDist  uint64
		captured bool
		active   bool
	}

	fus := opt.Fusion
	var prevStats bucket.Stats
	var prevRelax int64
	cancel := obs.NewCancelCheck(opt.Ctx, opt.Deadline)
loop:
	for {
		if cause := cancel.Stopped(); cause != nil {
			res.Err = rec.NewCanceled("sssp", res.Rounds, cause)
			break
		}
		// With fusion enabled the extraction covers the fused bucket
		// range [id, last] and the annulus widens to match; without it,
		// last == id and the segment loop below runs exactly once.
		var id, last bucket.ID
		var ids []uint32
		if fus.Enabled() {
			id, last, ids = b.NextBucketFused(fus.MaxFrontier, fus.MaxSpan)
		} else {
			id, ids = b.NextBucket()
			last = id
		}
		if id == bucket.Nil {
			break
		}
		annulusEnd := (uint64(last) + 1) * udelta
		// Each drained frontier is one segment of the (possibly fused)
		// annulus, with its own mark epoch. Without fusion there is
		// exactly one segment. With fusion a heavy relaxation may land
		// inside the fused span without being activated by the light
		// rounds (a heavy edge jumps more than one ∆-annulus but not
		// necessarily past the whole span); such vertices round-trip
		// through the lazy buffer and come back as the next segment.
		for len(ids) > 0 {
			annulus++
			var capturedIDs []graph.Vertex
			var capturedOld []uint64

			// ids aliases the bucket arena (valid only until the next
			// structure call), but settled is appended to during the
			// light rounds and read by the heavy phase — so copy it out.
			settled := append([]graph.Vertex(nil), ids...)
			parallel.For(len(ids), parallel.DefaultGrain, func(i int) {
				annulusMark[ids[i]] = annulus
			})

			active := ids
			for len(active) > 0 {
				sp2 := rec.StartSpan("sssp.round").Arg("bucket", id).Arg("frontier", len(active))
				res.Rounds++
				round++
				roundEdges := parallel.Sum(len(active), 0, func(i int) int64 {
					return int64(light.OutDegree(active[i]))
				})
				res.EdgesTraversed += roundEdges
				moved := ligra.EdgeMapTagged(light, ligra.FromSparse(n, active), always,
					func(s, dst graph.Vertex, w graph.Weight) (capture, bool) {
						nDist := load(sp, s) + uint64(w)
						for {
							old := atomic.LoadUint64(&sp[dst])
							oDist := old &^ flag
							if nDist >= oDist {
								return capture{}, false
							}
							if atomic.CompareAndSwapUint64(&sp[dst], old, flag|nDist) {
								atomic.AddInt64(&res.Relaxations, 1)
								c := capture{oldDist: oDist, captured: old&flag == 0}
								if nDist < annulusEnd {
									// Joins this annulus' next light round;
									// the mark CAS ensures one activation
									// per vertex per round.
									for {
										rm := atomic.LoadUint64(&roundMark[dst])
										if rm == round {
											break
										}
										if atomic.CompareAndSwapUint64(&roundMark[dst], rm, round) {
											c.active = true
											break
										}
									}
								}
								if c.captured || c.active {
									return c, true
								}
								return capture{}, false
							}
						}
					})
				var nextActive []graph.Vertex
				for i := 0; i < moved.Size(); i++ {
					v, c := moved.At(i)
					if c.captured {
						capturedIDs = append(capturedIDs, v)
						capturedOld = append(capturedOld, c.oldDist)
					}
					if c.active {
						nextActive = append(nextActive, v)
						if annulusMark[v] != annulus {
							annulusMark[v] = annulus
							settled = append(settled, v)
						}
					}
				}
				dur := sp2.Arg("relaxations", res.Relaxations-prevRelax).End()
				if rec != nil {
					// Bucket traffic moves at annulus granularity (extraction
					// at NextBucket, rebucketing at UpdateBuckets), so the
					// annulus' extraction delta lands on its first light
					// round and its rebucket delta on the next annulus'.
					cur := b.Stats()
					sd := cur.Sub(prevStats)
					prevStats = cur
					prevRelax = res.Relaxations
					rec.RecordRound(obs.RoundMetrics{
						Algo: "sssp", Round: res.Rounds, Bucket: id,
						FrontierSize: len(active), EdgesTraversed: roundEdges,
						Extracted: sd.Extracted, Moved: sd.Moved,
						Skipped: sd.Skipped, Duration: dur,
					})
				}
				active = nextActive
			}

			// Heavy edges of every vertex settled in this annulus, once.
			res.EdgesTraversed += parallel.Sum(len(settled), 0, func(i int) int64 {
				return int64(heavy.OutDegree(settled[i]))
			})
			movedH := ligra.EdgeMapTagged(heavy, ligra.FromSparse(n, settled), always,
				func(s, dst graph.Vertex, w graph.Weight) (uint64, bool) {
					return relaxCapture(sp, &res.Relaxations, s, dst, w)
				})
			for i := 0; i < movedH.Size(); i++ {
				v, old := movedH.At(i)
				capturedIDs = append(capturedIDs, v)
				capturedOld = append(capturedOld, old)
			}

			// Rebucket every captured vertex. Vertices this segment settled
			// (in-span and marked with the segment's epoch) must not be
			// reinserted; in-span vertices the light rounds never activated
			// (heavy relaxations landing inside the fused span) go through
			// GetBucket, which routes them to the lazy buffer for the next
			// segment. All captured vertices get their flags cleared.
			dests := make([]bucket.Dest, len(capturedIDs))
			parallel.For(len(capturedIDs), parallel.DefaultGrain, func(i int) {
				v := capturedIDs[i]
				newDist := sp[v] &^ flag
				sp[v] = newDist
				newB := bktOf(newDist)
				if newB >= id && newB <= last && annulusMark[v] == annulus {
					dests[i] = bucket.None
					return
				}
				dests[i] = b.GetBucket(bktOf(capturedOld[i]), newB)
			})
			b.UpdateBuckets(len(capturedIDs), func(j int) (uint32, bucket.Dest) {
				return capturedIDs[j], dests[j]
			})
			if !fus.Enabled() {
				break
			}
			ids = b.DrainLazy()
			if len(ids) > 0 {
				if cause := cancel.Stopped(); cause != nil {
					res.Err = rec.NewCanceled("sssp", res.Rounds, cause)
					break loop
				}
			}
		}
	}
	res.BucketStats = b.Stats()
	res.Dist = finalize(sp)
	return res
}

// splitLightHeavy partitions g's edges into a light graph (w ≤ limit)
// and a heavy graph (w > limit), both over the same vertex set.
func splitLightHeavy(g graph.Graph, limit graph.Weight) (light, heavy *graph.CSR) {
	n := g.NumVertices()
	var le, he []graph.Edge
	for v := 0; v < n; v++ {
		g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			e := graph.Edge{U: graph.Vertex(v), V: u, W: w}
			if w <= limit {
				le = append(le, e)
			} else {
				he = append(he, e)
			}
			return true
		})
	}
	// The inputs are already simple; skip dedup to preserve weights and
	// order exactly.
	opt := graph.BuildOptions{Weighted: true, DropSelfLoops: false, Dedup: false}
	return graph.FromEdges(n, le, opt), graph.FromEdges(n, he, opt)
}
