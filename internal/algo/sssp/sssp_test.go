package sssp

import (
	"testing"

	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
)

func checkDists(t *testing.T, name string, got, want []int64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d want %d", name, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("%s: dist[%d]=%d want %d", name, v, got[v], want[v])
		}
	}
}

func testGraphs() map[string]graph.Graph {
	return map[string]graph.Graph{
		"grid-log":     gen.LogWeights(gen.Grid2D(25, 30), 1),
		"grid-heavy":   gen.HeavyWeights(gen.Grid2D(20, 20), 2),
		"rmat-log":     gen.LogWeights(gen.RMAT(1<<10, 10000, true, 3), 3),
		"rmat-heavy":   gen.HeavyWeights(gen.RMAT(1<<10, 10000, true, 4), 4),
		"er-directed":  gen.UniformWeights(gen.ErdosRenyi(500, 3000, false, 5), 1, 50, 5),
		"path-heavy":   gen.HeavyWeights(gen.Path(200), 6),
		"star":         gen.UniformWeights(gen.Star(100), 1, 9, 7),
		"disconnected": gen.UniformWeights(gen.ErdosRenyi(400, 300, true, 8), 1, 20, 8),
	}
}

func TestAllImplementationsMatchDijkstra(t *testing.T) {
	for name, g := range testGraphs() {
		src := graph.Vertex(0)
		want := DijkstraHeap(g, src).Dist
		checkDists(t, name+"/dial", Dial(g, src).Dist, want)
		checkDists(t, name+"/bellman-ford", BellmanFord(g, src).Dist, want)
		checkDists(t, name+"/wbfs", WBFS(g, src, Options{}).Dist, want)
		for _, delta := range []int64{1, 2, 16, 1024, 100000} {
			checkDists(t, name+"/delta", DeltaStepping(g, src, delta, Options{}).Dist, want)
			checkDists(t, name+"/delta-lh", DeltaSteppingLH(g, src, delta, Options{}).Dist, want)
			checkDists(t, name+"/delta-bins", DeltaSteppingBins(g, src, delta).Dist, want)
		}
	}
}

func TestBucketConfigurations(t *testing.T) {
	g := gen.HeavyWeights(gen.RMAT(1<<10, 8000, true, 9), 9)
	want := DijkstraHeap(g, 0).Dist
	for _, opt := range []Options{
		{Buckets: bucket.Options{OpenBuckets: 1}},
		{Buckets: bucket.Options{OpenBuckets: 4}},
		{Buckets: bucket.Options{Semisort: true}},
		{Buckets: bucket.Options{OpenBuckets: 4096}},
	} {
		checkDists(t, "delta-cfg", DeltaStepping(g, 0, 5000, opt).Dist, want)
		checkDists(t, "wbfs-cfg", WBFS(g, 0, opt).Dist, want)
	}
}

func TestNonZeroSource(t *testing.T) {
	g := gen.LogWeights(gen.Grid2D(15, 15), 11)
	src := graph.Vertex(117)
	want := DijkstraHeap(g, src).Dist
	checkDists(t, "wbfs", WBFS(g, src, Options{}).Dist, want)
	checkDists(t, "delta", DeltaStepping(g, src, 7, Options{}).Dist, want)
	checkDists(t, "bins", DeltaSteppingBins(g, src, 7).Dist, want)
	checkDists(t, "lh", DeltaSteppingLH(g, src, 7, Options{}).Dist, want)
	checkDists(t, "bf", BellmanFord(g, src).Dist, want)
}

func TestUnreachableVertices(t *testing.T) {
	// Two components: 0-1-2 and 3-4.
	g := gen.UniformWeights(graph.FromEdges(5,
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 3, V: 4}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true}), 1, 5, 1)
	res := WBFS(g, 0, Options{})
	if res.Dist[3] != Unreachable || res.Dist[4] != Unreachable {
		t.Fatalf("unreachable not flagged: %v", res.Dist)
	}
	if res.Dist[0] != 0 {
		t.Fatalf("dist[src]=%d", res.Dist[0])
	}
	if res.Dist[1] == Unreachable || res.Dist[2] == Unreachable {
		t.Fatalf("reachable flagged unreachable: %v", res.Dist)
	}
}

func TestSingleVertex(t *testing.T) {
	g := gen.UniformWeights(graph.FromEdges(1, nil, graph.BuildOptions{Symmetrize: true}), 1, 2, 1)
	res := DeltaStepping(g, 0, 10, Options{})
	if len(res.Dist) != 1 || res.Dist[0] != 0 {
		t.Fatalf("single vertex: %v", res.Dist)
	}
}

func TestDeltaEquivalences(t *testing.T) {
	// ∆ = 1 must equal WBFS; huge ∆ behaves like Bellman-Ford (one
	// annulus) — all must agree anyway.
	g := gen.LogWeights(gen.RMAT(1<<9, 4000, true, 21), 21)
	want := DijkstraHeap(g, 0).Dist
	checkDists(t, "wbfs-eq", WBFS(g, 0, Options{}).Dist, want)
	checkDists(t, "delta-inf", DeltaStepping(g, 0, 1<<40, Options{}).Dist, want)
}

func TestZeroWeightEdges(t *testing.T) {
	// Zero-weight edges keep targets in the same bucket; the
	// reinsertion path must still converge.
	g := gen.UniformWeights(gen.Grid2D(10, 10), 0, 4, 31)
	want := DijkstraHeap(g, 0).Dist
	checkDists(t, "zero-w", DeltaStepping(g, 0, 3, Options{}).Dist, want)
	checkDists(t, "zero-w-wbfs", WBFS(g, 0, Options{}).Dist, want)
	checkDists(t, "zero-w-bf", BellmanFord(g, 0).Dist, want)
}

func TestPanics(t *testing.T) {
	unweighted := gen.Grid2D(3, 3)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("unweighted", func() { WBFS(unweighted, 0, Options{}) })
	w := gen.LogWeights(unweighted, 1)
	mustPanic("bad delta", func() { DeltaStepping(w, 0, 0, Options{}) })
	mustPanic("bad source", func() { WBFS(w, 99, Options{}) })
}

func TestWorkBoundsWBFS(t *testing.T) {
	// Theorem 4.2: wBFS does O(r_src + m) work. Bucket moves are at
	// most one per edge relaxation and relaxations are at most m on
	// integer weights (each edge's target distance decreases at most...
	// in practice; we assert the generous 2m bound the analysis gives).
	g := gen.LogWeights(gen.RMAT(1<<11, 20000, true, 41), 41)
	res := WBFS(g, 0, Options{})
	m := g.NumEdges()
	if res.BucketStats.Moved > 2*m {
		t.Fatalf("wBFS bucket moves %d exceed 2m=%d", res.BucketStats.Moved, 2*m)
	}
	// Every round processes a strictly increasing bucket for ∆=1, so
	// rounds <= eccentricity + 1 <= max finite distance + 1.
	var maxDist int64
	for _, d := range res.Dist {
		if d != Unreachable && d > maxDist {
			maxDist = d
		}
	}
	if res.Rounds > maxDist+1 {
		t.Fatalf("wBFS rounds %d exceed r_src+1=%d", res.Rounds, maxDist+1)
	}
}

func TestStatsPopulated(t *testing.T) {
	g := gen.LogWeights(gen.Grid2D(12, 12), 51)
	res := DeltaStepping(g, 0, 4, Options{})
	if res.Rounds == 0 || res.Relaxations == 0 || res.EdgesTraversed == 0 {
		t.Fatalf("stats empty: %+v", res)
	}
	if res.BucketStats.Extracted == 0 {
		t.Fatal("bucket stats empty")
	}
	seq := DijkstraHeap(g, 0)
	if seq.EdgesTraversed == 0 || seq.Relaxations == 0 {
		t.Fatal("dijkstra stats empty")
	}
}

func TestDeterministicDistances(t *testing.T) {
	g := gen.HeavyWeights(gen.ChungLu(1000, 8000, 2.5, true, 61), 61)
	a := DeltaStepping(g, 0, 32768, Options{})
	b := DeltaStepping(g, 0, 32768, Options{})
	checkDists(t, "determinism", a.Dist, b.Dist)
}
