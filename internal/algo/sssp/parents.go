package sssp

import (
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// ParentsFromDistances derives a shortest-path tree from a distance
// vector (as returned by any solver in this package): parent[v] is an
// in-neighbor u with Dist[u] + w(u, v) == Dist[v], NilVertex for the
// source and unreachable vertices. One O(m) parallel pass; among valid
// parents the smallest vertex id is chosen, so the tree is
// deterministic regardless of which solver produced the distances.
//
// Deriving parents after the fact keeps the relaxation inner loops
// free of a second word of atomic state; it also means one distance
// vector can serve multiple tree extractions.
func ParentsFromDistances(g graph.Graph, dist []int64) []graph.Vertex {
	n := g.NumVertices()
	if len(dist) != n {
		panic("sssp: distance vector does not match the graph")
	}
	parent := make([]graph.Vertex, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { parent[i] = graph.NilVertex })
	// Scan out-edges: u settles parent[v] when the edge is tight.
	// WriteMin keeps the smallest valid parent id.
	parentWord := make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { parentWord[i] = ^uint32(0) })
	parallel.For(n, 64, func(ui int) {
		u := graph.Vertex(ui)
		du := dist[u]
		if du == Unreachable {
			return
		}
		g.OutNeighbors(u, func(v graph.Vertex, w graph.Weight) bool {
			if dv := dist[v]; dv != Unreachable && dv == du+int64(w) && dv != 0 {
				parallel.WriteMinUint32(&parentWord[v], uint32(u))
			}
			return true
		})
	})
	parallel.For(n, parallel.DefaultGrain, func(i int) {
		if parentWord[i] != ^uint32(0) {
			parent[i] = graph.Vertex(parentWord[i])
		}
	})
	return parent
}

// PathTo reconstructs the shortest path from the tree's source to v as
// a vertex sequence (inclusive), or nil if v is unreachable. O(path
// length).
func PathTo(parent []graph.Vertex, dist []int64, v graph.Vertex) []graph.Vertex {
	if dist[v] == Unreachable {
		return nil
	}
	var rev []graph.Vertex
	for {
		rev = append(rev, v)
		if dist[v] == 0 {
			break
		}
		p := parent[v]
		if p == graph.NilVertex || len(rev) > len(parent) {
			return nil // corrupt tree; fail closed
		}
		v = p
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
