package sssp

import (
	"sync/atomic"

	"julienne/internal/graph"
	"julienne/internal/ligra"
	"julienne/internal/parallel"
)

// BellmanFord is the frontier-based SSSP algorithm found in Ligra and
// most graph frameworks: every round relaxes all out-edges of the
// vertices whose distance changed in the previous round. It converges
// in at most h rounds where h is the maximum hop count of a shortest
// path, doing up to O(m) work per round — simple, dense-friendly, and
// work-inefficient on weighted graphs, which is exactly the baseline
// role it plays in Table 3 and Figures 3–4.
func BellmanFord(g graph.Graph, src graph.Vertex) Result {
	checkInput(g, src)
	n := g.NumVertices()
	sp := make([]uint64, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { sp[i] = inf })
	sp[src] = 0

	res := Result{}
	frontier := ligra.Single(n, src)
	always := func(graph.Vertex) bool { return true }
	for !frontier.IsEmpty() {
		res.Rounds++
		res.EdgesTraversed += frontierDegreeSum(g, frontier)
		// The round flag performs Ligra's duplicate removal: the first
		// successful relaxer of v this round adds v to the output.
		frontier = ligra.EdgeMap(g, frontier, always,
			func(s, d graph.Vertex, w graph.Weight) bool {
				_, captured := relaxCapture(sp, &res.Relaxations, s, d, w)
				return captured
			}, ligra.EdgeMapOptions{})
		// Clear round flags for the next iteration.
		frontier.ForEach(func(v graph.Vertex) {
			atomic.StoreUint64(&sp[v], sp[v]&^flag)
		})
	}
	res.Dist = finalize(sp)
	return res
}

func frontierDegreeSum(g graph.Graph, f ligra.VertexSubset) int64 {
	var sum int64
	f.ForEach(func(v graph.Vertex) {
		atomic.AddInt64(&sum, int64(g.OutDegree(v)))
	})
	return sum
}
