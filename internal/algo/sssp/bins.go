package sssp

import (
	"sync"
	"sync/atomic"

	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// DeltaSteppingBins is a GAP-benchmark-suite-style ∆-stepping: instead
// of a shared bucket structure it gives every worker thread-local bins
// and merges the lowest non-empty bin into a shared frontier after each
// relaxation round (§5: "Instead of having shared buckets, it uses
// thread-local bins to represent buckets"). Duplicate bin entries are
// filtered lazily by re-checking the tentative distance at pop time,
// exactly as GAP does.
//
// GAP stores bins in dense per-thread vectors; here they are sparse
// maps so that pathological ∆/weight combinations (e.g. ∆ = 1 with
// weights up to 10^5, giving ~10^7 mostly-empty bins) cost memory
// proportional to the non-empty bins only.
func DeltaSteppingBins(g graph.Graph, src graph.Vertex, delta int64) Result {
	checkInput(g, src)
	if delta <= 0 {
		panic("sssp: delta must be positive")
	}
	n := g.NumVertices()
	udelta := uint64(delta)
	dist := make([]uint64, n)
	parallel.For(n, parallel.DefaultGrain, func(i int) { dist[i] = inf })
	dist[src] = 0

	p := parallel.Procs()
	localBins := make([]map[uint64][]graph.Vertex, p)
	for w := range localBins {
		localBins[w] = make(map[uint64][]graph.Vertex)
	}
	res := Result{}

	frontier := []graph.Vertex{src}
	curBin := uint64(0)
	const noBin = uint64(1<<63 - 1)
	for {
		res.Rounds++
		// Relax the current frontier; each worker scatters improved
		// vertices into its own bins.
		var wg sync.WaitGroup
		chunk := (len(frontier) + p - 1) / p
		if chunk == 0 {
			chunk = 1
		}
		for w := 0; w < p; w++ {
			lo := w * chunk
			if lo >= len(frontier) {
				break
			}
			hi := min(lo+chunk, len(frontier))
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bins := localBins[w]
				for _, v := range frontier[lo:hi] {
					dv := atomic.LoadUint64(&dist[v])
					if dv/udelta != curBin {
						continue // stale copy
					}
					atomic.AddInt64(&res.EdgesTraversed, int64(g.OutDegree(v)))
					g.OutNeighbors(v, func(u graph.Vertex, wt graph.Weight) bool {
						nd := dv + uint64(wt)
						if parallel.WriteMinUint64(&dist[u], nd) {
							atomic.AddInt64(&res.Relaxations, 1)
							b := nd / udelta
							bins[b] = append(bins[b], u)
						}
						return true
					})
				}
			}(w, lo, hi)
		}
		wg.Wait()

		// Find the lowest non-empty bin across workers (it may equal
		// curBin: intra-annulus light-edge reinsertion). Bins behind
		// the traversal hold only stale copies and are discarded.
		next := noBin
		for w := 0; w < p; w++ {
			for b := range localBins[w] {
				if b < curBin {
					delete(localBins[w], b)
					continue
				}
				if b < next {
					next = b
				}
			}
		}
		if next == noBin {
			break
		}
		frontier = frontier[:0]
		for w := 0; w < p; w++ {
			if batch, ok := localBins[w][next]; ok {
				frontier = append(frontier, batch...)
				delete(localBins[w], next)
			}
		}
		curBin = next
	}
	res.Dist = finalize(dist)
	return res
}
