package sssp

import (
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
)

func validateTree(t *testing.T, g graph.Graph, src graph.Vertex, dist []int64, parent []graph.Vertex) {
	t.Helper()
	if parent[src] != graph.NilVertex {
		t.Fatalf("source has parent %d", parent[src])
	}
	for v := range parent {
		vv := graph.Vertex(v)
		switch {
		case dist[v] == Unreachable:
			if parent[v] != graph.NilVertex {
				t.Fatalf("unreachable %d has parent", v)
			}
		case dist[v] == 0:
			// the source (positive weights)
		default:
			p := parent[v]
			if p == graph.NilVertex {
				t.Fatalf("reachable %d has no parent", v)
			}
			// The tree edge must exist and be tight.
			found := false
			g.OutNeighbors(p, func(u graph.Vertex, w graph.Weight) bool {
				if u == vv && dist[p]+int64(w) == dist[v] {
					found = true
					return false
				}
				return true
			})
			if !found {
				t.Fatalf("tree edge (%d,%d) not tight or missing", p, v)
			}
		}
	}
}

func TestParentsFromDistances(t *testing.T) {
	graphs := map[string]graph.Graph{
		"grid": gen.LogWeights(gen.Grid2D(20, 20), 1),
		"rmat": gen.HeavyWeights(gen.RMAT(1<<10, 10000, true, 2), 2),
		"disc": gen.UniformWeights(gen.ErdosRenyi(300, 200, true, 3), 1, 9, 3),
	}
	for name, g := range graphs {
		for _, solver := range []func() Result{
			func() Result { return WBFS(g, 0, Options{}) },
			func() Result { return DijkstraHeap(g, 0) },
		} {
			res := solver()
			parent := ParentsFromDistances(g, res.Dist)
			validateTree(t, g, 0, res.Dist, parent)
			_ = name
		}
	}
}

func TestParentsDeterministic(t *testing.T) {
	g := gen.HeavyWeights(gen.RMAT(1<<9, 5000, true, 7), 7)
	d1 := DeltaStepping(g, 0, 32768, Options{}).Dist
	d2 := DijkstraHeap(g, 0).Dist
	p1 := ParentsFromDistances(g, d1)
	p2 := ParentsFromDistances(g, d2)
	for v := range p1 {
		if p1[v] != p2[v] {
			t.Fatalf("parents differ at %d despite identical distances", v)
		}
	}
}

func TestPathTo(t *testing.T) {
	// Path graph with known weights: 0 -2- 1 -3- 2 -1- 3.
	g := graph.FromEdges(4, []graph.Edge{
		{U: 0, V: 1, W: 2}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 1},
	}, graph.BuildOptions{Weighted: true, Symmetrize: true, DropSelfLoops: true, Dedup: true})
	res := DijkstraHeap(g, 0)
	parent := ParentsFromDistances(g, res.Dist)
	path := PathTo(parent, res.Dist, 3)
	want := []graph.Vertex{0, 1, 2, 3}
	if len(path) != len(want) {
		t.Fatalf("path %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v want %v", path, want)
		}
	}
	if PathTo(parent, res.Dist, 0)[0] != 0 {
		t.Fatal("source path")
	}
}

func TestPathToUnreachable(t *testing.T) {
	g := gen.UniformWeights(graph.FromEdges(3, []graph.Edge{{U: 0, V: 1}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true}), 1, 5, 1)
	res := WBFS(g, 0, Options{})
	parent := ParentsFromDistances(g, res.Dist)
	if PathTo(parent, res.Dist, 2) != nil {
		t.Fatal("unreachable vertex produced a path")
	}
}

func TestParentsPanicsOnMismatch(t *testing.T) {
	g := gen.LogWeights(gen.Grid2D(3, 3), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ParentsFromDistances(g, []int64{0})
}
