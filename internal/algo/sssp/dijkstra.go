package sssp

import (
	"container/heap"

	"julienne/internal/graph"
)

// DijkstraHeap is the classic sequential Dijkstra algorithm with a
// binary heap, playing the role of the DIMACS challenge sequential
// solver in Table 3: the "well-tuned sequential baseline" parallel
// speedups are measured against.
func DijkstraHeap(g graph.Graph, src graph.Vertex) Result {
	checkInput(g, src)
	n := g.NumVertices()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	res := Result{}
	pq := &distHeap{{v: src, d: 0}}
	for pq.Len() > 0 {
		item := heap.Pop(pq).(distItem)
		if item.d > dist[item.v] {
			continue // stale entry
		}
		g.OutNeighbors(item.v, func(u graph.Vertex, w graph.Weight) bool {
			res.EdgesTraversed++
			nd := item.d + uint64(w)
			if nd < dist[u] {
				dist[u] = nd
				res.Relaxations++
				heap.Push(pq, distItem{v: u, d: nd})
			}
			return true
		})
	}
	res.Dist = finalize(dist)
	return res
}

type distItem struct {
	v graph.Vertex
	d uint64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	item := old[n-1]
	*h = old[:n-1]
	return item
}

// Dial is sequential Dial's algorithm [18]: a bucket queue indexed by
// tentative distance, the algorithm wBFS parallelizes. It is efficient
// when the maximum edge weight (hence the bucket span) is small.
func Dial(g graph.Graph, src graph.Vertex) Result {
	checkInput(g, src)
	n := g.NumVertices()
	dist := make([]uint64, n)
	for i := range dist {
		dist[i] = inf
	}
	dist[src] = 0
	res := Result{}
	// Buckets grow on demand; bucket d holds vertices with tentative
	// distance exactly d (lazy deletion via the dist check at pop).
	bkts := [][]graph.Vertex{{src}}
	for cur := 0; cur < len(bkts); cur++ {
		for len(bkts[cur]) > 0 {
			// Re-check liveness: stale copies are skipped.
			v := bkts[cur][len(bkts[cur])-1]
			bkts[cur] = bkts[cur][:len(bkts[cur])-1]
			if dist[v] != uint64(cur) {
				continue
			}
			g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
				res.EdgesTraversed++
				nd := uint64(cur) + uint64(w)
				if nd < dist[u] {
					dist[u] = nd
					res.Relaxations++
					for uint64(len(bkts)) <= nd {
						bkts = append(bkts, nil)
					}
					bkts[nd] = append(bkts[nd], u)
				}
				return true
			})
		}
		res.Rounds++
	}
	res.Dist = finalize(dist)
	return res
}
