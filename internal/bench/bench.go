// Package bench is the reproducible performance baseline behind `make
// bench`: it measures the bucket structure's hot paths and the four
// bucketed applications (k-core, ∆-stepping, wBFS, approximate set
// cover) at GOMAXPROCS ∈ {1, NumCPU}, and emits machine-readable
// reports (BENCH_bucket.json, BENCH_algos.json) with wall-clock and
// allocator figures per operation AND per round, plus the bucket- and
// edge-map-traffic counters from internal/obs.
//
// Every report embeds the pre-arena baseline (the go-test benchmark
// numbers measured immediately before the scratch-arena work landed,
// see baseline.go), and full-budget runs re-measure the same
// benchmarks so the committed files carry a direct before/after
// comparison. DESIGN.md §7 documents how to read the output.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"

	"julienne/internal/harness"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// Config selects the measurement budget.
type Config struct {
	// Smoke shrinks inputs to CI size and skips the slow before/after
	// re-measurement; the numbers still exercise every code path.
	Smoke bool
	// Reps is the timing repetition count for medians (0 = default).
	Reps int
	// Seed makes workloads reproducible (0 = default).
	Seed uint64
	// Live, when non-nil, receives every instrumented run's counters
	// and histograms via Recorder.Merge, so `cmd/bench -http` exposes
	// the whole suite's telemetry on one /metrics endpoint while the
	// per-entry snapshots in the report stay isolated. Nil skips the
	// merge.
	Live *obs.Recorder
}

func (c Config) reps() int {
	if c.Reps >= 1 {
		return c.Reps
	}
	if c.Smoke {
		return 3
	}
	return 5
}

func (c Config) seed() uint64 {
	if c.Seed == 0 {
		return 2017 // SPAA '17
	}
	return c.Seed
}

// Entry is one measured workload configuration.
type Entry struct {
	Name   string `json:"name"`
	Family string `json:"family,omitempty"`
	Procs  int    `json:"procs"`
	N      int    `json:"n,omitempty"`
	M      int64  `json:"m,omitempty"`
	// Rounds is the number of bucket/peeling rounds one operation
	// executes; the per-round figures below divide by it.
	Rounds int64 `json:"rounds,omitempty"`
	// NsPerOp is the median wall-clock time of one operation.
	NsPerOp    int64 `json:"ns_per_op"`
	NsPerRound int64 `json:"ns_per_round,omitempty"`
	// BytesPerOp/AllocsPerOp are allocator traffic per operation
	// (ReadMemStats deltas averaged over the measurement runs).
	BytesPerOp    int64 `json:"bytes_per_op"`
	BytesPerRound int64 `json:"bytes_per_round,omitempty"`
	AllocsPerOp   int64 `json:"allocs_per_op"`
	// RoundP50Ns..RoundMaxNs summarize the per-round latency
	// distribution of one instrumented run, from the internal/obs
	// log-bucketed histogram (round.latency_ns where the workload
	// records rounds, else the bucket operation-duration histograms).
	// Quantiles carry the histogram's ~12.5% bucket resolution.
	RoundP50Ns int64 `json:"round_p50_ns,omitempty"`
	RoundP90Ns int64 `json:"round_p90_ns,omitempty"`
	RoundP99Ns int64 `json:"round_p99_ns,omitempty"`
	RoundMaxNs int64 `json:"round_max_ns,omitempty"`
	// Counters is one instrumented run's internal/obs counter snapshot
	// (bucket.* traffic, edgemap.* direction decisions).
	Counters map[string]int64 `json:"counters,omitempty"`
}

// GoBench is one go-test-style benchmark result, the unit of the
// before/after comparison.
type GoBench struct {
	Name        string `json:"name"`
	NsPerOp     int64  `json:"ns_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
}

// Baseline is a pinned set of GoBench numbers from a named commit.
type Baseline struct {
	Commit  string    `json:"commit"`
	Note    string    `json:"note"`
	Entries []GoBench `json:"entries"`
}

// Delta is one before/after row: the current re-measurement of a
// baseline benchmark and the relative change in allocator bytes.
type Delta struct {
	Name           string  `json:"name"`
	Before         GoBench `json:"before"`
	After          GoBench `json:"after"`
	BytesChangePct float64 `json:"bytes_change_pct"`
}

// Report is the serialized output of one suite.
type Report struct {
	Kind      string `json:"kind"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	Smoke     bool   `json:"smoke"`
	Seed      uint64 `json:"seed"`
	// Baseline pins the pre-arena numbers this PR is measured against.
	Baseline Baseline `json:"pre_arena_baseline"`
	// Comparison re-measures the baseline benchmarks on the current
	// tree (full-budget runs only).
	Comparison []Delta `json:"comparison,omitempty"`
	Results    []Entry `json:"results"`
}

// Write serializes the report as indented JSON.
func (r *Report) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func newReport(kind string, cfg Config, base Baseline) *Report {
	return &Report{
		Kind:      kind,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Smoke:     cfg.Smoke,
		Seed:      cfg.seed(),
		Baseline:  base,
	}
}

// procsList returns the GOMAXPROCS values to measure: 1 and the full
// machine (deduplicated on single-CPU machines).
func procsList() []int {
	if runtime.NumCPU() <= 1 {
		return []int{1}
	}
	return []int{1, runtime.NumCPU()}
}

// withProcs runs f at GOMAXPROCS p, restoring the previous value.
func withProcs(p int, f func()) {
	old := parallel.SetProcs(p)
	defer parallel.SetProcs(old)
	f()
}

// measure times and alloc-profiles run (recorder off), then executes
// one instrumented run to capture rounds, obs counters, and the
// round-latency percentiles.
func measure(e Entry, cfg Config, run func(rec *obs.Recorder) int64) Entry {
	sample := harness.TimeMedian(cfg.reps(), func() { run(nil) })
	alloc := harness.MeasureAlloc(cfg.reps(), func() { run(nil) })
	rec := obs.NewRecorder()
	rounds := run(rec)
	e.Rounds = rounds
	e.NsPerOp = sample.Median.Nanoseconds()
	e.BytesPerOp = alloc.BytesPerOp
	e.AllocsPerOp = alloc.AllocsPerOp
	if rounds > 0 {
		e.NsPerRound = e.NsPerOp / rounds
		e.BytesPerRound = e.BytesPerOp / rounds
	}
	e.Counters = rec.Counters()
	fillRoundPercentiles(&e, rec)
	cfg.Live.Merge(rec)
	return e
}

// fillRoundPercentiles copies the round-latency summary of one
// instrumented run into the entry. Workloads that emit RoundMetrics
// populate round.latency_ns; pure bucket-structure workloads fall back
// to the NextBucket/UpdateBuckets duration histograms.
func fillRoundPercentiles(e *Entry, rec *obs.Recorder) {
	for _, name := range []string{obs.HistRoundLatencyNs, obs.HistNextBucketNs, obs.HistUpdateBucketsNs} {
		if s := rec.HistSummary(name); s.Count > 0 {
			e.RoundP50Ns = s.P50
			e.RoundP90Ns = s.P90
			e.RoundP99Ns = s.P99
			e.RoundMaxNs = s.Max
			return
		}
	}
}

// deltas pairs the baseline entries with fresh re-measurements.
func deltas(base Baseline, current []GoBench) []Delta {
	byName := map[string]GoBench{}
	for _, g := range current {
		byName[g.Name] = g
	}
	var out []Delta
	for _, b := range base.Entries {
		a, ok := byName[b.Name]
		if !ok {
			continue
		}
		pct := 0.0
		if b.BytesPerOp != 0 {
			pct = 100 * float64(a.BytesPerOp-b.BytesPerOp) / float64(b.BytesPerOp)
		}
		out = append(out, Delta{Name: b.Name, Before: b, After: a, BytesChangePct: pct})
	}
	return out
}

// FormatSummary renders a human-readable digest of the comparison for
// terminal output.
func FormatSummary(r *Report) string {
	if len(r.Comparison) == 0 {
		return fmt.Sprintf("%s: %d results (no before/after comparison in this mode)\n", r.Kind, len(r.Results))
	}
	s := fmt.Sprintf("%s: bytes/op vs pre-arena baseline (%s):\n", r.Kind, r.Baseline.Commit)
	for _, d := range r.Comparison {
		s += fmt.Sprintf("  %-36s %12d -> %10d B/op (%+.1f%%)\n",
			d.Name, d.Before.BytesPerOp, d.After.BytesPerOp, d.BytesChangePct)
	}
	return s
}
