package bench

// The pinned pre-arena baselines: go-test benchmark numbers measured at
// commit 93371f2 (the tree immediately before the scratch-arena /
// allocation-free hot-path work), via
//
//	go test -run xxx -bench <name> -benchmem
//
// on the single-CPU development container. They are data, not code:
// regenerating them requires checking out that commit, so they are
// committed here and embedded into every report to keep the
// before/after comparison attached to the numbers it explains.

var bucketBaseline = Baseline{
	Commit: "93371f2",
	Note:   "pre-arena tree, go test -bench -benchmem, GOMAXPROCS=1 container",
	Entries: []GoBench{
		{Name: "BenchmarkUpdateBucketsHistogram", NsPerOp: 1231211, BytesPerOp: 738931, AllocsPerOp: 12},
		{Name: "BenchmarkUpdateBucketsSemisort", NsPerOp: 2675884, BytesPerOp: 4289906, AllocsPerOp: 29},
		{Name: "BenchmarkNextBucket", NsPerOp: 29515264, BytesPerOp: 5869045, AllocsPerOp: 6113},
	},
}

var algosBaseline = Baseline{
	Commit: "93371f2",
	Note:   "pre-arena tree, go test -bench -benchmem, GOMAXPROCS=1 container",
	Entries: []GoBench{
		{Name: "BenchmarkKCoreRecorderOff", NsPerOp: 5681247, BytesPerOp: 2806163, AllocsPerOp: 16266},
		{Name: "BenchmarkTable3WBFSJulienne", NsPerOp: 3036056, BytesPerOp: 1593523, AllocsPerOp: 7406},
		{Name: "BenchmarkTable3DeltaJulienne", NsPerOp: 7336730, BytesPerOp: 3232062, AllocsPerOp: 16569},
		{Name: "BenchmarkTable3SetCoverJulienne", NsPerOp: 11126321, BytesPerOp: 4950537, AllocsPerOp: 59710},
	},
}
