package bench

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/harness"
	"julienne/internal/obs"
	"julienne/internal/rng"
)

// benchDelta mirrors the ∆ the root benchmark suite uses for the
// heavy-weight ∆-stepping configuration.
const benchDelta = 32768

// Bucket measures the bucket structure's hot paths: the histogram and
// semisort UpdateBuckets strategies and a full NextBucket drain.
func Bucket(cfg Config) *Report {
	rep := newReport("bucket", cfg, bucketBaseline)
	n, k := 1<<18, 1<<16
	if cfg.Smoke {
		n, k = 1<<15, 1<<13
	}
	for _, p := range procsList() {
		withProcs(p, func() {
			rep.Results = append(rep.Results,
				updateEntry("bucket/update-histogram", bucket.Options{}, n, k, p, cfg),
				updateEntry("bucket/update-semisort", bucket.Options{Semisort: true}, n, k, p, cfg),
				drainEntry(n, p, cfg),
			)
		})
	}
	if !cfg.Smoke {
		withProcs(1, func() {
			rep.Comparison = deltas(bucketBaseline, goBenchBucket())
		})
	}
	return rep
}

// updateStream pre-computes a realistic (identifier, dest) update
// stream so the measurement isolates UpdateBuckets itself (the same
// workload as BenchmarkUpdateBucketsHistogram).
func updateStream(opt bucket.Options, n, k int, rec *obs.Recorder) (*bucket.Par, func(j int) (uint32, bucket.Dest)) {
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(1, uint64(i), 512))
	}
	opt.Recorder = rec
	par := bucket.New(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing, opt)
	ids := make([]uint32, k)
	dests := make([]bucket.Dest, k)
	for j := 0; j < k; j++ {
		v := uint32(rng.UintNAt(2, uint64(j), uint64(n)))
		prev := d[v]
		next := prev / 2
		d[v] = next
		ids[j] = v
		dest := par.GetBucket(prev, next)
		if dest == bucket.None {
			dest = bucket.Dest(0)
		}
		dests[j] = dest
	}
	return par, func(j int) (uint32, bucket.Dest) { return ids[j], dests[j] }
}

// updateEntry measures repeated UpdateBuckets calls; one call is one
// round, so per-op and per-round figures coincide.
func updateEntry(name string, opt bucket.Options, n, k, p int, cfg Config) Entry {
	e := Entry{Name: name, Procs: p, N: n, M: int64(k), Rounds: 1}
	par, f := updateStream(opt, n, k, nil)
	sample := harness.TimeMedian(cfg.reps(), func() { par.UpdateBuckets(k, f) })
	alloc := harness.MeasureAlloc(cfg.reps(), func() { par.UpdateBuckets(k, f) })
	rec := obs.NewRecorder()
	ipar, if_ := updateStream(opt, n, k, rec)
	ipar.UpdateBuckets(k, if_)
	e.NsPerOp = sample.Median.Nanoseconds()
	e.NsPerRound = e.NsPerOp
	e.BytesPerOp = alloc.BytesPerOp
	e.BytesPerRound = e.BytesPerOp
	e.AllocsPerOp = alloc.AllocsPerOp
	e.Counters = rec.Counters()
	fillRoundPercentiles(&e, rec)
	cfg.Live.Merge(rec)
	return e
}

// drainEntry measures constructing and fully draining a structure over
// n identifiers spread across 1024 logical buckets.
func drainEntry(n, p int, cfg Config) Entry {
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(3, uint64(i), 1024))
	}
	get := func(i uint32) bucket.ID { return d[i] }
	e := Entry{Name: "bucket/new-and-drain", Procs: p, N: n}
	return measure(e, cfg, func(rec *obs.Recorder) int64 {
		par := bucket.New(n, get, bucket.Increasing, bucket.Options{Recorder: rec})
		for {
			id, _ := par.NextBucket()
			if id == bucket.Nil {
				break
			}
		}
		return par.Stats().BucketsReturned
	})
}

// Algos measures the four bucketed applications over generator
// families at every procs point.
func Algos(cfg Config) *Report {
	rep := newReport("algos", cfg, algosBaseline)
	n, m := 1<<13, 1<<17
	if cfg.Smoke {
		n, m = 1<<11, 1<<14
	}
	seed := cfg.seed()

	type input struct {
		family string
		g      *graph.CSR
	}
	var inputs []input
	for _, f := range gen.SymmetricFamilies() {
		switch f.Name {
		case "rmat-sym", "chung-lu-sym", "grid":
			inputs = append(inputs, input{f.Name, f.Build(n, m, seed)})
		}
	}
	inst := gen.SetCover(n/2, 4*n, 4, seed+9)

	for _, p := range procsList() {
		withProcs(p, func() {
			for _, in := range inputs {
				g := in.g
				wg := gen.LogWeights(g, seed+1)
				hg := gen.HeavyWeights(g, seed+2)
				gm := int64(g.NumEdges())
				rep.Results = append(rep.Results,
					measure(Entry{Name: "kcore", Family: in.family, Procs: p, N: n, M: gm}, cfg,
						func(rec *obs.Recorder) int64 {
							return kcore.Coreness(g, kcore.Options{Recorder: rec}).Rounds
						}),
					measure(Entry{Name: "wbfs", Family: in.family, Procs: p, N: n, M: gm}, cfg,
						func(rec *obs.Recorder) int64 {
							return sssp.WBFS(wg, 0, sssp.Options{Recorder: rec}).Rounds
						}),
					measure(Entry{Name: "delta-stepping", Family: in.family, Procs: p, N: n, M: gm}, cfg,
						func(rec *obs.Recorder) int64 {
							return sssp.DeltaStepping(hg, 0, benchDelta, sssp.Options{Recorder: rec}).Rounds
						}),
				)
				if in.family == "grid" {
					// Fusion ablation on the road-like family (DESIGN.md
					// §11): same inputs and knobs as the unfused wbfs /
					// delta-stepping entries above, plus maximal bucket
					// fusion. Compare bucket.buckets_returned across the
					// pairs — fusion's claim is fewer synchronization
					// rounds at (near-)identical relaxation counts, not a
					// different traversal.
					fus := bucket.MaximalFusion()
					rep.Results = append(rep.Results,
						measure(Entry{Name: "wbfs-fused", Family: in.family, Procs: p, N: n, M: gm}, cfg,
							func(rec *obs.Recorder) int64 {
								return sssp.WBFS(wg, 0, sssp.Options{Recorder: rec, Fusion: fus}).Rounds
							}),
						measure(Entry{Name: "delta-stepping-fused", Family: in.family, Procs: p, N: n, M: gm}, cfg,
							func(rec *obs.Recorder) int64 {
								return sssp.DeltaStepping(hg, 0, benchDelta, sssp.Options{Recorder: rec, Fusion: fus}).Rounds
							}),
					)
				}
			}
			rep.Results = append(rep.Results,
				measure(Entry{Name: "setcover", Family: "setcover-synth", Procs: p,
					N: inst.Graph.NumVertices(), M: int64(inst.Graph.NumEdges())}, cfg,
					func(rec *obs.Recorder) int64 {
						return setcover.Approx(inst.Graph, inst.Sets, setcover.Options{Recorder: rec}).Rounds
					}),
			)
		})
	}
	if !cfg.Smoke {
		withProcs(1, func() {
			rep.Comparison = deltas(algosBaseline, goBenchAlgos())
		})
	}
	return rep
}

// CheckFusionAblation verifies the fusion ablation's claim inside an
// algos report: every fused grid-family entry must have extracted
// strictly fewer bucket rounds than its unfused counterpart at the
// same procs point, and the wbfs pair — the road-like configuration
// fusion exists for — must show at least 3x fewer. Rounds are read
// from the obs bucket.buckets_returned counter of the instrumented
// run, never from wall time, so the gate is immune to CI machine
// noise. cmd/bench -assert-fusion runs this after writing the report.
func CheckFusionAblation(rep *Report) error {
	type key struct {
		name  string
		procs int
	}
	returned := map[key]int64{}
	for _, e := range rep.Results {
		if e.Family != "grid" {
			continue
		}
		returned[key{e.Name, e.Procs}] = e.Counters[obs.CtrBucketReturned]
	}
	checked := 0
	for k, fused := range returned {
		base, ok := strings.CutSuffix(k.name, "-fused")
		if !ok {
			continue
		}
		unfused, ok := returned[key{base, k.procs}]
		if !ok {
			return fmt.Errorf("fusion ablation: %s (procs=%d) has no unfused %s entry to compare against", k.name, k.procs, base)
		}
		if fused <= 0 || unfused <= 0 {
			return fmt.Errorf("fusion ablation: %s vs %s (procs=%d): bucket.buckets_returned %d vs %d — counter missing from the instrumented run", k.name, base, k.procs, fused, unfused)
		}
		if fused >= unfused {
			return fmt.Errorf("fusion ablation: %s extracted %d bucket rounds at procs=%d, not fewer than unfused %s's %d", k.name, fused, k.procs, base, unfused)
		}
		if base == "wbfs" && 3*fused > unfused {
			return fmt.Errorf("fusion ablation: wbfs-fused extracted %d bucket rounds at procs=%d vs unfused %d; want at least 3x fewer on the road-like family", fused, k.procs, unfused)
		}
		checked++
	}
	if checked == 0 {
		return errors.New("fusion ablation: report contains no fused grid-family entries")
	}
	return nil
}

// goBenchBucket re-measures the bucket benchmarks of the pre-arena
// baseline with identical workloads via testing.Benchmark, so the
// before/after rows compare like with like.
func goBenchBucket() []GoBench {
	par, f := updateStream(bucket.Options{}, 1<<18, 1<<16, nil)
	hist := runGoBench("BenchmarkUpdateBucketsHistogram", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			par.UpdateBuckets(1<<16, f)
		}
	})
	spar, sf := updateStream(bucket.Options{Semisort: true}, 1<<18, 1<<16, nil)
	semi := runGoBench("BenchmarkUpdateBucketsSemisort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			spar.UpdateBuckets(1<<16, sf)
		}
	})
	n := 1 << 18
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(3, uint64(i), 1024))
	}
	get := func(i uint32) bucket.ID { return d[i] }
	drain := runGoBench("BenchmarkNextBucket", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := bucket.New(n, get, bucket.Increasing, bucket.Options{})
			b.StartTimer()
			for {
				id, _ := p.NextBucket()
				if id == bucket.Nil {
					break
				}
			}
		}
	})
	return []GoBench{hist, semi, drain}
}

// goBenchAlgos re-measures the application benchmarks of the pre-arena
// baseline (the root bench_test.go workloads: RMAT n=2^13, m=2^17).
func goBenchAlgos() []GoBench {
	g := gen.RMAT(1<<13, 1<<17, true, 2017)
	wg := gen.LogWeights(g, 1)
	hg := gen.HeavyWeights(g, 2)
	inst := gen.SetCover(1<<12, 1<<15, 4, 3)
	return []GoBench{
		runGoBench("BenchmarkKCoreRecorderOff", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				kcore.Coreness(g, kcore.Options{})
			}
		}),
		runGoBench("BenchmarkTable3WBFSJulienne", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sssp.WBFS(wg, 0, sssp.Options{})
			}
		}),
		runGoBench("BenchmarkTable3DeltaJulienne", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sssp.DeltaStepping(hg, 0, benchDelta, sssp.Options{})
			}
		}),
		runGoBench("BenchmarkTable3SetCoverJulienne", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				setcover.Approx(inst.Graph, inst.Sets, setcover.Options{})
			}
		}),
	}
}

// runGoBench executes one benchmark body under the testing harness and
// extracts the standard -benchmem triple.
func runGoBench(name string, body func(b *testing.B)) GoBench {
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		body(b)
	})
	return GoBench{
		Name:        name,
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}
