package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/obs"
)

func TestDeltasPairsByName(t *testing.T) {
	base := Baseline{
		Commit: "abc",
		Entries: []GoBench{
			{Name: "A", BytesPerOp: 1000},
			{Name: "B", BytesPerOp: 500},
			{Name: "missing", BytesPerOp: 9},
		},
	}
	cur := []GoBench{{Name: "A", BytesPerOp: 600}, {Name: "B", BytesPerOp: 500}}
	ds := deltas(base, cur)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2 (unmatched baseline rows dropped)", len(ds))
	}
	if ds[0].Name != "A" || ds[0].BytesChangePct != -40 {
		t.Fatalf("A: %+v", ds[0])
	}
	if ds[1].BytesChangePct != 0 {
		t.Fatalf("B: %+v", ds[1])
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := newReport("bucket", Config{Smoke: true}, bucketBaseline)
	rep.Results = append(rep.Results, Entry{
		Name: "x", Procs: 1, NsPerOp: 10, BytesPerOp: 20, Rounds: 2,
		NsPerRound: 5, BytesPerRound: 10,
		Counters: map[string]int64{"bucket.moved": 7},
	})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Kind != "bucket" || len(back.Results) != 1 || back.Baseline.Commit == "" {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
	if back.Results[0].Counters["bucket.moved"] != 7 {
		t.Fatal("counters lost")
	}
}

// TestFusionReducesRounds pins the ablation's headline claim on a
// CI-sized road-like input: maximal bucket fusion must extract at
// least 3x fewer bucket rounds than the unfused run on a weighted
// grid, at identical distances and near-identical relaxation counts.
// (Near: inside a fused span a vertex can be relaxed through an
// intermediate tentative distance the strict bucket order would have
// skipped, so the fused count runs a few percent above unfused; the
// savings must come from fewer rounds, not a different traversal.)
func TestFusionReducesRounds(t *testing.T) {
	g := gen.LogWeights(gen.Grid2D(40, 50), 2017)
	unfused := sssp.WBFS(g, 0, sssp.Options{})
	fused := sssp.WBFS(g, 0, sssp.Options{Fusion: bucket.MaximalFusion()})
	ur, fr := unfused.BucketStats.BucketsReturned, fused.BucketStats.BucketsReturned
	if ur <= 0 || fr <= 0 {
		t.Fatalf("degenerate runs: unfused %d rounds, fused %d", ur, fr)
	}
	if 3*fr > ur {
		t.Fatalf("fused wBFS extracted %d bucket rounds vs unfused %d; want at least 3x fewer", fr, ur)
	}
	// Parallel relaxation counts are scheduling-dependent (successful
	// atomic-min races), so bound the ratio rather than demanding
	// equality: a fused traversal of the same graph stays within
	// [0.75x, 1.5x] of the unfused count.
	if r := 4 * fused.Relaxations; r < 3*unfused.Relaxations || r > 6*unfused.Relaxations {
		t.Errorf("fusion changed the traversal: %d relaxations vs unfused %d (want near-identical)",
			fused.Relaxations, unfused.Relaxations)
	}
	for v := range fused.Dist {
		if fused.Dist[v] != unfused.Dist[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, fused.Dist[v], unfused.Dist[v])
		}
	}
}

// TestCheckFusionAblation exercises the report gate cmd/bench
// -assert-fusion applies, on synthetic reports.
func TestCheckFusionAblation(t *testing.T) {
	entry := func(name string, procs int, rounds int64) Entry {
		return Entry{Name: name, Family: "grid", Procs: procs,
			Counters: map[string]int64{obs.CtrBucketReturned: rounds}}
	}
	good := &Report{Results: []Entry{
		entry("wbfs", 1, 900), entry("wbfs-fused", 1, 120),
		entry("delta-stepping", 1, 60), entry("delta-stepping-fused", 1, 40),
	}}
	if err := CheckFusionAblation(good); err != nil {
		t.Fatalf("good report rejected: %v", err)
	}
	for _, tc := range []struct {
		name string
		rep  *Report
		want string
	}{
		{"no fused entries", &Report{Results: []Entry{entry("wbfs", 1, 900)}}, "no fused grid-family entries"},
		{"missing counterpart", &Report{Results: []Entry{entry("wbfs-fused", 1, 120)}}, "no unfused wbfs entry"},
		{"not fewer", &Report{Results: []Entry{
			entry("delta-stepping", 1, 40), entry("delta-stepping-fused", 1, 40)}}, "not fewer"},
		{"wbfs below 3x", &Report{Results: []Entry{
			entry("wbfs", 1, 200), entry("wbfs-fused", 1, 100)}}, "at least 3x fewer"},
		{"counter missing", &Report{Results: []Entry{
			entry("wbfs", 1, 900), {Name: "wbfs-fused", Family: "grid", Procs: 1}}}, "counter missing"},
	} {
		err := CheckFusionAblation(tc.rep)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want one containing %q", tc.name, err, tc.want)
		}
	}
}

func TestFormatSummary(t *testing.T) {
	rep := newReport("algos", Config{}, algosBaseline)
	rep.Comparison = []Delta{{
		Name:   "BenchmarkKCoreRecorderOff",
		Before: GoBench{BytesPerOp: 1000}, After: GoBench{BytesPerOp: 700},
		BytesChangePct: -30,
	}}
	s := FormatSummary(rep)
	if !strings.Contains(s, "BenchmarkKCoreRecorderOff") || !strings.Contains(s, "-30.0%") {
		t.Fatalf("summary: %q", s)
	}
}
