package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestDeltasPairsByName(t *testing.T) {
	base := Baseline{
		Commit: "abc",
		Entries: []GoBench{
			{Name: "A", BytesPerOp: 1000},
			{Name: "B", BytesPerOp: 500},
			{Name: "missing", BytesPerOp: 9},
		},
	}
	cur := []GoBench{{Name: "A", BytesPerOp: 600}, {Name: "B", BytesPerOp: 500}}
	ds := deltas(base, cur)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2 (unmatched baseline rows dropped)", len(ds))
	}
	if ds[0].Name != "A" || ds[0].BytesChangePct != -40 {
		t.Fatalf("A: %+v", ds[0])
	}
	if ds[1].BytesChangePct != 0 {
		t.Fatalf("B: %+v", ds[1])
	}
}

func TestReportRoundTrip(t *testing.T) {
	rep := newReport("bucket", Config{Smoke: true}, bucketBaseline)
	rep.Results = append(rep.Results, Entry{
		Name: "x", Procs: 1, NsPerOp: 10, BytesPerOp: 20, Rounds: 2,
		NsPerRound: 5, BytesPerRound: 10,
		Counters: map[string]int64{"bucket.moved": 7},
	})
	var buf bytes.Buffer
	if err := rep.Write(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Kind != "bucket" || len(back.Results) != 1 || back.Baseline.Commit == "" {
		t.Fatalf("round-trip lost fields: %+v", back)
	}
	if back.Results[0].Counters["bucket.moved"] != 7 {
		t.Fatal("counters lost")
	}
}

func TestFormatSummary(t *testing.T) {
	rep := newReport("algos", Config{}, algosBaseline)
	rep.Comparison = []Delta{{
		Name:   "BenchmarkKCoreRecorderOff",
		Before: GoBench{BytesPerOp: 1000}, After: GoBench{BytesPerOp: 700},
		BytesChangePct: -30,
	}}
	s := FormatSummary(rep)
	if !strings.Contains(s, "BenchmarkKCoreRecorderOff") || !strings.Contains(s, "-30.0%") {
		t.Fatalf("summary: %q", s)
	}
}
