package parallel

import "sync"

// SortByKey sorts items ascending by a 64-bit key, stably, using a
// parallel least-significant-digit radix sort (8-bit digits). It is
// the sorting substrate for graph construction: CSR builds sort edge
// lists by (source, target), and at graph scale comparison sorts
// dominate build time. Work O(n · passes), depth O(passes · (n/P + P));
// passes over constant digits are skipped, so small key ranges sort in
// one or two passes.
//
// The input slice is returned sorted (the implementation ping-pongs
// between the input and one scratch buffer and copies back if the
// final pass lands in scratch).
func SortByKey[T any](items []T, key func(T) uint64) []T {
	n := len(items)
	if n < 2 {
		return items
	}
	defer rewrapPanic()
	const (
		digitBits = 8
		radix     = 1 << digitBits
		mask      = radix - 1
	)
	// Which digit positions vary? OR of (key XOR firstKey) reveals the
	// bits that differ anywhere.
	first := key(items[0])
	varying := Reduce(n, 0, uint64(0),
		func(i int) uint64 { return key(items[i]) ^ first },
		func(a, b uint64) uint64 { return a | b })
	if varying == 0 {
		return items // all keys equal
	}

	src, dst := items, make([]T, n)
	nb := numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize := (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	counts := make([]uint32, radix*nb)

	for shift := 0; shift < 64; shift += digitBits {
		if (varying>>shift)&mask == 0 {
			continue // this digit is constant everywhere
		}
		for i := range counts {
			counts[i] = 0
		}
		// Pass 1: per-block digit histograms, digit-major layout so a
		// single scan yields stable scatter offsets. Both waves contain
		// panics from the caller-supplied key function: every worker
		// joins before the wrapped panic re-raises on the caller.
		var pc panicCatcher
		var wg sync.WaitGroup
		for b := 0; b < nb; b++ {
			lo, hi := b*blockSize, min((b+1)*blockSize, n)
			wg.Add(1)
			go func(b, lo, hi int) {
				defer wg.Done()
				defer pc.recoverPanic()
				for i := lo; i < hi; i++ {
					d := (key(src[i]) >> shift) & mask
					counts[int(d)*nb+b]++
				}
			}(b, lo, hi)
		}
		wg.Wait()
		pc.rethrow()
		Scan(counts, counts)
		// Pass 2: stable scatter.
		for b := 0; b < nb; b++ {
			lo, hi := b*blockSize, min((b+1)*blockSize, n)
			wg.Add(1)
			go func(b, lo, hi int) {
				defer wg.Done()
				defer pc.recoverPanic()
				for i := lo; i < hi; i++ {
					d := (key(src[i]) >> shift) & mask
					slot := int(d)*nb + b
					dst[counts[slot]] = src[i]
					counts[slot]++
				}
			}(b, lo, hi)
		}
		wg.Wait()
		pc.rethrow()
		src, dst = dst, src
	}
	if &src[0] != &items[0] {
		copy(items, src)
	}
	return items
}

// IsSortedByKey reports whether items are ascending by key.
func IsSortedByKey[T any](items []T, key func(T) uint64) bool {
	for i := 1; i < len(items); i++ {
		if key(items[i-1]) > key(items[i]) {
			return false
		}
	}
	return true
}
