// Package parallel provides the fork-join primitives that every other
// package in this repository is built on: parallel loops, reductions,
// prefix sums (scan), filtering/packing, histograms, and the atomic
// writeMin/writeMax primitives from the paper's preliminaries (§2).
//
// The model is the classic work-depth model realized with goroutines:
// a parallel loop over n items splits the index space into contiguous
// blocks of at least `grain` items, forks one goroutine per block (capped
// at GOMAXPROCS blocks per wave), and joins. There is no work stealing —
// Go's runtime lacks fine-grained stealing for loop iterations — so every
// primitive uses blocked decomposition, which is also how the paper's own
// practical implementation of updateBuckets works (§3.3 processes blocks
// of M=2048 sequentially and combines them with a scan).
//
// All primitives degrade gracefully to purely sequential execution when
// the input is below the grain or GOMAXPROCS is 1, so single-threaded
// baselines pay no synchronization cost.
package parallel

import (
	"runtime"
	"sync"

	"julienne/internal/chaos"
)

// DefaultGrain is the block size used when a caller passes grain <= 0.
// 1024 amortizes goroutine startup (~hundreds of ns) against per-item work
// of a few ns, the regime of the loops in this repository.
const DefaultGrain = 1024

// Procs reports the current parallelism level (GOMAXPROCS).
func Procs() int { return runtime.GOMAXPROCS(0) }

// SetProcs sets GOMAXPROCS and returns the previous value. The experiment
// harness uses it to sweep thread counts; library code never calls it.
func SetProcs(p int) int { return runtime.GOMAXPROCS(p) }

// numBlocks returns how many blocks of at least grain items n splits into.
func numBlocks(n, grain int) int {
	if grain <= 0 {
		grain = DefaultGrain
	}
	b := (n + grain - 1) / grain
	if b < 1 {
		b = 1
	}
	return b
}

// Blocked runs body(lo, hi) over contiguous blocks covering [0, n) in
// parallel. It is the root primitive: everything else is written on top.
// Blocks have at least `grain` items (except possibly the last), and at
// most 4*GOMAXPROCS blocks are created so oversubscription stays bounded
// while still smoothing out block-to-block load imbalance.
//
// A panic in body is contained: all workers join, and a single wrapped
// *PanicError re-raises on the caller (see panics.go for the contract).
func Blocked(n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	defer rewrapPanic()
	p := Procs()
	nb := numBlocks(n, grain)
	if maxb := 4 * p; nb > maxb {
		nb = maxb
	}
	if p == 1 || nb == 1 {
		if chaos.Enabled {
			chaos.Point(chaos.SiteWorker)
		}
		body(0, n)
		return
	}
	blockSize := (n + nb - 1) / nb
	var pc panicCatcher
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			defer pc.recoverPanic()
			if chaos.Enabled {
				chaos.Point(chaos.SiteWorker)
			}
			body(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	pc.rethrow()
}

// For runs body(i) for every i in [0, n) in parallel with the given grain.
// The sequential case returns before the block-adapter closure literal is
// evaluated, so single-threaded callers pay no allocation for it.
func For(n, grain int, body func(i int)) {
	if n <= 0 {
		return
	}
	nb := numBlocks(n, grain)
	if Procs() == 1 || nb == 1 {
		defer rewrapPanic()
		if chaos.Enabled {
			chaos.Point(chaos.SiteWorker)
		}
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	Blocked(n, grain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			body(i)
		}
	})
}

// Do runs each of the given thunks, in parallel when GOMAXPROCS allows.
// It is the binary/n-ary fork-join used for divide-and-conquer helpers.
// A panic in any thunk (including the one run on the caller's own
// goroutine) surfaces only after every thunk has finished.
func Do(thunks ...func()) {
	if len(thunks) == 0 {
		return
	}
	defer rewrapPanic()
	if Procs() == 1 || len(thunks) == 1 {
		// Every thunk runs even if an earlier one panics, matching the
		// parallel path (where the spawned thunks are already running
		// when the inline one unwinds); the first panic re-raises after.
		var pc panicCatcher
		for _, t := range thunks {
			pc.protect(t)
		}
		pc.rethrow()
		return
	}
	var pc panicCatcher
	var wg sync.WaitGroup
	wg.Add(len(thunks) - 1)
	for _, t := range thunks[1:] {
		go func(t func()) {
			defer wg.Done()
			defer pc.recoverPanic()
			t()
		}(t)
	}
	pc.protect(thunks[0])
	wg.Wait()
	pc.rethrow()
}

// Workers partitions [0, n) into exactly one contiguous block per worker
// (at most GOMAXPROCS workers) and calls body(worker, lo, hi). Unlike
// Blocked it guarantees a stable worker index, which callers use to give
// each goroutine a private scratch buffer.
func Workers(n int, body func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	defer rewrapPanic()
	p := Procs()
	if p > n {
		p = n
	}
	if p == 1 {
		if chaos.Enabled {
			chaos.Point(chaos.SiteWorker)
		}
		body(0, 0, n)
		return
	}
	blockSize := (n + p - 1) / p
	var pc panicCatcher
	var wg sync.WaitGroup
	w := 0
	for lo := 0; lo < n; lo += blockSize {
		hi := lo + blockSize
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer pc.recoverPanic()
			if chaos.Enabled {
				chaos.Point(chaos.SiteWorker)
			}
			body(w, lo, hi)
		}(w, lo, hi)
		w++
	}
	wg.Wait()
	pc.rethrow()
}
