package parallel

import (
	"testing"

	"julienne/internal/rng"
)

// skipIfAllocsUnmeasurable skips tests that assert exact allocation
// counts in configurations where the runtime inflates them.
func skipIfAllocsUnmeasurable(t *testing.T) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
}

func TestScanZeroAllocSteadyState(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	old := SetProcs(1)
	defer SetProcs(old)
	src := make([]uint32, 1<<13)
	for i := range src {
		src[i] = uint32(i % 7)
	}
	dst := make([]uint32, len(src))
	if avg := testing.AllocsPerRun(50, func() { Scan(dst, src) }); avg != 0 {
		t.Fatalf("Scan allocates %v allocs/op in steady state, want 0", avg)
	}
	if avg := testing.AllocsPerRun(50, func() { ScanInclusive(dst, src) }); avg != 0 {
		t.Fatalf("ScanInclusive allocates %v allocs/op in steady state, want 0", avg)
	}
}

func TestScratchPoolZeroAlloc(t *testing.T) {
	skipIfAllocsUnmeasurable(t)
	old := SetProcs(1)
	defer SetProcs(old)
	GetScratch[uint32](4096).Release() // warm the pool past the high-water mark
	if avg := testing.AllocsPerRun(100, func() {
		s := GetScratch[uint32](4096)
		s.S[0] = 1
		s.Release()
	}); avg != 0 {
		t.Fatalf("GetScratch/Release round-trip allocates %v allocs/op, want 0", avg)
	}
}

// scanInclusiveSeq is the sequential oracle for the aliasing tests.
func scanInclusiveSeq(src []uint64) ([]uint64, uint64) {
	out := make([]uint64, len(src))
	var acc uint64
	for i, v := range src {
		acc += v
		out[i] = acc
	}
	return out, acc
}

func TestScanInclusiveAliasing(t *testing.T) {
	withProcs(t, 4, func() {
		r := rng.New(11)
		n := 40000
		vals := make([]uint64, n)
		for i := range vals {
			vals[i] = r.Uint64() % 100
		}
		want, wantTotal := scanInclusiveSeq(vals)

		check := func(name string, dst, got []uint64, total uint64) {
			t.Helper()
			if total != wantTotal {
				t.Fatalf("%s: total=%d want %d", name, total, wantTotal)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s: dst[%d]=%d want %d", name, i, got[i], want[i])
				}
			}
			_ = dst
		}

		// Identical: dst and src are the same slice (in-place).
		buf := make([]uint64, n)
		copy(buf, vals)
		total := ScanInclusive(buf, buf)
		check("identical", buf, buf, total)

		// Disjoint: separate backing arrays.
		src := make([]uint64, n)
		copy(src, vals)
		dst := make([]uint64, n)
		total = ScanInclusive(dst, src)
		check("disjoint", dst, dst, total)
		for i := range src {
			if src[i] != vals[i] {
				t.Fatalf("disjoint: src[%d] clobbered", i)
			}
		}

		// Partial overlap: dst shifted one element into src's backing
		// array. The kernel must copy src aside before writing.
		backing := make([]uint64, n+1)
		copy(backing, vals)
		total = ScanInclusive(backing[1:], backing[:n])
		check("partial-overlap", backing[1:], backing[1:], total)
	})
}

func TestFilterInto(t *testing.T) {
	withProcs(t, 4, func() {
		n := 120000
		src := make([]int, n)
		for i := range src {
			src[i] = i
		}
		pred := func(v int) bool { return v%7 == 0 }
		var buf []int
		// Two rounds through the same buffer: the second must reuse the
		// storage grown by the first.
		for round := 0; round < 2; round++ {
			buf = FilterInto(buf, src, pred)
			if len(buf) != (n+6)/7 {
				t.Fatalf("round %d: len=%d", round, len(buf))
			}
			for i, v := range buf {
				if v != i*7 {
					t.Fatalf("round %d: buf[%d]=%d (order broken)", round, i, v)
				}
			}
		}
		first := &buf[0]
		buf = FilterInto(buf, src[:70], pred)
		if len(buf) != 10 || &buf[0] != first {
			t.Fatalf("shrinking filter reallocated (len=%d)", len(buf))
		}
		if got := FilterInto(buf, nil, pred); len(got) != 0 {
			t.Fatalf("empty src: len=%d", len(got))
		}
	})
}

func TestMapFilterInto(t *testing.T) {
	withProcs(t, 4, func() {
		n := 90000
		f := func(i int) (int, bool) { return -i, i%3 == 0 }
		var buf []int
		for round := 0; round < 2; round++ {
			buf = MapFilterInto(buf, n, f)
			if len(buf) != (n+2)/3 {
				t.Fatalf("round %d: len=%d", round, len(buf))
			}
			for i, v := range buf {
				if v != -i*3 {
					t.Fatalf("round %d: buf[%d]=%d", round, i, v)
				}
			}
		}
		if got := MapFilterInto(buf, 0, f); len(got) != 0 {
			t.Fatalf("n=0: len=%d", len(got))
		}
	})
}
