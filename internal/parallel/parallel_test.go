package parallel

import (
	"sort"
	"sync/atomic"
	"testing"
	"testing/quick"

	"julienne/internal/rng"
)

func TestForCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 100, 1023, 1024, 1025, 100000} {
		hits := make([]int32, n)
		For(n, 64, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestBlockedCoversDisjointRanges(t *testing.T) {
	for _, n := range []int{1, 5, 1000, 4096, 12345} {
		hits := make([]int32, n)
		Blocked(n, 100, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("bad block [%d,%d) for n=%d", lo, hi, n)
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: index %d visited %d times", n, i, h)
			}
		}
	}
}

func TestBlockedEmptyAndNegative(t *testing.T) {
	called := false
	Blocked(0, 10, func(lo, hi int) { called = true })
	Blocked(-5, 10, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Blocked called body for empty range")
	}
}

func TestDoRunsAllThunks(t *testing.T) {
	var count int32
	Do()
	Do(func() { atomic.AddInt32(&count, 1) })
	Do(
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
		func() { atomic.AddInt32(&count, 1) },
	)
	if count != 4 {
		t.Fatalf("Do ran %d thunks, want 4", count)
	}
}

func TestWorkersDisjointStableIndices(t *testing.T) {
	n := 10000
	hits := make([]int32, n)
	seen := make(map[int]bool)
	var mu atomic.Int32
	Workers(n, func(w, lo, hi int) {
		mu.Add(1)
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
		_ = seen
		if w < 0 || w >= Procs() {
			t.Errorf("worker index %d out of range", w)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d visited %d times", i, h)
		}
	}
}

func TestSumMatchesSequential(t *testing.T) {
	r := rng.New(1)
	for trial := 0; trial < 20; trial++ {
		n := r.IntN(5000)
		xs := make([]int64, n)
		var want int64
		for i := range xs {
			xs[i] = int64(r.IntN(1000)) - 500
			want += xs[i]
		}
		if got := SumSlice(xs); got != want {
			t.Fatalf("n=%d: Sum=%d want %d", n, got, want)
		}
	}
}

func TestReduceMaxMin(t *testing.T) {
	xs := []int{5, 3, 9, -2, 7, 9, 0}
	if got := Max(len(xs), 2, func(i int) int { return xs[i] }); got != 9 {
		t.Fatalf("Max=%d want 9", got)
	}
	if got := Min(len(xs), 2, func(i int) int { return xs[i] }); got != -2 {
		t.Fatalf("Min=%d want -2", got)
	}
}

func TestCountAndAny(t *testing.T) {
	n := 10000
	even := func(i int) bool { return i%2 == 0 }
	if got := Count(n, 0, even); got != n/2 {
		t.Fatalf("Count=%d want %d", got, n/2)
	}
	if !Any(n, 0, func(i int) bool { return i == n-1 }) {
		t.Fatal("Any missed the last index")
	}
	if Any(n, 0, func(i int) bool { return false }) {
		t.Fatal("Any reported a hit on a false predicate")
	}
}

// scanSeq is the obvious sequential exclusive scan used as the oracle.
func scanSeq(src []uint64) ([]uint64, uint64) {
	out := make([]uint64, len(src))
	var acc uint64
	for i, v := range src {
		out[i] = acc
		acc += v
	}
	return out, acc
}

func TestScanMatchesSequential(t *testing.T) {
	r := rng.New(7)
	for trial := 0; trial < 30; trial++ {
		n := r.IntN(20000)
		src := make([]uint64, n)
		for i := range src {
			src[i] = r.Uint64() % 100
		}
		want, wantTotal := scanSeq(src)
		dst := make([]uint64, n)
		gotTotal := Scan(dst, src)
		if gotTotal != wantTotal {
			t.Fatalf("n=%d: total=%d want %d", n, gotTotal, wantTotal)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("n=%d: dst[%d]=%d want %d", n, i, dst[i], want[i])
			}
		}
	}
}

func TestScanInPlace(t *testing.T) {
	src := []uint32{3, 1, 4, 1, 5, 9, 2, 6}
	want := []uint32{0, 3, 4, 8, 9, 14, 23, 25}
	total := Scan(src, src)
	if total != 31 {
		t.Fatalf("total=%d want 31", total)
	}
	for i := range src {
		if src[i] != want[i] {
			t.Fatalf("src[%d]=%d want %d", i, src[i], want[i])
		}
	}
}

func TestScanInclusive(t *testing.T) {
	src := []int{1, 2, 3, 4}
	dst := make([]int, 4)
	total := ScanInclusive(dst, src)
	want := []int{1, 3, 6, 10}
	if total != 10 {
		t.Fatalf("total=%d want 10", total)
	}
	for i := range dst {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d]=%d want %d", i, dst[i], want[i])
		}
	}
	// Aliased form.
	total = ScanInclusive(src, src)
	if total != 10 {
		t.Fatalf("aliased total=%d want 10", total)
	}
	for i := range src {
		if src[i] != want[i] {
			t.Fatalf("aliased src[%d]=%d want %d", i, src[i], want[i])
		}
	}
}

// Property: Scan is the left inverse of adjacent differences.
func TestScanProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		src := make([]uint64, len(raw))
		for i, v := range raw {
			src[i] = uint64(v)
		}
		dst := make([]uint64, len(src))
		total := Scan(dst, src)
		want, wantTotal := scanSeq(src)
		if total != wantTotal {
			return false
		}
		for i := range dst {
			if dst[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterPreservesOrder(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 20; trial++ {
		n := r.IntN(30000)
		src := make([]int, n)
		for i := range src {
			src[i] = r.IntN(100)
		}
		pred := func(v int) bool { return v%3 == 0 }
		got := Filter(src, pred)
		var want []int
		for _, v := range src {
			if pred(v) {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("n=%d: len=%d want %d", n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("n=%d: got[%d]=%d want %d", n, i, got[i], want[i])
			}
		}
	}
}

func TestFilterProperty(t *testing.T) {
	f := func(src []int8) bool {
		got := Filter(src, func(v int8) bool { return v > 0 })
		var want []int8
		for _, v := range src {
			if v > 0 {
				want = append(want, v)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPackIndices(t *testing.T) {
	got := PackIndices(10, func(i int) bool { return i%4 == 0 })
	want := []uint32{0, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d]=%d want %d", i, got[i], want[i])
		}
	}
	if !sort.SliceIsSorted(got, func(a, b int) bool { return got[a] < got[b] }) {
		t.Fatal("PackIndices output not sorted")
	}
}

func TestMapFilter(t *testing.T) {
	got := MapFilter(10, func(i int) (int, bool) { return i * i, i%2 == 1 })
	want := []int{1, 9, 25, 49, 81}
	if len(got) != len(want) {
		t.Fatalf("len=%d want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("got[%d]=%d want %d", i, got[i], want[i])
		}
	}
	if out := MapFilter(0, func(i int) (int, bool) { return 0, true }); out != nil {
		t.Fatal("MapFilter(0) should be nil")
	}
}

func TestMapFilterLarge(t *testing.T) {
	n := 50000
	got := MapFilter(n, func(i int) (uint32, bool) { return uint32(i), i%7 == 0 })
	if len(got) != (n+6)/7 {
		t.Fatalf("len=%d want %d", len(got), (n+6)/7)
	}
	for i := range got {
		if got[i] != uint32(i*7) {
			t.Fatalf("got[%d]=%d want %d", i, got[i], i*7)
		}
	}
}

func TestWriteMinUint32(t *testing.T) {
	var x uint32 = 100
	if !WriteMinUint32(&x, 50) || x != 50 {
		t.Fatalf("WriteMin failed: x=%d", x)
	}
	if WriteMinUint32(&x, 50) {
		t.Fatal("WriteMin reported success on equal value")
	}
	if WriteMinUint32(&x, 60) || x != 50 {
		t.Fatalf("WriteMin increased value: x=%d", x)
	}
}

func TestWriteMinConcurrent(t *testing.T) {
	var x uint32 = 1 << 31
	n := 100000
	var successes int64
	For(n, 100, func(i int) {
		if WriteMinUint32(&x, uint32(rng.At(3, uint64(i))%1000000)) {
			atomic.AddInt64(&successes, 1)
		}
	})
	// The final value must be the global minimum of all attempted values.
	var want uint32 = 1 << 31
	for i := 0; i < n; i++ {
		v := uint32(rng.At(3, uint64(i)) % 1000000)
		if v < want {
			want = v
		}
	}
	if x != want {
		t.Fatalf("final=%d want %d", x, want)
	}
	if successes < 1 {
		t.Fatal("no successful writeMin")
	}
}

func TestWriteMaxUint32(t *testing.T) {
	var x uint32 = 10
	if !WriteMaxUint32(&x, 20) || x != 20 {
		t.Fatalf("WriteMax failed: x=%d", x)
	}
	if WriteMaxUint32(&x, 5) || x != 20 {
		t.Fatalf("WriteMax decreased value: x=%d", x)
	}
}

func TestWriteMinUint64(t *testing.T) {
	var x uint64 = 1 << 40
	if !WriteMinUint64(&x, 7) || x != 7 {
		t.Fatalf("WriteMinUint64 failed: x=%d", x)
	}
	if WriteMinUint64(&x, 8) {
		t.Fatal("WriteMinUint64 wrongly succeeded")
	}
}
