package parallel

import (
	"testing"
	"testing/quick"

	"julienne/internal/rng"
)

func TestSortByKeyBasic(t *testing.T) {
	xs := []uint64{5, 3, 9, 3, 0, 1 << 40, 7}
	SortByKey(xs, func(x uint64) uint64 { return x })
	if !IsSortedByKey(xs, func(x uint64) uint64 { return x }) {
		t.Fatalf("not sorted: %v", xs)
	}
	if xs[0] != 0 || xs[6] != 1<<40 {
		t.Fatalf("extremes wrong: %v", xs)
	}
}

func TestSortByKeyEmptyAndSingle(t *testing.T) {
	SortByKey([]int{}, func(int) uint64 { return 0 })
	one := []int{42}
	SortByKey(one, func(x int) uint64 { return uint64(x) })
	if one[0] != 42 {
		t.Fatal("single element disturbed")
	}
}

func TestSortByKeyAllEqual(t *testing.T) {
	xs := []int{7, 7, 7, 7}
	SortByKey(xs, func(int) uint64 { return 3 })
	for _, x := range xs {
		if x != 7 {
			t.Fatal("equal-key fast path corrupted data")
		}
	}
}

func TestSortByKeyStable(t *testing.T) {
	// Items with equal keys must keep input order.
	type rec struct {
		k uint64
		i int
	}
	n := 50000
	r := rng.New(4)
	xs := make([]rec, n)
	for i := range xs {
		xs[i] = rec{k: uint64(r.IntN(50)), i: i}
	}
	SortByKey(xs, func(x rec) uint64 { return x.k })
	for i := 1; i < n; i++ {
		if xs[i-1].k == xs[i].k && xs[i-1].i > xs[i].i {
			t.Fatalf("instability at %d", i)
		}
		if xs[i-1].k > xs[i].k {
			t.Fatalf("not sorted at %d", i)
		}
	}
}

func TestSortByKeyRandomSizes(t *testing.T) {
	r := rng.New(8)
	for _, n := range []int{2, 3, 100, 1023, 1024, 1025, 60000} {
		xs := make([]uint64, n)
		var sum uint64
		for i := range xs {
			xs[i] = r.Uint64()
			sum += xs[i]
		}
		SortByKey(xs, func(x uint64) uint64 { return x })
		if !IsSortedByKey(xs, func(x uint64) uint64 { return x }) {
			t.Fatalf("n=%d not sorted", n)
		}
		var sum2 uint64
		for _, x := range xs {
			sum2 += x
		}
		if sum != sum2 {
			t.Fatalf("n=%d elements lost", n)
		}
	}
}

func TestSortByKeyProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		xs := append([]uint32(nil), raw...)
		SortByKey(xs, func(x uint32) uint64 { return uint64(x) })
		if !IsSortedByKey(xs, func(x uint32) uint64 { return uint64(x) }) {
			return false
		}
		// Multiset preserved.
		counts := map[uint32]int{}
		for _, x := range raw {
			counts[x]++
		}
		for _, x := range xs {
			counts[x]--
		}
		for _, c := range counts {
			if c != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSortByKeyParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		r := rng.New(12)
		n := 300000
		xs := make([]uint64, n)
		for i := range xs {
			xs[i] = r.Uint64()
		}
		SortByKey(xs, func(x uint64) uint64 { return x })
		if !IsSortedByKey(xs, func(x uint64) uint64 { return x }) {
			t.Fatal("parallel sort failed")
		}
	})
}

func BenchmarkSortByKey(b *testing.B) {
	r := rng.New(1)
	n := 1 << 19
	base := make([]uint64, n)
	for i := range base {
		base[i] = r.Uint64()
	}
	xs := make([]uint64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(xs, base)
		SortByKey(xs, func(x uint64) uint64 { return x })
	}
	b.SetBytes(int64(n * 8))
}
