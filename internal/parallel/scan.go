package parallel

import "sync"

// Scan computes the exclusive prefix sum of src into dst and returns the
// total: dst[i] = src[0] + ... + src[i-1], dst[0] = 0. dst and src may be
// the same slice (the common in-place use). This is the Scan primitive of
// §2 specialized to +, which is the only operator the framework needs.
//
// The implementation is the standard two-pass blocked scan: a parallel
// pass computes per-block sums, a short sequential scan combines them into
// block offsets, and a second parallel pass writes the prefix sums. Work
// O(n), depth O(n/P + P).
func Scan[T Number](dst, src []T) T {
	n := len(src)
	if len(dst) != n {
		panic("parallel: Scan length mismatch")
	}
	if n == 0 {
		return 0
	}
	nb := numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize := (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	if nb == 1 || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}

	sums := make([]T, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			var acc T
			for i := lo; i < hi; i++ {
				acc += src[i]
			}
			sums[b] = acc
		}(b, lo, hi)
	}
	wg.Wait()

	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}

	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			acc := sums[b]
			for i := lo; i < hi; i++ {
				v := src[i]
				dst[i] = acc
				acc += v
			}
		}(b, lo, hi)
	}
	wg.Wait()
	return total
}

// ScanInclusive computes the inclusive prefix sum of src into dst and
// returns the total: dst[i] = src[0] + ... + src[i].
func ScanInclusive[T Number](dst, src []T) T {
	n := len(src)
	if len(dst) != n {
		panic("parallel: ScanInclusive length mismatch")
	}
	if n == 0 {
		return 0
	}
	// Exclusive scan into a scratch slice, then add src back in. The
	// scratch copy keeps the kernel correct when dst and src alias.
	tmp := make([]T, n)
	total := Scan(tmp, src)
	For(n, DefaultGrain, func(i int) {
		dst[i] = tmp[i] + src[i]
	})
	return total
}
