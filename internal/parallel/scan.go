package parallel

import "unsafe"

// scanBlocks computes the block decomposition shared by the scan
// kernels: at least DefaultGrain items per block and at most 4*Procs()
// blocks, the same worker cap every other primitive respects.
func scanBlocks(n int) (nb, blockSize int) {
	nb = numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize = (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	return nb, blockSize
}

// Scan computes the exclusive prefix sum of src into dst and returns the
// total: dst[i] = src[0] + ... + src[i-1], dst[0] = 0. dst and src may be
// the same slice (the common in-place use). This is the Scan primitive of
// §2 specialized to +, which is the only operator the framework needs.
//
// The implementation is the standard two-pass blocked scan: a parallel
// pass computes per-block sums, a short sequential scan combines them into
// block offsets, and a second parallel pass writes the prefix sums. Work
// O(n), depth O(n/P + P). Both passes run through the blocked-For worker
// machinery (so the 4*Procs goroutine cap holds) and the per-block sums
// live in a pooled scratch buffer, so steady-state calls allocate
// nothing beyond the fork-join bookkeeping.
func Scan[T Number](dst, src []T) T {
	n := len(src)
	if len(dst) != n {
		panic("parallel: Scan length mismatch")
	}
	if n == 0 {
		return 0
	}
	nb, blockSize := scanBlocks(n)
	if nb == 1 || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
		return acc
	}

	sb := GetScratch[T](nb)
	defer sb.Release()
	sums := sb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		var acc T
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[b] = acc
	})

	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}

	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			v := src[i]
			dst[i] = acc
			acc += v
		}
	})
	return total
}

// ScanInclusive computes the inclusive prefix sum of src into dst and
// returns the total: dst[i] = src[0] + ... + src[i].
//
// When dst and src are the same slice, or do not overlap at all, the
// scan runs directly into dst with no O(n) scratch: each block reads
// only its own range of src and writes only the same index range of
// dst, so in-place operation is race-free. Only a partial overlap
// (dst and src sharing memory at shifted offsets) falls back to a
// pooled scratch copy.
func ScanInclusive[T Number](dst, src []T) T {
	n := len(src)
	if len(dst) != n {
		panic("parallel: ScanInclusive length mismatch")
	}
	if n == 0 {
		return 0
	}
	if &dst[0] == &src[0] || !slicesOverlap(dst, src) {
		return scanInclusiveInto(dst, src)
	}
	// Partial overlap: writing dst[i] could clobber an src[j] (j != i)
	// another block has yet to read. Copy src out of harm's way first.
	tb := GetScratch[T](n)
	defer tb.Release()
	tmp := tb.S
	Blocked(n, DefaultGrain, func(lo, hi int) {
		copy(tmp[lo:hi], src[lo:hi])
	})
	return scanInclusiveInto(dst, tmp)
}

// scanInclusiveInto is the inclusive two-pass blocked scan. It requires
// that dst and src are either identical or fully disjoint: block b reads
// src[lo:hi] and writes dst[lo:hi] only.
func scanInclusiveInto[T Number](dst, src []T) T {
	n := len(src)
	nb, blockSize := scanBlocks(n)
	if nb == 1 || Procs() == 1 {
		var acc T
		for i := 0; i < n; i++ {
			acc += src[i]
			dst[i] = acc
		}
		return acc
	}

	sb := GetScratch[T](nb)
	defer sb.Release()
	sums := sb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		var acc T
		for i := lo; i < hi; i++ {
			acc += src[i]
		}
		sums[b] = acc
	})

	var total T
	for b := 0; b < nb; b++ {
		s := sums[b]
		sums[b] = total
		total += s
	}

	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		acc := sums[b]
		for i := lo; i < hi; i++ {
			acc += src[i]
			dst[i] = acc
		}
	})
	return total
}

// slicesOverlap reports whether a and b share any backing memory.
func slicesOverlap[T any](a, b []T) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	sz := unsafe.Sizeof(a[0])
	a0 := uintptr(unsafe.Pointer(&a[0]))
	b0 := uintptr(unsafe.Pointer(&b[0]))
	return a0 < b0+uintptr(len(b))*sz && b0 < a0+uintptr(len(a))*sz
}
