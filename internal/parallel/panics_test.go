package parallel_test

// Tests for the panic-containment half of the failure semantics
// (DESIGN.md §9): a panic in a caller-supplied callback running on any
// worker goroutine must re-raise as a single *parallel.PanicError on
// the calling goroutine — never crash the process from a worker, never
// deadlock the join, never leak a goroutine, and never strand a pooled
// scratch buffer.
//
// These tests live in package parallel_test (not parallel) so they can
// use the harness leak checker: harness imports parallel, so the
// internal test package would create an import cycle.

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"julienne/internal/harness"
	"julienne/internal/parallel"
	"julienne/internal/semisort"
)

// recoverPanicError runs f, expecting it to panic, and returns the
// recovered *parallel.PanicError (failing the test for a clean return
// or a non-PanicError value).
func recoverPanicError(t *testing.T, f func()) *parallel.PanicError {
	t.Helper()
	var pe *parallel.PanicError
	func() {
		defer func() {
			v := recover()
			if v == nil {
				t.Fatalf("expected a panic, got none")
			}
			var ok bool
			pe, ok = v.(*parallel.PanicError)
			if !ok {
				t.Fatalf("panic value is %T (%v), want *parallel.PanicError", v, v)
			}
		}()
		f()
	}()
	return pe
}

// checkScratchBalanced asserts the pool's get/put counters agree. All
// tests here are quiescent (no primitive mid-flight) when they call it.
func checkScratchBalanced(t *testing.T) {
	t.Helper()
	if b := parallel.ScratchStats(); !b.Balanced() {
		t.Errorf("scratch pool imbalance: %d gets, %d puts", b.Gets, b.Puts)
	}
}

// TestPanicContainmentAcceptance is the issue's acceptance scenario: a
// callback panic on a worker goroutine is re-raised exactly once on the
// caller, the process does not crash, all workers join (no goroutine
// leak), and the scratch pool is balanced afterwards.
func TestPanicContainmentAcceptance(t *testing.T) {
	defer harness.LeakCheck(t)()
	const n = 10_000
	sentinel := errors.New("boom at 4242")
	pe := recoverPanicError(t, func() {
		parallel.For(n, 1, func(i int) {
			if i == 4242 {
				panic(sentinel)
			}
		})
	})
	if pe.Value != sentinel {
		t.Errorf("PanicError.Value = %v, want the sentinel error", pe.Value)
	}
	if !errors.Is(pe, sentinel) {
		t.Errorf("errors.Is(pe, sentinel) = false, want true (Unwrap)")
	}
	if len(pe.Stack) == 0 {
		t.Errorf("PanicError.Stack is empty, want the panicking goroutine's stack")
	}
	checkScratchBalanced(t)
}

func TestPanicErrorUnwrapNonError(t *testing.T) {
	pe := recoverPanicError(t, func() {
		parallel.For(100, 1, func(i int) { panic("plain string") })
	})
	if pe.Unwrap() != nil {
		t.Errorf("Unwrap of a non-error panic value = %v, want nil", pe.Unwrap())
	}
	if pe.Value != "plain string" {
		t.Errorf("Value = %v, want the original string", pe.Value)
	}
}

// TestPanicNotDoubleWrapped pins that a panic crossing two nested
// parallel regions surfaces as one *PanicError wrapping the original
// value, not a PanicError of a PanicError.
func TestPanicNotDoubleWrapped(t *testing.T) {
	defer harness.LeakCheck(t)()
	pe := recoverPanicError(t, func() {
		parallel.Do(
			func() {
				parallel.For(1000, 1, func(i int) {
					if i == 500 {
						panic("inner")
					}
				})
			},
			func() {},
		)
	})
	if pe.Value != "inner" {
		t.Errorf("Value = %v (%T), want the innermost panic value", pe.Value, pe.Value)
	}
}

// TestMultiplePanicsSingleRethrow: when several workers panic in the
// same region, exactly one PanicError surfaces.
func TestMultiplePanicsSingleRethrow(t *testing.T) {
	defer harness.LeakCheck(t)()
	pe := recoverPanicError(t, func() {
		parallel.For(10_000, 1, func(i int) { panic(i) })
	})
	if _, ok := pe.Value.(int); !ok {
		t.Errorf("Value = %v (%T), want one of the int panic values", pe.Value, pe.Value)
	}
}

// TestDoInlineThunkPanicJoinsWorkers: Do runs thunks[0] on the caller;
// a panic there must still wait for the spawned thunks before
// re-raising, so their effects are visible afterwards.
func TestDoInlineThunkPanicJoinsWorkers(t *testing.T) {
	defer harness.LeakCheck(t)()
	var other atomic.Bool
	pe := recoverPanicError(t, func() {
		parallel.Do(
			func() { panic("inline") },
			func() { other.Store(true) },
		)
	})
	if pe.Value != "inline" {
		t.Errorf("Value = %v, want the inline thunk's panic", pe.Value)
	}
	if !other.Load() {
		t.Errorf("spawned thunk did not complete before the re-raise")
	}
}

// panicAtEveryOffset runs the region repeatedly, panicking at each
// successive callback invocation, and checks containment + scratch
// balance every time. region invokes its callback some number of times
// per run; cb panics when the shared counter hits the arranged offset.
func panicAtEveryOffset(t *testing.T, name string, calls int, region func(cb func())) {
	t.Helper()
	// Cap the sweep so the quadratic total stays fast; the interesting
	// offsets (first call, block boundaries, last call) are covered by
	// striding from both ends.
	offsets := make([]int, 0, 64)
	for i := 0; i < calls && len(offsets) < 32; i += 1 + calls/32 {
		offsets = append(offsets, i)
	}
	offsets = append(offsets, calls-1)
	for _, off := range offsets {
		var count atomic.Int64
		target := int64(off)
		pe := recoverPanicError(t, func() {
			region(func() {
				if count.Add(1)-1 == target {
					panic(fmt.Sprintf("%s@%d", name, off))
				}
			})
		})
		if pe == nil {
			t.Fatalf("%s offset %d: no PanicError", name, off)
		}
		if b := parallel.ScratchStats(); !b.Balanced() {
			t.Fatalf("%s offset %d: scratch imbalance %d gets %d puts",
				name, off, b.Gets, b.Puts)
		}
	}
}

// TestScratchBalanceUnderPanicEverywhere pins the satellite: for every
// primitive that borrows pooled scratch, a callback panic at every
// injection offset leaves GetScratch/Release counts equal.
func TestScratchBalanceUnderPanicEverywhere(t *testing.T) {
	defer harness.LeakCheck(t)()
	const n = 4096
	in := make([]uint32, n)
	for i := range in {
		in[i] = uint32(i)
	}
	buf := make([]uint32, 0, n)
	pairs := make([]semisort.Pair[uint32], n)
	for i := range pairs {
		pairs[i] = semisort.Pair[uint32]{Key: uint32(i % 61), Value: uint32(i)}
	}
	out := make([]semisort.Pair[uint32], n)

	cases := []struct {
		name   string
		calls  int
		region func(cb func())
	}{
		{"For", n, func(cb func()) {
			parallel.For(n, 1, func(i int) { cb() })
		}},
		{"Blocked", n, func(cb func()) {
			parallel.Blocked(n, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					cb()
				}
			})
		}},
		{"Workers", n, func(cb func()) {
			parallel.Workers(n, func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					cb()
				}
			})
		}},
		// Scan and the semisort take no user callback, so their deferred
		// releases cannot be unwound by user code directly (the chaos
		// harness injects panics inside their workers instead). Here a
		// sibling thunk panics while they hold scratch, checking the
		// panic joins them and the balance holds; cb fires once per run.
		{"Scan", 1, func(cb func()) {
			dst := make([]uint32, n)
			src := make([]uint32, n)
			parallel.Do(func() { parallel.Scan(dst, src) }, cb)
		}},
		{"Filter", n, func(cb func()) {
			parallel.Filter(in, func(v uint32) bool { cb(); return v%2 == 0 })
		}},
		{"FilterInto", n, func(cb func()) {
			parallel.FilterInto(buf, in, func(v uint32) bool { cb(); return v%2 == 0 })
		}},
		{"FilterAppend", n, func(cb func()) {
			parallel.FilterAppend(buf[:0], in, func(v uint32) bool { cb(); return v%2 == 0 })
		}},
		{"MapFilter", n, func(cb func()) {
			parallel.MapFilter(n, func(i int) (uint32, bool) { cb(); return uint32(i), i%3 == 0 })
		}},
		{"PackIndices", n, func(cb func()) {
			parallel.PackIndices(n, func(i int) bool { cb(); return i%2 == 0 })
		}},
		{"Reduce", n, func(cb func()) {
			parallel.Sum(n, 1, func(i int) int64 { cb(); return int64(i) })
		}},
		{"SortByKey", n, func(cb func()) {
			tmp := append([]uint32(nil), in...)
			parallel.SortByKey(tmp, func(v uint32) uint64 { cb(); return uint64(v ^ 0x5a5a) })
		}},
		{"Semisort", 1, func(cb func()) {
			tmp := append([]semisort.Pair[uint32](nil), pairs...)
			parallel.Do(func() { semisort.PairsInto(out, tmp) }, cb)
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			panicAtEveryOffset(t, tc.name, tc.calls, tc.region)
		})
	}
}
