package parallel

import "sync"

// Filter returns the elements of src satisfying pred, in their original
// order (the Filter primitive of §2). Work O(n), depth O(n/P + P).
func Filter[T any](src []T, pred func(T) bool) []T {
	return FilterIndex(src, func(_ int, v T) bool { return pred(v) })
}

// FilterIndex is Filter where the predicate also sees the element index.
// pred must be pure: it is evaluated twice per element (count pass and
// copy pass), which avoids buffering survivors per block.
func FilterIndex[T any](src []T, pred func(i int, v T) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	nb := numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize := (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	if nb == 1 || Procs() == 1 {
		out := make([]T, 0, n/4+4)
		for i, v := range src {
			if pred(i, v) {
				out = append(out, v)
			}
		}
		return out
	}

	// Pass 1: count survivors per block.
	counts := make([]int, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			c := 0
			for i := lo; i < hi; i++ {
				if pred(i, src[i]) {
					c++
				}
			}
			counts[b] = c
		}(b, lo, hi)
	}
	wg.Wait()

	total := 0
	for b := 0; b < nb; b++ {
		c := counts[b]
		counts[b] = total
		total += c
	}
	out := make([]T, total)

	// Pass 2: each block copies its survivors to its reserved range.
	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			o := counts[b]
			for i := lo; i < hi; i++ {
				if pred(i, src[i]) {
					out[o] = src[i]
					o++
				}
			}
		}(b, lo, hi)
	}
	wg.Wait()
	return out
}

// PackIndices returns, in increasing order, the indices i in [0, n) for
// which pred(i) is true. It is the "pack" step used after mapping an
// indicator function, e.g. to find bucket boundaries after a semisort.
func PackIndices(n int, pred func(i int) bool) []uint32 {
	idx := make([]uint32, n)
	For(n, DefaultGrain, func(i int) { idx[i] = uint32(i) })
	return FilterIndex(idx, func(i int, _ uint32) bool { return pred(i) })
}

// MapFilter applies f to every index in [0, n) and keeps the values for
// which f reports ok, preserving index order. It fuses a map with a
// filter so callers avoid materializing the mapped slice.
func MapFilter[T any](n int, f func(i int) (T, bool)) []T {
	if n == 0 {
		return nil
	}
	nb := numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize := (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	if nb == 1 || Procs() == 1 {
		out := make([]T, 0, n/4+4)
		for i := 0; i < n; i++ {
			if v, ok := f(i); ok {
				out = append(out, v)
			}
		}
		return out
	}
	parts := make([][]T, nb)
	var wg sync.WaitGroup
	for b := 0; b < nb; b++ {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		wg.Add(1)
		go func(b, lo, hi int) {
			defer wg.Done()
			var part []T
			for i := lo; i < hi; i++ {
				if v, ok := f(i); ok {
					part = append(part, v)
				}
			}
			parts[b] = part
		}(b, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	out := make([]T, 0, total)
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}
