package parallel

// filterBlocks mirrors scanBlocks for the filter kernels.
func filterBlocks(n int) (nb, blockSize int) {
	nb = numBlocks(n, DefaultGrain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	blockSize = (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	return nb, blockSize
}

// Filter returns the elements of src satisfying pred, in their original
// order (the Filter primitive of §2). Work O(n), depth O(n/P + P).
func Filter[T any](src []T, pred func(T) bool) []T {
	return FilterIndex(src, func(_ int, v T) bool { return pred(v) })
}

// FilterInto filters src into buf's storage and returns the survivors
// in their original order. buf's contents are overwritten and its
// backing array is grown as needed (only its capacity matters); buf and
// src must not overlap. Callers that filter every round pass the same
// buffer back in and reach a steady state with zero allocations — the
// bucket structure's NextBucket compaction is the motivating use.
func FilterInto[T any](buf, src []T, pred func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return buf[:0]
	}
	if cap(buf) < n {
		buf = make([]T, 0, n)
	}
	// The sequential path calls pred outside any worker wrapper, so it
	// wraps panics itself to keep the re-raised value uniform (the
	// parallel path inherits containment from For).
	defer rewrapPanic()
	nb, blockSize := filterBlocks(n)
	if nb == 1 || Procs() == 1 {
		out := buf[:0]
		for _, v := range src {
			if pred(v) {
				out = append(out, v)
			}
		}
		return out
	}

	cb := GetScratch[int](nb)
	defer cb.Release()
	counts := cb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		c := 0
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				c++
			}
		}
		counts[b] = c
	})
	total := 0
	for b := 0; b < nb; b++ {
		c := counts[b]
		counts[b] = total
		total += c
	}
	out := buf[:total]
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		o := counts[b]
		for i := lo; i < hi; i++ {
			if pred(src[i]) {
				out[o] = src[i]
				o++
			}
		}
	})
	return out
}

// FilterAppend appends src's survivors to buf (after its existing
// elements, growing the backing array as needed) and returns the
// extended slice. buf and src must not overlap. Like FilterInto it
// reaches a zero-allocation steady state when the caller passes the
// same buffer back every round; the bucket structure uses it to compact
// a slot stored as multiple chunks into one contiguous result.
func FilterAppend[T any](buf, src []T, pred func(T) bool) []T {
	n := len(src)
	if n == 0 {
		return buf
	}
	base := len(buf)
	if cap(buf) < base+n {
		grown := make([]T, base, max(base+n, 2*cap(buf)))
		copy(grown, buf)
		buf = grown
	}
	out := FilterInto(buf[base:base:cap(buf)], src, pred)
	return buf[:base+len(out)]
}

// FilterIndex is Filter where the predicate also sees the element index.
// pred must be pure: it is evaluated twice per element (count pass and
// copy pass), which avoids buffering survivors per block.
func FilterIndex[T any](src []T, pred func(i int, v T) bool) []T {
	n := len(src)
	if n == 0 {
		return nil
	}
	defer rewrapPanic() // sequential path calls pred unwrapped
	nb, blockSize := filterBlocks(n)
	if nb == 1 || Procs() == 1 {
		out := make([]T, 0, n/4+4)
		for i, v := range src {
			if pred(i, v) {
				out = append(out, v)
			}
		}
		return out
	}

	// Pass 1: count survivors per block.
	cb := GetScratch[int](nb)
	defer cb.Release()
	counts := cb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		c := 0
		for i := lo; i < hi; i++ {
			if pred(i, src[i]) {
				c++
			}
		}
		counts[b] = c
	})

	total := 0
	for b := 0; b < nb; b++ {
		c := counts[b]
		counts[b] = total
		total += c
	}
	out := make([]T, total)

	// Pass 2: each block copies its survivors to its reserved range.
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		o := counts[b]
		for i := lo; i < hi; i++ {
			if pred(i, src[i]) {
				out[o] = src[i]
				o++
			}
		}
	})
	return out
}

// PackIndices returns, in increasing order, the indices i in [0, n) for
// which pred(i) is true. It is the "pack" step used after mapping an
// indicator function, e.g. to find bucket boundaries after a semisort.
func PackIndices(n int, pred func(i int) bool) []uint32 {
	ib := GetScratch[uint32](n)
	defer ib.Release()
	idx := ib.S
	For(n, DefaultGrain, func(i int) { idx[i] = uint32(i) })
	return FilterIndex(idx, func(i int, _ uint32) bool { return pred(i) })
}

// MapFilter applies f to every index in [0, n) and keeps the values for
// which f reports ok, preserving index order. It fuses a map with a
// filter so callers avoid materializing the mapped slice.
func MapFilter[T any](n int, f func(i int) (T, bool)) []T {
	if n == 0 {
		return nil
	}
	out, _ := mapFilterInto[T](nil, n, f)
	return out
}

// MapFilterInto is MapFilter writing into buf's storage (contents
// overwritten, backing array grown as needed). Round-based callers pass
// the returned slice back in next round to reach an allocation-free
// steady state.
func MapFilterInto[T any](buf []T, n int, f func(i int) (T, bool)) []T {
	if n == 0 {
		return buf[:0]
	}
	out, _ := mapFilterInto(buf, n, f)
	return out
}

// mapFilterInto collects the survivors of f over [0, n), preferring
// buf's storage when it is large enough. It reports whether the result
// lives in buf.
func mapFilterInto[T any](buf []T, n int, f func(i int) (T, bool)) ([]T, bool) {
	defer rewrapPanic() // sequential path calls f unwrapped
	nb, blockSize := filterBlocks(n)
	if nb == 1 || Procs() == 1 {
		out := buf[:0]
		if cap(out) == 0 {
			out = make([]T, 0, n/4+4)
		}
		for i := 0; i < n; i++ {
			if v, ok := f(i); ok {
				out = append(out, v)
			}
		}
		return out, true
	}
	// Per-block survivor buffers come from the pool and keep their
	// capacity across calls, so repeated MapFilters stop allocating once
	// the per-block high-water marks are reached.
	pb := GetScratch[[]T](nb)
	defer pb.Release()
	parts := pb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		part := parts[b][:0]
		for i := lo; i < hi; i++ {
			if v, ok := f(i); ok {
				part = append(part, v)
			}
		}
		parts[b] = part
	})
	total := 0
	for b := 0; b < nb; b++ {
		total += len(parts[b])
	}
	var out []T
	fromBuf := cap(buf) >= total
	if fromBuf {
		out = buf[:0]
	} else {
		out = make([]T, 0, total)
	}
	for b := 0; b < nb; b++ {
		out = append(out, parts[b]...)
	}
	return out, fromBuf
}
