package parallel

import (
	"reflect"
	"sync"
	"sync/atomic"
)

// This file implements the pooled scratch buffers behind the
// allocation-free steady state of the sequence primitives. Every
// primitive that needs per-call temporary storage (block sums in Scan,
// per-block survivor counts in Filter, per-block output buffers in
// MapFilter, partial results in Reduce) borrows it from a type-indexed
// sync.Pool instead of allocating, so a hot loop that calls the same
// primitive every round reaches a steady state with no per-round
// garbage — the property the paper's work bounds implicitly assume and
// GBBS identifies as a large constant-factor win in practice.
//
// Buffers are handed out as *Scratch[T] rather than []T so the
// round-trip through the pool moves a single pointer and never re-boxes
// a slice header (which would itself allocate).

// Scratch is a pooled scratch buffer. S has the length requested from
// GetScratch and arbitrary contents; callers that need zeroed memory
// must clear it themselves.
type Scratch[T any] struct {
	S []T
}

// scratchPools maps the element type of a scratch buffer to the
// sync.Pool holding buffers of that type. The per-type lookup is one
// allocation-free sync.Map read.
var scratchPools sync.Map // reflect.Type -> *sync.Pool

func poolOf[T any]() *sync.Pool {
	key := reflect.TypeFor[T]()
	if p, ok := scratchPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := scratchPools.LoadOrStore(key, &sync.Pool{
		New: func() any { return new(Scratch[T]) },
	})
	return p.(*sync.Pool)
}

// scratchGets/scratchPuts count pool borrows and returns. Every
// GetScratch site in the repository pairs with a deferred Release, so
// at any quiescent point (no parallel primitive mid-flight) the two
// counters are equal — even after a contained panic unwound the region
// that held the buffer. The failure-semantics tests pin exactly that
// invariant; the counters are two uncontended atomic adds next to the
// sync.Map lookup the pool already pays, and the hot loops borrow
// scratch once per round, not per element.
var scratchGets, scratchPuts atomic.Int64

// ScratchBalance is a snapshot of the pool's borrow/return traffic.
type ScratchBalance struct {
	Gets, Puts int64
}

// Balanced reports whether every borrowed buffer has been returned.
func (b ScratchBalance) Balanced() bool { return b.Gets == b.Puts }

// ScratchStats returns the cumulative GetScratch/Release counts. Only
// meaningful at quiescent points: a primitive mid-call legitimately
// holds unreleased scratch.
func ScratchStats() ScratchBalance {
	// Read puts first: a concurrent borrow-then-release between the two
	// loads can then only show Gets >= Puts, never a phantom imbalance
	// in the direction the tests assert on.
	puts := scratchPuts.Load()
	gets := scratchGets.Load()
	return ScratchBalance{Gets: gets, Puts: puts}
}

// GetScratch borrows a scratch buffer of length n (contents arbitrary)
// from the pool for T. Release it when done; a buffer that is never
// released is simply garbage-collected (but still counts against
// ScratchStats balance, which is the point — Release on all paths).
func GetScratch[T any](n int) *Scratch[T] {
	s := poolOf[T]().Get().(*Scratch[T])
	if cap(s.S) < n {
		s.S = make([]T, n)
	}
	s.S = s.S[:n]
	scratchGets.Add(1)
	return s
}

// Release returns the buffer to its pool. The caller must not use S
// after releasing.
func (s *Scratch[T]) Release() {
	if s == nil {
		return
	}
	scratchPuts.Add(1)
	poolOf[T]().Put(s)
}
