package parallel

import (
	"reflect"
	"sync"
)

// This file implements the pooled scratch buffers behind the
// allocation-free steady state of the sequence primitives. Every
// primitive that needs per-call temporary storage (block sums in Scan,
// per-block survivor counts in Filter, per-block output buffers in
// MapFilter, partial results in Reduce) borrows it from a type-indexed
// sync.Pool instead of allocating, so a hot loop that calls the same
// primitive every round reaches a steady state with no per-round
// garbage — the property the paper's work bounds implicitly assume and
// GBBS identifies as a large constant-factor win in practice.
//
// Buffers are handed out as *Scratch[T] rather than []T so the
// round-trip through the pool moves a single pointer and never re-boxes
// a slice header (which would itself allocate).

// Scratch is a pooled scratch buffer. S has the length requested from
// GetScratch and arbitrary contents; callers that need zeroed memory
// must clear it themselves.
type Scratch[T any] struct {
	S []T
}

// scratchPools maps the element type of a scratch buffer to the
// sync.Pool holding buffers of that type. The per-type lookup is one
// allocation-free sync.Map read.
var scratchPools sync.Map // reflect.Type -> *sync.Pool

func poolOf[T any]() *sync.Pool {
	key := reflect.TypeFor[T]()
	if p, ok := scratchPools.Load(key); ok {
		return p.(*sync.Pool)
	}
	p, _ := scratchPools.LoadOrStore(key, &sync.Pool{
		New: func() any { return new(Scratch[T]) },
	})
	return p.(*sync.Pool)
}

// GetScratch borrows a scratch buffer of length n (contents arbitrary)
// from the pool for T. Release it when done; a buffer that is never
// released is simply garbage-collected.
func GetScratch[T any](n int) *Scratch[T] {
	s := poolOf[T]().Get().(*Scratch[T])
	if cap(s.S) < n {
		s.S = make([]T, n)
	}
	s.S = s.S[:n]
	return s
}

// Release returns the buffer to its pool. The caller must not use S
// after releasing.
func (s *Scratch[T]) Release() {
	if s == nil {
		return
	}
	poolOf[T]().Put(s)
}
