package parallel

import (
	"fmt"
	"runtime/debug"
	"sync/atomic"
)

// This file is the panic-containment half of the substrate's failure
// semantics (DESIGN.md §9). The contract every fork-join primitive in
// this package honors:
//
//   - a panic in a user callback never escapes from a non-caller
//     goroutine (which would crash the whole process: Go terminates on
//     any unrecovered panic, whichever goroutine it is on);
//   - all workers of the region are joined before the panic resurfaces,
//     so no goroutine outlives the call that spawned it;
//   - the panic re-raised on the caller is a single *PanicError wrapping
//     the first captured value and its worker stack, regardless of how
//     many workers panicked;
//   - pooled scratch held across the region is released on the unwind
//     path (every GetScratch in this repository is paired with a
//     deferred Release), so a contained panic leaves the pool balanced.
//
// Sequential fallback paths wrap panics the same way, so callers see
// one contract at every GOMAXPROCS.

// PanicError is a panic captured in a parallel region and re-raised on
// the calling goroutine. Value is the original panic value; Stack is
// the panicking worker's stack at capture time (the caller's own stack,
// which the runtime prints, would otherwise end at the fork point).
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: panic in parallel region: %v", e.Value)
}

// Unwrap exposes an error panic value to errors.Is/As chains.
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// wrapPanic boxes a recovered value, passing through values that are
// already wrapped so nested regions re-raise the innermost capture
// unchanged (one wrap, one stack, however deep the nesting).
func wrapPanic(v any) *PanicError {
	if pe, ok := v.(*PanicError); ok {
		return pe
	}
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// rewrapPanic, used as `defer rewrapPanic()`, converts an in-flight
// panic on the current goroutine to the wrapped form. It backs the
// sequential paths of the primitives (open-coded defer: no allocation
// on the non-panicking path, which the zero-alloc steady-state tests
// pin).
func rewrapPanic() {
	if v := recover(); v != nil {
		panic(wrapPanic(v))
	}
}

// panicCatcher collects the first panic of a group of worker
// goroutines. Workers register `defer pc.recoverPanic()` before any
// user code runs; the forking goroutine calls rethrow after the join.
// The deferred recover runs while the worker's frames are still live,
// so the captured stack includes the true panic site.
type panicCatcher struct {
	first atomic.Pointer[PanicError]
}

// recoverPanic is the worker-side recover wrapper. It must be deferred
// directly (`defer pc.recoverPanic()`) so recover() sees the worker's
// own panic.
func (pc *panicCatcher) recoverPanic() {
	if v := recover(); v != nil {
		pc.first.CompareAndSwap(nil, wrapPanic(v))
	}
}

// protect runs f on the current goroutine under the same capture the
// workers use; Do applies it to the thunk it runs inline so the join
// always completes before any panic resurfaces.
func (pc *panicCatcher) protect(f func()) {
	defer pc.recoverPanic()
	f()
}

// rethrow re-raises the captured panic, if any, on the calling
// goroutine. It must only be called after all workers have joined.
func (pc *panicCatcher) rethrow() {
	if pe := pc.first.Load(); pe != nil {
		panic(pe)
	}
}
