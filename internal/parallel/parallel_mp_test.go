package parallel

import (
	"sync/atomic"
	"testing"

	"julienne/internal/rng"
)

// withProcs runs f with GOMAXPROCS temporarily raised so the
// goroutine-spawning branches of every kernel execute even on
// single-CPU machines (goroutines still interleave on one core).
func withProcs(t *testing.T, p int, f func()) {
	t.Helper()
	old := SetProcs(p)
	defer SetProcs(old)
	f()
}

func TestBlockedParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		for _, n := range []int{1, 7, 4096, 100001} {
			hits := make([]int32, n)
			Blocked(n, 64, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d index %d hit %d times", n, i, h)
				}
			}
		}
	})
}

func TestDoParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		var count int32
		Do(
			func() { atomic.AddInt32(&count, 1) },
			func() { atomic.AddInt32(&count, 2) },
			func() { atomic.AddInt32(&count, 4) },
		)
		if count != 7 {
			t.Fatalf("count=%d", count)
		}
	})
}

func TestWorkersParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 10000
		hits := make([]int32, n)
		workers := map[int]bool{}
		var mu int32
		Workers(n, func(w, lo, hi int) {
			for atomic.CompareAndSwapInt32(&mu, 0, 1) == false {
			}
			workers[w] = true
			atomic.StoreInt32(&mu, 0)
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("index %d hit %d times", i, h)
			}
		}
		if len(workers) < 2 {
			t.Fatalf("expected multiple workers, got %v", workers)
		}
	})
}

func TestReduceParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 100000
		want := int64(n) * int64(n-1) / 2
		got := Sum(n, 100, func(i int) int64 { return int64(i) })
		if got != want {
			t.Fatalf("Sum=%d want %d", got, want)
		}
		if Max(n, 100, func(i int) int { return i }) != n-1 {
			t.Fatal("Max wrong")
		}
	})
}

func TestScanParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		r := rng.New(3)
		for trial := 0; trial < 10; trial++ {
			n := 10000 + r.IntN(50000)
			src := make([]uint64, n)
			for i := range src {
				src[i] = r.Uint64() % 50
			}
			want, wantTotal := scanSeq(src)
			dst := make([]uint64, n)
			total := Scan(dst, src)
			if total != wantTotal {
				t.Fatalf("total %d want %d", total, wantTotal)
			}
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("dst[%d]", i)
				}
			}
		}
	})
}

func TestFilterParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 200000
		src := make([]int, n)
		for i := range src {
			src[i] = i
		}
		got := Filter(src, func(v int) bool { return v%5 == 0 })
		if len(got) != (n+4)/5 {
			t.Fatalf("len=%d", len(got))
		}
		for i, v := range got {
			if v != i*5 {
				t.Fatalf("got[%d]=%d (order broken)", i, v)
			}
		}
	})
}

func TestMapFilterParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 150000
		got := MapFilter(n, func(i int) (int, bool) { return -i, i%3 == 0 })
		if len(got) != (n+2)/3 {
			t.Fatalf("len=%d", len(got))
		}
		for i, v := range got {
			if v != -i*3 {
				t.Fatalf("got[%d]=%d", i, v)
			}
		}
	})
}

func TestScanInclusiveParallelPath(t *testing.T) {
	withProcs(t, 4, func() {
		n := 60000
		src := make([]int64, n)
		for i := range src {
			src[i] = 1
		}
		dst := make([]int64, n)
		if total := ScanInclusive(dst, src); total != int64(n) {
			t.Fatalf("total=%d", total)
		}
		for i := range dst {
			if dst[i] != int64(i+1) {
				t.Fatalf("dst[%d]=%d", i, dst[i])
			}
		}
	})
}
