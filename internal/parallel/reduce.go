package parallel

// Number is the constraint satisfied by the numeric types the sequence
// primitives operate on. (Float types are deliberately excluded from Scan
// because parallel reassociation changes float results; none of the
// algorithms in this repository scan floats.)
type Number interface {
	~int | ~int8 | ~int16 | ~int32 | ~int64 |
		~uint | ~uint8 | ~uint16 | ~uint32 | ~uint64 | ~uintptr
}

// Reduce combines f(i) for i in [0, n) with the associative operator op,
// starting from the identity element id. Work O(n), depth O(log n) in the
// abstract model; here each block reduces sequentially and the (few) block
// results are combined sequentially.
func Reduce[T any](n, grain int, id T, f func(i int) T, op func(a, b T) T) T {
	if n <= 0 {
		return id
	}
	defer rewrapPanic() // sequential path calls f/op unwrapped
	nb := numBlocks(n, grain)
	if p := 4 * Procs(); nb > p {
		nb = p
	}
	if nb == 1 || Procs() == 1 {
		acc := id
		for i := 0; i < n; i++ {
			acc = op(acc, f(i))
		}
		return acc
	}
	blockSize := (n + nb - 1) / nb
	nb = (n + blockSize - 1) / blockSize
	pb := GetScratch[T](nb)
	defer pb.Release()
	partial := pb.S
	For(nb, 1, func(b int) {
		lo, hi := b*blockSize, min((b+1)*blockSize, n)
		acc := id
		for i := lo; i < hi; i++ {
			acc = op(acc, f(i))
		}
		partial[b] = acc
	})
	acc := id
	for _, v := range partial {
		acc = op(acc, v)
	}
	return acc
}

// Sum returns the sum of f(i) for i in [0, n).
func Sum[T Number](n, grain int, f func(i int) T) T {
	return Reduce(n, grain, T(0), f, func(a, b T) T { return a + b })
}

// SumSlice returns the sum of the elements of s.
func SumSlice[T Number](s []T) T {
	return Sum(len(s), 0, func(i int) T { return s[i] })
}

// Count returns the number of i in [0, n) for which pred(i) is true.
func Count(n, grain int, pred func(i int) bool) int {
	return Sum(n, grain, func(i int) int {
		if pred(i) {
			return 1
		}
		return 0
	})
}

// Max returns the maximum of f(i) over [0, n); n must be positive.
func Max[T Number](n, grain int, f func(i int) T) T {
	if n <= 0 {
		panic("parallel: Max over empty range")
	}
	return Reduce(n, grain, f(0), f, func(a, b T) T {
		if a > b {
			return a
		}
		return b
	})
}

// Min returns the minimum of f(i) over [0, n); n must be positive.
func Min[T Number](n, grain int, f func(i int) T) T {
	if n <= 0 {
		panic("parallel: Min over empty range")
	}
	return Reduce(n, grain, f(0), f, func(a, b T) T {
		if a < b {
			return a
		}
		return b
	})
}

// Any reports whether pred(i) holds for at least one i in [0, n).
// It does not short-circuit across blocks (the loops it guards are cheap),
// but it does short-circuit within each block.
func Any(n, grain int, pred func(i int) bool) bool {
	found := Reduce(n, grain, false,
		func(i int) bool { return pred(i) },
		func(a, b bool) bool { return a || b })
	return found
}
