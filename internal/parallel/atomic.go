package parallel

import "sync/atomic"

// This file provides the two atomic primitives the paper assumes in its
// model (§2): compare-and-swap and writeMin (priority update). Both take
// O(1) work in the model; writeMin is implemented as the usual CAS loop
// that only retries while it would still improve the stored value, the
// "priority update" of Shun et al. [52] that the paper cites for low
// contention in practice.

// CASUint32 atomically replaces *addr with newV if it currently holds
// oldV, reporting whether the swap happened.
func CASUint32(addr *uint32, oldV, newV uint32) bool {
	return atomic.CompareAndSwapUint32(addr, oldV, newV)
}

// WriteMinUint32 atomically updates *addr to min(*addr, val) and reports
// whether it strictly decreased the stored value.
func WriteMinUint32(addr *uint32, val uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// WriteMaxUint32 atomically updates *addr to max(*addr, val) and reports
// whether it strictly increased the stored value.
func WriteMaxUint32(addr *uint32, val uint32) bool {
	for {
		old := atomic.LoadUint32(addr)
		if val <= old {
			return false
		}
		if atomic.CompareAndSwapUint32(addr, old, val) {
			return true
		}
	}
}

// WriteMinUint64 atomically updates *addr to min(*addr, val) and reports
// whether it strictly decreased the stored value.
func WriteMinUint64(addr *uint64, val uint64) bool {
	for {
		old := atomic.LoadUint64(addr)
		if val >= old {
			return false
		}
		if atomic.CompareAndSwapUint64(addr, old, val) {
			return true
		}
	}
}

// AddInt64 is a convenience wrapper over atomic.AddInt64 used by the
// operation counters in the work-efficiency experiments.
func AddInt64(addr *int64, delta int64) int64 {
	return atomic.AddInt64(addr, delta)
}

// AddUint32 is an atomic fetch-and-add returning the new value.
func AddUint32(addr *uint32, delta uint32) uint32 {
	return atomic.AddUint32(addr, delta)
}

// LoadUint32 is a convenience wrapper over atomic.LoadUint32.
func LoadUint32(addr *uint32) uint32 { return atomic.LoadUint32(addr) }

// StoreUint32 is a convenience wrapper over atomic.StoreUint32.
func StoreUint32(addr *uint32, v uint32) { atomic.StoreUint32(addr, v) }
