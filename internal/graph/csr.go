package graph

import (
	"fmt"
	"sync"
	"sync/atomic"

	"julienne/internal/parallel"
)

// CSR is the compressed-sparse-row graph. Out-adjacency is always
// present; for directed graphs the in-adjacency (transpose) is built on
// demand and cached, since only the dense/pull edge-map traversal needs
// it. A symmetric CSR aliases its in-adjacency to its out-adjacency.
//
// CSR additionally supports in-place out-edge packing (PackOut), which
// approximate set cover uses to drop edges to covered elements: each
// vertex's live adjacency is the prefix of its CSR range of length
// outDeg[v], and m tracks the total live edge count.
type CSR struct {
	m         int64 // live directed edge count (atomic under PackOut); first field so it stays 8-aligned on 32-bit
	n         int
	outOff    []uint64 // len n+1; outOff[v]..outOff[v+1] bound v's range
	outEdg    []Vertex
	outWgt    []Weight // nil for unweighted graphs
	outDeg    []uint32 // live out-degree (= range length until packed)
	inOff     []uint64 // nil until transposed (aliases out* if symmetric)
	inEdg     []Vertex
	inWgt     []Weight
	inOnce    sync.Once // guards the lazy transpose build
	symmetric bool
	packed    atomic.Bool // set once PackOut has run (invalidates transpose)
}

var (
	_ Graph  = (*CSR)(nil)
	_ Packer = (*CSR)(nil)
)

// addUint64 is an atomic fetch-and-add returning the new value.
func addUint64(addr *uint64, delta uint64) uint64 {
	return atomic.AddUint64(addr, delta)
}

// NewCSR assembles a CSR from raw offset/edge arrays. offsets must have
// length n+1 with offsets[0] == 0 and offsets[n] == len(edges); weights
// must be nil or parallel to edges. The arrays are adopted, not copied.
func NewCSR(n int, offsets []uint64, edges []Vertex, weights []Weight, symmetric bool) *CSR {
	if len(offsets) != n+1 {
		panic(fmt.Sprintf("graph: offsets has length %d, want %d", len(offsets), n+1))
	}
	if offsets[0] != 0 || offsets[n] != uint64(len(edges)) {
		panic("graph: malformed offsets")
	}
	if weights != nil && len(weights) != len(edges) {
		panic("graph: weights not parallel to edges")
	}
	g := &CSR{
		n: n, m: int64(len(edges)),
		outOff: offsets, outEdg: edges, outWgt: weights,
		symmetric: symmetric,
	}
	g.outDeg = make([]uint32, n)
	parallel.For(n, parallel.DefaultGrain, func(v int) {
		g.outDeg[v] = uint32(offsets[v+1] - offsets[v])
	})
	if symmetric {
		g.inOff, g.inEdg, g.inWgt = offsets, edges, weights
	}
	return g
}

// NumVertices returns n.
func (g *CSR) NumVertices() int { return g.n }

// NumEdges returns the number of live directed edges (a symmetric graph
// stores each undirected edge twice; PackOut decrements the count).
func (g *CSR) NumEdges() int64 { return atomic.LoadInt64(&g.m) }

// Symmetric reports whether the graph is undirected.
func (g *CSR) Symmetric() bool { return g.symmetric }

// Weighted reports whether edges carry weights.
func (g *CSR) Weighted() bool { return g.outWgt != nil }

// OutDegree returns the live out-degree of v.
func (g *CSR) OutDegree(v Vertex) int { return int(g.outDeg[v]) }

// InDegree returns the in-degree of v. For directed graphs it forces the
// transpose to be built.
func (g *CSR) InDegree(v Vertex) int {
	g.ensureIn()
	return int(g.inOff[v+1] - g.inOff[v])
}

// OutEdges returns the live out-neighbor slice of v. The slice aliases
// the graph; callers must not modify it.
func (g *CSR) OutEdges(v Vertex) []Vertex {
	lo := g.outOff[v]
	return g.outEdg[lo : lo+uint64(g.outDeg[v])]
}

// OutWeights returns the out-edge weight slice of v parallel to
// OutEdges(v), or nil for unweighted graphs.
func (g *CSR) OutWeights(v Vertex) []Weight {
	if g.outWgt == nil {
		return nil
	}
	lo := g.outOff[v]
	return g.outWgt[lo : lo+uint64(g.outDeg[v])]
}

// OutNeighbors implements Graph.
func (g *CSR) OutNeighbors(v Vertex, f func(u Vertex, w Weight) bool) {
	lo := g.outOff[v]
	hi := lo + uint64(g.outDeg[v])
	if g.outWgt == nil {
		for i := lo; i < hi; i++ {
			if !f(g.outEdg[i], 0) {
				return
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !f(g.outEdg[i], g.outWgt[i]) {
			return
		}
	}
}

// InNeighbors implements Graph. For directed graphs the transpose is
// built (once) on first use.
func (g *CSR) InNeighbors(v Vertex, f func(u Vertex, w Weight) bool) {
	g.ensureIn()
	if g.symmetric {
		g.OutNeighbors(v, f)
		return
	}
	lo, hi := g.inOff[v], g.inOff[v+1]
	if g.inWgt == nil {
		for i := lo; i < hi; i++ {
			if !f(g.inEdg[i], 0) {
				return
			}
		}
		return
	}
	for i := lo; i < hi; i++ {
		if !f(g.inEdg[i], g.inWgt[i]) {
			return
		}
	}
}

// ensureIn materializes the transposed adjacency for directed graphs.
// It is safe to call from concurrent traversals (the dense edge map's
// first pull over a directed graph triggers it from a parallel loop).
func (g *CSR) ensureIn() {
	g.inOnce.Do(func() {
		if g.inOff != nil {
			return // symmetric: aliased at construction
		}
		if g.packed.Load() {
			panic("graph: InNeighbors after PackOut on a directed graph")
		}
		g.inOff, g.inEdg, g.inWgt = transpose(g.n, g.outOff, g.outEdg, g.outWgt)
	})
}

// PackOut implements Packer: it compacts v's out-adjacency in place,
// keeping only neighbors for which keep returns true, and returns the
// new out-degree. Weights move with their edges. PackOut for distinct
// vertices may run concurrently (each touches only its own CSR range);
// the live edge count is maintained atomically.
func (g *CSR) PackOut(v Vertex, keep func(u Vertex) bool) int {
	if !g.packed.Load() {
		g.packed.Store(true)
	}
	lo := g.outOff[v]
	d := uint64(g.outDeg[v])
	k := lo
	if g.outWgt == nil {
		for i := lo; i < lo+d; i++ {
			if keep(g.outEdg[i]) {
				g.outEdg[k] = g.outEdg[i]
				k++
			}
		}
	} else {
		for i := lo; i < lo+d; i++ {
			if keep(g.outEdg[i]) {
				g.outEdg[k] = g.outEdg[i]
				g.outWgt[k] = g.outWgt[i]
				k++
			}
		}
	}
	newDeg := uint32(k - lo)
	if removed := uint32(d) - newDeg; removed > 0 {
		atomic.AddInt64(&g.m, -int64(removed))
	}
	g.outDeg[v] = newDeg
	return int(newDeg)
}

// Clone returns a deep copy of the graph (used by algorithms like set
// cover that mutate adjacency via PackOut).
func (g *CSR) Clone() *CSR {
	c := &CSR{n: g.n, m: g.NumEdges(), symmetric: g.symmetric}
	c.packed.Store(g.packed.Load())
	c.outOff = append([]uint64(nil), g.outOff...)
	c.outEdg = append([]Vertex(nil), g.outEdg...)
	if g.outWgt != nil {
		c.outWgt = append([]Weight(nil), g.outWgt...)
	}
	c.outDeg = append([]uint32(nil), g.outDeg...)
	if g.symmetric {
		c.inOff, c.inEdg, c.inWgt = c.outOff, c.outEdg, c.outWgt
	}
	return c
}

// Degrees returns a freshly allocated slice of live out-degrees.
func (g *CSR) Degrees() []uint32 {
	return append([]uint32(nil), g.outDeg...)
}

// MaxDegree returns the maximum out-degree, or 0 for an empty graph.
func (g *CSR) MaxDegree() int {
	if g.n == 0 {
		return 0
	}
	return parallel.Max(g.n, 0, func(v int) int { return int(g.outDeg[v]) })
}

// transpose builds the reversed CSR of (off, edg, wgt) over n vertices.
func transpose(n int, off []uint64, edg []Vertex, wgt []Weight) ([]uint64, []Vertex, []Weight) {
	m := len(edg)
	// inCnt[u] = in-degree of u for u < n, with a trailing zero so the
	// exclusive scan of the n+1 entries is exactly the CSR offsets
	// (inOff[n] == m). Atomic adds keep the histogram parallel without
	// per-worker scratch; contention is proportional to degree skew.
	inCnt := make([]uint64, n+1)
	parallel.For(m, parallel.DefaultGrain, func(i int) {
		addUint64(&inCnt[edg[i]], 1)
	})
	inOff := make([]uint64, n+1)
	parallel.Scan(inOff, inCnt)
	inEdg := make([]Vertex, m)
	var inWgt []Weight
	if wgt != nil {
		inWgt = make([]Weight, m)
	}
	next := make([]uint64, n)
	copy(next, inOff[:n])
	parallel.For(n, 64, func(v int) {
		lo, hi := off[v], off[v+1]
		for i := lo; i < hi; i++ {
			u := edg[i]
			slot := addUint64(&next[u], 1) - 1
			inEdg[slot] = Vertex(v)
			if wgt != nil {
				inWgt[slot] = wgt[i]
			}
		}
	})
	return inOff, inEdg, inWgt
}
