package graph

import (
	"testing"
	"testing/quick"
)

// triangle plus a pendant: 0-1, 1-2, 2-0, 2-3 (undirected).
func triPendant(t *testing.T) *CSR {
	t.Helper()
	g := FromEdges(4, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 0, 0}, {2, 3, 0}},
		BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFromEdgesBasic(t *testing.T) {
	g := triPendant(t)
	if g.NumVertices() != 4 {
		t.Fatalf("n=%d want 4", g.NumVertices())
	}
	if g.NumEdges() != 8 {
		t.Fatalf("m=%d want 8", g.NumEdges())
	}
	wantDeg := []int{2, 2, 3, 1}
	for v, d := range wantDeg {
		if got := g.OutDegree(Vertex(v)); got != d {
			t.Fatalf("deg(%d)=%d want %d", v, got, d)
		}
	}
	if !g.Symmetric() || g.Weighted() {
		t.Fatal("flags wrong")
	}
}

func TestFromEdgesDirected(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 0}, {1, 2, 0}}, DefaultBuild)
	if g.Symmetric() {
		t.Fatal("directed graph marked symmetric")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d want 2", g.NumEdges())
	}
	if g.OutDegree(0) != 1 || g.OutDegree(2) != 0 {
		t.Fatal("wrong out-degrees")
	}
	if g.InDegree(2) != 1 || g.InDegree(0) != 0 {
		t.Fatal("wrong in-degrees")
	}
	found := false
	g.InNeighbors(2, func(u Vertex, w Weight) bool {
		if u == 1 {
			found = true
		}
		return true
	})
	if !found {
		t.Fatal("InNeighbors(2) missing 1")
	}
}

func TestFromEdgesDropsSelfLoopsAndDupes(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 0, 0}, {0, 1, 0}, {0, 1, 0}, {1, 2, 0}}, DefaultBuild)
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d want 2", g.NumEdges())
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestFromEdgesKeepsFirstDuplicateWeight(t *testing.T) {
	g := FromEdges(2, []Edge{{0, 1, 7}, {0, 1, 9}},
		BuildOptions{Weighted: true, DropSelfLoops: true, Dedup: true})
	w := g.OutWeights(0)
	if len(w) != 1 || w[0] != 7 {
		t.Fatalf("weights=%v want [7]", w)
	}
}

func TestFromEdgesPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on out-of-range edge")
		}
	}()
	FromEdges(2, []Edge{{0, 5, 0}}, DefaultBuild)
}

func TestFromEdgesPanicsNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative weight")
		}
	}()
	FromEdges(2, []Edge{{0, 1, -3}}, BuildOptions{Weighted: true})
}

func TestOutNeighborsEarlyStop(t *testing.T) {
	g := triPendant(t)
	visits := 0
	g.OutNeighbors(2, func(u Vertex, w Weight) bool {
		visits++
		return false
	})
	if visits != 1 {
		t.Fatalf("early stop visited %d neighbors", visits)
	}
}

func TestWeightedNeighbors(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 5}, {0, 2, 9}},
		BuildOptions{Weighted: true, DropSelfLoops: true, Dedup: true})
	got := map[Vertex]Weight{}
	g.OutNeighbors(0, func(u Vertex, w Weight) bool {
		got[u] = w
		return true
	})
	if got[1] != 5 || got[2] != 9 {
		t.Fatalf("weights %v", got)
	}
}

func TestPackOut(t *testing.T) {
	g := triPendant(t)
	d := g.PackOut(2, func(u Vertex) bool { return u != 3 })
	if d != 2 {
		t.Fatalf("packed degree %d want 2", d)
	}
	if g.OutDegree(2) != 2 {
		t.Fatalf("OutDegree(2)=%d want 2", g.OutDegree(2))
	}
	for _, u := range g.OutEdges(2) {
		if u == 3 {
			t.Fatal("packed-out neighbor still visible")
		}
	}
	// Unpacked vertices unaffected.
	if g.OutDegree(0) != 2 {
		t.Fatal("pack disturbed other vertex")
	}
	// NumEdges reflects the live count.
	if g.NumEdges() != 7 {
		t.Fatalf("live m=%d want 7", g.NumEdges())
	}
	// Packing everything empties the list.
	if d := g.PackOut(2, func(Vertex) bool { return false }); d != 0 {
		t.Fatalf("full pack left degree %d", d)
	}
}

func TestPackOutWeighted(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 1, 10}, {0, 2, 20}, {0, 3, 30}},
		BuildOptions{Weighted: true, DropSelfLoops: true, Dedup: true})
	g.PackOut(0, func(u Vertex) bool { return u != 2 })
	nbrs, wgts := g.OutEdges(0), g.OutWeights(0)
	if len(nbrs) != 2 || len(wgts) != 2 {
		t.Fatalf("lens %d %d", len(nbrs), len(wgts))
	}
	for i, u := range nbrs {
		if u == 1 && wgts[i] != 10 || u == 3 && wgts[i] != 30 {
			t.Fatalf("weight misaligned after pack: %v %v", nbrs, wgts)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := triPendant(t)
	c := g.Clone()
	c.PackOut(2, func(u Vertex) bool { return false })
	if g.OutDegree(2) != 3 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.OutDegree(2) != 0 {
		t.Fatal("clone pack did not stick")
	}
}

func TestSymmetrized(t *testing.T) {
	g := FromEdges(3, []Edge{{0, 1, 0}, {1, 2, 0}, {2, 1, 0}}, DefaultBuild)
	s := Symmetrized(g)
	if !s.Symmetric() {
		t.Fatal("not symmetric")
	}
	if err := Validate(s); err != nil {
		t.Fatal(err)
	}
	// undirected edges {0,1},{1,2} -> 4 directed
	if s.NumEdges() != 4 {
		t.Fatalf("m=%d want 4", s.NumEdges())
	}
}

func TestReweighted(t *testing.T) {
	g := triPendant(t)
	w := Reweighted(g, func(u, v Vertex) Weight { return Weight(u + v) })
	if !w.Weighted() {
		t.Fatal("Reweighted graph not weighted")
	}
	w.OutNeighbors(2, func(u Vertex, wt Weight) bool {
		if wt != Weight(2+u) {
			t.Fatalf("weight(2,%d)=%d", u, wt)
		}
		return true
	})
	if g.Weighted() {
		t.Fatal("original gained weights")
	}
}

func TestTransposeRoundTrip(t *testing.T) {
	// For a symmetric graph, in-neighbors equal out-neighbors.
	g := triPendant(t)
	for v := 0; v < g.NumVertices(); v++ {
		var ins, outs []Vertex
		g.InNeighbors(Vertex(v), func(u Vertex, w Weight) bool { ins = append(ins, u); return true })
		g.OutNeighbors(Vertex(v), func(u Vertex, w Weight) bool { outs = append(outs, u); return true })
		if len(ins) != len(outs) {
			t.Fatalf("v=%d in/out mismatch", v)
		}
	}
}

func TestTransposeDirectedWeighted(t *testing.T) {
	g := FromEdges(4, []Edge{{0, 2, 5}, {1, 2, 7}, {3, 2, 9}},
		BuildOptions{Weighted: true, DropSelfLoops: true, Dedup: true})
	got := map[Vertex]Weight{}
	g.InNeighbors(2, func(u Vertex, w Weight) bool { got[u] = w; return true })
	want := map[Vertex]Weight{0: 5, 1: 7, 3: 9}
	if len(got) != len(want) {
		t.Fatalf("in-neighbors %v", got)
	}
	for u, w := range want {
		if got[u] != w {
			t.Fatalf("in-weight(%d)=%d want %d", u, got[u], w)
		}
	}
}

func TestMaxDegreeAndDegrees(t *testing.T) {
	g := triPendant(t)
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree=%d want 3", g.MaxDegree())
	}
	deg := g.Degrees()
	if deg[2] != 3 || deg[3] != 1 {
		t.Fatalf("Degrees=%v", deg)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := FromEdges(0, nil, DefaultBuild)
	if g.NumVertices() != 0 || g.NumEdges() != 0 || g.MaxDegree() != 0 {
		t.Fatal("empty graph misbehaves")
	}
	if err := Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestIsolatedVertices(t *testing.T) {
	g := FromEdges(10, []Edge{{0, 9, 0}}, DefaultBuild)
	for v := 1; v < 9; v++ {
		if g.OutDegree(Vertex(v)) != 0 {
			t.Fatalf("vertex %d should be isolated", v)
		}
	}
}

// TestFromEdgesPropertyVsMapOracle cross-checks the CSR builder (radix
// sort + dedup + symmetrize) against a naive adjacency-map oracle on
// random edge lists.
func TestFromEdgesPropertyVsMapOracle(t *testing.T) {
	f := func(raw []uint16, symmetrize bool) bool {
		const n = 64
		edges := make([]Edge, 0, len(raw)/2)
		for i := 0; i+1 < len(raw); i += 2 {
			edges = append(edges, Edge{
				U: Vertex(raw[i] % n),
				V: Vertex(raw[i+1] % n),
				W: Weight(i),
			})
		}
		opt := BuildOptions{Symmetrize: symmetrize, DropSelfLoops: true, Dedup: true}
		g := FromEdges(n, edges, opt)
		if err := Validate(g); err != nil {
			return false
		}
		// Oracle: set of directed edges after the same transformations.
		want := map[[2]Vertex]bool{}
		for _, e := range edges {
			if e.U == e.V {
				continue
			}
			want[[2]Vertex{e.U, e.V}] = true
			if symmetrize {
				want[[2]Vertex{e.V, e.U}] = true
			}
		}
		if int(g.NumEdges()) != len(want) {
			return false
		}
		for v := Vertex(0); v < n; v++ {
			for _, u := range g.OutEdges(v) {
				if !want[[2]Vertex{v, u}] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
