package graph

import (
	"testing"

	"julienne/internal/rng"
)

func benchEdges(n, m int) []Edge {
	edges := make([]Edge, m)
	for i := range edges {
		edges[i] = Edge{
			U: Vertex(rng.UintNAt(1, uint64(2*i), uint64(n))),
			V: Vertex(rng.UintNAt(1, uint64(2*i+1), uint64(n))),
			W: Weight(rng.UintNAt(2, uint64(i), 100)),
		}
	}
	return edges
}

func BenchmarkFromEdges(b *testing.B) {
	edges := benchEdges(1<<16, 1<<19)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(1<<16, edges, DefaultBuild)
	}
	b.SetBytes(int64(len(edges) * 12))
}

func BenchmarkFromEdgesSymmetrized(b *testing.B) {
	edges := benchEdges(1<<16, 1<<18)
	opt := DefaultBuild
	opt.Symmetrize = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromEdges(1<<16, edges, opt)
	}
}

func BenchmarkTranspose(b *testing.B) {
	edges := benchEdges(1<<15, 1<<18)
	g := FromEdges(1<<15, edges, DefaultBuild)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		c := g.Clone() // fresh, un-transposed copy
		b.StartTimer()
		c.InDegree(0) // forces the transpose build
	}
}

func BenchmarkOutNeighborsTraversal(b *testing.B) {
	edges := benchEdges(1<<14, 1<<18)
	g := FromEdges(1<<14, edges, DefaultBuild)
	b.ResetTimer()
	var sink int64
	for i := 0; i < b.N; i++ {
		for v := 0; v < g.NumVertices(); v++ {
			g.OutNeighbors(Vertex(v), func(u Vertex, w Weight) bool {
				sink += int64(u)
				return true
			})
		}
	}
	_ = sink
	b.SetBytes(g.NumEdges() * 4)
}

func BenchmarkPackOut(b *testing.B) {
	edges := benchEdges(1<<14, 1<<18)
	base := FromEdges(1<<14, edges, DefaultBuild)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := base.Clone()
		b.StartTimer()
		for v := 0; v < g.NumVertices(); v++ {
			g.PackOut(Vertex(v), func(u Vertex) bool { return u%2 == 0 })
		}
	}
}
