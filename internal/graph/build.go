package graph

import (
	"fmt"
	"slices"

	"julienne/internal/parallel"
)

// Edge is one directed edge of an edge list, with an optional weight
// (ignored when building unweighted graphs).
type Edge struct {
	U, V Vertex
	W    Weight
}

// BuildOptions controls FromEdges.
type BuildOptions struct {
	// Weighted keeps edge weights; otherwise W fields are dropped.
	Weighted bool
	// Symmetrize inserts the reverse of every edge and marks the graph
	// undirected.
	Symmetrize bool
	// DropSelfLoops removes edges with U == V (the paper assumes no
	// self-edges, §2).
	DropSelfLoops bool
	// Dedup removes duplicate (U, V) pairs, keeping the first occurrence
	// (and its weight). The paper assumes no duplicate edges (§2).
	Dedup bool
}

// DefaultBuild matches the paper's graph assumptions: simple graphs with
// no self-loops or duplicate edges.
var DefaultBuild = BuildOptions{DropSelfLoops: true, Dedup: true}

// FromEdges builds a CSR over n vertices from an arbitrary edge list.
// The input slice is not modified. Adjacency lists come out sorted by
// neighbor id, which Dedup requires and which makes traversal order
// deterministic everywhere else.
func FromEdges(n int, edges []Edge, opt BuildOptions) *CSR {
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n))
		}
		if opt.Weighted && e.W < 0 {
			panic(fmt.Sprintf("graph: negative weight %d on edge (%d,%d)", e.W, e.U, e.V))
		}
	}
	work := make([]Edge, 0, len(edges)*2)
	for _, e := range edges {
		if opt.DropSelfLoops && e.U == e.V {
			continue
		}
		work = append(work, e)
		if opt.Symmetrize && e.U != e.V {
			work = append(work, Edge{U: e.V, V: e.U, W: e.W})
		}
	}

	// Sort by (U, V) to get sorted adjacency lists; the radix sort is
	// stable, so deduping keeps the first duplicate (and its weight).
	parallel.SortByKey(work, func(e Edge) uint64 {
		return uint64(e.U)<<32 | uint64(e.V)
	})
	if opt.Dedup {
		work = slices.CompactFunc(work, func(a, b Edge) bool {
			return a.U == b.U && a.V == b.V
		})
	}

	m := len(work)
	counts := make([]uint64, n+1)
	for _, e := range work {
		counts[e.U]++
	}
	offsets := make([]uint64, n+1)
	parallel.Scan(offsets, counts)
	edg := make([]Vertex, m)
	var wgt []Weight
	if opt.Weighted {
		wgt = make([]Weight, m)
	}
	parallel.For(m, parallel.DefaultGrain, func(i int) {
		edg[i] = work[i].V
		if wgt != nil {
			wgt[i] = work[i].W
		}
	})
	return NewCSR(n, offsets, edg, wgt, opt.Symmetrize)
}

// Symmetrized returns the undirected version of g: every directed edge
// appears in both directions, duplicates merged (keeping the weight of
// the first occurrence in u-then-v order). If g is already symmetric a
// clone is returned.
func Symmetrized(g *CSR) *CSR {
	if g.symmetric {
		return g.Clone()
	}
	edges := make([]Edge, 0, len(g.outEdg))
	for v := 0; v < g.n; v++ {
		vv := Vertex(v)
		nbrs := g.OutEdges(vv)
		wgts := g.OutWeights(vv)
		for i, u := range nbrs {
			var w Weight
			if wgts != nil {
				w = wgts[i]
			}
			edges = append(edges, Edge{U: vv, V: u, W: w})
		}
	}
	return FromEdges(g.n, edges, BuildOptions{
		Weighted:      g.Weighted(),
		Symmetrize:    true,
		DropSelfLoops: true,
		Dedup:         true,
	})
}

// Reweighted returns a copy of g whose edge weights are produced by
// w(u, v, i) for the i'th out-edge (u, v). For symmetric graphs callers
// should make w symmetric in (u, v) so both directions agree; the
// generators in internal/gen do this by hashing the unordered pair.
func Reweighted(g *CSR, w func(u, v Vertex) Weight) *CSR {
	c := g.Clone()
	wgt := make([]Weight, len(c.outEdg))
	parallel.For(c.n, 64, func(vi int) {
		v := Vertex(vi)
		lo, hi := c.outOff[v], c.outOff[v+1]
		for i := lo; i < hi; i++ {
			wgt[i] = w(v, c.outEdg[i])
		}
	})
	c.outWgt = wgt
	c.inOff, c.inEdg, c.inWgt = nil, nil, nil
	if c.symmetric {
		c.inOff, c.inEdg, c.inWgt = c.outOff, c.outEdg, c.outWgt
	}
	return c
}

// Validate checks CSR structural invariants; tests call it after builds
// and generators. It returns a descriptive error or nil.
func Validate(g *CSR) error {
	if len(g.outOff) != g.n+1 {
		return fmt.Errorf("offsets length %d, want %d", len(g.outOff), g.n+1)
	}
	if g.outOff[0] != 0 {
		return fmt.Errorf("offsets[0] = %d, want 0", g.outOff[0])
	}
	for v := 0; v < g.n; v++ {
		if g.outOff[v] > g.outOff[v+1] {
			return fmt.Errorf("offsets decrease at %d", v)
		}
	}
	if g.outOff[g.n] != uint64(len(g.outEdg)) {
		return fmt.Errorf("offsets[n] = %d, want %d", g.outOff[g.n], len(g.outEdg))
	}
	for v := 0; v < g.n; v++ {
		nbrs := g.OutEdges(Vertex(v))
		for i, u := range nbrs {
			if int(u) >= g.n {
				return fmt.Errorf("vertex %d has out-of-range neighbor %d", v, u)
			}
			if u == Vertex(v) {
				return fmt.Errorf("self-loop at %d", v)
			}
			if i > 0 && nbrs[i-1] >= u {
				return fmt.Errorf("adjacency of %d not strictly sorted at position %d", v, i)
			}
		}
	}
	if g.symmetric {
		// Every edge must have its reverse.
		for v := 0; v < g.n; v++ {
			for _, u := range g.OutEdges(Vertex(v)) {
				if !hasEdge(g, u, Vertex(v)) {
					return fmt.Errorf("missing reverse edge (%d,%d)", u, v)
				}
			}
		}
	}
	return nil
}

// hasEdge reports whether (u, v) is a live out-edge, by binary search
// over u's sorted adjacency.
func hasEdge(g *CSR, u, v Vertex) bool {
	nbrs := g.OutEdges(u)
	_, ok := slices.BinarySearch(nbrs, v)
	return ok
}
