// Package graph provides the in-memory graph representation used by every
// algorithm in this repository: a compressed sparse row (CSR) structure
// with optional integral edge weights and, for directed graphs, the
// transposed adjacency needed by Ligra's pull-based (dense) edge map.
//
// Algorithms are written against the Graph interface so they run unchanged
// over the plain CSR here and the byte-compressed representation in
// internal/compress, mirroring how Julienne inherits Ligra+'s compression
// (§1 of the paper: the 225B-edge Hyperlink graph only fits compressed).
package graph

// Vertex identifiers are dense integers in [0, NumVertices), as in
// Ligra/Julienne (§2: "vertices are assumed to be indexed from 0 to n-1").
type Vertex = uint32

// NilVertex is a sentinel meaning "no vertex".
const NilVertex Vertex = ^Vertex(0)

// Weight is a non-negative integral edge weight. wBFS and ∆-stepping
// assume non-negative integer weights (§4.2); 32 bits covers the paper's
// [1, 10^5) range with room to spare.
type Weight = int32

// Graph is the read contract algorithms are written against.
//
// Neighbor iteration passes the neighbor and the edge weight (0 for
// unweighted graphs) and stops early when the callback returns false.
// For symmetric graphs In* and Out* coincide.
type Graph interface {
	// NumVertices returns n.
	NumVertices() int
	// NumEdges returns m, the number of directed edges stored
	// (a symmetric graph stores each undirected edge twice).
	NumEdges() int64
	// Symmetric reports whether the graph is undirected.
	Symmetric() bool
	// Weighted reports whether edges carry weights.
	Weighted() bool
	// OutDegree returns the out-degree of v.
	OutDegree(v Vertex) int
	// InDegree returns the in-degree of v.
	InDegree(v Vertex) int
	// OutNeighbors calls f for each out-neighbor of v until f returns
	// false. The iteration order is unspecified but deterministic.
	OutNeighbors(v Vertex, f func(u Vertex, w Weight) bool)
	// InNeighbors calls f for each in-neighbor of v until f returns false.
	InNeighbors(v Vertex, f func(u Vertex, w Weight) bool)
}

// Packer is implemented by mutable graph representations that support
// removing out-edges in place, the Pack option of edgeMapFilter (§2.1)
// that approximate set cover uses to drop edges to covered elements.
type Packer interface {
	Graph
	// PackOut keeps only the out-neighbors of v satisfying keep and
	// returns the new out-degree. Only out-adjacency is packed; callers
	// that need in-adjacency coherence must not mix PackOut with
	// InNeighbors (set cover only traverses out-edges).
	PackOut(v Vertex, keep func(u Vertex) bool) int
}
