package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"julienne/internal/parallel"
)

func TestTimeMedian(t *testing.T) {
	calls := 0
	s := TimeMedian(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("calls=%d", calls)
	}
	if s.Median < 0 || s.Min < 0 || s.Max < 0 {
		t.Fatalf("negative duration: %+v", s)
	}
	if s.Min > s.Median || s.Median > s.Max {
		t.Fatalf("spread not ordered: %+v", s)
	}
	s = TimeMedian(0, func() { calls++ })
	if calls != 6 {
		t.Fatal("reps<1 should run once")
	}
	if s.Min != s.Median || s.Median != s.Max {
		t.Fatalf("single rep should collapse the spread: %+v", s)
	}
}

func TestTimeMedianSpread(t *testing.T) {
	// Alternate a fast and a deliberately slow iteration so Min and Max
	// must differ and the median sits strictly inside the interval.
	i := 0
	s := TimeMedian(5, func() {
		i++
		if i%2 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
	})
	if s.Max < 2*time.Millisecond {
		t.Fatalf("Max missed the slow iterations: %+v", s)
	}
	if s.Min > s.Median || s.Median > s.Max {
		t.Fatalf("spread not ordered: %+v", s)
	}
	if !strings.Contains(s.Spread(), "..") {
		t.Fatalf("Spread()=%q", s.Spread())
	}
}

func TestThreadCounts(t *testing.T) {
	ps := ThreadCounts()
	if len(ps) == 0 || ps[0] != 1 {
		t.Fatalf("ThreadCounts=%v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("not increasing: %v", ps)
		}
	}
}

func TestThreadSweepRestoresProcs(t *testing.T) {
	before := parallel.Procs()
	pts := ThreadSweep(1, func() { time.Sleep(time.Microsecond) })
	if parallel.Procs() != before {
		t.Fatalf("GOMAXPROCS not restored: %d vs %d", parallel.Procs(), before)
	}
	if len(pts) != len(ThreadCounts()) {
		t.Fatalf("points=%d", len(pts))
	}
	for i, pt := range pts {
		if pt.Threads != ThreadCounts()[i] {
			t.Fatalf("point %d has threads=%d, want %d", i, pt.Threads, ThreadCounts()[i])
		}
		if pt.Min > pt.Median || pt.Median > pt.Max {
			t.Fatalf("point %d spread not ordered: %+v", i, pt.Sample)
		}
	}
}

func TestThreadSweepRestoresProcsOnPanic(t *testing.T) {
	before := parallel.Procs()
	func() {
		defer func() { recover() }()
		ThreadSweep(1, func() { panic("boom") })
	}()
	if parallel.Procs() != before {
		t.Fatalf("GOMAXPROCS not restored after panic: %d vs %d", parallel.Procs(), before)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("name", "time", "speedup")
	tbl.AddRow("k-core", 1500*time.Microsecond, Speedup(3*time.Millisecond, 1500*time.Microsecond))
	tbl.AddRow("wBFS", Sample{Median: 250 * time.Microsecond, Min: 200 * time.Microsecond, Max: 300 * time.Microsecond}, "-")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"name", "k-core", "1.5ms", "2.00x", "wBFS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestMsAndSpeedup(t *testing.T) {
	if Ms(1500*time.Microsecond) != "1.5ms" {
		t.Fatalf("Ms=%q", Ms(1500*time.Microsecond))
	}
	if Speedup(time.Second, 0) != "-" {
		t.Fatal("zero divisor")
	}
	if Speedup(4*time.Second, 2*time.Second) != "2.00x" {
		t.Fatal("speedup format")
	}
}
