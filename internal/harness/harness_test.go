package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"julienne/internal/parallel"
)

func TestTimeMedian(t *testing.T) {
	calls := 0
	d := TimeMedian(5, func() { calls++ })
	if calls != 5 {
		t.Fatalf("calls=%d", calls)
	}
	if d < 0 {
		t.Fatal("negative duration")
	}
	TimeMedian(0, func() { calls++ })
	if calls != 6 {
		t.Fatal("reps<1 should run once")
	}
}

func TestThreadCounts(t *testing.T) {
	ps := ThreadCounts()
	if len(ps) == 0 || ps[0] != 1 {
		t.Fatalf("ThreadCounts=%v", ps)
	}
	for i := 1; i < len(ps); i++ {
		if ps[i] <= ps[i-1] {
			t.Fatalf("not increasing: %v", ps)
		}
	}
}

func TestThreadSweepRestoresProcs(t *testing.T) {
	before := parallel.Procs()
	pts := ThreadSweep(1, func() { time.Sleep(time.Microsecond) })
	if parallel.Procs() != before {
		t.Fatalf("GOMAXPROCS not restored: %d vs %d", parallel.Procs(), before)
	}
	if len(pts) != len(ThreadCounts()) {
		t.Fatalf("points=%d", len(pts))
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("name", "time", "speedup")
	tbl.AddRow("k-core", 1500*time.Microsecond, Speedup(3*time.Millisecond, 1500*time.Microsecond))
	tbl.AddRow("wBFS", 250*time.Microsecond, "-")
	var buf bytes.Buffer
	tbl.Render(&buf)
	out := buf.String()
	for _, want := range []string{"name", "k-core", "1.5ms", "2.00x", "wBFS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, separator, 2 rows
		t.Fatalf("line count %d:\n%s", len(lines), out)
	}
}

func TestMsAndSpeedup(t *testing.T) {
	if Ms(1500*time.Microsecond) != "1.5ms" {
		t.Fatalf("Ms=%q", Ms(1500*time.Microsecond))
	}
	if Speedup(time.Second, 0) != "-" {
		t.Fatal("zero divisor")
	}
	if Speedup(4*time.Second, 2*time.Second) != "2.00x" {
		t.Fatal("speedup format")
	}
}
