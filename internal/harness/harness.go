// Package harness provides the experiment plumbing shared by the
// cmd/experiments driver and the root benchmark suite: repeated timing
// with medians, GOMAXPROCS sweeps (the thread-count axes of Figures
// 2–5), and fixed-width table rendering that mirrors the layout of the
// paper's Table 3.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"julienne/internal/parallel"
)

// Sample summarizes repeated timings of one workload: the median the
// tables report plus the min/max spread, so wall-clock variance can be
// sanity-checked against trace-derived numbers.
type Sample struct {
	Median, Min, Max time.Duration
}

// Spread renders the min..max interval in milliseconds.
func (s Sample) Spread() string {
	return Ms(s.Min) + ".." + Ms(s.Max)
}

// Time runs f once and returns its wall-clock duration. It is the
// single-shot measurement primitive for the CLI drivers; anything
// reported in a table or figure should prefer TimeMedian's repetition
// and spread discipline.
func Time(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// TimeMedian runs f `reps` times and returns the median wall-clock
// duration together with the sample spread. reps < 1 is treated as 1.
func TimeMedian(reps int, f func()) Sample {
	if reps < 1 {
		reps = 1
	}
	times := make([]time.Duration, reps)
	for i := range times {
		start := time.Now()
		f()
		times[i] = time.Since(start)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return Sample{
		Median: times[len(times)/2],
		Min:    times[0],
		Max:    times[len(times)-1],
	}
}

// AllocSample summarizes allocator traffic per run of a workload,
// measured with runtime.ReadMemStats deltas (total bytes and object
// counts, the same quantities `go test -benchmem` reports).
type AllocSample struct {
	// BytesPerOp is the average heap bytes allocated per run.
	BytesPerOp int64
	// AllocsPerOp is the average number of heap objects allocated per
	// run.
	AllocsPerOp int64
}

// MeasureAlloc runs f once to warm pools, caches and arenas, then
// measures the allocator traffic of reps further runs. Per-op figures
// are averages, so one-time growth that survives the warm-up is
// amortized — which is exactly the steady-state quantity the
// allocation-free hot-path work targets. Not concurrency-safe: nothing
// else may allocate significantly while it runs.
func MeasureAlloc(reps int, f func()) AllocSample {
	if reps < 1 {
		reps = 1
	}
	f()
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < reps; i++ {
		f()
	}
	runtime.ReadMemStats(&after)
	return AllocSample{
		BytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(reps),
		AllocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(reps),
	}
}

// ThreadCounts returns the GOMAXPROCS values the sweeps use: powers of
// two up to the machine's CPU count (always including 1 and the full
// count). On a 1-CPU machine this is just {1}; the sweep code is the
// same one that produces the paper's 72-core curves.
func ThreadCounts() []int {
	maxP := runtime.NumCPU()
	var ps []int
	for p := 1; p < maxP; p *= 2 {
		ps = append(ps, p)
	}
	ps = append(ps, maxP)
	return ps
}

// SweepPoint is one (threads, timing) sample of a scaling curve.
type SweepPoint struct {
	Threads int
	Sample
}

// ThreadSweep times f at every thread count, restoring GOMAXPROCS
// afterwards. f must be a complete self-contained run (Figures 2–5
// time whole algorithm executions).
func ThreadSweep(reps int, f func()) []SweepPoint {
	defer parallel.SetProcs(parallel.SetProcs(0))
	var pts []SweepPoint
	for _, p := range ThreadCounts() {
		parallel.SetProcs(p)
		pts = append(pts, SweepPoint{Threads: p, Sample: TimeMedian(reps, f)})
	}
	return pts
}

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; values are rendered with %v (durations get
// millisecond formatting via Ms).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case time.Duration:
			row[i] = Ms(v)
		case Sample:
			row[i] = Ms(v.Median)
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Ms renders a duration in milliseconds with three significant digits,
// the unit the paper's tables effectively use at laptop scale.
func Ms(d time.Duration) string {
	return fmt.Sprintf("%.3gms", float64(d.Microseconds())/1000.0)
}

// Speedup formats t1/tp, the per-row speedup column of Table 3.
func Speedup(t1, tp time.Duration) string {
	if tp <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2fx", float64(t1)/float64(tp))
}
