package harness

import (
	"runtime"
	"time"
)

// TB is the subset of testing.TB the leak checker needs. Taking the
// interface (rather than *testing.T) keeps this file importable from
// any package's tests without dragging testing into harness itself.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// LeakCheck snapshots the goroutine count and returns a function that,
// deferred at the end of the test, verifies the count returned to the
// baseline. The parallel substrate spawns workers only inside a call
// and joins them before returning — even on the panic-unwind path — so
// any surplus goroutine at test end is a leak.
//
// Runtime-internal goroutines (GC workers, sync.Pool victims being
// cleaned, finalizer goroutine) start lazily, so the baseline can
// legitimately drift upward a little; the checker retries with a short
// backoff and only reports counts that stay elevated, then dumps all
// stacks so the leaked goroutine is identifiable.
//
//	defer harness.LeakCheck(t)()
func LeakCheck(t TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		for i := 0; i < 50; i++ {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf)
	}
}

// DeadlineIn converts a relative timeout to the absolute deadline the
// algorithm Options take. A non-positive d returns the zero time,
// meaning "no deadline" — so a CLI can pass its -timeout flag through
// unconditionally.
func DeadlineIn(d time.Duration) time.Time {
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}
