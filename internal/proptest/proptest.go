// Package proptest is the property-based differential-testing harness:
// it draws random graphs from every generator family in internal/gen,
// runs each parallel algorithm on both the plain CSR and the byte-coded
// compressed representation at multiple parallelism levels, and
// cross-checks the results against the small, obviously-correct
// sequential oracles in internal/oracle.
//
// Every case is fully determined by a (family, seed, n, m, procs,
// compressed) tuple, so failures are replayable: on mismatch the runner
// shrinks toward the smallest still-failing tuple and prints a
// JULIENNE_PROPTEST_REPRO assignment that re-runs exactly that case.
//
// Knobs (all environment variables, read once per Check call):
//
//	JULIENNE_PROPTEST_SEEDS  number of seeds per family (default 4, 2 under -short)
//	JULIENNE_PROPTEST_MAXN   largest random graph size (default 160, 48 under -short)
//	JULIENNE_PROPTEST_REPRO  "family:seed:n:m:procs:compressed" — run one pinned case
//
// CI runs the default budget on every push and a larger seed budget
// nightly; see .github/workflows/ci.yml.
package proptest

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/parallel"
	"julienne/internal/rng"
)

// Case pins one fully-determined run of a property.
type Case struct {
	// Family names the gen.Family the graph is drawn from.
	Family string
	// Seed drives the generator and every in-property random choice
	// (source vertex, weight family, bucket options, ...).
	Seed uint64
	// N and M are the target vertex and edge counts handed to Build.
	N, M int
	// Procs is the GOMAXPROCS the case runs under.
	Procs int
	// Compressed selects the byte-coded representation for the graph
	// under test (oracles always read the plain CSR).
	Compressed bool
}

// String renders the case in the JULIENNE_PROPTEST_REPRO format.
func (c Case) String() string {
	return fmt.Sprintf("%s:%d:%d:%d:%d:%t", c.Family, c.Seed, c.N, c.M, c.Procs, c.Compressed)
}

// Repro returns the environment assignment that replays this case.
func (c Case) Repro() string { return "JULIENNE_PROPTEST_REPRO=" + c.String() }

// Wrap converts a CSR into the representation under test. Properties
// must route the graph they hand to the algorithm under test through
// Wrap (after any reweighting) so both representations get covered.
func (c Case) Wrap(g *graph.CSR) graph.Graph {
	if c.Compressed {
		return compress.FromCSR(g)
	}
	return g
}

// Rand returns the i-th derived random value of this case's stream.
// Properties use it so every random choice is a pure function of the
// case, keeping shrinking and repro deterministic.
func (c Case) Rand(i, n uint64) uint64 { return rng.UintNAt(c.Seed, 0x5eed+i, n) }

// Prop checks one concrete case. It receives the freshly generated CSR
// and returns a descriptive error on any divergence from the oracle.
// Panics inside a property are recovered and treated as failures.
type Prop func(c Case, g *graph.CSR) error

// Config is the sweep budget.
type Config struct {
	Seeds int // seeds per family
	MaxN  int // largest random n
}

// DefaultConfig resolves the budget from the environment and -short.
func DefaultConfig() Config {
	cfg := Config{Seeds: 4, MaxN: 160}
	if testing.Short() {
		cfg = Config{Seeds: 2, MaxN: 48}
	}
	if v := envInt("JULIENNE_PROPTEST_SEEDS"); v > 0 {
		cfg.Seeds = v
	}
	if v := envInt("JULIENNE_PROPTEST_MAXN"); v > 0 {
		cfg.MaxN = v
	}
	return cfg
}

func envInt(name string) int {
	v := os.Getenv(name)
	if v == "" {
		return 0
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0
	}
	return n
}

// Check sweeps prop over every family × seed × {1, P} procs × {CSR,
// compressed} and fails the test with a shrunk minimal counterexample
// on the first divergence. When JULIENNE_PROPTEST_REPRO is set, only
// that pinned case runs.
func Check(t *testing.T, fams []gen.Family, prop Prop) {
	t.Helper()
	if spec := os.Getenv("JULIENNE_PROPTEST_REPRO"); spec != "" {
		c, err := ParseCase(spec)
		if err != nil {
			t.Fatalf("bad JULIENNE_PROPTEST_REPRO: %v", err)
		}
		if _, ok := familyNamed(fams, c.Family); !ok {
			t.Skipf("repro case %s targets a family this property does not sweep", c)
		}
		if err := runCase(c, fams, prop); err != nil {
			t.Fatalf("repro case %s: %v", c, err)
		}
		return
	}
	cfg := DefaultConfig()
	pmax := parallel.Procs()
	if pmax < 2 {
		// Single-CPU machine: raising GOMAXPROCS past the core count
		// still schedules many goroutines through the parallel loops,
		// which is what the P-sweep is after.
		pmax = 4
	}
	for _, fam := range fams {
		for s := 0; s < cfg.Seeds; s++ {
			seed := rng.At(uint64(0x6a756c69656e6e65), uint64(s)) // "julienne"
			n, m := caseSize(seed, s, cfg.MaxN)
			for _, procs := range []int{1, pmax} {
				for _, compressed := range []bool{false, true} {
					c := Case{Family: fam.Name, Seed: seed, N: n, M: m,
						Procs: procs, Compressed: compressed}
					if err := runCase(c, fams, prop); err != nil {
						min, minErr := shrink(c, err, fams, prop)
						t.Fatalf("property failed: %v\n  minimal case: %s\n  rerun with: %s go test ./internal/proptest/ -run %s",
							minErr, min, min.Repro(), t.Name())
					}
				}
			}
		}
	}
}

// caseSize derives the graph size for a seed. Seed index 0 always draws
// from the degenerate corner (n ≤ 4) so empty and near-empty graphs are
// exercised on every run, not just when the budget is large.
func caseSize(seed uint64, idx, maxN int) (n, m int) {
	if idx == 0 {
		return int(rng.UintNAt(seed, 1, 5)), int(rng.UintNAt(seed, 2, 9))
	}
	n = 1 + int(rng.UintNAt(seed, 1, uint64(maxN)))
	m = int(rng.UintNAt(seed, 2, uint64(4*n)+1))
	return n, m
}

func familyNamed(fams []gen.Family, name string) (gen.Family, bool) {
	for _, f := range fams {
		if f.Name == name {
			return f, true
		}
	}
	return gen.Family{}, false
}

// runCase builds the case's graph and runs the property under the
// case's GOMAXPROCS, converting panics into errors so a crashing case
// shrinks like any other failure.
func runCase(c Case, fams []gen.Family, prop Prop) (err error) {
	fam, ok := familyNamed(fams, c.Family)
	if !ok {
		return fmt.Errorf("unknown family %q", c.Family)
	}
	prev := parallel.SetProcs(c.Procs)
	defer parallel.SetProcs(prev)
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("panic: %v", r)
		}
	}()
	return prop(c, fam.Build(c.N, c.M, c.Seed))
}

// shrink minimizes a failing case: first strip the representation and
// parallelism dimensions (a failure that survives on the plain CSR at
// P = 1 rules out whole subsystems), then descend on (n, m) greedily as
// long as some smaller graph still fails.
func shrink(c Case, firstErr error, fams []gen.Family, prop Prop) (Case, error) {
	best, bestErr := c, firstErr
	try := func(cand Case) bool {
		if err := runCase(cand, fams, prop); err != nil {
			best, bestErr = cand, err
			return true
		}
		return false
	}
	if best.Compressed {
		cand := best
		cand.Compressed = false
		try(cand)
	}
	if best.Procs != 1 {
		cand := best
		cand.Procs = 1
		try(cand)
	}
	for {
		n, m := best.N, best.M
		progressed := false
		for _, size := range [][2]int{{n / 2, m / 2}, {n, m / 2}, {n / 2, m}, {3 * n / 4, 3 * m / 4}} {
			if size[0] == n && size[1] == m {
				continue
			}
			cand := best
			cand.N, cand.M = size[0], size[1]
			if try(cand) {
				progressed = true
				break
			}
		}
		if !progressed {
			return best, bestErr
		}
	}
}

// ParseCase parses the JULIENNE_PROPTEST_REPRO format
// "family:seed:n:m:procs:compressed".
func ParseCase(spec string) (Case, error) {
	parts := strings.Split(spec, ":")
	if len(parts) != 6 {
		return Case{}, fmt.Errorf("%q: want family:seed:n:m:procs:compressed", spec)
	}
	seed, err := strconv.ParseUint(parts[1], 10, 64)
	if err != nil {
		return Case{}, fmt.Errorf("seed %q: %v", parts[1], err)
	}
	n, err := strconv.Atoi(parts[2])
	if err != nil {
		return Case{}, fmt.Errorf("n %q: %v", parts[2], err)
	}
	m, err := strconv.Atoi(parts[3])
	if err != nil {
		return Case{}, fmt.Errorf("m %q: %v", parts[3], err)
	}
	procs, err := strconv.Atoi(parts[4])
	if err != nil {
		return Case{}, fmt.Errorf("procs %q: %v", parts[4], err)
	}
	compressed, err := strconv.ParseBool(parts[5])
	if err != nil {
		return Case{}, fmt.Errorf("compressed %q: %v", parts[5], err)
	}
	return Case{Family: parts[0], Seed: seed, N: n, M: m, Procs: procs, Compressed: compressed}, nil
}
