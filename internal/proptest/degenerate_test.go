package proptest

import (
	"testing"

	"julienne/internal/algo/bfs"
	"julienne/internal/algo/cc"
	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/algo/triangles"
	"julienne/internal/graph"
	"julienne/internal/oracle"
)

// degenerateCase is one structurally degenerate input: the shapes that
// sit outside every random generator's typical output and historically
// break parallel graph code (empty universes, vertices with no edges,
// self-loops, parallel edges, multiple components).
type degenerateCase struct {
	name      string
	build     func() *graph.CSR
	symmetric bool // run the undirected-only algorithms too
}

func degenerateCases() []degenerateCase {
	sym := func(n int, dedup, dropLoops bool, pairs ...[2]graph.Vertex) *graph.CSR {
		edges := make([]graph.Edge, 0, len(pairs))
		for _, p := range pairs {
			edges = append(edges, graph.Edge{U: p[0], V: p[1], W: 1})
		}
		opt := graph.BuildOptions{Weighted: true, Symmetrize: true, Dedup: dedup, DropSelfLoops: dropLoops}
		return graph.FromEdges(n, edges, opt)
	}
	return []degenerateCase{
		{name: "empty", symmetric: true,
			build: func() *graph.CSR { return sym(0, true, true) }},
		{name: "single-vertex", symmetric: true,
			build: func() *graph.CSR { return sym(1, true, true) }},
		{name: "no-edges", symmetric: true,
			build: func() *graph.CSR { return sym(6, true, true) }},
		{name: "single-edge", symmetric: true,
			build: func() *graph.CSR { return sym(2, true, true, [2]graph.Vertex{0, 1}) }},
		{name: "isolated-vertices", symmetric: true,
			build: func() *graph.CSR {
				return sym(7, true, true, [2]graph.Vertex{1, 4}, [2]graph.Vertex{4, 5})
			}},
		{name: "self-loops", symmetric: true,
			build: func() *graph.CSR {
				return sym(3, true, false,
					[2]graph.Vertex{0, 0}, [2]graph.Vertex{1, 2}, [2]graph.Vertex{2, 2})
			}},
		{name: "duplicate-edges", symmetric: true,
			build: func() *graph.CSR {
				return sym(3, false, true,
					[2]graph.Vertex{0, 1}, [2]graph.Vertex{0, 1}, [2]graph.Vertex{1, 2})
			}},
		{name: "disconnected", symmetric: true,
			build: func() *graph.CSR {
				return sym(7, true, true,
					[2]graph.Vertex{0, 1}, [2]graph.Vertex{1, 2}, [2]graph.Vertex{0, 2},
					[2]graph.Vertex{4, 5}, [2]graph.Vertex{5, 6})
			}},
	}
}

// TestDegenerateGraphs runs every algorithm against its oracle on each
// degenerate input, on both representations. The oracles define degree
// semantics for self-loops and parallel edges (whatever OutDegree and
// OutNeighbors report), so parallel implementations must agree on those
// inputs too, not merely avoid crashing.
func TestDegenerateGraphs(t *testing.T) {
	for _, tc := range degenerateCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, compressed := range []bool{false, true} {
				c := Case{Family: tc.name, Procs: 1, Compressed: compressed}
				g := tc.build()
				n := g.NumVertices()
				h := c.Wrap(g)

				if tc.symmetric {
					want := oracle.Coreness(g)
					if err := oracle.DiffUint32("kcore.Coreness", kcore.Coreness(h, kcore.Options{}).Coreness, want); err != nil {
						t.Errorf("compressed=%t: %v", compressed, err)
					}
					if err := oracle.DiffUint32("kcore.CorenessLigra", kcore.CorenessLigra(h).Coreness, want); err != nil {
						t.Errorf("compressed=%t: %v", compressed, err)
					}
					labels := cc.Components(h)
					if err := oracle.VerifyComponents(g, labels); err != nil {
						t.Errorf("compressed=%t: cc: %v", compressed, err)
					}
					// Peeling-adjacent algorithms must at least not crash
					// on degenerate shapes.
					triangles.Count(h)
					densest.Charikar(h)
				}

				if n > 0 {
					src := graph.Vertex(0)
					res := bfs.BFS(h, src)
					if err := oracle.VerifyBFS(g, src, res.Level, res.Parent); err != nil {
						t.Errorf("compressed=%t: bfs: %v", compressed, err)
					}
					wantD := oracle.Dijkstra(g, src)
					if err := oracle.DiffInt64("sssp.DeltaStepping", sssp.DeltaStepping(h, src, 2, sssp.Options{}).Dist, wantD); err != nil {
						t.Errorf("compressed=%t: %v", compressed, err)
					}
					if err := oracle.DiffInt64("sssp.WBFS", sssp.WBFS(h, src, sssp.Options{}).Dist, wantD); err != nil {
						t.Errorf("compressed=%t: %v", compressed, err)
					}
					if err := oracle.DiffInt64("sssp.DijkstraHeap", sssp.DijkstraHeap(h, src).Dist, wantD); err != nil {
						t.Errorf("compressed=%t: %v", compressed, err)
					}
				}
			}
		})
	}
}

// TestDegenerateSetCover covers the set-cover corners the bipartite
// generator cannot produce: no sets, no elements, empty sets, and an
// element covered by every set.
func TestDegenerateSetCover(t *testing.T) {
	cases := []struct {
		name    string
		numSets int
		edges   []graph.Edge
		n       int
	}{
		{name: "no-sets", numSets: 0, n: 3},
		{name: "no-elements", numSets: 3, n: 3},
		{name: "empty-and-full-sets", numSets: 3, n: 5, edges: []graph.Edge{
			{U: 0, V: 3}, {U: 0, V: 4}, {U: 2, V: 4},
		}},
		{name: "element-in-every-set", numSets: 3, n: 4, edges: []graph.Edge{
			{U: 0, V: 3}, {U: 1, V: 3}, {U: 2, V: 3},
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			g := graph.FromEdges(tc.n, tc.edges, graph.DefaultBuild)
			res := setcover.Approx(g, tc.numSets, setcover.Options{})
			if err := oracle.VerifyCover(g, tc.numSets, res.InCover, 0.01); err != nil {
				t.Fatalf("%v", err)
			}
		})
	}
}
