package proptest

import (
	"fmt"
	"testing"

	"julienne/internal/algo/bfs"
	"julienne/internal/algo/cc"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/compress"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/oracle"
	"julienne/internal/rng"
)

// bucketOptions derives a bucket configuration from the case so the
// sweep covers the default open range, a tiny range that forces heavy
// overflow traffic, and the semisort update ablation.
func bucketOptions(c Case) bucket.Options {
	opt := bucket.Options{}
	switch c.Rand(0, 3) {
	case 1:
		opt.OpenBuckets = 2
	case 2:
		opt.OpenBuckets = 7
	}
	opt.Semisort = c.Rand(9, 2) == 1
	return opt
}

// reweight picks a weight family for SSSP cases: small uniform weights
// (dense ties), weights including zero, the paper's wBFS [1, log n)
// weighting, and the paper's ∆-stepping [1, 10^5) weighting.
func reweight(c Case, g *graph.CSR) *graph.CSR {
	switch c.Rand(2, 4) {
	case 0:
		return gen.UniformWeights(g, 1, 4, c.Seed)
	case 1:
		return gen.UniformWeights(g, 0, 6, c.Seed)
	case 2:
		return gen.LogWeights(g, c.Seed)
	default:
		return gen.HeavyWeights(g, c.Seed)
	}
}

func TestKCoreMatchesOracle(t *testing.T) {
	Check(t, gen.SymmetricFamilies(), func(c Case, g *graph.CSR) error {
		want := oracle.Coreness(g)
		h := c.Wrap(g)
		res := kcore.Coreness(h, kcore.Options{Buckets: bucketOptions(c)})
		if err := oracle.DiffUint32("kcore.Coreness", res.Coreness, want); err != nil {
			return err
		}
		if err := oracle.DiffUint32("kcore.CorenessLigra", kcore.CorenessLigra(h).Coreness, want); err != nil {
			return err
		}
		return oracle.DiffUint32("kcore.CorenessBZ", kcore.CorenessBZ(h), want)
	})
}

func TestSSSPMatchesOracle(t *testing.T) {
	Check(t, gen.Families(), func(c Case, g *graph.CSR) error {
		n := g.NumVertices()
		if n == 0 {
			return nil
		}
		wg := reweight(c, g)
		src := graph.Vertex(c.Rand(3, uint64(n)))
		want := oracle.Dijkstra(wg, src)
		h := c.Wrap(wg)
		delta := []int64{1, 3, 16, 1024}[c.Rand(4, 4)]
		opt := sssp.Options{Buckets: bucketOptions(c)}

		if err := oracle.DiffInt64("sssp.DeltaStepping", sssp.DeltaStepping(h, src, delta, opt).Dist, want); err != nil {
			return err
		}
		if err := oracle.DiffInt64("sssp.WBFS", sssp.WBFS(h, src, opt).Dist, want); err != nil {
			return err
		}
		if err := oracle.DiffInt64("sssp.DeltaSteppingLH", sssp.DeltaSteppingLH(h, src, delta, opt).Dist, want); err != nil {
			return err
		}
		if err := oracle.DiffInt64("sssp.DeltaSteppingBins", sssp.DeltaSteppingBins(h, src, delta).Dist, want); err != nil {
			return err
		}
		if err := oracle.DiffInt64("sssp.BellmanFord", sssp.BellmanFord(h, src).Dist, want); err != nil {
			return err
		}
		if err := oracle.DiffInt64("sssp.DijkstraHeap", sssp.DijkstraHeap(h, src).Dist, want); err != nil {
			return err
		}
		// Dial allocates one bucket per distance value; only run it when
		// the true distance range keeps that allocation small.
		if maxFinite(want) < 1<<20 {
			if err := oracle.DiffInt64("sssp.Dial", sssp.Dial(h, src).Dist, want); err != nil {
				return err
			}
		}
		return nil
	})
}

func maxFinite(dist []int64) int64 {
	var mx int64
	for _, d := range dist {
		if d > mx {
			mx = d
		}
	}
	return mx
}

func TestBFSMatchesOracle(t *testing.T) {
	Check(t, gen.Families(), func(c Case, g *graph.CSR) error {
		n := g.NumVertices()
		if n == 0 {
			return nil
		}
		src := graph.Vertex(c.Rand(5, uint64(n)))
		res := bfs.BFS(c.Wrap(g), src)
		return oracle.VerifyBFS(g, src, res.Level, res.Parent)
	})
}

func TestComponentsMatchOracle(t *testing.T) {
	Check(t, gen.SymmetricFamilies(), func(c Case, g *graph.CSR) error {
		labels := cc.Components(c.Wrap(g))
		if err := oracle.VerifyComponents(g, labels); err != nil {
			return err
		}
		// Both sides canonicalize to min-label, so the comparison can be
		// exact, not just partition-equivalent.
		return oracle.DiffVertices("cc.Components", labels, oracle.Components(g))
	})
}

// TestSetCoverWithinGreedyBound sweeps random bipartite instances
// rather than the graph families: set cover has its own generator and
// its own notion of correctness (validity plus the (1+ε)·H_d bound
// against the sequential greedy oracle — approximation algorithms do
// not match the oracle set-for-set).
func TestSetCoverWithinGreedyBound(t *testing.T) {
	cfg := DefaultConfig()
	for s := 0; s < cfg.Seeds; s++ {
		seed := rng.At(uint64(0x5e7c07e4), uint64(s))
		sets := 1 + int(rng.UintNAt(seed, 1, 40))
		elements := 1 + int(rng.UintNAt(seed, 2, uint64(cfg.MaxN)))
		avg := 1 + int(rng.UintNAt(seed, 3, 4))
		inst := gen.SetCover(sets, elements, avg, seed)
		tag := fmt.Sprintf("seed=%d sets=%d elements=%d avg=%d", seed, sets, elements, avg)

		for _, eps := range []float64{0.01, 0.25} {
			opt := setcover.Options{Epsilon: eps, Buckets: bucket.Options{OpenBuckets: int(rng.UintNAt(seed, 4, 8))}}
			res := setcover.Approx(inst.Graph, inst.Sets, opt)
			if err := oracle.VerifyCover(inst.Graph, inst.Sets, res.InCover, eps); err != nil {
				t.Fatalf("Approx %s eps=%g: %v", tag, eps, err)
			}
			pbbs := setcover.ApproxPBBS(inst.Graph, inst.Sets, opt)
			if err := oracle.VerifyCover(inst.Graph, inst.Sets, pbbs.InCover, eps); err != nil {
				t.Fatalf("ApproxPBBS %s eps=%g: %v", tag, eps, err)
			}
			comp := setcover.ApproxOn(compress.FromCSR(inst.Graph), inst.Sets, opt)
			if err := oracle.VerifyCover(inst.Graph, inst.Sets, comp.InCover, eps); err != nil {
				t.Fatalf("ApproxOn(compressed) %s eps=%g: %v", tag, eps, err)
			}
		}
		greedy := setcover.Greedy(inst.Graph, inst.Sets)
		if err := oracle.VerifyCover(inst.Graph, inst.Sets, greedy.InCover, 0); err != nil {
			t.Fatalf("Greedy %s: %v", tag, err)
		}
	}
}
