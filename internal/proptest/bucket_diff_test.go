package proptest

import (
	"fmt"
	"sort"
	"testing"

	"julienne/internal/bucket"
	"julienne/internal/rng"
)

// TestBucketParMatchesSeq drives the parallel bucket structure (§3.3)
// and the exact sequential structure (§3.2) in lockstep through a
// random peeling-style script — extract a bucket, retire or advance
// every extracted identifier by a random amount, repeat — and requires
// the extraction sequences to agree exactly: same bucket ids, same
// identifier sets, same Extracted/BucketsReturned totals. The open
// range, overflow bucket, and range advances of Par are pure
// representation choices, so any observable divergence from Seq is a
// bug. Runs with the default open range, a 2-bucket range that forces
// constant overflow traffic, and the semisort update path, under both
// traversal orders.
func TestBucketParMatchesSeq(t *testing.T) {
	cfg := DefaultConfig()
	opts := []bucket.Options{
		{},
		{OpenBuckets: 2},
		{OpenBuckets: 7, Semisort: true},
	}
	for s := 0; s < cfg.Seeds*2; s++ {
		seed := rng.At(uint64(0xb0c4e7), uint64(s))
		n := 1 + int(rng.UintNAt(seed, 1, uint64(cfg.MaxN)+1))
		for _, order := range []bucket.Order{bucket.Increasing, bucket.Decreasing} {
			for oi, opt := range opts {
				runBucketDiff(t, n, rng.At(seed, uint64(oi)), order, opt)
			}
		}
	}
}

func runBucketDiff(t *testing.T, n int, seed uint64, order bucket.Order, opt bucket.Options) {
	t.Helper()
	r := rng.New(seed)
	dvals := make([]bucket.ID, n)
	for i := range dvals {
		if r.UintN(8) == 0 {
			dvals[i] = bucket.Nil
		} else {
			dvals[i] = bucket.ID(r.UintN(300))
		}
	}
	d := func(i uint32) bucket.ID { return dvals[i] }
	par := bucket.New(n, d, order, opt)
	seq := bucket.NewSeq(n, d, order)

	ctx := func() string {
		return t.Name() + ": " + describeDiff(n, seed, order, opt)
	}
	for rounds := 0; ; rounds++ {
		if rounds > 4*n+16 {
			t.Fatalf("%s: no convergence after %d rounds", ctx(), rounds)
		}
		idP, liveP := par.NextBucket()
		idS, liveS := seq.NextBucket()
		if idP != idS {
			t.Fatalf("%s: round %d: Par returned bucket %d, Seq returned %d", ctx(), rounds, idP, idS)
		}
		if idP == bucket.Nil {
			break
		}
		sortedP := sortedIDs(liveP)
		sortedS := sortedIDs(liveS)
		if len(sortedP) != len(sortedS) {
			t.Fatalf("%s: round %d bucket %d: Par extracted %d ids, Seq %d",
				ctx(), rounds, idP, len(sortedP), len(sortedS))
		}
		for i := range sortedP {
			if sortedP[i] != sortedS[i] {
				t.Fatalf("%s: round %d bucket %d: extraction sets differ at %d: Par %d, Seq %d",
					ctx(), rounds, idP, i, sortedP[i], sortedS[i])
			}
		}

		// Retire or advance every extracted identifier, the way peeling
		// algorithms do: Nil removes it, next == prev drops it from the
		// structure (GetBucket returns None), and otherwise it moves a
		// random distance in traversal direction.
		type update struct {
			id         uint32
			prev, next bucket.ID
		}
		ups := make([]update, 0, len(sortedP))
		for _, id := range sortedP {
			prev := dvals[id]
			next := prev
			switch r.UintN(4) {
			case 0:
				next = bucket.Nil
			case 1:
				// stays put: filtered as a no-op move
			default:
				step := bucket.ID(1 + r.UintN(40))
				if order == bucket.Increasing {
					next = prev + step
				} else if prev > step {
					next = prev - step
				} else {
					next = 0
				}
			}
			ups = append(ups, update{id: id, prev: prev, next: next})
		}
		for _, u := range ups {
			dvals[u.id] = u.next
		}
		destsP := make([]bucket.Dest, len(ups))
		destsS := make([]bucket.Dest, len(ups))
		for i, u := range ups {
			destsP[i] = par.GetBucket(u.prev, u.next)
			destsS[i] = seq.GetBucket(u.prev, u.next)
		}
		par.UpdateBuckets(len(ups), func(j int) (uint32, bucket.Dest) { return ups[j].id, destsP[j] })
		seq.UpdateBuckets(len(ups), func(j int) (uint32, bucket.Dest) { return ups[j].id, destsS[j] })
	}

	sp, ss := par.Stats(), seq.Stats()
	if sp.Extracted != ss.Extracted || sp.BucketsReturned != ss.BucketsReturned {
		t.Fatalf("%s: stats diverged: Par extracted %d over %d buckets, Seq %d over %d",
			ctx(), sp.Extracted, sp.BucketsReturned, ss.Extracted, ss.BucketsReturned)
	}
}

func describeDiff(n int, seed uint64, order bucket.Order, opt bucket.Options) string {
	dir := "inc"
	if order == bucket.Decreasing {
		dir = "dec"
	}
	return fmt.Sprintf("n=%d seed=%d order=%s open=%d semisort=%t",
		n, seed, dir, opt.OpenBuckets, opt.Semisort)
}

func sortedIDs(ids []uint32) []uint32 {
	out := append([]uint32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
