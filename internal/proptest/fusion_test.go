package proptest

import (
	"fmt"
	"math"
	"testing"

	"julienne/internal/algo/sssp"
	"julienne/internal/bucket"
	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/oracle"
	"julienne/internal/rng"
)

// fusionSweep is the knob grid every SSSP fusion property runs under:
// the minimal budget (every bucket alone, so the lazy same-round path
// carries all reinsertions), a small budget with a tight span cap
// (constant rejections and cursor rewinds), a generous budget, and the
// unbounded maximal setting.
var fusionSweep = []bucket.Fusion{
	{MaxFrontier: 1},
	{MaxFrontier: 8, MaxSpan: 2},
	{MaxFrontier: 1 << 10},
	bucket.MaximalFusion(),
}

func fusionTag(f bucket.Fusion) string {
	span := fmt.Sprint(f.MaxSpan)
	if f.MaxSpan < 1 {
		span = "inf"
	}
	frontier := fmt.Sprint(f.MaxFrontier)
	if f.MaxFrontier == math.MaxInt {
		frontier = "inf"
	}
	return fmt.Sprintf("fused{frontier=%s,span=%s}", frontier, span)
}

// TestSSSPFusionMatchesOracle sweeps every generator family and weight
// family through the three fusion-capable algorithms at every knob
// setting, cross-checking distances against the Dijkstra oracle and
// requiring fusion to never extract more bucket rounds than the
// unfused run (its entire point is extracting fewer).
func TestSSSPFusionMatchesOracle(t *testing.T) {
	type variant struct {
		name string
		run  func(g graph.Graph, src graph.Vertex, delta int64, opt sssp.Options) sssp.Result
	}
	variants := []variant{
		{"sssp.DeltaStepping", sssp.DeltaStepping},
		{"sssp.WBFS", func(g graph.Graph, src graph.Vertex, _ int64, opt sssp.Options) sssp.Result {
			return sssp.WBFS(g, src, opt)
		}},
		{"sssp.DeltaSteppingLH", sssp.DeltaSteppingLH},
	}
	Check(t, gen.Families(), func(c Case, g *graph.CSR) error {
		n := g.NumVertices()
		if n == 0 {
			return nil
		}
		wg := reweight(c, g)
		src := graph.Vertex(c.Rand(3, uint64(n)))
		want := oracle.Dijkstra(wg, src)
		h := c.Wrap(wg)
		delta := []int64{1, 3, 16, 1024}[c.Rand(4, 4)]
		base := sssp.Options{Buckets: bucketOptions(c)}

		for _, v := range variants {
			ref := v.run(h, src, delta, base)
			if err := oracle.DiffInt64(v.name+" unfused", ref.Dist, want); err != nil {
				return err
			}
			for _, fus := range fusionSweep {
				opt := base
				opt.Fusion = fus
				res := v.run(h, src, delta, opt)
				tag := v.name + " " + fusionTag(fus)
				if err := oracle.DiffInt64(tag, res.Dist, want); err != nil {
					return err
				}
				if fusedRounds, refRounds := res.BucketStats.BucketsReturned, ref.BucketStats.BucketsReturned; fusedRounds > refRounds {
					return fmt.Errorf("%s extracted %d bucket rounds, unfused run only %d",
						tag, fusedRounds, refRounds)
				}
			}
		}
		return nil
	})
}

// TestBucketFusedParMatchesSeq is the fused counterpart of
// TestBucketParMatchesSeq: it drives Par and Seq through the full
// fused protocol — NextBucketFused, a wave of random moves, DrainLazy
// until the span settles, repeat — and requires identical fused id
// ranges, identical frontier and drain contents, and identical
// extraction totals at every step. Par runs with OpenBuckets covering
// the whole id universe so its open-range boundary (a Par-only
// representation limit, pinned by unit tests) never ends a run early.
func TestBucketFusedParMatchesSeq(t *testing.T) {
	fusions := []bucket.Fusion{
		{MaxFrontier: 1},
		{MaxFrontier: 4, MaxSpan: 3},
		{MaxFrontier: 1 << 20, MaxSpan: 5},
		bucket.MaximalFusion(),
	}
	cfg := DefaultConfig()
	for s := 0; s < cfg.Seeds*2; s++ {
		seed := rng.At(uint64(0xf05ed), uint64(s))
		n := 1 + int(rng.UintNAt(seed, 1, uint64(cfg.MaxN)+1))
		for _, order := range []bucket.Order{bucket.Increasing, bucket.Decreasing} {
			for fi, fus := range fusions {
				for si, semi := range []bool{false, true} {
					runFusedBucketDiff(t, n, rng.At(seed, uint64(8*fi+si)), order, fus, semi)
				}
			}
		}
	}
}

// fusedDiffBuckets bounds the logical id universe of the fused
// differential script; Par runs with OpenBuckets equal to it so the
// whole universe fits one open range.
const fusedDiffBuckets = 96

func runFusedBucketDiff(t *testing.T, n int, seed uint64, order bucket.Order, fus bucket.Fusion, semisort bool) {
	t.Helper()
	r := rng.New(seed)
	dvals := make([]bucket.ID, n)
	for i := range dvals {
		if r.UintN(8) == 0 {
			dvals[i] = bucket.Nil
		} else {
			dvals[i] = bucket.ID(r.UintN(fusedDiffBuckets))
		}
	}
	d := func(i uint32) bucket.ID { return dvals[i] }
	par := bucket.New(n, d, order, bucket.Options{OpenBuckets: fusedDiffBuckets, Semisort: semisort})
	seq := bucket.NewSeq(n, d, order)

	ctx := func() string {
		dir := "inc"
		if order == bucket.Decreasing {
			dir = "dec"
		}
		return fmt.Sprintf("%s: n=%d seed=%d order=%s %s semisort=%t",
			t.Name(), n, seed, dir, fusionTag(fus), semisort)
	}
	diffWave := func(what string, rounds int, liveP, liveS []uint32) []uint32 {
		t.Helper()
		sortedP, sortedS := sortedIDs(liveP), sortedIDs(liveS)
		if len(sortedP) != len(sortedS) {
			t.Fatalf("%s: round %d %s: Par returned %d ids, Seq %d",
				ctx(), rounds, what, len(sortedP), len(sortedS))
		}
		for i := range sortedP {
			if sortedP[i] != sortedS[i] {
				t.Fatalf("%s: round %d %s: contents differ at %d: Par %d, Seq %d",
					ctx(), rounds, what, i, sortedP[i], sortedS[i])
			}
		}
		return sortedP
	}

	// moveOn picks an update for one extracted identifier: retire it,
	// reinsert it into its own bucket (wave 0 only, so the lazy loop
	// terminates), or advance it in traversal direction. Advances that
	// land inside the fused span route through the lazy buffer and come
	// back the same round; ids at the traversal-direction end of the
	// universe retire, so every wave makes progress.
	moveOn := func(prev bucket.ID, wave int) bucket.ID {
		switch r.UintN(4) {
		case 0:
			return bucket.Nil
		case 1:
			if wave == 0 {
				return prev
			}
			return bucket.Nil
		default:
			step := bucket.ID(1 + r.UintN(7))
			if order == bucket.Increasing {
				next := prev + step
				if next >= fusedDiffBuckets {
					return bucket.Nil
				}
				return next
			}
			if prev < step {
				return bucket.Nil
			}
			return prev - step
		}
	}

	for rounds := 0; ; rounds++ {
		if rounds > 8*n+64 {
			t.Fatalf("%s: no convergence after %d rounds", ctx(), rounds)
		}
		fP, lP, liveP := par.NextBucketFused(fus.MaxFrontier, fus.MaxSpan)
		fS, lS, liveS := seq.NextBucketFused(fus.MaxFrontier, fus.MaxSpan)
		if fP != fS || lP != lS {
			t.Fatalf("%s: round %d: Par fused [%d, %d], Seq fused [%d, %d]",
				ctx(), rounds, fP, lP, fS, lS)
		}
		if fP == bucket.Nil {
			break
		}
		wave := diffWave("fused frontier", rounds, liveP, liveS)
		for w := 0; len(wave) > 0; w++ {
			if w > fusedDiffBuckets+8 {
				t.Fatalf("%s: round %d: lazy loop did not settle after %d waves", ctx(), rounds, w)
			}
			type update struct {
				id         uint32
				prev, next bucket.ID
			}
			ups := make([]update, 0, len(wave))
			for _, id := range wave {
				prev := dvals[id]
				ups = append(ups, update{id: id, prev: prev, next: moveOn(prev, w)})
			}
			for _, u := range ups {
				dvals[u.id] = u.next
			}
			destsP := make([]bucket.Dest, len(ups))
			destsS := make([]bucket.Dest, len(ups))
			for i, u := range ups {
				destsP[i] = par.GetBucket(u.prev, u.next)
				destsS[i] = seq.GetBucket(u.prev, u.next)
			}
			par.UpdateBuckets(len(ups), func(j int) (uint32, bucket.Dest) { return ups[j].id, destsP[j] })
			seq.UpdateBuckets(len(ups), func(j int) (uint32, bucket.Dest) { return ups[j].id, destsS[j] })
			wave = diffWave("lazy drain", rounds, par.DrainLazy(), seq.DrainLazy())
		}
	}

	sp, ss := par.Stats(), seq.Stats()
	if sp.Extracted != ss.Extracted || sp.BucketsReturned != ss.BucketsReturned {
		t.Fatalf("%s: stats diverged: Par extracted %d over %d fused rounds, Seq %d over %d",
			ctx(), sp.Extracted, sp.BucketsReturned, ss.Extracted, ss.BucketsReturned)
	}
}
