package microbench

import (
	"testing"

	"julienne/internal/bucket"
)

func TestRunCompletes(t *testing.T) {
	p := Run(Config{Identifiers: 20000, Buckets: 128, Seed: 1})
	if p.Rounds == 0 {
		t.Fatal("no rounds")
	}
	if p.Processed < int64(p.Identifiers) {
		// Every identifier is extracted at least once (unless retired
		// to Nil before its bucket surfaces), so Processed is at least
		// a sizeable fraction of n.
		t.Logf("processed=%d n=%d", p.Processed, p.Identifiers)
	}
	if p.Throughput <= 0 || p.AvgPerRound <= 0 {
		t.Fatalf("bad derived stats: %+v", p)
	}
}

func TestDeterministicWorkload(t *testing.T) {
	a := Run(Config{Identifiers: 10000, Buckets: 256, Seed: 42})
	b := Run(Config{Identifiers: 10000, Buckets: 256, Seed: 42})
	if a.Rounds != b.Rounds || a.Processed != b.Processed {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
	c := Run(Config{Identifiers: 10000, Buckets: 256, Seed: 43})
	if c.Processed == a.Processed && c.Rounds == a.Rounds {
		t.Log("different seed produced identical stats (possible but unlikely)")
	}
}

func TestMoreBucketsMeansFewerPerRound(t *testing.T) {
	small := Run(Config{Identifiers: 50000, Buckets: 128, Seed: 7})
	large := Run(Config{Identifiers: 50000, Buckets: 1024, Seed: 7})
	if large.AvgPerRound >= small.AvgPerRound {
		t.Fatalf("avg/round should shrink with more buckets: %v vs %v",
			large.AvgPerRound, small.AvgPerRound)
	}
}

func TestSweepShape(t *testing.T) {
	pts := Sweep([]int{128, 256}, []int{1000, 5000}, 1)
	if len(pts) != 4 {
		t.Fatalf("expected 4 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Rounds == 0 || p.Processed == 0 {
			t.Fatalf("degenerate point %+v", p)
		}
	}
}

func TestSemisortOptionRuns(t *testing.T) {
	p := Run(Config{Identifiers: 20000, Buckets: 128, Seed: 3,
		Options: bucket.Options{Semisort: true}})
	if p.Rounds == 0 {
		t.Fatal("semisort variant made no progress")
	}
}

func TestSummarize(t *testing.T) {
	pts := []Point{
		{AvgPerRound: 10, Throughput: 100},
		{AvgPerRound: 100, Throughput: 600},
		{AvgPerRound: 1000, Throughput: 1000},
	}
	s := Summarize(pts)
	if s.PeakThroughput != 1000 {
		t.Fatalf("peak=%v", s.PeakThroughput)
	}
	// half = 500, crossed between (10,100) and (100,600):
	// frac = 400/500 = 0.8 -> 10 + 0.8*90 = 82.
	if s.HalfLength < 81.9 || s.HalfLength > 82.1 {
		t.Fatalf("half length %v want ~82", s.HalfLength)
	}
	if s2 := Summarize(nil); s2.PeakThroughput != 0 {
		t.Fatal("empty summarize")
	}
	// Every point above half peak -> HalfLength 0.
	flat := []Point{{AvgPerRound: 1, Throughput: 900}, {AvgPerRound: 2, Throughput: 1000}}
	if s3 := Summarize(flat); s3.HalfLength != 0 {
		t.Fatalf("flat half length %v", s3.HalfLength)
	}
}

func TestSummarizeRealSweep(t *testing.T) {
	pts := Sweep([]int{128}, []int{1 << 10, 1 << 14, 1 << 17}, 5)
	s := Summarize(pts)
	if s.PeakThroughput <= 0 {
		t.Fatal("no peak measured")
	}
}
