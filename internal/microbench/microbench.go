// Package microbench implements the bucket-structure microbenchmark of
// §3.4 (Figure 1): it simulates a bucketing-based application on a
// degree-8 random graph, measuring the structure's throughput
// (identifiers extracted + identifiers moved, per second) against the
// average number of identifiers processed per round.
//
// Protocol (verbatim from the paper): identifiers start in uniformly
// random buckets out of b initial buckets and are traversed in
// increasing order. Each round extracts a set S; every extracted
// identifier picks 8 random neighbors v_0..v_7; a neighbor whose
// bucket exceeds cur moves to bucket max(cur, D(v_i)/2); otherwise its
// bucket is set to nullbkt so extracted identifiers are never
// reinserted. Moves to nullbkt are free and excluded from throughput.
package microbench

import (
	"time"

	"julienne/internal/bucket"
	"julienne/internal/harness"
	"julienne/internal/rng"
)

// Config parameterizes one microbenchmark run.
type Config struct {
	// Identifiers is n, the number of bucketed identifiers.
	Identifiers int
	// Buckets is b, the number of initial buckets (the paper sweeps
	// 128, 256, 512, 1024).
	Buckets int
	// Fanout is the simulated degree (8 in the paper).
	Fanout int
	// Seed makes the run reproducible.
	Seed uint64
	// Options configures the bucket structure under test.
	Options bucket.Options
}

// Point is one data point of Figure 1.
type Point struct {
	Identifiers int
	Buckets     int
	// Rounds is the number of non-empty buckets extracted.
	Rounds int64
	// Processed is extracted + moved (the throughput numerator).
	Processed int64
	// AvgPerRound is Processed / Rounds (Figure 1's x axis).
	AvgPerRound float64
	// Elapsed is the wall-clock time of the run.
	Elapsed time.Duration
	// Throughput is Processed per second (Figure 1's y axis).
	Throughput float64
}

// Run executes the microbenchmark once.
func Run(cfg Config) Point {
	if cfg.Fanout <= 0 {
		cfg.Fanout = 8
	}
	n := cfg.Identifiers
	d := make([]bucket.ID, n)
	for i := range d {
		d[i] = bucket.ID(rng.UintNAt(cfg.Seed, uint64(i), uint64(cfg.Buckets)))
	}

	var b *bucket.Par
	elapsed := harness.Time(func() {
		b = bucket.New(n, func(i uint32) bucket.ID { return d[i] }, bucket.Increasing, cfg.Options)

		ids := make([]uint32, 0, 1024)
		dests := make([]bucket.Dest, 0, 1024)
		round := uint64(0)
		for {
			cur, extracted := b.NextBucket()
			if cur == bucket.Nil {
				break
			}
			round++
			ids = ids[:0]
			dests = dests[:0]
			for _, id := range extracted {
				for j := 0; j < cfg.Fanout; j++ {
					v := uint32(rng.UintNAt(cfg.Seed^0x5eed, round<<24|uint64(id)<<3|uint64(j), uint64(n)))
					prev := d[v]
					if prev == bucket.Nil {
						continue
					}
					var next bucket.ID
					if prev > cur {
						next = max(cur, prev/2)
					} else {
						next = bucket.Nil
					}
					d[v] = next
					if dest := b.GetBucket(prev, next); dest != bucket.None {
						ids = append(ids, v)
						dests = append(dests, dest)
					}
				}
			}
			b.UpdateBuckets(len(ids), func(j int) (uint32, bucket.Dest) {
				return ids[j], dests[j]
			})
		}
	})

	st := b.Stats()
	p := Point{
		Identifiers: n,
		Buckets:     cfg.Buckets,
		Rounds:      st.BucketsReturned,
		Processed:   st.Throughput(),
		Elapsed:     elapsed,
	}
	if p.Rounds > 0 {
		p.AvgPerRound = float64(p.Processed) / float64(p.Rounds)
	}
	if s := elapsed.Seconds(); s > 0 {
		p.Throughput = float64(p.Processed) / s
	}
	return p
}

// Sweep runs the Figure 1 grid: for each bucket count, a range of
// identifier counts produces points with varying identifiers/round.
func Sweep(bucketCounts, identifierCounts []int, seed uint64) []Point {
	var pts []Point
	for _, b := range bucketCounts {
		for _, n := range identifierCounts {
			pts = append(pts, Run(Config{Identifiers: n, Buckets: b, Seed: seed}))
		}
	}
	return pts
}

// Summary holds the two scalar metrics §3.4 extracts from Figure 1:
// the peak throughput, and the half-performance length — the average
// identifiers/round at which the structure reaches half its peak
// (the paper measures ≈10⁹ ids/s and ≈5·10⁵ ids/round on 144 threads).
type Summary struct {
	PeakThroughput float64
	// HalfLength is linearly interpolated between the sweep points
	// bracketing peak/2; 0 if every point already exceeds half peak.
	HalfLength float64
}

// Summarize computes the §3.4 summary metrics from sweep points.
func Summarize(pts []Point) Summary {
	var s Summary
	for _, p := range pts {
		if p.Throughput > s.PeakThroughput {
			s.PeakThroughput = p.Throughput
		}
	}
	if s.PeakThroughput == 0 {
		return s
	}
	half := s.PeakThroughput / 2
	// Order points by identifiers/round and find the first crossing.
	ordered := append([]Point(nil), pts...)
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j-1].AvgPerRound > ordered[j].AvgPerRound; j-- {
			ordered[j-1], ordered[j] = ordered[j], ordered[j-1]
		}
	}
	for i, p := range ordered {
		if p.Throughput >= half {
			if i == 0 {
				return s // already above half at the smallest load
			}
			prev := ordered[i-1]
			frac := (half - prev.Throughput) / (p.Throughput - prev.Throughput)
			s.HalfLength = prev.AvgPerRound + frac*(p.AvgPerRound-prev.AvgPerRound)
			return s
		}
	}
	return s
}
