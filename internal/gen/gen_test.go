package gen

import (
	"testing"

	"julienne/internal/graph"
)

func validOrFatal(t *testing.T, g *graph.CSR) {
	t.Helper()
	if err := graph.Validate(g); err != nil {
		t.Fatal(err)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(1000, 5000, false, 1)
	validOrFatal(t, g)
	if g.NumVertices() != 1000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	if m := g.NumEdges(); m < 4500 || m > 5000 {
		t.Fatalf("m=%d far from requested 5000", m)
	}
	s := ErdosRenyi(1000, 5000, true, 1)
	validOrFatal(t, s)
	if !s.Symmetric() {
		t.Fatal("not symmetric")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := RMAT(1<<10, 8000, true, 42)
	b := RMAT(1<<10, 8000, true, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different edge counts")
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.OutDegree(graph.Vertex(v)) != b.OutDegree(graph.Vertex(v)) {
			t.Fatalf("same seed, different degree at %d", v)
		}
	}
	c := RMAT(1<<10, 8000, true, 43)
	diff := false
	for v := 0; v < a.NumVertices() && !diff; v++ {
		if a.OutDegree(graph.Vertex(v)) != c.OutDegree(graph.Vertex(v)) {
			diff = true
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomRegular(t *testing.T) {
	g := RandomRegular(2000, 8, false, 7)
	validOrFatal(t, g)
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.OutDegree(graph.Vertex(v)); d > 8 {
			t.Fatalf("degree %d exceeds 8", d)
		}
	}
	// Dedup removes only a tiny fraction at this density.
	if m := g.NumEdges(); m < 15000 {
		t.Fatalf("m=%d too small", m)
	}
}

func TestRMATSkew(t *testing.T) {
	g := RMAT(1<<12, 40000, true, 9)
	validOrFatal(t, g)
	// RMAT should produce a heavy tail: max degree well above average.
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("RMAT not skewed: max=%d avg=%.1f", g.MaxDegree(), avg)
	}
}

func TestChungLu(t *testing.T) {
	g := ChungLu(4000, 30000, 2.3, true, 5)
	validOrFatal(t, g)
	avg := float64(g.NumEdges()) / float64(g.NumVertices())
	if float64(g.MaxDegree()) < 4*avg {
		t.Fatalf("ChungLu not skewed: max=%d avg=%.1f", g.MaxDegree(), avg)
	}
}

func TestGrid2D(t *testing.T) {
	g := Grid2D(10, 15)
	validOrFatal(t, g)
	if g.NumVertices() != 150 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Interior vertices have degree 4, corners 2.
	if g.OutDegree(0) != 2 {
		t.Fatalf("corner degree %d", g.OutDegree(0))
	}
	if g.OutDegree(graph.Vertex(1*15+1)) != 4 {
		t.Fatalf("interior degree %d", g.OutDegree(graph.Vertex(16)))
	}
	// m = 2 * (#undirected edges) = 2 * (10*14 + 9*15)
	if g.NumEdges() != int64(2*(10*14+9*15)) {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestSmallFixtures(t *testing.T) {
	p := Path(5)
	validOrFatal(t, p)
	if p.NumEdges() != 8 {
		t.Fatalf("path m=%d", p.NumEdges())
	}
	c := Cycle(6)
	validOrFatal(t, c)
	if c.NumEdges() != 12 {
		t.Fatalf("cycle m=%d", c.NumEdges())
	}
	for v := 0; v < 6; v++ {
		if c.OutDegree(graph.Vertex(v)) != 2 {
			t.Fatal("cycle degree != 2")
		}
	}
	s := Star(7)
	validOrFatal(t, s)
	if s.OutDegree(0) != 6 || s.OutDegree(3) != 1 {
		t.Fatal("star degrees wrong")
	}
	k := Complete(5)
	validOrFatal(t, k)
	for v := 0; v < 5; v++ {
		if k.OutDegree(graph.Vertex(v)) != 4 {
			t.Fatal("K5 degree != 4")
		}
	}
}

func TestUniformWeightsSymmetric(t *testing.T) {
	g := UniformWeights(Grid2D(8, 8), 1, 100, 3)
	if !g.Weighted() {
		t.Fatal("not weighted")
	}
	// w(u,v) == w(v,u) and in range.
	for v := 0; v < g.NumVertices(); v++ {
		g.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			if w < 1 || w >= 100 {
				t.Fatalf("weight %d out of range", w)
			}
			g.OutNeighbors(u, func(x graph.Vertex, w2 graph.Weight) bool {
				if x == graph.Vertex(v) && w2 != w {
					t.Fatalf("asymmetric weight (%d,%d): %d vs %d", v, u, w, w2)
				}
				return true
			})
			return true
		})
	}
}

func TestLogAndHeavyWeights(t *testing.T) {
	g := Grid2D(20, 20)
	lg := LogWeights(g, 1)
	hv := HeavyWeights(g, 1)
	maxLog, maxHeavy := graph.Weight(0), graph.Weight(0)
	for v := 0; v < g.NumVertices(); v++ {
		lg.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			if w < 1 {
				t.Fatalf("log weight %d < 1", w)
			}
			if w > maxLog {
				maxLog = w
			}
			return true
		})
		hv.OutNeighbors(graph.Vertex(v), func(u graph.Vertex, w graph.Weight) bool {
			if w < 1 || w >= 100000 {
				t.Fatalf("heavy weight %d out of range", w)
			}
			if w > maxHeavy {
				maxHeavy = w
			}
			return true
		})
	}
	if maxLog >= 10 { // log2(400) ≈ 8.6 -> hi=9
		t.Fatalf("log weight cap wrong: max=%d", maxLog)
	}
	if maxHeavy < 50000 {
		t.Fatalf("heavy weights suspiciously small: max=%d", maxHeavy)
	}
}

func TestSetCoverInstance(t *testing.T) {
	inst := SetCover(100, 1000, 3, 11)
	g := inst.Graph
	validOrFatal(t, g)
	if g.NumVertices() != 1100 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Every element must be covered by at least one set, and edges only
	// run from sets to elements.
	covered := make([]bool, inst.Elements)
	for s := 0; s < inst.Sets; s++ {
		g.OutNeighbors(graph.Vertex(s), func(u graph.Vertex, w graph.Weight) bool {
			if int(u) < inst.Sets {
				t.Fatalf("set->set edge (%d,%d)", s, u)
			}
			covered[int(u)-inst.Sets] = true
			return true
		})
	}
	for e := inst.Sets; e < g.NumVertices(); e++ {
		if g.OutDegree(graph.Vertex(e)) != 0 {
			t.Fatalf("element %d has out-edges", e)
		}
	}
	for e, c := range covered {
		if !c {
			t.Fatalf("element %d uncovered", e)
		}
	}
}
