package gen

import (
	"math"

	"julienne/internal/graph"
)

// Family is one graph-generator family behind a uniform (n, m, seed)
// constructor, so harnesses (the property tests in internal/proptest,
// fuzzers, benchmark sweeps) can enumerate every workload shape this
// package produces without hard-coding the individual signatures.
//
// Build treats n and m as targets: generators that fix their own edge
// count (Path, Star, Complete, Grid2D, ...) ignore m, and generators
// that sample edges may realize slightly fewer after dedup. Build must
// accept any n ≥ 0 and m ≥ 0 and stay deterministic in seed.
type Family struct {
	// Name identifies the family in reports ("rmat-sym", "grid", ...).
	Name string
	// Symmetric reports whether Build returns undirected graphs.
	Symmetric bool
	// Build returns a graph with ~n vertices and ~m edges.
	Build func(n, m int, seed uint64) *graph.CSR
}

// Families enumerates every generator family in this package, both
// directed and undirected where the generator supports it. The list
// is append-only: property tests iterate it, so a new generator added
// here is automatically cross-checked against the oracles.
func Families() []Family {
	fams := []Family{
		{Name: "erdos-renyi", Symmetric: false,
			Build: func(n, m int, seed uint64) *graph.CSR { return ErdosRenyi(n, m, false, seed) }},
		{Name: "erdos-renyi-sym", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR { return ErdosRenyi(n, m, true, seed) }},
		{Name: "rmat", Symmetric: false, Build: buildRMAT(false)},
		{Name: "rmat-sym", Symmetric: true, Build: buildRMAT(true)},
		{Name: "chung-lu", Symmetric: false,
			Build: func(n, m int, seed uint64) *graph.CSR { return ChungLu(n, m, 2.5, false, seed) }},
		{Name: "chung-lu-sym", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR { return ChungLu(n, m, 2.5, true, seed) }},
		{Name: "random-regular-sym", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR {
				d := 1
				if n > 0 {
					d = 1 + m/n
				}
				return RandomRegular(n, d, true, seed)
			}},
		{Name: "grid", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR {
				rows := int(math.Sqrt(float64(n)))
				if rows < 1 {
					rows = 1
				}
				cols := n / rows
				if cols < 1 {
					cols = 1
				}
				return Grid2D(rows, cols)
			}},
		{Name: "path", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR { return Path(n) }},
		{Name: "cycle", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR { return Cycle(n) }},
		{Name: "star", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR { return Star(n) }},
		{Name: "complete", Symmetric: true,
			Build: func(n, m int, seed uint64) *graph.CSR {
				// K_n has n(n-1) directed edges; cap n so the densest
				// family stays proportionate to the requested m.
				if n > 48 {
					n = 48
				}
				return Complete(n)
			}},
	}
	// Normalize the n = 0 corner uniformly: several generators would
	// otherwise reject-sample forever or panic drawing from an empty
	// vertex range.
	for i := range fams {
		fams[i].Build = emptyGuard(fams[i].Build, fams[i].Symmetric)
	}
	return fams
}

// emptyGuard short-circuits n <= 0 to the empty graph.
func emptyGuard(build func(n, m int, seed uint64) *graph.CSR, symmetric bool) func(n, m int, seed uint64) *graph.CSR {
	return func(n, m int, seed uint64) *graph.CSR {
		if n <= 0 {
			opt := graph.DefaultBuild
			opt.Symmetrize = symmetric
			return graph.FromEdges(0, nil, opt)
		}
		return build(n, m, seed)
	}
}

// buildRMAT adapts RMAT, which loops until it accepts m in-range edges
// and so would spin forever on n < 2 (every sample is rejected as a
// self-loop or out of range).
func buildRMAT(symmetric bool) func(n, m int, seed uint64) *graph.CSR {
	return func(n, m int, seed uint64) *graph.CSR {
		if n < 2 {
			return ErdosRenyi(n, 0, symmetric, seed)
		}
		return RMAT(n, m, symmetric, seed)
	}
}

// SymmetricFamilies filters Families down to undirected output, the
// input contract of k-core and connected components.
func SymmetricFamilies() []Family {
	all := Families()
	out := all[:0]
	for _, f := range all {
		if f.Symmetric {
			out = append(out, f)
		}
	}
	return out
}
