package gen

import (
	"testing"

	"julienne/internal/graph"
)

// Every family must produce structurally valid graphs across sizes
// (including the n = 0 and n = 1 corners), honor its Symmetric flag,
// and be deterministic in the seed.
func TestFamiliesValid(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(fam.Name, func(t *testing.T) {
			for _, size := range [][2]int{{0, 0}, {1, 4}, {2, 1}, {17, 40}, {64, 256}} {
				n, m := size[0], size[1]
				g := fam.Build(n, m, 42)
				if err := graph.Validate(g); err != nil {
					t.Fatalf("n=%d m=%d: %v", n, m, err)
				}
				if g.Symmetric() != fam.Symmetric {
					t.Fatalf("n=%d m=%d: Symmetric()=%v, flag says %v", n, m, g.Symmetric(), fam.Symmetric)
				}
				again := fam.Build(n, m, 42)
				if g.NumVertices() != again.NumVertices() || g.NumEdges() != again.NumEdges() {
					t.Fatalf("n=%d m=%d: not deterministic", n, m)
				}
			}
		})
	}
}

func TestSymmetricFamilies(t *testing.T) {
	syms := SymmetricFamilies()
	if len(syms) < 6 {
		t.Fatalf("only %d symmetric families; property tests need ≥ 6", len(syms))
	}
	for _, f := range syms {
		if !f.Symmetric {
			t.Fatalf("family %s in SymmetricFamilies is not symmetric", f.Name)
		}
	}
}
