// Package gen generates the synthetic graph workloads the experiments
// run on. The paper evaluates on real social networks and hyperlink
// crawls (com-Orkut, Twitter, Friendster, Hyperlink2012/2014, Table 2);
// those inputs are multi-gigabyte downloads, so this reproduction
// substitutes generators that control the structural properties the
// evaluation actually exercises:
//
//   - RMAT / Chung–Lu power-law graphs: heavy-tailed degrees and small
//     diameter, the regime of the paper's social/hyperlink graphs, used
//     for k-core, wBFS and set cover;
//   - grid/road-like graphs: large diameter and bounded degree, the
//     regime where ∆-stepping's annulus structure matters;
//   - uniform random degree-d graphs: the §3.4 microbenchmark input;
//   - random bipartite incidence graphs: set-cover instances.
//
// Every generator takes an explicit seed and is fully deterministic.
package gen

import (
	"math"

	"julienne/internal/graph"
	"julienne/internal/rng"
)

// ErdosRenyi returns a simple directed (or symmetric) graph with n
// vertices and approximately m edges sampled uniformly. Duplicates and
// self-loops are removed, so the realized edge count can be slightly
// below m.
func ErdosRenyi(n int, m int, symmetric bool, seed uint64) *graph.CSR {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := graph.Vertex(r.IntN(n))
		v := graph.Vertex(r.IntN(n))
		edges = append(edges, graph.Edge{U: u, V: v})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = symmetric
	return graph.FromEdges(n, edges, opt)
}

// RandomRegular returns a graph where every vertex draws d out-neighbors
// uniformly at random — the "degree-8 random graph" of the bucketing
// microbenchmark (§3.4) with d = 8. Self-loops and duplicates are
// removed, so out-degrees are at most d.
func RandomRegular(n, d int, symmetric bool, seed uint64) *graph.CSR {
	edges := make([]graph.Edge, 0, n*d)
	for v := 0; v < n; v++ {
		for j := 0; j < d; j++ {
			u := graph.Vertex(rng.UintNAt(seed, uint64(v*d+j), uint64(n)))
			edges = append(edges, graph.Edge{U: graph.Vertex(v), V: u})
		}
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = symmetric
	return graph.FromEdges(n, edges, opt)
}

// RMAT samples m edges from the recursive-matrix distribution with the
// canonical Graph500 parameters (a, b, c, d) = (0.57, 0.19, 0.19, 0.05),
// producing the skewed degree distributions of social networks. n is
// rounded up to a power of two internally but the returned graph keeps
// the requested n by rejecting out-of-range endpoints.
func RMAT(n, m int, symmetric bool, seed uint64) *graph.CSR {
	const a, b, c = 0.57, 0.19, 0.19
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, m)
	for len(edges) < m {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			p := r.Float64()
			switch {
			case p < a:
				// top-left quadrant: no bits set
			case p < a+b:
				v |= 1 << l
			case p < a+b+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u >= n || v >= n || u == v {
			continue
		}
		edges = append(edges, graph.Edge{U: graph.Vertex(u), V: graph.Vertex(v)})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = symmetric
	return graph.FromEdges(n, edges, opt)
}

// ChungLu samples m edges where vertex i is chosen with probability
// proportional to (i+1)^(-1/(beta-1)), giving a power-law degree
// distribution with exponent beta (use beta ≈ 2.1–3 for social-like
// graphs). Endpoints are sampled independently (the Chung–Lu model).
func ChungLu(n, m int, beta float64, symmetric bool, seed uint64) *graph.CSR {
	// Build the cumulative weight table once; per-edge sampling is a
	// binary search over it.
	exp := -1.0 / (beta - 1.0)
	cum := make([]float64, n+1)
	for i := 0; i < n; i++ {
		cum[i+1] = cum[i] + math.Pow(float64(i+1), exp)
	}
	total := cum[n]
	r := rng.New(seed)
	sample := func() graph.Vertex {
		x := r.Float64() * total
		lo, hi := 0, n
		for lo+1 < hi {
			mid := (lo + hi) / 2
			if cum[mid] <= x {
				lo = mid
			} else {
				hi = mid
			}
		}
		return graph.Vertex(lo)
	}
	edges := make([]graph.Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, graph.Edge{U: sample(), V: sample()})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = symmetric
	return graph.FromEdges(n, edges, opt)
}

// Grid2D returns the rows×cols 4-neighbor mesh, a road-network stand-in:
// bounded degree and Θ(rows+cols) diameter, the regime in which
// ∆-stepping's bucket count is large (Figure 4's road-like behaviour).
// The graph is symmetric.
func Grid2D(rows, cols int) *graph.CSR {
	id := func(r, c int) graph.Vertex { return graph.Vertex(r*cols + c) }
	edges := make([]graph.Edge, 0, 2*rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r, c+1)})
			}
			if r+1 < rows {
				edges = append(edges, graph.Edge{U: id(r, c), V: id(r+1, c)})
			}
		}
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(rows*cols, edges, opt)
}

// Path returns the n-vertex path graph (symmetric), the worst case for
// round counts: diameter n-1.
func Path(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 0; i+1 < n; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(i + 1)})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(n, edges, opt)
}

// Cycle returns the n-vertex cycle graph (symmetric). Every vertex has
// degree 2, so k-core peels the whole graph in one round at k = 2.
func Cycle(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n)
	for i := 0; i < n; i++ {
		edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex((i + 1) % n)})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(n, edges, opt)
}

// Star returns the n-vertex star graph (symmetric): vertex 0 is the hub.
func Star(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, graph.Edge{U: 0, V: graph.Vertex(i)})
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(n, edges, opt)
}

// Complete returns the complete graph K_n (symmetric); its coreness is
// n-1 everywhere, a useful k-core fixture.
func Complete(n int) *graph.CSR {
	edges := make([]graph.Edge, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j)})
		}
	}
	opt := graph.DefaultBuild
	opt.Symmetrize = true
	return graph.FromEdges(n, edges, opt)
}
