package gen

import (
	"math"

	"julienne/internal/graph"
	"julienne/internal/rng"
)

// UniformWeights returns a copy of g with integer edge weights drawn
// uniformly from [lo, hi). Weights are a deterministic function of the
// unordered endpoint pair, so for symmetric graphs the two directions of
// an undirected edge always agree (a requirement for SSSP correctness on
// undirected inputs).
func UniformWeights(g *graph.CSR, lo, hi graph.Weight, seed uint64) *graph.CSR {
	if lo < 0 || hi <= lo {
		panic("gen: UniformWeights requires 0 <= lo < hi")
	}
	span := uint64(hi - lo)
	return graph.Reweighted(g, func(u, v graph.Vertex) graph.Weight {
		a, b := u, v
		if a > b {
			a, b = b, a
		}
		h := rng.Hash64(seed ^ (uint64(a)<<32 | uint64(b)))
		return lo + graph.Weight(h%span)
	})
}

// LogWeights returns a copy of g with weights uniform in [1, log2(n)),
// the weighting the paper uses for its wBFS experiments (§5: "edge
// weights between [1, log n) uniformly at random").
func LogWeights(g *graph.CSR, seed uint64) *graph.CSR {
	n := g.NumVertices()
	hi := graph.Weight(2)
	if n > 4 {
		hi = graph.Weight(math.Ceil(math.Log2(float64(n))))
	}
	if hi < 2 {
		hi = 2
	}
	return UniformWeights(g, 1, hi, seed)
}

// HeavyWeights returns a copy of g with weights uniform in [1, 10^5),
// the paper's ∆-stepping weighting (§5).
func HeavyWeights(g *graph.CSR, seed uint64) *graph.CSR {
	return UniformWeights(g, 1, 100000, seed)
}

// SetCoverInstance describes a random bipartite set-cover instance:
// vertices [0, Sets) are sets, vertices [Sets, Sets+Elements) are
// elements, and edges run from sets to the elements they cover.
type SetCoverInstance struct {
	Graph    *graph.CSR
	Sets     int
	Elements int
}

// SetCover generates an instance where each element is covered by
// 1 + Zipf-ish many sets and set sizes are skewed (a few large sets cover
// much of the universe, as in the paper's web-derived instances). Every
// element is guaranteed to be covered by at least one set, so a full
// cover exists (∪F = U, §4.3).
func SetCover(sets, elements, avgCover int, seed uint64) SetCoverInstance {
	if avgCover < 1 {
		avgCover = 1
	}
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, elements*avgCover)
	n := sets + elements
	for e := 0; e < elements; e++ {
		elem := graph.Vertex(sets + e)
		// Skew set choice quadratically toward low ids so set sizes are
		// heavy-tailed like real incidence structures.
		cover := 1 + r.IntN(2*avgCover-1)
		for j := 0; j < cover; j++ {
			s := r.IntN(sets)
			s = (s * (s + 1) / 2) % sets // quadratic fold concentrates mass
			edges = append(edges, graph.Edge{U: graph.Vertex(s), V: elem})
		}
	}
	opt := graph.DefaultBuild // directed: set -> element
	g := graph.FromEdges(n, edges, opt)
	return SetCoverInstance{Graph: g, Sets: sets, Elements: elements}
}
