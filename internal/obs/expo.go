package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
)

// This file is the stdlib-only HTTP debug surface (DESIGN.md §10):
// Prometheus-text-format /metrics, a JSON /debug/obs dump, and the
// net/http/pprof handlers, all mounted on a private mux so binaries
// never leak debug handlers onto http.DefaultServeMux. The cmd/
// binaries expose it behind -http; the planned cmd/served service
// (ROADMAP item 1) mounts the same mux verbatim.

// MetricsPrefix namespaces every exposed metric name.
const MetricsPrefix = "julienne_"

// promName converts an internal dotted metric name ("bucket.next_ns")
// to a prefixed Prometheus-legal one ("julienne_bucket_next_ns").
func promName(name string) string {
	b := []byte(MetricsPrefix + name)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9' && i > 0:
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

// WriteMetrics writes the recorder's counters, gauges, and histograms
// in the Prometheus text exposition format (version 0.0.4). Histogram
// series emit cumulative le-labeled buckets at the non-empty bucket
// boundaries plus +Inf, and the _sum/_count pair. A nil recorder
// writes a valid, empty exposition.
func (r *Recorder) WriteMetrics(w io.Writer) error {
	var err error
	p := func(s string) {
		if err == nil {
			_, err = io.WriteString(w, s)
		}
	}
	if r == nil {
		p("# no recorder attached\n")
		return err
	}
	p("# TYPE " + MetricsPrefix + "uptime_seconds gauge\n")
	p(MetricsPrefix + "uptime_seconds " +
		strconv.FormatFloat(r.Elapsed().Seconds(), 'f', 3, 64) + "\n")

	// Names are derived from the same snapshot the values come from.
	// (The Names()/values() pairs walk the sync.Map twice, so a metric
	// registered between the walks used to show up with a zero value —
	// a torn scrape the /metrics hammer test pins.)
	counters := r.Counters()
	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		p("# TYPE " + pn + " counter\n")
		p(pn + " " + strconv.FormatInt(counters[name], 10) + "\n")
	}
	gauges := r.Gauges()
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		p("# TYPE " + pn + " gauge\n")
		p(pn + " " + strconv.FormatInt(gauges[name], 10) + "\n")
	}
	hists := r.Histograms()
	for _, name := range sortedKeys(hists) {
		s := hists[name]
		pn := promName(name)
		p("# TYPE " + pn + " histogram\n")
		var cum int64
		for i, c := range s.Counts {
			if c == 0 {
				continue
			}
			cum += c
			p(pn + `_bucket{le="` + strconv.FormatInt(histUpper(i)-1, 10) + `"} ` +
				strconv.FormatInt(cum, 10) + "\n")
		}
		// The snapshot loads the count cell before the per-bucket
		// cells, so samples recorded mid-snapshot can push the summed
		// buckets past Count. Clamp the terminal values up so the
		// cumulative series stays monotone (le="+Inf" >= every bucket
		// and == _count), which Prometheus clients require.
		total := s.Count
		if cum > total {
			total = cum
		}
		p(pn + `_bucket{le="+Inf"} ` + strconv.FormatInt(total, 10) + "\n")
		p(pn + "_sum " + strconv.FormatInt(s.Sum, 10) + "\n")
		p(pn + "_count " + strconv.FormatInt(total, 10) + "\n")
	}
	return err
}

// sortedKeys returns m's keys in sorted order, so the exposition is
// stable and every printed name is backed by the same snapshot.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// debugDump is the /debug/obs JSON shape.
type debugDump struct {
	UptimeNs   int64                       `json:"uptime_ns"`
	Counters   map[string]int64            `json:"counters"`
	Gauges     map[string]int64            `json:"gauges,omitempty"`
	Histograms map[string]HistogramSummary `json:"histograms"`
	Rounds     int                         `json:"rounds"`
	Flight     []FlightRecord              `json:"flight"`
}

// WriteDebugJSON writes the one-page JSON diagnostic dump: counter and
// gauge values, histogram summaries, and the flight-recorder tail.
// Valid (an empty dump) on a nil recorder.
func (r *Recorder) WriteDebugJSON(w io.Writer) error {
	d := debugDump{
		UptimeNs:   r.Elapsed().Nanoseconds(),
		Counters:   r.Counters(),
		Gauges:     r.Gauges(),
		Histograms: map[string]HistogramSummary{},
		Rounds:     r.NumRounds(),
		Flight:     r.FlightTail(flightSlots),
	}
	if d.Counters == nil {
		d.Counters = map[string]int64{}
	}
	if d.Flight == nil {
		d.Flight = []FlightRecord{}
	}
	for name, s := range r.Histograms() {
		d.Histograms[name] = s.Summary()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// ServeMux returns the debug mux for one recorder:
//
//	/metrics        Prometheus text exposition (counters, gauges, histograms)
//	/debug/obs      JSON: counters, histogram summaries, flight tail
//	/debug/pprof/*  net/http/pprof profiles
//
// The mux is self-contained (nothing registers on DefaultServeMux) and
// nil-recorder-safe, so it can be mounted before telemetry exists.
func ServeMux(r *Recorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WriteMetrics(w)
	})
	mux.HandleFunc("/debug/obs", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteDebugJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, _ *http.Request) {
		routes := []string{"/metrics", "/debug/obs", "/debug/pprof/"}
		sort.Strings(routes)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "julienne debug surface\n")
		for _, rt := range routes {
			io.WriteString(w, "  "+rt+"\n")
		}
	})
	return mux
}
