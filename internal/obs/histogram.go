package obs

import (
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
	"time"
)

// This file implements the lock-free log-bucketed histogram the
// observability plane is built on (DESIGN.md §10). Design constraints:
//
//   - Record must be wait-free and allocation-free: a handful of
//     atomic adds, callable from every worker of a parallel round.
//   - Snapshots must merge, so per-run recorders can fold into a
//     process-wide one (cmd/bench -http) and sharded recorders can be
//     combined before exposition.
//   - Resolution must be good enough for latency quantiles: buckets
//     grow geometrically with histSub sub-buckets per power-of-two
//     octave, giving a worst-case relative error of 1/histSub = 12.5%,
//     while values below histSub*2 are recorded exactly.
//
// The bucket layout follows the HDR-histogram/DDSketch family: for a
// value v >= 2*histSub with highest set bit e (v in [2^e, 2^(e+1))),
// the octave [2^e, 2^(e+1)) is split into histSub equal sub-buckets of
// width 2^(e-histSubBits). Values in [0, 2*histSub) map one-to-one to
// the first 2*histSub buckets (width-1 "sub-buckets" of the first two
// virtual octaves), so the index formula below is continuous across
// the exact/geometric boundary.

const (
	// histSubBits is log2 of the sub-bucket count per octave.
	histSubBits = 3
	// histSub = 8 sub-buckets per octave (~12.5% relative resolution).
	histSub = 1 << histSubBits
	// numHistBuckets covers the full non-negative int64 range:
	// index(math.MaxInt64) = (63-histSubBits)*histSub + histSub - 1.
	numHistBuckets = (64 - histSubBits) * histSub
)

// histIndex maps a non-negative value to its bucket index.
func histIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSub {
		return int(u)
	}
	e := uint(bits.Len64(u) - 1)              // highest set bit; >= histSubBits+1
	mant := int(u>>(e-histSubBits)) - histSub // [0, histSub)
	return int(e-histSubBits)*histSub + mant + histSub
}

// histUpper returns the exclusive upper bound of bucket i, saturating
// at MaxInt64 for the last octave. Bucket i covers [histLower(i),
// histUpper(i)).
func histUpper(i int) int64 {
	if i < 2*histSub {
		return int64(i) + 1
	}
	block := i/histSub - 1 // 1-based octave above the exact region
	mant := uint64(i % histSub)
	e := uint(block + histSubBits)
	shift := e - histSubBits
	lo := (histSub + mant) << shift
	up := lo + 1<<shift
	if up > math.MaxInt64 || up == 0 {
		return math.MaxInt64
	}
	return int64(up)
}

// Histogram is a fixed-size, lock-free log-bucketed histogram of
// non-negative int64 values (negative samples clamp to 0). All fields
// are updated with sync/atomic operations only; the struct is safe for
// any number of concurrent writers and snapshot readers. A nil
// *Histogram is valid and inert.
//
// The 64-bit fields must stay first for 32-bit atomic alignment
// (julvet atomicalign); the struct is ~4KB, so Histograms are created
// once per name and cached in the Recorder's registry.
type Histogram struct {
	count  int64
	sum    int64
	max    int64
	counts [numHistBuckets]int64
}

// Record adds one sample. Wait-free: three atomic adds plus a CAS loop
// on the max (contended only while the max is actively rising).
func (h *Histogram) Record(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	atomic.AddInt64(&h.count, 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.counts[histIndex(v)], 1)
	for {
		old := atomic.LoadInt64(&h.max)
		if v <= old || atomic.CompareAndSwapInt64(&h.max, old, v) {
			return
		}
	}
}

// RecordDuration records d in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// AddSnapshot merges a snapshot into the live histogram (atomic adds;
// safe concurrently with Record).
func (h *Histogram) AddSnapshot(s HistogramSnapshot) {
	if h == nil || s.Count == 0 {
		return
	}
	atomic.AddInt64(&h.count, s.Count)
	atomic.AddInt64(&h.sum, s.Sum)
	for i, c := range s.Counts {
		if c != 0 && i < numHistBuckets {
			atomic.AddInt64(&h.counts[i], c)
		}
	}
	for {
		old := atomic.LoadInt64(&h.max)
		if s.Max <= old || atomic.CompareAndSwapInt64(&h.max, old, s.Max) {
			return
		}
	}
}

// Snapshot returns a point-in-time copy. Concurrent Records may tear
// *between* cells (a sample's count visible before its sum), which is
// inherent to lock-free snapshots and bounded by the in-flight writer
// count; totals are never corrupted.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count:  atomic.LoadInt64(&h.count),
		Sum:    atomic.LoadInt64(&h.sum),
		Max:    atomic.LoadInt64(&h.max),
		Counts: make([]int64, numHistBuckets),
	}
	for i := range h.counts {
		s.Counts[i] = atomic.LoadInt64(&h.counts[i])
	}
	return s
}

// HistogramSnapshot is an immutable copy of a Histogram, the unit of
// merging and quantile estimation.
type HistogramSnapshot struct {
	Count  int64
	Sum    int64
	Max    int64
	Counts []int64
}

// Merge folds o into s in place.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Max > s.Max {
		s.Max = o.Max
	}
	if len(s.Counts) < len(o.Counts) {
		grown := make([]int64, len(o.Counts))
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
}

// Quantile returns an upper bound for the q-quantile (q in [0,1]): the
// exclusive upper edge of the bucket holding the ceil(q*count)-th
// smallest sample, clamped to the observed max. Relative error is at
// most one sub-bucket width (12.5%). Returns 0 on an empty snapshot.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count <= 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			up := histUpper(i) - 1
			if s.Max > 0 && up > s.Max {
				up = s.Max
			}
			return up
		}
	}
	return s.Max
}

// Summary condenses the snapshot to the quantities reports embed.
type HistogramSummary struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Mean  int64 `json:"mean"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
	Max   int64 `json:"max"`
}

// Summary computes the standard p50/p90/p99/max digest.
func (s HistogramSnapshot) Summary() HistogramSummary {
	sum := HistogramSummary{Count: s.Count, Sum: s.Sum, Max: s.Max}
	if s.Count > 0 {
		sum.Mean = s.Sum / s.Count
		sum.P50 = s.Quantile(0.50)
		sum.P90 = s.Quantile(0.90)
		sum.P99 = s.Quantile(0.99)
	}
	return sum
}

// --- Recorder integration ----------------------------------------------------

// Histogram returns the named histogram, creating it on first use
// (nil on a nil recorder — every *Histogram method is nil-safe, so
// callers chain unconditionally).
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, new(Histogram))
	return v.(*Histogram)
}

// Observe records one sample into the named histogram.
func (r *Recorder) Observe(name string, v int64) { r.Histogram(name).Record(v) }

// ObserveDuration records d (in nanoseconds) into the named histogram.
func (r *Recorder) ObserveDuration(name string, d time.Duration) {
	r.Histogram(name).RecordDuration(d)
}

// Clock returns the current time on a live recorder and the zero time
// on a nil one — the start-half of the ObserveSince pair. Instrumented
// packages outside internal/obs and internal/harness are barred from
// calling time.Now directly (julvet norandtime), and routing the reads
// through the recorder also makes them free when telemetry is off.
func (r *Recorder) Clock() time.Time {
	if r == nil {
		return time.Time{}
	}
	return time.Now()
}

// ObserveSince records the nanoseconds elapsed since start (a value
// returned by Clock) into the named histogram. No-op on a nil recorder
// or a zero start.
func (r *Recorder) ObserveSince(name string, start time.Time) {
	if r == nil || start.IsZero() {
		return
	}
	r.Observe(name, time.Since(start).Nanoseconds())
}

// HistSummary returns the named histogram's digest (zero if absent).
func (r *Recorder) HistSummary(name string) HistogramSummary {
	if r == nil {
		return HistogramSummary{}
	}
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram).Snapshot().Summary()
	}
	return HistogramSummary{}
}

// Histograms returns a point-in-time snapshot of every histogram.
func (r *Recorder) Histograms() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot)
	r.hists.Range(func(k, v any) bool {
		out[k.(string)] = v.(*Histogram).Snapshot()
		return true
	})
	return out
}

// HistogramNames returns the histogram names in sorted order.
func (r *Recorder) HistogramNames() []string {
	if r == nil {
		return nil
	}
	var names []string
	r.hists.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// GaugeNames returns the gauge names in sorted order.
func (r *Recorder) GaugeNames() []string {
	if r == nil {
		return nil
	}
	var names []string
	r.gauges.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// Gauges returns a point-in-time snapshot of all gauges.
func (r *Recorder) Gauges() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64)
	r.gauges.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// Merge folds src's counters, gauges, and histograms into r: counters
// and histograms add, gauges take src's value. Flight-recorder rings
// and trace events are not merged (they are per-run diagnostics).
// No-op when either recorder is nil.
func (r *Recorder) Merge(src *Recorder) {
	if r == nil || src == nil {
		return
	}
	for name, v := range src.Counters() {
		r.Add(name, v)
	}
	for name, v := range src.Gauges() {
		r.SetGauge(name, v)
	}
	for name, s := range src.Histograms() {
		r.Histogram(name).AddSnapshot(s)
	}
}
