package obs

import (
	"math"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestHistIndexLayout pins the bucket layout: exact buckets below
// 2*histSub, continuity across the exact/geometric boundary, and that
// every value lands in the bucket whose [lower, upper) range holds it.
func TestHistIndexLayout(t *testing.T) {
	for v := int64(0); v < 2*histSub; v++ {
		if got := histIndex(v); got != int(v) {
			t.Fatalf("histIndex(%d) = %d, want exact bucket %d", v, got, v)
		}
		if up := histUpper(int(v)); up != v+1 {
			t.Fatalf("histUpper(%d) = %d, want %d", v, up, v+1)
		}
	}
	// Indices must be monotone and every value inside its bucket range.
	prev := -1
	for _, v := range []int64{0, 1, 7, 8, 15, 16, 17, 31, 32, 100, 1000, 1 << 20,
		1<<40 + 12345, math.MaxInt64 / 2, math.MaxInt64} {
		i := histIndex(v)
		if i < prev {
			t.Fatalf("histIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if i >= numHistBuckets {
			t.Fatalf("histIndex(%d) = %d out of range %d", v, i, numHistBuckets)
		}
		// The top bucket's bound saturates at MaxInt64 (inclusive there).
		if up := histUpper(i); v >= up && up != math.MaxInt64 {
			t.Fatalf("value %d >= upper bound %d of its bucket %d", v, up, i)
		}
		if i > 0 {
			if lo := histUpper(i - 1); v < lo {
				t.Fatalf("value %d < lower bound %d of its bucket %d", v, lo, i)
			}
		}
	}
	// Adjacent buckets must tile: upper(i) is lower(i+1) by construction,
	// i.e. histIndex(histUpper(i)) == i+1 wherever upper is representable.
	for i := 0; i < numHistBuckets-1; i++ {
		up := histUpper(i)
		if up == math.MaxInt64 {
			continue
		}
		if got := histIndex(up); got != i+1 {
			t.Fatalf("histIndex(histUpper(%d)=%d) = %d, want %d", i, up, got, i+1)
		}
	}
}

func TestHistogramRecordAndSummary(t *testing.T) {
	var h Histogram
	for v := int64(1); v <= 1000; v++ {
		h.Record(v)
	}
	h.Record(-5) // clamps to 0
	s := h.Snapshot()
	if s.Count != 1001 {
		t.Fatalf("count = %d, want 1001", s.Count)
	}
	if s.Sum != 1000*1001/2 {
		t.Fatalf("sum = %d, want %d", s.Sum, 1000*1001/2)
	}
	if s.Max != 1000 {
		t.Fatalf("max = %d, want 1000", s.Max)
	}
	sum := s.Summary()
	// The uniform 1..1000 stream: quantile upper bounds may overshoot
	// by one sub-bucket (12.5%).
	check := func(name string, got, want int64) {
		t.Helper()
		if got < want || float64(got) > float64(want)*1.13+1 {
			t.Fatalf("%s = %d, want within [%d, %.0f]", name, got, want, float64(want)*1.13+1)
		}
	}
	check("p50", sum.P50, 500)
	check("p90", sum.P90, 900)
	check("p99", sum.P99, 990)
	if sum.Max != 1000 {
		t.Fatalf("summary max = %d, want 1000", sum.Max)
	}
	if sum.Mean != s.Sum/s.Count {
		t.Fatalf("mean = %d, want %d", sum.Mean, s.Sum/s.Count)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
	var h Histogram
	h.Record(42)
	s := h.Snapshot()
	for _, q := range []float64{-1, 0, 0.5, 1, 2} {
		if got := s.Quantile(q); got != 42 {
			t.Fatalf("single-sample quantile(%v) = %d, want 42 (clamped to max)", q, got)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for v := int64(0); v < 100; v++ {
		a.Record(v)
		b.Record(v + 1000)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count)
	}
	if sa.Max != 1099 {
		t.Fatalf("merged max = %d, want 1099", sa.Max)
	}
	if sa.Sum != sb.Sum+99*100/2 {
		t.Fatalf("merged sum = %d", sa.Sum)
	}
	// AddSnapshot is the live-side merge.
	var c Histogram
	c.AddSnapshot(sa)
	if got := c.Snapshot(); got.Count != 200 || got.Max != 1099 || got.Sum != sa.Sum {
		t.Fatalf("AddSnapshot round-trip mismatch: %+v", got.Summary())
	}
}

func TestRecorderMerge(t *testing.T) {
	src := NewRecorder()
	src.Add("c", 3)
	src.SetGauge("g", 9)
	src.Observe("h", 100)
	src.Observe("h", 200)
	dst := NewRecorder()
	dst.Add("c", 1)
	dst.Observe("h", 50)
	dst.Merge(src)
	if dst.Counter("c") != 4 {
		t.Fatalf("merged counter = %d, want 4", dst.Counter("c"))
	}
	if dst.Gauge("g") != 9 {
		t.Fatalf("merged gauge = %d, want 9", dst.Gauge("g"))
	}
	s := dst.HistSummary("h")
	if s.Count != 3 || s.Max != 200 || s.Sum != 350 {
		t.Fatalf("merged histogram summary = %+v", s)
	}
	// Nil on either side is a no-op.
	var nilRec *Recorder
	nilRec.Merge(src)
	dst.Merge(nil)
}

// TestHistogramConcurrent hammers Record and Snapshot from P
// goroutines; run under -race this pins the lock-freedom claim, and
// the final totals pin that no sample is lost.
func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	workers := runtime.GOMAXPROCS(0) * 2
	const perWorker = 5000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() { // concurrent snapshot reader
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count < 0 {
					t.Error("negative count in snapshot")
					return
				}
			}
		}
	}()
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				h.Record(int64(w*perWorker + i))
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	s := h.Snapshot()
	want := int64(workers) * perWorker
	if s.Count != want {
		t.Fatalf("count = %d, want %d", s.Count, want)
	}
	if s.Max != int64(workers*perWorker-1) {
		t.Fatalf("max = %d, want %d", s.Max, workers*perWorker-1)
	}
	var cells int64
	for _, c := range s.Counts {
		cells += c
	}
	if cells != want {
		t.Fatalf("bucket cell total = %d, want %d", cells, want)
	}
}

func TestObserveSinceAndClock(t *testing.T) {
	var nilRec *Recorder
	if !nilRec.Clock().IsZero() {
		t.Fatal("nil recorder Clock should be zero")
	}
	nilRec.ObserveSince("x", time.Now()) // no-op, must not panic
	r := NewRecorder()
	start := r.Clock()
	if start.IsZero() {
		t.Fatal("live recorder Clock should not be zero")
	}
	r.ObserveSince("x", start)
	if s := r.HistSummary("x"); s.Count != 1 {
		t.Fatalf("ObserveSince recorded %d samples, want 1", s.Count)
	}
	r.ObserveSince("x", time.Time{}) // zero start is a no-op
	if s := r.HistSummary("x"); s.Count != 1 {
		t.Fatal("zero-start ObserveSince must not record")
	}
}
