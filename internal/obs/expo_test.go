package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

var (
	promSample = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{le="(\+Inf|[0-9]+)"\})? -?[0-9]+(\.[0-9]+)?$`)
	promComment = regexp.MustCompile(
		`^# (TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|HELP .*)$`)
)

// checkPromText is the Prometheus-text-format parse check the
// acceptance criteria call for: every line is a well-formed comment or
// sample, histogram series have cumulative non-decreasing buckets, a
// +Inf bucket, and matching _count, and all names carry the prefix.
func checkPromText(t *testing.T, r io.Reader) map[string]int64 {
	t.Helper()
	values := map[string]int64{}
	type histState struct {
		lastCum int64
		inf     int64
		hasInf  bool
	}
	hists := map[string]*histState{}
	sc := bufio.NewScanner(r)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Fatalf("malformed comment line: %q", line)
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, rest, _ := strings.Cut(line, " ")
		if !strings.HasPrefix(name, MetricsPrefix) {
			t.Fatalf("metric %q lacks prefix %q", name, MetricsPrefix)
		}
		if strings.Contains(name, "{") {
			base, label, _ := strings.Cut(name, "{")
			cum, err := strconv.ParseInt(rest, 10, 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			h := hists[base]
			if h == nil {
				h = &histState{}
				hists[base] = h
			}
			if cum < h.lastCum {
				t.Fatalf("histogram %s buckets not cumulative: %d after %d", base, cum, h.lastCum)
			}
			h.lastCum = cum
			if strings.HasPrefix(label, `le="+Inf"`) {
				h.inf = cum
				h.hasInf = true
			}
			continue
		}
		if v, err := strconv.ParseInt(rest, 10, 64); err == nil {
			values[name] = v
		} else if _, ferr := strconv.ParseFloat(rest, 64); ferr != nil {
			t.Fatalf("unparseable value in %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}
	for base, h := range hists {
		if !h.hasInf {
			t.Fatalf("histogram %s has no +Inf bucket", base)
		}
		if count, ok := values[strings.TrimSuffix(base, "_bucket")+"_count"]; !ok || count != h.inf {
			t.Fatalf("histogram %s: +Inf bucket %d != count %d", base, h.inf, count)
		}
	}
	return values
}

func TestWriteMetricsPromFormat(t *testing.T) {
	r := NewRecorder()
	r.Add(CtrBucketExtracted, 42)
	r.SetGauge(GaugeEdgeMapLastDense, 1)
	for v := int64(1); v <= 100; v++ {
		r.Observe(HistRoundLatencyNs, v*1000)
	}
	var sb strings.Builder
	if err := r.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	values := checkPromText(t, strings.NewReader(sb.String()))
	if values["julienne_bucket_extracted"] != 42 {
		t.Fatalf("counter not exposed: %v", values)
	}
	if values["julienne_round_latency_ns_count"] != 100 {
		t.Fatalf("histogram count not exposed: %v", values)
	}
	if values["julienne_round_latency_ns_sum"] != 1000*100*101/2 {
		t.Fatalf("histogram sum wrong: %v", values["julienne_round_latency_ns_sum"])
	}
}

func TestServeMuxEndpoints(t *testing.T) {
	r := NewRecorder()
	r.Inc(CtrBucketReturned)
	r.RecordRound(RoundMetrics{Algo: "kcore", Round: 1, Bucket: 3,
		FrontierSize: 12, Duration: 5 * time.Millisecond})
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		ServeMux(r).ServeHTTP(rw, req)
		return rw
	}

	metrics := get("/metrics")
	if metrics.Code != 200 {
		t.Fatalf("/metrics status %d", metrics.Code)
	}
	if ct := metrics.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	values := checkPromText(t, metrics.Body)
	if values["julienne_round_latency_ns_count"] != 1 {
		t.Fatalf("round latency histogram missing from /metrics: %v", values)
	}

	debug := get("/debug/obs")
	if debug.Code != 200 {
		t.Fatalf("/debug/obs status %d", debug.Code)
	}
	var dump struct {
		Counters   map[string]int64            `json:"counters"`
		Histograms map[string]HistogramSummary `json:"histograms"`
		Rounds     int                         `json:"rounds"`
		Flight     []FlightRecord              `json:"flight"`
	}
	if err := json.NewDecoder(debug.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/obs is not JSON: %v", err)
	}
	if dump.Counters[CtrBucketReturned] != 1 || dump.Rounds != 1 {
		t.Fatalf("debug dump wrong: %+v", dump)
	}
	if len(dump.Flight) != 1 || dump.Flight[0].Algo != "kcore" {
		t.Fatalf("debug dump flight tail wrong: %+v", dump.Flight)
	}
	if s, ok := dump.Histograms[HistRoundLatencyNs]; !ok || s.Count != 1 {
		t.Fatalf("debug dump histograms wrong: %+v", dump.Histograms)
	}

	if rc := get("/debug/pprof/").Code; rc != 200 {
		t.Fatalf("/debug/pprof/ status %d", rc)
	}
	if body := get("/").Body.String(); !strings.Contains(body, "/metrics") {
		t.Fatalf("index page should list routes, got %q", body)
	}
}

func TestServeMuxNilRecorder(t *testing.T) {
	mux := ServeMux(nil)
	for _, path := range []string{"/metrics", "/debug/obs", "/"} {
		req := httptest.NewRequest("GET", path, nil)
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		if rw.Code != 200 {
			t.Fatalf("%s on nil recorder: status %d", path, rw.Code)
		}
	}
}
