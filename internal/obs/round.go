package obs

import "time"

// RoundMetrics captures one round of a bucketed (or frontier-based)
// algorithm: the per-iteration breakdown the paper's evaluation uses to
// explain where the work goes (frontier sizes in §5, bucket traffic in
// §3.4). Bucket counter fields are per-round deltas, not cumulative
// totals (bucket.Stats.Sub produces them).
type RoundMetrics struct {
	// Algo names the producing algorithm ("kcore", "sssp",
	// "setcover", ...). It prefixes the per-round trace events.
	Algo string
	// Round is the 1-based round number.
	Round int64
	// Bucket is the logical bucket id processed this round
	// (^uint32(0) when the algorithm is not bucketed).
	Bucket uint32
	// FrontierSize is the number of identifiers extracted/processed.
	FrontierSize int
	// EdgesTraversed is the number of edges relaxed/visited this round
	// (0 when the algorithm does not track it per round).
	EdgesTraversed int64
	// Dense reports the edgeMap traversal direction this round (false
	// for push/sparse; bucketed algorithms are push-only).
	Dense bool
	// Extracted, Moved, Skipped are the round's bucket-structure
	// traffic deltas.
	Extracted, Moved, Skipped int64
	// Duration is the round's wall-clock time.
	Duration time.Duration
}

// RoundObserver receives every recorded round synchronously, in order.
// Observers must be fast; they run on the algorithm's critical path.
type RoundObserver func(RoundMetrics)

// OnRound registers an observer for subsequent rounds.
func (r *Recorder) OnRound(fn RoundObserver) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.observers = append(r.observers, fn)
	r.mu.Unlock()
}

// RecordRound stores the metrics, emits a counter trace event (so the
// frontier size and bucket traffic plot as time series under the round
// spans in the trace viewer), feeds the latency and frontier-size
// histograms, publishes the round into the flight-recorder ring, and
// invokes registered observers.
func (r *Recorder) RecordRound(m RoundMetrics) {
	if r == nil {
		return
	}
	r.emit(TraceEvent{
		Name: m.Algo + ".round_metrics", Phase: "C",
		Ts: micros(time.Since(r.start)), Pid: 1,
		Args: map[string]any{
			"frontier":  m.FrontierSize,
			"edges":     m.EdgesTraversed,
			"extracted": m.Extracted,
			"moved":     m.Moved,
			"skipped":   m.Skipped,
		},
	})
	r.Observe(HistRoundLatencyNs, m.Duration.Nanoseconds())
	r.Observe(HistRoundFrontier, int64(m.FrontierSize))
	r.mu.Lock()
	r.rounds = append(r.rounds, m)
	obs := r.observers
	algoID := r.flightAlgoIDLocked(m.Algo)
	r.mu.Unlock()
	r.recordFlight(m, algoID)
	for _, fn := range obs {
		fn(m)
	}
}

// Rounds returns a copy of the recorded per-round metrics.
func (r *Recorder) Rounds() []RoundMetrics {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RoundMetrics(nil), r.rounds...)
}

// NumRounds returns the number of recorded rounds.
func (r *Recorder) NumRounds() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.rounds)
}
