package obs

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

func recordN(r *Recorder, algo string, n int) {
	for i := 1; i <= n; i++ {
		r.RecordRound(RoundMetrics{
			Algo: algo, Round: int64(i), Bucket: uint32(i % 7),
			FrontierSize: 10 * i, EdgesTraversed: int64(100 * i),
			Extracted: int64(i), Moved: int64(2 * i), Skipped: int64(3 * i),
			Duration: time.Duration(i) * time.Microsecond,
		})
	}
}

func TestFlightTailBasic(t *testing.T) {
	r := NewRecorder()
	recordN(r, "kcore", 5)
	if r.FlightLen() != 5 {
		t.Fatalf("FlightLen = %d, want 5", r.FlightLen())
	}
	tail := r.FlightTail(3)
	if len(tail) != 3 {
		t.Fatalf("tail length = %d, want 3", len(tail))
	}
	for i, rec := range tail {
		wantRound := int64(3 + i)
		if rec.Round != wantRound || rec.Seq != wantRound {
			t.Fatalf("tail[%d] = round %d seq %d, want %d", i, rec.Round, rec.Seq, wantRound)
		}
		if rec.Algo != "kcore" {
			t.Fatalf("tail[%d].Algo = %q, want kcore", i, rec.Algo)
		}
		if rec.FrontierSize != 10*wantRound {
			t.Fatalf("tail[%d].FrontierSize = %d", i, rec.FrontierSize)
		}
		if rec.Duration != time.Duration(wantRound)*time.Microsecond {
			t.Fatalf("tail[%d].Duration = %v", i, rec.Duration)
		}
	}
	// Asking for more than recorded returns everything.
	if got := len(r.FlightTail(100)); got != 5 {
		t.Fatalf("oversized tail length = %d, want 5", got)
	}
}

// TestFlightRingWraps pins the fixed memory bound: after more rounds
// than slots, only the newest flightSlots records survive, in order.
func TestFlightRingWraps(t *testing.T) {
	r := NewRecorder()
	total := flightSlots + 57
	recordN(r, "sssp", total)
	tail := r.FlightTail(flightSlots + 1000)
	if len(tail) != flightSlots {
		t.Fatalf("tail length = %d, want %d", len(tail), flightSlots)
	}
	for i, rec := range tail {
		want := int64(total - flightSlots + 1 + i)
		if rec.Seq != want {
			t.Fatalf("tail[%d].Seq = %d, want %d", i, rec.Seq, want)
		}
	}
}

func TestFlightUnbucketedRound(t *testing.T) {
	r := NewRecorder()
	r.RecordRound(RoundMetrics{Algo: "densest", Round: 1, Bucket: ^uint32(0), FrontierSize: 4})
	tail := r.FlightTail(1)
	if len(tail) != 1 || tail[0].Bucket != -1 {
		t.Fatalf("unbucketed round should expose Bucket=-1, got %+v", tail)
	}
	var buf bytes.Buffer
	WriteFlightText(&buf, tail)
	if !strings.Contains(buf.String(), "densest") {
		t.Fatalf("flight text missing algo name:\n%s", buf.String())
	}
}

func TestWriteFlightTextEmpty(t *testing.T) {
	var buf bytes.Buffer
	WriteFlightText(&buf, nil)
	if !strings.Contains(buf.String(), "no rounds") {
		t.Fatalf("empty dump should say so, got %q", buf.String())
	}
}

// TestFlightConcurrent hammers ring writes and tail reads from P
// goroutines under -race: every decoded record must be internally
// consistent (the seqlock must never expose a torn slot).
func TestFlightConcurrent(t *testing.T) {
	r := NewRecorder()
	workers := runtime.GOMAXPROCS(0)
	const perWorker = 2000
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for g := 0; g < 2; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rec := range r.FlightTail(32) {
					// Writers encode round = frontier = duration(ns), so a
					// torn slot shows up as a field mismatch.
					if rec.FrontierSize != rec.Round || int64(rec.Duration) != rec.Round {
						t.Errorf("torn flight record: %+v", rec)
						return
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < workers; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < perWorker; i++ {
				v := int64(w*perWorker + i)
				r.RecordRound(RoundMetrics{
					Algo: "hammer", Round: v, FrontierSize: int(v),
					Duration: time.Duration(v),
				})
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	if got := r.FlightLen(); got != int64(workers)*perWorker {
		t.Fatalf("FlightLen = %d, want %d", got, int64(workers)*perWorker)
	}
}

// TestCanceledCarriesTail pins satellite 1 at the obs level: the error
// built by NewCanceled embeds the flight tail.
func TestCanceledCarriesTail(t *testing.T) {
	r := NewRecorder()
	recordN(r, "kcore", 30)
	c := r.NewCanceled("kcore", 30, context.Canceled)
	if len(c.Tail) != flightTailDefault {
		t.Fatalf("tail length = %d, want %d", len(c.Tail), flightTailDefault)
	}
	if last := c.Tail[len(c.Tail)-1]; last.Round != 30 {
		t.Fatalf("last tail round = %d, want 30", last.Round)
	}
	var buf bytes.Buffer
	c.WriteTail(&buf)
	if !strings.Contains(buf.String(), "flight recorder") {
		t.Fatal("WriteTail produced no table")
	}
	// Nil recorder: valid error, empty tail.
	var nilRec *Recorder
	c2 := nilRec.NewCanceled("x", 1, context.Canceled)
	if c2 == nil || c2.Tail != nil || c2.Algo != "x" {
		t.Fatalf("nil-recorder NewCanceled = %+v", c2)
	}
}

// TestNilRecorderNewMethods extends the nil no-op contract to every
// method this PR adds (satellite 3).
func TestNilRecorderNewMethods(t *testing.T) {
	var r *Recorder
	if r.Histogram("h") != nil {
		t.Fatal("nil recorder Histogram should be nil")
	}
	r.Histogram("h").Record(1) // nil *Histogram, still a no-op
	r.Histogram("h").RecordDuration(time.Second)
	r.Histogram("h").AddSnapshot(HistogramSnapshot{Count: 1})
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Fatal("nil histogram snapshot should be zero")
	}
	r.Observe("h", 1)
	r.ObserveDuration("h", time.Second)
	r.ObserveSince("h", time.Now())
	if !r.Clock().IsZero() {
		t.Fatal("nil recorder Clock should be zero")
	}
	if r.Histograms() != nil || r.HistogramNames() != nil {
		t.Fatal("nil recorder histogram snapshots should be nil")
	}
	if r.Gauges() != nil || r.GaugeNames() != nil {
		t.Fatal("nil recorder gauge snapshots should be nil")
	}
	if s := r.HistSummary("h"); s.Count != 0 {
		t.Fatal("nil recorder HistSummary should be zero")
	}
	r.Merge(NewRecorder())
	if r.FlightTail(5) != nil {
		t.Fatal("nil recorder FlightTail should be nil")
	}
	if r.FlightLen() != 0 {
		t.Fatal("nil recorder FlightLen should be 0")
	}
	var buf bytes.Buffer
	if err := r.WriteMetrics(&buf); err != nil {
		t.Fatalf("WriteMetrics on nil recorder: %v", err)
	}
	buf.Reset()
	if err := r.WriteDebugJSON(&buf); err != nil {
		t.Fatalf("WriteDebugJSON on nil recorder: %v", err)
	}
}
