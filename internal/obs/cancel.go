package obs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"time"
)

// This file implements the cooperative-cancellation half of the failure
// semantics (DESIGN.md §9). Algorithms check a CancelCheck once per
// NextBucket round — never per edge — so cancellation costs one nil
// check per round when disabled and one select + time comparison when
// armed. A canceled run returns a *Canceled error wrapping ErrCanceled
// and carries whatever partial-progress statistics the kernel had
// accumulated; the bucket structure and scratch arenas are left
// consistent, so a fresh run on the same graph is correct.

// ErrCanceled is the sentinel all cancellation errors wrap. Callers
// test with errors.Is(err, obs.ErrCanceled).
var ErrCanceled = errors.New("julienne: run canceled")

// Canceled reports a cooperatively-canceled run. It wraps both
// ErrCanceled (so errors.Is works) and the underlying cause
// (context.Canceled, context.DeadlineExceeded, or a custom context
// cause), and records how far the run got.
type Canceled struct {
	// Algo names the algorithm that was canceled ("kcore", "sssp", ...).
	Algo string
	// Rounds is the number of completed NextBucket (or peeling) rounds
	// before the cancellation was observed.
	Rounds int64
	// Cause is the reason the run stopped: the context's cause or
	// context.DeadlineExceeded for an expired deadline.
	Cause error
	// Tail holds the flight-recorder tail at cancellation time — the
	// last rounds the run completed before it was stopped, for
	// post-mortem inspection of where the budget went. Nil when the
	// run had no recorder attached.
	Tail []FlightRecord
}

func (c *Canceled) Error() string {
	return fmt.Sprintf("julienne: %s canceled after %d rounds: %v", c.Algo, c.Rounds, c.Cause)
}

// Unwrap exposes both the sentinel and the cause to errors.Is/As.
func (c *Canceled) Unwrap() []error { return []error{ErrCanceled, c.Cause} }

// WriteTail renders the captured flight-recorder tail as text (the
// same table panic dumps use); a no-op line when the tail is empty.
func (c *Canceled) WriteTail(w io.Writer) { WriteFlightText(w, c.Tail) }

// NewCanceled builds the cancellation error for one run, capturing the
// recorder's flight tail so the error itself carries the last rounds
// of partial progress. Valid on a nil recorder (Tail stays nil).
func (r *Recorder) NewCanceled(algo string, rounds int64, cause error) *Canceled {
	c := &Canceled{Algo: algo, Rounds: rounds, Cause: cause}
	if r != nil {
		c.Tail = r.FlightTail(flightTailDefault)
	}
	return c
}

// CancelCheck is the per-round cancellation probe. The zero value never
// cancels and its Stopped method is a nil-compare fast path, so
// algorithms embed the check unconditionally without a per-round cost
// when no context or deadline was supplied.
type CancelCheck struct {
	done     <-chan struct{}
	ctx      context.Context
	deadline time.Time
}

// NewCancelCheck builds a probe from an optional context and an
// optional absolute deadline; either (or both) may be zero. A context
// deadline and an explicit deadline compose: whichever trips first
// stops the run.
func NewCancelCheck(ctx context.Context, deadline time.Time) CancelCheck {
	c := CancelCheck{deadline: deadline}
	if ctx != nil {
		c.ctx = ctx
		c.done = ctx.Done()
	}
	return c
}

// Stopped returns nil while the run may continue, or the cause once the
// context is done or the deadline has passed. It is called once per
// round from the algorithm's driver loop (single goroutine).
func (c *CancelCheck) Stopped() error {
	if c.done != nil {
		select {
		case <-c.done:
			return context.Cause(c.ctx)
		default:
		}
	}
	if !c.deadline.IsZero() && time.Now().After(c.deadline) {
		return context.DeadlineExceeded
	}
	return nil
}
