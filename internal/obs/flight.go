package obs

import (
	"fmt"
	"io"
	"runtime/metrics"
	"sync/atomic"
	"time"
)

// This file implements the always-on flight recorder (DESIGN.md §10):
// a fixed-size ring of the most recent per-round records, written with
// a handful of atomic stores per round and read back for post-mortem
// dumps on panic, cancellation, and chaos-harness failure. Unlike the
// rounds slice (which grows without bound and is meant for -stats and
// trace output), the ring's memory is a fixed ~18KB per recorder, so
// long-running servers keep it armed permanently.
//
// Concurrency: writers claim a slot with one atomic ticket increment,
// then publish fields with atomic stores bracketed by a seqlock-style
// sequence word (negative while the write is in flight, the ticket
// value once published). Readers re-check the sequence after reading
// the payload and discard torn slots. Every slot field is an int64
// accessed only through sync/atomic, so the scheme is exact under the
// race detector, not merely "benign".

// flightSlots is the ring capacity. Power of two so the slot index is
// a mask; 256 rounds of history is bigger than the peeling depth of
// most failures while keeping the ring under 20KB.
const flightSlots = 256

// flightTailDefault is how many trailing records automatic dumps
// (cancellation errors, CLI panic handlers, chaos failures) include.
const flightTailDefault = 16

// flightSlot is one published round record. All fields are int64 and
// accessed exclusively with sync/atomic; they are 8-aligned because
// the ring lives in a heap-allocated flightRing whose fields are all
// 64-bit (julvet atomicalign verifies this layout).
type flightSlot struct {
	seq      int64 // ticket once published, -ticket while being written
	ts       int64 // nanoseconds since recorder start
	algo     int64 // index into Recorder.flightAlgos
	round    int64
	bucket   int64 // logical bucket id; -1 when not bucketed
	frontier int64
	edges    int64
	ext      int64 // extracted
	moved    int64
	skipped  int64
	dur      int64 // round duration, nanoseconds
	allocs   int64 // heap objects allocated since the previous record
}

// flightRing is the ring buffer plus its cursors. It is reached from
// the Recorder through a pointer so its atomics start at offset 0
// regardless of the Recorder's own layout.
type flightRing struct {
	cursor     int64 // total records ever written (next ticket = cursor+1)
	lastAllocs int64 // previous /gc/heap/allocs:objects sample
	slots      [flightSlots]flightSlot
}

// FlightRecord is one decoded ring entry, ordered by Seq (a 1-based,
// monotonically increasing write ticket).
type FlightRecord struct {
	Seq          int64         `json:"seq"`
	T            time.Duration `json:"t_ns"` // offset from recorder start
	Algo         string        `json:"algo"`
	Round        int64         `json:"round"`
	Bucket       int64         `json:"bucket"` // -1 when not bucketed
	FrontierSize int64         `json:"frontier"`
	Edges        int64         `json:"edges"`
	Extracted    int64         `json:"extracted"`
	Moved        int64         `json:"moved"`
	Skipped      int64         `json:"skipped"`
	Duration     time.Duration `json:"duration_ns"`
	Allocs       int64         `json:"allocs"`
}

// heapAllocsSample reads the cumulative heap-object allocation count.
// One small allocation per call; it runs only on the instrumented
// (recorder-on) path, never in the zero-cost disabled path.
func heapAllocsSample() int64 {
	s := make([]metrics.Sample, 1)
	s[0].Name = "/gc/heap/allocs:objects"
	metrics.Read(s)
	if s[0].Value.Kind() != metrics.KindUint64 {
		return 0
	}
	return int64(s[0].Value.Uint64())
}

// flightAlgoID interns an algorithm name, returning its table index.
// Called with r.mu held.
func (r *Recorder) flightAlgoIDLocked(name string) int64 {
	for i, n := range r.flightAlgos {
		if n == name {
			return int64(i)
		}
	}
	r.flightAlgos = append(r.flightAlgos, name)
	return int64(len(r.flightAlgos) - 1)
}

// recordFlight publishes one round into the ring.
func (r *Recorder) recordFlight(m RoundMetrics, algoID int64) {
	f := r.flight
	ticket := atomic.AddInt64(&f.cursor, 1)
	allocs := heapAllocsSample()
	prev := atomic.SwapInt64(&f.lastAllocs, allocs)
	delta := allocs - prev
	if prev == 0 || delta < 0 {
		delta = 0 // first record, or interleaved swaps under contention
	}
	bucket := int64(m.Bucket)
	if m.Bucket == ^uint32(0) {
		bucket = -1
	}
	s := &f.slots[(ticket-1)&(flightSlots-1)]
	atomic.StoreInt64(&s.seq, -ticket)
	atomic.StoreInt64(&s.ts, int64(time.Since(r.start)))
	atomic.StoreInt64(&s.algo, algoID)
	atomic.StoreInt64(&s.round, m.Round)
	atomic.StoreInt64(&s.bucket, bucket)
	atomic.StoreInt64(&s.frontier, int64(m.FrontierSize))
	atomic.StoreInt64(&s.edges, m.EdgesTraversed)
	atomic.StoreInt64(&s.ext, m.Extracted)
	atomic.StoreInt64(&s.moved, m.Moved)
	atomic.StoreInt64(&s.skipped, m.Skipped)
	atomic.StoreInt64(&s.dur, m.Duration.Nanoseconds())
	atomic.StoreInt64(&s.allocs, delta)
	atomic.StoreInt64(&s.seq, ticket)
}

// FlightTail returns up to n of the most recent ring records in write
// order (oldest first). Slots overwritten mid-read are skipped, so the
// result may be shorter than n even when more rounds were recorded.
// Safe to call concurrently with writers, and from panic handlers.
func (r *Recorder) FlightTail(n int) []FlightRecord {
	if r == nil || n <= 0 {
		return nil
	}
	f := r.flight
	newest := atomic.LoadInt64(&f.cursor)
	if newest == 0 {
		return nil
	}
	if int64(n) > newest {
		n = int(newest)
	}
	if n > flightSlots {
		n = flightSlots
	}
	r.mu.Lock()
	algos := append([]string(nil), r.flightAlgos...)
	r.mu.Unlock()
	out := make([]FlightRecord, 0, n)
	for ticket := newest - int64(n) + 1; ticket <= newest; ticket++ {
		s := &f.slots[(ticket-1)&(flightSlots-1)]
		if atomic.LoadInt64(&s.seq) != ticket {
			continue // not yet published, or already overwritten
		}
		rec := FlightRecord{
			Seq:          ticket,
			T:            time.Duration(atomic.LoadInt64(&s.ts)),
			Round:        atomic.LoadInt64(&s.round),
			Bucket:       atomic.LoadInt64(&s.bucket),
			FrontierSize: atomic.LoadInt64(&s.frontier),
			Edges:        atomic.LoadInt64(&s.edges),
			Extracted:    atomic.LoadInt64(&s.ext),
			Moved:        atomic.LoadInt64(&s.moved),
			Skipped:      atomic.LoadInt64(&s.skipped),
			Duration:     time.Duration(atomic.LoadInt64(&s.dur)),
			Allocs:       atomic.LoadInt64(&s.allocs),
		}
		id := atomic.LoadInt64(&s.algo)
		if atomic.LoadInt64(&s.seq) != ticket {
			continue // torn read: slot was reclaimed while decoding
		}
		if id >= 0 && id < int64(len(algos)) {
			rec.Algo = algos[id]
		}
		out = append(out, rec)
	}
	return out
}

// FlightLen returns the total number of rounds ever written to the
// ring (not capped at the ring size).
func (r *Recorder) FlightLen() int64 {
	if r == nil {
		return 0
	}
	return atomic.LoadInt64(&r.flight.cursor)
}

// WriteFlightText renders records as an aligned plain-text table, the
// format panic and cancellation dumps use. Safe with an empty slice.
func WriteFlightText(w io.Writer, recs []FlightRecord) {
	if len(recs) == 0 {
		fmt.Fprintln(w, "flight recorder: no rounds recorded")
		return
	}
	fmt.Fprintf(w, "flight recorder (last %d rounds):\n", len(recs))
	fmt.Fprintf(w, "  %6s %-10s %6s %7s %9s %10s %9s %9s %9s %12s %8s\n",
		"seq", "algo", "round", "bucket", "frontier", "edges", "extracted", "moved", "skipped", "duration", "allocs")
	for _, rec := range recs {
		bucket := "-"
		if rec.Bucket >= 0 {
			bucket = fmt.Sprintf("%d", rec.Bucket)
		}
		fmt.Fprintf(w, "  %6d %-10s %6d %7s %9d %10d %9d %9d %9d %12v %8d\n",
			rec.Seq, rec.Algo, rec.Round, bucket, rec.FrontierSize, rec.Edges,
			rec.Extracted, rec.Moved, rec.Skipped, rec.Duration, rec.Allocs)
	}
}
