package obs

// Well-known histogram names. Instrumented packages observe
// distributions under these keys so dashboards and the bench reports
// can rely on stable names; ad-hoc names remain valid, but everything
// in internal/ must register here (names_test.go pins that).
const (
	// HistRoundLatencyNs is the per-round wall-clock latency in
	// nanoseconds, observed automatically by Recorder.RecordRound.
	HistRoundLatencyNs = "round.latency_ns"
	// HistRoundFrontier is the per-round frontier size (identifiers
	// extracted/processed), observed automatically by RecordRound.
	HistRoundFrontier = "round.frontier_size"
	// HistNextBucketNs is the duration of one bucket.NextBucket call.
	HistNextBucketNs = "bucket.next_ns"
	// HistUpdateBucketsNs is the duration of one bucket.UpdateBuckets
	// call (including the ones NextBucket issues internally during
	// overflow redistribution).
	HistUpdateBucketsNs = "bucket.update_ns"
	// HistEdgeMapEdges is the out-degree sum of each edgeMap input
	// frontier — the sparse-direction work bound, as a distribution.
	HistEdgeMapEdges = "edgemap.frontier_edges"
	// HistOpLatencyNs is whole-operation latency in nanoseconds; the
	// CLIs observe one sample per measured run.
	HistOpLatencyNs = "op.latency_ns"
	// HistFusedRunLen is the number of buckets each NextBucketFused
	// call drained into one frontier (1 = no fusion happened that
	// round; the rounds-saved counter accumulates the sum of len-1).
	HistFusedRunLen = "bucket.fused_run_len"
)

// Well-known names of the serving layer (internal/serve, DESIGN.md
// §12). Latency histograms are per-endpoint so the load driver can
// report p50/p99 for each.
const (
	// CtrServeRequests counts every admitted query.
	CtrServeRequests = "serve.requests"
	// CtrServeRejectedQueue counts 429s (admission queue full).
	CtrServeRejectedQueue = "serve.rejected_queue_full"
	// CtrServeRejectedClose counts 503s (server draining).
	CtrServeRejectedClose = "serve.rejected_closing"
	// CtrServeCanceled counts queries stopped by their deadline (504).
	CtrServeCanceled = "serve.canceled"
	// CtrServeCacheHits / CtrServeCacheMisses count result-cache
	// lookups on the SSSP read path.
	CtrServeCacheHits   = "serve.cache_hits"
	CtrServeCacheMisses = "serve.cache_misses"
	// CtrServeCoalesced counts requests that attached to another
	// request's in-flight computation instead of starting their own.
	CtrServeCoalesced = "serve.coalesced"
	// CtrServeJobsSubmitted / CtrServeJobsDone count async jobs.
	CtrServeJobsSubmitted = "serve.jobs_submitted"
	CtrServeJobsDone      = "serve.jobs_done"
	// GaugeServeInflight is the number of queries currently executing.
	GaugeServeInflight = "serve.inflight"
	// HistServeQueueWaitNs is time spent waiting for an admission slot.
	HistServeQueueWaitNs = "serve.queue_wait_ns"
	// HistServeSSSPNs, HistServeWBFSNs, HistServeCorenessNs, and
	// HistServeJobNs are whole-request latencies per endpoint.
	HistServeSSSPNs     = "serve.sssp.latency_ns"
	HistServeWBFSNs     = "serve.wbfs.latency_ns"
	HistServeCorenessNs = "serve.coreness.latency_ns"
	HistServeJobNs      = "serve.job.latency_ns"
)

// WellKnownNames returns the registry of every counter, gauge, and
// histogram name the in-tree instrumentation reports under. Tests
// assert that instrumented runs emit no names outside this set, so
// exposition consumers (Prometheus scrapes, the bench reports) never
// see ad-hoc drift.
func WellKnownNames() map[string]bool {
	return map[string]bool{
		// counters
		CtrBucketExtracted:     true,
		CtrBucketMoved:         true,
		CtrBucketSkipped:       true,
		CtrBucketReturned:      true,
		CtrBucketRangeAdvances: true,
		CtrBucketRoundsSaved:   true,
		CtrBucketLazyDrained:   true,
		CtrEdgeMapSparse:       true,
		CtrEdgeMapDense:        true,
		CtrEdgeMapEdges:        true,
		// gauges
		GaugeEdgeMapLastDense: true,
		// histograms
		HistRoundLatencyNs:  true,
		HistRoundFrontier:   true,
		HistNextBucketNs:    true,
		HistUpdateBucketsNs: true,
		HistEdgeMapEdges:    true,
		HistOpLatencyNs:     true,
		HistFusedRunLen:     true,
		// serving layer
		CtrServeRequests:      true,
		CtrServeRejectedQueue: true,
		CtrServeRejectedClose: true,
		CtrServeCanceled:      true,
		CtrServeCacheHits:     true,
		CtrServeCacheMisses:   true,
		CtrServeCoalesced:     true,
		CtrServeJobsSubmitted: true,
		CtrServeJobsDone:      true,
		GaugeServeInflight:    true,
		HistServeQueueWaitNs:  true,
		HistServeSSSPNs:       true,
		HistServeWBFSNs:       true,
		HistServeCorenessNs:   true,
		HistServeJobNs:        true,
	}
}
