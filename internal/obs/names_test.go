package obs_test

import (
	"testing"

	"julienne/internal/algo/densest"
	"julienne/internal/algo/kcore"
	"julienne/internal/algo/setcover"
	"julienne/internal/algo/sssp"
	"julienne/internal/gen"
	"julienne/internal/obs"
)

// TestInstrumentationUsesRegisteredNames runs every instrumented
// kernel (which transitively exercises the bucket structure and the
// Ligra layer) and asserts that each counter, gauge, and histogram
// name the run produced is registered in obs.WellKnownNames — the
// no-ad-hoc-drift contract of the exposition surface. This test lives
// in package obs_test so it can import the algo packages without a
// cycle.
func TestInstrumentationUsesRegisteredNames(t *testing.T) {
	g := gen.RMAT(1<<10, 1<<13, true, 7)
	wg := gen.LogWeights(g, 8)
	inst := gen.SetCover(1<<8, 1<<10, 4, 9)

	runs := map[string]func(rec *obs.Recorder){
		"kcore": func(rec *obs.Recorder) {
			kcore.Coreness(g, kcore.Options{Recorder: rec})
		},
		"sssp": func(rec *obs.Recorder) {
			sssp.DeltaStepping(wg, 0, 64, sssp.Options{Recorder: rec})
		},
		"setcover": func(rec *obs.Recorder) {
			setcover.Approx(inst.Graph, inst.Sets, setcover.Options{Recorder: rec})
		},
		"densest-charikar": func(rec *obs.Recorder) {
			densest.CharikarWithOptions(g, densest.Options{Recorder: rec})
		},
		"densest-batch": func(rec *obs.Recorder) {
			densest.PeelBatchWithOptions(g, 0.1, densest.Options{Recorder: rec})
		},
	}
	known := obs.WellKnownNames()
	for name, run := range runs {
		rec := obs.NewRecorder()
		run(rec)
		if rec.NumRounds() == 0 {
			t.Errorf("%s: no rounds recorded; instrumentation not wired", name)
		}
		for _, n := range rec.CounterNames() {
			if !known[n] {
				t.Errorf("%s: counter %q not in obs.WellKnownNames", name, n)
			}
		}
		for _, n := range rec.GaugeNames() {
			if !known[n] {
				t.Errorf("%s: gauge %q not in obs.WellKnownNames", name, n)
			}
		}
		hists := rec.HistogramNames()
		if len(hists) == 0 {
			t.Errorf("%s: no histograms recorded", name)
		}
		for _, n := range hists {
			if !known[n] {
				t.Errorf("%s: histogram %q not in obs.WellKnownNames", name, n)
			}
		}
	}
}

// TestWellKnownNamesRoundLatencyAlwaysPresent pins that RecordRound
// feeds the two automatic histograms every consumer relies on.
func TestWellKnownNamesRoundLatencyAlwaysPresent(t *testing.T) {
	rec := obs.NewRecorder()
	kcore.Coreness(gen.RMAT(1<<10, 1<<13, true, 7), kcore.Options{Recorder: rec})
	for _, name := range []string{obs.HistRoundLatencyNs, obs.HistRoundFrontier,
		obs.HistNextBucketNs, obs.HistUpdateBucketsNs} {
		if s := rec.HistSummary(name); s.Count == 0 {
			t.Errorf("histogram %q empty after an instrumented kcore run", name)
		}
	}
}
