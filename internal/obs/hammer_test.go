package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// This file pins the "no torn scrapes" contract for the debug surface:
// /metrics and /debug/obs output produced while an algorithm mutates
// the Recorder must always be internally consistent. Concretely:
//
//   - every "# TYPE" line is followed by samples for that same metric
//     (a metric registered between two sync.Map walks used to appear
//     with a missing or zero value);
//   - histogram cumulative bucket series are monotone, end in +Inf,
//     and agree with _count (samples recorded mid-snapshot used to
//     push the summed buckets past the count cell, producing
//     le="+Inf" < the last finite bucket);
//   - /debug/obs is always valid JSON;
//   - flight-recorder tails never contain torn records (writers here
//     publish all-equal fields, so any interleaving is detectable)
//     and their ticket sequence is strictly increasing.
//
// Run under -race via `make race`; the assertions also hold without it.

func TestExpositionHammer(t *testing.T) {
	rec := NewRecorder()
	var stop atomic.Bool
	var wg sync.WaitGroup

	// Round writer: every field of the round equals the round number,
	// so a torn flight slot cannot masquerade as a valid record.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := int64(1); !stop.Load(); i++ {
			rec.RecordRound(RoundMetrics{
				Algo: "hammer", Round: i, Bucket: ^uint32(0),
				FrontierSize: int(i), EdgesTraversed: i,
				Extracted: i, Moved: i, Skipped: i,
				Duration: time.Duration(i),
			})
		}
	}()
	// Metric writer: keeps registering fresh names so scrapes race
	// against sync.Map insertion, not just value updates.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; !stop.Load(); i++ {
			rec.Inc(fmt.Sprintf("hammer.c%d", i%97))
			rec.SetGauge(fmt.Sprintf("hammer.g%d", i%31), int64(i))
			rec.Observe(fmt.Sprintf("hammer.h%d", i%13), int64(i%100000))
		}
	}()

	deadline := time.Now().Add(300 * time.Millisecond)
	for time.Now().Before(deadline) {
		var buf bytes.Buffer
		if err := rec.WriteMetrics(&buf); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		checkExposition(t, buf.String())

		buf.Reset()
		if err := rec.WriteDebugJSON(&buf); err != nil {
			t.Fatalf("WriteDebugJSON: %v", err)
		}
		var dump map[string]any
		if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
			t.Fatalf("debug dump is not valid JSON: %v\n%s", err, buf.String())
		}

		checkFlightTail(t, rec.FlightTail(64))
	}
	stop.Store(true)
	wg.Wait()
}

// checkExposition validates one Prometheus text scrape: TYPE lines
// immediately followed by their own samples, monotone cumulative
// histogram buckets terminated by +Inf, and _count agreeing with +Inf.
func checkExposition(t *testing.T, text string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	value := func(line string) int64 {
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseInt(line[sp+1:], 10, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		return v
	}
	i := 0
	for i < len(lines) {
		fields := strings.Fields(lines[i])
		if len(fields) != 4 || fields[0] != "#" || fields[1] != "TYPE" {
			t.Fatalf("line %d: expected a TYPE line, got %q", i, lines[i])
		}
		name, kind := fields[2], fields[3]
		i++
		switch kind {
		case "counter", "gauge":
			if i >= len(lines) || !strings.HasPrefix(lines[i], name+" ") {
				t.Fatalf("TYPE %s %s not followed by its sample (torn name/value scrape)", name, kind)
			}
			if _, err := strconv.ParseFloat(strings.TrimPrefix(lines[i], name+" "), 64); err != nil {
				t.Fatalf("bad sample %q: %v", lines[i], err)
			}
			i++
		case "histogram":
			last := int64(-1)
			infVal := int64(-1)
			for i < len(lines) && strings.HasPrefix(lines[i], name+`_bucket{le="`) {
				v := value(lines[i])
				if v < last {
					t.Fatalf("non-monotone bucket series for %s: %d after %d", name, v, last)
				}
				last = v
				if strings.Contains(lines[i], `le="+Inf"`) {
					infVal = v
				} else if infVal >= 0 {
					t.Fatalf("%s: bucket after le=\"+Inf\": %q", name, lines[i])
				}
				i++
			}
			if infVal < 0 {
				t.Fatalf("%s: no le=\"+Inf\" bucket", name)
			}
			if i >= len(lines) || !strings.HasPrefix(lines[i], name+"_sum ") {
				t.Fatalf("%s: missing _sum", name)
			}
			i++
			if i >= len(lines) || !strings.HasPrefix(lines[i], name+"_count ") {
				t.Fatalf("%s: missing _count", name)
			}
			if c := value(lines[i]); c != infVal {
				t.Fatalf("%s: _count %d != le=\"+Inf\" %d", name, c, infVal)
			}
			i++
		default:
			t.Fatalf("unknown TYPE kind %q in %q", kind, lines[i-1])
		}
	}
}

// checkFlightTail validates one flight-recorder read: strictly
// increasing tickets and no torn payloads (the hammer writer publishes
// rounds whose fields are all equal to the round number).
func checkFlightTail(t *testing.T, recs []FlightRecord) {
	t.Helper()
	lastSeq := int64(0)
	for _, rec := range recs {
		if rec.Seq <= lastSeq {
			t.Fatalf("flight seq not increasing: %d after %d", rec.Seq, lastSeq)
		}
		lastSeq = rec.Seq
		r := rec.Round
		if rec.FrontierSize != r || rec.Edges != r || rec.Extracted != r ||
			rec.Moved != r || rec.Skipped != r || rec.Duration != time.Duration(r) {
			t.Fatalf("torn flight record: %+v", rec)
		}
	}
}
