// Package obs is the framework's runtime telemetry layer: named atomic
// counters and gauges, span timers that emit Chrome trace-event JSON
// (loadable in chrome://tracing or Perfetto), and per-round hooks that
// capture the quantities the paper's evaluation reasons about —
// frontier sizes, bucket extracted/moved/skipped traffic, and edgeMap
// direction decisions (§3.4, §5).
//
// The package has no dependencies beyond the standard library, and the
// whole API is nil-safe: every method on a nil *Recorder (and on the
// nil *Span it hands out) is a no-op, so instrumented code pays only a
// nil check when telemetry is disabled. Algorithms accept an optional
// *Recorder and simply call through it unconditionally.
package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known counter and gauge names. Instrumented packages report
// under these keys so tools can rely on stable names; ad-hoc names are
// equally valid.
const (
	// CtrBucketExtracted counts identifiers returned by NextBucket.
	CtrBucketExtracted = "bucket.extracted"
	// CtrBucketMoved counts identifiers physically inserted by
	// UpdateBuckets.
	CtrBucketMoved = "bucket.moved"
	// CtrBucketSkipped counts free (None-destination) updates.
	CtrBucketSkipped = "bucket.skipped"
	// CtrBucketReturned counts successful NextBucket calls.
	CtrBucketReturned = "bucket.buckets_returned"
	// CtrBucketRangeAdvances counts overflow unpacks (§3.3).
	CtrBucketRangeAdvances = "bucket.range_advances"
	// CtrBucketRoundsSaved counts synchronization rounds eliminated by
	// bucket fusion: each NextBucketFused run of r buckets saves r-1
	// NextBucket rounds (DESIGN.md §11).
	CtrBucketRoundsSaved = "bucket.rounds_saved"
	// CtrBucketLazyDrained counts identifiers handed back by DrainLazy
	// (lazily inserted into an active fused span and processed in the
	// same round, never round-tripping through bucket storage).
	CtrBucketLazyDrained = "bucket.lazy_drained"
	// CtrEdgeMapSparse counts edgeMap invocations that took the
	// sparse/push direction.
	CtrEdgeMapSparse = "edgemap.sparse"
	// CtrEdgeMapDense counts edgeMap invocations that took the
	// dense/pull direction.
	CtrEdgeMapDense = "edgemap.dense"
	// CtrEdgeMapEdges accumulates the out-degree sum of the input
	// frontier per edgeMap call (the work bound of the sparse
	// direction, and the threshold quantity of Beamer's heuristic).
	CtrEdgeMapEdges = "edgemap.edges"
	// GaugeEdgeMapLastDense is 1 when the most recent edgeMap call
	// chose the dense direction, 0 for sparse. Round observers read it
	// to label the round's traversal direction.
	GaugeEdgeMapLastDense = "edgemap.last_dense"
)

// Recorder accumulates telemetry for one run (or one process). The
// zero value is not useful; create one with NewRecorder. A nil
// *Recorder is a valid, fully inert recorder.
//
// All methods are safe for concurrent use.
type Recorder struct {
	start time.Time

	counters sync.Map // string -> *int64, atomic adds
	gauges   sync.Map // string -> *int64, atomic stores
	hists    sync.Map // string -> *Histogram, atomic cells

	// flight is the always-on per-round ring (flight.go). It lives
	// behind a pointer so its 64-bit atomic fields start at offset 0
	// on 32-bit platforms irrespective of the Recorder's own layout.
	flight *flightRing

	mu          sync.Mutex
	events      []TraceEvent
	rounds      []RoundMetrics
	observers   []RoundObserver
	flightAlgos []string // interned algo names for the flight ring
}

// NewRecorder creates an empty recorder whose trace clock starts now.
func NewRecorder() *Recorder {
	r := &Recorder{start: time.Now(), flight: new(flightRing)}
	// Seed the allocation sample so the first round's delta is
	// measured from here rather than from process start.
	atomic.StoreInt64(&r.flight.lastAllocs, heapAllocsSample())
	return r
}

// cell returns the atomic slot for name in m, creating it on first use.
func cell(m *sync.Map, name string) *int64 {
	if v, ok := m.Load(name); ok {
		return v.(*int64)
	}
	v, _ := m.LoadOrStore(name, new(int64))
	return v.(*int64)
}

// Add adds delta to the named counter.
func (r *Recorder) Add(name string, delta int64) {
	if r == nil {
		return
	}
	atomic.AddInt64(cell(&r.counters, name), delta)
}

// Inc increments the named counter by one.
func (r *Recorder) Inc(name string) { r.Add(name, 1) }

// Counter returns the current value of the named counter (0 if it was
// never touched).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	if v, ok := r.counters.Load(name); ok {
		return atomic.LoadInt64(v.(*int64))
	}
	return 0
}

// SetGauge sets the named gauge to v.
func (r *Recorder) SetGauge(name string, v int64) {
	if r == nil {
		return
	}
	atomic.StoreInt64(cell(&r.gauges, name), v)
}

// Gauge returns the current value of the named gauge (0 if unset).
func (r *Recorder) Gauge(name string) int64 {
	if r == nil {
		return 0
	}
	if v, ok := r.gauges.Load(name); ok {
		return atomic.LoadInt64(v.(*int64))
	}
	return 0
}

// Counters returns a point-in-time snapshot of all counters.
func (r *Recorder) Counters() map[string]int64 {
	if r == nil {
		return nil
	}
	out := make(map[string]int64)
	r.counters.Range(func(k, v any) bool {
		out[k.(string)] = atomic.LoadInt64(v.(*int64))
		return true
	})
	return out
}

// CounterNames returns the counter names in sorted order, for stable
// reporting.
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	var names []string
	r.counters.Range(func(k, _ any) bool {
		names = append(names, k.(string))
		return true
	})
	sort.Strings(names)
	return names
}

// --- spans -------------------------------------------------------------------

// Span is an open interval of wall-clock time that becomes one
// complete ("ph":"X") trace event when ended. Spans from a nil
// recorder are nil and every method on them is a no-op.
type Span struct {
	r     *Recorder
	name  string
	begin time.Time
	args  map[string]any
}

// StartSpan opens a span. End it to emit the trace event.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	return &Span{r: r, name: name, begin: time.Now()}
}

// Arg attaches a key/value argument shown in the trace viewer's detail
// pane. It returns the span for chaining.
func (s *Span) Arg(key string, value any) *Span {
	if s == nil {
		return nil
	}
	if s.args == nil {
		s.args = make(map[string]any, 4)
	}
	s.args[key] = value
	return s
}

// End closes the span, records its trace event, and returns its
// duration (0 on a nil span).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.begin)
	s.r.emit(TraceEvent{
		Name:  s.name,
		Phase: "X",
		Ts:    micros(s.begin.Sub(s.r.start)),
		Dur:   micros(d),
		Pid:   1,
		Tid:   1,
		Args:  s.args,
	})
	return d
}

// Phase times f as a named span; a convenience for whole-phase scopes.
func (r *Recorder) Phase(name string, f func()) {
	sp := r.StartSpan(name)
	f()
	sp.End()
}

// --- trace output ------------------------------------------------------------

// TraceEvent is one entry of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// "X" events are complete spans, "C" events are counter samples.
type TraceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    float64        `json:"ts"` // microseconds since trace start
	Dur   float64        `json:"dur,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of a trace (the array format is
// also valid, but the object form allows metadata).
type traceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func (r *Recorder) emit(ev TraceEvent) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, ev)
	r.mu.Unlock()
}

// Elapsed returns the time since the recorder was created.
func (r *Recorder) Elapsed() time.Duration {
	if r == nil {
		return 0
	}
	return time.Since(r.start)
}

// Events returns a copy of the trace events recorded so far.
func (r *Recorder) Events() []TraceEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEvent(nil), r.events...)
}

// WriteTrace writes the accumulated events as a Chrome trace-event
// JSON object ({"traceEvents": [...]}) loadable by chrome://tracing
// and Perfetto. Counter totals are appended as one final metadata
// event so they survive into the trace file. Writing on a nil recorder
// writes an empty, still-valid trace.
func (r *Recorder) WriteTrace(w io.Writer) error {
	var evs []TraceEvent
	if r != nil {
		r.mu.Lock()
		evs = append(evs, r.events...)
		r.mu.Unlock()
		if counters := r.Counters(); len(counters) > 0 {
			args := make(map[string]any, len(counters))
			for k, v := range counters {
				args[k] = v
			}
			evs = append(evs, TraceEvent{
				Name: "counters.final", Phase: "C",
				Ts: micros(time.Since(r.start)), Pid: 1, Args: args,
			})
		}
	}
	if evs == nil {
		evs = []TraceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(traceFile{TraceEvents: evs, DisplayTimeUnit: "ms"})
}
