package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilRecorder exercises the whole API surface on a nil *Recorder
// (and the nil *Span it returns): every call must be a silent no-op.
func TestNilRecorder(t *testing.T) {
	var r *Recorder
	r.Add("x", 5)
	r.Inc("x")
	if r.Counter("x") != 0 {
		t.Fatal("nil recorder counter should be 0")
	}
	r.SetGauge("g", 7)
	if r.Gauge("g") != 0 {
		t.Fatal("nil recorder gauge should be 0")
	}
	if r.Counters() != nil || r.CounterNames() != nil {
		t.Fatal("nil recorder snapshots should be nil")
	}
	sp := r.StartSpan("s")
	if sp != nil {
		t.Fatal("nil recorder should hand out nil spans")
	}
	if sp.Arg("k", 1) != nil {
		t.Fatal("Arg on nil span should stay nil")
	}
	if sp.End() != 0 {
		t.Fatal("End on nil span should return 0")
	}
	ran := false
	r.Phase("p", func() { ran = true })
	if !ran {
		t.Fatal("Phase must still run f on a nil recorder")
	}
	r.OnRound(func(RoundMetrics) { t.Fatal("observer on nil recorder fired") })
	r.RecordRound(RoundMetrics{Algo: "x"})
	if r.Rounds() != nil || r.NumRounds() != 0 {
		t.Fatal("nil recorder rounds should be empty")
	}
	if r.Events() != nil || r.Elapsed() != 0 {
		t.Fatal("nil recorder events/elapsed should be empty")
	}
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatalf("WriteTrace on nil recorder: %v", err)
	}
	var tf struct {
		TraceEvents []TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("nil-recorder trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 0 {
		t.Fatalf("nil-recorder trace should be empty, got %d events", len(tf.TraceEvents))
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRecorder()
	const workers = 8
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Inc("shared")
				r.Add("pairs", 2)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared"); got != workers*perWorker {
		t.Fatalf("shared=%d, want %d", got, workers*perWorker)
	}
	if got := r.Counter("pairs"); got != 2*workers*perWorker {
		t.Fatalf("pairs=%d, want %d", got, 2*workers*perWorker)
	}
	snap := r.Counters()
	if snap["shared"] != workers*perWorker || snap["pairs"] != 2*workers*perWorker {
		t.Fatalf("snapshot mismatch: %v", snap)
	}
	names := r.CounterNames()
	if len(names) != 2 || names[0] != "pairs" || names[1] != "shared" {
		t.Fatalf("CounterNames=%v, want sorted [pairs shared]", names)
	}
}

func TestGauges(t *testing.T) {
	r := NewRecorder()
	if r.Gauge("dir") != 0 {
		t.Fatal("unset gauge should read 0")
	}
	r.SetGauge("dir", 1)
	r.SetGauge("dir", 0)
	r.SetGauge("dir", 42)
	if r.Gauge("dir") != 42 {
		t.Fatalf("gauge=%d, want last-write 42", r.Gauge("dir"))
	}
}

func TestSpansAndTraceRoundTrip(t *testing.T) {
	r := NewRecorder()
	sp := r.StartSpan("kcore.round").Arg("bucket", 3).Arg("frontier", 17)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Fatalf("span duration %v too short", d)
	}
	r.Phase("load", func() { time.Sleep(100 * time.Microsecond) })
	r.Add("bucket.extracted", 9)

	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace does not round-trip through encoding/json: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit=%q", tf.DisplayTimeUnit)
	}
	// Two "X" spans plus the final "counters.final" C event.
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("events=%d, want 3: %+v", len(tf.TraceEvents), tf.TraceEvents)
	}
	ev := tf.TraceEvents[0]
	if ev.Name != "kcore.round" || ev.Phase != "X" {
		t.Fatalf("first event %+v", ev)
	}
	if ev.Dur < 1000 { // microseconds
		t.Fatalf("span dur %v too short", ev.Dur)
	}
	// JSON numbers decode as float64.
	if ev.Args["bucket"] != float64(3) || ev.Args["frontier"] != float64(17) {
		t.Fatalf("span args %v", ev.Args)
	}
	last := tf.TraceEvents[len(tf.TraceEvents)-1]
	if last.Name != "counters.final" || last.Phase != "C" {
		t.Fatalf("last event %+v", last)
	}
	if last.Args["bucket.extracted"] != float64(9) {
		t.Fatalf("final counters %v", last.Args)
	}
	for i := 1; i < len(tf.TraceEvents); i++ {
		if tf.TraceEvents[i].Ts < tf.TraceEvents[i-1].Ts {
			t.Fatalf("timestamps not monotone: %+v", tf.TraceEvents)
		}
	}
}

func TestRecordRoundAndObservers(t *testing.T) {
	r := NewRecorder()
	var seen []RoundMetrics
	r.OnRound(func(m RoundMetrics) { seen = append(seen, m) })
	for i := int64(1); i <= 3; i++ {
		r.RecordRound(RoundMetrics{
			Algo: "kcore", Round: i, Bucket: uint32(i), FrontierSize: int(10 * i),
			Extracted: i, Moved: 2 * i, Skipped: 3 * i, Duration: time.Duration(i),
		})
	}
	if r.NumRounds() != 3 || len(seen) != 3 {
		t.Fatalf("rounds=%d observed=%d", r.NumRounds(), len(seen))
	}
	rounds := r.Rounds()
	for i, m := range rounds {
		if m != seen[i] {
			t.Fatalf("observer saw %+v, stored %+v", seen[i], m)
		}
	}
	if rounds[2].FrontierSize != 30 || rounds[2].Moved != 6 {
		t.Fatalf("round 3 = %+v", rounds[2])
	}
	// Each round also emits a "C" trace event.
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("events=%d, want 3", len(evs))
	}
	if evs[0].Name != "kcore.round_metrics" || evs[0].Phase != "C" {
		t.Fatalf("round event %+v", evs[0])
	}
	if evs[1].Args["frontier"] != 20 {
		t.Fatalf("round event args %v", evs[1].Args)
	}
}

func TestTraceIsPerfettoLoadableShape(t *testing.T) {
	// The object form must serialize with a top-level traceEvents array
	// whose entries carry ph/ts/pid — the minimum Perfetto requires.
	r := NewRecorder()
	r.Phase("p", func() {})
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"traceEvents"`, `"ph":"X"`, `"ts"`, `"pid"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("trace missing %s:\n%s", want, out)
		}
	}
}
