package cli

import (
	"flag"
	"path/filepath"
	"strings"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graphio"
)

func flagsFor(t *testing.T, args ...string) *GraphFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	gf := Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return gf
}

func TestGenerators(t *testing.T) {
	for _, genName := range []string{"rmat", "er", "chunglu", "regular"} {
		gf := flagsFor(t, "-gen", genName, "-n", "256", "-m", "1024")
		g, err := gf.Build()
		if err != nil {
			t.Fatalf("%s: %v", genName, err)
		}
		if g.NumVertices() != 256 || g.NumEdges() == 0 {
			t.Fatalf("%s: bad graph", genName)
		}
	}
	gf := flagsFor(t, "-gen", "grid", "-rows", "5", "-cols", "7")
	g, err := gf.Build()
	if err != nil || g.NumVertices() != 35 {
		t.Fatalf("grid: %v", err)
	}
}

func TestUnknownGenerator(t *testing.T) {
	gf := flagsFor(t, "-gen", "mystery")
	if _, err := gf.Build(); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestWeights(t *testing.T) {
	for _, w := range []string{"log", "heavy", "uniform:1:50"} {
		gf := flagsFor(t, "-gen", "grid", "-rows", "4", "-cols", "4", "-weights", w)
		g, err := gf.Build()
		if err != nil {
			t.Fatalf("%s: %v", w, err)
		}
		if !g.Weighted() {
			t.Fatalf("%s: not weighted", w)
		}
	}
	gf := flagsFor(t, "-weights", "bogus")
	if _, err := gf.Build(); err == nil {
		t.Fatal("bad weights spec accepted")
	}
}

func TestFileLoading(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.bin")
	if err := graphio.SaveFile(path, gen.Grid2D(3, 3)); err != nil {
		t.Fatal(err)
	}
	gf := flagsFor(t, "-file", path)
	g, err := gf.Build()
	if err != nil || g.NumVertices() != 9 {
		t.Fatalf("file load: %v", err)
	}
	gf2 := flagsFor(t, "-file", filepath.Join(dir, "missing.bin"))
	if _, err := gf2.Build(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestDescribe(t *testing.T) {
	d := Describe(gen.Grid2D(2, 2))
	for _, want := range []string{"undirected", "unweighted", "n=4"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q: %s", want, d)
		}
	}
	wd := Describe(gen.LogWeights(gen.Grid2D(2, 2), 1))
	if !strings.Contains(wd, "weighted") {
		t.Fatalf("Describe: %s", wd)
	}
}
