// Package cli holds the flag plumbing shared by the cmd/ binaries:
// building or loading input graphs and applying weight distributions.
package cli

import (
	"flag"
	"fmt"

	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/graphio"
)

// GraphFlags selects an input graph: either a file or a generator.
type GraphFlags struct {
	File      *string
	Gen       *string
	N         *int
	M         *int
	Rows      *int
	Cols      *int
	Seed      *uint64
	Symmetric *bool
	Weights   *string
}

// Register installs the graph flags on fs.
func Register(fs *flag.FlagSet) *GraphFlags {
	return &GraphFlags{
		File:      fs.String("file", "", "load graph from file (.adj/.txt = Ligra text, else binary)"),
		Gen:       fs.String("gen", "rmat", "generator: rmat|er|chunglu|grid|regular"),
		N:         fs.Int("n", 1<<14, "vertices (generators)"),
		M:         fs.Int("m", 1<<17, "edges (generators)"),
		Rows:      fs.Int("rows", 256, "grid rows"),
		Cols:      fs.Int("cols", 256, "grid cols"),
		Seed:      fs.Uint64("seed", 2017, "generator seed"),
		Symmetric: fs.Bool("symmetric", true, "generate/load as undirected"),
		Weights:   fs.String("weights", "", "weight distribution: ''|log|heavy|uniform:<lo>:<hi>"),
	}
}

// Build constructs the graph the flags describe.
func (gf *GraphFlags) Build() (*graph.CSR, error) {
	var g *graph.CSR
	var err error
	if *gf.File != "" {
		g, err = graphio.LoadFile(*gf.File, *gf.Symmetric)
		if err != nil {
			return nil, err
		}
	} else {
		switch *gf.Gen {
		case "rmat":
			g = gen.RMAT(*gf.N, *gf.M, *gf.Symmetric, *gf.Seed)
		case "er":
			g = gen.ErdosRenyi(*gf.N, *gf.M, *gf.Symmetric, *gf.Seed)
		case "chunglu":
			g = gen.ChungLu(*gf.N, *gf.M, 2.3, *gf.Symmetric, *gf.Seed)
		case "grid":
			g = gen.Grid2D(*gf.Rows, *gf.Cols)
		case "regular":
			d := *gf.M / max(*gf.N, 1)
			if d < 1 {
				d = 8
			}
			g = gen.RandomRegular(*gf.N, d, *gf.Symmetric, *gf.Seed)
		default:
			return nil, fmt.Errorf("unknown generator %q", *gf.Gen)
		}
	}
	switch w := *gf.Weights; {
	case w == "":
	case w == "log":
		g = gen.LogWeights(g, *gf.Seed+1)
	case w == "heavy":
		g = gen.HeavyWeights(g, *gf.Seed+1)
	default:
		var lo, hi int
		if _, err := fmt.Sscanf(w, "uniform:%d:%d", &lo, &hi); err != nil {
			return nil, fmt.Errorf("bad -weights %q (want ''|log|heavy|uniform:<lo>:<hi>)", w)
		}
		g = gen.UniformWeights(g, graph.Weight(lo), graph.Weight(hi), *gf.Seed+1)
	}
	return g, nil
}

// Describe returns a one-line summary of g for banners.
func Describe(g *graph.CSR) string {
	kind := "directed"
	if g.Symmetric() {
		kind = "undirected"
	}
	w := "unweighted"
	if g.Weighted() {
		w = "weighted"
	}
	return fmt.Sprintf("%s %s graph: n=%d m=%d maxdeg=%d",
		kind, w, g.NumVertices(), g.NumEdges(), g.MaxDegree())
}
