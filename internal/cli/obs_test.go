package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"julienne/internal/obs"
)

func TestObsFlagsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if of.Recorder() != nil {
		t.Fatal("no flags set should mean nil recorder")
	}
	var buf bytes.Buffer
	if err := of.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Finish with telemetry off wrote %q", buf.String())
	}
}

func TestObsFlagsTraceAndStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse([]string{"-trace", path, "-stats"}); err != nil {
		t.Fatal(err)
	}
	rec := of.Recorder()
	if rec == nil {
		t.Fatal("trace flag should enable the recorder")
	}
	rec.Add(obs.CtrBucketMoved, 7)
	rec.Phase("work", func() {})
	rec.RecordRound(obs.RoundMetrics{Algo: "kcore", Round: 1, FrontierSize: 3})

	var buf bytes.Buffer
	if err := of.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"telemetry counters", obs.CtrBucketMoved, "per-round metrics", "kcore"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file: %v", err)
	}
	// The "work" span, the round counter event, and counters.final.
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("trace events=%d, want 3", len(tf.TraceEvents))
	}
}
