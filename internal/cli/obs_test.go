package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"julienne/internal/obs"
)

func TestObsFlagsDisabled(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if of.Recorder() != nil {
		t.Fatal("no flags set should mean nil recorder")
	}
	var buf bytes.Buffer
	if err := of.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Finish with telemetry off wrote %q", buf.String())
	}
}

func TestObsFlagsTraceAndStats(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse([]string{"-trace", path, "-stats"}); err != nil {
		t.Fatal(err)
	}
	rec := of.Recorder()
	if rec == nil {
		t.Fatal("trace flag should enable the recorder")
	}
	rec.Add(obs.CtrBucketMoved, 7)
	rec.Phase("work", func() {})
	rec.RecordRound(obs.RoundMetrics{Algo: "kcore", Round: 1, FrontierSize: 3})

	var buf bytes.Buffer
	if err := of.Finish(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"telemetry counters", obs.CtrBucketMoved, "per-round metrics", "kcore"} {
		if !strings.Contains(out, want) {
			t.Fatalf("stats output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace file: %v", err)
	}
	// The "work" span, the round counter event, and counters.final.
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("trace events=%d, want 3", len(tf.TraceEvents))
	}
}

func TestObsFlagsHTTP(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse([]string{"-http", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	rec := of.Recorder()
	if rec == nil {
		t.Fatal("-http should enable the recorder")
	}
	addr := of.HTTPAddr()
	if addr == "" {
		t.Fatal("-http should bind a listener and report its address")
	}
	rec.RecordRound(obs.RoundMetrics{Algo: "kcore", Round: 1, FrontierSize: 3,
		Duration: time.Millisecond})
	of.ObserveOp(2 * time.Millisecond)

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"julienne_round_latency_ns_count 1",
		"julienne_op_latency_ns_count 1",
		`julienne_round_latency_ns_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp2, err := http.Get("http://" + addr + "/debug/obs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var dump struct {
		Flight []obs.FlightRecord `json:"flight"`
	}
	if err := json.NewDecoder(resp2.Body).Decode(&dump); err != nil {
		t.Fatalf("/debug/obs decode: %v", err)
	}
	if len(dump.Flight) != 1 || dump.Flight[0].Algo != "kcore" {
		t.Fatalf("/debug/obs flight tail = %+v", dump.Flight)
	}
}

// TestPrintCanceled pins the partial-run flight dump path the CLIs use
// on exit status 3.
func TestPrintCanceled(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	of := RegisterObs(fs)
	if err := fs.Parse([]string{"-stats"}); err != nil {
		t.Fatal(err)
	}
	rec := of.Recorder()
	rec.RecordRound(obs.RoundMetrics{Algo: "sssp", Round: 1, FrontierSize: 9})
	err := rec.NewCanceled("sssp", 1, context.Canceled)
	var buf bytes.Buffer
	of.PrintCanceled(&buf, err)
	if !strings.Contains(buf.String(), "flight recorder") || !strings.Contains(buf.String(), "sssp") {
		t.Fatalf("PrintCanceled output:\n%s", buf.String())
	}
	buf.Reset()
	of.PrintCanceled(&buf, os.ErrNotExist) // not a Canceled: silent
	if buf.Len() != 0 {
		t.Fatalf("non-Canceled error should print nothing, got %q", buf.String())
	}
}
