package cli

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"
	"os/signal"
	"syscall"
	"time"

	"julienne/internal/harness"
	"julienne/internal/obs"
)

// ObsFlags selects the runtime-telemetry outputs shared by the cmd/
// binaries: a Chrome trace file, a counter/round summary, a pprof
// endpoint, and the live HTTP debug surface (obs.ServeMux).
type ObsFlags struct {
	Trace *string
	Stats *bool
	Pprof *string
	HTTP  *string

	rec      *obs.Recorder
	httpAddr string
}

// RegisterObs installs the telemetry flags on fs.
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		Trace: fs.String("trace", "", "write Chrome trace-event JSON to this file (chrome://tracing, Perfetto)"),
		Stats: fs.Bool("stats", false, "print telemetry counters, histogram summaries, and a per-round summary"),
		Pprof: fs.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)"),
		HTTP: fs.String("http", "", "serve /metrics (Prometheus text), /debug/obs (JSON), and /debug/pprof "+
			"on this address (e.g. :9090); implies telemetry and keeps serving after the run until interrupted"),
	}
}

// Recorder returns the recorder the flags call for — nil when telemetry
// is off, so algorithms run uninstrumented. It also starts the pprof
// server if -pprof was given and the debug surface if -http was given
// (exiting with status 2 if the -http listener cannot bind).
func (of *ObsFlags) Recorder() *obs.Recorder {
	if *of.Pprof != "" {
		addr := *of.Pprof
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server on %s: %v\n", addr, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on %s (go tool pprof http://localhost%s/debug/pprof/profile)\n",
			addr, addr)
	}
	if *of.Trace == "" && !*of.Stats && *of.HTTP == "" {
		return nil
	}
	of.rec = obs.NewRecorder()
	if *of.HTTP != "" {
		ln, err := net.Listen("tcp", *of.HTTP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obs: -http listen on %s: %v\n", *of.HTTP, err)
			os.Exit(2)
		}
		of.httpAddr = ln.Addr().String()
		srv := &http.Server{Handler: obs.ServeMux(of.rec)}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "obs: http server on %s: %v\n", of.httpAddr, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "obs: serving http://%s/metrics /debug/obs /debug/pprof/\n", of.httpAddr)
	}
	return of.rec
}

// HTTPAddr returns the bound address of the -http debug server ("" when
// it is not running). With "-http :0" this is how tests and scripts
// learn the chosen port.
func (of *ObsFlags) HTTPAddr() string { return of.httpAddr }

// ObserveOp records one whole-operation latency sample under the
// well-known op-latency histogram. No-op when telemetry is off.
func (of *ObsFlags) ObserveOp(d time.Duration) {
	of.rec.ObserveDuration(obs.HistOpLatencyNs, d)
}

// CrashDump is installed with defer at the top of main: on panic it
// writes the flight-recorder tail to stderr — the post-mortem record
// of the rounds leading up to the crash — and re-panics so the exit
// status and stack trace are unchanged. A no-op without a recorder or
// without a panic.
func (of *ObsFlags) CrashDump() {
	r := recover()
	if r == nil {
		return
	}
	if of.rec != nil {
		fmt.Fprintf(os.Stderr, "panic: %v\n\n", r)
		obs.WriteFlightText(os.Stderr, of.rec.FlightTail(16))
	}
	panic(r)
}

// PrintCanceled writes the flight tail carried by a cancellation error
// to w, so a timed-out run leaves a post-mortem of its last rounds.
// No-op when err carries no *obs.Canceled or no tail.
func (of *ObsFlags) PrintCanceled(w io.Writer, err error) {
	var c *obs.Canceled
	if errors.As(err, &c) && len(c.Tail) > 0 {
		c.WriteTail(w)
	}
}

// Wait blocks until SIGINT/SIGTERM if the -http server is running, so
// one-shot CLI runs remain scrapeable after the measured work is done.
// Without -http it returns immediately.
func (of *ObsFlags) Wait() {
	if of.httpAddr == "" {
		return
	}
	fmt.Fprintf(os.Stderr, "obs: run complete; still serving http://%s (interrupt to exit)\n", of.httpAddr)
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// maxRoundRows caps the per-round table so -stats stays readable on
// long peelings; the trace file always contains every round.
const maxRoundRows = 64

// Finish writes the trace file and prints the -stats report. Call it
// once after the measured work completes.
func (of *ObsFlags) Finish(w io.Writer) error {
	if of.rec == nil {
		return nil
	}
	if *of.Trace != "" {
		f, err := os.Create(*of.Trace)
		if err != nil {
			return err
		}
		if err := of.rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %d events -> %s\n", len(of.rec.Events()), *of.Trace)
	}
	if *of.Stats {
		of.printStats(w)
	}
	return nil
}

func (of *ObsFlags) printStats(w io.Writer) {
	fmt.Fprintln(w, "\ntelemetry counters:")
	t := harness.NewTable("counter", "value")
	for _, name := range of.rec.CounterNames() {
		t.AddRow(name, of.rec.Counter(name))
	}
	t.Render(w)

	if names := of.rec.HistogramNames(); len(names) > 0 {
		fmt.Fprintln(w, "\nhistograms:")
		t = harness.NewTable("histogram", "count", "mean", "p50", "p90", "p99", "max")
		for _, name := range names {
			s := of.rec.HistSummary(name)
			t.AddRow(name, s.Count, s.Mean, s.P50, s.P90, s.P99, s.Max)
		}
		t.Render(w)
	}

	rounds := of.rec.Rounds()
	if len(rounds) == 0 {
		return
	}
	fmt.Fprintf(w, "\nper-round metrics (%d rounds):\n", len(rounds))
	t = harness.NewTable("round", "algo", "bucket", "frontier", "edges",
		"extracted", "moved", "skipped", "time")
	step := 1
	if len(rounds) > maxRoundRows {
		step = (len(rounds) + maxRoundRows - 1) / maxRoundRows
		fmt.Fprintf(w, "(showing every %d-th round; the trace file has all of them)\n", step)
	}
	for i := 0; i < len(rounds); i += step {
		m := rounds[i]
		t.AddRow(m.Round, m.Algo, m.Bucket, m.FrontierSize, m.EdgesTraversed,
			m.Extracted, m.Moved, m.Skipped, m.Duration)
	}
	t.Render(w)
}
