package cli

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof handlers on DefaultServeMux
	"os"

	"julienne/internal/harness"
	"julienne/internal/obs"
)

// ObsFlags selects the runtime-telemetry outputs shared by the cmd/
// binaries: a Chrome trace file, a counter/round summary, and a pprof
// endpoint.
type ObsFlags struct {
	Trace *string
	Stats *bool
	Pprof *string

	rec *obs.Recorder
}

// RegisterObs installs the telemetry flags on fs.
func RegisterObs(fs *flag.FlagSet) *ObsFlags {
	return &ObsFlags{
		Trace: fs.String("trace", "", "write Chrome trace-event JSON to this file (chrome://tracing, Perfetto)"),
		Stats: fs.Bool("stats", false, "print telemetry counters and a per-round summary"),
		Pprof: fs.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060)"),
	}
}

// Recorder returns the recorder the flags call for — nil when telemetry
// is off, so algorithms run uninstrumented. It also starts the pprof
// server if -pprof was given.
func (of *ObsFlags) Recorder() *obs.Recorder {
	if *of.Pprof != "" {
		addr := *of.Pprof
		go func() {
			if err := http.ListenAndServe(addr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server on %s: %v\n", addr, err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof listening on %s (go tool pprof http://localhost%s/debug/pprof/profile)\n",
			addr, addr)
	}
	if *of.Trace == "" && !*of.Stats {
		return nil
	}
	of.rec = obs.NewRecorder()
	return of.rec
}

// maxRoundRows caps the per-round table so -stats stays readable on
// long peelings; the trace file always contains every round.
const maxRoundRows = 64

// Finish writes the trace file and prints the -stats report. Call it
// once after the measured work completes.
func (of *ObsFlags) Finish(w io.Writer) error {
	if of.rec == nil {
		return nil
	}
	if *of.Trace != "" {
		f, err := os.Create(*of.Trace)
		if err != nil {
			return err
		}
		if err := of.rec.WriteTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(w, "trace: %d events -> %s\n", len(of.rec.Events()), *of.Trace)
	}
	if *of.Stats {
		of.printStats(w)
	}
	return nil
}

func (of *ObsFlags) printStats(w io.Writer) {
	fmt.Fprintln(w, "\ntelemetry counters:")
	t := harness.NewTable("counter", "value")
	for _, name := range of.rec.CounterNames() {
		t.AddRow(name, of.rec.Counter(name))
	}
	t.Render(w)

	rounds := of.rec.Rounds()
	if len(rounds) == 0 {
		return
	}
	fmt.Fprintf(w, "\nper-round metrics (%d rounds):\n", len(rounds))
	t = harness.NewTable("round", "algo", "bucket", "frontier", "edges",
		"extracted", "moved", "skipped", "time")
	step := 1
	if len(rounds) > maxRoundRows {
		step = (len(rounds) + maxRoundRows - 1) / maxRoundRows
		fmt.Fprintf(w, "(showing every %d-th round; the trace file has all of them)\n", step)
	}
	for i := 0; i < len(rounds); i += step {
		m := rounds[i]
		t.AddRow(m.Round, m.Algo, m.Bucket, m.FrontierSize, m.EdgesTraversed,
			m.Extracted, m.Moved, m.Skipped, m.Duration)
	}
	t.Render(w)
}
