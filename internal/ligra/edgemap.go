package ligra

import (
	"julienne/internal/graph"
	"julienne/internal/obs"
	"julienne/internal/parallel"
)

// denseThresholdDivisor implements Ligra's direction optimization
// heuristic (Beamer's threshold): switch to the dense/pull traversal
// when |U| + sum of out-degrees over U exceeds m / 20.
const denseThresholdDivisor = 20

// EdgeMapOptions tunes EdgeMap.
type EdgeMapOptions struct {
	// NoDense forces the sparse (push) traversal. Algorithms whose F
	// captures per-target state with a CAS race (∆-stepping) are
	// push-only.
	NoDense bool
	// NoOutput skips building the output subset; use when EdgeMap is
	// called purely for its side effects (set cover's VisitElms).
	NoOutput bool
	// Recorder, when non-nil, receives the direction decision
	// (obs.CtrEdgeMapSparse/Dense, obs.GaugeEdgeMapLastDense) and the
	// frontier's out-degree sum (obs.CtrEdgeMapEdges) per call. The
	// disabled path costs one nil check.
	Recorder *obs.Recorder
}

// EdgeMap applies F to edges (u, v) with u ∈ U and C(v) true, returning
// the subset of targets v for which F returned true (§2.1).
//
// Contract (same as Ligra): in the sparse/push direction F may be called
// concurrently for the same target v from different sources, so F must
// be atomic and must return true at most once per target per call
// (typically via CAS); the returned subset then contains no duplicates.
// In the dense/pull direction F is called sequentially over the
// in-neighbors of each v and iteration stops early once C(v) becomes
// false, so F may be non-atomic with respect to v.
func EdgeMap(g graph.Graph, u VertexSubset, c func(v graph.Vertex) bool,
	f func(src, dst graph.Vertex, w graph.Weight) bool, opt EdgeMapOptions) VertexSubset {

	n := g.NumVertices()
	if u.IsEmpty() {
		return Empty(n)
	}
	if !opt.NoDense {
		threshold := g.NumEdges() / denseThresholdDivisor
		degSum := u.outDegreeSum(g)
		if int64(u.Size())+degSum > threshold {
			recordDirection(opt.Recorder, true, degSum)
			return edgeMapDense(g, u, c, f, opt)
		}
		recordDirection(opt.Recorder, false, degSum)
		return edgeMapSparse(g, u, c, f, opt)
	}
	if opt.Recorder != nil {
		recordDirection(opt.Recorder, false, u.outDegreeSum(g))
	}
	return edgeMapSparse(g, u, c, f, opt)
}

// recordDirection reports one direction decision to the recorder. The
// edges figure is the frontier's out-degree sum — the exact sparse
// work bound, and the quantity Beamer's heuristic thresholds on (the
// dense traversal may scan fewer edges thanks to early exit).
func recordDirection(rec *obs.Recorder, dense bool, degSum int64) {
	if rec == nil {
		return
	}
	if dense {
		rec.Inc(obs.CtrEdgeMapDense)
		rec.SetGauge(obs.GaugeEdgeMapLastDense, 1)
	} else {
		rec.Inc(obs.CtrEdgeMapSparse)
		rec.SetGauge(obs.GaugeEdgeMapLastDense, 0)
	}
	rec.Add(obs.CtrEdgeMapEdges, degSum)
	rec.Observe(obs.HistEdgeMapEdges, degSum)
}

// edgeMapSparse is the push traversal: map over the out-edges of U.
// The output is collected into per-block buffers and concatenated, so
// the memory written is proportional to the output size (the §5
// optimization the paper credits for its single-thread edge).
func edgeMapSparse(g graph.Graph, u VertexSubset, c func(graph.Vertex) bool,
	f func(src, dst graph.Vertex, w graph.Weight) bool, opt EdgeMapOptions) VertexSubset {

	ids := u.Sparse()
	n := g.NumVertices()
	if opt.NoOutput {
		parallel.For(len(ids), 16, func(i int) {
			src := ids[i]
			g.OutNeighbors(src, func(dst graph.Vertex, w graph.Weight) bool {
				if c(dst) {
					f(src, dst, w)
				}
				return true
			})
		})
		return Empty(n)
	}
	// One output buffer per worker keeps the memory written proportional
	// to the output frontier (the §5 optimization), not to the source
	// count. The buffers come from the scratch pool and keep their
	// capacity across calls, so a round-based traversal stops allocating
	// once the per-worker high-water marks are reached.
	pb := workerParts[graph.Vertex](parallel.Procs())
	defer pb.Release()
	parts := pb.S
	parallel.Workers(len(ids), func(worker, lo, hi int) {
		local := parts[worker]
		for i := lo; i < hi; i++ {
			src := ids[i]
			g.OutNeighbors(src, func(dst graph.Vertex, w graph.Weight) bool {
				if c(dst) && f(src, dst, w) {
					local = append(local, dst)
				}
				return true
			})
		}
		parts[worker] = local
	})
	return FromSparse(n, flatten(parts))
}

// workerParts borrows a buffer-of-buffers (one slice per worker) from
// the scratch pool, resetting every inner slice to empty while keeping
// its capacity. flatten copies the survivors out, so the scratch can be
// released before the result escapes.
func workerParts[T any](p int) *parallel.Scratch[[]T] {
	pb := parallel.GetScratch[[]T](p)
	for i := range pb.S {
		pb.S[i] = pb.S[i][:0]
	}
	return pb
}

// flatten concatenates per-worker buffers into one slice.
func flatten[T any](parts [][]T) []T {
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	flat := make([]T, 0, total)
	for _, p := range parts {
		flat = append(flat, p...)
	}
	return flat
}

// edgeMapDense is the pull traversal: every target v with C(v) true
// scans its in-neighbors for members of U and stops as soon as C(v)
// turns false (e.g. BFS sets the parent and stops).
func edgeMapDense(g graph.Graph, u VertexSubset, c func(graph.Vertex) bool,
	f func(src, dst graph.Vertex, w graph.Weight) bool, opt EdgeMapOptions) VertexSubset {

	n := g.NumVertices()
	inU := u.Dense()
	outMember := make([]bool, n)
	parallel.For(n, 256, func(vi int) {
		dst := graph.Vertex(vi)
		if !c(dst) {
			return
		}
		g.InNeighbors(dst, func(src graph.Vertex, w graph.Weight) bool {
			if inU[src] && f(src, dst, w) {
				outMember[vi] = true
			}
			return c(dst) // early exit once the target is settled
		})
	})
	if opt.NoOutput {
		return Empty(n)
	}
	return FromDense(n, outMember)
}

// EdgeMapTagged is the push-only edge map whose F returns an optional
// value of type T for the target vertex; the output is the tagged subset
// of targets that received a value. This is the maybe(T)-returning
// edgeMap the paper's ∆-stepping uses to capture each visited vertex's
// distance at the start of the round (Algorithm 2, lines 4–10): F must
// arrange (via CAS) that at most one source wins each target.
func EdgeMapTagged[T any](g graph.Graph, u VertexSubset, c func(v graph.Vertex) bool,
	f func(src, dst graph.Vertex, w graph.Weight) (T, bool)) Tagged[T] {

	ids := u.Sparse()
	n := g.NumVertices()
	p := parallel.Procs()
	ib := workerParts[graph.Vertex](p)
	defer ib.Release()
	vb := workerParts[T](p)
	defer vb.Release()
	idParts, valParts := ib.S, vb.S
	parallel.Workers(len(ids), func(worker, lo, hi int) {
		localIDs := idParts[worker]
		localVals := valParts[worker]
		for i := lo; i < hi; i++ {
			src := ids[i]
			g.OutNeighbors(src, func(dst graph.Vertex, w graph.Weight) bool {
				if c(dst) {
					if val, ok := f(src, dst, w); ok {
						localIDs = append(localIDs, dst)
						localVals = append(localVals, val)
					}
				}
				return true
			})
		}
		idParts[worker] = localIDs
		valParts[worker] = localVals
	})
	return NewTagged(n, flatten(idParts), flatten(valParts))
}

// EdgeMapCount implements the paper's edgeMapSum (§2.1: edgeMapReduce
// with M = 1 and R = +): for every vertex v adjacent to U with C(v)
// true, it counts the number of edges from U reaching v and returns the
// tagged subset of touched vertices with their counts. k-core uses it to
// count edges removed from each neighbor of the peeled set.
//
// The reduction uses an atomic counter per touched vertex; the vertex
// that increments a counter from zero claims v for the output, so the
// output contains each touched vertex exactly once.
func EdgeMapCount(g graph.Graph, u VertexSubset, c func(v graph.Vertex) bool,
	scratch *CountScratch) Tagged[uint32] {

	n := g.NumVertices()
	scratch.ensure(n)
	cnt := scratch.counts
	ids := u.Sparse()
	pb := workerParts[graph.Vertex](parallel.Procs())
	defer pb.Release()
	parts := pb.S
	parallel.Workers(len(ids), func(worker, lo, hi int) {
		claimed := parts[worker]
		for i := lo; i < hi; i++ {
			src := ids[i]
			g.OutNeighbors(src, func(dst graph.Vertex, w graph.Weight) bool {
				if c(dst) {
					if parallel.AddUint32(&cnt[dst], 1) == 1 {
						claimed = append(claimed, dst)
					}
				}
				return true
			})
		}
		parts[worker] = claimed
	})
	outIDs := flatten(parts)
	outVals := make([]uint32, len(outIDs))
	parallel.For(len(outIDs), parallel.DefaultGrain, func(i int) {
		v := outIDs[i]
		outVals[i] = cnt[v]
		cnt[v] = 0 // reset for the next call
	})
	return NewTagged(n, outIDs, outVals)
}

// CountScratch is the reusable counter array for EdgeMapCount. Reusing
// it across rounds keeps each round's allocation proportional to the
// frontier, not to n.
type CountScratch struct {
	counts []uint32
}

func (s *CountScratch) ensure(n int) {
	if len(s.counts) < n {
		s.counts = make([]uint32, n)
	}
}

// EdgeMapFilterCount implements the counting half of the paper's
// edgeMapFilter (§2.1): for each u ∈ U it counts the out-neighbors
// satisfying pred and returns the tagged subset of U with those counts.
func EdgeMapFilterCount(g graph.Graph, u VertexSubset,
	pred func(src, dst graph.Vertex) bool) Tagged[uint32] {

	ids := u.Sparse()
	vals := make([]uint32, len(ids))
	parallel.For(len(ids), 16, func(i int) {
		src := ids[i]
		var c uint32
		g.OutNeighbors(src, func(dst graph.Vertex, w graph.Weight) bool {
			if pred(src, dst) {
				c++
			}
			return true
		})
		vals[i] = c
	})
	return NewTagged(g.NumVertices(), ids, vals)
}

// EdgeMapPack implements edgeMapFilter with the Pack option (§2.1): it
// removes the out-edges of each u ∈ U whose target fails pred, mutating
// the graph, and returns the tagged subset of U with the new degrees.
func EdgeMapPack(g graph.Packer, u VertexSubset,
	pred func(src, dst graph.Vertex) bool) Tagged[uint32] {

	ids := u.Sparse()
	vals := make([]uint32, len(ids))
	parallel.For(len(ids), 4, func(i int) {
		src := ids[i]
		vals[i] = uint32(g.PackOut(src, func(dst graph.Vertex) bool {
			return pred(src, dst)
		}))
	})
	return NewTagged(g.NumVertices(), ids, vals)
}
