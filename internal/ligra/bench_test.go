package ligra

import (
	"sync/atomic"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

func benchFrontier(g graph.Graph, frac int) VertexSubset {
	n := g.NumVertices()
	return FromSparse(n, parallel.PackIndices(n, func(v int) bool { return v%frac == 0 }))
}

func BenchmarkEdgeMapSparse(b *testing.B) {
	g := gen.RMAT(1<<14, 1<<17, true, 1)
	u := benchFrontier(g, 16)
	always := func(graph.Vertex) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeMap(g, u, always,
			func(s, d graph.Vertex, w graph.Weight) bool { return false },
			EdgeMapOptions{NoDense: true})
	}
}

func BenchmarkEdgeMapDense(b *testing.B) {
	g := gen.RMAT(1<<14, 1<<17, true, 1)
	u := benchFrontier(g, 2)
	always := func(graph.Vertex) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeMap(g, u, always,
			func(s, d graph.Vertex, w graph.Weight) bool { return false },
			EdgeMapOptions{})
	}
}

func BenchmarkEdgeMapCount(b *testing.B) {
	g := gen.RMAT(1<<14, 1<<17, true, 1)
	u := benchFrontier(g, 16)
	var scratch CountScratch
	always := func(graph.Vertex) bool { return true }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EdgeMapCount(g, u, always, &scratch)
	}
}

func BenchmarkEdgeMapTagged(b *testing.B) {
	g := gen.RMAT(1<<14, 1<<17, true, 1)
	u := benchFrontier(g, 16)
	claimed := make([]uint32, g.NumVertices())
	var epoch uint32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		epoch++
		e := epoch
		EdgeMapTagged(g, u, func(graph.Vertex) bool { return true },
			func(s, d graph.Vertex, w graph.Weight) (uint32, bool) {
				old := atomic.LoadUint32(&claimed[d])
				if old != e && atomic.CompareAndSwapUint32(&claimed[d], old, e) {
					return uint32(s), true
				}
				return 0, false
			})
	}
}

func BenchmarkSparseDenseConversion(b *testing.B) {
	n := 1 << 18
	u := FromSparse(n, parallel.PackIndices(n, func(v int) bool { return v%3 == 0 }))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := FromDense(n, u.Dense())
		_ = d.Sparse()
	}
}
