package ligra

import (
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

// VertexMap applies F to every vertex of U in parallel and returns the
// subset of U for which F returned true (§2.1: "It applies F to all
// vertices in U and returns a vertexSubset containing U' ⊆ U where
// u ∈ U' if and only if F(u) = true. F can side-effect data structures
// associated with the vertices.").
//
// F is called exactly once per member, so side effects are safe; the
// output is built from a separate pass over recorded booleans.
func VertexMap(u VertexSubset, f func(v graph.Vertex) bool) VertexSubset {
	if u.IsDense() {
		n := u.Universe()
		in := u.Dense()
		out := make([]bool, n)
		parallel.For(n, parallel.DefaultGrain, func(i int) {
			if in[i] {
				out[i] = f(graph.Vertex(i))
			}
		})
		return FromDense(n, out)
	}
	ids := u.Sparse()
	keep := make([]bool, len(ids))
	parallel.For(len(ids), parallel.DefaultGrain, func(i int) {
		keep[i] = f(ids[i])
	})
	return FromSparse(u.Universe(), parallel.FilterIndex(ids,
		func(i int, _ graph.Vertex) bool { return keep[i] }))
}

// VertexForEach applies F to every member for its side effects only,
// skipping output construction (the vertexMap calls whose result the
// paper's pseudocode discards, e.g. UpdateD in Algorithm 3).
func VertexForEach(u VertexSubset, f func(v graph.Vertex)) {
	u.ForEach(f)
}

// VertexFilter returns the members of U satisfying the pure predicate
// P (the vertexFilter of Algorithm 3, line 27). Unlike VertexMap, P
// must not side-effect: it may be evaluated more than once per member.
func VertexFilter(u VertexSubset, p func(v graph.Vertex) bool) VertexSubset {
	if u.IsDense() {
		n := u.Universe()
		in := u.Dense()
		out := make([]bool, n)
		parallel.For(n, parallel.DefaultGrain, func(i int) {
			out[i] = in[i] && p(graph.Vertex(i))
		})
		return FromDense(n, out)
	}
	ids := u.Sparse()
	return FromSparse(u.Universe(), parallel.Filter(ids, p))
}
