package ligra

import (
	"sort"
	"sync/atomic"
	"testing"

	"julienne/internal/gen"
	"julienne/internal/graph"
	"julienne/internal/parallel"
)

func sortedIDs(ids []graph.Vertex) []graph.Vertex {
	out := append([]graph.Vertex(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestVertexSubsetBasics(t *testing.T) {
	s := Single(10, 3)
	if s.Size() != 1 || s.IsEmpty() || !s.Contains(3) || s.Contains(4) {
		t.Fatal("Single misbehaves")
	}
	e := Empty(10)
	if !e.IsEmpty() || e.Size() != 0 {
		t.Fatal("Empty misbehaves")
	}
	a := All(5)
	if a.Size() != 5 {
		t.Fatal("All misbehaves")
	}
	for v := graph.Vertex(0); v < 5; v++ {
		if !a.Contains(v) {
			t.Fatalf("All missing %d", v)
		}
	}
}

func TestSparseDenseRoundTrip(t *testing.T) {
	ids := []graph.Vertex{2, 5, 7}
	s := FromSparse(10, ids)
	d := s.Dense()
	for v := 0; v < 10; v++ {
		want := v == 2 || v == 5 || v == 7
		if d[v] != want {
			t.Fatalf("dense[%d]=%v", v, d[v])
		}
	}
	s2 := FromDense(10, d)
	if s2.Size() != 3 {
		t.Fatalf("size=%d", s2.Size())
	}
	back := sortedIDs(s2.Sparse())
	for i, v := range []graph.Vertex{2, 5, 7} {
		if back[i] != v {
			t.Fatalf("round trip lost %d", v)
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	s := FromSparse(100, []graph.Vertex{1, 50, 99})
	var sum int64
	s.ForEach(func(v graph.Vertex) { atomic.AddInt64(&sum, int64(v)) })
	if sum != 150 {
		t.Fatalf("sum=%d", sum)
	}
	d := FromDense(4, []bool{true, false, true, false})
	var count int64
	d.ForEach(func(v graph.Vertex) { atomic.AddInt64(&count, 1) })
	if count != 2 {
		t.Fatalf("count=%d", count)
	}
}

func TestTagged(t *testing.T) {
	tg := NewTagged(10, []graph.Vertex{1, 2}, []string{"a", "b"})
	if tg.Size() != 2 || tg.IsEmpty() {
		t.Fatal("Tagged size wrong")
	}
	v, val := tg.At(1)
	if v != 2 || val != "b" {
		t.Fatal("At wrong")
	}
	plain := tg.Untagged()
	if plain.Size() != 2 || !plain.Contains(1) {
		t.Fatal("Untagged wrong")
	}
}

func TestTagMap(t *testing.T) {
	s := FromSparse(10, []graph.Vertex{1, 2, 3, 4})
	tg := TagMap(s, func(v graph.Vertex) (uint32, bool) {
		return uint32(v * 10), v%2 == 0
	})
	if tg.Size() != 2 {
		t.Fatalf("size=%d", tg.Size())
	}
	for i := 0; i < tg.Size(); i++ {
		v, val := tg.At(i)
		if val != uint32(v*10) || v%2 != 0 {
			t.Fatalf("bad pair (%d,%d)", v, val)
		}
	}
}

func TestTagMapTagged(t *testing.T) {
	tg := NewTagged(10, []graph.Vertex{1, 2, 3}, []uint32{10, 20, 30})
	out := TagMapTagged(tg, func(v graph.Vertex, val uint32) (uint32, bool) {
		return val + 1, val >= 20
	})
	if out.Size() != 2 {
		t.Fatalf("size=%d", out.Size())
	}
	for i := 0; i < out.Size(); i++ {
		_, val := out.At(i)
		if val != 21 && val != 31 {
			t.Fatalf("val=%d", val)
		}
	}
}

// bfsLevels computes BFS levels via EdgeMap, exercising both traversal
// directions across rounds; the oracle is a sequential BFS.
func bfsLevels(g graph.Graph, src graph.Vertex, opt EdgeMapOptions) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	frontier := Single(n, src)
	for round := int32(1); !frontier.IsEmpty(); round++ {
		frontier = EdgeMap(g, frontier,
			func(v graph.Vertex) bool { return atomic.LoadInt32((*int32)(&level[v])) == -1 },
			func(s, d graph.Vertex, w graph.Weight) bool {
				return atomic.CompareAndSwapInt32(&level[d], -1, round)
			}, opt)
	}
	return level
}

func seqBFS(g graph.Graph, src graph.Vertex) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := []graph.Vertex{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		g.OutNeighbors(v, func(u graph.Vertex, w graph.Weight) bool {
			if level[u] == -1 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
			return true
		})
	}
	return level
}

func TestEdgeMapBFSMatchesSequential(t *testing.T) {
	graphs := map[string]graph.Graph{
		"rmat":  gen.RMAT(1<<11, 16000, true, 3),
		"grid":  gen.Grid2D(30, 40),
		"star":  gen.Star(100),
		"cycle": gen.Cycle(57),
	}
	for name, g := range graphs {
		want := seqBFS(g, 0)
		for _, opt := range []EdgeMapOptions{{}, {NoDense: true}} {
			got := bfsLevels(g, 0, opt)
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("%s (opt=%+v): level[%d]=%d want %d", name, opt, v, got[v], want[v])
				}
			}
		}
	}
}

func TestEdgeMapDenseDirected(t *testing.T) {
	// A graph dense enough to trigger the pull path: K_n-ish directed.
	n := 64
	var edges []graph.Edge
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				edges = append(edges, graph.Edge{U: graph.Vertex(i), V: graph.Vertex(j)})
			}
		}
	}
	g := graph.FromEdges(n, edges, graph.DefaultBuild)
	want := seqBFS(g, 0)
	got := bfsLevels(g, 0, EdgeMapOptions{})
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("level[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestEdgeMapEmptyFrontier(t *testing.T) {
	g := gen.Cycle(10)
	out := EdgeMap(g, Empty(10),
		func(graph.Vertex) bool { return true },
		func(s, d graph.Vertex, w graph.Weight) bool { return true },
		EdgeMapOptions{})
	if !out.IsEmpty() {
		t.Fatal("empty frontier produced output")
	}
}

func TestEdgeMapNoOutput(t *testing.T) {
	g := gen.Star(50)
	var visits int64
	out := EdgeMap(g, Single(50, 0),
		func(graph.Vertex) bool { return true },
		func(s, d graph.Vertex, w graph.Weight) bool {
			atomic.AddInt64(&visits, 1)
			return true
		}, EdgeMapOptions{NoOutput: true, NoDense: true})
	if !out.IsEmpty() {
		t.Fatal("NoOutput returned members")
	}
	if visits != 49 {
		t.Fatalf("visits=%d want 49", visits)
	}
}

func TestEdgeMapTagged(t *testing.T) {
	// Star from the hub: each leaf is claimed once with a value.
	g := gen.Star(10)
	claimed := make([]uint32, 10)
	tg := EdgeMapTagged(g, Single(10, 0),
		func(v graph.Vertex) bool { return v != 0 },
		func(s, d graph.Vertex, w graph.Weight) (uint32, bool) {
			if parallel.CASUint32(&claimed[d], 0, 1) {
				return uint32(d) * 2, true
			}
			return 0, false
		})
	if tg.Size() != 9 {
		t.Fatalf("size=%d want 9", tg.Size())
	}
	for i := 0; i < tg.Size(); i++ {
		v, val := tg.At(i)
		if val != uint32(v)*2 {
			t.Fatalf("val(%d)=%d", v, val)
		}
	}
}

func TestEdgeMapCount(t *testing.T) {
	// Triangle 0-1-2 plus pendant 2-3: counting from frontier {0,1}
	// must give count 2 for vertex 2 and 1 for each of 0,1.
	g := graph.FromEdges(4, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 0}, {U: 2, V: 3}},
		graph.BuildOptions{Symmetrize: true, DropSelfLoops: true, Dedup: true})
	var scratch CountScratch
	tg := EdgeMapCount(g, FromSparse(4, []graph.Vertex{0, 1}),
		func(v graph.Vertex) bool { return true }, &scratch)
	got := map[graph.Vertex]uint32{}
	for i := 0; i < tg.Size(); i++ {
		v, c := tg.At(i)
		got[v] = c
	}
	want := map[graph.Vertex]uint32{0: 1, 1: 1, 2: 2}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for v, c := range want {
		if got[v] != c {
			t.Fatalf("count[%d]=%d want %d", v, got[v], c)
		}
	}
	// Scratch must be clean for reuse.
	tg2 := EdgeMapCount(g, Single(4, 3), func(graph.Vertex) bool { return true }, &scratch)
	if tg2.Size() != 1 {
		t.Fatalf("second call size=%d", tg2.Size())
	}
	v, c := tg2.At(0)
	if v != 2 || c != 1 {
		t.Fatalf("second call got (%d,%d)", v, c)
	}
}

func TestEdgeMapCountRespectsCond(t *testing.T) {
	g := gen.Star(5)
	var scratch CountScratch
	tg := EdgeMapCount(g, Single(5, 0),
		func(v graph.Vertex) bool { return v%2 == 0 }, &scratch)
	for i := 0; i < tg.Size(); i++ {
		v, _ := tg.At(i)
		if v%2 != 0 {
			t.Fatalf("cond violated: %d", v)
		}
	}
	if tg.Size() != 2 { // leaves 2 and 4
		t.Fatalf("size=%d want 2", tg.Size())
	}
}

func TestEdgeMapFilterCount(t *testing.T) {
	g := gen.Star(6) // hub 0 with leaves 1..5
	tg := EdgeMapFilterCount(g, Single(6, 0),
		func(src, dst graph.Vertex) bool { return dst >= 3 })
	if tg.Size() != 1 {
		t.Fatalf("size=%d", tg.Size())
	}
	v, c := tg.At(0)
	if v != 0 || c != 3 {
		t.Fatalf("got (%d,%d) want (0,3)", v, c)
	}
}

func TestEdgeMapPack(t *testing.T) {
	g := gen.Star(6)
	tg := EdgeMapPack(g, Single(6, 0),
		func(src, dst graph.Vertex) bool { return dst%2 == 1 })
	if tg.Size() != 1 {
		t.Fatalf("size=%d", tg.Size())
	}
	_, newDeg := tg.At(0)
	if newDeg != 3 { // leaves 1, 3, 5 survive
		t.Fatalf("newDeg=%d want 3", newDeg)
	}
	if g.OutDegree(0) != 3 {
		t.Fatalf("graph degree=%d want 3", g.OutDegree(0))
	}
	g.OutNeighbors(0, func(u graph.Vertex, w graph.Weight) bool {
		if u%2 != 1 {
			t.Fatalf("packed-out neighbor %d survived", u)
		}
		return true
	})
}

func TestEdgeMapOnWeightedGraph(t *testing.T) {
	g := gen.UniformWeights(gen.Grid2D(5, 5), 1, 10, 1)
	sawWeight := false
	EdgeMap(g, Single(25, 0),
		func(graph.Vertex) bool { return true },
		func(s, d graph.Vertex, w graph.Weight) bool {
			if w >= 1 && w < 10 {
				sawWeight = true
			}
			return false
		}, EdgeMapOptions{NoDense: true})
	if !sawWeight {
		t.Fatal("weights not passed through EdgeMap")
	}
}

func TestVertexMap(t *testing.T) {
	// Sparse input: F side-effects and filters.
	touched := make([]int32, 10)
	s := FromSparse(10, []graph.Vertex{1, 4, 7})
	out := VertexMap(s, func(v graph.Vertex) bool {
		atomic.AddInt32(&touched[v], 1)
		return v >= 4
	})
	if out.Size() != 2 || !out.Contains(4) || !out.Contains(7) || out.Contains(1) {
		t.Fatalf("VertexMap output wrong")
	}
	for v, c := range touched {
		want := int32(0)
		if v == 1 || v == 4 || v == 7 {
			want = 1
		}
		if c != want {
			t.Fatalf("F called %d times on %d", c, v)
		}
	}
	// Dense input.
	d := FromDense(6, []bool{true, true, false, true, false, false})
	out2 := VertexMap(d, func(v graph.Vertex) bool { return v%2 == 1 })
	if out2.Size() != 2 || !out2.Contains(1) || !out2.Contains(3) {
		t.Fatalf("dense VertexMap wrong: %v", out2.Sparse())
	}
}

func TestVertexFilter(t *testing.T) {
	s := FromSparse(10, []graph.Vertex{0, 2, 5, 9})
	out := VertexFilter(s, func(v graph.Vertex) bool { return v > 2 })
	if out.Size() != 2 || !out.Contains(5) || !out.Contains(9) {
		t.Fatal("sparse VertexFilter wrong")
	}
	d := FromDense(4, []bool{true, false, true, true})
	out2 := VertexFilter(d, func(v graph.Vertex) bool { return v != 2 })
	if out2.Size() != 2 || out2.Contains(2) || !out2.Contains(0) || !out2.Contains(3) {
		t.Fatal("dense VertexFilter wrong")
	}
}

func TestVertexForEach(t *testing.T) {
	var sum int64
	VertexForEach(FromSparse(10, []graph.Vertex{2, 3, 4}), func(v graph.Vertex) {
		atomic.AddInt64(&sum, int64(v))
	})
	if sum != 9 {
		t.Fatalf("sum=%d", sum)
	}
}
